GO ?= go
FUZZTIME ?= 5s
ORACLE_TRIALS ?= 500
ORACLE_SEED ?= 1
CORPUS_DOCS ?= 3
CORPUS_DOC_NODES ?= 400
CORPUS_SEED ?= 1
# Coverage ratchet floor (statement %, internal/ packages only). Only
# move it UP: raise it when a PR lifts coverage.
COVER_FLOOR ?= 84.0

.PHONY: all build vet test race fuzz bench bench-json check oracle metriclint debug-smoke serve-smoke stream-smoke corpus corpus-diff cover

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fuzz smoke: run each native fuzz target briefly. Lengthen with e.g.
# `make fuzz FUZZTIME=5m` for a real session.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDTDParse -fuzztime=$(FUZZTIME) ./internal/dtd
	$(GO) test -run='^$$' -fuzz=FuzzXPathParse -fuzztime=$(FUZZTIME) ./internal/xpath
	$(GO) test -run='^$$' -fuzz=FuzzXMLDecode -fuzztime=$(FUZZTIME) ./internal/xmltree
	$(GO) test -run='^$$' -fuzz=FuzzServeRequest -fuzztime=$(FUZZTIME) ./internal/server
	$(GO) test -run='^$$' -fuzz=FuzzStreamMigrate -fuzztime=$(FUZZTIME) ./internal/embedding
	$(GO) test -run='^$$' -fuzz=FuzzAnfaOptimize -fuzztime=$(FUZZTIME) ./internal/anfa

bench:
	$(GO) test -bench=. -benchmem ./...

# Refresh the checked-in benchmark trajectory file (BENCH_PR<n>.json);
# see DESIGN.md "Performance" and scripts/bench.sh.
bench-json:
	./scripts/bench.sh

# Property-based conformance oracle (see TESTING.md): randomized
# end-to-end verification of type safety, invertibility and query
# preservation. Deepen with `make oracle ORACLE_TRIALS=5000`.
oracle:
	$(GO) run ./cmd/xse-oracle -trials $(ORACLE_TRIALS) -seed $(ORACLE_SEED)

# Real-world corpus workload (see TESTING.md "Corpus workload"): run
# the full pipeline — search under every heuristic, migration,
# translated-query preservation — over the checked-in DTD evolution
# pairs and write the machine-readable quality report.
corpus:
	$(GO) run ./cmd/xse-corpus -docs $(CORPUS_DOCS) -doc-nodes $(CORPUS_DOC_NODES) \
		-seed $(CORPUS_SEED) -search-timeout 60s -out corpus-report.json

# External differential conformance (optional; needs xmllint from
# libxml2): cross-validate the X_R evaluator and migrated documents
# against xmllint --xpath / --dtdvalid. Build-tagged so the core tree
# stays dependency-free; the test skips politely if xmllint is absent.
corpus-diff:
	$(GO) test -tags xmllint ./internal/corpus -run Xmllint -v

# Coverage ratchet: per-package summary plus a total floor over the
# internal/ library packages (main packages are exercised by the smoke
# scripts instead). See scripts/covercheck.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) run ./scripts/covercheck -profile coverage.out \
		-exclude /cmd/,/examples/,/scripts/ -floor $(COVER_FLOOR)

# Metric-naming lint (see DESIGN.md "Observability"): registration
# sites must use xse_-prefixed lowercase names with kind-appropriate
# suffixes, and no name may be registered twice or as two kinds.
metriclint:
	$(GO) run ./scripts/metriclint

# End-to-end scrape smoke: run a batch under -debug-addr and curl
# /metrics while the server lingers (see scripts/debug-smoke.sh).
debug-smoke:
	./scripts/debug-smoke.sh

# Daemon smoke: boot xse-serve, drive the API, and exercise cache
# reuse, shedding and SIGTERM drain (see scripts/serve-smoke.sh).
serve-smoke:
	./scripts/serve-smoke.sh

# Streaming-migration smoke: stream-vs-tree byte equivalence (single
# doc and batch, -j 1 and -j 8) plus the bounded-memory check on a
# large document (see scripts/stream-smoke.sh).
stream-smoke:
	./scripts/stream-smoke.sh

# Tier-1+ gate (see ROADMAP.md): everything a PR must keep green.
check: vet metriclint build race fuzz oracle serve-smoke stream-smoke
