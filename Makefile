GO ?= go
FUZZTIME ?= 5s
ORACLE_TRIALS ?= 500
ORACLE_SEED ?= 1

.PHONY: all build vet test race fuzz bench bench-json check oracle

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fuzz smoke: run each native fuzz target briefly. Lengthen with e.g.
# `make fuzz FUZZTIME=5m` for a real session.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDTDParse -fuzztime=$(FUZZTIME) ./internal/dtd
	$(GO) test -run='^$$' -fuzz=FuzzXPathParse -fuzztime=$(FUZZTIME) ./internal/xpath
	$(GO) test -run='^$$' -fuzz=FuzzXMLDecode -fuzztime=$(FUZZTIME) ./internal/xmltree

bench:
	$(GO) test -bench=. -benchmem ./...

# Refresh the checked-in benchmark trajectory file (BENCH_PR<n>.json);
# see DESIGN.md "Performance" and scripts/bench.sh.
bench-json:
	./scripts/bench.sh

# Property-based conformance oracle (see TESTING.md): randomized
# end-to-end verification of type safety, invertibility and query
# preservation. Deepen with `make oracle ORACLE_TRIALS=5000`.
oracle:
	$(GO) run ./cmd/xse-oracle -trials $(ORACLE_TRIALS) -seed $(ORACLE_SEED)

# Tier-1+ gate (see ROADMAP.md): everything a PR must keep green.
check: vet build race fuzz oracle
