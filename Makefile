GO ?= go
FUZZTIME ?= 5s

.PHONY: all build vet test race fuzz bench check

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fuzz smoke: run each native fuzz target briefly. Lengthen with e.g.
# `make fuzz FUZZTIME=5m` for a real session.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDTDParse -fuzztime=$(FUZZTIME) ./internal/dtd
	$(GO) test -run='^$$' -fuzz=FuzzXPathParse -fuzztime=$(FUZZTIME) ./internal/xpath
	$(GO) test -run='^$$' -fuzz=FuzzXMLDecode -fuzztime=$(FUZZTIME) ./internal/xmltree

bench:
	$(GO) test -bench=. -benchmem ./...

# Tier-1+ gate (see ROADMAP.md): everything a PR must keep green.
check: vet build race fuzz
