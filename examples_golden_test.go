package repro

import (
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the examples' golden files from current output")

// TestExamplesGolden runs every example program and diffs its full
// stdout against the committed golden file. The examples are seeded
// deterministic pipelines, so their output is part of the repository's
// observable behavior; regenerate the goldens after an intentional
// change with:
//
//	go test -run TestExamplesGolden -update .
func TestExamplesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs example binaries; skipped with -short")
	}
	examples := []string{"quickstart", "migration", "p2pquery", "partialpreserve", "integration"}
	for _, name := range examples {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			var stderr []byte
			out, err := cmd.Output()
			if ee, ok := err.(*exec.ExitError); ok {
				stderr = ee.Stderr
			}
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\nstderr:\n%s", name, err, stderr)
			}
			golden := filepath.Join("testdata", "examples", name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, out, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if string(out) != string(want) {
				t.Errorf("output differs from %s.\ngot:\n%s\nwant:\n%s\n(re-run with -update after an intentional change)",
					golden, out, want)
			}
		})
	}
}
