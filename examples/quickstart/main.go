// Command quickstart is the smallest end-to-end tour of the library:
// parse two DTDs, search for an information-preserving schema
// embedding, map a document, check type safety, and invert the mapping
// to recover the original (the paper's §1 workflow).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

const sourceDTD = `
<!ELEMENT contacts (person)*>
<!ELEMENT person (name, email)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT email (#PCDATA)>
`

// The target is richer: it wraps people in a directory with required
// bookkeeping that the source never had — schema embedding fills it
// with default instances and still round-trips.
const targetDTD = `
<!ELEMENT directory (meta, entries)>
<!ELEMENT meta (owner, created)>
<!ELEMENT owner (#PCDATA)>
<!ELEMENT created (#PCDATA)>
<!ELEMENT entries (entry)*>
<!ELEMENT entry (name, contact, extras, note)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT contact (email)>
<!ELEMENT email (#PCDATA)>
<!ELEMENT extras (phone | nothing)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT nothing EMPTY>
<!ELEMENT note (#PCDATA)>
`

const document = `
<contacts>
  <person><name>Ada Lovelace</name><email>ada@analytical.engine</email></person>
  <person><name>Alan Turing</name><email>alan@bletchley.park</email></person>
</contacts>
`

func main() {
	src, err := core.ParseDTD(sourceDTD, "contacts")
	if err != nil {
		log.Fatalf("parse source schema: %v", err)
	}
	tgt, err := core.ParseDTD(targetDTD, "directory")
	if err != nil {
		log.Fatalf("parse target schema: %v", err)
	}

	// A lexical similarity matrix scores tag-name pairs; pairs the
	// matcher cannot see (contacts/directory, person/entry) get expert
	// scores, exactly the workflow §4.1 describes. The search then looks
	// for a valid embedding that respects the matrix.
	att := core.LexicalSim(src, tgt, 0.5)
	att.Set("contacts", "directory", 0.9)
	att.Set("person", "entry", 0.9)
	found, err := core.Find(src, tgt, att, core.FindOptions{Heuristic: core.Random, Seed: 1, MaxRestarts: 50})
	if err != nil {
		log.Fatalf("search: %v", err)
	}
	if found.Embedding == nil {
		log.Fatalf("no embedding found after %d restarts", found.Restarts)
	}
	sigma := found.Embedding
	fmt.Println("=== schema embedding σ = (λ, path) ===")
	fmt.Print(sigma)

	doc, err := core.ParseXMLString(document)
	if err != nil {
		log.Fatalf("parse document: %v", err)
	}
	out, err := sigma.Apply(doc)
	if err != nil {
		log.Fatalf("instance mapping: %v", err)
	}
	if err := out.Tree.Validate(tgt); err != nil {
		log.Fatalf("type safety violated: %v", err)
	}
	fmt.Println("\n=== σd(T): conforms to the target schema ===")
	fmt.Print(out.Tree)

	back, err := sigma.Invert(out.Tree)
	if err != nil {
		log.Fatalf("inverse: %v", err)
	}
	if !core.TreesEqual(doc, back) {
		log.Fatal("round trip failed")
	}
	fmt.Println("\n=== σd⁻¹(σd(T)) = T: information preserved ===")
	fmt.Print(back)
}
