// Command integration reproduces the paper's running data-integration
// scenario (Example 4.9 / Figure 1): a class document of schema S0 and
// a student document of schema S1 are embedded into one instance of the
// school schema S by the embeddings σ1 (Example 4.2) and σ2
// (Example 4.9), then both originals are recovered from the integrated
// document.
package main

import (
	"fmt"
	"log"

	"repro/internal/embedding"
	"repro/internal/workload"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

const classDoc = `
<db>
  <class>
    <cno>CS331</cno><title>Databases</title>
    <type><regular><prereq>
      <class><cno>CS210</cno><title>Algorithms</title><type><project>heaps</project></type></class>
    </prereq></regular></type>
  </class>
  <class><cno>CS100</cno><title>Intro</title><type><project>maze</project></type></class>
</db>
`

const studentDoc = `
<db>
  <student><ssn>111</ssn><name>Ann</name><taking><cno>CS331</cno><cno>CS100</cno></taking></student>
  <student><ssn>222</ssn><name>Bob</name><taking><cno>CS210</cno></taking></student>
</db>
`

func main() {
	classes, err := xmltree.ParseString(classDoc)
	if err != nil {
		log.Fatal(err)
	}
	students, err := xmltree.ParseString(studentDoc)
	if err != nil {
		log.Fatal(err)
	}
	sigma1 := workload.ClassEmbedding()   // σ1: class DTD S0 → school DTD S
	sigma2 := workload.StudentEmbedding() // σ2: student DTD S1 → school DTD S

	res, err := embedding.MultiApply(
		[]*embedding.Embedding{sigma1, sigma2},
		[]*xmltree.Tree{classes, students},
	)
	if err != nil {
		log.Fatalf("integration: %v", err)
	}
	if err := res.Tree.Validate(sigma1.Target); err != nil {
		log.Fatalf("integrated document does not conform to the school schema: %v", err)
	}
	fmt.Println("=== integrated school document (conforms to Figure 1(c)) ===")
	fmt.Print(res.Tree)

	// The global view is queryable: ask it for the courses Ann takes.
	q := xpath.MustParse(`students/student[name/text() = "Ann"]/taking/cno/text()`)
	fmt.Println("\nAnn takes:")
	for _, n := range xpath.Eval(q, res.Tree.Root) {
		fmt.Printf("  %s\n", n.Text)
	}

	// Both sources are recoverable from the integrated document: σ1 and
	// σ2 are invertible on their regions (the view is exact, §4.5).
	backClasses, err := sigma1.Invert(res.Tree)
	if err != nil {
		log.Fatalf("recover classes: %v", err)
	}
	backStudents, err := sigma2.Invert(res.Tree)
	if err != nil {
		log.Fatalf("recover students: %v", err)
	}
	if !xmltree.Equal(classes, backClasses) {
		log.Fatalf("class document not recovered: %s", xmltree.Diff(classes, backClasses))
	}
	if !xmltree.Equal(students, backStudents) {
		log.Fatalf("student document not recovered: %s", xmltree.Diff(students, backStudents))
	}
	fmt.Println("\nboth source documents recovered exactly from the integrated view ✓")
}
