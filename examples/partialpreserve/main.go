// Command partialpreserve demonstrates the paper's §7 extension:
// partial information preservation. A hospital exports patient records
// to a research registry; the registry must receive visit histories and
// diagnoses losslessly, while names and payment details are
// deliberately dropped. The selected part of the data — and only it —
// survives the round trip.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/partial"
	"repro/internal/search"
	"repro/internal/xmltree"
)

const hospitalDTD = `
<!ELEMENT patients (patient)*>
<!ELEMENT patient (pid, name, billing, visits)>
<!ELEMENT pid (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT billing (card, plan)>
<!ELEMENT card (#PCDATA)>
<!ELEMENT plan (#PCDATA)>
<!ELEMENT visits (visit)*>
<!ELEMENT visit (date, diagnosis)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT diagnosis (#PCDATA)>
`

const registryDTD = `
<!ELEMENT registry (provenance, cohort)>
<!ELEMENT provenance (site, exported)>
<!ELEMENT site (#PCDATA)>
<!ELEMENT exported (#PCDATA)>
<!ELEMENT cohort (subject)*>
<!ELEMENT subject (pid, visits)>
<!ELEMENT pid (#PCDATA)>
<!ELEMENT visits (visit)*>
<!ELEMENT visit (date, diagnosis)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT diagnosis (#PCDATA)>
`

const records = `
<patients>
  <patient>
    <pid>P-001</pid><name>Ada L.</name>
    <billing><card>4111…</card><plan>gold</plan></billing>
    <visits>
      <visit><date>2026-01-10</date><diagnosis>J06.9</diagnosis></visit>
      <visit><date>2026-03-02</date><diagnosis>M54.5</diagnosis></visit>
    </visits>
  </patient>
  <patient>
    <pid>P-002</pid><name>Alan T.</name>
    <billing><card>5500…</card><plan>basic</plan></billing>
    <visits><visit><date>2026-02-14</date><diagnosis>Z00.0</diagnosis></visit></visits>
  </patient>
</patients>
`

func main() {
	hospital, err := core.ParseDTD(hospitalDTD, "patients")
	if err != nil {
		log.Fatal(err)
	}
	registry, err := core.ParseDTD(registryDTD, "registry")
	if err != nil {
		log.Fatal(err)
	}

	// Select what must be preserved: the visit history keyed by patient
	// id. Names and billing are excluded on purpose.
	keep := partial.NewSelection("patients", "patient", "pid", "visits", "visit", "date", "diagnosis")
	pruned, err := partial.Prune(hospital, keep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== pruned source schema (the preserved part) ===")
	fmt.Print(pruned)

	// Embed the pruned schema into the registry.
	att := core.LexicalSim(pruned, registry, 0.4)
	att.Set("patients", "registry", 0.9)
	att.Set("patient", "subject", 0.9)
	found, err := core.Find(pruned, registry, att, core.FindOptions{Heuristic: search.QualityOrdered, Seed: 1, MaxRestarts: 50})
	if err != nil {
		log.Fatal(err)
	}
	if found.Embedding == nil {
		log.Fatal("no embedding of the preserved part into the registry")
	}
	m, err := partial.NewMapping(hospital, keep, found.Embedding)
	if err != nil {
		log.Fatal(err)
	}

	doc, err := core.ParseXMLString(records)
	if err != nil {
		log.Fatal(err)
	}
	exported, err := m.Apply(doc)
	if err != nil {
		log.Fatal(err)
	}
	if err := exported.Tree.Validate(registry); err != nil {
		log.Fatalf("export does not conform: %v", err)
	}
	fmt.Println("\n=== exported registry document ===")
	fmt.Print(exported.Tree)

	// No leaked identifiers: names and card numbers are gone.
	leaked := false
	exported.Tree.Walk(func(n *xmltree.Node) {
		if n.IsText() && (n.Text == "Ada L." || n.Text == "4111…") {
			leaked = true
		}
	})
	if leaked {
		log.Fatal("confidential fields leaked into the export!")
	}
	fmt.Println("\nnames and billing data absent from the export ✓")

	// The preserved part — exactly π(T) — comes back losslessly.
	recovered, err := m.Recover(exported.Tree)
	if err != nil {
		log.Fatal(err)
	}
	want, err := partial.Project(doc, hospital, keep)
	if err != nil {
		log.Fatal(err)
	}
	if !core.TreesEqual(want, recovered) {
		log.Fatal("preserved part was not recovered exactly")
	}
	fmt.Println("selected data recovered exactly: σd⁻¹(σd(π(T))) = π(T) ✓")
}
