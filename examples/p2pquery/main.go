// Command p2pquery demonstrates query preservation in the paper's P2P
// setting (§1): peer A stores class documents under the Figure 1(a)
// schema; peer B stores the integrated school documents of Figure 1(c).
// A query posed at peer A in regular XPath is translated — through the
// schema embedding σ1 and the schema-directed translation of §4.4 —
// into an equivalent query evaluated at peer B, and the node id mapping
// idM carries the answers back to peer A's world.
package main

import (
	"fmt"
	"log"

	"repro/internal/translate"
	"repro/internal/workload"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

const peerADoc = `
<db>
  <class>
    <cno>CS331</cno><title>Databases</title>
    <type><regular><prereq>
      <class><cno>CS210</cno><title>Algorithms</title>
        <type><regular><prereq>
          <class><cno>CS120</cno><title>Discrete Math</title><type><project>sets</project></type></class>
        </prereq></regular></type>
      </class>
    </prereq></regular></type>
  </class>
</db>
`

func main() {
	sigma := workload.ClassEmbedding()
	docA, err := xmltree.ParseString(peerADoc)
	if err != nil {
		log.Fatal(err)
	}
	// Peer B materializes σd(T): the same information under the school
	// schema.
	mapped, err := sigma.Apply(docA)
	if err != nil {
		log.Fatal(err)
	}
	docB := mapped.Tree

	tr, err := translate.New(sigma)
	if err != nil {
		log.Fatal(err)
	}

	queries := []string{
		// Example 4.8: all (direct or indirect) prerequisites of CS331.
		`class[cno/text() = "CS331"]/(type/regular/prereq/class)*`,
		// All course titles anywhere (X fragment, desugared over S0).
		`.//title/text()`,
		// Projects.
		`.//class[type/project]/cno/text()`,
	}
	for _, src := range queries {
		q := xpath.MustParse(src)
		fmt.Printf("peer A query: %s\n", src)

		localAnswer := xpath.Eval(q, docA.Root)
		fmt.Printf("  local answer at A:      %s\n", describe(localAnswer))

		auto, err := tr.Translate(q)
		if err != nil {
			log.Fatalf("  translation failed: %v", err)
		}
		remote := auto.Eval(docB.Root)
		// idM maps peer B's answer nodes back to peer A's node ids — the
		// refined query-preservation semantics of §2.3.
		var viaB []*xmltree.Node
		for _, n := range remote {
			srcID, ok := mapped.IDM[n.ID]
			if !ok {
				log.Fatalf("  answer node %q outside idM", n.Label)
			}
			viaB = append(viaB, docA.NodeByID(srcID))
		}
		fmt.Printf("  answer via peer B + idM: %s\n", describe(viaB))

		if !sameAnswers(localAnswer, viaB) {
			log.Fatal("  query preservation violated!")
		}
		fmt.Println("  Q(T) = idM(Tr(Q)(σd(T))) ✓")
		// For small automata the translated query can be shown as
		// regular XPath over the school schema.
		if auto.Size() < 60 {
			if back, err := auto.ToRegex(); err == nil {
				fmt.Printf("  Tr(Q) as regular XPath:  %s\n", xpath.String(back))
			}
		}
		fmt.Println()
	}
}

func describe(nodes []*xmltree.Node) string {
	if len(nodes) == 0 {
		return "(empty)"
	}
	out := ""
	for i, n := range nodes {
		if i > 0 {
			out += ", "
		}
		if n.IsText() {
			out += fmt.Sprintf("%q", n.Text)
			continue
		}
		if v, ok := n.Value(); ok {
			out += fmt.Sprintf("%s(%s)", n.Label, v)
			continue
		}
		out += n.Label
		if c, ok := firstValue(n); ok {
			out += "(" + c + ")"
		}
	}
	return out
}

func firstValue(n *xmltree.Node) (string, bool) {
	for _, c := range n.Children {
		if v, ok := c.Value(); ok {
			return v, true
		}
	}
	return "", false
}

func sameAnswers(a, b []*xmltree.Node) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[*xmltree.Node]int{}
	for _, n := range a {
		seen[n]++
	}
	for _, n := range b {
		if seen[n] == 0 {
			return false
		}
		seen[n]--
	}
	return true
}
