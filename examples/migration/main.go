// Command migration demonstrates lossless data migration (§1): an
// order-management schema evolves — types are renamed, intermediate
// wrappers appear, new required fields are added — and documents must
// move to the new schema without losing information. The embedding
// search discovers the mapping from the lexical similarity of tag
// names; the generated XSLT stylesheets perform the migration and the
// rollback the paper motivates ("the user may decide to roll back to
// the original data source").
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/xmltree"
)

// Version 1 of the schema.
const ordersV1 = `
<!ELEMENT orders (order)*>
<!ELEMENT order (orderid, customer, items, status)>
<!ELEMENT orderid (#PCDATA)>
<!ELEMENT customer (custname, city)>
<!ELEMENT custname (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT items (line)*>
<!ELEMENT line (sku, qty)>
<!ELEMENT sku (#PCDATA)>
<!ELEMENT qty (#PCDATA)>
<!ELEMENT status (pending | shipped)>
<!ELEMENT pending EMPTY>
<!ELEMENT shipped (#PCDATA)>
`

// Version 2: renamed tags (order-id, quantity), a wrapper around the
// customer block, a new required audit section, and an extra carrier
// alternative in the status.
const ordersV2 = `
<!ELEMENT orders (audit, order)*>
<!ELEMENT audit (createdby, createdat)>
<!ELEMENT createdby (#PCDATA)>
<!ELEMENT createdat (#PCDATA)>
<!ELEMENT order (order-id, parties, items, status)>
<!ELEMENT order-id (#PCDATA)>
<!ELEMENT parties (customer)>
<!ELEMENT customer (customer-name, city)>
<!ELEMENT customer-name (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT items (line)*>
<!ELEMENT line (sku, quantity)>
<!ELEMENT sku (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT status (pending | shipped | heldup)>
<!ELEMENT pending EMPTY>
<!ELEMENT shipped (#PCDATA)>
<!ELEMENT heldup (#PCDATA)>
`

const v1Doc = `
<orders>
  <order>
    <orderid>A-17</orderid>
    <customer><custname>Acme</custname><city>Zurich</city></customer>
    <items>
      <line><sku>BOLT-3</sku><qty>120</qty></line>
      <line><sku>NUT-3</sku><qty>80</qty></line>
    </items>
    <status><shipped>2025-11-02</shipped></status>
  </order>
</orders>
`

func main() {
	v1, err := core.ParseDTD(ordersV1, "orders")
	if err != nil {
		log.Fatalf("v1 schema: %v", err)
	}
	v2, err := core.ParseDTD(ordersV2, "orders")
	if err != nil {
		log.Fatalf("v2 schema: %v", err)
	}

	// Lexical matching scores order-id/orderid, quantity/qty, ... the
	// search turns the scores into an information-preserving mapping.
	att := core.LexicalSim(v1, v2, 0.3)
	found, err := core.Find(v1, v2, att, core.FindOptions{Heuristic: core.QualityOrdered, Seed: 2, MaxRestarts: 60})
	if err != nil {
		log.Fatal(err)
	}
	if found.Embedding == nil {
		log.Fatal("no embedding from v1 to v2 found")
	}
	sigma := found.Embedding
	fmt.Println("=== discovered migration mapping ===")
	fmt.Print(sigma.Marshal())

	// Compile the migration to XSLT — the paper's deployment story.
	fwd, err := core.ForwardXSLT(sigma)
	if err != nil {
		log.Fatal(err)
	}
	inv, err := core.InverseXSLT(sigma)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== σd as XSLT (excerpt) ===")
	excerpt(fwd.Serialize(), 24)

	doc, err := core.ParseXMLString(v1Doc)
	if err != nil {
		log.Fatal(err)
	}
	if err := doc.Validate(v1); err != nil {
		log.Fatalf("input invalid: %v", err)
	}
	migrated, err := fwd.Run(doc)
	if err != nil {
		log.Fatalf("migration: %v", err)
	}
	if err := migrated.Validate(v2); err != nil {
		log.Fatalf("migrated document does not conform to v2: %v", err)
	}
	fmt.Println("\n=== migrated document (conforms to v2) ===")
	fmt.Print(migrated)

	rolledBack, err := inv.Run(migrated)
	if err != nil {
		log.Fatalf("rollback: %v", err)
	}
	if !xmltree.Equal(doc, rolledBack) {
		log.Fatalf("rollback lost information: %s", xmltree.Diff(doc, rolledBack))
	}
	fmt.Println("\nrollback recovers the v1 document exactly ✓")
}

func excerpt(s string, lines int) {
	parts := strings.SplitAfter(s, "\n")
	if len(parts) > lines {
		parts = parts[:lines]
	}
	fmt.Print(strings.Join(parts, ""))
	fmt.Println("  ...")
}
