#!/usr/bin/env sh
# End-to-end smoke for the xse-serve daemon: boot it on a free port,
# drive the three API endpoints with the golden xse-map fixtures, and
# check the robustness surfaces a deploy relies on — artifact-cache
# reuse (via xse_server_cache_hits_total), request correlation (the
# X-Request-Id we send round-trips into the response header, the
# stderr wide-event log and /debug/events), admission shedding (429 +
# Retry-After under a full slot pool), and SIGTERM drain (in-flight
# request completes, process exits 0). Used by CI's bench-smoke job and
# `make serve-smoke`.
set -eu
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
pid=""
pid2=""
trap 'kill "$pid" "$pid2" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/xse-serve" ./cmd/xse-serve

# Request bodies from the golden fixtures.
python3 - "$tmp" <<'PY'
import json, sys
tmp = sys.argv[1]
pair = {
    "source_dtd": open("testdata/xsemap/class.dtd").read(),
    "target_dtd": open("testdata/xsemap/school.dtd").read(),
}
emb = open("testdata/xsemap/map.xse").read()
doc = open("testdata/xsemap/doc.xml").read()
json.dump({**pair, "embedding": emb, "document": doc},
          open(f"{tmp}/migrate.json", "w"))
json.dump({**pair, "embedding": emb, "query": "class/cno/text()"},
          open(f"{tmp}/translate.json", "w"))
json.dump({**pair, "embedding": emb, "document": doc,
           "budget": {"timeout_ms": 60000}},
          open(f"{tmp}/slow.json", "w"))
PY

# wait_addr logfile: polls for the daemon's listen announcement.
wait_addr() {
  addr=""
  for _ in $(seq 1 100); do
    addr="$(sed -n 's#.*listening on http://\([^ ]*\) .*#\1#p' "$1" | head -n1)"
    [ -n "$addr" ] && return 0
    sleep 0.1
  done
  echo "serve-smoke: no listen announcement; stderr:" >&2
  cat "$1" >&2
  return 1
}

# post body path -> writes response body to $tmp/resp.json, prints status.
post() {
  curl -sS --max-time 30 -o "$tmp/resp.json" -w '%{http_code}' \
    -X POST -H 'Content-Type: application/json' --data-binary "@$1" "$2"
}

fail=0

# --- Functional pass: endpoints, error mapping, artifact cache ---

"$tmp/xse-serve" -addr 127.0.0.1:0 -log-format json 2> "$tmp/s1.log" &
pid=$!
wait_addr "$tmp/s1.log"
base="http://$addr"

for probe in healthz readyz; do
  code="$(curl -sS --max-time 10 -o /dev/null -w '%{http_code}' "$base/$probe")"
  if [ "$code" != 200 ]; then
    echo "serve-smoke: /$probe = $code, want 200" >&2; fail=1
  fi
done

code="$(post "$tmp/migrate.json" "$base/v1/migrate")"
if [ "$code" != 200 ] || ! grep -q '"document"' "$tmp/resp.json"; then
  echo "serve-smoke: /v1/migrate = $code:" >&2; cat "$tmp/resp.json" >&2; fail=1
fi

code="$(post "$tmp/translate.json" "$base/v1/translate")"
if [ "$code" != 200 ] || ! grep -q '"automaton_size"' "$tmp/resp.json"; then
  echo "serve-smoke: /v1/translate = $code:" >&2; cat "$tmp/resp.json" >&2; fail=1
fi

# Second identical migrate reuses the resident schema-pair artifacts.
code="$(post "$tmp/migrate.json" "$base/v1/migrate")"
if [ "$code" != 200 ] || ! grep -q '"cached":true' "$tmp/resp.json"; then
  echo "serve-smoke: repeat /v1/migrate = $code (want 200 cached):" >&2
  cat "$tmp/resp.json" >&2; fail=1
fi

# Request correlation: our X-Request-Id comes back on the response,
# retrieves the request's wide event from /debug/events, and shows up
# in the stderr JSON log.
rid="smoke-rid-$$"
hdr_rid="$(curl -sS --max-time 10 -D - -o /dev/null \
  -X POST -H 'Content-Type: application/json' -H "X-Request-Id: $rid" \
  --data-binary "@$tmp/translate.json" "$base/v1/translate" \
  | tr -d '\r' | sed -n 's/^[Xx]-[Rr]equest-[Ii]d: *//p' | head -n1)"
if [ "$hdr_rid" != "$rid" ]; then
  echo "serve-smoke: X-Request-Id echoed as '$hdr_rid', want '$rid'" >&2; fail=1
fi
curl -sS --max-time 10 "$base/debug/events?event=request&request_id=$rid" > "$tmp/events.json"
if ! grep -q "\"request_id\": *\"$rid\"" "$tmp/events.json"; then
  echo "serve-smoke: /debug/events has no wide event for $rid:" >&2
  cat "$tmp/events.json" >&2; fail=1
fi
if ! grep -q "\"request_id\":\"$rid\"" "$tmp/s1.log"; then
  echo "serve-smoke: stderr log has no wide-event line for $rid" >&2; fail=1
fi
# An error response echoes the correlation ID in its body.
erid="smoke-err-$$"
curl -sS --max-time 10 -o "$tmp/err.json" \
  -X POST -H "X-Request-Id: $erid" --data-binary '{nope' "$base/v1/translate"
if ! grep -q "\"request_id\":\"$erid\"" "$tmp/err.json"; then
  echo "serve-smoke: error body has no request_id:" >&2
  cat "$tmp/err.json" >&2; fail=1
fi

# Error mapping: malformed JSON is 400, wrong method 405.
code="$(curl -sS --max-time 10 -o /dev/null -w '%{http_code}' \
  -X POST --data-binary '{nope' "$base/v1/translate")"
[ "$code" = 400 ] || { echo "serve-smoke: bad JSON = $code, want 400" >&2; fail=1; }
code="$(curl -sS --max-time 10 -o /dev/null -w '%{http_code}' "$base/v1/embed")"
[ "$code" = 405 ] || { echo "serve-smoke: GET /v1/embed = $code, want 405" >&2; fail=1; }

# The metrics surface rides the same listener and carries the server
# families.
curl -sS --max-time 10 "$base/metrics" > "$tmp/metrics.txt"
for want in \
  '# TYPE xse_server_requests_total counter' \
  '# TYPE xse_server_request_seconds histogram' \
  'xse_server_requests_total{endpoint="migrate"} 2' \
  'xse_server_responses_total{status="200"}' \
  'xse_server_responses_total{status="400"}' \
  '^xse_server_cache_hits_total [1-9]'; do
  if ! grep -q "$want" "$tmp/metrics.txt"; then
    echo "serve-smoke: /metrics missing: $want" >&2
    fail=1
  fi
done

kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
pid=""

# --- Robustness pass: shedding and graceful drain ---
# One execution slot, no queue, and every migrate stage slowed by an
# injected 2s latency: a concurrent request must be shed, and SIGTERM
# must let the in-flight one finish.

"$tmp/xse-serve" -addr 127.0.0.1:0 -max-inflight 1 -max-queue -1 \
  -drain-timeout 30s -fault latency:server.migrate:2s 2> "$tmp/s2.log" &
pid2=$!
wait_addr "$tmp/s2.log"
base="http://$addr"

post "$tmp/slow.json" "$base/v1/migrate" > "$tmp/slow.code" &
slowpid=$!
sleep 0.5

# Slot occupied, queue disabled: shed with 429 + Retry-After.
code="$(curl -sS --max-time 10 -D "$tmp/shed.hdr" -o "$tmp/shed.json" -w '%{http_code}' \
  -X POST -H 'Content-Type: application/json' --data-binary "@$tmp/migrate.json" "$base/v1/migrate")"
if [ "$code" != 429 ]; then
  echo "serve-smoke: overload = $code, want 429:" >&2; cat "$tmp/shed.json" >&2; fail=1
fi
if ! grep -qi '^retry-after:' "$tmp/shed.hdr"; then
  echo "serve-smoke: 429 without Retry-After header" >&2; fail=1
fi

# Drain: the in-flight request must complete with 200 and the daemon
# must exit 0 reporting a clean drain.
kill -TERM "$pid2"
drain_rc=0
wait "$pid2" || drain_rc=$?
pid2=""
wait "$slowpid" || true
if [ "$(cat "$tmp/slow.code")" != 200 ]; then
  echo "serve-smoke: in-flight request lost during drain (status $(cat "$tmp/slow.code"))" >&2
  fail=1
fi
if [ "$drain_rc" != 0 ] || ! grep -q 'drained cleanly' "$tmp/s2.log"; then
  echo "serve-smoke: drain exit=$drain_rc; stderr:" >&2
  cat "$tmp/s2.log" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "serve-smoke: FAILED" >&2
  exit 1
fi
echo "serve-smoke: endpoints, cache reuse, shedding and SIGTERM drain OK"
