#!/usr/bin/env sh
# Regenerate BENCH_PR<n>.json: run the micro-benchmark suite and the E3
# size sweep, and fold the results into the checked-in trajectory file
# (see DESIGN.md, "Performance"). The existing baseline run in the
# output file is preserved; pass BASELINE=<file> to (re)set it from a
# saved `go test -bench` output.
#
# Usage:
#   scripts/bench.sh                # refresh BENCH_PR3.json's after run
#   PR=4 scripts/bench.sh           # start BENCH_PR4.json
#   BENCHTIME=5x scripts/bench.sh   # quicker, noisier numbers
set -eu
cd "$(dirname "$0")/.."

PR="${PR:-3}"
OUT="${OUT:-BENCH_PR${PR}.json}"
BENCHTIME="${BENCHTIME:-1s}"
# Repeats per benchmark; benchjson keeps the fastest (see its doc).
COUNT="${COUNT:-3}"
BENCH_RE="${BENCH_RE:-^(BenchmarkInstMap|BenchmarkInverse|BenchmarkXSLTForward|BenchmarkTranslateQuery|BenchmarkEvalXPath|BenchmarkEvalANFA|BenchmarkFindRandom|BenchmarkFindUnambiguous|BenchmarkFindParallel|BenchmarkFindSize|BenchmarkCompose|BenchmarkSpecializedTyping|BenchmarkLexicalMatrix|BenchmarkValidateEmbedding)\$}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "bench.sh: running micro-benchmarks (benchtime=$BENCHTIME, count=$COUNT)..." >&2
go test -run '^$' -bench "$BENCH_RE" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" -timeout 60m . | tee "$tmp/after.txt" >&2

echo "bench.sh: running E3 size sweep..." >&2
go run ./cmd/xse-bench -exp e3 -quick -trials 3 > "$tmp/e3.txt"

if [ -n "${BASELINE:-}" ]; then
    go run ./scripts/benchjson -pr "$PR" -after "$tmp/after.txt" \
        -baseline "$BASELINE" -e3 "$tmp/e3.txt" -out "$OUT"
else
    go run ./scripts/benchjson -pr "$PR" -after "$tmp/after.txt" \
        -e3 "$tmp/e3.txt" -out "$OUT"
fi
echo "bench.sh: wrote $OUT" >&2
