#!/usr/bin/env sh
# Regenerate BENCH_PR<n>.json: run the micro-benchmark suite and the E3
# size sweep, and fold the results into the checked-in trajectory file
# (see DESIGN.md, "Performance"). The existing baseline run in the
# output file is preserved; pass BASELINE=<file> to (re)set it from a
# saved `go test -bench` output.
#
# Usage:
#   scripts/bench.sh                # refresh BENCH_PR4.json's after run
#   PR=5 scripts/bench.sh           # start BENCH_PR5.json
#   BENCHTIME=5x scripts/bench.sh   # quicker, noisier numbers
set -eu
cd "$(dirname "$0")/.."

PR="${PR:-4}"
OUT="${OUT:-BENCH_PR${PR}.json}"
BENCHTIME="${BENCHTIME:-1s}"
# Repeats per benchmark; benchjson keeps the fastest (see its doc).
COUNT="${COUNT:-3}"
BENCH_RE="${BENCH_RE:-^(BenchmarkInstMap|BenchmarkInverse|BenchmarkXSLTForward|BenchmarkTranslateQuery|BenchmarkTranslateOptimized|BenchmarkTranslateCached|BenchmarkEvalXPath|BenchmarkEvalANFA|BenchmarkAnfaEvalCompiled|BenchmarkEvalInterpreted|BenchmarkEvalCompiled|BenchmarkBatchMigrate|BenchmarkFindRandom|BenchmarkFindUnambiguous|BenchmarkFindParallel|BenchmarkFindSize|BenchmarkFindSizeNop|BenchmarkFindSizeLedger|BenchmarkBatchMigrateNop|BenchmarkBatchMigrateStream|BenchmarkStreamMigrate|BenchmarkCompose|BenchmarkSpecializedTyping|BenchmarkLexicalMatrix|BenchmarkValidateEmbedding)\$}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "bench.sh: running micro-benchmarks (benchtime=$BENCHTIME, count=$COUNT)..." >&2
go test -run '^$' -bench "$BENCH_RE" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" -timeout 60m . | tee "$tmp/after.txt" >&2

echo "bench.sh: running E3 size sweep..." >&2
go run ./cmd/xse-bench -exp e3 -quick -trials 3 > "$tmp/e3.txt"

echo "bench.sh: running corpus heuristic shoot-out..." >&2
go run ./cmd/xse-corpus -pairs dblp,xmark -docs 2 -doc-nodes 400 \
    -search-timeout 60s -q > "$tmp/corpus.txt"

# NOTE, when set, replaces the file's free-form note (otherwise the
# existing note is preserved; see benchjson).
set -- -pr "$PR" -after "$tmp/after.txt" -e3 "$tmp/e3.txt" -corpus "$tmp/corpus.txt" -out "$OUT"
if [ -n "${BASELINE:-}" ]; then
    set -- "$@" -baseline "$BASELINE"
fi
if [ -n "${NOTE:-}" ]; then
    set -- "$@" -note "$NOTE"
fi
go run ./scripts/benchjson "$@"
echo "bench.sh: wrote $OUT" >&2
