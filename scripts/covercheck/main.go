// Command covercheck is the coverage ratchet: it reads a Go cover
// profile, prints a per-package statement-coverage summary, and fails
// when total coverage drops below the recorded floor. The floor only
// moves up: raise -floor (and the Makefile default) when a PR lifts
// coverage, so later changes cannot silently erode it.
//
// Usage:
//
//	go test -coverprofile=coverage.out ./...
//	go run ./scripts/covercheck -profile coverage.out -floor 80.0
//
// Exit codes: 0 at or above the floor, 1 below the floor or on a
// malformed profile, 2 usage.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

type counts struct{ covered, total int }

func main() {
	profile := flag.String("profile", "coverage.out", "cover profile to read")
	floor := flag.Float64("floor", 0, "minimum total statement coverage percent")
	exclude := flag.String("exclude", "", "comma-separated package path substrings dropped from the summary and the floor (e.g. /cmd/,/examples/)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "covercheck: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}
	var drops []string
	for _, d := range strings.Split(*exclude, ",") {
		if d = strings.TrimSpace(d); d != "" {
			drops = append(drops, d)
		}
	}
	perPkg, totals, err := parseProfile(*profile, drops)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covercheck: %v\n", err)
		os.Exit(1)
	}
	pkgs := make([]string, 0, len(perPkg))
	for p := range perPkg {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	for _, p := range pkgs {
		c := perPkg[p]
		fmt.Printf("%-50s %6.1f%%  (%d/%d statements)\n", p, pct(c), c.covered, c.total)
	}
	total := pct(totals)
	fmt.Printf("%-50s %6.1f%%  (floor %.1f%%)\n", "total:", total, *floor)
	if total < *floor {
		fmt.Fprintf(os.Stderr, "covercheck: total coverage %.1f%% is below the floor %.1f%% — add tests or (only with a written justification) lower the floor\n", total, *floor)
		os.Exit(1)
	}
}

func pct(c counts) float64 {
	if c.total == 0 {
		return 0
	}
	return 100 * float64(c.covered) / float64(c.total)
}

// parseProfile reads a cover profile in "set" or "count"/"atomic"
// mode: each line after the mode header is
// "file.go:startL.startC,endL.endC numStmts hitCount". Files whose
// package path contains any of the drop substrings are skipped
// entirely (main packages covered by smoke scripts, not unit tests).
func parseProfile(name string, drops []string) (map[string]counts, counts, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, counts{}, err
	}
	defer f.Close()
	perPkg := map[string]counts{}
	var totals counts
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, counts{}, fmt.Errorf("%s:%d: malformed profile line %q", name, ln, line)
		}
		file, _, ok := strings.Cut(fields[0], ":")
		if !ok {
			return nil, counts{}, fmt.Errorf("%s:%d: malformed position %q", name, ln, fields[0])
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, counts{}, fmt.Errorf("%s:%d: statement count: %w", name, ln, err)
		}
		hits, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, counts{}, fmt.Errorf("%s:%d: hit count: %w", name, ln, err)
		}
		pkg := path.Dir(file)
		dropped := false
		for _, d := range drops {
			if strings.Contains(pkg, d) {
				dropped = true
				break
			}
		}
		if dropped {
			continue
		}
		c := perPkg[pkg]
		c.total += stmts
		totals.total += stmts
		if hits > 0 {
			c.covered += stmts
			totals.covered += stmts
		}
		perPkg[pkg] = c
	}
	if err := sc.Err(); err != nil {
		return nil, counts{}, err
	}
	if totals.total == 0 {
		return nil, counts{}, fmt.Errorf("%s: no coverage blocks found", name)
	}
	return perPkg, totals, nil
}
