#!/usr/bin/env sh
# Scrape smoke for the telemetry endpoint: run xse-map -batch with
# -debug-addr, curl /metrics during the -debug-linger window, and check
# the exposition carries the pipeline counters a real Prometheus scrape
# would ingest. Also asserts the -trace-out file is valid JSON with
# per-document stage spans, and that the -log-format json wide event's
# request ID round-trips from stderr into /debug/events. Used by CI's
# bench-smoke job and `make debug-smoke`.
set -eu
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/xse-map" ./cmd/xse-map

# A small batch of copies of the golden fixture document.
mkdir -p "$tmp/in" "$tmp/out"
for i in 0 1 2 3; do
  cp testdata/xsemap/doc.xml "$tmp/in/doc$i.xml"
done

"$tmp/xse-map" \
  -mapping testdata/xsemap/map.xse \
  -source testdata/xsemap/class.dtd \
  -target testdata/xsemap/school.dtd \
  -batch "$tmp/in" -out "$tmp/out" -j 2 \
  -debug-addr 127.0.0.1:0 -debug-linger 10s \
  -trace-out "$tmp/trace.json" -log-format json \
  2> "$tmp/stderr.log" &
pid=$!

# The CLI announces the resolved :0 address on stderr before the batch
# starts; poll for it.
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's#.*debug server listening on http://\([^/]*\)/metrics.*#\1#p' "$tmp/stderr.log" | head -n1)"
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "debug-smoke: no listen announcement; stderr:" >&2
  cat "$tmp/stderr.log" >&2
  kill "$pid" 2>/dev/null || true
  exit 1
fi

# Scrape during the linger window; the batch is tiny, so by the time
# curl lands the counters should be final.
ok=""
for _ in $(seq 1 100); do
  if curl -fsS "http://$addr/metrics" > "$tmp/metrics.txt" 2>/dev/null \
     && grep -q '^xse_pipeline_docs_total 4$' "$tmp/metrics.txt"; then
    ok=1
    break
  fi
  sleep 0.1
done
curl -fsS "http://$addr/metrics.json" > "$tmp/metrics.json"

fail=0
# The run's wide event (emitted at the start of the linger window)
# lands on stderr as a JSON line and in the flight recorder; correlate
# the two by request ID.
rid=""
for _ in $(seq 1 100); do
  rid="$(sed -n 's/.*"request_id":"\([0-9a-f]\{16\}\)".*/\1/p' "$tmp/stderr.log" | head -n1)"
  [ -n "$rid" ] && break
  sleep 0.1
done
if [ -z "$rid" ]; then
  echo "debug-smoke: no wide-event JSON line on stderr:" >&2
  cat "$tmp/stderr.log" >&2
  fail=1
elif ! curl -fsS "http://$addr/debug/events?event=cli&request_id=$rid" > "$tmp/events.json" \
    || ! grep -q "\"request_id\": *\"$rid\"" "$tmp/events.json"; then
  echo "debug-smoke: /debug/events has no cli event for $rid:" >&2
  cat "$tmp/events.json" >&2 || true
  fail=1
fi

kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

if [ -z "$ok" ]; then
  echo "debug-smoke: /metrics never reported xse_pipeline_docs_total 4:" >&2
  cat "$tmp/metrics.txt" >&2 || true
  exit 1
fi
# The batch default is the streaming engine, so the scrape carries the
# xse_stream_* instruments alongside the pipeline document counters.
for want in \
  '# TYPE xse_pipeline_docs_total counter' \
  '# TYPE xse_stream_buffered_peak_bytes histogram' \
  '^xse_pipeline_docs_ok_total 4$' \
  '^xse_stream_docs_total 4$' \
  'xse_pipeline_doc_seconds_bucket{le="+Inf"} 4' \
  '^xse_translate_total' \
  '^xse_anfa_opt_states_removed_total' \
  '^xse_anfa_opt_merged_total' \
  '^xse_anfa_opt_programs_total' \
  '^xse_anfa_compiled_evals_total'; do
  if ! grep -q "$want" "$tmp/metrics.txt"; then
    echo "debug-smoke: /metrics missing: $want" >&2
    fail=1
  fi
done

# /metrics.json and the trace file must both be valid JSON; the trace
# must hold the per-document spans (one stream span per document on
# the streaming default).
python3 - "$tmp/metrics.json" "$tmp/trace.json" <<'PY' || fail=1
import json, sys
json.load(open(sys.argv[1]))
trace = json.load(open(sys.argv[2]))
names = [e["name"] for e in trace["traceEvents"]]
for stage in ("pipeline.doc", "pipeline.stream"):
    if names.count(stage) != 4:
        sys.exit(f"trace has {names.count(stage)} {stage} spans, want 4")
PY

if [ "$fail" -ne 0 ]; then
  echo "debug-smoke: FAILED" >&2
  exit 1
fi
echo "debug-smoke: /metrics, /metrics.json and trace-out OK ($(wc -l < "$tmp/metrics.txt") exposition lines)"
