#!/usr/bin/env sh
# Streaming-migration smoke: the streaming default and the -tree
# baseline must produce byte-identical output (single-document and
# batch, -j 1 and -j 8), and a large document must migrate in bounded
# memory — peak RSS well below what materializing the trees would
# need, enforced under a GOMEMLIMIT far below the tree size. Used by
# CI's bench-smoke job and `make stream-smoke`.
set -eu
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/xse-map" ./cmd/xse-map

MAP="-mapping testdata/xsemap/map.xse -source testdata/xsemap/class.dtd -target testdata/xsemap/school.dtd"

# 1. Single document: stream (default) vs -tree, byte for byte.
"$tmp/xse-map" $MAP -o "$tmp/stream.xml" testdata/xsemap/doc.xml
"$tmp/xse-map" $MAP -tree -o "$tmp/tree.xml" testdata/xsemap/doc.xml
cmp "$tmp/stream.xml" "$tmp/tree.xml" || {
  echo "stream-smoke: single-doc stream output differs from -tree" >&2
  exit 1
}

# 2. Batch: the worker count must not change any byte in either mode.
mkdir -p "$tmp/in"
for i in 0 1 2 3 4 5 6 7; do
  cp testdata/xsemap/doc.xml "$tmp/in/doc$i.xml"
done
for mode in stream tree; do
  for j in 1 8; do
    out="$tmp/out-$mode-j$j"
    mkdir -p "$out"
    flag=""
    [ "$mode" = tree ] && flag="-tree"
    "$tmp/xse-map" $MAP $flag -batch "$tmp/in" -out "$out" -j "$j"
  done
done
for d in "$tmp/out-stream-j8" "$tmp/out-tree-j1" "$tmp/out-tree-j8"; do
  diff -r "$tmp/out-stream-j1" "$d" > /dev/null || {
    echo "stream-smoke: batch outputs differ: $tmp/out-stream-j1 vs $d" >&2
    exit 1
  }
done

# 3. Bounded memory: a ~32 MiB document streams through σd under a
# GOMEMLIMIT far below the ~10x footprint of building both trees, and
# peak RSS stays below the input size itself. The class unit below is
# one conforming (class)* child of the db root.
python3 - "$tmp/big.xml" <<'PY'
import sys
unit = ("<class><cno>CS331</cno><title>DB</title>"
        "<type><regular><prereq>"
        "<class><cno>CS210</cno><title>Algo</title><type><project>p</project></type></class>"
        "</prereq></regular></type></class>\n")
with open(sys.argv[1], "w") as f:
    f.write("<db>\n")
    for _ in range(200_000):
        f.write(unit)
    f.write("</db>\n")
PY
python3 - "$tmp/xse-map" "$tmp/big.xml" <<'PY'
import os, resource, subprocess, sys
xse_map, big = sys.argv[1], sys.argv[2]
doc_bytes = os.path.getsize(big)
env = dict(os.environ, GOMEMLIMIT="32MiB")
cmd = [xse_map,
       "-mapping", "testdata/xsemap/map.xse",
       "-source", "testdata/xsemap/class.dtd",
       "-target", "testdata/xsemap/school.dtd",
       "-max-input", "-1", "-o", os.devnull, big]
rc = subprocess.call(cmd, env=env)
if rc != 0:
    sys.exit(f"stream-smoke: large-doc migration failed (exit {rc})")
peak = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss * 1024
print(f"stream-smoke: {doc_bytes/1e6:.0f} MB document, peak RSS {peak/1e6:.0f} MB")
if peak >= doc_bytes:
    sys.exit(f"stream-smoke: peak RSS {peak} >= document size {doc_bytes}; "
             "the streaming path is buffering the document")
PY

echo "stream-smoke: stream/tree equivalence and bounded-memory OK"
