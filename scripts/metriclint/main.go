// Command metriclint enforces the repo's metric-naming contract (see
// DESIGN.md, "Observability") by scanning registration call sites:
//
//   - every name passed to Counter/Gauge/Histogram (and their *L
//     labeled variants) matches ^xse_[a-z0-9_]+$;
//   - kind-specific suffixes hold: counters end in _total, histograms
//     in _seconds/_bytes/_size/_len, gauges in neither;
//   - no name is registered as two different kinds, and no unlabeled
//     name is registered from two different call sites (labeled
//     families may mint many children from one site);
//   - a labeled family uses one label key everywhere: every *L call
//     site for the same name must pass the same (literal) label key,
//     so a family like xse_server_shed_total{reason=...} cannot grow a
//     second dimension by accident;
//   - every registration carries a non-empty (literal) help string, so
//     the /metrics exposition's # HELP lines stay meaningful.
//
// Only string-literal names are checked; _test.go files are skipped
// (tests may register throwaway names). Exit status 1 on any finding.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

var nameRE = regexp.MustCompile(`^xse_[a-z0-9_]+$`)

// kindOf maps registration method names to a metric kind; the L
// variants mint labeled children.
var kindOf = map[string]string{
	"Counter": "counter", "CounterL": "counter",
	"Gauge": "gauge", "GaugeL": "gauge",
	"Histogram": "histogram", "HistogramL": "histogram",
}

type site struct {
	pos     token.Position
	kind    string
	labeled bool
	// labelKey is the literal label key passed to an *L registration
	// ("" when unlabeled or when the key is not a string literal).
	labelKey string
}

// labelKeyArg extracts the literal label key of an *L registration
// call: CounterL/GaugeL take (name, help, key, value), HistogramL
// takes (name, help, buckets, key, value).
func labelKeyArg(method string, args []ast.Expr) string {
	idx := 2
	if method == "HistogramL" {
		idx = 3
	}
	if len(args) <= idx {
		return ""
	}
	lit, ok := args[idx].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return ""
	}
	key, err := strconv.Unquote(lit.Value)
	if err != nil {
		return ""
	}
	return key
}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"internal", "cmd"}
	}
	fset := token.NewFileSet()
	sites := map[string][]site{} // metric name -> registration sites
	bad := 0
	fail := func(pos token.Position, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "metriclint: %s: %s\n", pos, fmt.Sprintf(format, args...))
		bad++
	}

	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			file, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return err
			}
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				kind, ok := kindOf[sel.Sel.Name]
				if !ok || len(call.Args) == 0 {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				pos := fset.Position(lit.Pos())
				if !nameRE.MatchString(name) {
					fail(pos, "metric %q does not match %s", name, nameRE)
					return true
				}
				if len(call.Args) > 1 {
					if help, ok := call.Args[1].(*ast.BasicLit); ok && help.Kind == token.STRING {
						if s, err := strconv.Unquote(help.Value); err == nil && strings.TrimSpace(s) == "" {
							fail(fset.Position(help.Pos()), "metric %q has an empty help string", name)
						}
					}
				}
				switch kind {
				case "counter":
					if !strings.HasSuffix(name, "_total") {
						fail(pos, "counter %q must end in _total", name)
					}
				case "histogram":
					if !hasAnySuffix(name, "_seconds", "_bytes", "_size", "_len") {
						fail(pos, "histogram %q must end in _seconds, _bytes, _size or _len", name)
					}
				case "gauge":
					if hasAnySuffix(name, "_total", "_seconds") {
						fail(pos, "gauge %q must not use a counter/histogram suffix", name)
					}
				}
				labeled := strings.HasSuffix(sel.Sel.Name, "L")
				s := site{pos: pos, kind: kind, labeled: labeled}
				if labeled {
					s.labelKey = labelKeyArg(sel.Sel.Name, call.Args)
				}
				sites[name] = append(sites[name], s)
				return true
			})
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
			os.Exit(1)
		}
	}

	for name, regs := range sites {
		for _, s := range regs[1:] {
			if s.kind != regs[0].kind {
				fail(s.pos, "metric %q registered as %s here but as %s at %s",
					name, s.kind, regs[0].kind, regs[0].pos)
			}
		}
		// An unlabeled instrument has one owner; a second call site is a
		// duplicate registration (labeled families are exempt: one site
		// may mint children per label value).
		var unlabeled []site
		for _, s := range regs {
			if !s.labeled {
				unlabeled = append(unlabeled, s)
			}
		}
		for i := 1; i < len(unlabeled); i++ {
			fail(unlabeled[i].pos, "metric %q already registered at %s", name, unlabeled[0].pos)
		}
		// Labeled families are one-dimensional by convention: the same
		// literal label key at every call site.
		var keyed []site
		for _, s := range regs {
			if s.labeled && s.labelKey != "" {
				keyed = append(keyed, s)
			}
		}
		for i := 1; i < len(keyed); i++ {
			if s := keyed[i]; s.labelKey != keyed[0].labelKey {
				fail(s.pos, "metric %q labeled %q here but %q at %s",
					name, s.labelKey, keyed[0].labelKey, keyed[0].pos)
			}
		}
	}

	if bad > 0 {
		fmt.Fprintf(os.Stderr, "metriclint: %d problem(s)\n", bad)
		os.Exit(1)
	}
	fmt.Printf("metriclint: %d metric registration sites clean\n", countSites(sites))
}

func hasAnySuffix(s string, suffixes ...string) bool {
	for _, suf := range suffixes {
		if strings.HasSuffix(s, suf) {
			return true
		}
	}
	return false
}

func countSites(sites map[string][]site) int {
	n := 0
	for _, regs := range sites {
		n += len(regs)
	}
	return n
}
