// Command metriclint enforces the repo's metric-naming contract (see
// DESIGN.md, "Observability") by scanning registration call sites:
//
//   - every name passed to Counter/Gauge/Histogram (and their *L
//     labeled variants) matches ^xse_[a-z0-9_]+$;
//   - kind-specific suffixes hold: counters end in _total, histograms
//     in _seconds/_bytes/_size/_len, gauges in neither;
//   - no name is registered as two different kinds, and no unlabeled
//     name is registered from two different call sites (labeled
//     families may mint many children from one site);
//   - a labeled family uses one label key everywhere: every *L call
//     site for the same name must pass the same (literal) label key,
//     so a family like xse_server_shed_total{reason=...} cannot grow a
//     second dimension by accident;
//   - every registration carries a non-empty (literal) help string, so
//     the /metrics exposition's # HELP lines stay meaningful.
//
// It also enforces the wide-event field contract (DESIGN.md, "Wide
// events and explainability") on obs.Event builder calls
// (Str/Int/Float/Bool/Dur with a literal key):
//
//   - keys are snake_case (^[a-z][a-z0-9_]*$);
//   - Dur keys end in _ms (durations render as float milliseconds);
//   - no key repeats within one builder chain.
//
// Only string-literal names are checked; _test.go files are skipped
// (tests may register throwaway names). Exit status 1 on any finding.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

var nameRE = regexp.MustCompile(`^xse_[a-z0-9_]+$`)

// eventKeyRE is the wide-event field-name contract: snake_case, no
// leading digit or underscore.
var eventKeyRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// eventKeyMethods are the obs.Event builder methods whose first
// argument is a field key.
var eventKeyMethods = map[string]bool{
	"Str": true, "Int": true, "Float": true, "Bool": true, "Dur": true,
}

// kindOf maps registration method names to a metric kind; the L
// variants mint labeled children.
var kindOf = map[string]string{
	"Counter": "counter", "CounterL": "counter",
	"Gauge": "gauge", "GaugeL": "gauge",
	"Histogram": "histogram", "HistogramL": "histogram",
}

type site struct {
	pos     token.Position
	kind    string
	labeled bool
	// labelKey is the literal label key passed to an *L registration
	// ("" when unlabeled or when the key is not a string literal).
	labelKey string
}

// labelKeyArg extracts the literal label key of an *L registration
// call: CounterL/GaugeL take (name, help, key, value), HistogramL
// takes (name, help, buckets, key, value).
func labelKeyArg(method string, args []ast.Expr) string {
	idx := 2
	if method == "HistogramL" {
		idx = 3
	}
	if len(args) <= idx {
		return ""
	}
	lit, ok := args[idx].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return ""
	}
	key, err := strconv.Unquote(lit.Value)
	if err != nil {
		return ""
	}
	return key
}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"internal", "cmd"}
	}
	fset := token.NewFileSet()
	sites := map[string][]site{} // metric name -> registration sites
	eventSites := 0              // event-builder field sites checked
	bad := 0
	fail := func(pos token.Position, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "metriclint: %s: %s\n", pos, fmt.Sprintf(format, args...))
		bad++
	}

	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			file, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return err
			}
			// Import names of this file: a call like flag.Int("max-input",
			// ...) is a package function, not an event-builder method, and
			// must not be linted as a field key.
			imports := map[string]bool{}
			for _, imp := range file.Imports {
				if imp.Name != nil {
					imports[imp.Name.Name] = true
					continue
				}
				p, err := strconv.Unquote(imp.Path.Value)
				if err == nil {
					imports[p[strings.LastIndex(p, "/")+1:]] = true
				}
			}
			// Event-builder calls in this file, for the per-chain
			// duplicate-key check.
			type evCall struct {
				recv *ast.CallExpr // inner chained call, nil at chain base
				key  string
				pos  token.Position
			}
			evCalls := map[*ast.CallExpr]evCall{}
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if eventKeyMethods[sel.Sel.Name] && len(call.Args) >= 2 {
					if id, ok := sel.X.(*ast.Ident); !ok || !imports[id.Name] {
						if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
							key, err := strconv.Unquote(lit.Value)
							if err == nil {
								pos := fset.Position(lit.Pos())
								if !eventKeyRE.MatchString(key) {
									fail(pos, "event field %q is not snake_case (%s)", key, eventKeyRE)
								} else if sel.Sel.Name == "Dur" && !strings.HasSuffix(key, "_ms") {
									fail(pos, "duration field %q must end in _ms", key)
								}
								ec := evCall{key: key, pos: pos}
								if inner, ok := sel.X.(*ast.CallExpr); ok {
									ec.recv = inner
								}
								evCalls[call] = ec
							}
						}
					}
				}
				kind, ok := kindOf[sel.Sel.Name]
				if !ok || len(call.Args) == 0 {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				pos := fset.Position(lit.Pos())
				if !nameRE.MatchString(name) {
					fail(pos, "metric %q does not match %s", name, nameRE)
					return true
				}
				if len(call.Args) > 1 {
					if help, ok := call.Args[1].(*ast.BasicLit); ok && help.Kind == token.STRING {
						if s, err := strconv.Unquote(help.Value); err == nil && strings.TrimSpace(s) == "" {
							fail(fset.Position(help.Pos()), "metric %q has an empty help string", name)
						}
					}
				}
				switch kind {
				case "counter":
					if !strings.HasSuffix(name, "_total") {
						fail(pos, "counter %q must end in _total", name)
					}
				case "histogram":
					if !hasAnySuffix(name, "_seconds", "_bytes", "_size", "_len") {
						fail(pos, "histogram %q must end in _seconds, _bytes, _size or _len", name)
					}
				case "gauge":
					if hasAnySuffix(name, "_total", "_seconds") {
						fail(pos, "gauge %q must not use a counter/histogram suffix", name)
					}
				}
				labeled := strings.HasSuffix(sel.Sel.Name, "L")
				s := site{pos: pos, kind: kind, labeled: labeled}
				if labeled {
					s.labelKey = labelKeyArg(sel.Sel.Name, call.Args)
				}
				sites[name] = append(sites[name], s)
				return true
			})
			// Duplicate keys within one builder chain: walk each chain
			// from its head (a call no other event call chains off).
			innerCalls := map[*ast.CallExpr]bool{}
			for _, ec := range evCalls {
				if ec.recv != nil {
					if _, ok := evCalls[ec.recv]; ok {
						innerCalls[ec.recv] = true
					}
				}
			}
			for call, ec := range evCalls {
				eventSites++
				if innerCalls[call] {
					continue
				}
				seen := map[string]token.Position{}
				for e := ec; ; {
					if prev, dup := seen[e.key]; dup {
						fail(e.pos, "event field %q repeated in one chain (also at %s)", e.key, prev)
					} else {
						seen[e.key] = e.pos
					}
					if e.recv == nil {
						break
					}
					next, ok := evCalls[e.recv]
					if !ok {
						break
					}
					e = next
				}
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
			os.Exit(1)
		}
	}

	for name, regs := range sites {
		for _, s := range regs[1:] {
			if s.kind != regs[0].kind {
				fail(s.pos, "metric %q registered as %s here but as %s at %s",
					name, s.kind, regs[0].kind, regs[0].pos)
			}
		}
		// An unlabeled instrument has one owner; a second call site is a
		// duplicate registration (labeled families are exempt: one site
		// may mint children per label value).
		var unlabeled []site
		for _, s := range regs {
			if !s.labeled {
				unlabeled = append(unlabeled, s)
			}
		}
		for i := 1; i < len(unlabeled); i++ {
			fail(unlabeled[i].pos, "metric %q already registered at %s", name, unlabeled[0].pos)
		}
		// Labeled families are one-dimensional by convention: the same
		// literal label key at every call site.
		var keyed []site
		for _, s := range regs {
			if s.labeled && s.labelKey != "" {
				keyed = append(keyed, s)
			}
		}
		for i := 1; i < len(keyed); i++ {
			if s := keyed[i]; s.labelKey != keyed[0].labelKey {
				fail(s.pos, "metric %q labeled %q here but %q at %s",
					name, s.labelKey, keyed[0].labelKey, keyed[0].pos)
			}
		}
	}

	if bad > 0 {
		fmt.Fprintf(os.Stderr, "metriclint: %d problem(s)\n", bad)
		os.Exit(1)
	}
	fmt.Printf("metriclint: %d metric registration sites, %d event field sites clean\n",
		countSites(sites), eventSites)
}

func hasAnySuffix(s string, suffixes ...string) bool {
	for _, suf := range suffixes {
		if strings.HasSuffix(s, suf) {
			return true
		}
	}
	return false
}

func countSites(sites map[string][]site) int {
	n := 0
	for _, regs := range sites {
		n += len(regs)
	}
	return n
}
