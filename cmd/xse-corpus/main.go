// Command xse-corpus drives the real-world schema-evolution corpus
// workload: for every checked-in DTD pair it searches for an embedding
// under each heuristic, migrates generated instance documents,
// validates them against the target schema, cross-checks the streaming
// migration engine against the tree path byte-for-byte and checks
// translated-query preservation, then reports a per-(pair, heuristic)
// quality table — the heuristic shoot-out on realistic schemas.
//
// Usage:
//
//	xse-corpus [-json] [-out FILE] [-pairs dblp,xmark] [-heuristics random,quality,indepset]
//	           [-docs 3] [-doc-nodes 400] [-seed 1] [-random-queries 4]
//	           [-restarts 200] [-local-options 64] [-search-timeout 30s] [-timeout 0] [-q]
//	xse-corpus -emit-corpus REPOROOT
//
// Exit codes: 0 every pair embedded and the pipeline is violation
// free, 1 internal error, 2 usage, 4 timeout or cancellation,
// 5 a pair no heuristic could embed, 6 pipeline violations (failed or
// non-conforming migrations, query-preservation mismatches,
// stream-vs-tree migration divergences).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/search"
)

const (
	exitInternal  = 1
	exitUsage     = 2
	exitTimeout   = 4
	exitUncovered = 5
	exitViolation = 6
)

func main() {
	var (
		jsonOut    = flag.Bool("json", false, "emit the machine-readable JSON report on stdout")
		outFile    = flag.String("out", "", "also write the JSON report to this file")
		pairsFlag  = flag.String("pairs", "", "comma-separated pair names (default: all)")
		heurFlag   = flag.String("heuristics", "random,quality,indepset", "comma-separated heuristics to compare")
		docs       = flag.Int("docs", 3, "instance documents migrated per found embedding")
		docNodes   = flag.Int("doc-nodes", 400, "approximate node count per generated document")
		seed       = flag.Int64("seed", 1, "base random seed")
		randomQ    = flag.Int("random-queries", 4, "generated queries added to each pair's curated set")
		restarts   = flag.Int("restarts", 200, "search restart budget per heuristic")
		localOpts  = flag.Int("local-options", 64, "IndepSet per-production sampling bound")
		searchTO   = flag.Duration("search-timeout", 0, "deadline per individual search (0 = none)")
		timeout    = flag.Duration("timeout", 0, "overall deadline (0 = none)")
		quiet      = flag.Bool("q", false, "suppress progress output")
		corpusRoot = flag.String("emit-corpus", "", "seed parser fuzz corpora under this repository root and exit")
	)
	tel := obs.NewCLI("xse-corpus", flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "xse-corpus: unexpected arguments %v\n", flag.Args())
		os.Exit(exitUsage)
	}
	if *docs < 0 || *docNodes < 0 || *randomQ < 0 || *restarts < 0 || *localOpts < 0 {
		fmt.Fprintln(os.Stderr, "xse-corpus: invalid flag values")
		os.Exit(exitUsage)
	}

	if *corpusRoot != "" {
		n, err := corpus.EmitFuzzSeeds(*corpusRoot)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xse-corpus: emit corpus: %v\n", err)
			os.Exit(exitInternal)
		}
		fmt.Printf("wrote %d fuzz corpus files under %s\n", n, *corpusRoot)
		return
	}

	var heuristics []search.Heuristic
	for _, name := range strings.Split(*heurFlag, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "":
		case "random":
			heuristics = append(heuristics, search.Random)
		case "quality", "qualityordered":
			heuristics = append(heuristics, search.QualityOrdered)
		case "indepset":
			heuristics = append(heuristics, search.IndepSet)
		case "exact":
			heuristics = append(heuristics, search.Exact)
		default:
			fmt.Fprintf(os.Stderr, "xse-corpus: unknown heuristic %q (want random, quality, indepset or exact)\n", name)
			os.Exit(exitUsage)
		}
	}

	ctx, err := tel.Start(context.Background())
	if err != nil {
		fmt.Fprintf(os.Stderr, "xse-corpus: %v\n", err)
		os.Exit(exitInternal)
	}
	defer tel.Close()
	exit := func(code int) {
		tel.SetExit(code)
		tel.Close()
		os.Exit(code)
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := corpus.RunConfig{
		Heuristics:    heuristics,
		Seed:          *seed,
		Docs:          *docs,
		DocNodes:      *docNodes,
		RandomQueries: *randomQ,
		SearchTimeout: *searchTO,
		MaxRestarts:   *restarts,
		LocalOptions:  *localOpts,
	}
	if *pairsFlag != "" {
		for _, p := range strings.Split(*pairsFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Pairs = append(cfg.Pairs, p)
			}
		}
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "xse-corpus: "+format+"\n", args...)
		}
	}

	start := time.Now()
	rep, err := corpus.Run(ctx, cfg)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "xse-corpus: stopped: %v\n", err)
			exit(exitTimeout)
		}
		fmt.Fprintf(os.Stderr, "xse-corpus: %v\n", err)
		if errors.Is(err, corpus.ErrUnknownPair) {
			exit(exitUsage)
		}
		exit(exitInternal)
	}

	if *outFile != "" || *jsonOut {
		blob, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "xse-corpus: %v\n", err)
			exit(exitInternal)
		}
		if *outFile != "" {
			if err := os.WriteFile(*outFile, append(blob, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "xse-corpus: %v\n", err)
				exit(exitInternal)
			}
		}
		if *jsonOut {
			fmt.Printf("%s\n", blob)
		}
	}
	if !*jsonOut {
		fmt.Print(rep.Table())
		fmt.Println()
		fmt.Print(rep.RejectionTable())
	}
	fmt.Fprintf(os.Stderr, "xse-corpus: %d pairs in %.1fs\n", len(rep.Pairs), time.Since(start).Seconds())

	if un := rep.Uncovered(); len(un) > 0 {
		fmt.Fprintf(os.Stderr, "xse-corpus: no heuristic embedded: %s\n", strings.Join(un, ", "))
		exit(exitUncovered)
	}
	if v := rep.Violations(); v > 0 {
		fmt.Fprintf(os.Stderr, "xse-corpus: %d pipeline violations\n", v)
		exit(exitViolation)
	}
}
