// Command xse-query translates a regular XPath query across a schema
// embedding (§4.4) and optionally evaluates it over a target document,
// mapping the answers back through the node id mapping idM.
//
// Usage:
//
//	xse-query -mapping m.xse -source s1.dtd -target s2.dtd -query "a/b[c]" [flags]
//
//	-doc file      evaluate the translated query over this target document
//	-source-doc f  also evaluate the original query over this source
//	               document and verify Q(T) = idM(Tr(Q)(σd(T)))
//	-show-anfa     print the translated automaton
//	-show-regex    expand the automaton back to regular XPath (small automata)
//	-no-optimize   keep the raw translation: skip the schema-aware ANFA
//	               optimizer (the differential baseline; also required
//	               when -doc does not conform to the target schema)
//	-v             report translation-cache statistics (hits/misses)
//	-timeout d     abort the whole run after duration d (exit 4)
//	-max-input n   max input size in bytes (0 = default, -1 = unlimited)
//
// Translation goes through the process-wide query-translation cache;
// repeated -query flags translate each query once and -v surfaces the
// hit/miss counters.
//
// Exit codes: 0 success, 1 internal error or failed preservation
// check, 2 usage, 3 invalid input (unreadable/malformed schemas,
// mappings, queries or documents, resource limits exceeded),
// 4 timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/obs"
	"repro/internal/xmltree"
)

const (
	exitInternal = 1
	exitUsage    = 2
	exitInvalid  = 3
	exitTimeout  = 4
)

// cleanup is run by fatalf before exiting, so profiles, traces, the
// wide event (carrying the real exit code) and the debug server are
// flushed even on fatal paths.
var cleanup = func(code int) {}

// multiFlag collects repeated -query values.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }

func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	var queries multiFlag
	var (
		mappingFile = flag.String("mapping", "", "embedding file from xse-embed (required)")
		sourceFile  = flag.String("source", "", "source DTD file (required)")
		targetFile  = flag.String("target", "", "target DTD file (required)")
		sourceRoot  = flag.String("source-root", "", "source root element")
		targetRoot  = flag.String("target-root", "", "target root element")
		docFile     = flag.String("doc", "", "target document to evaluate against")
		srcDocFile  = flag.String("source-doc", "", "source document for a preservation check")
		showANFA    = flag.Bool("show-anfa", false, "print the translated automaton")
		showRegex   = flag.Bool("show-regex", false, "print the translated query as regular XPath")
		noOptimize  = flag.Bool("no-optimize", false, "skip the schema-aware ANFA optimizer (differential baseline)")
		verbose     = flag.Bool("v", false, "report translation-cache statistics")
		timeout     = flag.Duration("timeout", 0, "abort the run after this duration (0 = no deadline)")
		maxInput    = flag.Int("max-input", 0, "max input size in bytes (0 = default 64MiB, -1 = unlimited)")
	)
	flag.Var(&queries, "query", "regular XPath query over the source schema (repeatable, at least one required)")
	tel := obs.NewCLI("xse-query", flag.CommandLine)
	flag.Parse()
	if *mappingFile == "" || *sourceFile == "" || *targetFile == "" || len(queries) == 0 {
		flag.Usage()
		os.Exit(exitUsage)
	}
	ctx, err := tel.Start(context.Background())
	if err != nil {
		fatalf(exitInternal, "%v", err)
	}
	cleanup = func(code int) { tel.SetExit(code); tel.Close() }
	defer tel.Close()
	if *timeout > 0 {
		// Translation and evaluation observe the context; the deadline
		// surfaces as a typed CancelError mapped to exit 4.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	lim := core.Limits{MaxInputBytes: *maxInput}

	src := mustSchema(*sourceFile, *sourceRoot, lim)
	tgt := mustSchema(*targetFile, *targetRoot, lim)
	sigma := mustMapping(*mappingFile, src, tgt)

	var srcDoc, doc *xmltree.Tree
	var mapped *core.MapResult
	if *srcDocFile != "" {
		srcDoc = mustDoc(*srcDocFile, lim)
		var err error
		mapped, err = sigma.ApplyCtx(ctx, srcDoc)
		if err != nil {
			fatalCtx(err, "map source document")
		}
	} else if *docFile != "" {
		doc = mustDoc(*docFile, lim)
	}

	cache := core.NewTranslationCache(0)
	code := 0
	for _, queryText := range queries {
		q, err := core.ParseQueryLimits(queryText, lim)
		if err != nil {
			fatalf(exitInvalid, "parse query: %v", err)
		}
		auto, err := cache.GetOpt(ctx, sigma, q, core.TranslateOptions{NoOptimize: *noOptimize})
		if err != nil {
			fatalCtx(err, "translate")
		}
		fmt.Printf("query:      %s\n", core.QueryString(q))
		fmt.Printf("automaton:  %d states+transitions\n", auto.Size())
		if *showANFA {
			fmt.Print(auto)
		}
		if *showRegex {
			back, err := auto.ToRegex()
			if err != nil {
				fmt.Printf("regex:      (not expandable: %v)\n", err)
			} else {
				fmt.Printf("regex:      %s\n", core.QueryString(back))
			}
		}

		switch {
		case srcDoc != nil:
			if !checkPreservation(q, auto, srcDoc, mapped) {
				code = exitInternal
			}
		case doc != nil:
			// The compiled backend; the cached automaton carries its
			// program across queries and processes.
			answers, err := auto.Program().RunCtx(ctx, doc.Root)
			if err != nil {
				fatalCtx(err, "evaluate")
			}
			printAnswers(answers)
		}
	}
	if *verbose {
		st := cache.Stats()
		fmt.Printf("cache:      %d hits, %d misses, %d waits, %d entries\n",
			st.Hits, st.Misses, st.Waits, st.Entries)
		obs.WriteSummary(os.Stderr, obs.Default())
	}
	if code != 0 {
		tel.SetExit(code)
		tel.Close()
		os.Exit(code)
	}
}

// checkPreservation verifies Q(T) = idM(Tr(Q)(σd(T))) for one query
// over the source document, printing the verdict.
func checkPreservation(q core.Query, auto *core.ANFA, srcDoc *xmltree.Tree, mapped *core.MapResult) bool {
	want := core.EvalQuery(q, srcDoc.Root)
	got := auto.Eval(mapped.Tree.Root)
	fmt.Printf("source answer:     %d nodes\n", len(want))
	fmt.Printf("translated answer: %d nodes\n", len(got))
	ok := len(want) == len(got)
	seen := map[xmltree.NodeID]int{}
	for _, n := range want {
		seen[n.ID]++
	}
	for _, n := range got {
		id, in := mapped.IDM[n.ID]
		if !in || seen[id] == 0 {
			ok = false
			break
		}
		seen[id]--
	}
	fmt.Printf("Q(T) = idM(Tr(Q)(σd(T))): %v\n", ok)
	return ok
}

func printAnswers(answers []*xmltree.Node) {
	fmt.Printf("answers (%d):\n", len(answers))
	for _, n := range answers {
		if n.IsText() {
			fmt.Printf("  %q\n", n.Text)
			continue
		}
		if v, ok := n.Value(); ok {
			fmt.Printf("  <%s>%s\n", n.Label, v)
			continue
		}
		fmt.Printf("  <%s> (id %d)\n", n.Label, n.ID)
	}
}

// fatalCtx reports a failure, distinguishing a run cut short by
// -timeout (exit 4) from invalid input (exit 3).
func fatalCtx(err error, stage string) {
	var ce *core.CancelError
	if errors.As(err, &ce) {
		fatalf(exitTimeout, "timeout: %v", err)
	}
	fatalf(exitInvalid, "%s: %v", stage, err)
}

func mustSchema(path, root string, lim core.Limits) *core.DTD {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf(exitInvalid, "read %s: %v", path, err)
	}
	d, err := core.ParseDTDLimits(string(data), root, lim)
	if err != nil {
		fatalf(exitInvalid, "%s: %v", path, err)
	}
	return d
}

func mustMapping(path string, src, tgt *core.DTD) *core.Embedding {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf(exitInvalid, "read %s: %v", path, err)
	}
	sigma, err := embedding.Unmarshal(string(data), src, tgt)
	if err != nil {
		fatalf(exitInvalid, "%s: %v", path, err)
	}
	if err := sigma.Validate(nil); err != nil {
		fatalf(exitInvalid, "%s: invalid embedding: %v", path, err)
	}
	return sigma
}

func mustDoc(path string, lim core.Limits) *xmltree.Tree {
	f, err := os.Open(path)
	if err != nil {
		fatalf(exitInvalid, "%v", err)
	}
	defer f.Close()
	doc, err := core.ParseXMLLimits(f, lim)
	if err != nil {
		fatalf(exitInvalid, "%s: %v", path, err)
	}
	return doc
}

func fatalf(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xse-query: "+format+"\n", args...)
	cleanup(code)
	os.Exit(code)
}
