// Command xse-query translates a regular XPath query across a schema
// embedding (§4.4) and optionally evaluates it over a target document,
// mapping the answers back through the node id mapping idM.
//
// Usage:
//
//	xse-query -mapping m.xse -source s1.dtd -target s2.dtd -query "a/b[c]" [flags]
//
//	-doc file      evaluate the translated query over this target document
//	-source-doc f  also evaluate the original query over this source
//	               document and verify Q(T) = idM(Tr(Q)(σd(T)))
//	-show-anfa     print the translated automaton
//	-show-regex    expand the automaton back to regular XPath (small automata)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/xmltree"
)

func main() {
	var (
		mappingFile = flag.String("mapping", "", "embedding file from xse-embed (required)")
		sourceFile  = flag.String("source", "", "source DTD file (required)")
		targetFile  = flag.String("target", "", "target DTD file (required)")
		sourceRoot  = flag.String("source-root", "", "source root element")
		targetRoot  = flag.String("target-root", "", "target root element")
		queryText   = flag.String("query", "", "regular XPath query over the source schema (required)")
		docFile     = flag.String("doc", "", "target document to evaluate against")
		srcDocFile  = flag.String("source-doc", "", "source document for a preservation check")
		showANFA    = flag.Bool("show-anfa", false, "print the translated automaton")
		showRegex   = flag.Bool("show-regex", false, "print the translated query as regular XPath")
	)
	flag.Parse()
	if *mappingFile == "" || *sourceFile == "" || *targetFile == "" || *queryText == "" {
		flag.Usage()
		os.Exit(2)
	}

	src := mustSchema(*sourceFile, *sourceRoot)
	tgt := mustSchema(*targetFile, *targetRoot)
	sigma := mustMapping(*mappingFile, src, tgt)

	q, err := core.ParseQuery(*queryText)
	if err != nil {
		fatalf("parse query: %v", err)
	}
	tr, err := core.NewTranslator(sigma)
	if err != nil {
		fatalf("%v", err)
	}
	auto, err := tr.Translate(q)
	if err != nil {
		fatalf("translate: %v", err)
	}
	fmt.Printf("query:      %s\n", core.QueryString(q))
	fmt.Printf("automaton:  %d states+transitions\n", auto.Size())
	if *showANFA {
		fmt.Print(auto)
	}
	if *showRegex {
		back, err := auto.ToRegex()
		if err != nil {
			fmt.Printf("regex:      (not expandable: %v)\n", err)
		} else {
			fmt.Printf("regex:      %s\n", core.QueryString(back))
		}
	}

	if *docFile == "" && *srcDocFile == "" {
		return
	}

	if *srcDocFile != "" {
		srcDoc := mustDoc(*srcDocFile)
		res, err := sigma.Apply(srcDoc)
		if err != nil {
			fatalf("map source document: %v", err)
		}
		want := core.EvalQuery(q, srcDoc.Root)
		got := auto.Eval(res.Tree.Root)
		fmt.Printf("source answer:     %d nodes\n", len(want))
		fmt.Printf("translated answer: %d nodes\n", len(got))
		ok := len(want) == len(got)
		seen := map[xmltree.NodeID]int{}
		for _, n := range want {
			seen[n.ID]++
		}
		for _, n := range got {
			id, in := res.IDM[n.ID]
			if !in || seen[id] == 0 {
				ok = false
				break
			}
			seen[id]--
		}
		fmt.Printf("Q(T) = idM(Tr(Q)(σd(T))): %v\n", ok)
		if !ok {
			os.Exit(1)
		}
		return
	}

	doc := mustDoc(*docFile)
	answers := auto.Eval(doc.Root)
	fmt.Printf("answers (%d):\n", len(answers))
	for _, n := range answers {
		if n.IsText() {
			fmt.Printf("  %q\n", n.Text)
			continue
		}
		if v, ok := n.Value(); ok {
			fmt.Printf("  <%s>%s\n", n.Label, v)
			continue
		}
		fmt.Printf("  <%s> (id %d)\n", n.Label, n.ID)
	}
}

func mustSchema(path, root string) *core.DTD {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("read %s: %v", path, err)
	}
	d, err := core.ParseDTD(string(data), root)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	return d
}

func mustMapping(path string, src, tgt *core.DTD) *core.Embedding {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("read %s: %v", path, err)
	}
	sigma, err := embedding.Unmarshal(string(data), src, tgt)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	if err := sigma.Validate(nil); err != nil {
		fatalf("%s: invalid embedding: %v", path, err)
	}
	return sigma
}

func mustDoc(path string) *xmltree.Tree {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	doc, err := xmltree.Parse(f)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	return doc
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xse-query: "+format+"\n", args...)
	os.Exit(1)
}
