// Command xse-embed finds an information-preserving schema embedding
// between two DTD files and writes it in the textual mapping format
// understood by xse-map and xse-query.
//
// Usage:
//
//	xse-embed -source s1.dtd -target s2.dtd [-source-root r1] [-target-root r2]
//	          [-att lexical|uniform] [-threshold 0.5]
//	          [-heuristic random|quality|indepset|exact] [-seed 1]
//	          [-restarts 40] [-timeout 30s] [-max-input 67108864]
//	          [-explain] [-o mapping.xse]
//
// The shared telemetry flags (-debug-addr, -trace-out, -cpuprofile,
// -memprofile; see internal/obs) are also accepted; -v appends the
// metric registry summary to the search statistics on stderr.
//
// Exit codes: 0 success, 1 internal error, 2 usage, 3 invalid input
// (unreadable or malformed schemas, resource limits exceeded),
// 4 timeout or cancellation, 5 no embedding found.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/search"
)

const (
	exitInternal = 1
	exitUsage    = 2
	exitInvalid  = 3
	exitTimeout  = 4
	exitNotFound = 5
)

// cleanup is run by fatalf before exiting, so profiles, traces, the
// wide event (carrying the real exit code) and the debug server are
// flushed even on fatal paths.
var cleanup = func(code int) {}

func main() {
	var (
		sourceFile = flag.String("source", "", "source DTD file (required)")
		targetFile = flag.String("target", "", "target DTD file (required)")
		sourceRoot = flag.String("source-root", "", "source root element (default: first declared)")
		targetRoot = flag.String("target-root", "", "target root element (default: first declared)")
		attKind    = flag.String("att", "lexical", "similarity matrix: lexical or uniform")
		threshold  = flag.Float64("threshold", 0.5, "lexical similarity threshold")
		heuristic  = flag.String("heuristic", "random", "random, quality, indepset or exact")
		seed       = flag.Int64("seed", 1, "random seed")
		restarts   = flag.Int("restarts", 40, "max random restarts")
		parallel   = flag.Int("parallel", 1, "worker goroutines for restarts")
		timeout    = flag.Duration("timeout", 0, "bound the embedding search (0 = no deadline)")
		maxInput   = flag.Int("max-input", 0, "max schema file size in bytes (0 = default 64MiB, -1 = unlimited)")
		output     = flag.String("o", "", "output file (default: stdout)")
		verbose    = flag.Bool("v", false, "print search statistics to stderr")
		explain    = flag.Bool("explain", false, "print the per-restart search ledger (rejection counts by constraint class, abort reasons) to stderr")
	)
	tel := obs.NewCLI("xse-embed", flag.CommandLine)
	flag.Parse()
	if *sourceFile == "" || *targetFile == "" {
		flag.Usage()
		os.Exit(exitUsage)
	}
	ctx, err := tel.Start(context.Background())
	if err != nil {
		fatalf(exitInternal, "%v", err)
	}
	cleanup = func(code int) { tel.SetExit(code); tel.Close() }
	defer tel.Close()
	lim := core.Limits{MaxInputBytes: *maxInput}

	src := mustSchema(*sourceFile, *sourceRoot, lim)
	tgt := mustSchema(*targetFile, *targetRoot, lim)

	var att *core.SimMatrix
	switch *attKind {
	case "lexical":
		att = core.LexicalSim(src, tgt, *threshold)
	case "uniform":
		att = core.UniformSim(src, tgt)
	default:
		fatalf(exitUsage, "unknown -att %q (want lexical or uniform)", *attKind)
	}

	var h core.Heuristic
	switch strings.ToLower(*heuristic) {
	case "random":
		h = search.Random
	case "quality":
		h = search.QualityOrdered
	case "indepset":
		h = search.IndepSet
	case "exact":
		h = search.Exact
	default:
		fatalf(exitUsage, "unknown -heuristic %q", *heuristic)
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := core.FindCtx(ctx, src, tgt, att, core.FindOptions{
		Heuristic:   h,
		Seed:        *seed,
		MaxRestarts: *restarts,
		Parallel:    *parallel,
		Explain:     *explain,
	})
	// The ledger prints on every outcome — a timeout's or not-found's
	// rejection breakdown is exactly what -explain is for.
	if *explain && res != nil {
		search.WriteLedger(os.Stderr, res)
	}
	if *verbose && res != nil {
		fmt.Fprintf(os.Stderr, "heuristic=%s restarts=%d steps=%d paths=%d elapsed=%s exhausted=%v\n",
			h, res.Restarts, res.Steps, res.PathsEnumerated, res.Elapsed, res.Exhausted)
		// Cache effectiveness and the rest of the search counters come
		// from the process registry (the same numbers /metrics serves).
		obs.WriteSummary(os.Stderr, obs.Default())
	}
	if err != nil {
		if errors.Is(err, core.ErrDeadline) || errors.Is(err, core.ErrCanceled) {
			fatalf(exitTimeout, "%v after %s (restarts=%d, paths enumerated=%d)",
				err, res.Elapsed.Round(time.Millisecond), res.Restarts, res.PathsEnumerated)
		}
		fatalf(exitInternal, "search: %v", err)
	}
	if res.Embedding == nil {
		if res.Exhausted {
			fatalf(exitNotFound, "no embedding exists within the search bounds")
		}
		fatalf(exitNotFound, "no embedding found (budget exhausted; try -restarts or -att uniform)")
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "quality=%.2f of %d types\n", res.Quality, src.Size())
	}
	text := res.Embedding.Marshal()
	if *output == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*output, []byte(text), 0o644); err != nil {
		fatalf(exitInternal, "write %s: %v", *output, err)
	}
}

func mustSchema(path, root string, lim core.Limits) *core.DTD {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf(exitInvalid, "read %s: %v", path, err)
	}
	d, err := core.ParseDTDLimits(string(data), root, lim)
	if err != nil {
		fatalf(exitInvalid, "%s: %v", path, err)
	}
	return d
}

func fatalf(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xse-embed: "+format+"\n", args...)
	cleanup(code)
	os.Exit(code)
}
