// Command xse-embed finds an information-preserving schema embedding
// between two DTD files and writes it in the textual mapping format
// understood by xse-map and xse-query.
//
// Usage:
//
//	xse-embed -source s1.dtd -target s2.dtd [-source-root r1] [-target-root r2]
//	          [-att lexical|uniform] [-threshold 0.5]
//	          [-heuristic random|quality|indepset|exact] [-seed 1]
//	          [-restarts 40] [-o mapping.xse]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/search"
)

func main() {
	var (
		sourceFile = flag.String("source", "", "source DTD file (required)")
		targetFile = flag.String("target", "", "target DTD file (required)")
		sourceRoot = flag.String("source-root", "", "source root element (default: first declared)")
		targetRoot = flag.String("target-root", "", "target root element (default: first declared)")
		attKind    = flag.String("att", "lexical", "similarity matrix: lexical or uniform")
		threshold  = flag.Float64("threshold", 0.5, "lexical similarity threshold")
		heuristic  = flag.String("heuristic", "random", "random, quality, indepset or exact")
		seed       = flag.Int64("seed", 1, "random seed")
		restarts   = flag.Int("restarts", 40, "max random restarts")
		parallel   = flag.Int("parallel", 1, "worker goroutines for restarts")
		output     = flag.String("o", "", "output file (default: stdout)")
		verbose    = flag.Bool("v", false, "print search statistics to stderr")
	)
	flag.Parse()
	if *sourceFile == "" || *targetFile == "" {
		flag.Usage()
		os.Exit(2)
	}

	src := mustSchema(*sourceFile, *sourceRoot)
	tgt := mustSchema(*targetFile, *targetRoot)

	var att *core.SimMatrix
	switch *attKind {
	case "lexical":
		att = core.LexicalSim(src, tgt, *threshold)
	case "uniform":
		att = core.UniformSim(src, tgt)
	default:
		fatalf("unknown -att %q (want lexical or uniform)", *attKind)
	}

	var h core.Heuristic
	switch strings.ToLower(*heuristic) {
	case "random":
		h = search.Random
	case "quality":
		h = search.QualityOrdered
	case "indepset":
		h = search.IndepSet
	case "exact":
		h = search.Exact
	default:
		fatalf("unknown -heuristic %q", *heuristic)
	}

	res, err := core.Find(src, tgt, att, core.FindOptions{
		Heuristic:   h,
		Seed:        *seed,
		MaxRestarts: *restarts,
		Parallel:    *parallel,
	})
	if err != nil {
		fatalf("search: %v", err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "heuristic=%s restarts=%d steps=%d elapsed=%s exhausted=%v\n",
			h, res.Restarts, res.Steps, res.Elapsed, res.Exhausted)
	}
	if res.Embedding == nil {
		if res.Exhausted {
			fatalf("no embedding exists within the search bounds")
		}
		fatalf("no embedding found (budget exhausted; try -restarts or -att uniform)")
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "quality=%.2f of %d types\n", res.Quality, src.Size())
	}
	text := res.Embedding.Marshal()
	if *output == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*output, []byte(text), 0o644); err != nil {
		fatalf("write %s: %v", *output, err)
	}
}

func mustSchema(path, root string) *core.DTD {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("read %s: %v", path, err)
	}
	d, err := core.ParseDTD(string(data), root)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	return d
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xse-embed: "+format+"\n", args...)
	os.Exit(1)
}
