// Command xse-oracle runs the property-based information-preservation
// oracle: randomized end-to-end verification that schema embeddings
// are type safe, invertible, and query preserving (Theorems 4.1/4.2),
// with differential cross-checks of ANFA evaluation and the generated
// XSLT against the programmatic instance mapping.
//
// Usage:
//
//	xse-oracle [-trials 500] [-seed 1] [-queries 3]
//	           [-min-types 4] [-max-types 12] [-noise 0.8]
//	           [-timeout 0] [-no-shrink] [-repro-dir DIR] [-q]
//	xse-oracle -emit-corpus REPOROOT [-corpus-per-target 24]
//
// Counterexamples are shrunk to minimal failing inputs and, with
// -repro-dir, serialized to replayable reproducer files.
//
// Exit codes: 0 all properties hold, 1 internal error, 2 usage,
// 4 timeout or cancellation, 6 property violations found.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/oracle"
)

const (
	exitInternal  = 1
	exitUsage     = 2
	exitTimeout   = 4
	exitViolation = 6
)

func main() {
	var (
		trials     = flag.Int("trials", 500, "number of generated scenarios")
		seed       = flag.Int64("seed", 1, "base random seed (trial i uses seed+i)")
		queries    = flag.Int("queries", 3, "random X_R queries checked per scenario")
		minTypes   = flag.Int("min-types", 4, "minimum synthetic source schema size")
		maxTypes   = flag.Int("max-types", 12, "maximum synthetic source schema size")
		noise      = flag.Float64("noise", 0.8, "maximum schema perturbation level in [0,1]")
		timeout    = flag.Duration("timeout", 0, "overall deadline (0 = none)")
		noShrink   = flag.Bool("no-shrink", false, "disable counterexample minimization")
		reproDir   = flag.String("repro-dir", "", "write reproducer files to this directory")
		quiet      = flag.Bool("q", false, "suppress progress output")
		corpusRoot = flag.String("emit-corpus", "", "seed parser fuzz corpora under this repository root and exit")
		corpusPer  = flag.Int("corpus-per-target", 24, "corpus files per fuzz target with -emit-corpus")
	)
	tel := obs.NewCLI("xse-oracle", flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "xse-oracle: unexpected arguments %v\n", flag.Args())
		os.Exit(exitUsage)
	}
	if *trials <= 0 || *queries < 0 || *minTypes < 2 || *maxTypes < *minTypes || *noise < 0 || *noise > 1 {
		fmt.Fprintln(os.Stderr, "xse-oracle: invalid flag values")
		os.Exit(exitUsage)
	}
	ctx, err := tel.Start(context.Background())
	if err != nil {
		fmt.Fprintf(os.Stderr, "xse-oracle: %v\n", err)
		os.Exit(exitInternal)
	}
	defer tel.Close()
	// exit flushes telemetry before leaving: deferred Close does not run
	// past os.Exit.
	exit := func(code int) {
		tel.SetExit(code)
		tel.Close()
		os.Exit(code)
	}

	cfg := oracle.Config{
		Trials:          *trials,
		Seed:            *seed,
		QueriesPerTrial: *queries,
		MinTypes:        *minTypes,
		MaxTypes:        *maxTypes,
		MaxNoise:        *noise,
		NoShrink:        *noShrink,
		ReproDir:        *reproDir,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "xse-oracle: "+format+"\n", args...)
		}
	}

	if *corpusRoot != "" {
		n, err := oracle.EmitCorpus(*corpusRoot, cfg, *corpusPer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xse-oracle: emit corpus: %v\n", err)
			exit(exitInternal)
		}
		fmt.Printf("wrote %d fuzz corpus files under %s\n", n, *corpusRoot)
		return
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	rep, err := oracle.Run(ctx, cfg)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "xse-oracle: stopped after %d trials: %v\n", rep.Trials, err)
			exit(exitTimeout)
		}
		fmt.Fprintf(os.Stderr, "xse-oracle: %v\n", err)
		exit(exitInternal)
	}
	fmt.Printf("%s  (%.1fs)\n", rep.Summary(), time.Since(start).Seconds())
	if rep.Failed() {
		for i := range rep.Violations {
			v := &rep.Violations[i]
			fmt.Printf("VIOLATION %s\n", v.String())
			if v.ReproFile != "" {
				fmt.Printf("  reproducer: %s\n", v.ReproFile)
			}
		}
		exit(exitViolation)
	}
}
