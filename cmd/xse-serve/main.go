// Command xse-serve is the long-running embedding + migration daemon:
// an HTTP/JSON service that amortizes DTD parsing, embedding search,
// ANFA construction and query compilation across requests through a
// shared, bounded, content-addressed artifact cache, with admission
// control, per-request budgets, bounded retry and graceful drain (see
// internal/server and DESIGN.md "Service layer").
//
// Usage:
//
//	xse-serve [-addr :8080] [flags]
//
//	-addr a             listen address (":0" picks a free port, announced on stderr)
//	-max-inflight n     concurrently executing requests (default 4×GOMAXPROCS)
//	-max-queue n        admission queue length beyond that (default 64)
//	-queue-wait d       max time a request waits for a slot (default 1s)
//	-default-timeout d  per-request budget when the request names none (default 10s)
//	-max-timeout d      cap on the budget a request may ask for (default 2m)
//	-retry n            retries for transiently failed migrate stages (default 2)
//	-retry-base d       base backoff between retries, doubling with jitter (default 25ms)
//	-drain-timeout d    max time to finish in-flight requests on SIGTERM (default 15s)
//	-drain-grace d      readiness-down to listener-close gap for LB deregistration (default 0)
//	-cache-size n       schema-pair artifact cache entries (default 64)
//	-max-input n        max request body / input size in bytes (0 = default 64MiB)
//	-log-format f       per-request wide events on stderr: "json" or "text" (default off)
//	-fault spec         test-only fault injection, repeatable (mode:stage[:arg], see internal/guard)
//
// Endpoints: POST /v1/embed, /v1/translate, /v1/migrate (JSON; see
// README for curl examples); GET /healthz (liveness), /readyz
// (readiness — JSON body with drain state and queue depth, 503 while
// draining), /metrics, /metrics.json, /debug/vars, /debug/events (the
// flight recorder of recent request events, filterable by query
// params), /debug/pprof/* (the internal/obs surface).
//
// Every request carries a correlation ID: the X-Request-Id request
// header when present (else minted), echoed in the response header and
// error bodies, stamped on the request's wide event and retrievable
// from /debug/events?request_id=....
//
// Signals: SIGTERM and SIGINT start a graceful drain — readiness
// flips, new requests are shed with 503 + Retry-After, in-flight
// requests finish (or are canceled at -drain-timeout and answer 504).
// A second signal forces immediate exit. Exit code 0 after a clean
// drain, 1 when the drain deadline forced cancellations.
//
// The shared telemetry flags (-trace-out, -cpuprofile, -memprofile;
// see internal/obs) are also accepted. -debug-addr works but is
// redundant: the service listener already serves /metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/server"
)

const (
	exitInternal = 1
	exitUsage    = 2
)

// cleanup is run by fatalf before exiting, so profiles, traces and the
// run's wide event (with the real exit code) are flushed even on fatal
// paths.
var cleanup = func(code int) {}

// faultFlags collects repeated -fault specs.
type faultFlags []guard.FaultSpec

func (f *faultFlags) String() string { return fmt.Sprint([]guard.FaultSpec(*f)) }

func (f *faultFlags) Set(s string) error {
	spec, err := guard.ParseFaultSpec(s)
	if err != nil {
		return err
	}
	*f = append(*f, spec)
	return nil
}

func main() {
	var faults faultFlags
	var (
		addr           = flag.String("addr", ":8080", "listen address (\":0\" picks a free port)")
		maxInFlight    = flag.Int("max-inflight", 0, "max concurrently executing requests (0 = 4×GOMAXPROCS)")
		maxQueue       = flag.Int("max-queue", 0, "admission queue length (0 = default 64, negative = no queue)")
		queueWait      = flag.Duration("queue-wait", 0, "max admission queue wait (0 = default 1s)")
		defaultTimeout = flag.Duration("default-timeout", 0, "per-request budget when unspecified (0 = default 10s)")
		maxTimeout     = flag.Duration("max-timeout", 0, "cap on requested per-request budgets (0 = default 2m)")
		retries        = flag.Int("retry", 0, "retries for transiently failed migrate stages (0 = default 2, negative = none)")
		retryBase      = flag.Duration("retry-base", 0, "base retry backoff, doubling with jitter (0 = default 25ms)")
		drainTimeout   = flag.Duration("drain-timeout", 15*time.Second, "max time to finish in-flight requests on SIGTERM/SIGINT")
		drainGrace     = flag.Duration("drain-grace", 0, "hold the listener open this long after readiness drops (LB deregistration)")
		cacheSize      = flag.Int("cache-size", 0, "schema-pair artifact cache entries (0 = default 64)")
		maxInput       = flag.Int("max-input", 0, "max request body / input size in bytes (0 = default 64MiB, -1 = unlimited)")
	)
	flag.Var(&faults, "fault", "test-only fault injection spec mode:stage[:arg] (repeatable)")
	tel := obs.NewCLI("xse-serve", flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(exitUsage)
	}
	if _, err := tel.Start(context.Background()); err != nil {
		fatalf("%v", err)
	}
	cleanup = func(code int) { tel.SetExit(code); tel.Close() }
	defer tel.Close()

	if len(faults) > 0 {
		fmt.Fprintf(os.Stderr, "xse-serve: WARNING: fault injection active (%d spec(s)) — test use only\n", len(faults))
		guard.SetFaultPlan(guard.NewFaultPlan(faults...))
	}

	srv := server.New(server.Config{
		Addr:           *addr,
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		QueueWait:      *queueWait,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		Retries:        *retries,
		RetryBase:      *retryBase,
		DrainGrace:     *drainGrace,
		CacheSize:      *cacheSize,
		Limits:         guard.Limits{MaxInputBytes: *maxInput},
		Log:            os.Stderr,
		LogFormat:      tel.LogFormat(),
	})
	if err := srv.Start(); err != nil {
		fatalf("listen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "xse-serve: listening on http://%s (POST /v1/{embed,translate,migrate}; GET /healthz /readyz /metrics)\n", srv.Addr())

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigs
	fmt.Fprintf(os.Stderr, "xse-serve: %s: draining (timeout %s) — readiness down, shedding new requests\n", sig, *drainTimeout)

	// A second signal skips the drain.
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "xse-serve: %s: second signal, exiting immediately\n", sig)
		tel.SetExit(exitInternal)
		tel.Close()
		os.Exit(exitInternal)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "xse-serve: drain incomplete: %v\n", err)
		tel.SetExit(exitInternal)
		tel.Close()
		os.Exit(exitInternal)
	}
	fmt.Fprintln(os.Stderr, "xse-serve: drained cleanly")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xse-serve: "+format+"\n", args...)
	cleanup(exitInternal)
	os.Exit(exitInternal)
}
