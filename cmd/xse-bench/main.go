// Command xse-bench regenerates the experimental study: it runs the
// experiment drivers E1–E7 of DESIGN.md (the paper's §5.2 evaluation
// plus the Theorem 4.1/4.3 scaling claims) and prints their tables.
//
// Usage:
//
//	xse-bench                 # all experiments, full sweeps
//	xse-bench -exp e3         # one experiment
//	xse-bench -quick          # reduced sweeps
//	xse-bench -trials 40      # more trials per point
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	var (
		exp     = flag.String("exp", "", "run one experiment: e1..e7 (default: all)")
		quick   = flag.Bool("quick", false, "reduced sweeps")
		trials  = flag.Int("trials", 0, "trials per configuration point (default 20, quick 5)")
		seed    = flag.Int64("seed", 1, "random seed")
		timeout = flag.Duration("search-timeout", 0, "deadline per embedding search; timed-out trials count as failures (0 = none)")
	)
	tel := obs.NewCLI("xse-bench", flag.CommandLine)
	flag.Parse()
	if _, err := tel.Start(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "xse-bench: %v\n", err)
		os.Exit(1)
	}
	defer tel.Close()
	cfg := experiments.Config{Seed: *seed, Trials: *trials, Quick: *quick, SearchTimeout: *timeout}
	if *exp != "" {
		table, ok := experiments.ByID(*exp, cfg)
		if !ok {
			fmt.Fprintf(os.Stderr, "xse-bench: unknown experiment %q (want e1..e7)\n", *exp)
			tel.SetExit(2)
			tel.Close()
			os.Exit(2)
		}
		fmt.Println(table)
		return
	}
	for _, table := range experiments.All(cfg) {
		fmt.Println(table)
	}
}
