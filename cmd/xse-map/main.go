// Command xse-map applies a schema embedding to XML documents: forward
// (σd, producing a target-conformant document), inverse (σd⁻¹,
// recovering the source), or emitting the equivalent XSLT stylesheets.
//
// Usage:
//
//	xse-map -mapping m.xse -source s1.dtd -target s2.dtd [flags] [doc.xml]
//
//	-invert        apply σd⁻¹ instead of σd
//	-xslt          print the stylesheet instead of transforming
//	-via-xslt      transform by running the generated stylesheet
//	-o file        output file (default stdout)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/xmltree"
)

func main() {
	var (
		mappingFile = flag.String("mapping", "", "embedding file from xse-embed (required)")
		sourceFile  = flag.String("source", "", "source DTD file (required)")
		targetFile  = flag.String("target", "", "target DTD file (required)")
		sourceRoot  = flag.String("source-root", "", "source root element")
		targetRoot  = flag.String("target-root", "", "target root element")
		invert      = flag.Bool("invert", false, "apply the inverse mapping σd⁻¹")
		emitXSLT    = flag.Bool("xslt", false, "print the XSLT stylesheet and exit")
		viaXSLT     = flag.Bool("via-xslt", false, "transform by executing the generated stylesheet")
		output      = flag.String("o", "", "output file (default: stdout)")
	)
	flag.Parse()
	if *mappingFile == "" || *sourceFile == "" || *targetFile == "" {
		flag.Usage()
		os.Exit(2)
	}

	src := mustSchema(*sourceFile, *sourceRoot)
	tgt := mustSchema(*targetFile, *targetRoot)
	sigma := mustMapping(*mappingFile, src, tgt)

	out := os.Stdout
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		out = f
	}

	if *emitXSLT {
		sheet, err := stylesheet(sigma, *invert)
		if err != nil {
			fatalf("generate stylesheet: %v", err)
		}
		fmt.Fprint(out, sheet.Serialize())
		return
	}

	if flag.NArg() != 1 {
		fatalf("exactly one input document expected")
	}
	doc := mustDoc(flag.Arg(0))

	var result *xmltree.Tree
	switch {
	case *viaXSLT:
		sheet, err := stylesheet(sigma, *invert)
		if err != nil {
			fatalf("generate stylesheet: %v", err)
		}
		result, err = sheet.Run(doc)
		if err != nil {
			fatalf("stylesheet execution: %v", err)
		}
	case *invert:
		var err error
		result, err = sigma.Invert(doc)
		if err != nil {
			fatalf("inverse mapping: %v", err)
		}
	default:
		res, err := sigma.Apply(doc)
		if err != nil {
			fatalf("instance mapping: %v", err)
		}
		result = res.Tree
	}

	check := tgt
	if *invert {
		check = src
	}
	if err := result.Validate(check); err != nil {
		fatalf("internal error: output does not conform: %v", err)
	}
	fmt.Fprint(out, result)
}

func stylesheet(sigma *core.Embedding, invert bool) (*core.Stylesheet, error) {
	if invert {
		return core.InverseXSLT(sigma)
	}
	return core.ForwardXSLT(sigma)
}

func mustSchema(path, root string) *core.DTD {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("read %s: %v", path, err)
	}
	d, err := core.ParseDTD(string(data), root)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	return d
}

func mustMapping(path string, src, tgt *core.DTD) *core.Embedding {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("read %s: %v", path, err)
	}
	sigma, err := embedding.Unmarshal(string(data), src, tgt)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	if err := sigma.Validate(nil); err != nil {
		fatalf("%s: invalid embedding: %v", path, err)
	}
	return sigma
}

func mustDoc(path string) *xmltree.Tree {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	doc, err := xmltree.Parse(f)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	return doc
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xse-map: "+format+"\n", args...)
	os.Exit(1)
}
