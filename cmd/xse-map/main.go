// Command xse-map applies a schema embedding to XML documents: forward
// (σd, producing a target-conformant document), inverse (σd⁻¹,
// recovering the source), or emitting the equivalent XSLT stylesheets.
//
// Usage:
//
//	xse-map -mapping m.xse -source s1.dtd -target s2.dtd [flags] [doc.xml]
//
//	-invert        apply σd⁻¹ instead of σd
//	-xslt          print the stylesheet instead of transforming
//	-via-xslt      transform by running the generated stylesheet
//	-timeout d     abort the whole run after duration d (exit 4)
//	-max-input n   max input size in bytes (0 = default, -1 = unlimited)
//	-o file        output file (default stdout)
//
// Exit codes: 0 success, 1 internal error, 2 usage, 3 invalid input
// (unreadable/malformed schemas, mappings or documents, resource
// limits exceeded), 4 timeout.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/xmltree"
)

const (
	exitInternal = 1
	exitUsage    = 2
	exitInvalid  = 3
	exitTimeout  = 4
)

func main() {
	var (
		mappingFile = flag.String("mapping", "", "embedding file from xse-embed (required)")
		sourceFile  = flag.String("source", "", "source DTD file (required)")
		targetFile  = flag.String("target", "", "target DTD file (required)")
		sourceRoot  = flag.String("source-root", "", "source root element")
		targetRoot  = flag.String("target-root", "", "target root element")
		invert      = flag.Bool("invert", false, "apply the inverse mapping σd⁻¹")
		emitXSLT    = flag.Bool("xslt", false, "print the XSLT stylesheet and exit")
		viaXSLT     = flag.Bool("via-xslt", false, "transform by executing the generated stylesheet")
		timeout     = flag.Duration("timeout", 0, "abort the run after this duration (0 = no deadline)")
		maxInput    = flag.Int("max-input", 0, "max input size in bytes (0 = default 64MiB, -1 = unlimited)")
		output      = flag.String("o", "", "output file (default: stdout)")
	)
	flag.Parse()
	if *mappingFile == "" || *sourceFile == "" || *targetFile == "" {
		flag.Usage()
		os.Exit(exitUsage)
	}
	if *timeout > 0 {
		// The mapping stages are not context-aware; a watchdog turns a
		// stuck run into a clean, distinguishable exit.
		time.AfterFunc(*timeout, func() {
			fmt.Fprintf(os.Stderr, "xse-map: timeout after %s\n", *timeout)
			os.Exit(exitTimeout)
		})
	}
	lim := core.Limits{MaxInputBytes: *maxInput}

	src := mustSchema(*sourceFile, *sourceRoot, lim)
	tgt := mustSchema(*targetFile, *targetRoot, lim)
	sigma := mustMapping(*mappingFile, src, tgt)

	out := os.Stdout
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			fatalf(exitInternal, "%v", err)
		}
		defer f.Close()
		out = f
	}

	if *emitXSLT {
		sheet, err := stylesheet(sigma, *invert)
		if err != nil {
			fatalf(exitInternal, "generate stylesheet: %v", err)
		}
		fmt.Fprint(out, sheet.Serialize())
		return
	}

	if flag.NArg() != 1 {
		fatalf(exitUsage, "exactly one input document expected")
	}
	doc := mustDoc(flag.Arg(0), lim)

	var result *xmltree.Tree
	switch {
	case *viaXSLT:
		sheet, err := stylesheet(sigma, *invert)
		if err != nil {
			fatalf(exitInternal, "generate stylesheet: %v", err)
		}
		result, err = sheet.Run(doc)
		if err != nil {
			fatalf(exitInvalid, "stylesheet execution: %v", err)
		}
	case *invert:
		var err error
		result, err = sigma.Invert(doc)
		if err != nil {
			fatalf(exitInvalid, "inverse mapping: %v", err)
		}
	default:
		res, err := sigma.Apply(doc)
		if err != nil {
			fatalf(exitInvalid, "instance mapping: %v", err)
		}
		result = res.Tree
	}

	check := tgt
	if *invert {
		check = src
	}
	if err := result.Validate(check); err != nil {
		fatalf(exitInternal, "internal error: output does not conform: %v", err)
	}
	fmt.Fprint(out, result)
}

func stylesheet(sigma *core.Embedding, invert bool) (*core.Stylesheet, error) {
	if invert {
		return core.InverseXSLT(sigma)
	}
	return core.ForwardXSLT(sigma)
}

func mustSchema(path, root string, lim core.Limits) *core.DTD {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf(exitInvalid, "read %s: %v", path, err)
	}
	d, err := core.ParseDTDLimits(string(data), root, lim)
	if err != nil {
		fatalf(exitInvalid, "%s: %v", path, err)
	}
	return d
}

func mustMapping(path string, src, tgt *core.DTD) *core.Embedding {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf(exitInvalid, "read %s: %v", path, err)
	}
	sigma, err := embedding.Unmarshal(string(data), src, tgt)
	if err != nil {
		fatalf(exitInvalid, "%s: %v", path, err)
	}
	if err := sigma.Validate(nil); err != nil {
		fatalf(exitInvalid, "%s: invalid embedding: %v", path, err)
	}
	return sigma
}

func mustDoc(path string, lim core.Limits) *xmltree.Tree {
	f, err := os.Open(path)
	if err != nil {
		fatalf(exitInvalid, "%v", err)
	}
	defer f.Close()
	doc, err := core.ParseXMLLimits(f, lim)
	if err != nil {
		fatalf(exitInvalid, "%s: %v", path, err)
	}
	return doc
}

func fatalf(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xse-map: "+format+"\n", args...)
	os.Exit(code)
}
