// Command xse-map applies a schema embedding to XML documents: forward
// (σd, producing a target-conformant document), inverse (σd⁻¹,
// recovering the source), or emitting the equivalent XSLT stylesheets.
//
// Usage:
//
//	xse-map -mapping m.xse -source s1.dtd -target s2.dtd [flags] [doc.xml]
//
//	-invert        apply σd⁻¹ instead of σd
//	-xslt          print the stylesheet instead of transforming
//	-via-xslt      transform by running the generated stylesheet
//	-tree          use the tree-building migration path (forward runs
//	               stream by default: O(depth) memory, no full trees)
//	-batch dir     migrate every *.xml in dir (bounded worker pool)
//	-out dir       batch output directory (default: discard outputs)
//	-j n           batch worker count (default: GOMAXPROCS)
//	-timeout d     abort the whole run after duration d (exit 4)
//	-max-input n   max input size in bytes (0 = default, -1 = unlimited)
//	-o file        output file (default stdout; single-document mode)
//	-v             print the metric registry summary on stderr
//
// Telemetry flags shared by every command (see internal/obs):
//
//	-debug-addr a       serve /metrics, /metrics.json, /debug/vars and
//	                    /debug/pprof on a (":0" picks a free port)
//	-debug-linger d     keep the debug server up d after the run
//	-trace-out f        write spans to f as Chrome trace_event JSON
//	-cpuprofile f       write a CPU profile to f
//	-memprofile f       write a heap profile to f
//	-slow-threshold d   log batch documents slower than d
//
// In batch mode each document succeeds or fails on its own: a
// malformed file is reported and skipped without stopping the run, and
// the summary line on stderr reports docs/sec and MB/sec. The exit
// code reflects the worst per-file outcome using the same
// classification as single-document mode.
//
// Exit codes: 0 success, 1 internal error, 2 usage, 3 invalid input
// (unreadable/malformed schemas, mappings or documents, resource
// limits exceeded), 4 timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/obs"
	"repro/internal/xmltree"
)

const (
	exitInternal = 1
	exitUsage    = 2
	exitInvalid  = 3
	exitTimeout  = 4
)

// cleanup is run by fatalf before exiting, so profiles, traces, the
// wide event (carrying the real exit code) and the debug server are
// flushed even on fatal paths.
var cleanup = func(code int) {}

func main() {
	var (
		mappingFile = flag.String("mapping", "", "embedding file from xse-embed (required)")
		sourceFile  = flag.String("source", "", "source DTD file (required)")
		targetFile  = flag.String("target", "", "target DTD file (required)")
		sourceRoot  = flag.String("source-root", "", "source root element")
		targetRoot  = flag.String("target-root", "", "target root element")
		invert      = flag.Bool("invert", false, "apply the inverse mapping σd⁻¹")
		emitXSLT    = flag.Bool("xslt", false, "print the XSLT stylesheet and exit")
		viaXSLT     = flag.Bool("via-xslt", false, "transform by executing the generated stylesheet")
		treePath    = flag.Bool("tree", false, "use the tree-building migration path (streaming is the forward default)")
		batchDir    = flag.String("batch", "", "migrate every *.xml document in this directory")
		outDir      = flag.String("out", "", "batch output directory (default: discard outputs)")
		workers     = flag.Int("j", 0, "batch worker count (0 = GOMAXPROCS)")
		timeout     = flag.Duration("timeout", 0, "abort the run after this duration (0 = no deadline)")
		maxInput    = flag.Int("max-input", 0, "max input size in bytes (0 = default 64MiB, -1 = unlimited)")
		output      = flag.String("o", "", "output file (default: stdout)")
		verbose     = flag.Bool("v", false, "print telemetry counters to stderr after the run")
		slowDocs    = flag.Duration("slow-threshold", 0, "log batch documents slower than this end to end (0 = off)")
	)
	tel := obs.NewCLI("xse-map", flag.CommandLine)
	flag.Parse()
	if *mappingFile == "" || *sourceFile == "" || *targetFile == "" {
		flag.Usage()
		os.Exit(exitUsage)
	}
	ctx, err := tel.Start(context.Background())
	if err != nil {
		fatalf(exitInternal, "%v", err)
	}
	cleanup = func(code int) { tel.SetExit(code); tel.Close() }
	defer tel.Close()
	if *timeout > 0 {
		// Every mapping stage is context-aware; the deadline propagates
		// through parse, σd/σd⁻¹, XSLT execution and the batch pool, and
		// surfaces as a typed CancelError mapped to exit 4.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	lim := core.Limits{MaxInputBytes: *maxInput}

	src := mustSchema(*sourceFile, *sourceRoot, lim)
	tgt := mustSchema(*targetFile, *targetRoot, lim)
	sigma := mustMapping(*mappingFile, src, tgt)

	if *batchDir != "" {
		if flag.NArg() != 0 || *emitXSLT {
			fatalf(exitUsage, "-batch is incompatible with positional documents and -xslt")
		}
		runBatch(ctx, sigma, batchConfig{
			dir: *batchDir, outDir: *outDir, workers: *workers,
			invert: *invert, viaXSLT: *viaXSLT, tree: *treePath, lim: lim,
			slowThreshold: *slowDocs, verbose: *verbose, tel: tel,
		})
		return
	}

	out := os.Stdout
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			fatalf(exitInternal, "%v", err)
		}
		defer f.Close()
		out = f
	}

	if *emitXSLT {
		sheet, err := stylesheet(sigma, *invert)
		if err != nil {
			fatalf(exitInternal, "generate stylesheet: %v", err)
		}
		fmt.Fprint(out, sheet.Serialize())
		return
	}

	if flag.NArg() != 1 {
		fatalf(exitUsage, "exactly one input document expected")
	}

	if !*invert && !*viaXSLT && !*treePath {
		// Default forward path: stream the document through the compiled
		// instance mapping — no input or output tree is materialized, and
		// the output is byte-identical to the tree path. Source
		// conformance is enforced token-by-token; output conformance
		// holds by construction of the compiled program.
		prog, err := core.CompileStream(sigma)
		if err != nil {
			fatalf(exitInternal, "compile streaming program: %v", err)
		}
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf(exitInvalid, "%v", err)
		}
		defer f.Close()
		if _, err := prog.Run(ctx, f, out, core.StreamOptions{Limits: lim}); err != nil {
			var se *core.StreamError
			if errors.As(err, &se) && se.Stage == "write" {
				fatalf(exitInternal, "write output: %v", se.Err)
			}
			fatalCtx(err, "instance mapping")
		}
		if *verbose {
			obs.WriteSummary(os.Stderr, obs.Default())
		}
		return
	}

	doc := mustDoc(flag.Arg(0), lim)

	var result *xmltree.Tree
	switch {
	case *viaXSLT:
		sheet, err := stylesheet(sigma, *invert)
		if err != nil {
			fatalf(exitInternal, "generate stylesheet: %v", err)
		}
		result, err = sheet.RunCtx(ctx, doc)
		if err != nil {
			fatalCtx(err, "stylesheet execution")
		}
	case *invert:
		var err error
		result, err = sigma.InvertCtx(ctx, doc)
		if err != nil {
			fatalCtx(err, "inverse mapping")
		}
	default:
		res, err := sigma.ApplyCtx(ctx, doc)
		if err != nil {
			fatalCtx(err, "instance mapping")
		}
		result = res.Tree
	}

	check := tgt
	if *invert {
		check = src
	}
	if err := result.Validate(check); err != nil {
		fatalf(exitInternal, "internal error: output does not conform: %v", err)
	}
	fmt.Fprint(out, result)
	if *verbose {
		obs.WriteSummary(os.Stderr, obs.Default())
	}
}

// batchConfig carries the batch mode's flag values.
type batchConfig struct {
	dir, outDir   string
	workers       int
	invert        bool
	viaXSLT       bool
	tree          bool
	lim           core.Limits
	slowThreshold time.Duration
	verbose       bool
	tel           *obs.CLI
}

// runBatch migrates a directory of documents through the worker pool
// and exits with the worst per-file classification.
func runBatch(ctx context.Context, sigma *core.Embedding, cfg batchConfig) {
	dir, outDir, workers, invert, viaXSLT, lim :=
		cfg.dir, cfg.outDir, cfg.workers, cfg.invert, cfg.viaXSLT, cfg.lim
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fatalf(exitInternal, "%v", err)
		}
	}
	docs, err := core.BatchDirDocs(dir, outDir)
	if err != nil {
		fatalf(exitInvalid, "%v", err)
	}
	if len(docs) == 0 {
		fatalf(exitInvalid, "no *.xml documents in %s", dir)
	}
	opts := core.BatchOptions{Workers: workers, Limits: lim, Tree: cfg.tree, SlowThreshold: cfg.slowThreshold}
	if invert {
		opts.Op = core.BatchInverse
	}
	if viaXSLT {
		sheet, err := stylesheet(sigma, invert)
		if err != nil {
			fatalf(exitInternal, "generate stylesheet: %v", err)
		}
		opts.Transform = sheet.RunCtx
		// The stylesheet output still validates against the direction's
		// schema.
		check := sigma.Target
		if invert {
			check = sigma.Source
		}
		base := opts.Transform
		opts.Transform = func(ctx context.Context, t *core.Tree) (*core.Tree, error) {
			out, err := base(ctx, t)
			if err != nil {
				return nil, err
			}
			if verr := out.Validate(check); verr != nil {
				return nil, fmt.Errorf("output does not conform: %w", verr)
			}
			return out, nil
		}
		opts.SkipValidate = true
	}

	results, stats, err := core.RunBatch(ctx, sigma, docs, opts)
	if err != nil {
		fatalf(exitInvalid, "%v", err)
	}
	code := 0
	for _, r := range results {
		if r.Err == nil {
			continue
		}
		fmt.Fprintf(os.Stderr, "xse-map: %v\n", r.Err)
		code = worseExit(code, classify(r))
	}
	fmt.Fprintf(os.Stderr, "xse-map: %d docs (%d failed) in %s — %.1f docs/sec, %.2f MB/sec\n",
		stats.Docs, stats.Failed, stats.Elapsed.Round(time.Millisecond),
		stats.DocsPerSec(), stats.MBPerSec())
	if cfg.verbose {
		obs.WriteSummary(os.Stderr, obs.Default())
	}
	cfg.tel.SetExit(code)
	cfg.tel.Close()
	os.Exit(code)
}

// classify maps a per-document batch failure to the exit code the
// single-document mode would have used for the same fault.
func classify(r core.BatchResult) int {
	if r.Canceled() {
		return exitTimeout
	}
	var de *core.BatchError
	if errors.As(r.Err, &de) {
		switch de.Stage {
		case core.BatchStageRead, core.BatchStageParse, core.BatchStageMap:
			return exitInvalid
		default:
			return exitInternal
		}
	}
	return exitInternal
}

// worseExit keeps the highest-severity code: timeout > internal >
// invalid > success.
func worseExit(a, b int) int {
	rank := func(c int) int {
		switch c {
		case exitTimeout:
			return 3
		case exitInternal:
			return 2
		case exitInvalid:
			return 1
		}
		return 0
	}
	if rank(b) > rank(a) {
		return b
	}
	return a
}

func stylesheet(sigma *core.Embedding, invert bool) (*core.Stylesheet, error) {
	if invert {
		return core.InverseXSLT(sigma)
	}
	return core.ForwardXSLT(sigma)
}

func mustSchema(path, root string, lim core.Limits) *core.DTD {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf(exitInvalid, "read %s: %v", path, err)
	}
	d, err := core.ParseDTDLimits(string(data), root, lim)
	if err != nil {
		fatalf(exitInvalid, "%s: %v", path, err)
	}
	return d
}

func mustMapping(path string, src, tgt *core.DTD) *core.Embedding {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf(exitInvalid, "read %s: %v", path, err)
	}
	sigma, err := embedding.Unmarshal(string(data), src, tgt)
	if err != nil {
		fatalf(exitInvalid, "%s: %v", path, err)
	}
	if err := sigma.Validate(nil); err != nil {
		fatalf(exitInvalid, "%s: invalid embedding: %v", path, err)
	}
	return sigma
}

func mustDoc(path string, lim core.Limits) *xmltree.Tree {
	f, err := os.Open(path)
	if err != nil {
		fatalf(exitInvalid, "%v", err)
	}
	defer f.Close()
	doc, err := core.ParseXMLLimits(f, lim)
	if err != nil {
		fatalf(exitInvalid, "%s: %v", path, err)
	}
	return doc
}

// fatalCtx reports a transformation failure, distinguishing a run cut
// short by -timeout (exit 4) from invalid input (exit 3).
func fatalCtx(err error, stage string) {
	var ce *core.CancelError
	if errors.As(err, &ce) {
		fatalf(exitTimeout, "timeout: %v", err)
	}
	fatalf(exitInvalid, "%s: %v", stage, err)
}

func fatalf(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xse-map: "+format+"\n", args...)
	cleanup(code)
	os.Exit(code)
}
