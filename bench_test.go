// Package repro's root benchmarks regenerate the evaluation of
// DESIGN.md's experiment index: one BenchmarkE<n> per reproduced
// table/figure (each iteration runs the experiment driver in quick
// mode and reports the table once via b.Log), plus micro-benchmarks
// for the core operations (instance mapping, inversion, query
// translation and evaluation, XSLT execution, embedding search).
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// and the full sweeps with cmd/xse-bench.
package repro

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/embedding"
	"repro/internal/experiments"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sdtd"
	"repro/internal/search"
	"repro/internal/translate"
	"repro/internal/workload"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xslt"
)

// benchTable runs an experiment driver per iteration and logs its table
// once, so `go test -bench` both times the workload and emits the
// reproduced rows.
func benchTable(b *testing.B, once *sync.Once, run func(experiments.Config) experiments.Table) {
	cfg := experiments.Config{Seed: 1, Quick: true, Trials: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table := run(cfg)
		once.Do(func() { b.Log("\n" + table.String()) })
	}
}

var onceE1, onceE2, onceE3, onceE4, onceE5, onceE6, onceE7 sync.Once

// BenchmarkE1AccuracyVsNoise regenerates E1: heuristic success rate
// against introduced noise.
func BenchmarkE1AccuracyVsNoise(b *testing.B) {
	benchTable(b, &onceE1, experiments.E1AccuracyVsNoise)
}

// BenchmarkE2AccuracyVsAtt regenerates E2: success rate against att
// accuracy and ambiguity.
func BenchmarkE2AccuracyVsAtt(b *testing.B) {
	benchTable(b, &onceE2, experiments.E2AccuracyVsAtt)
}

// BenchmarkE3RuntimeVsSize regenerates E3: search time against schema
// size.
func BenchmarkE3RuntimeVsSize(b *testing.B) {
	benchTable(b, &onceE3, experiments.E3RuntimeVsSize)
}

// BenchmarkE4InstMap regenerates E4: σd scaling.
func BenchmarkE4InstMap(b *testing.B) {
	benchTable(b, &onceE4, experiments.E4InstMapScaling)
}

// BenchmarkE5Inverse regenerates E5: σd⁻¹ scaling and round trip.
func BenchmarkE5Inverse(b *testing.B) {
	benchTable(b, &onceE5, experiments.E5InverseScaling)
}

// BenchmarkE6QueryTranslate regenerates E6: translation size/time
// against the Theorem 4.3(b) bound.
func BenchmarkE6QueryTranslate(b *testing.B) {
	benchTable(b, &onceE6, experiments.E6QueryTranslation)
}

// BenchmarkE7Ablation regenerates E7: ambiguity/exactness/adversarial
// ablations.
func BenchmarkE7Ablation(b *testing.B) {
	benchTable(b, &onceE7, experiments.E7Ablation)
}

// --- Micro-benchmarks -------------------------------------------------

func benchClassDoc(b *testing.B, classes int) *xmltree.Tree {
	b.Helper()
	emb := workload.ClassEmbedding()
	r := rand.New(rand.NewSource(7))
	doc := xmltree.MustGenerate(emb.Source, r, xmltree.GenOptions{StarMax: classes, DepthBudget: 8})
	return doc
}

// BenchmarkInstMap measures σd on a mid-sized class document.
func BenchmarkInstMap(b *testing.B) {
	emb := workload.ClassEmbedding()
	doc := benchClassDoc(b, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := emb.Apply(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInverse measures σd⁻¹.
func BenchmarkInverse(b *testing.B) {
	emb := workload.ClassEmbedding()
	doc := benchClassDoc(b, 24)
	res, err := emb.Apply(doc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := emb.Invert(res.Tree); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXSLTForward measures the generated σd stylesheet execution.
func BenchmarkXSLTForward(b *testing.B) {
	emb := workload.ClassEmbedding()
	sheet, err := xslt.ForwardStylesheet(emb)
	if err != nil {
		b.Fatal(err)
	}
	doc := benchClassDoc(b, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sheet.Run(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranslateQuery measures schema-directed translation of the
// Example 4.8 query. NoOptimize is pinned so the trajectory keeps
// measuring the raw translation now that the optimizer runs by
// default (compare BenchmarkTranslateOptimized for the full default
// pipeline).
func BenchmarkTranslateQuery(b *testing.B) {
	tr, err := translate.NewWithOptions(workload.ClassEmbedding(), translate.Options{NoOptimize: true})
	if err != nil {
		b.Fatal(err)
	}
	q := xpath.MustParse(`class[cno/text() = "CS331"]/(type/regular/prereq/class)*`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Translate(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranslateOptimized is BenchmarkTranslateQuery under the
// default pipeline: translation plus the schema-aware ANFA optimizer.
// The spread against BenchmarkTranslateQuery is the optimizer's
// one-time cost, amortized away by the translation cache
// (BenchmarkTranslateCached) for repeated queries.
func BenchmarkTranslateOptimized(b *testing.B) {
	tr, err := translate.New(workload.ClassEmbedding())
	if err != nil {
		b.Fatal(err)
	}
	q := xpath.MustParse(`class[cno/text() = "CS331"]/(type/regular/prereq/class)*`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Translate(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalXPath measures direct X_R evaluation.
func BenchmarkEvalXPath(b *testing.B) {
	doc := benchClassDoc(b, 24)
	q := xpath.MustParse(`class[cno]/(type/regular/prereq/class)*/title/text()`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xpath.Eval(q, doc.Root)
	}
}

// BenchmarkEvalInterpreted measures the reference tree-walking
// interpreter on the standing query workload — the pre-compilation
// Eval path, kept as the differential-testing oracle. Compare
// BenchmarkEvalCompiled.
func BenchmarkEvalInterpreted(b *testing.B) {
	doc := benchClassDoc(b, 24)
	q := xpath.MustParse(`class[cno]/(type/regular/prereq/class)*/title/text()`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xpath.EvalInterpreted(q, doc.Root)
	}
}

// BenchmarkEvalCompiled measures a pre-compiled Program reused across
// evaluations — the data-plane steady state (compile once, run per
// document). The ns/op and allocs/op deltas against
// BenchmarkEvalInterpreted are headline numbers in BENCH_PR4.json.
func BenchmarkEvalCompiled(b *testing.B) {
	doc := benchClassDoc(b, 24)
	prog := xpath.Compile(xpath.MustParse(`class[cno]/(type/regular/prereq/class)*/title/text()`))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.Run(doc.Root)
	}
}

// BenchmarkTranslateCached measures the query-translation cache in
// steady state: every Get after the first is a hit returning the
// memoized automaton. Compare BenchmarkTranslateQuery (the uncached
// translation this amortizes away).
func BenchmarkTranslateCached(b *testing.B) {
	emb := workload.ClassEmbedding()
	cache := translate.NewCache(0)
	q := xpath.MustParse(`class[cno/text() = "CS331"]/(type/regular/prereq/class)*`)
	if _, err := cache.Get(context.Background(), emb, q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Get(context.Background(), emb, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchMigrate measures σd batch migration end to end on the
// tree path (parse, map, validate, serialize) over 64 in-memory
// documents at 1, 4 and 8 workers; docs/iteration scaling across the
// sub-benchmarks is the batch-throughput trajectory tracked in
// BENCH_PR4.json. Tree is pinned so the trajectory keeps measuring the
// same code path now that the batch default is the streaming engine
// (compare BenchmarkBatchMigrateStream).
func BenchmarkBatchMigrate(b *testing.B) {
	emb := workload.ClassEmbedding()
	r := rand.New(rand.NewSource(11))
	const nDocs = 64
	blobs := make([][]byte, nDocs)
	for i := range blobs {
		t := xmltree.MustGenerate(emb.Source, r, xmltree.GenOptions{StarMax: 8, DepthBudget: 8})
		blobs[i] = []byte(t.String())
	}
	docs := make([]pipeline.Doc, nDocs)
	for i := range docs {
		blob := blobs[i]
		docs[i] = pipeline.Doc{
			Name: fmt.Sprintf("doc%02d", i),
			Open: func() (io.ReadCloser, error) {
				return io.NopCloser(bytes.NewReader(blob)), nil
			},
			Sink: func() (io.WriteCloser, error) { return nopWriteCloser{io.Discard}, nil },
		}
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("%dworkers", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, stats, err := pipeline.Run(context.Background(), emb, docs, pipeline.Options{Workers: workers, Tree: true})
				if err != nil {
					b.Fatal(err)
				}
				if stats.Failed != 0 {
					b.Fatalf("%d docs failed", stats.Failed)
				}
			}
		})
	}
}

// BenchmarkBatchMigrateNop is BenchmarkBatchMigrate/8workers against
// the no-op registry: the spread between the two is the telemetry
// layer's overhead on the batch path (tracked in BENCH_PR5.json; the
// budget is <2%).
func BenchmarkBatchMigrateNop(b *testing.B) {
	emb := workload.ClassEmbedding()
	r := rand.New(rand.NewSource(11))
	const nDocs = 64
	docs := make([]pipeline.Doc, nDocs)
	for i := range docs {
		t := xmltree.MustGenerate(emb.Source, r, xmltree.GenOptions{StarMax: 8, DepthBudget: 8})
		blob := []byte(t.String())
		docs[i] = pipeline.Doc{
			Name: fmt.Sprintf("doc%02d", i),
			Open: func() (io.ReadCloser, error) {
				return io.NopCloser(bytes.NewReader(blob)), nil
			},
			Sink: func() (io.WriteCloser, error) { return nopWriteCloser{io.Discard}, nil },
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := pipeline.Run(context.Background(), emb, docs,
			pipeline.Options{Workers: 8, Tree: true, Obs: obs.Nop()})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Failed != 0 {
			b.Fatalf("%d docs failed", stats.Failed)
		}
	}
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// BenchmarkStreamMigrate measures the streaming σd engine on class
// documents of increasing size, one compiled StreamProgram reused
// across runs. The peak-bytes metric is the engine's high-water mark
// of buffered subtree bytes: flat at zero across sizes here because
// the class embedding never reorders (O(depth) memory), versus the
// whole-tree residency of BenchmarkInstMap on the same shape. The
// reorder sub-benchmark runs the auction embedding, whose productions
// genuinely reorder — peak-bytes is then bounded by the largest
// single buffered subtree, still independent of document size.
func BenchmarkStreamMigrate(b *testing.B) {
	run := func(b *testing.B, prog *embedding.StreamProgram, blob []byte) {
		b.Helper()
		b.ReportAllocs()
		b.SetBytes(int64(len(blob)))
		peak := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := prog.Run(context.Background(), bytes.NewReader(blob), io.Discard,
				embedding.StreamOptions{Obs: obs.Nop()})
			if err != nil {
				b.Fatal(err)
			}
			if st.PeakBufferedBytes > peak {
				peak = st.PeakBufferedBytes
			}
		}
		b.ReportMetric(float64(peak), "peak-bytes")
	}

	emb := workload.ClassEmbedding()
	prog, err := emb.CompileStream()
	if err != nil {
		b.Fatal(err)
	}
	for _, classes := range []int{8, 64, 512} {
		doc := benchClassDoc(b, classes)
		blob := []byte(doc.String())
		b.Run(fmt.Sprintf("classes%d", classes), func(b *testing.B) {
			run(b, prog, blob)
		})
	}

	auction := workload.AuctionEmbedding()
	aprog, err := auction.CompileStream()
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	adoc := xmltree.MustGenerate(auction.Source, r, xmltree.GenOptions{StarMax: 24, DepthBudget: 8})
	b.Run("reorder", func(b *testing.B) {
		run(b, aprog, []byte(adoc.String()))
	})
}

// BenchmarkBatchMigrateStream is BenchmarkBatchMigrate on the batch
// pipeline's streaming default: same 64 documents, same worker grid,
// but each document flows decoder → compiled actions → encoder without
// materializing either tree. The allocs/op spread against
// BenchmarkBatchMigrate is the headline streaming win tracked in
// BENCH_PR8.json.
func BenchmarkBatchMigrateStream(b *testing.B) {
	emb := workload.ClassEmbedding()
	r := rand.New(rand.NewSource(11))
	const nDocs = 64
	docs := make([]pipeline.Doc, nDocs)
	for i := range docs {
		t := xmltree.MustGenerate(emb.Source, r, xmltree.GenOptions{StarMax: 8, DepthBudget: 8})
		blob := []byte(t.String())
		docs[i] = pipeline.Doc{
			Name: fmt.Sprintf("doc%02d", i),
			Open: func() (io.ReadCloser, error) {
				return io.NopCloser(bytes.NewReader(blob)), nil
			},
			Sink: func() (io.WriteCloser, error) { return nopWriteCloser{io.Discard}, nil },
		}
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("%dworkers", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, stats, err := pipeline.Run(context.Background(), emb, docs, pipeline.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if stats.Failed != 0 {
					b.Fatalf("%d docs failed", stats.Failed)
				}
			}
		})
	}
}

// BenchmarkEvalANFA measures translated-automaton evaluation over the
// mapped document.
func BenchmarkEvalANFA(b *testing.B) {
	emb := workload.ClassEmbedding()
	tr, err := translate.New(emb)
	if err != nil {
		b.Fatal(err)
	}
	auto, err := tr.Translate(xpath.MustParse(`class[cno]/(type/regular/prereq/class)*/title/text()`))
	if err != nil {
		b.Fatal(err)
	}
	doc := benchClassDoc(b, 24)
	res, err := emb.Apply(doc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		auto.Eval(res.Tree.Root)
	}
}

// BenchmarkAnfaEvalCompiled measures the compiled ANFA program on the
// same translated query and mapped document as BenchmarkEvalANFA —
// the data-plane steady state (the cached automaton carries its
// program). The ns/op spread against BenchmarkEvalANFA is the
// headline compiled-backend win tracked in BENCH_PR9.json.
func BenchmarkAnfaEvalCompiled(b *testing.B) {
	emb := workload.ClassEmbedding()
	tr, err := translate.New(emb)
	if err != nil {
		b.Fatal(err)
	}
	auto, err := tr.Translate(xpath.MustParse(`class[cno]/(type/regular/prereq/class)*/title/text()`))
	if err != nil {
		b.Fatal(err)
	}
	doc := benchClassDoc(b, 24)
	res, err := emb.Apply(doc)
	if err != nil {
		b.Fatal(err)
	}
	prog := auto.Program()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.Run(res.Tree.Root)
	}
}

// BenchmarkFindRandom measures the Random heuristic on the Figure 1
// pair with the unrestricted matrix.
func BenchmarkFindRandom(b *testing.B) {
	src, tgt := workload.ClassDTD(), workload.SchoolDTD()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := search.Find(src, tgt, nil, search.Options{Heuristic: search.Random, Seed: int64(i), MaxRestarts: 60})
		if err != nil {
			b.Fatal(err)
		}
		if res.Embedding == nil {
			b.Fatal("no embedding found")
		}
	}
}

// BenchmarkFindUnambiguous measures the PTIME case of §5.2: pinned att
// on a mid-sized synthetic pair.
func BenchmarkFindUnambiguous(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	base := workload.MustSyntheticDTD(r, 60)
	nc := workload.Noise(base, workload.NoiseLevel(0.2), r)
	att := embedding.NewSimMatrix()
	for a, t := range nc.Truth {
		att.Set(a, t, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := search.Find(base, nc.DTD, att, search.Options{Heuristic: search.QualityOrdered, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res.Embedding == nil {
			b.Fatal("ground-truth embedding not found")
		}
	}
}

// BenchmarkFindParallel measures the Random heuristic with 4 restart
// workers on the Figure 1 pair (compare BenchmarkFindRandom).
func BenchmarkFindParallel(b *testing.B) {
	src, tgt := workload.ClassDTD(), workload.SchoolDTD()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := search.Find(src, tgt, nil, search.Options{
			Heuristic: search.Random, Seed: int64(i), MaxRestarts: 60, Parallel: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Embedding == nil {
			b.Fatal("no embedding found")
		}
	}
}

// BenchmarkFindSize measures the Random heuristic along the E3 size
// trajectory: synthetic schemas of growing size, 20% structural noise,
// an att of accuracy 1 / ambiguity 2, and the E3 restart budget. The
// sub-benchmark sizes bracket the paper's "few hundred nodes" regime;
// their ns/op trend is the headline number tracked in BENCH_*.json.
func BenchmarkFindSize(b *testing.B) {
	for _, size := range []int{40, 80, 160} {
		b.Run(fmt.Sprintf("%d", size), func(b *testing.B) {
			r := rand.New(rand.NewSource(int64(size)))
			base := workload.MustSyntheticDTD(r, size)
			nc := workload.Noise(base, workload.NoiseLevel(0.2), r)
			att := match.Synthetic(base, nc.DTD, nc.Truth,
				match.SyntheticOptions{Accuracy: 1, Ambiguity: 2}, r)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := search.Find(base, nc.DTD, att,
					search.Options{Heuristic: search.Random, Seed: int64(i), MaxRestarts: 15})
				if err != nil {
					b.Fatal(err)
				}
				if res.Embedding == nil {
					b.Fatal("no embedding found on the synthetic pair")
				}
			}
		})
	}
}

// BenchmarkFindSizeNop is BenchmarkFindSize/80 with the no-op
// registry: its spread against the instrumented default is the
// telemetry overhead on the search hot path (budget <2%, tracked in
// BENCH_PR5.json).
func BenchmarkFindSizeNop(b *testing.B) {
	const size = 80
	r := rand.New(rand.NewSource(int64(size)))
	base := workload.MustSyntheticDTD(r, size)
	nc := workload.Noise(base, workload.NoiseLevel(0.2), r)
	att := match.Synthetic(base, nc.DTD, nc.Truth,
		match.SyntheticOptions{Accuracy: 1, Ambiguity: 2}, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := search.Find(base, nc.DTD, att,
			search.Options{Heuristic: search.Random, Seed: int64(i), MaxRestarts: 15, Obs: obs.Nop()})
		if err != nil {
			b.Fatal(err)
		}
		if res.Embedding == nil {
			b.Fatal("no embedding found on the synthetic pair")
		}
	}
}

// BenchmarkFindSizeLedger is BenchmarkFindSize/80 with the
// explainability ledger on: its spread against BenchmarkFindSize/80
// is the cost of per-restart rejection accounting, and the
// ledger-off run must stay within noise of PR 9 (tracked in
// BENCH_PR10.json).
func BenchmarkFindSizeLedger(b *testing.B) {
	const size = 80
	r := rand.New(rand.NewSource(int64(size)))
	base := workload.MustSyntheticDTD(r, size)
	nc := workload.Noise(base, workload.NoiseLevel(0.2), r)
	att := match.Synthetic(base, nc.DTD, nc.Truth,
		match.SyntheticOptions{Accuracy: 1, Ambiguity: 2}, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := search.Find(base, nc.DTD, att,
			search.Options{Heuristic: search.Random, Seed: int64(i), MaxRestarts: 15, Explain: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.Embedding == nil {
			b.Fatal("no embedding found on the synthetic pair")
		}
	}
}

// BenchmarkCompose measures schema-level composition of the Figure 1
// class embedding with a school-to-archive hop.
func BenchmarkCompose(b *testing.B) {
	s1 := workload.ClassEmbedding()
	r := rand.New(rand.NewSource(21))
	nc := workload.Noise(workload.SchoolDTD(), workload.NoiseOptions{RenameFrac: 0.4, InsertFrac: 0.3}, r)
	att := embedding.NewSimMatrix()
	for a, t := range nc.Truth {
		att.Set(a, t, 1)
	}
	found, err := search.Find(workload.SchoolDTD(), nc.DTD, att, search.Options{Heuristic: search.QualityOrdered, Seed: 1})
	if err != nil || found.Embedding == nil {
		b.Fatal("no second hop")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := embedding.Compose(s1, found.Embedding); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpecializedTyping measures the tree-automaton typing run of
// specialized DTDs on a merged two-source document.
func BenchmarkSpecializedTyping(b *testing.B) {
	merged, err := sdtd.Merge("all",
		sdtd.FromDTD(workload.ClassDTD()),
		sdtd.FromDTD(workload.StudentDTD()))
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	classDoc := xmltree.MustGenerate(workload.ClassDTD(), r, xmltree.GenOptions{StarMax: 8})
	studentDoc := xmltree.MustGenerate(workload.StudentDTD(), r, xmltree.GenOptions{StarMax: 8})
	doc := sdtd.WrapInstances("all", classDoc, studentDoc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := merged.Typing(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLexicalMatrix measures att construction.
func BenchmarkLexicalMatrix(b *testing.B) {
	src, tgt := workload.AuctionDTD(), workload.SchoolDTD()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		match.Lexical(src, tgt, 0.5)
	}
}

// BenchmarkValidateEmbedding measures the validity checker.
func BenchmarkValidateEmbedding(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		emb := workload.ClassEmbedding()
		if err := emb.Validate(nil); err != nil {
			b.Fatal(err)
		}
	}
}
