package repro

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one command into a temp dir and returns its path.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", name, err, out)
	}
	return bin
}

// xsemapFixtureArgs returns the -mapping/-source/-target flags for the
// checked-in golden fixture set.
func xsemapFixtureArgs() []string {
	return []string{
		"-mapping", "testdata/xsemap/map.xse",
		"-source", "testdata/xsemap/class.dtd",
		"-target", "testdata/xsemap/school.dtd",
	}
}

// TestCLIGoldenOutputs pins the single-document xse-map output byte
// for byte: forward σd, inverse σd⁻¹ and the serialized stylesheet
// must match the golden files captured before the data-plane rework.
func TestCLIGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	bin := buildTool(t, "xse-map")
	golden := func(name string) string {
		t.Helper()
		data, err := os.ReadFile(filepath.Join("testdata/xsemap", name))
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	run := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(bin, append(xsemapFixtureArgs(), args...)...).Output()
		if err != nil {
			t.Fatalf("xse-map %s: %v", strings.Join(args, " "), err)
		}
		return string(out)
	}

	forward := run("testdata/xsemap/doc.xml")
	if want := golden("forward.golden"); forward != want {
		t.Errorf("forward output diverged from forward.golden (%d vs %d bytes)", len(forward), len(want))
	}

	fwdFile := filepath.Join(t.TempDir(), "fwd.xml")
	if err := os.WriteFile(fwdFile, []byte(forward), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, want := run("-invert", fwdFile), golden("inverse.golden"); got != want {
		t.Errorf("inverse output diverged from inverse.golden (%d vs %d bytes)", len(got), len(want))
	}

	if got, want := run("-xslt"), golden("xslt.golden"); got != want {
		t.Errorf("stylesheet output diverged from xslt.golden (%d vs %d bytes)", len(got), len(want))
	}

	if got, want := run("-via-xslt", "testdata/xsemap/doc.xml"), golden("forward.golden"); got != want {
		t.Errorf("via-xslt output diverged from forward.golden (%d vs %d bytes)", len(got), len(want))
	}
}

// runExit executes the binary and returns combined output and exit
// code (failing the test on non-exit errors).
func runExit(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return string(out), ee.ExitCode()
	}
	t.Fatalf("%s: %v\n%s", strings.Join(args, " "), err, out)
	return "", 0
}

// makeBatchDir populates a directory with copies of the fixture
// document; returns the dir.
func makeBatchDir(t *testing.T, n int) string {
	t.Helper()
	doc, err := os.ReadFile("testdata/xsemap/doc.xml")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for i := 0; i < n; i++ {
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("doc%02d.xml", i)), doc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestCLIBatchMode drives xse-map -batch: outputs land in -out, a
// malformed document fails alone with exit code 3, worker counts do
// not change outputs, and the summary reports throughput.
func TestCLIBatchMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	bin := buildTool(t, "xse-map")
	forwardGolden, err := os.ReadFile("testdata/xsemap/forward.golden")
	if err != nil {
		t.Fatal(err)
	}

	t.Run("clean batch", func(t *testing.T) {
		dir := makeBatchDir(t, 5)
		outDir := filepath.Join(t.TempDir(), "out")
		stderr, code := runExit(t, bin, append(xsemapFixtureArgs(), "-batch", dir, "-out", outDir, "-j", "4")...)
		if code != 0 {
			t.Fatalf("exit = %d, want 0\n%s", code, stderr)
		}
		if !strings.Contains(stderr, "docs/sec") || !strings.Contains(stderr, "MB/sec") {
			t.Errorf("summary lacks throughput figures:\n%s", stderr)
		}
		for i := 0; i < 5; i++ {
			data, err := os.ReadFile(filepath.Join(outDir, fmt.Sprintf("doc%02d.xml", i)))
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != string(forwardGolden) {
				t.Errorf("doc%02d.xml batch output differs from single-document golden", i)
			}
		}
	})

	t.Run("mixed validity", func(t *testing.T) {
		dir := makeBatchDir(t, 3)
		if err := os.WriteFile(filepath.Join(dir, "broken.xml"), []byte("<db><class>"), 0o644); err != nil {
			t.Fatal(err)
		}
		outDir := filepath.Join(t.TempDir(), "out")
		stderr, code := runExit(t, bin, append(xsemapFixtureArgs(), "-batch", dir, "-out", outDir, "-j", "2")...)
		if code != 3 {
			t.Fatalf("exit = %d, want 3 (invalid input)\n%s", code, stderr)
		}
		if !strings.Contains(stderr, "broken.xml") {
			t.Errorf("stderr does not name the failing document:\n%s", stderr)
		}
		if !strings.Contains(stderr, "4 docs (1 failed)") {
			t.Errorf("summary = %q, want 4 docs (1 failed)", stderr)
		}
		// The healthy documents still migrated.
		for i := 0; i < 3; i++ {
			if _, err := os.Stat(filepath.Join(outDir, fmt.Sprintf("doc%02d.xml", i))); err != nil {
				t.Errorf("doc%02d.xml missing: %v", i, err)
			}
		}
		if _, err := os.Stat(filepath.Join(outDir, "broken.xml")); err == nil {
			t.Error("broken.xml produced an output file")
		}
	})

	t.Run("worker equivalence", func(t *testing.T) {
		dir := makeBatchDir(t, 8)
		read := func(workers int) map[string]string {
			outDir := filepath.Join(t.TempDir(), "out")
			_, code := runExit(t, bin, append(xsemapFixtureArgs(), "-batch", dir, "-out", outDir, "-j", fmt.Sprint(workers))...)
			if code != 0 {
				t.Fatalf("-j %d exit = %d", workers, code)
			}
			outs := map[string]string{}
			entries, err := os.ReadDir(outDir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				data, err := os.ReadFile(filepath.Join(outDir, e.Name()))
				if err != nil {
					t.Fatal(err)
				}
				outs[e.Name()] = string(data)
			}
			return outs
		}
		j1, j8 := read(1), read(8)
		if len(j1) != 8 || len(j8) != 8 {
			t.Fatalf("output counts: j1=%d j8=%d, want 8", len(j1), len(j8))
		}
		for name, want := range j1 {
			if j8[name] != want {
				t.Errorf("%s: -j 1 and -j 8 outputs differ", name)
			}
		}
	})

	t.Run("inverse batch", func(t *testing.T) {
		// Migrate forward, then invert the whole output directory; the
		// round trip recovers the source bytes.
		dir := makeBatchDir(t, 3)
		fwdDir := filepath.Join(t.TempDir(), "fwd")
		backDir := filepath.Join(t.TempDir(), "back")
		if _, code := runExit(t, bin, append(xsemapFixtureArgs(), "-batch", dir, "-out", fwdDir)...); code != 0 {
			t.Fatalf("forward exit = %d", code)
		}
		if _, code := runExit(t, bin, append(xsemapFixtureArgs(), "-invert", "-batch", fwdDir, "-out", backDir)...); code != 0 {
			t.Fatalf("inverse exit = %d", code)
		}
		// The recovered tree equals the source tree; its serialization is
		// the canonical indented form pinned by inverse.golden.
		want, err := os.ReadFile("testdata/xsemap/inverse.golden")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			data, err := os.ReadFile(filepath.Join(backDir, fmt.Sprintf("doc%02d.xml", i)))
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != string(want) {
				t.Errorf("doc%02d.xml: σd⁻¹(σd(T)) differs from inverse.golden", i)
			}
		}
	})
}

// TestCLIExitCodes pins the exit-code table: 0 success, 2 usage,
// 3 invalid input, 4 timeout — for both single and batch modes.
func TestCLIExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	bin := buildTool(t, "xse-map")
	args := xsemapFixtureArgs()

	if _, code := runExit(t, bin, append(args, "testdata/xsemap/doc.xml")...); code != 0 {
		t.Errorf("success: exit = %d, want 0", code)
	}
	if _, code := runExit(t, bin, "-source", "testdata/xsemap/class.dtd"); code != 2 {
		t.Errorf("usage: exit = %d, want 2", code)
	}
	if _, code := runExit(t, bin, append(args, "-batch", t.TempDir(), "doc.xml")...); code != 2 {
		t.Errorf("batch+positional: exit = %d, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.xml")
	if err := os.WriteFile(bad, []byte("<db><class>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, code := runExit(t, bin, append(args, bad)...); code != 3 {
		t.Errorf("invalid doc: exit = %d, want 3", code)
	}
	if _, code := runExit(t, bin, append(args, "-batch", t.TempDir())...); code != 3 {
		t.Errorf("empty batch dir: exit = %d, want 3", code)
	}
	stderr, code := runExit(t, bin, append(args, "-timeout", "1ns", "testdata/xsemap/doc.xml")...)
	if code != 4 {
		t.Errorf("timeout: exit = %d, want 4\n%s", code, stderr)
	}
	dir := makeBatchDir(t, 4)
	stderr, code = runExit(t, bin, append(args, "-timeout", "1ns", "-batch", dir)...)
	if code != 4 {
		t.Errorf("batch timeout: exit = %d, want 4\n%s", code, stderr)
	}
}

// TestCLIQueryCacheStats drives xse-query with repeated queries: the
// duplicate translation must hit the cache and -v must surface the
// counters.
func TestCLIQueryCacheStats(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	bin := buildTool(t, "xse-query")
	out, code := runExit(t, bin, append(xsemapFixtureArgs(),
		"-v",
		"-query", "class/cno/text()",
		"-query", "class/title",
		"-query", "class/cno/text()",
	)...)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "cache:      1 hits, 2 misses, 0 waits, 2 entries") {
		t.Errorf("cache stats line missing or wrong:\n%s", out)
	}
	// -v also renders the process registry through obs.WriteSummary.
	if !strings.Contains(out, "xse_translate_cache_misses_total") {
		t.Errorf("-v summary missing registry counters:\n%s", out)
	}
	// Timeout path: exit 4 via context, not a watchdog.
	_, code = runExit(t, bin, append(xsemapFixtureArgs(),
		"-timeout", "1ns", "-query", "class/cno/text()", "-source-doc", "testdata/xsemap/doc.xml")...)
	if code != 4 {
		t.Errorf("timeout exit = %d, want 4", code)
	}
}
