package dtd

import (
	"strings"
	"testing"
)

func TestProductionString(t *testing.T) {
	cases := map[string]Production{
		"(#PCDATA)": Str(),
		"EMPTY":     Empty(),
		"(a, b)":    Concat("a", "b"),
		"(a | b)":   Disj("a", "b"),
		"(a)*":      Star("a"),
	}
	for want, p := range cases {
		if got := p.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if got := (Production{Kind: Kind(99)}).String(); got != "<invalid>" {
		t.Errorf("invalid production String = %q", got)
	}
}

func TestKindAndEdgeKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindStr: "str", KindEmpty: "empty", KindConcat: "concat", KindDisj: "disjunction", KindStar: "star"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", k, k.String())
		}
	}
	for k, want := range map[EdgeKind]string{EdgeAND: "AND", EdgeOR: "OR", EdgeSTAR: "STAR"} {
		if k.String() != want {
			t.Errorf("EdgeKind String = %q, want %q", k.String(), want)
		}
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Error("unknown Kind should render its number")
	}
}

func TestEdgeString(t *testing.T) {
	d := MustNew("r", D("r", Concat("a", "a")), D("a", Empty()))
	edges := d.ChildEdges("r")
	if edges[1].String() != "r -AND#2-> a" {
		t.Errorf("Edge.String = %q", edges[1].String())
	}
	star := MustNew("r", D("r", Star("a")), D("a", Empty())).ChildEdges("r")[0]
	if star.String() != "r -STAR-> a" {
		t.Errorf("Edge.String = %q", star.String())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on an invalid schema")
		}
	}()
	MustNew("missing")
}
