// Package dtd models XML Document Type Definitions (DTDs) in the normal
// form used by Fan and Bohannon, "Information Preserving XML Schema
// Embedding" (VLDB 2005 / TODS 2008).
//
// A DTD is a triple (E, P, r): a finite set E of element types, a root
// type r, and for each A in E a production P(A) of one of five shapes:
//
//	str            PCDATA (a single text child)
//	ε              the empty word (no children)
//	B1, ..., Bn    concatenation: exactly one occurrence of each child, in order
//	B1 + ... + Bn  disjunction: one and only one of the children (n > 1, distinct)
//	B*             Kleene star: zero or more B children
//
// Any DTD with general regular-expression content models can be converted
// to this normal form in linear time by introducing fresh element types
// (see Normalize in this package); the paper's algorithms all operate on
// the normal form.
//
// The package also exposes the schema graph view of a DTD: one node per
// element type and AND, OR and STAR edges induced by the productions, as
// used for schema embeddings.
package dtd

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies the shape of a production in the paper's normal form.
type Kind uint8

const (
	// KindStr is the production A -> str (PCDATA).
	KindStr Kind = iota
	// KindEmpty is the production A -> ε.
	KindEmpty
	// KindConcat is the production A -> B1, ..., Bn with n >= 1.
	KindConcat
	// KindDisj is the production A -> B1 + ... + Bn with n >= 2 and
	// pairwise-distinct Bi.
	KindDisj
	// KindStar is the production A -> B*.
	KindStar
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindStr:
		return "str"
	case KindEmpty:
		return "empty"
	case KindConcat:
		return "concat"
	case KindDisj:
		return "disjunction"
	case KindStar:
		return "star"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Production is the right-hand side of an element type definition in
// normal form. Children is empty for KindStr and KindEmpty, holds exactly
// one type for KindStar, at least one for KindConcat (repetitions
// allowed), and at least two distinct types for KindDisj.
type Production struct {
	Kind     Kind
	Children []string
}

// Str, Empty, Concat, Disj and Star construct productions of the
// respective kinds.

// Str returns the production A -> str.
func Str() Production { return Production{Kind: KindStr} }

// Empty returns the production A -> ε.
func Empty() Production { return Production{Kind: KindEmpty} }

// Concat returns the production A -> children[0], ..., children[n-1].
func Concat(children ...string) Production {
	return Production{Kind: KindConcat, Children: children}
}

// Disj returns the production A -> children[0] + ... + children[n-1].
func Disj(children ...string) Production {
	return Production{Kind: KindDisj, Children: children}
}

// Star returns the production A -> child*.
func Star(child string) Production {
	return Production{Kind: KindStar, Children: []string{child}}
}

// String renders the production in DTD-like syntax.
func (p Production) String() string {
	switch p.Kind {
	case KindStr:
		return "(#PCDATA)"
	case KindEmpty:
		return "EMPTY"
	case KindConcat:
		return "(" + strings.Join(p.Children, ", ") + ")"
	case KindDisj:
		return "(" + strings.Join(p.Children, " | ") + ")"
	case KindStar:
		return "(" + p.Children[0] + ")*"
	}
	return "<invalid>"
}

// Occurrences returns, for a concatenation production, the number of
// occurrences of label among the children; for other kinds it returns 1
// if label is a child and 0 otherwise.
func (p Production) Occurrences(label string) int {
	n := 0
	for _, c := range p.Children {
		if c == label {
			n++
		}
	}
	return n
}

// ChildIndex returns the 0-based position among all children of the
// occ-th (1-based) occurrence of label, or -1 if there is no such
// occurrence.
func (p Production) ChildIndex(label string, occ int) int {
	seen := 0
	for i, c := range p.Children {
		if c == label {
			seen++
			if seen == occ {
				return i
			}
		}
	}
	return -1
}

// DTD is an XML DTD schema (E, P, r) in the paper's normal form. Types
// records the element types in declaration order; this order is the
// "fixed order on the types" used when constructing minimum default
// instances, so it is part of the schema's identity.
type DTD struct {
	// Root is the distinguished root element type r.
	Root string
	// Types lists every element type in E in declaration order.
	Types []string
	// Prods maps each element type A in E to its production P(A).
	Prods map[string]Production
}

// New builds a DTD from a root type and an ordered list of (type,
// production) definitions. It returns an error if the schema is not
// well formed (see Check).
func New(root string, defs ...Def) (*DTD, error) {
	d := &DTD{Root: root, Prods: make(map[string]Production, len(defs))}
	for _, def := range defs {
		if _, dup := d.Prods[def.Name]; dup {
			return nil, fmt.Errorf("dtd: duplicate definition of element type %q", def.Name)
		}
		d.Types = append(d.Types, def.Name)
		d.Prods[def.Name] = def.Prod
	}
	if err := d.Check(); err != nil {
		return nil, err
	}
	return d, nil
}

// MustNew is like New but panics on error. It is intended for static
// schema literals in tests and example corpora.
func MustNew(root string, defs ...Def) *DTD {
	d, err := New(root, defs...)
	if err != nil {
		panic(err)
	}
	return d
}

// Def pairs an element type with its production, preserving declaration
// order when building a DTD.
type Def struct {
	Name string
	Prod Production
}

// D is shorthand for constructing a Def.
func D(name string, p Production) Def { return Def{Name: name, Prod: p} }

// Check verifies structural well-formedness: the root is defined, every
// referenced child type is defined, concatenations have at least one
// child, disjunctions have at least two pairwise-distinct children, and
// stars have exactly one child. It does not check consistency (absence
// of useless types); see Consistent.
func (d *DTD) Check() error {
	if d.Root == "" {
		return fmt.Errorf("dtd: empty root type")
	}
	if _, ok := d.Prods[d.Root]; !ok {
		return fmt.Errorf("dtd: root type %q is not defined", d.Root)
	}
	if len(d.Types) != len(d.Prods) {
		return fmt.Errorf("dtd: type order list has %d entries but %d productions", len(d.Types), len(d.Prods))
	}
	for _, a := range d.Types {
		p, ok := d.Prods[a]
		if !ok {
			return fmt.Errorf("dtd: type %q listed but not defined", a)
		}
		switch p.Kind {
		case KindStr, KindEmpty:
			if len(p.Children) != 0 {
				return fmt.Errorf("dtd: %s production of %q must have no children", p.Kind, a)
			}
		case KindConcat:
			if len(p.Children) == 0 {
				return fmt.Errorf("dtd: concatenation production of %q has no children", a)
			}
		case KindDisj:
			if len(p.Children) < 2 {
				return fmt.Errorf("dtd: disjunction production of %q needs at least two children", a)
			}
			seen := make(map[string]bool, len(p.Children))
			for _, c := range p.Children {
				if seen[c] {
					return fmt.Errorf("dtd: disjunction production of %q repeats child %q", a, c)
				}
				seen[c] = true
			}
		case KindStar:
			if len(p.Children) != 1 {
				return fmt.Errorf("dtd: star production of %q must have exactly one child", a)
			}
		default:
			return fmt.Errorf("dtd: type %q has invalid production kind %d", a, p.Kind)
		}
		for _, c := range p.Children {
			if _, ok := d.Prods[c]; !ok {
				return fmt.Errorf("dtd: type %q references undefined child type %q", a, c)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the DTD.
func (d *DTD) Clone() *DTD {
	c := &DTD{
		Root:  d.Root,
		Types: append([]string(nil), d.Types...),
		Prods: make(map[string]Production, len(d.Prods)),
	}
	for a, p := range d.Prods {
		c.Prods[a] = Production{Kind: p.Kind, Children: append([]string(nil), p.Children...)}
	}
	return c
}

// Size returns |E|, the number of element types.
func (d *DTD) Size() int { return len(d.Types) }

// Production returns P(A) and whether A is defined.
func (d *DTD) Production(a string) (Production, bool) {
	p, ok := d.Prods[a]
	return p, ok
}

// Equal reports whether two DTDs define the same schema: same root, same
// type order, and identical productions.
func (d *DTD) Equal(o *DTD) bool {
	if d.Root != o.Root || len(d.Types) != len(o.Types) {
		return false
	}
	for i, a := range d.Types {
		if o.Types[i] != a {
			return false
		}
		p, q := d.Prods[a], o.Prods[a]
		if p.Kind != q.Kind || len(p.Children) != len(q.Children) {
			return false
		}
		for j := range p.Children {
			if p.Children[j] != q.Children[j] {
				return false
			}
		}
	}
	return true
}

// String renders the schema as DTD element declarations, root first.
func (d *DTD) String() string {
	var b strings.Builder
	for _, a := range d.Types {
		fmt.Fprintf(&b, "<!ELEMENT %s %s>\n", a, d.Prods[a])
	}
	return b.String()
}

// Reachable returns the set of element types reachable from the root.
func (d *DTD) Reachable() map[string]bool {
	seen := map[string]bool{d.Root: true}
	stack := []string{d.Root}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range d.Prods[a].Children {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return seen
}

// IsRecursive reports whether the schema graph is cyclic.
func (d *DTD) IsRecursive() bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int, len(d.Types))
	var visit func(a string) bool
	visit = func(a string) bool {
		color[a] = grey
		for _, c := range d.Prods[a].Children {
			switch color[c] {
			case grey:
				return true
			case white:
				if visit(c) {
					return true
				}
			}
		}
		color[a] = black
		return false
	}
	for _, a := range d.Types {
		if color[a] == white && visit(a) {
			return true
		}
	}
	return false
}

// Productive returns the set of element types that derive at least one
// finite XML tree. str, ε and star productions are always productive; a
// concatenation is productive when all children are; a disjunction when
// at least one child is.
func (d *DTD) Productive() map[string]bool {
	prod := make(map[string]bool, len(d.Types))
	for changed := true; changed; {
		changed = false
		for _, a := range d.Types {
			if prod[a] {
				continue
			}
			p := d.Prods[a]
			ok := false
			switch p.Kind {
			case KindStr, KindEmpty, KindStar:
				ok = true
			case KindConcat:
				ok = true
				for _, c := range p.Children {
					if !prod[c] {
						ok = false
						break
					}
				}
			case KindDisj:
				for _, c := range p.Children {
					if prod[c] {
						ok = true
						break
					}
				}
			}
			if ok {
				prod[a] = true
				changed = true
			}
		}
	}
	return prod
}

// Consistent converts the DTD to an equivalent consistent one: a schema
// with no useless element types, i.e. every type appears in some
// instance. It removes unproductive disjuncts, rewrites stars over
// unproductive children to ε, and drops unreachable types, following the
// standard useless-symbol elimination for context-free grammars (the
// paper's §2.1). It returns an error if the root itself is unproductive,
// in which case I(S) is empty and no consistent equivalent exists.
func (d *DTD) Consistent() (*DTD, error) {
	prod := d.Productive()
	if !prod[d.Root] {
		return nil, fmt.Errorf("dtd: root type %q is unproductive; the schema has no instances", d.Root)
	}
	// Rewrite productions restricted to productive types.
	trimmed := &DTD{Root: d.Root, Prods: make(map[string]Production, len(d.Prods))}
	for _, a := range d.Types {
		if !prod[a] {
			continue
		}
		p := d.Prods[a]
		switch p.Kind {
		case KindDisj:
			var keep []string
			for _, c := range p.Children {
				if prod[c] {
					keep = append(keep, c)
				}
			}
			switch len(keep) {
			case 1:
				p = Concat(keep[0])
			default:
				p = Disj(keep...)
			}
		case KindStar:
			if !prod[p.Children[0]] {
				p = Empty()
			}
		}
		trimmed.Types = append(trimmed.Types, a)
		trimmed.Prods[a] = p
	}
	// Drop unreachable types.
	reach := trimmed.Reachable()
	out := &DTD{Root: d.Root, Prods: make(map[string]Production, len(reach))}
	for _, a := range trimmed.Types {
		if reach[a] {
			out.Types = append(out.Types, a)
			out.Prods[a] = trimmed.Prods[a]
		}
	}
	if err := out.Check(); err != nil {
		return nil, fmt.Errorf("dtd: internal error after consistency trim: %w", err)
	}
	return out, nil
}

// IsConsistent reports whether every element type is useful, i.e. the
// DTD equals its consistent trim up to production rewriting.
func (d *DTD) IsConsistent() bool {
	prod := d.Productive()
	reach := d.Reachable()
	for _, a := range d.Types {
		if !prod[a] || !reach[a] {
			return false
		}
	}
	// A star over an unproductive child or a disjunction with an
	// unproductive disjunct still leaves that child reachable-but-useless.
	for _, a := range d.Types {
		p := d.Prods[a]
		for _, c := range p.Children {
			if !prod[c] {
				return false
			}
		}
	}
	return true
}

// MinDepth returns, for each productive element type, the height of its
// shortest instance tree (a type with production str or ε has depth 1).
// Unproductive types are absent from the result. The map is used to
// steer random instance generation away from unbounded recursion.
func (d *DTD) MinDepth() map[string]int {
	const inf = int(^uint(0) >> 1)
	depth := make(map[string]int, len(d.Types))
	get := func(a string) int {
		if v, ok := depth[a]; ok {
			return v
		}
		return inf
	}
	for changed := true; changed; {
		changed = false
		for _, a := range d.Types {
			p := d.Prods[a]
			var v int
			switch p.Kind {
			case KindStr, KindEmpty, KindStar:
				v = 1
			case KindConcat:
				v = 1
				for _, c := range p.Children {
					cd := get(c)
					if cd == inf {
						v = inf
						break
					}
					if cd+1 > v {
						v = cd + 1
					}
				}
			case KindDisj:
				v = inf
				for _, c := range p.Children {
					if cd := get(c); cd != inf && cd+1 < v {
						v = cd + 1
					}
				}
			}
			if v != inf && v < get(a) {
				depth[a] = v
				changed = true
			}
		}
	}
	return depth
}

// SortedTypes returns the element types sorted lexicographically. The
// declaration order in Types is authoritative for algorithms; this
// helper exists for deterministic diagnostics.
func (d *DTD) SortedTypes() []string {
	s := append([]string(nil), d.Types...)
	sort.Strings(s)
	return s
}
