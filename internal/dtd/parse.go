package dtd

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/guard"
)

// Parse reads DTD element declarations from src and returns the schema
// in normal form. root selects the distinguished root type; if empty,
// the first declared element is the root. ATTLIST, ENTITY and NOTATION
// declarations, processing instructions and comments are skipped
// (the paper's model has no attributes). ANY content models and
// parameter entities are not supported.
//
// Parse enforces the default guard.Limits (input size, content-group
// nesting depth, declaration count); hostile input fails with a
// *guard.LimitError instead of exhausting the stack or the heap. Use
// ParseLimits to tighten or lift the bounds.
//
// Go's encoding/xml deliberately does not parse or validate DTDs, so
// this parser is the substrate standing in for a validating XML
// processor's DTD front end.
func Parse(src, root string) (*DTD, error) {
	return ParseLimits(src, root, guard.Limits{})
}

// ParseLimits is Parse under explicit resource limits (zero fields
// select the defaults; guard.Unlimited() disables the checks).
func ParseLimits(src, root string, lim guard.Limits) (*DTD, error) {
	g, err := ParseGeneralLimits(src, root, lim)
	if err != nil {
		return nil, err
	}
	return g.Normalize()
}

// ParseGeneral reads DTD element declarations without normalizing the
// content models, under the default limits.
func ParseGeneral(src, root string) (*GeneralDTD, error) {
	return ParseGeneralLimits(src, root, guard.Limits{})
}

// ParseGeneralLimits is ParseGeneral under explicit resource limits.
func ParseGeneralLimits(src, root string, lim guard.Limits) (*GeneralDTD, error) {
	lim = lim.WithDefaults()
	if err := lim.CheckInputBytes(len(src), "dtd: parse"); err != nil {
		return nil, err
	}
	p := &dtdParser{src: src, lim: lim}
	g := &GeneralDTD{Prods: make(map[string]Expr)}
	for {
		p.skipSpace()
		if p.eof() {
			break
		}
		switch {
		case p.consume("<!--"):
			if !p.skipUntil("-->") {
				return nil, p.errf("unterminated comment")
			}
		case p.consume("<!ELEMENT"):
			name, expr, err := p.elementDecl()
			if err != nil {
				return nil, err
			}
			if _, dup := g.Prods[name]; dup {
				return nil, fmt.Errorf("dtd: duplicate declaration of element %q", name)
			}
			if err := p.lim.CheckTypes(len(g.Types)+1, "dtd: parse"); err != nil {
				return nil, err
			}
			g.Types = append(g.Types, name)
			g.Prods[name] = expr
		case p.consume("<!ATTLIST"), p.consume("<!ENTITY"), p.consume("<!NOTATION"):
			if !p.skipDecl() {
				return nil, p.errf("unterminated declaration")
			}
		case p.consume("<?"):
			if !p.skipUntil("?>") {
				return nil, p.errf("unterminated processing instruction")
			}
		case p.consume("<!DOCTYPE"):
			// Allow an internal subset wrapper: <!DOCTYPE root [ ... ]>.
			p.skipSpace()
			if _, err := p.name(); err != nil {
				return nil, err
			}
			p.skipSpace()
			if !p.consume("[") {
				return nil, p.errf("expected '[' after DOCTYPE name")
			}
		case p.consume("]>"), p.consume("]"):
			// End of internal subset; trailing '>' if separated.
			p.skipSpace()
			p.consume(">")
		default:
			return nil, p.errf("unexpected input %q", p.peekContext())
		}
	}
	if len(g.Types) == 0 {
		return nil, fmt.Errorf("dtd: no element declarations found")
	}
	if root == "" {
		root = g.Types[0]
	}
	if _, ok := g.Prods[root]; !ok {
		return nil, fmt.Errorf("dtd: root type %q is not declared", root)
	}
	g.Root = root
	return g, nil
}

type dtdParser struct {
	src   string
	pos   int
	lim   guard.Limits
	depth int // current content-group nesting depth
}

func (p *dtdParser) eof() bool { return p.pos >= len(p.src) }

func (p *dtdParser) errf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:p.pos], "\n")
	return fmt.Errorf("dtd: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *dtdParser) peekContext() string {
	end := p.pos + 20
	if end > len(p.src) {
		end = len(p.src)
	}
	return p.src[p.pos:end]
}

func (p *dtdParser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *dtdParser) consume(tok string) bool {
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *dtdParser) skipUntil(end string) bool {
	i := strings.Index(p.src[p.pos:], end)
	if i < 0 {
		p.pos = len(p.src)
		return false
	}
	p.pos += i + len(end)
	return true
}

// skipDecl skips to the closing '>' of a declaration, honoring quoted
// strings (entity values may contain '>').
func (p *dtdParser) skipDecl() bool {
	for p.pos < len(p.src) {
		switch c := p.src[p.pos]; c {
		case '>':
			p.pos++
			return true
		case '"', '\'':
			p.pos++
			i := strings.IndexByte(p.src[p.pos:], c)
			if i < 0 {
				p.pos = len(p.src)
				return false
			}
			p.pos += i + 1
		default:
			p.pos++
		}
	}
	return false
}

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func (p *dtdParser) name() (string, error) {
	start := p.pos
	if p.eof() || !isNameStart(p.src[p.pos]) {
		return "", p.errf("expected a name, found %q", p.peekContext())
	}
	p.pos++
	for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos], nil
}

func (p *dtdParser) elementDecl() (string, Expr, error) {
	p.skipSpace()
	name, err := p.name()
	if err != nil {
		return "", nil, err
	}
	p.skipSpace()
	var expr Expr
	switch {
	case p.consume("EMPTY"):
		expr = EEmpty{}
	case p.consume("ANY"):
		return "", nil, p.errf("ANY content model of %q is not supported", name)
	default:
		expr, err = p.contentGroup()
		if err != nil {
			return "", nil, err
		}
	}
	p.skipSpace()
	if !p.consume(">") {
		return "", nil, p.errf("expected '>' closing declaration of %q", name)
	}
	return name, expr, nil
}

// contentGroup parses a parenthesized group with its optional
// repetition suffix. Nesting depth is bounded so hostile input like
// "((((…" fails with a LimitError instead of exhausting the stack.
func (p *dtdParser) contentGroup() (Expr, error) {
	if !p.consume("(") {
		return nil, p.errf("expected '(' in content model, found %q", p.peekContext())
	}
	p.depth++
	defer func() { p.depth-- }()
	if err := p.lim.CheckDepth(p.depth, "dtd: parse"); err != nil {
		return nil, err
	}
	p.skipSpace()
	first, err := p.cp()
	if err != nil {
		return nil, err
	}
	items := []Expr{first}
	sep := byte(0)
	for {
		p.skipSpace()
		switch {
		case p.consume(")"):
			var group Expr
			switch {
			case len(items) == 1:
				group = items[0]
			case sep == '|':
				group = EChoice{Items: items}
			default:
				group = ESeq{Items: items}
			}
			return p.suffix(group), nil
		case p.consume(","), p.consume("|"):
			c := p.src[p.pos-1]
			if sep != 0 && sep != c {
				return nil, p.errf("mixed ',' and '|' separators in one group")
			}
			sep = c
			p.skipSpace()
			item, err := p.cp()
			if err != nil {
				return nil, err
			}
			items = append(items, item)
		default:
			return nil, p.errf("expected ',', '|' or ')' in content model, found %q", p.peekContext())
		}
	}
}

// cp parses a content particle: a name, #PCDATA, or a nested group, with
// an optional repetition suffix.
func (p *dtdParser) cp() (Expr, error) {
	p.skipSpace()
	if p.consume("#PCDATA") {
		return EPCDATA{}, nil
	}
	if !p.eof() && p.src[p.pos] == '(' {
		return p.contentGroup()
	}
	name, err := p.name()
	if err != nil {
		return nil, err
	}
	return p.suffix(EName{Name: name}), nil
}

func (p *dtdParser) suffix(e Expr) Expr {
	switch {
	case p.consume("*"):
		return EStar{Item: e}
	case p.consume("+"):
		return EPlus{Item: e}
	case p.consume("?"):
		return EOpt{Item: e}
	}
	return e
}
