package dtd

import (
	"strings"
	"testing"
)

// fig1ClassDTD is the class DTD S0 of the paper's Figure 1(a).
func fig1ClassDTD(t *testing.T) *DTD {
	t.Helper()
	d, err := New("db",
		D("db", Star("class")),
		D("class", Concat("cno", "title", "type")),
		D("cno", Str()),
		D("title", Str()),
		D("type", Disj("regular", "project")),
		D("regular", Concat("prereq")),
		D("project", Str()),
		D("prereq", Star("class")),
	)
	if err != nil {
		t.Fatalf("building Fig.1(a) DTD: %v", err)
	}
	return d
}

func TestNewAndCheck(t *testing.T) {
	d := fig1ClassDTD(t)
	if d.Size() != 8 {
		t.Errorf("Size() = %d, want 8", d.Size())
	}
	if got := d.Prods["type"].Kind; got != KindDisj {
		t.Errorf("type production kind = %v, want disjunction", got)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name string
		root string
		defs []Def
		want string
	}{
		{"missing root", "r", []Def{D("a", Empty())}, "root type"},
		{"empty root", "", []Def{D("a", Empty())}, "empty root"},
		{"undefined child", "r", []Def{D("r", Concat("missing"))}, "undefined child"},
		{"dup disjunct", "r", []Def{D("r", Disj("a", "a")), D("a", Empty())}, "repeats child"},
		{"small disjunction", "r", []Def{D("r", Disj("a")), D("a", Empty())}, "at least two"},
		{"empty concat", "r", []Def{D("r", Concat())}, "no children"},
		{"str with children", "r", []Def{D("r", Production{Kind: KindStr, Children: []string{"a"}}), D("a", Empty())}, "must have no children"},
		{"duplicate definition", "r", []Def{D("r", Empty()), D("r", Empty())}, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.root, tc.defs...)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("New() error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestIsRecursive(t *testing.T) {
	if d := fig1ClassDTD(t); !d.IsRecursive() {
		t.Error("Fig.1(a) class DTD should be recursive (class -> type -> regular -> prereq -> class)")
	}
	flat := MustNew("r", D("r", Concat("a")), D("a", Str()))
	if flat.IsRecursive() {
		t.Error("flat DTD reported recursive")
	}
	self := MustNew("r", D("r", Disj("a", "b")), D("a", Star("r")), D("b", Empty()))
	if !self.IsRecursive() {
		t.Error("r -> a -> r cycle not detected")
	}
}

func TestProductiveAndConsistent(t *testing.T) {
	// x is unproductive: x -> (x, x) can never terminate.
	d := MustNew("r",
		D("r", Disj("a", "x")),
		D("a", Str()),
		D("x", Concat("x", "x")),
	)
	prod := d.Productive()
	if prod["x"] {
		t.Error("x should be unproductive")
	}
	if !prod["r"] || !prod["a"] {
		t.Error("r and a should be productive")
	}
	c, err := d.Consistent()
	if err != nil {
		t.Fatalf("Consistent: %v", err)
	}
	if _, ok := c.Prods["x"]; ok {
		t.Error("useless type x survived Consistent()")
	}
	// The disjunction collapses to a single productive disjunct.
	if p := c.Prods["r"]; p.Kind != KindConcat || len(p.Children) != 1 || p.Children[0] != "a" {
		t.Errorf("r production after trim = %v, want (a)", p)
	}
	if !c.IsConsistent() {
		t.Error("trimmed DTD not reported consistent")
	}
	if d.IsConsistent() {
		t.Error("original DTD wrongly reported consistent")
	}
}

func TestConsistentStarOverUnproductive(t *testing.T) {
	d := MustNew("r",
		D("r", Star("x")),
		D("x", Concat("x")),
	)
	c, err := d.Consistent()
	if err != nil {
		t.Fatalf("Consistent: %v", err)
	}
	if p := c.Prods["r"]; p.Kind != KindEmpty {
		t.Errorf("r production = %v, want EMPTY (star over unproductive child)", p)
	}
}

func TestConsistentUnproductiveRoot(t *testing.T) {
	d := MustNew("r", D("r", Concat("r")))
	if _, err := d.Consistent(); err == nil {
		t.Error("Consistent() should fail when the root is unproductive")
	}
}

func TestMinDepth(t *testing.T) {
	d := fig1ClassDTD(t)
	depth := d.MinDepth()
	if depth["db"] != 1 {
		t.Errorf("MinDepth(db) = %d, want 1 (star: zero children)", depth["db"])
	}
	if depth["cno"] != 1 {
		t.Errorf("MinDepth(cno) = %d, want 1", depth["cno"])
	}
	// class -> {cno,title,type}; type -> project (depth 1); so class depth 3.
	if depth["class"] != 3 {
		t.Errorf("MinDepth(class) = %d, want 3", depth["class"])
	}
}

func TestChildEdgesOccurrences(t *testing.T) {
	d := MustNew("r", D("r", Concat("a", "b", "a")), D("a", Str()), D("b", Str()))
	edges := d.ChildEdges("r")
	if len(edges) != 3 {
		t.Fatalf("got %d edges, want 3", len(edges))
	}
	if edges[0].Occ != 1 || edges[2].Occ != 2 {
		t.Errorf("occurrence labels = %d,%d, want 1,2", edges[0].Occ, edges[2].Occ)
	}
	if edges[2].Index != 2 {
		t.Errorf("second 'a' Index = %d, want 2", edges[2].Index)
	}
	if _, ok := d.EdgeBetween("r", "a", 2); !ok {
		t.Error("EdgeBetween(r,a,2) not found")
	}
	if _, ok := d.EdgeBetween("r", "a", 3); ok {
		t.Error("EdgeBetween(r,a,3) should not exist")
	}
}

func TestEdgeKinds(t *testing.T) {
	d := fig1ClassDTD(t)
	if e := d.ChildEdges("db")[0]; e.Kind != EdgeSTAR {
		t.Errorf("db->class edge kind = %v, want STAR", e.Kind)
	}
	if e := d.ChildEdges("type")[0]; e.Kind != EdgeOR {
		t.Errorf("type->regular edge kind = %v, want OR", e.Kind)
	}
	if e := d.ChildEdges("class")[0]; e.Kind != EdgeAND {
		t.Errorf("class->cno edge kind = %v, want AND", e.Kind)
	}
	if got := len(d.ChildEdges("cno")); got != 0 {
		t.Errorf("str type has %d edges, want 0", got)
	}
}

func TestSCCs(t *testing.T) {
	d := fig1ClassDTD(t)
	comps := d.SCCs()
	byType := make(map[string]int)
	for i, comp := range comps {
		for _, a := range comp {
			byType[a] = i
		}
	}
	// class, type, regular, prereq form one cycle.
	if byType["class"] != byType["prereq"] || byType["class"] != byType["type"] || byType["class"] != byType["regular"] {
		t.Errorf("cycle members in different SCCs: %v", byType)
	}
	if byType["db"] == byType["class"] {
		t.Error("db should be in its own SCC")
	}
	// Reverse topological: the class component comes before db.
	if byType["class"] > byType["db"] {
		t.Error("SCCs not in reverse topological order")
	}
}

func TestCloneAndEqual(t *testing.T) {
	d := fig1ClassDTD(t)
	c := d.Clone()
	if !d.Equal(c) {
		t.Error("clone not Equal to original")
	}
	c.Prods["cno"] = Empty()
	if d.Equal(c) {
		t.Error("Equal ignores production change")
	}
	if d.Prods["cno"].Kind != KindStr {
		t.Error("Clone shares production storage with original")
	}
}

func TestStringRoundTrip(t *testing.T) {
	d := fig1ClassDTD(t)
	text := d.String()
	back, err := Parse(text, "db")
	if err != nil {
		t.Fatalf("Parse(String()): %v", err)
	}
	if !d.Equal(back) {
		t.Errorf("round trip mismatch:\noriginal:\n%s\nparsed:\n%s", d, back)
	}
}

func TestSortedTypes(t *testing.T) {
	d := MustNew("r", D("r", Concat("b", "a")), D("b", Str()), D("a", Str()))
	got := d.SortedTypes()
	if got[0] != "a" || got[1] != "b" || got[2] != "r" {
		t.Errorf("SortedTypes() = %v", got)
	}
	if d.Types[1] != "b" {
		t.Error("SortedTypes must not mutate declaration order")
	}
}
