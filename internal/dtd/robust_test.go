package dtd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDTDParseNeverPanics: the DTD parser survives arbitrary input.
func TestDTDParseNeverPanics(t *testing.T) {
	alphabet := []byte("<!ELEMENT abc (|,)*+? #PCDATA EMPTY ANY>\"'-[]\n")
	prop := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("seed %d: panic: %v", seed, r)
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(120)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[r.Intn(len(alphabet))]
		}
		d, err := Parse(string(buf), "")
		if err != nil {
			return true
		}
		// Successful parses yield well-formed schemas that re-parse.
		if err := d.Check(); err != nil {
			t.Logf("seed %d: parsed schema fails Check: %v", seed, err)
			return false
		}
		back, err := Parse(d.String(), d.Root)
		return err == nil && back.Equal(d)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1500, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}
