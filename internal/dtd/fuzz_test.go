package dtd

import (
	"errors"
	"testing"

	"repro/internal/guard"
)

// FuzzDTDParse asserts that Parse never panics on arbitrary input and
// that accepted schemas round-trip: the normal form is a fixpoint of
// parse → String → parse.
func FuzzDTDParse(f *testing.F) {
	seeds := []string{
		"<!ELEMENT a (#PCDATA)>",
		"<!ELEMENT a EMPTY>",
		"<!ELEMENT a (b, c)>\n<!ELEMENT b EMPTY>\n<!ELEMENT c (#PCDATA)>",
		"<!ELEMENT a (b | c)>\n<!ELEMENT b EMPTY>\n<!ELEMENT c EMPTY>",
		"<!ELEMENT a (b)*>\n<!ELEMENT b (#PCDATA)>",
		"<!ELEMENT a (b?, (c | d)+)>\n<!ELEMENT b EMPTY>\n<!ELEMENT c EMPTY>\n<!ELEMENT d EMPTY>",
		"<!ELEMENT a ((((b))))>\n<!ELEMENT b EMPTY>",
		"<!ELEMENT a (a | b)>\n<!ELEMENT b EMPTY>",
		"<!ELEMENT x.1 (x.2)>\n<!ELEMENT x.2 EMPTY>",
		"<!ELEMENT a",
		"<!ELEMENT a ()>",
		"garbage",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	tight := guard.Limits{MaxDepth: 8, MaxInputBytes: 1 << 12, MaxTypes: 16}
	f.Fuzz(func(t *testing.T, src string) {
		// Tight limits must reject gracefully — a structured LimitError
		// or a parse error, never a panic or stack overflow.
		if _, err := ParseLimits(src, "", tight); err != nil {
			var le *guard.LimitError
			_ = errors.As(err, &le)
		}
		d, err := Parse(src, "")
		if err != nil {
			return
		}
		d2, err := Parse(d.String(), d.Root)
		if err != nil {
			t.Fatalf("reparse of normal form failed: %v\ninput: %q\nnormal form:\n%s", err, src, d.String())
		}
		if !d2.Equal(d) {
			t.Errorf("normal form not a parse fixpoint\ninput: %q\nfirst:\n%s\nsecond:\n%s", src, d.String(), d2.String())
		}
	})
}
