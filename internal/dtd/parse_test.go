package dtd

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasic(t *testing.T) {
	src := `
<!-- school courses -->
<!ELEMENT db (class)*>
<!ELEMENT class (cno, title, type)>
<!ELEMENT cno (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT type (regular | project)>
<!ELEMENT regular (prereq)>
<!ELEMENT project (#PCDATA)>
<!ELEMENT prereq (class)*>
`
	d, err := Parse(src, "")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if d.Root != "db" {
		t.Errorf("default root = %q, want db (first declared)", d.Root)
	}
	if p := d.Prods["db"]; p.Kind != KindStar || p.Children[0] != "class" {
		t.Errorf("db production = %v", p)
	}
	if p := d.Prods["type"]; p.Kind != KindDisj {
		t.Errorf("type production = %v, want disjunction", p)
	}
}

func TestParseNormalizesSugar(t *testing.T) {
	src := `
<!ELEMENT r (a+, b?, (c | d)*)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b EMPTY>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA)>
`
	d, err := Parse(src, "r")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	p := d.Prods["r"]
	if p.Kind != KindConcat || len(p.Children) != 4 {
		t.Fatalf("r production = %v, want 4-child concatenation", p)
	}
	// a+ => a, r.N with r.N -> a*.
	if p.Children[0] != "a" {
		t.Errorf("first child = %q, want a", p.Children[0])
	}
	if star := d.Prods[p.Children[1]]; star.Kind != KindStar || star.Children[0] != "a" {
		t.Errorf("a+ continuation = %v, want (a)*", star)
	}
	// b? => fresh disjunction (b | eps).
	opt := d.Prods[p.Children[2]]
	if opt.Kind != KindDisj || len(opt.Children) != 2 {
		t.Fatalf("b? normalization = %v, want 2-way disjunction", opt)
	}
	foundEps := false
	for _, c := range opt.Children {
		if d.Prods[c].Kind == KindEmpty {
			foundEps = true
		}
	}
	if !foundEps {
		t.Error("optional normalization lacks an ε disjunct")
	}
	// (c|d)* => star over a fresh disjunction type.
	grp := d.Prods[p.Children[3]]
	if grp.Kind != KindStar {
		t.Fatalf("(c|d)* normalization = %v, want star", grp)
	}
	if inner := d.Prods[grp.Children[0]]; inner.Kind != KindDisj {
		t.Errorf("star body = %v, want disjunction", inner)
	}
	if err := d.Check(); err != nil {
		t.Errorf("normalized DTD fails Check: %v", err)
	}
}

func TestParseMixedContent(t *testing.T) {
	src := `
<!ELEMENT p (#PCDATA | em)*>
<!ELEMENT em (#PCDATA)>
`
	d, err := Parse(src, "p")
	if err != nil {
		t.Fatalf("Parse mixed content: %v", err)
	}
	p := d.Prods["p"]
	if p.Kind != KindStar {
		t.Fatalf("mixed content production = %v, want star", p)
	}
	inner := d.Prods[p.Children[0]]
	if inner.Kind != KindDisj {
		t.Fatalf("mixed star body = %v, want disjunction", inner)
	}
	hasStr := false
	for _, c := range inner.Children {
		if d.Prods[c].Kind == KindStr {
			hasStr = true
		}
	}
	if !hasStr {
		t.Error("mixed content lost its PCDATA alternative")
	}
}

func TestParseDoctypeWrapper(t *testing.T) {
	src := `<!DOCTYPE note [
<!ELEMENT note (to, from)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT from (#PCDATA)>
<!ATTLIST note id CDATA #REQUIRED>
]>`
	d, err := Parse(src, "")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if d.Root != "note" || d.Size() != 3 {
		t.Errorf("root=%q size=%d, want note/3", d.Root, d.Size())
	}
}

func TestParseSkipsDeclarations(t *testing.T) {
	src := `
<?xml version="1.0"?>
<!ENTITY copy "a > b">
<!NOTATION gif SYSTEM "viewer.exe">
<!ELEMENT r EMPTY>
<!ATTLIST r kind CDATA "x > y">
`
	d, err := Parse(src, "r")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if d.Prods["r"].Kind != KindEmpty {
		t.Errorf("r = %v, want EMPTY", d.Prods["r"])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"any", `<!ELEMENT r ANY>`, "ANY content model"},
		{"unterminated comment", `<!-- oops`, "unterminated comment"},
		{"bad separator", `<!ELEMENT r (a, b | c)> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>`, "mixed"},
		{"no declarations", `<!-- empty -->`, "no element declarations"},
		{"bad root", `<!ELEMENT r EMPTY>`, "not declared"},
		{"dup element", `<!ELEMENT r EMPTY> <!ELEMENT r EMPTY>`, "duplicate"},
		{"garbage", `hello`, "unexpected input"},
		{"unclosed group", `<!ELEMENT r (a >`, "expected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root := ""
			if tc.name == "bad root" {
				root = "nope"
			}
			_, err := Parse(tc.src, root)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Parse error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestParseNestedGroups(t *testing.T) {
	src := `
<!ELEMENT r ((a, b) | (c, (d | e)+))>
<!ELEMENT a EMPTY> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>
<!ELEMENT d EMPTY> <!ELEMENT e EMPTY>
`
	d, err := Parse(src, "r")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := d.Check(); err != nil {
		t.Errorf("Check after normalization: %v", err)
	}
	if d.Prods["r"].Kind != KindDisj {
		t.Errorf("r = %v, want disjunction of fresh group types", d.Prods["r"])
	}
}

// randomExpr builds a random general content model of bounded depth over
// the given names.
func randomExpr(r *rand.Rand, names []string, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		return EName{Name: names[r.Intn(len(names))]}
	}
	switch r.Intn(6) {
	case 0:
		n := 1 + r.Intn(3)
		items := make([]Expr, n)
		for i := range items {
			items[i] = randomExpr(r, names, depth-1)
		}
		return ESeq{Items: items}
	case 1:
		n := 2 + r.Intn(2)
		items := make([]Expr, n)
		for i := range items {
			items[i] = randomExpr(r, names, depth-1)
		}
		return EChoice{Items: items}
	case 2:
		return EStar{Item: randomExpr(r, names, depth-1)}
	case 3:
		return EPlus{Item: randomExpr(r, names, depth-1)}
	case 4:
		return EOpt{Item: randomExpr(r, names, depth-1)}
	default:
		return EPCDATA{}
	}
}

// TestNormalizeProperty checks with testing/quick that normalizing a
// random general DTD always yields a well-formed normal-form schema.
func TestNormalizeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		names := []string{"a", "b", "c", "d"}
		g := &GeneralDTD{Root: "r", Prods: map[string]Expr{}}
		g.Types = append(g.Types, "r")
		g.Prods["r"] = randomExpr(r, names, 3)
		for _, n := range names {
			g.Types = append(g.Types, n)
			if r.Intn(2) == 0 {
				g.Prods[n] = EPCDATA{}
			} else {
				g.Prods[n] = randomExpr(r, names, 2)
			}
		}
		d, err := g.Normalize()
		if err != nil {
			t.Logf("seed %d: normalize error: %v", seed, err)
			return false
		}
		if err := d.Check(); err != nil {
			t.Logf("seed %d: check error: %v", seed, err)
			return false
		}
		// Every production must be in normal form (Check enforces the
		// shapes; also confirm str/ε are leaves and names round-trip).
		text := d.String()
		back, err := Parse(text, "r")
		if err != nil {
			t.Logf("seed %d: reparse error: %v", seed, err)
			return false
		}
		return back.Equal(d)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestExprString(t *testing.T) {
	e := ESeq{Items: []Expr{EName{"a"}, EOpt{EChoice{Items: []Expr{EName{"b"}, EPCDATA{}}}}}}
	got := ExprString(e)
	if !strings.Contains(got, "a") || !strings.Contains(got, "#PCDATA") || !strings.Contains(got, "?") {
		t.Errorf("ExprString = %q", got)
	}
}
