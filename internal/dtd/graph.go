package dtd

import "fmt"

// EdgeKind classifies edges of the schema graph per the paper's
// conventions: solid edges for concatenation (AND), dashed edges for
// disjunction (OR), and '*'-labeled edges for Kleene star (STAR).
type EdgeKind uint8

const (
	// EdgeAND is a solid edge from a concatenation production.
	EdgeAND EdgeKind = iota
	// EdgeOR is a dashed edge from a disjunction production.
	EdgeOR
	// EdgeSTAR is a star edge from a Kleene-star production.
	EdgeSTAR
)

// String returns "AND", "OR" or "STAR".
func (k EdgeKind) String() string {
	switch k {
	case EdgeAND:
		return "AND"
	case EdgeOR:
		return "OR"
	case EdgeSTAR:
		return "STAR"
	}
	return fmt.Sprintf("EdgeKind(%d)", uint8(k))
}

// Edge is an edge of the schema graph. For concatenation productions in
// which a child type occurs several times, each occurrence is a distinct
// edge; Occ is the 1-based occurrence index among children with the same
// label (the position label of the paper's graphs), and Index is the
// 0-based position among all children of the production. For OR and STAR
// edges Occ is always 1.
type Edge struct {
	From  string
	To    string
	Kind  EdgeKind
	Occ   int
	Index int
}

// String renders the edge, including the occurrence label when the
// production repeats the child type.
func (e Edge) String() string {
	if e.Occ > 1 {
		return fmt.Sprintf("%s -%s#%d-> %s", e.From, e.Kind, e.Occ, e.To)
	}
	return fmt.Sprintf("%s -%s-> %s", e.From, e.Kind, e.To)
}

// ChildEdges returns the outgoing schema-graph edges of element type a,
// in production order. str and ε productions have no outgoing edges.
func (d *DTD) ChildEdges(a string) []Edge {
	p, ok := d.Prods[a]
	if !ok {
		return nil
	}
	switch p.Kind {
	case KindConcat:
		edges := make([]Edge, 0, len(p.Children))
		occ := make(map[string]int, len(p.Children))
		for i, c := range p.Children {
			occ[c]++
			edges = append(edges, Edge{From: a, To: c, Kind: EdgeAND, Occ: occ[c], Index: i})
		}
		return edges
	case KindDisj:
		edges := make([]Edge, 0, len(p.Children))
		for i, c := range p.Children {
			edges = append(edges, Edge{From: a, To: c, Kind: EdgeOR, Occ: 1, Index: i})
		}
		return edges
	case KindStar:
		return []Edge{{From: a, To: p.Children[0], Kind: EdgeSTAR, Occ: 1, Index: 0}}
	}
	return nil
}

// Edges returns every edge of the schema graph in declaration order.
func (d *DTD) Edges() []Edge {
	var edges []Edge
	for _, a := range d.Types {
		edges = append(edges, d.ChildEdges(a)...)
	}
	return edges
}

// EdgeBetween returns the edge from parent a to the occ-th occurrence of
// child label b, if any.
func (d *DTD) EdgeBetween(a, b string, occ int) (Edge, bool) {
	for _, e := range d.ChildEdges(a) {
		if e.To == b && e.Occ == occ {
			return e, true
		}
	}
	return Edge{}, false
}

// SCCs returns the strongly connected components of the schema graph in
// reverse topological order of the condensation (callees before
// callers), using Tarjan's algorithm. Components are used to solve the
// prefix-free path problem on cyclic DTDs by first condensing to a DAG.
func (d *DTD) SCCs() [][]string {
	index := make(map[string]int, len(d.Types))
	low := make(map[string]int, len(d.Types))
	onStack := make(map[string]bool, len(d.Types))
	var stack []string
	var comps [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range d.Prods[v].Children {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for _, a := range d.Types {
		if _, seen := index[a]; !seen {
			strongconnect(a)
		}
	}
	return comps
}
