package dtd

import (
	"fmt"
	"strings"
)

// Expr is a general DTD content model, as written in real DTD files:
// arbitrary nesting of sequences, choices, repetition operators and
// PCDATA. A GeneralDTD of such models is converted to the paper's normal
// form by Normalize, which introduces fresh element types in linear time
// (§2.1 of the paper).
type Expr interface {
	exprString(b *strings.Builder)
}

type (
	// EName references an element type.
	EName struct{ Name string }
	// EPCDATA is #PCDATA.
	EPCDATA struct{}
	// EEmpty is the EMPTY content model.
	EEmpty struct{}
	// ESeq is a sequence (e1, e2, ...).
	ESeq struct{ Items []Expr }
	// EChoice is a choice (e1 | e2 | ...).
	EChoice struct{ Items []Expr }
	// EStar is e*.
	EStar struct{ Item Expr }
	// EPlus is e+.
	EPlus struct{ Item Expr }
	// EOpt is e?.
	EOpt struct{ Item Expr }
)

func (e EName) exprString(b *strings.Builder)   { b.WriteString(e.Name) }
func (EPCDATA) exprString(b *strings.Builder)   { b.WriteString("#PCDATA") }
func (EEmpty) exprString(b *strings.Builder)    { b.WriteString("EMPTY") }
func (e ESeq) exprString(b *strings.Builder)    { joinExpr(b, e.Items, ", ") }
func (e EChoice) exprString(b *strings.Builder) { joinExpr(b, e.Items, " | ") }
func (e EStar) exprString(b *strings.Builder)   { suffixExpr(b, e.Item, "*") }
func (e EPlus) exprString(b *strings.Builder)   { suffixExpr(b, e.Item, "+") }
func (e EOpt) exprString(b *strings.Builder)    { suffixExpr(b, e.Item, "?") }

func joinExpr(b *strings.Builder, items []Expr, sep string) {
	b.WriteByte('(')
	for i, it := range items {
		if i > 0 {
			b.WriteString(sep)
		}
		it.exprString(b)
	}
	b.WriteByte(')')
}

func suffixExpr(b *strings.Builder, item Expr, op string) {
	b.WriteByte('(')
	item.exprString(b)
	b.WriteByte(')')
	b.WriteString(op)
}

// ExprString renders a general content model in DTD syntax.
func ExprString(e Expr) string {
	var b strings.Builder
	e.exprString(&b)
	return b.String()
}

// GeneralDTD is a DTD whose productions are arbitrary content models. It
// is the parse result of real DTD files, before normalization.
type GeneralDTD struct {
	Root  string
	Types []string
	Prods map[string]Expr
}

// Normalize converts the general DTD to the paper's normal form,
// introducing fresh element types named "<owner>.<n>" for nested
// subexpressions. e? becomes a disjunction with a fresh ε type, e+
// becomes (e', e'*). The conversion runs in time linear in the size of
// the content models and preserves the document trees up to the
// inserted wrapper elements (a fresh type wraps its subexpression's
// content, so an original document maps into the normalized schema by a
// deterministic insertion of wrapper elements; all algorithms in this
// module operate directly on normal-form schemas).
func (g *GeneralDTD) Normalize() (*DTD, error) {
	n := &normalizer{
		g:     g,
		out:   &DTD{Root: g.Root, Prods: make(map[string]Production)},
		fresh: make(map[string]int),
	}
	for _, a := range g.Types {
		e, ok := g.Prods[a]
		if !ok {
			return nil, fmt.Errorf("dtd: type %q listed but not defined", a)
		}
		p, err := n.top(a, e)
		if err != nil {
			return nil, fmt.Errorf("dtd: normalizing %q: %w", a, err)
		}
		n.define(a, p)
	}
	// Fresh types are appended as they are created, after their owners.
	if err := n.out.Check(); err != nil {
		return nil, err
	}
	return n.out, nil
}

type normalizer struct {
	g     *GeneralDTD
	out   *DTD
	fresh map[string]int
}

func (n *normalizer) define(name string, p Production) {
	if _, dup := n.out.Prods[name]; dup {
		return
	}
	n.out.Types = append(n.out.Types, name)
	n.out.Prods[name] = p
}

// freshType creates a new element type owned by owner, defined by p, and
// returns its name.
func (n *normalizer) freshType(owner string, p Production) string {
	for {
		n.fresh[owner]++
		name := fmt.Sprintf("%s.%d", owner, n.fresh[owner])
		if _, exists := n.g.Prods[name]; exists {
			continue
		}
		if _, exists := n.out.Prods[name]; exists {
			continue
		}
		n.define(name, p)
		return name
	}
}

// top converts a whole content model into a normal-form production.
func (n *normalizer) top(owner string, e Expr) (Production, error) {
	switch e := e.(type) {
	case EPCDATA:
		return Str(), nil
	case EEmpty:
		return Empty(), nil
	case EName:
		return Concat(e.Name), nil
	case ESeq:
		// e+ items inline as (e', e'*) directly in the parent
		// concatenation, avoiding a wrapper type.
		var children []string
		for _, it := range e.Items {
			if plus, ok := it.(EPlus); ok {
				c, err := n.name(owner, plus.Item)
				if err != nil {
					return Production{}, err
				}
				children = append(children, c, n.freshType(owner, Star(c)))
				continue
			}
			c, err := n.name(owner, it)
			if err != nil {
				return Production{}, err
			}
			children = append(children, c)
		}
		return Concat(children...), nil
	case EChoice:
		children, err := n.nameList(owner, e.Items)
		if err != nil {
			return Production{}, err
		}
		children, err = dedupeDisjuncts(owner, children, n)
		if err != nil {
			return Production{}, err
		}
		if len(children) == 1 {
			return Concat(children[0]), nil
		}
		return Disj(children...), nil
	case EStar:
		// Mixed content (#PCDATA | a | ...)* parses as EStar(EChoice(...)).
		c, err := n.name(owner, e.Item)
		if err != nil {
			return Production{}, err
		}
		return Star(c), nil
	case EPlus:
		c, err := n.name(owner, e.Item)
		if err != nil {
			return Production{}, err
		}
		star := n.freshType(owner, Star(c))
		return Concat(c, star), nil
	case EOpt:
		c, err := n.name(owner, e.Item)
		if err != nil {
			return Production{}, err
		}
		eps := n.freshType(owner, Empty())
		if c == eps {
			return Concat(eps), nil
		}
		return Disj(c, eps), nil
	}
	return Production{}, fmt.Errorf("unsupported content model %T", e)
}

// name converts a subexpression into a single element type name,
// introducing a fresh wrapper type when the subexpression is not already
// a name.
func (n *normalizer) name(owner string, e Expr) (string, error) {
	if name, ok := e.(EName); ok {
		return name.Name, nil
	}
	if _, ok := e.(EPCDATA); ok {
		// A nested #PCDATA (mixed content) becomes a fresh str type.
		return n.freshType(owner, Str()), nil
	}
	p, err := n.top(owner, e)
	if err != nil {
		return "", err
	}
	return n.freshType(owner, p), nil
}

func (n *normalizer) nameList(owner string, items []Expr) ([]string, error) {
	names := make([]string, 0, len(items))
	for _, it := range items {
		c, err := n.name(owner, it)
		if err != nil {
			return nil, err
		}
		names = append(names, c)
	}
	return names, nil
}

// dedupeDisjuncts enforces the paper's w.l.o.g. assumption that the Bi
// in a disjunction are distinct, wrapping repeated disjuncts in fresh
// types.
func dedupeDisjuncts(owner string, children []string, n *normalizer) ([]string, error) {
	seen := make(map[string]bool, len(children))
	out := make([]string, 0, len(children))
	for _, c := range children {
		if seen[c] {
			c = n.freshType(owner, Concat(c))
		}
		seen[c] = true
		out = append(out, c)
	}
	return out, nil
}
