package embedding

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dtd"
	"repro/internal/xpath"
)

// Marshal renders the embedding in a line-oriented text format suitable
// for storage and for the command-line tools:
//
//	# comment
//	type <source-type> -> <target-type>
//	path <parent>/<child>[#occ] -> <X_R path>
//	path <parent>/#str -> <X_R path>
//
// Unmarshal parses it back given the two schemas.
func (e *Embedding) Marshal() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# schema embedding: %s -> %s\n", e.Source.Root, e.Target.Root)
	types := append([]string(nil), e.Source.Types...)
	sort.Strings(types)
	for _, a := range types {
		fmt.Fprintf(&b, "type %s -> %s\n", a, e.Lambda[a])
	}
	refs := SourceEdges(e.Source)
	for _, ref := range refs {
		p, ok := e.Paths[ref]
		if !ok {
			continue
		}
		if ref.Occ > 1 {
			fmt.Fprintf(&b, "path %s/%s#%d -> %s\n", ref.Parent, ref.Child, ref.Occ, p)
		} else {
			fmt.Fprintf(&b, "path %s/%s -> %s\n", ref.Parent, ref.Child, p)
		}
	}
	return b.String()
}

// Unmarshal parses the Marshal format against the given schemas. The
// result is not validated; call Validate.
func Unmarshal(src string, source, target *dtd.DTD) (*Embedding, error) {
	e := New(source, target)
	for lineNo, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.SplitN(line, "->", 2)
		if len(fields) != 2 {
			return nil, fmt.Errorf("embedding: line %d: missing '->'", lineNo+1)
		}
		lhs := strings.TrimSpace(fields[0])
		rhs := strings.TrimSpace(fields[1])
		switch {
		case strings.HasPrefix(lhs, "type "):
			a := strings.TrimSpace(strings.TrimPrefix(lhs, "type "))
			e.MapType(a, rhs)
		case strings.HasPrefix(lhs, "path "):
			edge := strings.TrimSpace(strings.TrimPrefix(lhs, "path "))
			ref, err := parseEdgeRef(edge)
			if err != nil {
				return nil, fmt.Errorf("embedding: line %d: %w", lineNo+1, err)
			}
			p, err := xpath.ParsePath(rhs)
			if err != nil {
				return nil, fmt.Errorf("embedding: line %d: %w", lineNo+1, err)
			}
			e.Paths[ref] = p
		default:
			return nil, fmt.Errorf("embedding: line %d: expected 'type' or 'path', got %q", lineNo+1, lhs)
		}
	}
	return e, nil
}

func parseEdgeRef(s string) (EdgeRef, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return EdgeRef{}, fmt.Errorf("edge %q lacks '/'", s)
	}
	parent := s[:slash]
	child := s[slash+1:]
	occ := 1
	if hash := strings.IndexByte(child, '#'); hash >= 0 && child != StrChild {
		if _, err := fmt.Sscanf(child[hash+1:], "%d", &occ); err != nil || occ < 1 {
			return EdgeRef{}, fmt.Errorf("bad occurrence in edge %q", s)
		}
		child = child[:hash]
	}
	if parent == "" || child == "" {
		return EdgeRef{}, fmt.Errorf("malformed edge %q", s)
	}
	return EdgeRef{Parent: parent, Child: child, Occ: occ}, nil
}
