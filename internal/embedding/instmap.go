package embedding

import (
	"context"
	"fmt"

	"repro/internal/dtd"
	"repro/internal/guard"
	"repro/internal/xmltree"
)

// Result is the outcome of applying the instance-level mapping σd to a
// source document (algorithm InstMap, §4.2 / Figure 5).
type Result struct {
	// Tree is the target document σd(T); it conforms to the target
	// schema (Theorem 4.1).
	Tree *xmltree.Tree
	// IDM is the node id mapping idM: it maps ids of target nodes back
	// to the ids of the source nodes they were copied from. Nodes added
	// as minimum default instances are not in its domain.
	IDM map[xmltree.NodeID]xmltree.NodeID
	// Fwd maps source node ids to the target nodes they were copied to
	// (the inverse of IDM; σd is injective, Theorem 4.1).
	Fwd map[xmltree.NodeID]xmltree.NodeID
	// Default marks target node ids that belong to minimum default
	// fills rather than mapped source data.
	Default map[xmltree.NodeID]bool
}

// Apply computes σd(src): the instance-level mapping derived from the
// embedding, built top-down by replacing each hot node with the
// production fragment of its source node (InstMap). The source document
// must conform to the source schema; the produced document is
// guaranteed to conform to the target schema.
func (e *Embedding) Apply(src *xmltree.Tree) (*Result, error) {
	return e.ApplyCtx(context.Background(), src)
}

// ApplyCtx is Apply under a context: cancellation is observed once
// per source node during the top-down build and surfaces as a
// *guard.CancelError matching the context's error under errors.Is.
// Batch migration (internal/pipeline) uses this to abandon in-flight
// documents promptly when a run is cut short.
func (e *Embedding) ApplyCtx(ctx context.Context, src *xmltree.Tree) (*Result, error) {
	if err := e.ensureResolved(); err != nil {
		return nil, err
	}
	if err := e.checkPrefixFreedom(); err != nil {
		return nil, err
	}
	if err := src.Validate(e.Source); err != nil {
		return nil, fmt.Errorf("embedding: source document does not conform to the source schema: %w", err)
	}
	md, err := MinDef(e.Target)
	if err != nil {
		return nil, err
	}
	m := &mapper{
		e:   e,
		ctx: ctx,
		t:   &xmltree.Tree{},
		md:  md,
		res: &Result{
			IDM:     make(map[xmltree.NodeID]xmltree.NodeID),
			Fwd:     make(map[xmltree.NodeID]xmltree.NodeID),
			Default: make(map[xmltree.NodeID]bool),
		},
		meta: make(map[*xmltree.Node]nodeMeta),
	}
	root, err := m.build(src.Root)
	if err != nil {
		return nil, err
	}
	m.t.Root = root
	m.res.Tree = m.t
	return m.res, nil
}

type nodeMeta struct {
	slot slotKey
	// complete marks subtrees produced by a recursive build (former hot
	// leaves) or instantiated defaults; fill does not descend into them.
	complete bool
}

type mapper struct {
	e    *Embedding
	ctx  context.Context
	t    *xmltree.Tree
	md   MinDefs
	res  *Result
	meta map[*xmltree.Node]nodeMeta
}

func (m *mapper) copyOf(src *xmltree.Node, label string) *xmltree.Node {
	n := m.t.NewElement(label)
	m.res.IDM[n.ID] = src.ID
	m.res.Fwd[src.ID] = n.ID
	return n
}

// build constructs the production fragment pfrag of source node v with
// the hot leaves already replaced by the recursively built fragments of
// v's children, then completes it with default fills.
func (m *mapper) build(v *xmltree.Node) (*xmltree.Node, error) {
	if err := guard.CheckCtx(m.ctx, "embedding: instmap"); err != nil {
		return nil, err
	}
	a := v.Label
	prod, ok := m.e.Source.Prods[a]
	if !ok {
		return nil, fmt.Errorf("embedding: source element %q not in schema", a)
	}
	rt := m.copyOf(v, m.e.Lambda[a])

	switch prod.Kind {
	case dtd.KindStr:
		steps := m.e.resolved[EdgeRef{Parent: a, Child: StrChild, Occ: 1}]
		end, err := m.insertSteps(rt, steps)
		if err != nil {
			return nil, err
		}
		srcText := v.Children[0]
		txt := m.t.NewText(srcText.Text)
		m.res.IDM[txt.ID] = srcText.ID
		m.res.Fwd[srcText.ID] = txt.ID
		xmltree.Append(end, txt)

	case dtd.KindEmpty:
		// Nothing mapped; fill completes the target-required content.

	case dtd.KindConcat, dtd.KindDisj:
		occ := make(map[string]int, len(v.Children))
		for _, c := range v.Children {
			occ[c.Label]++
			ref := EdgeRef{Parent: a, Child: c.Label, Occ: occ[c.Label]}
			steps, ok := m.e.resolved[ref]
			if !ok {
				return nil, fmt.Errorf("embedding: no resolved path for edge %s", ref)
			}
			if err := m.insertChild(rt, steps, c); err != nil {
				return nil, err
			}
		}

	case dtd.KindStar:
		ref := EdgeRef{Parent: a, Child: prod.Children[0], Occ: 1}
		steps := m.e.resolved[ref]
		it := iteratorIndex(steps)
		prefixEnd, err := m.insertSteps(rt, steps[:it])
		if err != nil {
			return nil, err
		}
		for j, c := range v.Children {
			iterSlot := slotKey{label: steps[it].label, occ: j + 1}
			if it == len(steps)-1 {
				sub, err := m.build(c)
				if err != nil {
					return nil, err
				}
				m.meta[sub] = nodeMeta{slot: iterSlot, complete: true}
				xmltree.Append(prefixEnd, sub)
				continue
			}
			iterNode := m.t.NewElement(steps[it].label)
			m.meta[iterNode] = nodeMeta{slot: iterSlot}
			xmltree.Append(prefixEnd, iterNode)
			if err := m.insertChild(iterNode, steps[it+1:], c); err != nil {
				return nil, err
			}
		}
	}
	if err := m.fill(rt); err != nil {
		return nil, err
	}
	return rt, nil
}

func iteratorIndex(steps []resolvedStep) int {
	for i, s := range steps {
		if s.occ == 0 {
			return i
		}
	}
	// Validation guarantees an iterator exists for star paths.
	return len(steps) - 1
}

// insertChild walks all but the last step (merging with already-present
// fragment nodes) and attaches the recursively built fragment of c at
// the final slot.
func (m *mapper) insertChild(base *xmltree.Node, steps []resolvedStep, c *xmltree.Node) error {
	end, err := m.insertSteps(base, steps[:len(steps)-1])
	if err != nil {
		return err
	}
	sub, err := m.build(c)
	if err != nil {
		return err
	}
	m.meta[sub] = nodeMeta{slot: steps[len(steps)-1].slot(), complete: true}
	xmltree.Append(end, sub)
	return nil
}

// insertSteps walks the steps from base, reusing fragment nodes whose
// slot sequences coincide (the longest-matching-prefix rule of the
// production fragment construction) and creating the rest.
func (m *mapper) insertSteps(base *xmltree.Node, steps []resolvedStep) (*xmltree.Node, error) {
	cur := base
	for _, s := range steps {
		key := s.slot()
		var found *xmltree.Node
		for _, ch := range cur.Children {
			if m.meta[ch].slot == key && ch.Label == key.label {
				found = ch
				break
			}
		}
		if found != nil {
			if m.meta[found].complete {
				return nil, fmt.Errorf("embedding: path routes through a completed fragment at %q; prefix-free condition violated", key.label)
			}
			cur = found
			continue
		}
		n := m.t.NewElement(s.label)
		m.meta[n] = nodeMeta{slot: key}
		xmltree.Append(cur, n)
		cur = n
	}
	return cur, nil
}

// fill completes a fragment bottom-up: every non-complete node receives
// the children its target production requires, using minimum default
// instances for the missing ones, and children are sorted into
// production order (the pos order of §4.2).
func (m *mapper) fill(u *xmltree.Node) error {
	if m.meta[u].complete {
		return nil
	}
	prod, ok := m.e.Target.Prods[u.Label]
	if !ok {
		return fmt.Errorf("embedding: target element %q not in schema", u.Label)
	}
	switch prod.Kind {
	case dtd.KindStr:
		switch {
		case len(u.Children) == 0:
			xmltree.Append(u, m.defaultTextNode())
		case len(u.Children) == 1 && u.Children[0].IsText():
			// The str path already placed the text.
		default:
			return fmt.Errorf("embedding: str-typed target %q acquired element children", u.Label)
		}
		return nil

	case dtd.KindEmpty:
		if len(u.Children) != 0 {
			return fmt.Errorf("embedding: ε-typed target %q acquired children", u.Label)
		}
		return nil

	case dtd.KindConcat:
		byIdx := make(map[int]*xmltree.Node, len(u.Children))
		for _, ch := range u.Children {
			key := m.meta[ch].slot
			idx := prod.ChildIndex(key.label, key.occ)
			if idx < 0 {
				return fmt.Errorf("embedding: fragment child %q#%d does not fit production of %q", key.label, key.occ, u.Label)
			}
			if byIdx[idx] != nil {
				return fmt.Errorf("embedding: two fragment children occupy slot %d of %q", idx, u.Label)
			}
			byIdx[idx] = ch
		}
		ordered := make([]*xmltree.Node, 0, len(prod.Children))
		for i, want := range prod.Children {
			ch := byIdx[i]
			if ch == nil {
				var err error
				ch, err = m.instantiateDefault(want)
				if err != nil {
					return err
				}
			}
			ch.Parent = u
			ordered = append(ordered, ch)
		}
		u.Children = ordered

	case dtd.KindDisj:
		switch len(u.Children) {
		case 0:
			def, err := m.instantiateDefault(u.Label)
			if err != nil {
				return err
			}
			// Adopt the default's single disjunct child; the wrapper
			// node is discarded.
			child := def.Children[0]
			child.Parent = u
			u.Children = []*xmltree.Node{child}
			m.meta[child] = nodeMeta{slot: slotKey{label: child.Label, occ: 1}, complete: true}
			delete(m.res.Default, def.ID)
		case 1:
			// The OR path placed the disjunct.
		default:
			return fmt.Errorf("embedding: disjunction target %q acquired %d children; conflicting paths", u.Label, len(u.Children))
		}

	case dtd.KindStar:
		byOcc := make(map[int]*xmltree.Node, len(u.Children))
		max := 0
		for _, ch := range u.Children {
			key := m.meta[ch].slot
			if key.label != prod.Children[0] {
				return fmt.Errorf("embedding: star target %q acquired child %q, want %q", u.Label, key.label, prod.Children[0])
			}
			if byOcc[key.occ] != nil {
				return fmt.Errorf("embedding: two fragment children occupy position %d under %q", key.occ, u.Label)
			}
			byOcc[key.occ] = ch
			if key.occ > max {
				max = key.occ
			}
		}
		ordered := make([]*xmltree.Node, 0, max)
		for i := 1; i <= max; i++ {
			ch := byOcc[i]
			if ch == nil {
				var err error
				ch, err = m.instantiateDefault(prod.Children[0])
				if err != nil {
					return err
				}
			}
			ch.Parent = u
			ordered = append(ordered, ch)
		}
		u.Children = ordered
	}
	for _, ch := range u.Children {
		if err := m.fill(ch); err != nil {
			return err
		}
	}
	return nil
}

func (m *mapper) defaultTextNode() *xmltree.Node {
	txt := m.t.NewText(DefaultText)
	m.res.Default[txt.ID] = true
	return txt
}

// instantiateDefault materializes mindef(label), marking the whole
// subtree as default content and as complete for fill.
func (m *mapper) instantiateDefault(label string) (*xmltree.Node, error) {
	n, err := m.md.Instantiate(m.t, label)
	if err != nil {
		return nil, err
	}
	walkMark(n, m.res.Default)
	m.meta[n] = nodeMeta{complete: true}
	return n, nil
}

func walkMark(n *xmltree.Node, set map[xmltree.NodeID]bool) {
	set[n.ID] = true
	for _, c := range n.Children {
		walkMark(c, set)
	}
}
