package embedding_test

import (
	"testing"

	"repro/internal/workload"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// TestAuctionEmbedding runs the second large worked embedding
// (auction → marketplace, ~36 source types) through the full gauntlet:
// validity, σd/σd⁻¹ round trips directly and via XSLT, and query
// preservation over random documents.
func TestAuctionEmbedding(t *testing.T) {
	roundTripAll(t, workload.AuctionEmbedding(), 30)
}

// TestAuctionEmbeddingSharedTypes: the shared description disjunction
// and the shared date leaf map consistently from both their contexts.
func TestAuctionEmbeddingSharedTypes(t *testing.T) {
	emb := workload.AuctionEmbedding()
	doc, err := xmltree.ParseString(`
<site>
  <regions>
    <africa>
      <item>
        <itemname>mask</itemname><location>Accra</location><quantity>1</quantity>
        <description><parlist><listitem>carved</listitem><listitem>wood</listitem></parlist></description>
      </item>
    </africa>
    <asia/><europe/>
  </regions>
  <categories>
    <category><catname>art</catname><description><text>artworks</text></description></category>
  </categories>
  <people>
    <person><personname>Ada</personname><emailaddress>ada@x</emailaddress>
      <profile><interest><category_ref>art</category_ref></interest>
        <education>PhD</education><income>9</income></profile>
    </person>
  </people>
  <open_auctions>
    <open_auction><initial>10</initial>
      <bidder><bid><date>2026-01-01</date><increase>5</increase></bid></bidder>
      <current>15</current><itemref>mask</itemref>
    </open_auction>
  </open_auctions>
  <closed_auctions>
    <closed_auction><seller>Ada</seller><buyer>Bob</buyer><price>20</price><date>2026-02-02</date></closed_auction>
  </closed_auctions>
</site>`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := emb.Apply(doc)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := res.Tree.Validate(emb.Target); err != nil {
		t.Fatalf("conformance: %v", err)
	}
	// description under item became product/blurb/structured; under
	// category it became blurb/plain.
	pts := xpath.Strings(xpath.Eval(xpath.MustParse(
		"catalog/sections/zoneAfrica/listing/product/blurb/structured/point/text()"), res.Tree.Root))
	if len(pts) != 2 || pts[0] != "carved" {
		t.Errorf("structured description = %v", pts)
	}
	cat := xpath.Strings(xpath.Eval(xpath.MustParse(
		"catalog/taxonomy/topic/blurb/plain/text()"), res.Tree.Root))
	if len(cat) != 1 || cat[0] != "artworks" {
		t.Errorf("category description = %v", cat)
	}
	// The shared date type landed under both offer and deal.
	when := xpath.Strings(xpath.Eval(xpath.MustParse(".//when/text()"), res.Tree.Root))
	if len(when) != 2 {
		t.Errorf("shared date images = %v", when)
	}
	back, err := emb.Invert(res.Tree)
	if err != nil {
		t.Fatalf("Invert: %v", err)
	}
	if !xmltree.Equal(doc, back) {
		t.Errorf("round trip: %s", xmltree.Diff(doc, back))
	}
}
