package embedding_test

import (
	"strings"
	"testing"

	"repro/internal/embedding"
	"repro/internal/workload"
)

func TestEmbeddingString(t *testing.T) {
	s := workload.ClassEmbedding().String()
	for _, want := range []string{
		"λ(db) = school",
		"path(db, class) = courses/current/course",
		"path(cno, #str) = text()",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() lacks %q", want)
		}
	}
}

func TestPathSize(t *testing.T) {
	e := workload.StudentEmbedding()
	// students/student(2) + ssn + name + taking + cno + 3 text() = 9.
	if got := e.PathSize(); got != 9 {
		t.Errorf("PathSize = %d, want 9", got)
	}
}

func TestSimMatrixHelpers(t *testing.T) {
	m := embedding.NewSimMatrix()
	m.Set("a", "x", 0.5)
	m.Set("a", "y", 0.9)
	m.Set("a", "z", 2.0)  // clamped to 1
	m.Set("b", "x", -0.5) // clamped to 0 = deleted
	if got := m.Candidates("a"); len(got) != 3 || got[0] != "z" || got[1] != "y" {
		t.Errorf("Candidates = %v, want score-descending [z y x]", got)
	}
	if m.Pairs() != 3 {
		t.Errorf("Pairs = %d", m.Pairs())
	}
	if !strings.Contains(m.String(), "3 pairs") {
		t.Errorf("String = %q", m.String())
	}
	var nilM *embedding.SimMatrix
	if nilM.Get("a", "b") != 1 {
		t.Error("nil matrix must be unrestricted")
	}
	m.Set("a", "z", 0)
	if m.Pairs() != 2 {
		t.Error("Set(0) should delete the pair")
	}
}

// TestCandidatesNoAliasing: Candidates guarantees a freshly allocated
// slice per call — callers (the search shuffles candidate orders in
// place) must never corrupt the matrix or each other through a shared
// backing array.
func TestCandidatesNoAliasing(t *testing.T) {
	m := embedding.NewSimMatrix()
	m.Set("a", "x", 0.5)
	m.Set("a", "y", 0.9)
	m.Set("a", "z", 0.7)
	first := m.Candidates("a")
	want := append([]string(nil), first...)
	// Clobber the returned slice; a second call must be unaffected.
	for i := range first {
		first[i] = "CLOBBERED"
	}
	second := m.Candidates("a")
	if len(second) != len(want) {
		t.Fatalf("Candidates = %v, want %v", second, want)
	}
	for i := range want {
		if second[i] != want[i] {
			t.Fatalf("Candidates aliased a previously returned slice: %v, want %v", second, want)
		}
	}

	// AllCandidates groups the whole matrix with the same ordering as
	// per-type Candidates calls.
	m.Set("b", "w", 0.3)
	all := m.AllCandidates()
	if len(all) != 2 {
		t.Fatalf("AllCandidates groups = %d, want 2", len(all))
	}
	for i, c := range all["a"] {
		if c != want[i] {
			t.Fatalf("AllCandidates[a] = %v, want %v", all["a"], want)
		}
	}
	if len(all["b"]) != 1 || all["b"][0] != "w" {
		t.Fatalf("AllCandidates[b] = %v", all["b"])
	}
	var nilM *embedding.SimMatrix
	if len(nilM.AllCandidates()) != 0 {
		t.Error("nil matrix AllCandidates must be empty")
	}
}

func TestMinDefDepth(t *testing.T) {
	md, err := embedding.MinDef(workload.SchoolDTD())
	if err != nil {
		t.Fatal(err)
	}
	if d := md.Depth("prereq"); d != 1 {
		t.Errorf("Depth(prereq) = %d, want 1", d)
	}
	if d := md.Depth("cno"); d != 2 {
		t.Errorf("Depth(cno) = %d, want 2 (element + text)", d)
	}
	if d := md.Depth("student"); d != 3 {
		t.Errorf("Depth(student) = %d, want 3", d)
	}
	if d := md.Depth("nosuch"); d != 0 {
		t.Errorf("Depth(nosuch) = %d, want 0", d)
	}
}

func TestEdgeRefString(t *testing.T) {
	if s := embedding.Ref("a", "b").String(); s != "(a, b)" {
		t.Errorf("Ref.String = %q", s)
	}
	r := embedding.EdgeRef{Parent: "a", Child: "b", Occ: 3}
	if r.String() != "(a, b#3)" {
		t.Errorf("occ String = %q", r.String())
	}
}
