package embedding_test

import (
	"strings"
	"testing"

	"repro/internal/embedding"
	"repro/internal/workload"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		emb  *embedding.Embedding
	}{
		{"sigma1", workload.ClassEmbedding()},
		{"sigma2", workload.StudentEmbedding()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			text := tc.emb.Marshal()
			back, err := embedding.Unmarshal(text, tc.emb.Source, tc.emb.Target)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if err := back.Validate(nil); err != nil {
				t.Fatalf("round-tripped embedding invalid: %v", err)
			}
			for a, b := range tc.emb.Lambda {
				if back.Lambda[a] != b {
					t.Errorf("λ(%s) = %q, want %q", a, back.Lambda[a], b)
				}
			}
			for ref, p := range tc.emb.Paths {
				if !back.Paths[ref].Equal(p) {
					t.Errorf("path%s = %q, want %q", ref, back.Paths[ref], p)
				}
			}
		})
	}
}

func TestMarshalOccurrences(t *testing.T) {
	// A repeated concat child marshals with its occurrence tag.
	var scen workload.Fig3Scenario
	for _, sc := range workload.Figure3() {
		if strings.HasPrefix(sc.Name, "c-") {
			scen = sc
		}
	}
	// Source A -> (B, C) maps both to B1 with positions; build a variant
	// with a genuinely repeated source child instead.
	emb := scen.Build()
	text := emb.Marshal()
	back, err := embedding.Unmarshal(text, emb.Source, emb.Target)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(nil); err != nil {
		t.Errorf("Fig3(c) round trip invalid: %v", err)
	}
	if !strings.Contains(text, "position() = 2") {
		t.Errorf("marshal lost position qualifiers:\n%s", text)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	emb := workload.StudentEmbedding()
	cases := []struct {
		name, text, want string
	}{
		{"missing arrow", "type db school", "missing '->'"},
		{"bad directive", "frob db -> school", "expected 'type' or 'path'"},
		{"bad edge", "path dbclass -> x", "lacks '/'"},
		{"bad occurrence", "path db/class#zero -> x", "bad occurrence"},
		{"bad path", "path db/class -> //", "empty step"},
		{"empty parent", "path /class -> x", "malformed edge"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := embedding.Unmarshal(tc.text, emb.Source, emb.Target)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Unmarshal(%q) = %v, want substring %q", tc.text, err, tc.want)
			}
		})
	}
	// Comments and blank lines are fine.
	if _, err := embedding.Unmarshal("# a comment\n\n", emb.Source, emb.Target); err != nil {
		t.Errorf("comments/blank lines rejected: %v", err)
	}
}
