package embedding

import (
	"fmt"

	"repro/internal/dtd"
	"repro/internal/xmltree"
)

// MergeSources builds the single source DTD S' of §4.5 from multiple
// source schemas with pairwise-disjoint element type sets: a fresh root
// whose production concatenates the source roots, each keeping its own
// definitions. An embedding of S' into a target decomposes into
// embeddings of the individual sources.
func MergeSources(rootName string, sources ...*dtd.DTD) (*dtd.DTD, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("embedding: MergeSources needs at least one source")
	}
	seen := map[string]string{}
	var defs []dtd.Def
	var rootKids []string
	for i, s := range sources {
		for _, a := range s.Types {
			if prev, dup := seen[a]; dup {
				return nil, fmt.Errorf("embedding: type %q defined by both source %s and source %d; disjoint type sets required (use specialized DTDs otherwise)", a, prev, i+1)
			}
			seen[a] = fmt.Sprintf("%d", i+1)
			defs = append(defs, dtd.D(a, s.Prods[a]))
		}
		rootKids = append(rootKids, s.Root)
	}
	if _, dup := seen[rootName]; dup || rootName == "" {
		return nil, fmt.Errorf("embedding: merged root name %q collides with a source type", rootName)
	}
	defs = append([]dtd.Def{dtd.D(rootName, dtd.Concat(rootKids...))}, defs...)
	return dtd.New(rootName, defs...)
}

// MultiApply integrates one document per source into a single target
// document (Example 4.9: a class document and a student document become
// one school instance). Each σi must target the same schema; the
// documents are mapped independently by InstMap and the results are
// superimposed, preferring mapped content over minimum-default fills.
// Sources whose mapped content collides on the same target region
// (both non-default, structurally different) are rejected.
//
// The combined node id mapping keeps every source's nodes recoverable:
// IDM maps target ids to (source index, source id) pairs.
func MultiApply(embs []*Embedding, docs []*xmltree.Tree) (*MultiResult, error) {
	if len(embs) == 0 || len(embs) != len(docs) {
		return nil, fmt.Errorf("embedding: MultiApply needs one document per embedding")
	}
	target := embs[0].Target
	for i, e := range embs[1:] {
		if !e.Target.Equal(target) {
			return nil, fmt.Errorf("embedding: embedding %d targets a different schema", i+2)
		}
	}
	results := make([]*Result, len(embs))
	for i, e := range embs {
		r, err := e.Apply(docs[i])
		if err != nil {
			return nil, fmt.Errorf("embedding: source %d: %w", i+1, err)
		}
		results[i] = r
	}
	mr := &MultiResult{IDM: map[xmltree.NodeID]SourceNode{}}
	merged := results[0]
	out := &xmltree.Tree{}
	// Rebuild into a fresh tree so ids are dense; record provenance.
	root, err := mergeTrees(out, mr, results, merged.Tree.Root, collectAt(results, 0))
	if err != nil {
		return nil, err
	}
	out.Root = root
	mr.Tree = out
	if err := out.Validate(target); err != nil {
		return nil, fmt.Errorf("embedding: merged document does not conform: %w", err)
	}
	return mr, nil
}

// MultiResult is the outcome of MultiApply.
type MultiResult struct {
	Tree *xmltree.Tree
	// IDM maps merged-tree node ids back to their originating source
	// document and node.
	IDM map[xmltree.NodeID]SourceNode
}

// SourceNode locates a node in one of the integrated sources.
type SourceNode struct {
	Source int // 0-based index into the MultiApply arguments
	ID     xmltree.NodeID
}

// slotRef identifies corresponding nodes across the per-source mapped
// trees during the merge.
type slotRef struct {
	srcIdx int
	node   *xmltree.Node
}

func collectAt(results []*Result, _ int) []slotRef {
	refs := make([]slotRef, len(results))
	for i, r := range results {
		refs[i] = slotRef{srcIdx: i, node: r.Tree.Root}
	}
	return refs
}

// mergeTrees superimposes the corresponding nodes refs (all carrying
// the same label) from the per-source mapped trees.
func mergeTrees(out *xmltree.Tree, mr *MultiResult, results []*Result, proto *xmltree.Node, refs []slotRef) (*xmltree.Node, error) {
	label := refs[0].node.Label
	for _, r := range refs[1:] {
		if r.node.Label != label {
			return nil, fmt.Errorf("embedding: merge conflict: %q vs %q", label, r.node.Label)
		}
	}
	_ = proto
	// Real (non-default) owners of this region.
	var real []slotRef
	for _, r := range refs {
		if !results[r.srcIdx].Default[r.node.ID] {
			real = append(real, r)
		}
	}
	n := out.NewElement(label)
	// Provenance: every real owner's node maps here.
	for _, r := range real {
		if srcID, ok := results[r.srcIdx].IDM[r.node.ID]; ok {
			mr.IDM[n.ID] = SourceNode{Source: r.srcIdx, ID: srcID}
		}
	}
	owners := refs
	if len(real) > 0 {
		owners = real
	}

	// Text content: take the first real text.
	if txt, ok := textOf(owners[0].node); ok {
		for _, r := range owners[1:] {
			if t2, ok2 := textOf(r.node); !ok2 || t2 != txt {
				return nil, fmt.Errorf("embedding: merge conflict on text of %q", label)
			}
		}
		tn := out.NewText(txt)
		if srcID, ok := results[owners[0].srcIdx].IDM[textNode(owners[0].node).ID]; ok {
			mr.IDM[tn.ID] = SourceNode{Source: owners[0].srcIdx, ID: srcID}
		}
		xmltree.Append(n, tn)
		return n, nil
	}

	// Children: group corresponding children across owners. For
	// star-typed regions owned by several sources, children are
	// concatenated source by source; otherwise they are merged
	// positionally.
	if allSameChildShape(owners) {
		for i := range owners[0].node.Children {
			sub := make([]slotRef, len(owners))
			for j, r := range owners {
				sub[j] = slotRef{srcIdx: r.srcIdx, node: r.node.Children[i]}
			}
			c, err := mergeTrees(out, mr, results, nil, sub)
			if err != nil {
				return nil, err
			}
			xmltree.Append(n, c)
		}
		return n, nil
	}
	// Shapes differ: legal only when at most one owner has content
	// (others defaulted), or the region is star-like and children can
	// be concatenated.
	nonEmpty := owners[:0:0]
	for _, r := range owners {
		if len(r.node.Children) > 0 {
			nonEmpty = append(nonEmpty, r)
		}
	}
	if len(nonEmpty) == 1 {
		for _, ch := range nonEmpty[0].node.Children {
			c, err := mergeTrees(out, mr, results, nil, []slotRef{{srcIdx: nonEmpty[0].srcIdx, node: ch}})
			if err != nil {
				return nil, err
			}
			xmltree.Append(n, c)
		}
		return n, nil
	}
	// Concatenate children across owners (star regions).
	for _, r := range nonEmpty {
		for _, ch := range r.node.Children {
			c, err := mergeTrees(out, mr, results, nil, []slotRef{{srcIdx: r.srcIdx, node: ch}})
			if err != nil {
				return nil, err
			}
			xmltree.Append(n, c)
		}
	}
	return n, nil
}

func textOf(n *xmltree.Node) (string, bool) {
	return n.Value()
}

func textNode(n *xmltree.Node) *xmltree.Node {
	for _, c := range n.Children {
		if c.IsText() {
			return c
		}
	}
	return nil
}

// allSameChildShape reports whether every owner has the same child
// label sequence (so positional merging is well defined).
func allSameChildShape(owners []slotRef) bool {
	first := owners[0].node
	for _, r := range owners[1:] {
		if len(r.node.Children) != len(first.Children) {
			return false
		}
		for i, c := range r.node.Children {
			if c.Label != first.Children[i].Label || c.IsText() != first.Children[i].IsText() {
				return false
			}
		}
	}
	return true
}
