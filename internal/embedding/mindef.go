package embedding

import (
	"fmt"

	"repro/internal/dtd"
	"repro/internal/xmltree"
)

// DefaultText is the fixed string value #s carried by text nodes of
// minimum default instances (§4.2).
const DefaultText = "#s"

// MinDef computes the minimum default instances mindef(A) for every
// element type of a consistent DTD, following the rank-based procedure
// of §4.2 with the declaration order of d.Types as the fixed order on
// types:
//
//	(1) P(A) = str:  an A node with a text child carrying #s.
//	(2) P(A) = B*:   a single A node without children.
//	(3) P(A) = B1,...,Bn once all Bi have rank 0: an A node with
//	    children mindef(B1), ..., mindef(Bn).
//	(4) P(A) = B1+...+Bn once some Bi has rank 0: an A node whose only
//	    child is mindef(Bj) for the smallest such Bj in the fixed order.
//	(5) P(A) = ε:    an A node without children (a degenerate case of 3).
//
// The returned templates share subtrees; instantiate them with
// MinDefs.Instantiate, which deep-copies with fresh node ids.
func MinDef(d *dtd.DTD) (MinDefs, error) {
	order := make(map[string]int, len(d.Types))
	for i, a := range d.Types {
		order[a] = i
	}
	rank := make(map[string]int, len(d.Types)) // 1 until resolved
	tpl := make(map[string]*defTemplate, len(d.Types))
	for _, a := range d.Types {
		rank[a] = 1
	}
	// Base cases.
	for _, a := range d.Types {
		switch p := d.Prods[a]; p.Kind {
		case dtd.KindStr:
			tpl[a] = &defTemplate{label: a, text: true}
			rank[a] = 0
		case dtd.KindStar, dtd.KindEmpty:
			tpl[a] = &defTemplate{label: a}
			rank[a] = 0
		}
	}
	// Iterate until fixpoint.
	for changed := true; changed; {
		changed = false
		for _, a := range d.Types {
			if rank[a] == 0 {
				continue
			}
			p := d.Prods[a]
			switch p.Kind {
			case dtd.KindConcat:
				ready := true
				for _, c := range p.Children {
					if rank[c] != 0 {
						ready = false
						break
					}
				}
				if !ready {
					continue
				}
				t := &defTemplate{label: a}
				for _, c := range p.Children {
					t.children = append(t.children, tpl[c])
				}
				tpl[a] = t
				rank[a] = 0
				changed = true
			case dtd.KindDisj:
				best := ""
				for _, c := range p.Children {
					if rank[c] == 0 && (best == "" || order[c] < order[best]) {
						best = c
					}
				}
				if best == "" {
					continue
				}
				tpl[a] = &defTemplate{label: a, children: []*defTemplate{tpl[best]}}
				rank[a] = 0
				changed = true
			}
		}
	}
	for _, a := range d.Types {
		if rank[a] != 0 {
			return nil, fmt.Errorf("embedding: mindef undefined for useless type %q; the DTD is not consistent", a)
		}
	}
	return MinDefs(tpl), nil
}

// MinDefs maps element types to their minimum default instance
// templates.
type MinDefs map[string]*defTemplate

type defTemplate struct {
	label    string
	text     bool
	children []*defTemplate
}

// Instantiate materializes mindef(a) as a fresh subtree of t, with node
// ids allocated from t.
func (m MinDefs) Instantiate(t *xmltree.Tree, a string) (*xmltree.Node, error) {
	tpl, ok := m[a]
	if !ok {
		return nil, fmt.Errorf("embedding: no minimum default instance for type %q", a)
	}
	return instantiate(t, tpl), nil
}

func instantiate(t *xmltree.Tree, tpl *defTemplate) *xmltree.Node {
	n := t.NewElement(tpl.label)
	if tpl.text {
		xmltree.Append(n, t.NewText(DefaultText))
	}
	for _, c := range tpl.children {
		xmltree.Append(n, instantiate(t, c))
	}
	return n
}

// Depth returns the height of mindef(a) in nodes, for tests.
func (m MinDefs) Depth(a string) int {
	tpl, ok := m[a]
	if !ok {
		return 0
	}
	return tplDepth(tpl)
}

func tplDepth(t *defTemplate) int {
	d := 0
	for _, c := range t.children {
		if cd := tplDepth(c); cd > d {
			d = cd
		}
	}
	if t.text && d < 1 {
		d = 1
	}
	return d + 1
}
