package embedding

import (
	"context"
	"fmt"

	"repro/internal/dtd"
	"repro/internal/guard"
	"repro/internal/xmltree"
)

// Invert computes σd⁻¹(tgt): it reconstructs the unique source document
// T with σd(T) = tgt, expanding T top-down and recovering the children
// of each node from its source production and the embedded paths
// (Theorem 3.3's algorithm, specialized to embeddings; quadratic in
// |σd(T)| in the worst case, Theorem 4.3a). It fails when tgt is not in
// the image of σd.
func (e *Embedding) Invert(tgt *xmltree.Tree) (*xmltree.Tree, error) {
	return e.InvertCtx(context.Background(), tgt)
}

// InvertCtx is Invert under a context: cancellation is observed once
// per reconstructed source node and surfaces as a *guard.CancelError
// matching the context's error under errors.Is.
func (e *Embedding) InvertCtx(ctx context.Context, tgt *xmltree.Tree) (*xmltree.Tree, error) {
	if err := e.ensureResolved(); err != nil {
		return nil, err
	}
	if err := e.checkPrefixFreedom(); err != nil {
		return nil, err
	}
	if tgt.Root == nil {
		return nil, fmt.Errorf("embedding: empty target document")
	}
	if tgt.Root.Label != e.Target.Root {
		return nil, fmt.Errorf("embedding: target root is %q, want %q", tgt.Root.Label, e.Target.Root)
	}
	inv := &inverter{e: e, ctx: ctx, t: &xmltree.Tree{}}
	root, err := inv.reconstruct(tgt.Root, e.Source.Root)
	if err != nil {
		return nil, err
	}
	inv.t.Root = root
	return inv.t, nil
}

type inverter struct {
	e   *Embedding
	ctx context.Context
	t   *xmltree.Tree
}

// reconstruct recovers the source node of type a that was mapped to
// target node w.
func (inv *inverter) reconstruct(w *xmltree.Node, a string) (*xmltree.Node, error) {
	if err := guard.CheckCtx(inv.ctx, "embedding: invert"); err != nil {
		return nil, err
	}
	n := inv.t.NewElement(a)
	prod := inv.e.Source.Prods[a]
	switch prod.Kind {
	case dtd.KindStr:
		steps := inv.e.resolved[EdgeRef{Parent: a, Child: StrChild, Occ: 1}]
		end, err := navigate(w, steps)
		if err != nil {
			return nil, fmt.Errorf("embedding: invert %s: %w", a, err)
		}
		val, ok := end.Value()
		if !ok {
			return nil, fmt.Errorf("embedding: invert %s: target %q has no text", a, end.Label)
		}
		xmltree.Append(n, inv.t.NewText(val))

	case dtd.KindEmpty:

	case dtd.KindConcat:
		occ := make(map[string]int, len(prod.Children))
		for _, c := range prod.Children {
			occ[c]++
			ref := EdgeRef{Parent: a, Child: c, Occ: occ[c]}
			v, err := navigate(w, inv.e.resolved[ref])
			if err != nil {
				return nil, fmt.Errorf("embedding: invert edge %s: %w", ref, err)
			}
			sub, err := inv.reconstruct(v, c)
			if err != nil {
				return nil, err
			}
			xmltree.Append(n, sub)
		}

	case dtd.KindDisj:
		// Exactly one disjunct path is navigable: sibling paths diverge
		// at an OR edge, whose target node has a single child.
		var present string
		var at *xmltree.Node
		for _, c := range prod.Children {
			ref := EdgeRef{Parent: a, Child: c, Occ: 1}
			if v, err := navigate(w, inv.e.resolved[ref]); err == nil {
				if present != "" {
					return nil, fmt.Errorf("embedding: invert %s: both %q and %q paths present", a, present, c)
				}
				present, at = c, v
			}
		}
		if present == "" {
			return nil, fmt.Errorf("embedding: invert %s: no disjunct path present under %q", a, w.Label)
		}
		sub, err := inv.reconstruct(at, present)
		if err != nil {
			return nil, err
		}
		xmltree.Append(n, sub)

	case dtd.KindStar:
		ref := EdgeRef{Parent: a, Child: prod.Children[0], Occ: 1}
		steps := inv.e.resolved[ref]
		it := iteratorIndex(steps)
		prefixEnd, err := navigate(w, steps[:it])
		if err != nil {
			// The prefix exists whenever at least one child was mapped;
			// a missing prefix means zero children.
			return n, nil
		}
		iterLabel := steps[it].label
		for _, ch := range prefixEnd.Children {
			if ch.Label != iterLabel {
				return nil, fmt.Errorf("embedding: invert %s: unexpected %q under star node %q", a, ch.Label, prefixEnd.Label)
			}
			v, err := navigate(ch, steps[it+1:])
			if err != nil {
				return nil, fmt.Errorf("embedding: invert %s: broken star suffix: %w", a, err)
			}
			sub, err := inv.reconstruct(v, prod.Children[0])
			if err != nil {
				return nil, err
			}
			xmltree.Append(n, sub)
		}
	}
	return n, nil
}

// navigate follows resolved steps from cur: each step selects the
// occ-th same-label child. Iterator steps must not appear (callers
// split star paths around the iterator).
func navigate(cur *xmltree.Node, steps []resolvedStep) (*xmltree.Node, error) {
	for _, s := range steps {
		if s.occ == 0 {
			return nil, fmt.Errorf("internal: navigate across an iterator step %q", s.label)
		}
		var next *xmltree.Node
		seen := 0
		for _, ch := range cur.Children {
			if ch.Label == s.label {
				seen++
				if seen == s.occ {
					next = ch
					break
				}
			}
		}
		if next == nil {
			return nil, fmt.Errorf("no %s child #%d under %q", s.label, s.occ, cur.Label)
		}
		cur = next
	}
	return cur, nil
}
