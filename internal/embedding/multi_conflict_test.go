package embedding_test

import (
	"strings"
	"testing"

	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/xmltree"
)

// TestMultiApplyTextConflict: two sources claiming the same str region
// with different values must be rejected, not silently merged.
func TestMultiApplyTextConflict(t *testing.T) {
	src := dtd.MustNew("r", dtd.D("r", dtd.Concat("v")), dtd.D("v", dtd.Str()))
	tgt := dtd.MustNew("r1", dtd.D("r1", dtd.Concat("v1")), dtd.D("v1", dtd.Str()))
	mk := func() *embedding.Embedding {
		e := embedding.New(src, tgt)
		e.MapType("r", "r1").MapType("v", "v1")
		e.SetPath(embedding.Ref("r", "v"), "v1").
			SetPath(embedding.Ref("v", embedding.StrChild), "text()")
		return e
	}
	d1, _ := xmltree.ParseString(`<r><v>one</v></r>`)
	d2, _ := xmltree.ParseString(`<r><v>two</v></r>`)
	_, err := embedding.MultiApply(
		[]*embedding.Embedding{mk(), mk()},
		[]*xmltree.Tree{d1, d2},
	)
	if err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Errorf("conflicting text merge: %v", err)
	}
	// Identical values are fine.
	d3, _ := xmltree.ParseString(`<r><v>one</v></r>`)
	res, err := embedding.MultiApply(
		[]*embedding.Embedding{mk(), mk()},
		[]*xmltree.Tree{d1, d3},
	)
	if err != nil {
		t.Fatalf("agreeing sources rejected: %v", err)
	}
	if v, _ := res.Tree.Root.Children[0].Value(); v != "one" {
		t.Errorf("merged value = %q", v)
	}
}
