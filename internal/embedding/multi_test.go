package embedding_test

import (
	"testing"

	"repro/internal/embedding"
	"repro/internal/workload"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// TestMultiApplyIntegration reproduces Example 4.9: a class document
// (σ1) and a student document (σ2) integrate into a single school
// instance that conforms to the target schema and carries both sources'
// data.
func TestMultiApplyIntegration(t *testing.T) {
	classes, err := xmltree.ParseString(`
<db>
  <class><cno>CS331</cno><title>DB</title><type><project>p</project></type></class>
</db>`)
	if err != nil {
		t.Fatal(err)
	}
	students, err := xmltree.ParseString(`
<db>
  <student><ssn>1</ssn><name>Ann</name><taking><cno>CS331</cno></taking></student>
  <student><ssn>2</ssn><name>Bob</name><taking/></student>
</db>`)
	if err != nil {
		t.Fatal(err)
	}
	sigma1 := workload.ClassEmbedding()
	sigma2 := workload.StudentEmbedding()
	res, err := embedding.MultiApply(
		[]*embedding.Embedding{sigma1, sigma2},
		[]*xmltree.Tree{classes, students},
	)
	if err != nil {
		t.Fatalf("MultiApply: %v", err)
	}
	if err := res.Tree.Validate(sigma1.Target); err != nil {
		t.Fatalf("integrated document does not conform: %v\n%s", err, res.Tree)
	}
	// Both regions are populated.
	courses := xpath.Eval(xpath.MustParse("courses/current/course"), res.Tree.Root)
	if len(courses) != 1 {
		t.Errorf("integrated document has %d courses, want 1", len(courses))
	}
	studs := xpath.Eval(xpath.MustParse("students/student"), res.Tree.Root)
	if len(studs) != 2 {
		t.Errorf("integrated document has %d students, want 2", len(studs))
	}
	// Values survive.
	names := xpath.Strings(xpath.Eval(xpath.MustParse("students/student/name/text()"), res.Tree.Root))
	if len(names) != 2 || names[0] != "Ann" || names[1] != "Bob" {
		t.Errorf("student names = %v", names)
	}
	cno := xpath.Strings(xpath.Eval(xpath.MustParse("courses/current/course/basic/cno/text()"), res.Tree.Root))
	if len(cno) != 1 || cno[0] != "CS331" {
		t.Errorf("course numbers = %v", cno)
	}
	// Provenance: at least one node traces to each source.
	bySource := map[int]int{}
	for _, sn := range res.IDM {
		bySource[sn.Source]++
	}
	if bySource[0] == 0 || bySource[1] == 0 {
		t.Errorf("provenance map misses a source: %v", bySource)
	}
}

func TestMultiApplyArgErrors(t *testing.T) {
	sigma1 := workload.ClassEmbedding()
	doc, _ := xmltree.ParseString(`<db/>`)
	if _, err := embedding.MultiApply(nil, nil); err == nil {
		t.Error("empty MultiApply accepted")
	}
	if _, err := embedding.MultiApply([]*embedding.Embedding{sigma1}, nil); err == nil {
		t.Error("mismatched lengths accepted")
	}
	// Different targets are rejected.
	other := workload.Figure3()[2].Build()
	doc2, _ := xmltree.ParseString(`<A><B/><C/></A>`)
	if _, err := embedding.MultiApply(
		[]*embedding.Embedding{sigma1, other},
		[]*xmltree.Tree{doc, doc2},
	); err == nil {
		t.Error("mixed targets accepted")
	}
}

// TestMultiApplySingleSource degenerates to Apply.
func TestMultiApplySingleSource(t *testing.T) {
	sigma2 := workload.StudentEmbedding()
	doc, _ := xmltree.ParseString(`<db><student><ssn>7</ssn><name>Cy</name><taking/></student></db>`)
	multi, err := embedding.MultiApply([]*embedding.Embedding{sigma2}, []*xmltree.Tree{doc})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sigma2.Apply(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(multi.Tree, direct.Tree) {
		t.Errorf("single-source MultiApply differs from Apply: %s", xmltree.Diff(direct.Tree, multi.Tree))
	}
}
