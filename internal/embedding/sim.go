// Package embedding implements XML schema embeddings (Fan & Bohannon,
// §4): mappings σ = (λ, path) from a source DTD S1 to a target DTD S2
// where λ maps each source element type to a target type and path maps
// each source edge to an X_R path in the target, subject to the path
// type condition and the prefix-free condition. From a valid embedding
// the package derives the instance-level mapping σd (algorithm InstMap,
// §4.2) together with the node id mapping idM, and the inverse σd⁻¹
// (Theorems 3.3/4.3), guaranteeing type safety, injectivity and
// invertibility.
package embedding

import (
	"fmt"
	"sort"

	"repro/internal/dtd"
)

// SimMatrix is the similarity matrix att of §4.1: for a source type A
// and target type B, att(A, B) in [0,1] indicates the suitability of
// mapping A to B, as produced by a human expert or a schema-matching
// algorithm. Unset pairs have similarity 0. A type mapping λ is valid
// w.r.t. att when att(A, λ(A)) > 0 for every source type A.
type SimMatrix struct {
	m map[[2]string]float64
}

// NewSimMatrix returns an empty matrix (all pairs 0).
func NewSimMatrix() *SimMatrix {
	return &SimMatrix{m: make(map[[2]string]float64)}
}

// UniformSim returns the unrestricted matrix att(A, B) = 1 for all
// source types of s and target types of t, as in Example 4.2 where the
// embedding is decided solely by the DTD structures.
func UniformSim(s, t *dtd.DTD) *SimMatrix {
	m := NewSimMatrix()
	for _, a := range s.Types {
		for _, b := range t.Types {
			m.Set(a, b, 1)
		}
	}
	return m
}

// Set records att(a, b) = score, clamped to [0, 1].
func (m *SimMatrix) Set(a, b string, score float64) {
	if score < 0 {
		score = 0
	}
	if score > 1 {
		score = 1
	}
	if score == 0 {
		delete(m.m, [2]string{a, b})
		return
	}
	m.m[[2]string{a, b}] = score
}

// Get returns att(a, b), 0 when unset.
func (m *SimMatrix) Get(a, b string) float64 {
	if m == nil {
		return 1 // nil matrix imposes no restriction
	}
	return m.m[[2]string{a, b}]
}

// Candidates returns the target types b with att(a, b) > 0, sorted by
// decreasing similarity (ties broken by name for determinism). The
// returned slice is freshly allocated on every call and never aliases
// matrix state: callers may filter or reorder it in place freely.
func (m *SimMatrix) Candidates(a string) []string {
	var cs []cand
	for k, v := range m.m {
		if k[0] == a && v > 0 {
			cs = append(cs, cand{k[1], v})
		}
	}
	sortCands(cs)
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.name
	}
	return out
}

type cand struct {
	name  string
	score float64
}

func sortCands(cs []cand) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].score != cs[j].score {
			return cs[i].score > cs[j].score
		}
		return cs[i].name < cs[j].name
	})
}

// AllCandidates returns the Candidates list of every source type with
// at least one non-zero entry, computed in a single pass over the
// matrix — use it instead of per-type Candidates calls when a search
// needs the whole table. The returned map and slices are freshly
// allocated and never alias matrix state.
func (m *SimMatrix) AllCandidates() map[string][]string {
	if m == nil {
		return map[string][]string{}
	}
	groups := make(map[string][]cand)
	for k, v := range m.m {
		if v > 0 {
			groups[k[0]] = append(groups[k[0]], cand{k[1], v})
		}
	}
	out := make(map[string][]string, len(groups))
	for a, cs := range groups {
		sortCands(cs)
		names := make([]string, len(cs))
		for i, c := range cs {
			names[i] = c.name
		}
		out[a] = names
	}
	return out
}

// Pairs returns the number of non-zero entries.
func (m *SimMatrix) Pairs() int { return len(m.m) }

// Clone returns a deep copy.
func (m *SimMatrix) Clone() *SimMatrix {
	c := NewSimMatrix()
	for k, v := range m.m {
		c.m[k] = v
	}
	return c
}

// String summarizes the matrix.
func (m *SimMatrix) String() string {
	return fmt.Sprintf("SimMatrix(%d pairs)", len(m.m))
}
