package embedding

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/dtd"
	"repro/internal/xpath"
)

// StrChild is the pseudo child name identifying the str edge of a
// source type with production A -> str: path(A, str) is stored under
// EdgeRef{Parent: A, Child: StrChild, Occ: 1}.
const StrChild = "#str"

// EdgeRef identifies an edge of the source schema graph: the Occ-th
// occurrence of Child among Parent's children (occurrences matter for
// concatenations repeating a type; otherwise Occ is 1).
type EdgeRef struct {
	Parent string
	Child  string
	Occ    int
}

// Ref builds an EdgeRef with Occ = 1.
func Ref(parent, child string) EdgeRef { return EdgeRef{Parent: parent, Child: child, Occ: 1} }

func (r EdgeRef) String() string {
	if r.Occ > 1 {
		return fmt.Sprintf("(%s, %s#%d)", r.Parent, r.Child, r.Occ)
	}
	return fmt.Sprintf("(%s, %s)", r.Parent, r.Child)
}

// Embedding is a path mapping σ = (λ, path) from Source to Target
// (§4.1). Lambda maps every source element type to a target type with
// Lambda[Source.Root] = Target.Root; Paths maps every source edge
// (including str edges) to an X_R path in the target relative to
// λ(parent).
//
// Call Validate before deriving instance mappings; Apply and Invert
// validate lazily and reject invalid embeddings.
type Embedding struct {
	Source *dtd.DTD
	Target *dtd.DTD
	Lambda map[string]string
	Paths  map[EdgeRef]xpath.Path

	resolved map[EdgeRef][]resolvedStep

	// fp memoizes Fingerprint. An atomic pointer rather than a plain
	// field so concurrent readers of a validated (immutable) embedding
	// stay race-free; mutators reset it alongside resolved.
	fp atomic.Pointer[string]
}

// New returns an embedding shell with empty λ and path maps.
func New(source, target *dtd.DTD) *Embedding {
	return &Embedding{
		Source: source,
		Target: target,
		Lambda: make(map[string]string),
		Paths:  make(map[EdgeRef]xpath.Path),
	}
}

// SetPath records path(ref) = p (given in textual X_R path form) and
// returns the embedding for chaining. It panics on a malformed path
// string; it does not validate the path against the schemas (Validate
// does).
func (e *Embedding) SetPath(ref EdgeRef, path string) *Embedding {
	e.Paths[ref] = xpath.MustParsePath(path)
	e.resolved = nil
	e.fp.Store(nil)
	return e
}

// MapType records λ(a) = b.
func (e *Embedding) MapType(a, b string) *Embedding {
	e.Lambda[a] = b
	e.resolved = nil
	e.fp.Store(nil)
	return e
}

// Quality is qual(σ, att): the sum of att(A, λ(A)) over source types
// (§4.1, Embedding Quality).
func (e *Embedding) Quality(att *SimMatrix) float64 {
	q := 0.0
	for _, a := range e.Source.Types {
		q += att.Get(a, e.Lambda[a])
	}
	return q
}

// SourceEdges lists every edge of the source schema that the embedding
// must map: the graph edges plus one str edge per str production.
func SourceEdges(s *dtd.DTD) []EdgeRef {
	var refs []EdgeRef
	for _, a := range s.Types {
		p := s.Prods[a]
		if p.Kind == dtd.KindStr {
			refs = append(refs, EdgeRef{Parent: a, Child: StrChild, Occ: 1})
			continue
		}
		for _, ed := range s.ChildEdges(a) {
			refs = append(refs, EdgeRef{Parent: a, Child: ed.To, Occ: ed.Occ})
		}
	}
	return refs
}

// resolvedStep is a canonical step of an embedded path: the label of
// the step, the kind of the target edge it traverses, and how the step
// selects among same-label siblings.
type resolvedStep struct {
	label string
	kind  dtd.EdgeKind
	// occ is the 1-based occurrence among same-label children. occ == 0
	// marks the iterator step of a star-source path: at instance level
	// it expands to one sibling per source child.
	occ int
	// childIdx is the 0-based index among all children of the parent's
	// production for AND edges; -1 otherwise.
	childIdx int
	// needsPos records whether instance-level navigation must check the
	// occurrence: true for AND steps whose label repeats in the parent
	// production and for pinned STAR steps.
	needsPos bool
}

// PathStep is the exported view of a resolved path step, consumed by
// schema-directed query translation.
type PathStep struct {
	// Label is the element tag of the step.
	Label string
	// Kind is the target edge kind the step traverses.
	Kind dtd.EdgeKind
	// Occ selects the Occ-th same-label child; 0 marks the iterator
	// step of a star-source path (one sibling per source child).
	Occ int
	// NeedsPos reports whether navigation must check Occ (the label is
	// ambiguous among siblings at this step).
	NeedsPos bool
}

// ResolvedSteps returns the canonical steps of the path mapped from the
// given source edge, validating the embedding's paths on first use.
func (e *Embedding) ResolvedSteps(ref EdgeRef) ([]PathStep, error) {
	if err := e.ensureResolved(); err != nil {
		return nil, err
	}
	steps, ok := e.resolved[ref]
	if !ok {
		return nil, fmt.Errorf("embedding: no path for source edge %s", ref)
	}
	out := make([]PathStep, len(steps))
	for i, s := range steps {
		out[i] = PathStep{Label: s.label, Kind: s.kind, Occ: s.occ, NeedsPos: s.needsPos}
	}
	return out, nil
}

func (s resolvedStep) slot() slotKey { return slotKey{label: s.label, occ: s.occ} }

// slotKey identifies a child slot within a production fragment: nodes
// inserted by different paths merge exactly when their slot sequences
// coincide. Iterator steps receive per-child occ values at instance
// time and therefore never merge across source children.
type slotKey struct {
	label string
	occ   int
}

// Validate checks that σ is a valid schema embedding w.r.t. att
// (§4.1): λ is total with λ(r1) = r2 and att(A, λ(A)) > 0; every source
// edge is mapped to a path of the right type (AND path for
// concatenation and str edges, OR path for disjunction edges, STAR path
// for star edges, with str paths ending in text()); and sibling paths
// are mutually prefix free. A nil att imposes no similarity
// restriction.
func (e *Embedding) Validate(att *SimMatrix) error {
	if err := e.validateLambda(att); err != nil {
		return err
	}
	if err := e.ensureResolved(); err != nil {
		return err
	}
	return e.checkPrefixFreedom()
}

func (e *Embedding) validateLambda(att *SimMatrix) error {
	if e.Lambda[e.Source.Root] != e.Target.Root {
		return fmt.Errorf("embedding: λ(%s) = %q, must be the target root %q",
			e.Source.Root, e.Lambda[e.Source.Root], e.Target.Root)
	}
	for _, a := range e.Source.Types {
		b, ok := e.Lambda[a]
		if !ok {
			return fmt.Errorf("embedding: λ is not total: source type %q unmapped", a)
		}
		if _, ok := e.Target.Prods[b]; !ok {
			return fmt.Errorf("embedding: λ(%s) = %q is not a target type", a, b)
		}
		if att != nil && att.Get(a, b) <= 0 {
			return fmt.Errorf("embedding: invalid w.r.t. att: att(%s, %s) = 0", a, b)
		}
	}
	return nil
}

// ensureResolved resolves and type-checks every edge path, caching the
// canonical steps.
func (e *Embedding) ensureResolved() error {
	if e.resolved != nil {
		return nil
	}
	res := make(map[EdgeRef][]resolvedStep)
	for _, ref := range SourceEdges(e.Source) {
		p, ok := e.Paths[ref]
		if !ok {
			return fmt.Errorf("embedding: no path for source edge %s", ref)
		}
		steps, err := e.resolvePath(ref, p)
		if err != nil {
			return err
		}
		res[ref] = steps
	}
	e.resolved = res
	return nil
}

// resolvePath walks the path through the target schema from λ(parent),
// canonicalizing positions and enforcing the path type condition for
// the source production kind.
func (e *Embedding) resolvePath(ref EdgeRef, p xpath.Path) ([]resolvedStep, error) {
	srcProd := e.Source.Prods[ref.Parent]
	start := e.Lambda[ref.Parent]
	fail := func(format string, args ...any) error {
		return fmt.Errorf("embedding: path(%s) = %q: %s", ref, p, fmt.Sprintf(format, args...))
	}

	if ref.Child == StrChild {
		if srcProd.Kind != dtd.KindStr {
			return nil, fail("str path on non-str source type")
		}
		if !p.Text {
			return nil, fail("str edge must map to an AND path ending with text()")
		}
	} else {
		if p.Text {
			return nil, fail("element edge must not map to a text() path")
		}
		if len(p.Steps) == 0 {
			return nil, fail("element edge needs a nonempty path")
		}
	}

	steps := make([]resolvedStep, 0, len(p.Steps))
	cur := start
	sawOR, sawSTAR := false, false
	iterator := -1
	for i, s := range p.Steps {
		prod, ok := e.Target.Prods[cur]
		if !ok {
			return nil, fail("internal: undefined target type %q", cur)
		}
		rs := resolvedStep{label: s.Label, childIdx: -1}
		switch prod.Kind {
		case dtd.KindConcat:
			n := prod.Occurrences(s.Label)
			if n == 0 {
				return nil, fail("step %d: %q is not a child of target type %q", i+1, s.Label, cur)
			}
			occ := s.Pos
			if occ == 0 {
				if n > 1 {
					return nil, fail("step %d: %q occurs %d times under %q; a position qualifier is required", i+1, s.Label, n, cur)
				}
				occ = 1
			} else if occ > n {
				return nil, fail("step %d: position %d exceeds the %d occurrences of %q under %q", i+1, occ, n, s.Label, cur)
			}
			rs.kind = dtd.EdgeAND
			rs.occ = occ
			rs.childIdx = prod.ChildIndex(s.Label, occ)
			rs.needsPos = n > 1
		case dtd.KindDisj:
			found := false
			for _, c := range prod.Children {
				if c == s.Label {
					found = true
					break
				}
			}
			if !found {
				return nil, fail("step %d: %q is not a disjunct of target type %q", i+1, s.Label, cur)
			}
			if s.Pos > 1 {
				return nil, fail("step %d: position %d on a disjunction step", i+1, s.Pos)
			}
			rs.kind = dtd.EdgeOR
			rs.occ = 1
			sawOR = true
		case dtd.KindStar:
			if prod.Children[0] != s.Label {
				return nil, fail("step %d: %q is not the star child of target type %q", i+1, s.Label, cur)
			}
			rs.kind = dtd.EdgeSTAR
			sawSTAR = true
			switch {
			case srcProd.Kind == dtd.KindStar && iterator < 0 && s.Pos == 0:
				// The iterator: expands to one sibling per source child.
				rs.occ = 0
				iterator = i
			case s.Pos > 0:
				rs.occ = s.Pos
				rs.needsPos = true
			default:
				// Unpinned star step in a non-iterator role defaults to
				// the first child.
				rs.occ = 1
				rs.needsPos = true
			}
		default:
			return nil, fail("step %d: target type %q (%s) has no element children", i+1, cur, prod.Kind)
		}
		steps = append(steps, rs)
		cur = s.Label
	}

	// Endpoint and path-type conditions per the source production.
	switch srcProd.Kind {
	case dtd.KindStr:
		if sawOR {
			return nil, fail("str edge requires an AND path; the path crosses an OR edge")
		}
		if prod := e.Target.Prods[cur]; prod.Kind != dtd.KindStr {
			return nil, fail("str path must end at a str-typed target element, ends at %q (%s)", cur, prod.Kind)
		}
	case dtd.KindConcat:
		if sawOR {
			return nil, fail("concatenation edge requires an AND path; the path crosses an OR edge")
		}
	case dtd.KindDisj:
		if !sawOR {
			return nil, fail("disjunction edge requires an OR path (at least one OR edge)")
		}
		if sawSTAR {
			return nil, fail("disjunction edge requires an OR path; the path crosses a STAR edge")
		}
	case dtd.KindStar:
		if sawOR {
			return nil, fail("star edge requires a STAR path; the path crosses an OR edge")
		}
		if !sawSTAR {
			return nil, fail("star edge requires a STAR path (at least one STAR edge)")
		}
		if iterator < 0 {
			return nil, fail("star path pins every star step with a position; the first star step must be unpinned to iterate source children")
		}
	}
	if ref.Child != StrChild {
		want := e.Lambda[ref.Child]
		if cur != want {
			return nil, fail("path ends at %q, want λ(%s) = %q", cur, ref.Child, want)
		}
	}
	return steps, nil
}

// checkPrefixFreedom enforces, per source production, that no sibling
// edge's resolved path is a prefix of another's (the prefix-free
// condition; equal paths conflict too). Star and str productions have a
// single edge, so only concatenations and disjunctions are checked.
//
// For disjunction sources it additionally requires sibling paths to
// diverge at an OR edge of the target. The paper's definition demands
// only prefix-freeness, but without divergence at an OR edge the
// instance mapping's minimum-default fills can alias the absent
// disjunct's path and break invertibility; every example in the paper
// (and its XSLT inverse templates, whose match guards are the
// disjunct paths) satisfies the stronger condition.
func (e *Embedding) checkPrefixFreedom() error {
	for _, a := range e.Source.Types {
		p := e.Source.Prods[a]
		if p.Kind != dtd.KindConcat && p.Kind != dtd.KindDisj {
			continue
		}
		refs := make([]EdgeRef, 0, len(p.Children))
		for _, ed := range e.Source.ChildEdges(a) {
			refs = append(refs, EdgeRef{Parent: a, Child: ed.To, Occ: ed.Occ})
		}
		for i := 0; i < len(refs); i++ {
			for j := i + 1; j < len(refs); j++ {
				si, sj := e.resolved[refs[i]], e.resolved[refs[j]]
				div, pref := divergence(si, sj)
				if pref {
					return fmt.Errorf("embedding: prefix-free condition violated: path%s = %q and path%s = %q",
						refs[i], e.Paths[refs[i]], refs[j], e.Paths[refs[j]])
				}
				if p.Kind == dtd.KindDisj && si[div].kind != dtd.EdgeOR {
					return fmt.Errorf("embedding: disjunct paths path%s = %q and path%s = %q diverge at a non-OR edge; the absent disjunct would be indistinguishable from default fills",
						refs[i], e.Paths[refs[i]], refs[j], e.Paths[refs[j]])
				}
			}
		}
	}
	return nil
}

// divergence returns the index of the first differing slot of the two
// resolved paths; pref is true when one path is a prefix of the other
// (in which case div is meaningless).
func divergence(a, b []resolvedStep) (div int, pref bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i].slot() != b[i].slot() {
			return i, false
		}
	}
	return 0, true
}

// PathSize returns |σ|: the total number of steps across all mapped
// paths, the size measure in the paper's complexity bounds.
func (e *Embedding) PathSize() int {
	n := 0
	for _, p := range e.Paths {
		n += p.Len()
		if p.Text {
			n++
		}
	}
	return n
}

// String renders the embedding in the paper's notation.
func (e *Embedding) String() string {
	var b strings.Builder
	types := append([]string(nil), e.Source.Types...)
	sort.Strings(types)
	for _, a := range types {
		fmt.Fprintf(&b, "λ(%s) = %s\n", a, e.Lambda[a])
	}
	refs := SourceEdges(e.Source)
	for _, ref := range refs {
		if p, ok := e.Paths[ref]; ok {
			fmt.Fprintf(&b, "path%s = %s\n", ref, p)
		}
	}
	return b.String()
}

// ResolvedKinds exposes, for diagnostics and tests, the edge kinds the
// path of ref traverses in the target schema. It requires a prior
// successful Validate.
func (e *Embedding) ResolvedKinds(ref EdgeRef) ([]dtd.EdgeKind, error) {
	if err := e.ensureResolved(); err != nil {
		return nil, err
	}
	steps := e.resolved[ref]
	kinds := make([]dtd.EdgeKind, len(steps))
	for i, s := range steps {
		kinds[i] = s.kind
	}
	return kinds, nil
}
