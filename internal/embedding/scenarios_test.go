package embedding_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/translate"
	"repro/internal/workload"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xslt"
)

// roundTripAll exercises one embedding end to end: direct σd/σd⁻¹,
// XSLT-compiled σd/σd⁻¹, and query preservation over random documents
// and random translatable queries.
func roundTripAll(t *testing.T, emb *embedding.Embedding, seeds int) {
	t.Helper()
	if err := emb.Validate(nil); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	fwd, err := xslt.ForwardStylesheet(emb)
	if err != nil {
		t.Fatalf("ForwardStylesheet: %v", err)
	}
	inv, err := xslt.InverseStylesheet(emb)
	if err != nil {
		t.Fatalf("InverseStylesheet: %v", err)
	}
	tr, err := translate.New(emb)
	if err != nil {
		t.Fatalf("translate.New: %v", err)
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := xmltree.MustGenerate(emb.Source, r, xmltree.GenOptions{})
		res, err := emb.Apply(src)
		if err != nil {
			t.Logf("seed %d: Apply: %v", seed, err)
			return false
		}
		if err := res.Tree.Validate(emb.Target); err != nil {
			t.Logf("seed %d: conformance: %v", seed, err)
			return false
		}
		back, err := emb.Invert(res.Tree)
		if err != nil || !xmltree.Equal(src, back) {
			t.Logf("seed %d: direct round trip failed: %v", seed, err)
			return false
		}
		viaXSLT, err := fwd.Run(src)
		if err != nil || !xmltree.Equal(viaXSLT, res.Tree) {
			t.Logf("seed %d: XSLT forward mismatch: %v", seed, err)
			return false
		}
		backXSLT, err := inv.Run(viaXSLT)
		if err != nil || !xmltree.Equal(src, backXSLT) {
			t.Logf("seed %d: XSLT round trip failed: %v", seed, err)
			return false
		}
		q := xpath.RandomQuery(r, emb.Source, xpath.GenOptions{TranslatableOnly: true})
		auto, err := tr.Translate(q)
		if err != nil {
			t.Logf("seed %d: translate %s: %v", seed, xpath.String(q), err)
			return false
		}
		want := xpath.Eval(q, src.Root)
		got := auto.Eval(res.Tree.Root)
		if len(want) != len(got) {
			t.Logf("seed %d: query %s: %d vs %d answers", seed, xpath.String(q), len(want), len(got))
			return false
		}
		seen := map[xmltree.NodeID]int{}
		for _, n := range want {
			seen[n.ID]++
		}
		for _, n := range got {
			id, ok := res.IDM[n.ID]
			if !ok || seen[id] == 0 {
				t.Logf("seed %d: query %s: answer outside idM", seed, xpath.String(q))
				return false
			}
			seen[id]--
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: seeds, Rand: rand.New(rand.NewSource(99))}); err != nil {
		t.Error(err)
	}
}

// TestStarPathWithSuffix: the iterator is not the last step — each
// source child owns a suffix chain below its iterator node (the XSLT
// prefix/suffix rule pair with a non-trivial suffix).
func TestStarPathWithSuffix(t *testing.T) {
	src := dtd.MustNew("r",
		dtd.D("r", dtd.Star("item")),
		dtd.D("item", dtd.Str()))
	tgt := dtd.MustNew("r1",
		dtd.D("r1", dtd.Concat("list")),
		dtd.D("list", dtd.Star("entry")),
		dtd.D("entry", dtd.Concat("wrap")),
		dtd.D("wrap", dtd.Concat("payload", "flag")),
		dtd.D("payload", dtd.Str()),
		dtd.D("flag", dtd.Str()))
	emb := embedding.New(src, tgt)
	emb.MapType("r", "r1").MapType("item", "payload")
	emb.SetPath(embedding.Ref("r", "item"), "list/entry/wrap/payload").
		SetPath(embedding.Ref("item", embedding.StrChild), "text()")
	roundTripAll(t, emb, 40)

	// Shape check: three items yield three entry chains, each with a
	// default-filled flag sibling.
	doc, _ := xmltree.ParseString(`<r><item>a</item><item>b</item><item>c</item></r>`)
	res, err := emb.Apply(doc)
	if err != nil {
		t.Fatal(err)
	}
	entries := xpath.Eval(xpath.MustParse("list/entry"), res.Tree.Root)
	if len(entries) != 3 {
		t.Fatalf("%d entries, want 3\n%s", len(entries), res.Tree)
	}
	flags := xpath.Eval(xpath.MustParse("list/entry/wrap/flag/text()"), res.Tree.Root)
	if len(flags) != 3 || flags[0].Text != embedding.DefaultText {
		t.Errorf("default flags = %v", xpath.Strings(flags))
	}
}

// TestPinnedStarHoleFilling: an AND path pins star position 2; position
// 1 must be hole-filled with a default instance, and navigation stays
// position-directed.
func TestPinnedStarHoleFilling(t *testing.T) {
	src := dtd.MustNew("a",
		dtd.D("a", dtd.Concat("b")),
		dtd.D("b", dtd.Str()))
	tgt := dtd.MustNew("a1",
		dtd.D("a1", dtd.Concat("list")),
		dtd.D("list", dtd.Star("c")),
		dtd.D("c", dtd.Concat("x")),
		dtd.D("x", dtd.Str()))
	emb := embedding.New(src, tgt)
	emb.MapType("a", "a1").MapType("b", "x")
	emb.SetPath(embedding.Ref("a", "b"), "list/c[position() = 2]/x").
		SetPath(embedding.Ref("b", embedding.StrChild), "text()")
	roundTripAll(t, emb, 20)

	doc, _ := xmltree.ParseString(`<a><b>payload</b></a>`)
	res, err := emb.Apply(doc)
	if err != nil {
		t.Fatal(err)
	}
	cs := xpath.Eval(xpath.MustParse("list/c"), res.Tree.Root)
	if len(cs) != 2 {
		t.Fatalf("%d star children, want 2 (hole filled)\n%s", len(cs), res.Tree)
	}
	if v, _ := cs[0].Children[0].Value(); v != embedding.DefaultText {
		t.Errorf("hole fill value = %q", v)
	}
	if v, _ := cs[1].Children[0].Value(); v != "payload" {
		t.Errorf("payload landed at %q", v)
	}
}

// TestRepeatedChildViaStarPositions: a source type with the same child
// three times, disambiguated by pinned star positions (the Figure 3(c)
// idea through a star node).
func TestRepeatedChildViaStarPositions(t *testing.T) {
	src := dtd.MustNew("row",
		dtd.D("row", dtd.Concat("cell", "cell", "cell")),
		dtd.D("cell", dtd.Str()))
	tgt := dtd.MustNew("row1",
		dtd.D("row1", dtd.Concat("cells")),
		dtd.D("cells", dtd.Star("cell1")),
		dtd.D("cell1", dtd.Str()))
	emb := embedding.New(src, tgt)
	emb.MapType("row", "row1").MapType("cell", "cell1")
	for occ := 1; occ <= 3; occ++ {
		emb.Paths[embedding.EdgeRef{Parent: "row", Child: "cell", Occ: occ}] =
			xpath.MustParsePath("cells/cell1[" + string(rune('0'+occ)) + "]")
	}
	emb.SetPath(embedding.Ref("cell", embedding.StrChild), "text()")
	roundTripAll(t, emb, 20)

	doc, _ := xmltree.ParseString(`<row><cell>x</cell><cell>y</cell><cell>z</cell></row>`)
	res, err := emb.Apply(doc)
	if err != nil {
		t.Fatal(err)
	}
	got := xpath.Strings(xpath.Eval(xpath.MustParse("cells/cell1/text()"), res.Tree.Root))
	if len(got) != 3 || got[0] != "x" || got[2] != "z" {
		t.Errorf("cell order = %v", got)
	}
}

// TestOptionalDisjunct: the footnote-1 pattern A → B + ε after
// normalization, mapped to a structurally different optional in the
// target.
func TestOptionalDisjunct(t *testing.T) {
	src, err := dtd.Parse(`
<!ELEMENT doc (head, body?)>
<!ELEMENT head (#PCDATA)>
<!ELEMENT body (#PCDATA)>`, "doc")
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := dtd.Parse(`
<!ELEMENT page (title, content)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT content (text | absent)>
<!ELEMENT text (#PCDATA)>
<!ELEMENT absent EMPTY>`, "page")
	if err != nil {
		t.Fatal(err)
	}
	// The normalized source has a fresh disjunction doc.1 → (body | doc.2).
	optType := src.Prods["doc"].Children[1]
	epsType := src.Prods[optType].Children[1]
	emb := embedding.New(src, tgt)
	emb.MapType("doc", "page").
		MapType("head", "title").
		MapType("body", "text").
		MapType(optType, "content").
		MapType(epsType, "absent")
	emb.SetPath(embedding.Ref("doc", "head"), "title").
		SetPath(embedding.Ref("doc", optType), "content").
		SetPath(embedding.Ref(optType, "body"), "text").
		SetPath(embedding.Ref(optType, epsType), "absent").
		SetPath(embedding.Ref("head", embedding.StrChild), "text()").
		SetPath(embedding.Ref("body", embedding.StrChild), "text()")
	roundTripAll(t, emb, 30)
}

// TestFoundEmbeddingFullPipeline: a searched (not hand-written)
// embedding from the corpus runs through the same gauntlet.
func TestSigma2FullPipeline(t *testing.T) {
	roundTripAll(t, workload.StudentEmbedding(), 30)
}
