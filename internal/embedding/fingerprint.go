package embedding

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint returns a stable content hash of the
// (source DTD, target DTD, σ) triple: two embeddings that map the same
// schemas the same way share a fingerprint regardless of how or where
// they were constructed. Long-lived processes key shared artifacts
// (translation caches, compiled programs) by this value rather than by
// pointer identity, so artifacts survive re-parsing a schema pair and
// never pin an Embedding alive.
//
// The hash covers the canonical renderings — dtd.String for both
// schemas (declaration order is part of schema identity) and Marshal
// for λ and the path mapping — with length framing so distinct triples
// cannot collide by concatenation. The value is memoized; mutating the
// embedding (SetPath, MapType) invalidates the memo.
func (e *Embedding) Fingerprint() string {
	if fp := e.fp.Load(); fp != nil {
		return *fp
	}
	h := sha256.New()
	for _, part := range []string{
		e.Source.Root, e.Source.String(),
		e.Target.Root, e.Target.String(),
		e.Marshal(),
	} {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(part)))
		h.Write(n[:])
		h.Write([]byte(part))
	}
	s := hex.EncodeToString(h.Sum(nil))
	e.fp.Store(&s)
	return s
}
