package embedding_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// treeMigrate is the reference path: Apply + encode.
func treeMigrate(t *testing.T, emb *embedding.Embedding, doc string) (string, error) {
	t.Helper()
	src, err := xmltree.ParseString(doc)
	if err != nil {
		return "", err
	}
	res, err := emb.Apply(src)
	if err != nil {
		return "", err
	}
	return res.Tree.String(), nil
}

func streamMigrate(emb *embedding.Embedding, doc string, opts embedding.StreamOptions) (string, embedding.StreamStats, error) {
	p, err := emb.CompileStream()
	if err != nil {
		return "", embedding.StreamStats{}, err
	}
	var out bytes.Buffer
	st, err := p.Run(context.Background(), strings.NewReader(doc), &out, opts)
	return out.String(), st, err
}

// streamFixtures pairs each workload embedding with whether its
// productions compile fully streaming (hole order = document order) or
// legitimately need the bounded reorder fallback for some productions.
func streamFixtures() map[string]struct {
	emb       *embedding.Embedding
	streaming bool
} {
	return map[string]struct {
		emb       *embedding.Embedding
		streaming bool
	}{
		"class":   {workload.ClassEmbedding(), true},
		"student": {workload.StudentEmbedding(), true},
		"auction": {workload.AuctionEmbedding(), false},
	}
}

// TestStreamMatchesApply is the core differential: streaming output
// must be byte-identical to the tree path on generated documents.
func TestStreamMatchesApply(t *testing.T) {
	for name, fx := range streamFixtures() {
		emb := fx.emb
		t.Run(name, func(t *testing.T) {
			p, err := emb.CompileStream()
			if err != nil {
				t.Fatalf("CompileStream: %v", err)
			}
			for seed := int64(0); seed < 25; seed++ {
				r := rand.New(rand.NewSource(seed))
				doc := xmltree.MustGenerate(emb.Source, r, xmltree.GenOptions{StarMax: 4}).String()
				want, err := treeMigrate(t, emb, doc)
				if err != nil {
					t.Fatalf("seed %d: Apply: %v", seed, err)
				}
				var out bytes.Buffer
				st, err := p.Run(context.Background(), strings.NewReader(doc), &out, embedding.StreamOptions{Obs: obs.Nop()})
				if err != nil {
					t.Fatalf("seed %d: stream: %v", seed, err)
				}
				if out.String() != want {
					t.Fatalf("seed %d: stream output differs from tree path\nsource:\n%s\n got:\n%s\nwant:\n%s",
						seed, doc, out.String(), want)
				}
				if st.OutBytes != int64(out.Len()) {
					t.Errorf("seed %d: OutBytes = %d, wrote %d", seed, st.OutBytes, out.Len())
				}
				if st.InBytes != int64(len(doc)) {
					t.Errorf("seed %d: InBytes = %d, doc is %d", seed, st.InBytes, len(doc))
				}
				if st.Tokens <= 0 || st.Nodes <= 0 || st.MaxDepth <= 0 {
					t.Errorf("seed %d: degenerate stats %+v", seed, st)
				}
				if fx.streaming {
					if st.Fallbacks != 0 || st.PeakBufferedBytes != 0 {
						t.Errorf("seed %d: non-reordering embedding took fallbacks: %+v", seed, st)
					}
				} else if st.PeakBufferedBytes > 64<<10 {
					// Reordering productions buffer per node, not per
					// document: the peak must stay modest no matter the
					// generated size.
					t.Errorf("seed %d: peak buffered bytes %d not bounded", seed, st.PeakBufferedBytes)
				}
			}
		})
	}
}

// TestStreamApplyConvenience exercises the one-shot entry point.
func TestStreamApplyConvenience(t *testing.T) {
	emb := workload.ClassEmbedding()
	doc := xmltree.MustGenerate(emb.Source, rand.New(rand.NewSource(7)), xmltree.GenOptions{StarMax: 3}).String()
	want, err := treeMigrate(t, emb, doc)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := embedding.StreamApply(context.Background(), emb, strings.NewReader(doc), &out); err != nil {
		t.Fatalf("StreamApply: %v", err)
	}
	if out.String() != want {
		t.Fatalf("StreamApply differs from tree path")
	}
}

// reorderEmbedding maps a source concatenation (a, b) to a target that
// declares them in the opposite order (bb, aa): the instance mapping
// must emit b's fragment before a's, which genuinely needs buffering.
func reorderEmbedding(t *testing.T) *embedding.Embedding {
	t.Helper()
	src := dtd.MustNew("s",
		dtd.D("s", dtd.Concat("a", "b")),
		dtd.D("a", dtd.Str()),
		dtd.D("b", dtd.Str()),
	)
	tgt := dtd.MustNew("t",
		dtd.D("t", dtd.Concat("bb", "aa")),
		dtd.D("aa", dtd.Str()),
		dtd.D("bb", dtd.Str()),
	)
	e := embedding.New(src, tgt)
	e.MapType("s", "t").MapType("a", "aa").MapType("b", "bb")
	e.SetPath(embedding.Ref("s", "a"), "aa").
		SetPath(embedding.Ref("s", "b"), "bb").
		SetPath(embedding.Ref("a", embedding.StrChild), "text()").
		SetPath(embedding.Ref("b", embedding.StrChild), "text()")
	if err := e.Validate(nil); err != nil {
		t.Fatalf("reorder fixture invalid: %v", err)
	}
	return e
}

// TestStreamReorderFallback checks the buffered path: identical bytes,
// and the fallback is visible in the stats.
func TestStreamReorderFallback(t *testing.T) {
	emb := reorderEmbedding(t)
	doc := "<s><a>first</a><b>second</b></s>"
	want, err := treeMigrate(t, emb, doc)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	got, st, err := streamMigrate(emb, doc, embedding.StreamOptions{Obs: obs.Nop()})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if got != want {
		t.Fatalf("reorder output differs:\n got:\n%s\nwant:\n%s", got, want)
	}
	if !strings.Contains(got, "<bb>second</bb>") || strings.Index(got, "<bb>") > strings.Index(got, "<aa>") {
		t.Fatalf("children not reordered:\n%s", got)
	}
	if st.Fallbacks != 1 {
		t.Errorf("Fallbacks = %d, want 1", st.Fallbacks)
	}
	if st.PeakBufferedBytes <= 0 {
		t.Errorf("PeakBufferedBytes = %d, want > 0", st.PeakBufferedBytes)
	}
}

// TestStreamConformance rejects the same documents the tree path
// rejects.
func TestStreamConformance(t *testing.T) {
	emb := workload.ClassEmbedding()
	bad := []struct {
		name string
		doc  string
	}{
		{"wrong-root", "<notdb/>"},
		{"unknown-element", "<db><zzz/></db>"},
		{"wrong-child", "<db><class><title>t</title><cno>c</cno><type><project>p</project></type></class></db>"},
		{"missing-child", "<db><class><cno>c</cno></class></db>"},
		{"str-missing-text", "<db><class><cno></cno><title>t</title><type><project>p</project></type></class></db>"},
		{"str-element-child", "<db><class><cno><x/></cno><title>t</title><type><project>p</project></type></class></db>"},
		{"disj-two-children", "<db><class><cno>c</cno><title>t</title><type><project>p</project><project>q</project></type></class></db>"},
		{"disj-bad-disjunct", "<db><class><cno>c</cno><title>t</title><type><title>x</title></type></class></db>"},
		{"star-bad-child", "<db><title>t</title></db>"},
		{"text-in-star", "<db>stray</db>"},
		{"extra-child", "<db><class><cno>c</cno><title>t</title><type><project>p</project></type><cno>d</cno></class></db>"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := treeMigrate(t, emb, tc.doc); err == nil {
				t.Fatalf("tree path accepted %q", tc.doc)
			}
			_, _, err := streamMigrate(emb, tc.doc, embedding.StreamOptions{Obs: obs.Nop()})
			if err == nil {
				t.Fatalf("stream accepted %q", tc.doc)
			}
			var se *embedding.StreamError
			if !errors.As(err, &se) || se.Stage != "map" {
				t.Fatalf("error = %v, want map-stage StreamError", err)
			}
		})
	}
}

// TestStreamErrorStages checks the stage tagging: tokenizer failures
// are "parse", conformance is "map" (covered above), sink failures are
// "write".
func TestStreamErrorStages(t *testing.T) {
	emb := workload.ClassEmbedding()
	p, err := emb.CompileStream()
	if err != nil {
		t.Fatal(err)
	}
	t.Run("parse", func(t *testing.T) {
		var out bytes.Buffer
		// Malformed markup: the decoder fails before any token reaches
		// the conformance checks.
		_, err := p.Run(context.Background(), strings.NewReader("<db><cl<"), &out, embedding.StreamOptions{Obs: obs.Nop()})
		var se *embedding.StreamError
		if !errors.As(err, &se) || se.Stage != "parse" {
			t.Fatalf("error = %v, want parse-stage StreamError", err)
		}
	})
	t.Run("write", func(t *testing.T) {
		doc := xmltree.MustGenerate(emb.Source, rand.New(rand.NewSource(1)), xmltree.GenOptions{StarMax: 8}).String()
		_, err := p.Run(context.Background(), strings.NewReader(doc), failWriter{}, embedding.StreamOptions{Obs: obs.Nop()})
		var se *embedding.StreamError
		if !errors.As(err, &se) || se.Stage != "write" {
			t.Fatalf("error = %v, want write-stage StreamError", err)
		}
	})
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, fmt.Errorf("sink broken") }

// TestStreamLimits: guard enforcement surfaces through Run with the
// parse stage and the typed limit error.
func TestStreamLimits(t *testing.T) {
	emb := workload.ClassEmbedding()
	p, err := emb.CompileStream()
	if err != nil {
		t.Fatal(err)
	}
	doc := xmltree.MustGenerate(emb.Source, rand.New(rand.NewSource(3)), xmltree.GenOptions{StarMax: 6}).String()
	cases := []struct {
		name      string
		lim       guard.Limits
		wantLimit string
	}{
		{"input-bytes", guard.Limits{MaxInputBytes: 32}, "input-bytes"},
		{"depth", guard.Limits{MaxDepth: 2}, "depth"},
		{"nodes", guard.Limits{MaxNodes: 3}, "nodes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			_, err := p.Run(context.Background(), strings.NewReader(doc), &out,
				embedding.StreamOptions{Limits: tc.lim, Obs: obs.Nop()})
			var le *guard.LimitError
			if !errors.As(err, &le) {
				t.Fatalf("error = %v, want *guard.LimitError", err)
			}
			if le.Limit != tc.wantLimit {
				t.Fatalf("limit = %q, want %q", le.Limit, tc.wantLimit)
			}
		})
	}
}

// TestStreamCancel: a canceled context unwinds with a CancelError.
func TestStreamCancel(t *testing.T) {
	emb := workload.ClassEmbedding()
	p, err := emb.CompileStream()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	doc := xmltree.MustGenerate(emb.Source, rand.New(rand.NewSource(3)), xmltree.GenOptions{StarMax: 3}).String()
	var out bytes.Buffer
	_, err = p.Run(ctx, strings.NewReader(doc), &out, embedding.StreamOptions{Obs: obs.Nop()})
	var ce *guard.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("error = %v, want *guard.CancelError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not match context.Canceled", err)
	}
}

// TestStreamMetrics: the xse_stream_* instruments account a run.
func TestStreamMetrics(t *testing.T) {
	emb := workload.ClassEmbedding()
	p, err := emb.CompileStream()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	doc := xmltree.MustGenerate(emb.Source, rand.New(rand.NewSource(5)), xmltree.GenOptions{StarMax: 3}).String()
	var out bytes.Buffer
	st, err := p.Run(context.Background(), strings.NewReader(doc), &out, embedding.StreamOptions{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	counters := map[string]uint64{}
	gauges := map[string]int64{}
	for _, m := range reg.Snapshot() {
		counters[m.Name] = m.Counter
		gauges[m.Name] = m.Gauge
	}
	if counters["xse_stream_docs_total"] != 1 {
		t.Errorf("docs_total = %v, want 1", counters["xse_stream_docs_total"])
	}
	if counters["xse_stream_tokens_total"] != uint64(st.Tokens) {
		t.Errorf("tokens_total = %v, want %d", counters["xse_stream_tokens_total"], st.Tokens)
	}
	if gauges["xse_stream_max_depth"] != int64(st.MaxDepth) {
		t.Errorf("max_depth = %v, want %d", gauges["xse_stream_max_depth"], st.MaxDepth)
	}
}

// FuzzStreamMigrate is the streaming-vs-tree fuzz differential: for an
// arbitrary document, either both paths fail, or both succeed with
// byte-identical output.
func FuzzStreamMigrate(f *testing.F) {
	emb := workload.ClassEmbedding()
	p, err := emb.CompileStream()
	if err != nil {
		f.Fatal(err)
	}
	lim := guard.Limits{MaxDepth: 60, MaxInputBytes: 1 << 16, MaxNodes: 4096}
	f.Add("<db/>")
	f.Add("<db><class><cno>CS331</cno><title>DB</title><type><project>solo</project></type></class></db>")
	f.Add("<db><class><cno>1</cno><title>t</title><type><regular><prereq/></regular></type></class></db>")
	f.Fuzz(func(t *testing.T, doc string) {
		var want string
		src, err := xmltree.ParseLimits(strings.NewReader(doc), lim)
		treeOK := err == nil
		if treeOK {
			res, aerr := emb.Apply(src)
			if aerr != nil {
				treeOK = false
			} else {
				want = res.Tree.String()
			}
		}
		var out bytes.Buffer
		_, serr := p.Run(context.Background(), strings.NewReader(doc), &out,
			embedding.StreamOptions{Limits: lim, Obs: obs.Nop()})
		if treeOK != (serr == nil) {
			t.Fatalf("path disagreement on %q: tree ok=%v, stream err=%v", doc, treeOK, serr)
		}
		if treeOK && out.String() != want {
			t.Fatalf("output divergence on %q:\n got:\n%s\nwant:\n%s", doc, out.String(), want)
		}
	})
}
