package embedding_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/search"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// chainTarget extends the school schema idea one hop further: a
// district archive hosting school data under renamed wrappers. Built
// mechanically as a noisy copy so σ2 exists by ground truth.
func chainSecondHop(t *testing.T) (*embedding.Embedding, *dtd.DTD) {
	t.Helper()
	school := workload.SchoolDTD()
	r := rand.New(rand.NewSource(21))
	nc := workload.Noise(school, workload.NoiseOptions{RenameFrac: 0.4, InsertFrac: 0.3}, r)
	att := embedding.NewSimMatrix()
	for a, b := range nc.Truth {
		att.Set(a, b, 1)
	}
	// Build σ2 by search over the ground truth (deterministic).
	emb := searchGroundTruth(t, school, nc.DTD, att)
	return emb, nc.DTD
}

func searchGroundTruth(t *testing.T, src, tgt *dtd.DTD, att *embedding.SimMatrix) *embedding.Embedding {
	t.Helper()
	res, err := search.Find(src, tgt, att, search.Options{Heuristic: search.QualityOrdered, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding == nil {
		t.Fatal("no second-hop embedding found")
	}
	return res.Embedding
}

// TestComposeFigure1Chain: σ1 (class → school) composed with a found
// school → archive embedding yields a direct class → archive embedding
// with all guarantees.
func TestComposeFigure1Chain(t *testing.T) {
	s1 := workload.ClassEmbedding()
	s2, archive := chainSecondHop(t)
	composed, err := embedding.Compose(s1, s2)
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	if composed.Source != s1.Source || !composed.Target.Equal(archive) {
		t.Fatal("composed endpoints wrong")
	}
	// λ composes pointwise.
	for _, a := range s1.Source.Types {
		if composed.Lambda[a] != s2.Lambda[s1.Lambda[a]] {
			t.Errorf("λ(%s) = %s, want λ2(λ1(%s))", a, composed.Lambda[a], a)
		}
	}
	// Full pipeline on the composed embedding.
	roundTripAll(t, composed, 25)
}

// TestComposeSequentialAgreement: inverting the two hops sequentially
// recovers the original from the sequentially mapped document, and the
// composed mapping round-trips on its own — both roads lead home.
func TestComposeSequentialAgreement(t *testing.T) {
	s1 := workload.ClassEmbedding()
	s2, _ := chainSecondHop(t)
	composed, err := embedding.Compose(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := xmltree.MustGenerate(s1.Source, r, xmltree.GenOptions{})
		// Sequential: σ2d(σ1d(T)) then invert twice.
		hop1, err := s1.Apply(doc)
		if err != nil {
			return false
		}
		hop2, err := s2.Apply(hop1.Tree)
		if err != nil {
			t.Logf("seed %d: hop2: %v", seed, err)
			return false
		}
		mid, err := s2.Invert(hop2.Tree)
		if err != nil || !xmltree.Equal(mid, hop1.Tree) {
			t.Logf("seed %d: hop2 inverse: %v", seed, err)
			return false
		}
		back, err := s1.Invert(mid)
		if err != nil || !xmltree.Equal(back, doc) {
			t.Logf("seed %d: hop1 inverse: %v", seed, err)
			return false
		}
		// Direct: σd then σd⁻¹.
		direct, err := composed.Apply(doc)
		if err != nil {
			t.Logf("seed %d: composed apply: %v", seed, err)
			return false
		}
		back2, err := composed.Invert(direct.Tree)
		if err != nil || !xmltree.Equal(back2, doc) {
			t.Logf("seed %d: composed inverse: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Error(err)
	}
}

func TestComposeMismatchedSchemas(t *testing.T) {
	s1 := workload.ClassEmbedding()
	s2 := workload.StudentEmbedding()
	if _, err := embedding.Compose(s1, s2); err == nil || !strings.Contains(err.Error(), "differs") {
		t.Errorf("mismatched composition: %v", err)
	}
}
