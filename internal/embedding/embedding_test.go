package embedding_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// TestFigure1Embeddings verifies σ1 (Example 4.2) and σ2 (Example 4.9):
// both Figure 1 sources embed into the school target.
func TestFigure1Embeddings(t *testing.T) {
	for _, tc := range []struct {
		name string
		emb  *embedding.Embedding
	}{
		{"sigma1-class", workload.ClassEmbedding()},
		{"sigma2-student", workload.StudentEmbedding()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.emb.Validate(nil); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			att := embedding.UniformSim(tc.emb.Source, tc.emb.Target)
			if err := tc.emb.Validate(att); err != nil {
				t.Fatalf("Validate w.r.t. uniform att: %v", err)
			}
			if q := tc.emb.Quality(att); q != float64(tc.emb.Source.Size()) {
				t.Errorf("Quality = %v, want %v (all att = 1)", q, tc.emb.Source.Size())
			}
		})
	}
}

// TestFigure3Scenarios checks the validity verdicts of Figure 3(a)-(e).
func TestFigure3Scenarios(t *testing.T) {
	for _, sc := range workload.Figure3() {
		t.Run(sc.Name, func(t *testing.T) {
			err := sc.Build().Validate(nil)
			if sc.Valid && err != nil {
				t.Errorf("scenario should be valid, got %v", err)
			}
			if !sc.Valid && err == nil {
				t.Errorf("scenario should be invalid, Validate succeeded")
			}
		})
	}
}

// TestFigure2Mapping: the Figure 2 arrow mapping is not a valid schema
// embedding — its concatenation edges map to OR paths — matching the
// paper's use of it as an invertible-but-not-query-preserving mapping.
func TestFigure2Mapping(t *testing.T) {
	err := workload.Figure2Mapping().Validate(nil)
	if err == nil {
		t.Fatal("Figure 2 mapping validated; it should violate the path type condition")
	}
	if !strings.Contains(err.Error(), "OR") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestMinDefExamples checks Example 4.3's minimum default instances.
func TestMinDefExamples(t *testing.T) {
	school := workload.SchoolDTD()
	md, err := embedding.MinDef(school)
	if err != nil {
		t.Fatalf("MinDef: %v", err)
	}
	tr := &xmltree.Tree{}

	student, err := md.Instantiate(tr, "student")
	if err != nil {
		t.Fatal(err)
	}
	wantLabels := []string{"ssn", "name", "gpa", "taking"}
	if len(student.Children) != 4 {
		t.Fatalf("mindef(student) has %d children, want 4", len(student.Children))
	}
	for i, w := range wantLabels {
		if student.Children[i].Label != w {
			t.Errorf("mindef(student) child %d = %q, want %q", i, student.Children[i].Label, w)
		}
	}
	if v, _ := student.Children[0].Value(); v != embedding.DefaultText {
		t.Errorf("mindef ssn value = %q, want %q", v, embedding.DefaultText)
	}
	if len(student.Children[3].Children) != 0 {
		t.Error("mindef(taking) must be empty (star)")
	}

	prereq, _ := md.Instantiate(tr, "prereq")
	if len(prereq.Children) != 0 {
		t.Error("mindef(prereq) must be a childless node")
	}

	// category is a disjunction: the smallest rank-0 disjunct in
	// declaration order is mandatory (whose own default is lab).
	category, _ := md.Instantiate(tr, "category")
	if len(category.Children) != 1 || category.Children[0].Label != "mandatory" {
		t.Fatalf("mindef(category) child = %v", category.Children)
	}
	if category.Children[0].Children[0].Label != "lab" {
		t.Errorf("mindef(mandatory) child = %q, want lab", category.Children[0].Children[0].Label)
	}
}

// TestMinDefConformsProperty: for every type A of a consistent DTD,
// mindef(A) validates against the DTD rooted at A.
func TestMinDefConformsProperty(t *testing.T) {
	for _, d := range []*dtd.DTD{workload.ClassDTD(), workload.StudentDTD(), workload.SchoolDTD()} {
		md, err := embedding.MinDef(d)
		if err != nil {
			t.Fatalf("MinDef: %v", err)
		}
		for _, a := range d.Types {
			tr := &xmltree.Tree{}
			n, err := md.Instantiate(tr, a)
			if err != nil {
				t.Fatalf("Instantiate(%s): %v", a, err)
			}
			tr.Root = n
			sub := d.Clone()
			sub.Root = a
			if err := tr.Validate(sub); err != nil {
				t.Errorf("mindef(%s) does not conform: %v", a, err)
			}
		}
	}
}

func TestMinDefInconsistentDTD(t *testing.T) {
	d := dtd.MustNew("r", dtd.D("r", dtd.Disj("a", "x")), dtd.D("a", dtd.Str()), dtd.D("x", dtd.Concat("x")))
	if _, err := embedding.MinDef(d); err == nil {
		t.Error("MinDef over an inconsistent DTD should fail")
	}
}

// classDoc builds a small class document used by the Figure 4 tests.
func classDoc(t *testing.T) *xmltree.Tree {
	t.Helper()
	tr, err := xmltree.ParseString(`
<db>
  <class>
    <cno>CS331</cno>
    <title>Databases</title>
    <type>
      <regular>
        <prereq>
          <class>
            <cno>CS210</cno>
            <title>Algorithms</title>
            <type><project>solo</project></type>
          </class>
        </prereq>
      </regular>
    </type>
  </class>
  <class>
    <cno>CS100</cno>
    <title>Intro</title>
    <type><project>maze</project></type>
  </class>
</db>`)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestFigure4ProductionFragment checks the Example 4.4 mapping: the
// class production fragment shape of Figure 4, with credit, year, term
// and instructor filled by minimum defaults.
func TestFigure4ProductionFragment(t *testing.T) {
	emb := workload.ClassEmbedding()
	src := classDoc(t)
	res, err := emb.Apply(src)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := res.Tree.Validate(emb.Target); err != nil {
		t.Fatalf("σd(T) does not conform to the target schema: %v\n%s", err, res.Tree)
	}
	school := res.Tree.Root
	if school.Label != "school" {
		t.Fatalf("root = %q", school.Label)
	}
	courses := school.Children[0]
	current := courses.Children[0]
	if len(current.Children) != 2 {
		t.Fatalf("current has %d courses, want 2", len(current.Children))
	}
	// history is required by the target and filled with its default: a
	// childless star node.
	history := courses.Children[1]
	if history.Label != "history" || len(history.Children) != 0 {
		t.Errorf("history fill = %q with %d children", history.Label, len(history.Children))
	}
	course := current.Children[0]
	basic := course.Children[0]
	if got := childLabels(basic); got != "cno,credit,class" {
		t.Fatalf("basic children = %s", got)
	}
	if v, _ := basic.Children[0].Value(); v != "CS331" {
		t.Errorf("cno = %q", v)
	}
	if v, _ := basic.Children[1].Value(); v != embedding.DefaultText {
		t.Errorf("credit default = %q", v)
	}
	if !res.Default[basic.Children[1].ID] {
		t.Error("credit not marked as default content")
	}
	sem := basic.Children[2].Children[0]
	if got := childLabels(sem); got != "title,year,term,instructor" {
		t.Fatalf("semester children = %s", got)
	}
	if v, _ := sem.Children[0].Value(); v != "Databases" {
		t.Errorf("title = %q", v)
	}
	if v, _ := sem.Children[1].Value(); v != embedding.DefaultText {
		t.Errorf("year default = %q", v)
	}
	// The category disjunct follows the OR path mandatory/regular.
	category := course.Children[1]
	if category.Children[0].Label != "mandatory" || category.Children[0].Children[0].Label != "regular" {
		t.Errorf("category path = %s/%s", category.Children[0].Label, category.Children[0].Children[0].Label)
	}
	// idM maps the course node back to the class node.
	srcClass := src.Root.Children[0]
	if res.IDM[course.ID] != srcClass.ID {
		t.Errorf("idM(course) = %d, want class id %d", res.IDM[course.ID], srcClass.ID)
	}
	if res.Fwd[srcClass.ID] != course.ID {
		t.Errorf("Fwd(class) = %d, want course id %d", res.Fwd[srcClass.ID], course.ID)
	}
}

func childLabels(n *xmltree.Node) string {
	var out []string
	for _, c := range n.Children {
		out = append(out, c.Label)
	}
	return strings.Join(out, ",")
}

// TestApplyInjective: σd maps distinct source nodes to distinct target
// nodes (Theorem 4.1).
func TestApplyInjective(t *testing.T) {
	emb := workload.ClassEmbedding()
	src := classDoc(t)
	res, err := emb.Apply(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fwd) != src.Size() {
		t.Errorf("Fwd covers %d source nodes, want all %d", len(res.Fwd), src.Size())
	}
	seen := map[xmltree.NodeID]bool{}
	for _, tgt := range res.Fwd {
		if seen[tgt] {
			t.Fatalf("two source nodes map to target node %d", tgt)
		}
		seen[tgt] = true
	}
}

// TestRoundTrip: σd⁻¹(σd(T)) = T on the Figure 1 examples.
func TestRoundTrip(t *testing.T) {
	emb := workload.ClassEmbedding()
	src := classDoc(t)
	res, err := emb.Apply(src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := emb.Invert(res.Tree)
	if err != nil {
		t.Fatalf("Invert: %v", err)
	}
	if !xmltree.Equal(src, back) {
		t.Errorf("round trip mismatch: %s", xmltree.Diff(src, back))
	}
}

// TestRoundTripProperty: type safety, injectivity and invertibility on
// random instances of both Figure 1 sources (Theorems 4.1, 4.3a).
func TestRoundTripProperty(t *testing.T) {
	for _, tc := range []struct {
		name string
		emb  *embedding.Embedding
	}{
		{"sigma1", workload.ClassEmbedding()},
		{"sigma2", workload.StudentEmbedding()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prop := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				src := xmltree.MustGenerate(tc.emb.Source, r, xmltree.GenOptions{})
				res, err := tc.emb.Apply(src)
				if err != nil {
					t.Logf("seed %d: Apply: %v", seed, err)
					return false
				}
				if err := res.Tree.Validate(tc.emb.Target); err != nil {
					t.Logf("seed %d: type safety violated: %v", seed, err)
					return false
				}
				back, err := tc.emb.Invert(res.Tree)
				if err != nil {
					t.Logf("seed %d: Invert: %v", seed, err)
					return false
				}
				if !xmltree.Equal(src, back) {
					t.Logf("seed %d: %s", seed, xmltree.Diff(src, back))
					return false
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestFigure3cInstanceMapping: two source types sharing one target type,
// distinguished by position qualifiers, still round-trip.
func TestFigure3cInstanceMapping(t *testing.T) {
	var scen workload.Fig3Scenario
	for _, sc := range workload.Figure3() {
		if strings.HasPrefix(sc.Name, "c-") {
			scen = sc
		}
	}
	emb := scen.Build()
	src, err := xmltree.ParseString(`<A><B/><C/></A>`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := emb.Apply(src)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := res.Tree.Validate(emb.Target); err != nil {
		t.Fatalf("conformance: %v", err)
	}
	back, err := emb.Invert(res.Tree)
	if err != nil {
		t.Fatalf("Invert: %v", err)
	}
	if !xmltree.Equal(src, back) {
		t.Errorf("round trip: %s", xmltree.Diff(src, back))
	}
}

// TestFigure3eInstanceMapping: the cycle-unfolding embedding maps and
// inverts correctly.
func TestFigure3eInstanceMapping(t *testing.T) {
	var scen workload.Fig3Scenario
	for _, sc := range workload.Figure3() {
		if strings.HasPrefix(sc.Name, "e-") {
			scen = sc
		}
	}
	emb := scen.Build()
	src, _ := xmltree.ParseString(`<A><B/><C/></A>`)
	res, err := emb.Apply(src)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := res.Tree.Validate(emb.Target); err != nil {
		t.Fatalf("conformance: %v\n%s", err, res.Tree)
	}
	back, err := emb.Invert(res.Tree)
	if err != nil {
		t.Fatalf("Invert: %v", err)
	}
	if !xmltree.Equal(src, back) {
		t.Errorf("round trip: %s", xmltree.Diff(src, back))
	}
}

// TestValidateErrors exercises each validity condition.
func TestValidateErrors(t *testing.T) {
	base := func() *embedding.Embedding { return workload.ClassEmbedding() }
	cases := []struct {
		name string
		mod  func(*embedding.Embedding)
		want string
	}{
		{"non-root lambda", func(e *embedding.Embedding) { e.MapType("db", "courses") }, "target root"},
		{"missing lambda", func(e *embedding.Embedding) { delete(e.Lambda, "title") }, "not total"},
		{"unknown target type", func(e *embedding.Embedding) { e.MapType("title", "nosuch") }, "not a target type"},
		{"missing path", func(e *embedding.Embedding) { delete(e.Paths, embedding.Ref("class", "cno")) }, "no path"},
		{"wrong end label", func(e *embedding.Embedding) { e.SetPath(embedding.Ref("class", "cno"), "basic/credit") }, "ends at"},
		{"not a child", func(e *embedding.Embedding) { e.SetPath(embedding.Ref("class", "cno"), "basic/zzz") }, "not a child"},
		{"or path for concat", func(e *embedding.Embedding) {
			e.MapType("cno", "lab")
			e.SetPath(embedding.Ref("class", "cno"), "category/mandatory/lab")
			e.SetPath(embedding.Ref("cno", embedding.StrChild), "text()")
		}, "OR edge"},
		{"star path fully pinned", func(e *embedding.Embedding) {
			e.MapType("class", "basic").
				SetPath(embedding.Ref("db", "class"), "courses/current/course[position() = 1]/basic")
		}, "unpinned"},
		{"star path missing star", func(e *embedding.Embedding) {
			e.MapType("class", "history").
				SetPath(embedding.Ref("db", "class"), "courses/history")
		}, "STAR path"},
		{"str path to non-str", func(e *embedding.Embedding) {
			e.SetPath(embedding.Ref("cno", embedding.StrChild), "text()")
			e.MapType("cno", "basic")
		}, ""},
		{"element path with text", func(e *embedding.Embedding) { e.SetPath(embedding.Ref("class", "cno"), "basic/cno/text()") }, "text()"},
		{"prefix violation", func(e *embedding.Embedding) {
			e.MapType("cno", "basic").
				SetPath(embedding.Ref("class", "cno"), "basic").
				SetPath(embedding.Ref("cno", embedding.StrChild), "cno/text()")
		}, "prefix-free"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := base()
			tc.mod(e)
			err := e.Validate(nil)
			if err == nil {
				t.Fatal("Validate succeeded, want error")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestValidateDisjunctNeedsORPath: a disjunction edge mapped to a path
// with no OR edge violates the path type condition.
func TestValidateDisjunctNeedsORPath(t *testing.T) {
	src := dtd.MustNew("A", dtd.D("A", dtd.Disj("B", "C")), dtd.D("B", dtd.Empty()), dtd.D("C", dtd.Empty()))
	tgt := dtd.MustNew("A1", dtd.D("A1", dtd.Concat("B1", "C1")), dtd.D("B1", dtd.Empty()), dtd.D("C1", dtd.Empty()))
	e := embedding.New(src, tgt)
	e.MapType("A", "A1").MapType("B", "B1").MapType("C", "C1")
	e.SetPath(embedding.Ref("A", "B"), "B1").SetPath(embedding.Ref("A", "C"), "C1")
	err := e.Validate(nil)
	if err == nil || !strings.Contains(err.Error(), "OR path") {
		t.Errorf("disjunction edge on AND path: err = %v", err)
	}
}

// TestValidateAmbiguousOccurrence: a step to a repeated concat child
// without a position qualifier is rejected; with one it resolves.
func TestValidateAmbiguousOccurrence(t *testing.T) {
	src := dtd.MustNew("A", dtd.D("A", dtd.Concat("B")), dtd.D("B", dtd.Empty()))
	tgt := dtd.MustNew("A1", dtd.D("A1", dtd.Concat("B1", "B1")), dtd.D("B1", dtd.Empty()))
	e := embedding.New(src, tgt)
	e.MapType("A", "A1").MapType("B", "B1")
	e.SetPath(embedding.Ref("A", "B"), "B1")
	if err := e.Validate(nil); err == nil || !strings.Contains(err.Error(), "position qualifier is required") {
		t.Errorf("ambiguous occurrence: err = %v", err)
	}
	e.SetPath(embedding.Ref("A", "B"), "B1[position() = 2]")
	if err := e.Validate(nil); err != nil {
		t.Errorf("pinned occurrence rejected: %v", err)
	}
	e.SetPath(embedding.Ref("A", "B"), "B1[position() = 3]")
	if err := e.Validate(nil); err == nil {
		t.Error("position beyond occurrences accepted")
	}
}

// TestValidateDisjunctDivergence: sibling disjunct paths must diverge
// at an OR edge (the invertibility strengthening).
func TestValidateDisjunctDivergence(t *testing.T) {
	src := dtd.MustNew("A",
		dtd.D("A", dtd.Disj("B", "C")),
		dtd.D("B", dtd.Empty()), dtd.D("C", dtd.Empty()))
	tgt := dtd.MustNew("A1",
		dtd.D("A1", dtd.Concat("U", "W")),
		dtd.D("U", dtd.Disj("B1", "Z1")),
		dtd.D("W", dtd.Disj("C1", "Z2")),
		dtd.D("B1", dtd.Empty()), dtd.D("C1", dtd.Empty()),
		dtd.D("Z1", dtd.Empty()), dtd.D("Z2", dtd.Empty()))
	e := embedding.New(src, tgt)
	e.MapType("A", "A1").MapType("B", "B1").MapType("C", "C1")
	e.SetPath(embedding.Ref("A", "B"), "U/B1").SetPath(embedding.Ref("A", "C"), "W/C1")
	err := e.Validate(nil)
	if err == nil || !strings.Contains(err.Error(), "diverge at a non-OR edge") {
		t.Errorf("divergence at AND edges accepted: %v", err)
	}
	// Diverging at the OR edges under a shared AND prefix is fine.
	tgt2 := dtd.MustNew("A1",
		dtd.D("A1", dtd.Concat("U")),
		dtd.D("U", dtd.Disj("B1", "C1")),
		dtd.D("B1", dtd.Empty()), dtd.D("C1", dtd.Empty()))
	e2 := embedding.New(src, tgt2)
	e2.MapType("A", "A1").MapType("B", "B1").MapType("C", "C1")
	e2.SetPath(embedding.Ref("A", "B"), "U/B1").SetPath(embedding.Ref("A", "C"), "U/C1")
	if err := e2.Validate(nil); err != nil {
		t.Errorf("valid disjunct embedding rejected: %v", err)
	}
}

// TestValidateAtt: λ must respect the similarity matrix.
func TestValidateAtt(t *testing.T) {
	e := workload.ClassEmbedding()
	att := embedding.UniformSim(e.Source, e.Target)
	att.Set("title", "title", 0)
	err := e.Validate(att)
	if err == nil || !strings.Contains(err.Error(), "att") {
		t.Errorf("zero-similarity mapping accepted: %v", err)
	}
}

// TestEmptySourceCompletion: an ε source type whose λ image requires
// structure gets a conforming default subtree, and still inverts.
func TestEmptySourceCompletion(t *testing.T) {
	src := dtd.MustNew("r", dtd.D("r", dtd.Concat("a")), dtd.D("a", dtd.Empty()))
	tgt := dtd.MustNew("r1",
		dtd.D("r1", dtd.Concat("a1")),
		dtd.D("a1", dtd.Concat("x", "y")),
		dtd.D("x", dtd.Str()),
		dtd.D("y", dtd.Star("x")))
	e := embedding.New(src, tgt)
	e.MapType("r", "r1").MapType("a", "a1")
	e.SetPath(embedding.Ref("r", "a"), "a1")
	if err := e.Validate(nil); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	srcDoc, _ := xmltree.ParseString(`<r><a/></r>`)
	res, err := e.Apply(srcDoc)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := res.Tree.Validate(tgt); err != nil {
		t.Fatalf("conformance: %v", err)
	}
	back, err := e.Invert(res.Tree)
	if err != nil {
		t.Fatalf("Invert: %v", err)
	}
	if !xmltree.Equal(srcDoc, back) {
		t.Errorf("round trip: %s", xmltree.Diff(srcDoc, back))
	}
}

// TestApplyRejectsInvalidSource: documents not conforming to the source
// schema are rejected.
func TestApplyRejectsInvalidSource(t *testing.T) {
	emb := workload.ClassEmbedding()
	bad, _ := xmltree.ParseString(`<db><zebra/></db>`)
	if _, err := emb.Apply(bad); err == nil {
		t.Error("Apply accepted a non-conforming source document")
	}
}

// TestInvertRejectsForeignDocument: a target document outside the image
// of σd fails inversion.
func TestInvertRejectsForeignDocument(t *testing.T) {
	emb := workload.ClassEmbedding()
	md, err := embedding.MinDef(emb.Target)
	if err != nil {
		t.Fatal(err)
	}
	tr := &xmltree.Tree{}
	// mindef(school) conforms to the target but its courses/current is
	// empty, which is fine (zero classes) — craft a corrupted document
	// instead: wrong root.
	n, _ := md.Instantiate(tr, "courses")
	tr.Root = n
	if _, err := emb.Invert(tr); err == nil {
		t.Error("Invert accepted a document with the wrong root")
	}
}

// TestInvertZeroChildrenStar: the empty source document (zero classes)
// round-trips; the star prefix is default-filled and yields no children.
func TestInvertZeroChildrenStar(t *testing.T) {
	emb := workload.ClassEmbedding()
	src, _ := xmltree.ParseString(`<db/>`)
	res, err := emb.Apply(src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := emb.Invert(res.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(src, back) {
		t.Errorf("round trip: %s", xmltree.Diff(src, back))
	}
}

// TestSourceEdges enumerates graph plus str edges.
func TestSourceEdges(t *testing.T) {
	refs := embedding.SourceEdges(workload.ClassDTD())
	want := map[string]bool{
		"(db, class)": true, "(class, cno)": true, "(class, title)": true,
		"(class, type)": true, "(cno, #str)": true, "(title, #str)": true,
		"(type, regular)": true, "(type, project)": true,
		"(regular, prereq)": true, "(project, #str)": true, "(prereq, class)": true,
	}
	if len(refs) != len(want) {
		t.Fatalf("got %d edges, want %d: %v", len(refs), len(want), refs)
	}
	for _, r := range refs {
		if !want[r.String()] {
			t.Errorf("unexpected edge %s", r)
		}
	}
}

// TestResolvedKinds: the σ1 paths traverse the expected edge kinds.
func TestResolvedKinds(t *testing.T) {
	e := workload.ClassEmbedding()
	kinds, err := e.ResolvedKinds(embedding.Ref("db", "class"))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(kinds))
	for i, k := range kinds {
		got[i] = k.String()
	}
	if strings.Join(got, ",") != "AND,AND,STAR" {
		t.Errorf("courses/current/course kinds = %v", got)
	}
	kinds, _ = e.ResolvedKinds(embedding.Ref("type", "regular"))
	got = got[:0]
	for _, k := range kinds {
		got = append(got, k.String())
	}
	if strings.Join(got, ",") != "OR,OR" {
		t.Errorf("mandatory/regular kinds = %v", got)
	}
}
