package embedding

import (
	"fmt"

	"repro/internal/dtd"
	"repro/internal/xpath"
)

// Local aliases keep the switch in substitute readable.
const (
	dtdEdgeAND  = dtd.EdgeAND
	dtdEdgeSTAR = dtd.EdgeSTAR
)

// Compose builds the schema-level composition σ = σ2 ∘ σ1 of two
// embeddings σ1 : S1 → S2 and σ2 : S2 → S3: λ = λ2 ∘ λ1, and each
// source edge's path is the δ2-image of its σ1 path — every step of
// path1(A, B) is an edge of S2's schema graph, which σ2 maps to a path
// of S3, and the images concatenate (the function δ of Theorem 4.1
// applied to embedded paths). Pinned star steps pin the iterator of the
// substituted star path; the path-type and prefix-free/divergence
// conditions are preserved by construction, and the result is
// re-validated before being returned.
//
// Composition gives direct mappings for multi-hop integration chains
// (the use the paper cites from Fagin's work on mapping composition):
// σ maps S1 documents straight into S3 with all the usual guarantees.
// Note that σd ≠ σ2d ∘ σ1d as functions on documents — the composed
// mapping fills S3 defaults directly instead of mapping S2's filled
// defaults — but it is type safe, invertible and query preserving in
// its own right.
func Compose(s1, s2 *Embedding) (*Embedding, error) {
	if err := s1.Validate(nil); err != nil {
		return nil, fmt.Errorf("embedding: compose: first mapping invalid: %w", err)
	}
	if err := s2.Validate(nil); err != nil {
		return nil, fmt.Errorf("embedding: compose: second mapping invalid: %w", err)
	}
	if !s1.Target.Equal(s2.Source) {
		return nil, fmt.Errorf("embedding: compose: σ1's target schema differs from σ2's source schema")
	}
	out := New(s1.Source, s2.Target)
	for _, a := range s1.Source.Types {
		out.Lambda[a] = s2.Lambda[s1.Lambda[a]]
	}
	for _, ref := range SourceEdges(s1.Source) {
		steps, err := s1.ResolvedSteps(ref)
		if err != nil {
			return nil, err
		}
		composed, err := substitute(s2, s1.Lambda[ref.Parent], steps, ref.Child == StrChild)
		if err != nil {
			return nil, fmt.Errorf("embedding: compose %s: %w", ref, err)
		}
		out.Paths[ref] = composed
	}
	if err := out.Validate(nil); err != nil {
		return nil, fmt.Errorf("embedding: composition is not a valid embedding: %w", err)
	}
	return out, nil
}

// substitute maps a resolved S2 path (starting below the S2 type
// `from`) to its δ2-image in S3. For str edges the final text() segment
// becomes path2(E, str) of the S2 type E the element steps end at.
func substitute(s2 *Embedding, from string, steps []PathStep, strEdge bool) (xpath.Path, error) {
	var out xpath.Path
	cur := from
	for _, st := range steps {
		// The S2 edge this step traverses: for AND steps the occurrence
		// is part of the edge identity; star edges are a single edge
		// whose position (if any) pins the substituted iterator.
		edgeOcc, pin := 1, 0
		switch {
		case st.Kind == dtdEdgeAND:
			edgeOcc = st.Occ
		case st.Kind == dtdEdgeSTAR:
			pin = st.Occ // 0 = iterator, stays unpinned
		}
		edge := EdgeRef{Parent: cur, Child: st.Label, Occ: edgeOcc}
		segment, err := s2.ResolvedSteps(edge)
		if err != nil {
			return xpath.Path{}, fmt.Errorf("σ2 lacks a path for edge %s: %w", edge, err)
		}
		out.Steps = append(out.Steps, renderSegment(segment, pin)...)
		cur = st.Label
	}
	if strEdge {
		edge := EdgeRef{Parent: cur, Child: StrChild, Occ: 1}
		segment, err := s2.ResolvedSteps(edge)
		if err != nil {
			return xpath.Path{}, fmt.Errorf("σ2 lacks a str path for %s: %w", cur, err)
		}
		out.Steps = append(out.Steps, renderSegment(segment, 1)...)
		out.Text = true
	}
	return out, nil
}

// renderSegment converts the resolved image of one S2 edge into
// syntactic steps. pin is the position of the original S2 step: when
// the original step was pinned (pin > 0) the segment's iterator takes
// that position; when it was the iterator (pin == 0) the segment's
// iterator stays unpinned.
func renderSegment(segment []PathStep, pin int) []xpath.Step {
	out := make([]xpath.Step, 0, len(segment))
	for _, s := range segment {
		step := xpath.Step{Label: s.Label}
		switch {
		case s.Occ == 0 && pin > 0:
			step.Pos = pin
		case s.Occ == 0:
			// Iterator stays unpinned.
		case s.NeedsPos:
			step.Pos = s.Occ
		}
		out = append(out, step)
	}
	return out
}
