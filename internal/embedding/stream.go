package embedding

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/dtd"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/xmltree"
)

// Streaming instance mapping: σd applied during tokenization instead
// of over a materialized tree. The paper's InstMap (§4.2) is
// structurally top-down — each source node is replaced by a production
// fragment whose shape depends only on the source type's production —
// which puts it in the top-down transducer class of Martens & Neven
// and makes it streamable with O(depth) state.
//
// CompileStream exploits that: for every source type it runs the exact
// fragment construction the tree mapper uses (insertSteps + fill, see
// instmap.go) once, over placeholder children, and flattens the
// resulting static skeleton into a program of emit ops with holes
// where source content is spliced in. Because the source document
// conforms to the source DTD, the children of a concatenation node
// arrive in exactly production order, so in the common case the holes
// appear in arrival order and the engine never buffers: it interleaves
// static output with recursive descent, holding only the tokenizer's
// and emitter's O(depth) stacks. Only a production whose embedded
// paths genuinely reorder siblings in the target falls back to
// buffering its children as token slices, charged against
// guard.Limits and reported in StreamStats / xse_stream_* metrics.
//
// Equivalence with Apply is by construction — the skeletons come from
// the same mapper code — and is enforced continuously by oracle
// property #9 (stream-differential) and the corpus cross-check.

// opcode discriminates compiled stream ops.
type opcode uint8

const (
	// opStart emits a start tag (str = label).
	opStart opcode = iota
	// opEnd closes the innermost emitted element.
	opEnd
	// opText emits a static text node (str = value; default fills).
	opText
	// opTextHole emits the current source node's PCDATA (str sources).
	opTextHole
	// opChild recursively maps the arg-th source child here.
	opChild
)

// streamOp is one compiled instruction.
type streamOp struct {
	code opcode
	str  string
	arg  int
}

// compiledProd is the per-source-type program: the static fragment
// skeleton with holes, in one of three shapes depending on the source
// production kind.
type compiledProd struct {
	kind     dtd.Kind
	children []string // expected child labels (concat: arrival order; star: the one child; disj: disjuncts)

	// frag serves str, ε and concatenation sources.
	frag []streamOp
	// reorder marks a concatenation whose holes are not in arrival
	// order; the engine buffers the children before executing frag.
	reorder bool
	// variants maps each disjunct label to its program (one hole).
	variants map[string][]streamOp
	// prefix/segment/suffix serve star sources: prefix, then one
	// segment per source child, then suffix.
	prefix, segment, suffix []streamOp
}

// StreamProgram is a compiled embedding: one program per source type,
// immutable after CompileStream and safe for concurrent Run calls.
type StreamProgram struct {
	src   *dtd.DTD
	prods map[string]*compiledProd

	mmu  sync.Mutex
	mreg *obs.Registry
	m    *streamMetrics
}

// StreamOptions configure one Run.
type StreamOptions struct {
	// Limits bound the tokenizer (depth, nodes, input bytes) and the
	// buffered-fallback charge; zero fields take the guard defaults.
	Limits guard.Limits
	// Obs selects the metrics registry: nil uses the process registry
	// (obs.Default()); obs.Nop() disables instrumentation.
	Obs *obs.Registry
}

// StreamStats reports one streaming migration.
type StreamStats struct {
	Tokens   int64 // source tokens consumed
	Nodes    int   // source nodes (elements + text) seen
	MaxDepth int   // deepest source nesting
	InBytes  int64 // raw input bytes
	OutBytes int64 // serialized output bytes
	// Fallbacks counts buffered-subtree fallbacks taken (reordering
	// productions encountered at instance level).
	Fallbacks int
	// PeakBufferedBytes is the high-water mark of buffered source
	// subtree bytes; 0 for a fully streamed document, and independent
	// of document size whenever no production reorders.
	PeakBufferedBytes int
}

// StreamError tags an engine failure with the pipeline stage it maps
// to: "parse" (tokenizer), "map" (conformance or program) or "write"
// (emitter). Unwrap exposes the underlying error, so guard.LimitError
// and guard.CancelError classification is unaffected.
type StreamError struct {
	Stage string
	Err   error
}

func (e *StreamError) Error() string { return fmt.Sprintf("stream %s: %v", e.Stage, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *StreamError) Unwrap() error { return e.Err }

// StreamApply compiles the embedding and streams one document from r
// to w: the output bytes are identical to Apply followed by
// Tree.Write. For repeated use (batch migration, the daemon), compile
// once with CompileStream and call Run per document.
func StreamApply(ctx context.Context, e *Embedding, r io.Reader, w io.Writer) (StreamStats, error) {
	p, err := e.CompileStream()
	if err != nil {
		return StreamStats{}, err
	}
	return p.Run(ctx, r, w, StreamOptions{})
}

// CompileStream validates the embedding and compiles its per-production
// actions into a StreamProgram. The fragment skeletons are built by the
// same mapper machinery Apply uses (copy construction, longest-prefix
// slot merging, minimum-default fill), so the compiled output agrees
// with the tree path byte for byte.
func (e *Embedding) CompileStream() (*StreamProgram, error) {
	if err := e.ensureResolved(); err != nil {
		return nil, err
	}
	if err := e.checkPrefixFreedom(); err != nil {
		return nil, err
	}
	md, err := MinDef(e.Target)
	if err != nil {
		return nil, err
	}
	p := &StreamProgram{src: e.Source, prods: make(map[string]*compiledProd, len(e.Source.Types))}
	for _, a := range e.Source.Types {
		cp, err := e.compileProd(a, md)
		if err != nil {
			return nil, fmt.Errorf("embedding: compile stream program for %q: %w", a, err)
		}
		p.prods[a] = cp
	}
	return p, nil
}

// fragCompiler builds one production fragment over placeholders and
// flattens it to ops.
type fragCompiler struct {
	m        *mapper
	holes    map[*xmltree.Node]int
	textHole *xmltree.Node
	iterAt   *xmltree.Node
	split    int
	ops      []streamOp
}

func (e *Embedding) newFragCompiler(md MinDefs) *fragCompiler {
	return &fragCompiler{
		m: &mapper{
			e:   e,
			ctx: context.Background(),
			t:   &xmltree.Tree{},
			md:  md,
			res: &Result{
				IDM:     make(map[xmltree.NodeID]xmltree.NodeID),
				Fwd:     make(map[xmltree.NodeID]xmltree.NodeID),
				Default: make(map[xmltree.NodeID]bool),
			},
			meta: make(map[*xmltree.Node]nodeMeta),
		},
		holes: make(map[*xmltree.Node]int),
	}
}

// placeholder attaches a completed hole node for the idx-th source
// child at the final slot of steps, walking the earlier steps through
// the shared skeleton exactly as insertChild does.
func (fc *fragCompiler) placeholder(base *xmltree.Node, steps []resolvedStep, idx int) error {
	end, err := fc.m.insertSteps(base, steps[:len(steps)-1])
	if err != nil {
		return err
	}
	last := steps[len(steps)-1]
	ph := fc.m.t.NewElement(last.label)
	fc.m.meta[ph] = nodeMeta{slot: last.slot(), complete: true}
	xmltree.Append(end, ph)
	fc.holes[ph] = idx
	return nil
}

// walk flattens the filled fragment into ops.
func (fc *fragCompiler) walk(n *xmltree.Node) {
	if idx, ok := fc.holes[n]; ok {
		fc.ops = append(fc.ops, streamOp{code: opChild, arg: idx})
		return
	}
	if n.IsText() {
		if n == fc.textHole {
			fc.ops = append(fc.ops, streamOp{code: opTextHole})
		} else {
			fc.ops = append(fc.ops, streamOp{code: opText, str: n.Text})
		}
		return
	}
	fc.ops = append(fc.ops, streamOp{code: opStart, str: n.Label})
	if n == fc.iterAt {
		fc.split = len(fc.ops)
	}
	for _, c := range n.Children {
		fc.walk(c)
	}
	fc.ops = append(fc.ops, streamOp{code: opEnd})
}

// holeOrder returns the opChild args in emission order.
func holeOrder(ops []streamOp) []int {
	var order []int
	for _, op := range ops {
		if op.code == opChild {
			order = append(order, op.arg)
		}
	}
	return order
}

func identity(order []int) bool {
	for i, v := range order {
		if v != i {
			return false
		}
	}
	return true
}

func (e *Embedding) compileProd(a string, md MinDefs) (*compiledProd, error) {
	prod := e.Source.Prods[a]
	cp := &compiledProd{kind: prod.Kind, children: prod.Children}
	switch prod.Kind {
	case dtd.KindStr:
		fc := e.newFragCompiler(md)
		rt := fc.m.t.NewElement(e.Lambda[a])
		steps := e.resolved[EdgeRef{Parent: a, Child: StrChild, Occ: 1}]
		end, err := fc.m.insertSteps(rt, steps)
		if err != nil {
			return nil, err
		}
		tx := fc.m.t.NewText("")
		fc.textHole = tx
		xmltree.Append(end, tx)
		if err := fc.m.fill(rt); err != nil {
			return nil, err
		}
		fc.walk(rt)
		cp.frag = fc.ops

	case dtd.KindEmpty:
		fc := e.newFragCompiler(md)
		rt := fc.m.t.NewElement(e.Lambda[a])
		if err := fc.m.fill(rt); err != nil {
			return nil, err
		}
		fc.walk(rt)
		cp.frag = fc.ops

	case dtd.KindConcat:
		fc := e.newFragCompiler(md)
		rt := fc.m.t.NewElement(e.Lambda[a])
		// Conformance guarantees the instance children arrive exactly
		// as prod.Children, so the occurrence numbering is static.
		occ := make(map[string]int, len(prod.Children))
		for i, c := range prod.Children {
			occ[c]++
			ref := EdgeRef{Parent: a, Child: c, Occ: occ[c]}
			steps, ok := e.resolved[ref]
			if !ok {
				return nil, fmt.Errorf("embedding: no resolved path for edge %s", ref)
			}
			if err := fc.placeholder(rt, steps, i); err != nil {
				return nil, err
			}
		}
		if err := fc.m.fill(rt); err != nil {
			return nil, err
		}
		fc.walk(rt)
		cp.frag = fc.ops
		cp.reorder = !identity(holeOrder(fc.ops))

	case dtd.KindDisj:
		cp.variants = make(map[string][]streamOp, len(prod.Children))
		for _, d := range prod.Children {
			fc := e.newFragCompiler(md)
			rt := fc.m.t.NewElement(e.Lambda[a])
			ref := EdgeRef{Parent: a, Child: d, Occ: 1}
			steps, ok := e.resolved[ref]
			if !ok {
				return nil, fmt.Errorf("embedding: no resolved path for edge %s", ref)
			}
			if err := fc.placeholder(rt, steps, 0); err != nil {
				return nil, err
			}
			if err := fc.m.fill(rt); err != nil {
				return nil, err
			}
			fc.walk(rt)
			cp.variants[d] = fc.ops
		}

	case dtd.KindStar:
		ref := EdgeRef{Parent: a, Child: prod.Children[0], Occ: 1}
		steps, ok := e.resolved[ref]
		if !ok {
			return nil, fmt.Errorf("embedding: no resolved path for edge %s", ref)
		}
		it := iteratorIndex(steps)
		// Skeleton with zero iterations: everything around the
		// iteration point is static (the star-typed target parent of
		// the iterator gains no default children, so iterations drop
		// exactly between its start and end tags).
		fc := e.newFragCompiler(md)
		rt := fc.m.t.NewElement(e.Lambda[a])
		prefixEnd, err := fc.m.insertSteps(rt, steps[:it])
		if err != nil {
			return nil, err
		}
		fc.iterAt = prefixEnd
		if err := fc.m.fill(rt); err != nil {
			return nil, err
		}
		fc.walk(rt)
		cp.prefix, cp.suffix = fc.ops[:fc.split:fc.split], fc.ops[fc.split:]
		// Per-iteration segment: identical for every source child (the
		// per-child occurrence only matters to the parent's ordering,
		// which is already arrival order).
		if it == len(steps)-1 {
			cp.segment = []streamOp{{code: opChild}}
		} else {
			fc2 := e.newFragCompiler(md)
			iterNode := fc2.m.t.NewElement(steps[it].label)
			if err := fc2.placeholder(iterNode, steps[it+1:], 0); err != nil {
				return nil, err
			}
			if err := fc2.m.fill(iterNode); err != nil {
				return nil, err
			}
			fc2.walk(iterNode)
			cp.segment = fc2.ops
		}
	}
	return cp, nil
}

// tokenSource abstracts the engine's input: the live tokenizer, or a
// cursor over a buffered subtree during a reorder fallback.
type tokenSource interface {
	Next() (xmltree.Tok, error)
	Unread(xmltree.Tok)
}

// tokCursor replays a buffered token slice.
type tokCursor struct {
	toks []xmltree.Tok
	i    int
}

func (c *tokCursor) Next() (xmltree.Tok, error) {
	if c.i >= len(c.toks) {
		return xmltree.Tok{}, fmt.Errorf("embedding: stream: internal: buffered subtree exhausted")
	}
	t := c.toks[c.i]
	c.i++
	return t, nil
}

func (c *tokCursor) Unread(xmltree.Tok) { c.i-- }

// engine is one Run's mutable state.
type engine struct {
	p    *StreamProgram
	ctx  context.Context
	lim  guard.Limits
	emit *xmltree.Emitter

	fallbacks int
	buffered  int
	peak      int
}

// Run streams one document from r to w under the compiled program.
// The output is byte-identical to ApplyCtx + Tree.Write on the same
// document; errors carry a *StreamError stage tag and unwrap to the
// same guard error types as the tree path.
func (p *StreamProgram) Run(ctx context.Context, r io.Reader, w io.Writer, opts StreamOptions) (StreamStats, error) {
	lim := opts.Limits.WithDefaults()
	z := xmltree.NewTokenizerLimits(r, lim)
	em := xmltree.NewEmitter(w)
	g := &engine{p: p, ctx: ctx, lim: lim, emit: em}
	err := g.runDoc(z)
	ts := z.Stats()
	stats := StreamStats{
		Tokens:            ts.Tokens,
		Nodes:             ts.Nodes,
		MaxDepth:          ts.MaxDepth,
		InBytes:           ts.InputBytes,
		OutBytes:          em.Bytes(),
		Fallbacks:         g.fallbacks,
		PeakBufferedBytes: g.peak,
	}
	p.observe(obs.OrDefault(opts.Obs), stats)
	return stats, err
}

func (g *engine) runDoc(z *xmltree.Tokenizer) error {
	tok, err := g.next(z)
	if err != nil {
		return err
	}
	if tok.Kind != xmltree.TokStart {
		return g.confErrf("no root element")
	}
	if tok.Name != g.p.src.Root {
		return g.confErrf("root is %q, want %q", tok.Name, g.p.src.Root)
	}
	if err := g.node(z, tok.Name); err != nil {
		return err
	}
	tok, err = g.next(z)
	if err != nil {
		return err
	}
	if tok.Kind != xmltree.TokEOF {
		return g.confErrf("content after the root element")
	}
	if err := g.emit.Flush(); err != nil {
		return &StreamError{Stage: "write", Err: err}
	}
	return nil
}

func (g *engine) next(in tokenSource) (xmltree.Tok, error) {
	tok, err := in.Next()
	if err != nil {
		return tok, &StreamError{Stage: "parse", Err: err}
	}
	return tok, nil
}

// confErrf reports a source-conformance violation, phrased like the
// tree path's upfront Validate failure.
func (g *engine) confErrf(format string, args ...any) error {
	return &StreamError{
		Stage: "map",
		Err:   fmt.Errorf("embedding: source document does not conform to the source schema: %s", fmt.Sprintf(format, args...)),
	}
}

func tokDesc(t xmltree.Tok) string {
	switch t.Kind {
	case xmltree.TokStart:
		return fmt.Sprintf("element %q", t.Name)
	case xmltree.TokText:
		return "text"
	case xmltree.TokEnd:
		return "end of element"
	}
	return "end of document"
}

func (g *engine) expectEnd(in tokenSource, label string) error {
	tok, err := g.next(in)
	if err != nil {
		return err
	}
	if tok.Kind != xmltree.TokEnd {
		return g.confErrf("unexpected %s in %q", tokDesc(tok), label)
	}
	return nil
}

// node maps one source node whose start tag has been consumed,
// consuming through its matching end tag and emitting its production
// fragment.
func (g *engine) node(in tokenSource, label string) error {
	if err := guard.CheckCtx(g.ctx, "embedding: stream"); err != nil {
		return &StreamError{Stage: "map", Err: err}
	}
	cp := g.p.prods[label]
	if cp == nil {
		return g.confErrf("element %q is not defined by the DTD", label)
	}
	switch cp.kind {
	case dtd.KindStr:
		tok, err := g.next(in)
		if err != nil {
			return err
		}
		if tok.Kind != xmltree.TokText {
			return g.confErrf("%q must contain exactly one text node", label)
		}
		if err := g.expectEnd(in, label); err != nil {
			return err
		}
		return g.exec(cp.frag, nil, tok.Text)

	case dtd.KindEmpty:
		tok, err := g.next(in)
		if err != nil {
			return err
		}
		if tok.Kind != xmltree.TokEnd {
			return g.confErrf("%q must be empty, contains %s", label, tokDesc(tok))
		}
		return g.exec(cp.frag, nil, "")

	case dtd.KindConcat:
		if cp.reorder {
			return g.nodeBuffered(in, label, cp)
		}
		// Holes are in arrival order: splice each child as it streams
		// past, O(depth) state.
		if err := g.exec(cp.frag, func(idx int) error {
			tok, err := g.next(in)
			if err != nil {
				return err
			}
			if tok.Kind != xmltree.TokStart || tok.Name != cp.children[idx] {
				return g.confErrf("child %d of %q is %s, want %q", idx+1, label, tokDesc(tok), cp.children[idx])
			}
			return g.node(in, tok.Name)
		}, ""); err != nil {
			return err
		}
		return g.expectEnd(in, label)

	case dtd.KindDisj:
		tok, err := g.next(in)
		if err != nil {
			return err
		}
		if tok.Kind != xmltree.TokStart {
			return g.confErrf("disjunction element %q must have exactly one element child, contains %s", label, tokDesc(tok))
		}
		v, ok := cp.variants[tok.Name]
		if !ok {
			return g.confErrf("child %q of %q is not a permitted disjunct", tok.Name, label)
		}
		if err := g.exec(v, func(int) error {
			return g.node(in, tok.Name)
		}, ""); err != nil {
			return err
		}
		return g.expectEnd(in, label)

	case dtd.KindStar:
		if err := g.exec(cp.prefix, nil, ""); err != nil {
			return err
		}
		for {
			tok, err := g.next(in)
			if err != nil {
				return err
			}
			if tok.Kind == xmltree.TokEnd {
				break
			}
			if tok.Kind != xmltree.TokStart || tok.Name != cp.children[0] {
				return g.confErrf("child of %q is %s, want %q", label, tokDesc(tok), cp.children[0])
			}
			if err := g.exec(cp.segment, func(int) error {
				return g.node(in, tok.Name)
			}, ""); err != nil {
				return err
			}
		}
		return g.exec(cp.suffix, nil, "")
	}
	return g.confErrf("element %q has an unsupported production", label)
}

// nodeBuffered is the reorder fallback: collect every child subtree as
// a token slice (charged against the input-bytes limit), then execute
// the fragment with random access to the buffered children.
func (g *engine) nodeBuffered(in tokenSource, label string, cp *compiledProd) error {
	g.fallbacks++
	bufs := make([][]xmltree.Tok, len(cp.children))
	total := 0
	for i, want := range cp.children {
		tok, err := g.next(in)
		if err != nil {
			return err
		}
		if tok.Kind != xmltree.TokStart || tok.Name != want {
			return g.confErrf("child %d of %q is %s, want %q", i+1, label, tokDesc(tok), want)
		}
		buf, n, err := g.collect(in, tok)
		if err != nil {
			return err
		}
		bufs[i] = buf
		total += n
	}
	if err := g.expectEnd(in, label); err != nil {
		return err
	}
	err := g.exec(cp.frag, func(idx int) error {
		cur := &tokCursor{toks: bufs[idx]}
		tok, err := cur.Next()
		if err != nil {
			return &StreamError{Stage: "map", Err: err}
		}
		return g.node(cur, tok.Name)
	}, "")
	g.buffered -= total
	return err
}

// tokBytes approximates a token's share of the input representation,
// the unit the buffered fallback is charged in.
func tokBytes(t xmltree.Tok) int {
	return len(t.Name) + len(t.Text) + 4
}

// collect reads one complete subtree (start already consumed, passed
// as the first token), charging each buffered token against the
// input-bytes limit.
func (g *engine) collect(in tokenSource, start xmltree.Tok) ([]xmltree.Tok, int, error) {
	toks := []xmltree.Tok{start}
	n := tokBytes(start)
	depth := 1
	for depth > 0 {
		tok, err := g.next(in)
		if err != nil {
			return nil, 0, err
		}
		switch tok.Kind {
		case xmltree.TokStart:
			depth++
		case xmltree.TokEnd:
			depth--
		case xmltree.TokEOF:
			return nil, 0, g.confErrf("unexpected end of document")
		}
		toks = append(toks, tok)
		n += tokBytes(tok)
	}
	g.buffered += n
	if g.buffered > g.peak {
		g.peak = g.buffered
	}
	if err := g.lim.CheckInputBytes(g.buffered, "embedding: stream: buffered subtrees"); err != nil {
		g.buffered -= n
		return nil, 0, &StreamError{Stage: "map", Err: err}
	}
	return toks, n, nil
}

// exec runs a compiled op sequence. onChild handles opChild holes
// (nil for programs without holes); text fills opTextHole.
func (g *engine) exec(ops []streamOp, onChild func(int) error, text string) error {
	for i := range ops {
		op := &ops[i]
		var err error
		switch op.code {
		case opStart:
			err = g.emit.Start(op.str)
		case opEnd:
			err = g.emit.End()
		case opText:
			err = g.emit.Text(op.str)
		case opTextHole:
			err = g.emit.Text(text)
		case opChild:
			if cerr := onChild(op.arg); cerr != nil {
				return cerr
			}
			continue
		}
		if err != nil {
			return &StreamError{Stage: "write", Err: err}
		}
	}
	return nil
}

// streamMetrics are the xse_stream_* instruments, resolved once per
// registry and cached on the program so the per-document path does no
// registry lookups.
type streamMetrics struct {
	docs         *obs.Counter
	tokens       *obs.Counter
	fallbacks    *obs.Counter
	bufferedPeak *obs.Histogram
	maxDepth     *obs.Gauge
}

// bufferedBuckets spans "nothing buffered" through the default input
// budget in powers of four.
var bufferedBuckets = []float64{0, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20}

func newStreamMetrics(r *obs.Registry) *streamMetrics {
	return &streamMetrics{
		docs: r.Counter("xse_stream_docs_total",
			"Documents migrated by the streaming instance mapper."),
		tokens: r.Counter("xse_stream_tokens_total",
			"Source tokens consumed by streaming migrations."),
		fallbacks: r.Counter("xse_stream_fallbacks_total",
			"Buffered-subtree fallbacks taken for reordering productions."),
		bufferedPeak: r.Histogram("xse_stream_buffered_peak_bytes",
			"Per-document peak bytes of buffered source subtrees.", bufferedBuckets),
		maxDepth: r.Gauge("xse_stream_max_depth",
			"Deepest source nesting observed by any streaming migration."),
	}
}

func (p *StreamProgram) observe(reg *obs.Registry, s StreamStats) {
	p.mmu.Lock()
	if p.mreg != reg {
		p.m = newStreamMetrics(reg)
		p.mreg = reg
	}
	m := p.m
	p.mmu.Unlock()
	m.docs.Inc()
	m.tokens.Add(uint64(s.Tokens))
	if s.Fallbacks > 0 {
		m.fallbacks.Add(uint64(s.Fallbacks))
	}
	m.bufferedPeak.Observe(float64(s.PeakBufferedBytes))
	if d := int64(s.MaxDepth); d > m.maxDepth.Value() {
		// Best-effort high-water mark; a lost race only under-reports
		// by one concurrent document.
		m.maxDepth.Set(d)
	}
}
