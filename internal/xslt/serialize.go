package xslt

import (
	"fmt"
	"strings"

	"repro/internal/xpath"
)

// Serialize renders the stylesheet as a standalone XSLT 1.0 document,
// matching the shape of the paper's Examples 4.5 and 4.6. The emitted
// markup is for interoperability and inspection; execution uses the
// in-memory form via Run.
func (s *Stylesheet) Serialize() string {
	var b strings.Builder
	b.WriteString(`<?xml version="1.0"?>` + "\n")
	b.WriteString(`<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">` + "\n")
	for _, t := range sortTemplatesForDisplay(s.Templates) {
		fmt.Fprintf(&b, `  <xsl:template match=%q`, t.Match.String())
		if t.Mode != "" {
			fmt.Fprintf(&b, ` mode=%q`, t.Mode)
		}
		b.WriteString(">\n")
		for _, o := range t.Output {
			writeOut(&b, o, 4)
		}
		b.WriteString("  </xsl:template>\n")
	}
	b.WriteString("</xsl:stylesheet>\n")
	return b.String()
}

func writeOut(b *strings.Builder, o *Out, indent int) {
	pad := strings.Repeat(" ", indent)
	switch {
	case o.Apply != nil:
		fmt.Fprintf(b, `%s<xsl:apply-templates select=%q`, pad, xpath.String(o.Apply.Select))
		if o.Apply.Mode != "" {
			fmt.Fprintf(b, ` mode=%q`, o.Apply.Mode)
		}
		b.WriteString("/>\n")
	case o.CopyText:
		fmt.Fprintf(b, "%s<xsl:value-of select=\".\"/>\n", pad)
	case o.Label == "":
		fmt.Fprintf(b, "%s%s\n", pad, o.Text)
	default:
		if len(o.Children) == 0 {
			fmt.Fprintf(b, "%s<%s/>\n", pad, o.Label)
			return
		}
		fmt.Fprintf(b, "%s<%s>\n", pad, o.Label)
		for _, c := range o.Children {
			writeOut(b, c, indent+2)
		}
		fmt.Fprintf(b, "%s</%s>\n", pad, o.Label)
	}
}
