// Package xslt implements the XSLT processing model of §4.3 — template
// rules (match pattern, mode, output fragment with apply-templates
// nodes) driven by the replacement semantics of Wadler's formal model —
// together with generators that compile a valid schema embedding into
// stylesheets for the instance mapping σd and its inverse σd⁻¹, and a
// serializer emitting real <xsl:...> markup.
//
// The engine supports exactly the fragment the paper's constructions
// need: match patterns that are text(), a label, or a label with an
// existence guard (an X_R path); modes; apply-templates with an X_R
// select expression and a mode; and literal output fragments.
package xslt

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/guard"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Pattern is a match pattern: text(), an element label, or a label
// guarded by the existence of an X_R path (label[guard]).
type Pattern struct {
	// Text matches text nodes; Label and Guard are ignored.
	Text bool
	// Label matches elements with this tag.
	Label string
	// Guard, when non-zero, additionally requires the path to select at
	// least one node from the matched element.
	Guard xpath.Path
}

// Matches reports whether the pattern matches the node.
func (p Pattern) Matches(n *xmltree.Node) bool {
	if p.Text {
		return n.IsText()
	}
	if n.IsText() || n.Label != p.Label {
		return false
	}
	if !p.Guard.IsZero() {
		return len(p.Guard.EvalPath(n)) > 0
	}
	return true
}

// Priority orders overlapping patterns: guarded label > label > text.
func (p Pattern) Priority() int {
	switch {
	case !p.Guard.IsZero():
		return 2
	case p.Text:
		return 1
	default:
		return 1
	}
}

func (p Pattern) String() string {
	if p.Text {
		return "text()"
	}
	if !p.Guard.IsZero() {
		return fmt.Sprintf("%s[%s]", p.Label, p.Guard)
	}
	return p.Label
}

// Out is one node of a template's output fragment.
type Out struct {
	// Element output: Label plus Children.
	Label    string
	Children []*Out
	// Literal text output (when Label == "" and Apply == nil and
	// CopyText is false).
	Text string
	// Apply marks an apply-templates instruction.
	Apply *Apply
	// CopyText emits the context text node's value (the final
	// text-copying rule of §4.3).
	CopyText bool
}

// Apply is an apply-templates node: evaluate Select from the current
// context node and process the selected nodes with templates of Mode.
type Apply struct {
	Select xpath.Expr
	Mode   string

	// compileOnce lazily builds the compiled form of Select the first
	// time this instruction executes; every later execution (each
	// selected node of each document the stylesheet processes) reuses
	// the plan and its pooled evaluation scratch. Apply values are
	// always handled by pointer, so the once is never copied.
	compileOnce sync.Once
	prog        *xpath.Program
}

// program returns the compiled select expression, compiling on first
// use. Safe for concurrent template instantiation.
func (a *Apply) program() *xpath.Program {
	a.compileOnce.Do(func() { a.prog = xpath.Compile(a.Select) })
	return a.prog
}

// Element builds a literal element output node.
func Element(label string, children ...*Out) *Out {
	return &Out{Label: label, Children: children}
}

// Literal builds a literal text output node.
func Literal(text string) *Out { return &Out{Text: text} }

// ApplyTemplates builds an apply-templates output node.
func ApplyTemplates(sel xpath.Expr, mode string) *Out {
	return &Out{Apply: &Apply{Select: sel, Mode: mode}}
}

// Template is a rule (match, mode, output).
type Template struct {
	Match  Pattern
	Mode   string
	Output []*Out
}

// Stylesheet is an ordered set of template rules. Rule selection picks
// the highest-priority matching rule of the requested mode; among equal
// priorities the earliest rule wins.
type Stylesheet struct {
	Templates []*Template
}

// Add appends a rule.
func (s *Stylesheet) Add(t *Template) { s.Templates = append(s.Templates, t) }

// Run executes the stylesheet on a document: it applies templates to
// the root in the default mode and returns the output document. It is
// an error for a selected node to match no rule (the generated
// stylesheets are complete; a miss indicates a document outside the
// mapping's domain).
func (s *Stylesheet) Run(doc *xmltree.Tree) (*xmltree.Tree, error) {
	return s.RunCtx(context.Background(), doc)
}

// RunCtx is Run under a context: cancellation is observed once per
// processed source node and surfaces as a *guard.CancelError matching
// the context's error under errors.Is. A Stylesheet may execute
// concurrently over different documents; compiled select expressions
// are shared across runs.
func (s *Stylesheet) RunCtx(ctx context.Context, doc *xmltree.Tree) (*xmltree.Tree, error) {
	if doc.Root == nil {
		return nil, fmt.Errorf("xslt: empty input document")
	}
	out := &xmltree.Tree{}
	nodes, err := s.apply(ctx, out, []*xmltree.Node{doc.Root}, "")
	if err != nil {
		return nil, err
	}
	if len(nodes) != 1 {
		return nil, fmt.Errorf("xslt: stylesheet produced %d root nodes, want 1", len(nodes))
	}
	out.Root = nodes[0]
	return out, nil
}

// apply processes the source nodes with rules of the mode and returns
// the produced output forest.
func (s *Stylesheet) apply(ctx context.Context, out *xmltree.Tree, nodes []*xmltree.Node, mode string) ([]*xmltree.Node, error) {
	var produced []*xmltree.Node
	for _, n := range nodes {
		if err := guard.CheckCtx(ctx, "xslt: run"); err != nil {
			return nil, err
		}
		t := s.lookup(n, mode)
		if t == nil {
			desc := n.Label
			if n.IsText() {
				desc = fmt.Sprintf("text %q", n.Text)
			}
			return nil, fmt.Errorf("xslt: no template matches %s in mode %q", desc, mode)
		}
		frag, err := s.instantiate(ctx, out, t.Output, n)
		if err != nil {
			return nil, err
		}
		produced = append(produced, frag...)
	}
	return produced, nil
}

func (s *Stylesheet) lookup(n *xmltree.Node, mode string) *Template {
	var best *Template
	for _, t := range s.Templates {
		if t.Mode != mode || !t.Match.Matches(n) {
			continue
		}
		if best == nil || t.Match.Priority() > best.Match.Priority() {
			best = t
		}
	}
	return best
}

func (s *Stylesheet) instantiate(ctx context.Context, out *xmltree.Tree, frag []*Out, node *xmltree.Node) ([]*xmltree.Node, error) {
	var produced []*xmltree.Node
	for _, o := range frag {
		switch {
		case o.Apply != nil:
			sel := o.Apply.program().Run(node)
			sub, err := s.apply(ctx, out, sel, o.Apply.Mode)
			if err != nil {
				return nil, err
			}
			produced = append(produced, sub...)
		case o.CopyText:
			if !node.IsText() {
				return nil, fmt.Errorf("xslt: text copy on non-text node %q", node.Label)
			}
			produced = append(produced, out.NewText(node.Text))
		case o.Label == "":
			produced = append(produced, out.NewText(o.Text))
		default:
			el := out.NewElement(o.Label)
			children, err := s.instantiate(ctx, out, o.Children, node)
			if err != nil {
				return nil, err
			}
			for _, c := range children {
				xmltree.Append(el, c)
			}
			produced = append(produced, el)
		}
	}
	return produced, nil
}
