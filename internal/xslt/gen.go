package xslt

import (
	"fmt"
	"sort"

	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// ForwardStylesheet compiles a valid schema embedding into an XSLT
// stylesheet computing the instance mapping σd (§4.3, "An XSLT Template
// for σd"): one rule per concatenation/str/ε source type, one rule per
// disjunct of each disjunction type (guarded by the presence of that
// child), and a prefix/suffix rule pair per star type, with minimum
// default instances inlined as literal output.
func ForwardStylesheet(emb *embedding.Embedding) (*Stylesheet, error) {
	if err := emb.Validate(nil); err != nil {
		return nil, err
	}
	md, err := embedding.MinDef(emb.Target)
	if err != nil {
		return nil, err
	}
	g := &fwdGen{emb: emb, md: md, sheet: &Stylesheet{}}
	for _, a := range emb.Source.Types {
		if err := g.rulesFor(a); err != nil {
			return nil, err
		}
	}
	// The final rule copies text nodes (§4.3).
	g.sheet.Add(&Template{Match: Pattern{Text: true}, Output: []*Out{{CopyText: true}}})
	return g.sheet, nil
}

type slotKey struct {
	label string
	occ   int
}

// bnode is a symbolic production-fragment node used while generating a
// rule's output: either an element under construction, a literal
// default subtree, or an apply-templates slot.
type bnode struct {
	label    string
	slot     slotKey
	kids     []*bnode
	apply    *Apply // hot slot (terminates a path)
	literal  *Out   // inlined default subtree
	textSlot *Apply // str-path end: apply-templates select=text()
}

type fwdGen struct {
	emb   *embedding.Embedding
	md    embedding.MinDefs
	sheet *Stylesheet
}

func (g *fwdGen) rulesFor(a string) error {
	prod := g.emb.Source.Prods[a]
	lam := g.emb.Lambda[a]
	switch prod.Kind {
	case dtd.KindEmpty:
		root := &bnode{label: lam}
		if err := g.fill(root); err != nil {
			return err
		}
		g.sheet.Add(&Template{Match: Pattern{Label: a}, Output: []*Out{g.render(root)}})

	case dtd.KindStr:
		steps, err := g.emb.ResolvedSteps(embedding.Ref(a, embedding.StrChild))
		if err != nil {
			return err
		}
		root := &bnode{label: lam}
		end, err := g.walk(root, steps)
		if err != nil {
			return err
		}
		end.textSlot = &Apply{Select: xpath.Text{}}
		if err := g.fill(root); err != nil {
			return err
		}
		g.sheet.Add(&Template{Match: Pattern{Label: a}, Output: []*Out{g.render(root)}})

	case dtd.KindConcat:
		root := &bnode{label: lam}
		occ := map[string]int{}
		for _, b := range prod.Children {
			occ[b]++
			if err := g.addEdge(root, a, b, occ[b], prod.Occurrences(b)); err != nil {
				return err
			}
		}
		if err := g.fill(root); err != nil {
			return err
		}
		g.sheet.Add(&Template{Match: Pattern{Label: a}, Output: []*Out{g.render(root)}})

	case dtd.KindDisj:
		// One guarded rule per disjunct (§4.3 case 2 / Example 4.6).
		for _, b := range prod.Children {
			root := &bnode{label: lam}
			if err := g.addEdge(root, a, b, 1, 1); err != nil {
				return err
			}
			if err := g.fill(root); err != nil {
				return err
			}
			g.sheet.Add(&Template{
				Match:  Pattern{Label: a, Guard: xpath.NewPath(b)},
				Output: []*Out{g.render(root)},
			})
		}

	case dtd.KindStar:
		// Prefix and suffix rules (§4.3 case 3 / Example 4.6's db).
		b := prod.Children[0]
		steps, err := g.emb.ResolvedSteps(embedding.Ref(a, b))
		if err != nil {
			return err
		}
		it := iteratorIndex(steps)
		mode := "M-" + a
		root := &bnode{label: lam}
		starNode, err := g.walk(root, steps[:it])
		if err != nil {
			return err
		}
		starNode.kids = append(starNode.kids, &bnode{
			slot:  slotKey{label: "*apply*"},
			apply: &Apply{Select: xpath.Label{Name: b}, Mode: mode},
		})
		if err := g.fill(root); err != nil {
			return err
		}
		g.sheet.Add(&Template{Match: Pattern{Label: a}, Output: []*Out{g.render(root)}})

		// Suffix: the iterator step down to (but excluding) λ(B), whose
		// node the next rule produces via select=".".
		suffix := steps[it : len(steps)-1]
		sel := &bnode{
			slot:  slotKey{label: steps[len(steps)-1].Label, occ: steps[len(steps)-1].Occ},
			apply: &Apply{Select: xpath.Empty{}},
		}
		var out *Out
		if len(suffix) == 0 {
			g.sheet.Add(&Template{Match: Pattern{Label: b}, Mode: mode, Output: []*Out{g.render(sel)}})
			return nil
		}
		head := &bnode{label: suffix[0].Label, slot: slotKey{label: suffix[0].Label, occ: suffix[0].Occ}}
		cur := head
		for _, s := range suffix[1:] {
			next := &bnode{label: s.Label, slot: slotKey{label: s.Label, occ: s.Occ}}
			cur.kids = append(cur.kids, next)
			cur = next
		}
		cur.kids = append(cur.kids, sel)
		if err := g.fill(head); err != nil {
			return err
		}
		out = g.render(head)
		g.sheet.Add(&Template{Match: Pattern{Label: b}, Mode: mode, Output: []*Out{out}})
	}
	return nil
}

func iteratorIndex(steps []embedding.PathStep) int {
	for i, s := range steps {
		if s.Occ == 0 {
			return i
		}
	}
	return len(steps) - 1
}

// addEdge inserts the path of edge (a, b, occ) into the fragment and
// places the apply-templates hot slot at its end. repeats is the number
// of occurrences of b in a's production, deciding whether the select
// expression needs a position qualifier.
func (g *fwdGen) addEdge(root *bnode, a, b string, occ, repeats int) error {
	steps, err := g.emb.ResolvedSteps(embedding.EdgeRef{Parent: a, Child: b, Occ: occ})
	if err != nil {
		return err
	}
	end, err := g.walk(root, steps[:len(steps)-1])
	if err != nil {
		return err
	}
	last := steps[len(steps)-1]
	var sel xpath.Expr = xpath.Label{Name: b}
	if repeats > 1 {
		sel = xpath.Filter{P: sel, Q: xpath.QPos{K: occ}}
	}
	end.kids = append(end.kids, &bnode{
		slot:  slotKey{label: last.Label, occ: last.Occ},
		apply: &Apply{Select: sel},
	})
	return nil
}

// walk descends the steps from root, merging nodes with equal slot
// sequences (the longest-prefix rule of production fragments).
func (g *fwdGen) walk(root *bnode, steps []embedding.PathStep) (*bnode, error) {
	cur := root
	for _, s := range steps {
		key := slotKey{label: s.Label, occ: s.Occ}
		var found *bnode
		for _, k := range cur.kids {
			if k.slot == key {
				found = k
				break
			}
		}
		if found == nil {
			found = &bnode{label: s.Label, slot: key}
			cur.kids = append(cur.kids, found)
		} else if found.apply != nil {
			return nil, fmt.Errorf("xslt: path routes through a hot slot at %q; prefix-free condition violated", s.Label)
		}
		cur = found
	}
	return cur, nil
}

// fill completes a symbolic fragment with literal default content, in
// production order, mirroring the instance-level fill of InstMap.
func (g *fwdGen) fill(u *bnode) error {
	if u.apply != nil || u.literal != nil {
		return nil
	}
	prod, ok := g.emb.Target.Prods[u.label]
	if !ok {
		return fmt.Errorf("xslt: target type %q undefined", u.label)
	}
	switch prod.Kind {
	case dtd.KindStr, dtd.KindEmpty:
		return nil
	case dtd.KindConcat:
		byIdx := map[int]*bnode{}
		for _, k := range u.kids {
			idx := prod.ChildIndex(k.slot.label, k.slot.occ)
			if idx < 0 {
				return fmt.Errorf("xslt: fragment child %q#%d does not fit %q", k.slot.label, k.slot.occ, u.label)
			}
			if byIdx[idx] != nil {
				return fmt.Errorf("xslt: two fragment children in slot %d of %q", idx, u.label)
			}
			byIdx[idx] = k
		}
		ordered := make([]*bnode, 0, len(prod.Children))
		for i, want := range prod.Children {
			k := byIdx[i]
			if k == nil {
				lit, err := g.defaultOut(want)
				if err != nil {
					return err
				}
				k = &bnode{label: want, literal: lit}
			}
			ordered = append(ordered, k)
		}
		u.kids = ordered
	case dtd.KindDisj:
		switch len(u.kids) {
		case 0:
			lit, err := g.defaultOut(u.label)
			if err != nil {
				return err
			}
			if len(lit.Children) != 1 {
				return fmt.Errorf("xslt: default disjunction %q malformed", u.label)
			}
			u.kids = []*bnode{{label: lit.Children[0].Label, literal: lit.Children[0]}}
		case 1:
		default:
			return fmt.Errorf("xslt: disjunction %q acquired %d fragment children", u.label, len(u.kids))
		}
	case dtd.KindStar:
		// The apply slot, when present, supplies all children; pinned
		// slots get hole filling.
		hasApply := false
		for _, k := range u.kids {
			if k.slot.label == "*apply*" {
				hasApply = true
			}
		}
		if !hasApply {
			byOcc := map[int]*bnode{}
			max := 0
			for _, k := range u.kids {
				byOcc[k.slot.occ] = k
				if k.slot.occ > max {
					max = k.slot.occ
				}
			}
			ordered := make([]*bnode, 0, max)
			for i := 1; i <= max; i++ {
				k := byOcc[i]
				if k == nil {
					lit, err := g.defaultOut(prod.Children[0])
					if err != nil {
						return err
					}
					k = &bnode{label: prod.Children[0], literal: lit}
				}
				ordered = append(ordered, k)
			}
			u.kids = ordered
		}
	}
	for _, k := range u.kids {
		if err := g.fill(k); err != nil {
			return err
		}
	}
	return nil
}

// defaultOut renders mindef(label) as a literal output fragment.
func (g *fwdGen) defaultOut(label string) (*Out, error) {
	scratch := &xmltree.Tree{}
	n, err := g.md.Instantiate(scratch, label)
	if err != nil {
		return nil, err
	}
	return nodeToOut(n), nil
}

func nodeToOut(n *xmltree.Node) *Out {
	if n.IsText() {
		return Literal(n.Text)
	}
	o := &Out{Label: n.Label}
	for _, c := range n.Children {
		o.Children = append(o.Children, nodeToOut(c))
	}
	return o
}

// render converts a filled symbolic fragment to output nodes.
func (g *fwdGen) render(u *bnode) *Out {
	if u.apply != nil {
		return &Out{Apply: u.apply}
	}
	if u.literal != nil {
		return u.literal
	}
	o := &Out{Label: u.label}
	for _, k := range u.kids {
		o.Children = append(o.Children, g.render(k))
	}
	if u.textSlot != nil {
		o.Children = append(o.Children, &Out{Apply: u.textSlot})
	}
	return o
}

// InverseStylesheet compiles the embedding into a stylesheet computing
// σd⁻¹ (§4.3, "An XSLT Template for σd⁻¹"): one rule per source type,
// matching its λ image and selecting each child's embedded path.
// Deviating from the paper's single MDATA mode, each source type gets
// its own mode ("inv-<type>"), which keeps rule selection unambiguous
// even when λ maps several source types to one target type.
func InverseStylesheet(emb *embedding.Embedding) (*Stylesheet, error) {
	if err := emb.Validate(nil); err != nil {
		return nil, err
	}
	sheet := &Stylesheet{}
	// Bootstrap: hand the target root to the root type's mode.
	sheet.Add(&Template{
		Match:  Pattern{Label: emb.Target.Root},
		Output: []*Out{ApplyTemplates(xpath.Empty{}, invMode(emb.Source.Root))},
	})
	for _, a := range emb.Source.Types {
		if err := inverseRules(sheet, emb, a); err != nil {
			return nil, err
		}
	}
	sheet.Add(&Template{Match: Pattern{Text: true}, Mode: "inv-text", Output: []*Out{{CopyText: true}}})
	return sheet, nil
}

func invMode(a string) string { return "inv-" + a }

func inverseRules(sheet *Stylesheet, emb *embedding.Embedding, a string) error {
	prod := emb.Source.Prods[a]
	lam := emb.Lambda[a]
	switch prod.Kind {
	case dtd.KindEmpty:
		sheet.Add(&Template{Match: Pattern{Label: lam}, Mode: invMode(a), Output: []*Out{Element(a)}})

	case dtd.KindStr:
		sel, err := stepExpr(emb, embedding.Ref(a, embedding.StrChild), 0)
		if err != nil {
			return err
		}
		sheet.Add(&Template{
			Match:  Pattern{Label: lam},
			Mode:   invMode(a),
			Output: []*Out{Element(a, ApplyTemplates(sel, "inv-text"))},
		})

	case dtd.KindConcat:
		var kids []*Out
		occ := map[string]int{}
		for _, b := range prod.Children {
			occ[b]++
			sel, err := stepExpr(emb, embedding.EdgeRef{Parent: a, Child: b, Occ: occ[b]}, 0)
			if err != nil {
				return err
			}
			kids = append(kids, ApplyTemplates(sel, invMode(b)))
		}
		sheet.Add(&Template{Match: Pattern{Label: lam}, Mode: invMode(a), Output: []*Out{Element(a, kids...)}})

	case dtd.KindDisj:
		for _, b := range prod.Children {
			guard, err := stepPath(emb, embedding.Ref(a, b))
			if err != nil {
				return err
			}
			sel, err := stepExpr(emb, embedding.Ref(a, b), 0)
			if err != nil {
				return err
			}
			sheet.Add(&Template{
				Match:  Pattern{Label: lam, Guard: guard},
				Mode:   invMode(a),
				Output: []*Out{Element(a, ApplyTemplates(sel, invMode(b)))},
			})
		}

	case dtd.KindStar:
		b := prod.Children[0]
		sel, err := stepExpr(emb, embedding.Ref(a, b), 0)
		if err != nil {
			return err
		}
		sheet.Add(&Template{
			Match:  Pattern{Label: lam},
			Mode:   invMode(a),
			Output: []*Out{Element(a, ApplyTemplates(sel, invMode(b)))},
		})
	}
	return nil
}

// stepExpr converts the resolved path of an edge into an X_R select
// expression with position qualifiers wherever navigation is ambiguous;
// iterator steps stay unpinned so that star paths select every child in
// order.
func stepExpr(emb *embedding.Embedding, ref embedding.EdgeRef, _ int) (xpath.Expr, error) {
	steps, err := emb.ResolvedSteps(ref)
	if err != nil {
		return nil, err
	}
	parts := make([]xpath.Expr, 0, len(steps)+1)
	for _, s := range steps {
		var e xpath.Expr = xpath.Label{Name: s.Label}
		if s.NeedsPos {
			e = xpath.Filter{P: e, Q: xpath.QPos{K: s.Occ}}
		}
		parts = append(parts, e)
	}
	if ref.Child == embedding.StrChild {
		parts = append(parts, xpath.Text{})
	}
	return xpath.SeqOf(parts...), nil
}

// stepPath converts the resolved path of an edge into an X_R path for
// use as a match guard.
func stepPath(emb *embedding.Embedding, ref embedding.EdgeRef) (xpath.Path, error) {
	steps, err := emb.ResolvedSteps(ref)
	if err != nil {
		return xpath.Path{}, err
	}
	var p xpath.Path
	for _, s := range steps {
		st := xpath.Step{Label: s.Label}
		if s.NeedsPos {
			st.Pos = s.Occ
		}
		p.Steps = append(p.Steps, st)
	}
	if ref.Child == embedding.StrChild {
		p.Text = true
	}
	return p, nil
}

// sortTemplatesForDisplay orders templates for stable serialization.
func sortTemplatesForDisplay(ts []*Template) []*Template {
	out := append([]*Template(nil), ts...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Mode != out[j].Mode {
			return out[i].Mode < out[j].Mode
		}
		return false
	})
	return out
}
