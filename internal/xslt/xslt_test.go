package xslt_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/embedding"
	"repro/internal/workload"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xslt"
)

const classDoc = `
<db>
  <class>
    <cno>CS331</cno><title>DB</title>
    <type><regular><prereq>
      <class><cno>CS210</cno><title>Algo</title><type><project>p</project></type></class>
    </prereq></regular></type>
  </class>
  <class><cno>CS100</cno><title>Intro</title><type><project>maze</project></type></class>
</db>`

// TestEngineBasics runs a tiny hand-written stylesheet.
func TestEngineBasics(t *testing.T) {
	sheet := &xslt.Stylesheet{}
	sheet.Add(&xslt.Template{
		Match: xslt.Pattern{Label: "r"},
		Output: []*xslt.Out{
			xslt.Element("out",
				xslt.ApplyTemplates(xpath.MustParse("a"), ""),
				xslt.Literal("done"),
			),
		},
	})
	sheet.Add(&xslt.Template{
		Match:  xslt.Pattern{Label: "a"},
		Output: []*xslt.Out{xslt.Element("item", xslt.ApplyTemplates(xpath.MustParse("text()"), ""))},
	})
	sheet.Add(&xslt.Template{Match: xslt.Pattern{Text: true}, Output: []*xslt.Out{{CopyText: true}}})
	doc, _ := xmltree.ParseString(`<r><a>x</a><a>y</a></r>`)
	got, err := sheet.Run(doc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want, _ := xmltree.ParseString(`<out><item>x</item><item>y</item>done</out>`)
	if !xmltree.Equal(got, want) {
		t.Errorf("output mismatch: %s", xmltree.Diff(want, got))
	}
}

func TestEngineGuardPriority(t *testing.T) {
	sheet := &xslt.Stylesheet{}
	sheet.Add(&xslt.Template{Match: xslt.Pattern{Label: "a"}, Output: []*xslt.Out{xslt.Element("plain")}})
	sheet.Add(&xslt.Template{
		Match:  xslt.Pattern{Label: "a", Guard: xpath.NewPath("b")},
		Output: []*xslt.Out{xslt.Element("guarded")},
	})
	withB, _ := xmltree.ParseString(`<a><b/></a>`)
	got, err := sheet.Run(withB)
	if err != nil {
		t.Fatal(err)
	}
	if got.Root.Label != "guarded" {
		t.Errorf("guarded rule not preferred: got %q", got.Root.Label)
	}
	plain, _ := xmltree.ParseString(`<a/>`)
	got, err = sheet.Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if got.Root.Label != "plain" {
		t.Errorf("fallback rule not used: got %q", got.Root.Label)
	}
}

func TestEngineNoMatchError(t *testing.T) {
	sheet := &xslt.Stylesheet{}
	sheet.Add(&xslt.Template{Match: xslt.Pattern{Label: "r"}, Output: []*xslt.Out{xslt.ApplyTemplates(xpath.MustParse("x"), "")}})
	doc, _ := xmltree.ParseString(`<r><x/></r>`)
	if _, err := sheet.Run(doc); err == nil || !strings.Contains(err.Error(), "no template") {
		t.Errorf("missing rule: err = %v", err)
	}
}

// TestForwardMatchesInstMap: the generated σd stylesheet produces
// exactly the document InstMap produces.
func TestForwardMatchesInstMap(t *testing.T) {
	emb := workload.ClassEmbedding()
	sheet, err := xslt.ForwardStylesheet(emb)
	if err != nil {
		t.Fatalf("ForwardStylesheet: %v", err)
	}
	src, _ := xmltree.ParseString(classDoc)
	viaXSLT, err := sheet.Run(src)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	res, err := emb.Apply(src)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(viaXSLT, res.Tree) {
		t.Errorf("XSLT σd differs from InstMap: %s", xmltree.Diff(res.Tree, viaXSLT))
	}
}

// TestInverseStylesheet: the generated σd⁻¹ stylesheet recovers the
// source document.
func TestInverseStylesheet(t *testing.T) {
	emb := workload.ClassEmbedding()
	fwd, err := xslt.ForwardStylesheet(emb)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := xslt.InverseStylesheet(emb)
	if err != nil {
		t.Fatalf("InverseStylesheet: %v", err)
	}
	src, _ := xmltree.ParseString(classDoc)
	mapped, err := fwd.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := inv.Run(mapped)
	if err != nil {
		t.Fatalf("inverse Run: %v", err)
	}
	if !xmltree.Equal(src, back) {
		t.Errorf("XSLT round trip: %s", xmltree.Diff(src, back))
	}
}

// TestXSLTRoundTripProperty: σd and σd⁻¹ stylesheets round-trip random
// instances for both Figure 1 embeddings (invariant 4 of DESIGN.md).
func TestXSLTRoundTripProperty(t *testing.T) {
	for _, tc := range []struct {
		name string
		emb  *embedding.Embedding
	}{
		{"sigma1", workload.ClassEmbedding()},
		{"sigma2", workload.StudentEmbedding()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fwd, err := xslt.ForwardStylesheet(tc.emb)
			if err != nil {
				t.Fatal(err)
			}
			inv, err := xslt.InverseStylesheet(tc.emb)
			if err != nil {
				t.Fatal(err)
			}
			prop := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				src := xmltree.MustGenerate(tc.emb.Source, r, xmltree.GenOptions{})
				mapped, err := fwd.Run(src)
				if err != nil {
					t.Logf("seed %d: forward: %v", seed, err)
					return false
				}
				if err := mapped.Validate(tc.emb.Target); err != nil {
					t.Logf("seed %d: conformance: %v", seed, err)
					return false
				}
				direct, err := tc.emb.Apply(src)
				if err != nil {
					t.Logf("seed %d: instmap: %v", seed, err)
					return false
				}
				if !xmltree.Equal(mapped, direct.Tree) {
					t.Logf("seed %d: XSLT vs InstMap: %s", seed, xmltree.Diff(direct.Tree, mapped))
					return false
				}
				back, err := inv.Run(mapped)
				if err != nil {
					t.Logf("seed %d: inverse: %v", seed, err)
					return false
				}
				if !xmltree.Equal(src, back) {
					t.Logf("seed %d: round trip: %s", seed, xmltree.Diff(src, back))
					return false
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestExample46Shapes: the serialized σd stylesheet contains the
// Example 4.6 structures — the class rule with inlined defaults, the
// guarded type rules, and the db prefix/suffix pair with a dedicated
// mode.
func TestExample46Shapes(t *testing.T) {
	emb := workload.ClassEmbedding()
	sheet, err := xslt.ForwardStylesheet(emb)
	if err != nil {
		t.Fatal(err)
	}
	text := sheet.Serialize()
	for _, want := range []string{
		`match="class"`,
		`<credit>`,
		`#s`,
		`match="type[regular]"`,
		`match="type[project]"`,
		`<mandatory>`,
		`<advanced>`,
		`match="db"`,
		`mode="M-db"`,
		`<courses>`,
		`<current>`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("serialized σd stylesheet lacks %q\n%s", want, text)
		}
	}
}

// TestExample45Shapes: the serialized σd⁻¹ stylesheet matches the
// Example 4.5 structure — the course rule selecting basic/cno,
// class/semester/title and category, and guarded category rules.
func TestExample45Shapes(t *testing.T) {
	emb := workload.ClassEmbedding()
	sheet, err := xslt.InverseStylesheet(emb)
	if err != nil {
		t.Fatal(err)
	}
	text := sheet.Serialize()
	for _, want := range []string{
		`match="course"`,
		`select="basic/cno`,
		`semester[position() = 1]/title`,
		`match="category[mandatory/regular]"`,
		`match="category[advanced/project]"`,
		`select="mandatory/regular"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("serialized σd⁻¹ stylesheet lacks %q\n%s", want, text)
		}
	}
}

// TestNonInjectiveLambdaInverse: per-type modes keep the inverse
// stylesheet unambiguous when λ maps two source types to one target
// type (Figure 3(c)).
func TestNonInjectiveLambdaInverse(t *testing.T) {
	var scen workload.Fig3Scenario
	for _, sc := range workload.Figure3() {
		if strings.HasPrefix(sc.Name, "c-") {
			scen = sc
		}
	}
	emb := scen.Build()
	fwd, err := xslt.ForwardStylesheet(emb)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := xslt.InverseStylesheet(emb)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := xmltree.ParseString(`<A><B/><C/></A>`)
	mapped, err := fwd.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := inv.Run(mapped)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(src, back) {
		t.Errorf("non-injective λ round trip: %s", xmltree.Diff(src, back))
	}
}

func TestInvalidEmbeddingRejected(t *testing.T) {
	emb := workload.Figure2Mapping()
	if _, err := xslt.ForwardStylesheet(emb); err == nil {
		t.Error("ForwardStylesheet accepted an invalid embedding")
	}
	if _, err := xslt.InverseStylesheet(emb); err == nil {
		t.Error("InverseStylesheet accepted an invalid embedding")
	}
}
