package xslt_test

import (
	"strings"
	"testing"

	"repro/internal/workload"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xslt"
)

// TestSerializeDeterministic: two serializations of the same stylesheet
// are byte-identical (templates are ordered for display).
func TestSerializeDeterministic(t *testing.T) {
	emb := workload.AuctionEmbedding()
	sheet, err := xslt.InverseStylesheet(emb)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sheet.Serialize(), sheet.Serialize()
	if a != b {
		t.Error("serialization not deterministic")
	}
	if !strings.HasPrefix(a, `<?xml version="1.0"?>`) {
		t.Error("missing XML declaration")
	}
	if !strings.Contains(a, `<xsl:value-of select="."/>`) {
		t.Error("missing text-copy rule")
	}
}

// TestEngineMultipleOutputItems: a template may output a forest; the
// engine splices it in order.
func TestEngineMultipleOutputItems(t *testing.T) {
	sheet := &xslt.Stylesheet{}
	sheet.Add(&xslt.Template{
		Match: xslt.Pattern{Label: "r"},
		Output: []*xslt.Out{
			xslt.Element("wrapper",
				xslt.ApplyTemplates(xpath.MustParse("a"), ""),
			),
		},
	})
	sheet.Add(&xslt.Template{
		Match: xslt.Pattern{Label: "a"},
		Output: []*xslt.Out{
			xslt.Element("first"),
			xslt.Literal("mid"),
			xslt.Element("second"),
		},
	})
	doc, _ := xmltree.ParseString(`<r><a/><a/></r>`)
	got, err := sheet.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := xmltree.ParseString(`<wrapper><first/>mid<second/><first/>mid<second/></wrapper>`)
	if !xmltree.Equal(got, want) {
		t.Errorf("forest output mismatch: %s", xmltree.Diff(want, got))
	}
}

// TestEngineRootForestError: a stylesheet producing several roots is an
// error.
func TestEngineRootForestError(t *testing.T) {
	sheet := &xslt.Stylesheet{}
	sheet.Add(&xslt.Template{
		Match:  xslt.Pattern{Label: "r"},
		Output: []*xslt.Out{xslt.Element("x"), xslt.Element("y")},
	})
	doc, _ := xmltree.ParseString(`<r/>`)
	if _, err := sheet.Run(doc); err == nil || !strings.Contains(err.Error(), "root nodes") {
		t.Errorf("forest at root: %v", err)
	}
}

// TestPatternString covers the display forms.
func TestPatternString(t *testing.T) {
	if got := (xslt.Pattern{Text: true}).String(); got != "text()" {
		t.Errorf("text pattern = %q", got)
	}
	if got := (xslt.Pattern{Label: "a"}).String(); got != "a" {
		t.Errorf("label pattern = %q", got)
	}
	g := xslt.Pattern{Label: "a", Guard: xpath.NewPath("b", "c")}
	if got := g.String(); got != "a[b/c]" {
		t.Errorf("guarded pattern = %q", got)
	}
}

// TestAuctionXSLTSerialization: the large embedding's stylesheets
// serialize with the expected mode structure.
func TestAuctionXSLTSerialization(t *testing.T) {
	emb := workload.AuctionEmbedding()
	fwd, err := xslt.ForwardStylesheet(emb)
	if err != nil {
		t.Fatal(err)
	}
	text := fwd.Serialize()
	for _, want := range []string{`mode="M-people"`, `match="description[text]"`, `match="description[parlist]"`} {
		if !strings.Contains(text, want) {
			t.Errorf("forward sheet lacks %q", want)
		}
	}
}
