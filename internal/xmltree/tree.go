// Package xmltree implements the paper's XML instance model: ordered,
// node-labeled trees in which every node — element or text — carries a
// distinct node id, text nodes are leaves holding PCDATA, and two trees
// are equal when they are isomorphic by an isomorphism that is the
// identity on string values (§2.1 of Fan & Bohannon).
//
// The package provides DTD conformance validation, XML parsing and
// serialization built on encoding/xml's tokenizer, and random instance
// generation from a DTD for tests and benchmarks.
package xmltree

import (
	"fmt"
	"strings"

	"repro/internal/dtd"
)

// NodeID identifies a node within a document. IDs are drawn from the
// countably infinite id universe U of the paper; they are unique within
// a tree and never reused by the allocating Tree.
type NodeID int64

// TextLabel is the reserved label of text nodes.
const TextLabel = "#text"

// Node is an element or text node. Text nodes have Label == TextLabel,
// carry Text, and have no children.
type Node struct {
	ID       NodeID
	Label    string
	Text     string
	Parent   *Node
	Children []*Node
}

// IsText reports whether the node is a text (PCDATA) node.
func (n *Node) IsText() bool { return n.Label == TextLabel }

// Value returns the PCDATA carried by the node's single text child, for
// element nodes of str-typed elements; it returns "" and false when the
// node has no text child.
func (n *Node) Value() (string, bool) {
	for _, c := range n.Children {
		if c.IsText() {
			return c.Text, true
		}
	}
	return "", false
}

// ChildPosition returns the 1-based position of the node among its
// parent's children with the same label — the position() of the paper's
// X_R paths. The root has position 1.
func (n *Node) ChildPosition() int {
	if n.Parent == nil {
		return 1
	}
	pos := 0
	for _, sib := range n.Parent.Children {
		if sib.Label == n.Label {
			pos++
			if sib == n {
				return pos
			}
		}
	}
	return 0
}

// Tree is an XML document: a root node plus the id allocator for the
// document. The zero value is an empty document ready for node
// allocation (set Root after building); New is a convenience that also
// creates the root element.
type Tree struct {
	Root   *Node
	nextID NodeID
}

// New creates an empty document whose root element has the given label.
func New(rootLabel string) *Tree {
	t := &Tree{}
	t.Root = t.NewElement(rootLabel)
	return t
}

// NewElement allocates an element node with a fresh id, detached from
// the tree.
func (t *Tree) NewElement(label string) *Node {
	t.nextID++
	return &Node{ID: t.nextID, Label: label}
}

// NewText allocates a text node with a fresh id carrying the value.
func (t *Tree) NewText(value string) *Node {
	t.nextID++
	return &Node{ID: t.nextID, Label: TextLabel, Text: value}
}

// Append attaches child as the last child of parent.
func Append(parent, child *Node) {
	child.Parent = parent
	parent.Children = append(parent.Children, child)
}

// Size returns the number of nodes in the tree (elements and text).
func (t *Tree) Size() int {
	n := 0
	t.Walk(func(*Node) { n++ })
	return n
}

// Walk visits every node in document order.
func (t *Tree) Walk(f func(*Node)) {
	if t.Root == nil {
		return
	}
	walk(t.Root, f)
}

func walk(n *Node, f func(*Node)) {
	f(n)
	for _, c := range n.Children {
		walk(c, f)
	}
}

// NodeByID returns the node with the given id, or nil.
func (t *Tree) NodeByID(id NodeID) *Node {
	var found *Node
	t.Walk(func(n *Node) {
		if n.ID == id {
			found = n
		}
	})
	return found
}

// Equal implements the paper's tree equality: T1 = T2 when they are
// isomorphic by an isomorphism that is the identity on string values.
// Node ids are ignored.
func Equal(t1, t2 *Tree) bool {
	if t1 == nil || t2 == nil {
		return t1 == t2
	}
	return nodeEqual(t1.Root, t2.Root)
}

func nodeEqual(n1, n2 *Node) bool {
	if n1.Label != n2.Label {
		return false
	}
	if n1.IsText() {
		return n1.Text == n2.Text
	}
	if len(n1.Children) != len(n2.Children) {
		return false
	}
	for i := range n1.Children {
		if !nodeEqual(n1.Children[i], n2.Children[i]) {
			return false
		}
	}
	return true
}

// Diff returns a human-readable description of the first difference
// between two trees, or "" when they are equal. It exists to make
// round-trip test failures diagnosable.
func Diff(t1, t2 *Tree) string {
	return nodeDiff(t1.Root, t2.Root, "/"+t1.Root.Label)
}

func nodeDiff(n1, n2 *Node, path string) string {
	if n1.Label != n2.Label {
		return fmt.Sprintf("%s: label %q vs %q", path, n1.Label, n2.Label)
	}
	if n1.IsText() && n1.Text != n2.Text {
		return fmt.Sprintf("%s: text %q vs %q", path, n1.Text, n2.Text)
	}
	if len(n1.Children) != len(n2.Children) {
		return fmt.Sprintf("%s: %d vs %d children", path, len(n1.Children), len(n2.Children))
	}
	for i := range n1.Children {
		sub := fmt.Sprintf("%s/%s[%d]", path, n1.Children[i].Label, i+1)
		if d := nodeDiff(n1.Children[i], n2.Children[i], sub); d != "" {
			return d
		}
	}
	return ""
}

// Clone returns a deep copy of the tree with fresh node ids assigned in
// document order.
func (t *Tree) Clone() *Tree {
	c := &Tree{}
	c.Root = c.cloneNode(t.Root, nil)
	return c
}

func (t *Tree) cloneNode(n *Node, parent *Node) *Node {
	var m *Node
	if n.IsText() {
		m = t.NewText(n.Text)
	} else {
		m = t.NewElement(n.Label)
	}
	m.Parent = parent
	for _, c := range n.Children {
		m.Children = append(m.Children, t.cloneNode(c, m))
	}
	return m
}

// String renders the tree as indented XML.
func (t *Tree) String() string {
	var b strings.Builder
	writeNode(&b, t.Root, 0)
	return b.String()
}

// StringCompact renders the tree as XML with no inter-element
// whitespace at all. External XPath engines see exactly the tree's
// text nodes and nothing else, so text() and string-value semantics
// line up with this package's evaluator — the differential harness
// serializes with this form. Reparsing yields an equal tree.
func (t *Tree) StringCompact() string {
	var b strings.Builder
	writeNodeCompact(&b, t.Root)
	return b.String()
}

func writeNodeCompact(b xmlWriter, n *Node) {
	if n.IsText() {
		xmlEscape(b, n.Text)
		return
	}
	if len(n.Children) == 0 {
		b.WriteByte('<')
		b.WriteString(n.Label)
		b.WriteString("/>")
		return
	}
	b.WriteByte('<')
	b.WriteString(n.Label)
	b.WriteByte('>')
	for _, c := range n.Children {
		writeNodeCompact(b, c)
	}
	b.WriteString("</")
	b.WriteString(n.Label)
	b.WriteByte('>')
}

// xmlWriter is the serialization sink: both strings.Builder (String)
// and bytes.Buffer (the pooled Write path in codec.go) satisfy it.
type xmlWriter interface {
	WriteString(string) (int, error)
	WriteByte(byte) error
	WriteRune(rune) (int, error)
}

// indents caches indentation prefixes for shallow depths; deeper
// levels fall back to strings.Repeat. Serialization is a data-plane
// hot path and per-node Repeat allocations dominate otherwise.
var indents = func() [32]string {
	var tab [32]string
	for i := range tab {
		tab[i] = strings.Repeat("  ", i)
	}
	return tab
}()

func indentOf(depth int) string {
	if depth < len(indents) {
		return indents[depth]
	}
	return strings.Repeat("  ", depth)
}

func writeNode(b xmlWriter, n *Node, depth int) {
	indent := indentOf(depth)
	if n.IsText() {
		b.WriteString(indent)
		xmlEscape(b, n.Text)
		b.WriteByte('\n')
		return
	}
	if len(n.Children) == 0 {
		b.WriteString(indent)
		b.WriteByte('<')
		b.WriteString(n.Label)
		b.WriteString("/>\n")
		return
	}
	if len(n.Children) == 1 && n.Children[0].IsText() {
		b.WriteString(indent)
		b.WriteByte('<')
		b.WriteString(n.Label)
		b.WriteByte('>')
		xmlEscape(b, n.Children[0].Text)
		b.WriteString("</")
		b.WriteString(n.Label)
		b.WriteString(">\n")
		return
	}
	b.WriteString(indent)
	b.WriteByte('<')
	b.WriteString(n.Label)
	b.WriteString(">\n")
	for _, c := range n.Children {
		writeNode(b, c, depth+1)
	}
	b.WriteString(indent)
	b.WriteString("</")
	b.WriteString(n.Label)
	b.WriteString(">\n")
}

func xmlEscape(b xmlWriter, s string) {
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '\r':
			// A literal CR in character data is normalized to LF by
			// conforming parsers (XML 1.0 §2.11), so it must leave as a
			// character reference or the value changes on reparse.
			b.WriteString("&#xD;")
		default:
			b.WriteRune(r)
		}
	}
}

// Validate checks that the tree conforms to the DTD: the root carries
// the root type, and every element's children match its production in
// the normal form. Text nodes appear exactly where str productions
// require them.
func (t *Tree) Validate(d *dtd.DTD) error {
	if t.Root == nil {
		return fmt.Errorf("xmltree: empty document")
	}
	if t.Root.Label != d.Root {
		return fmt.Errorf("xmltree: root is %q, want %q", t.Root.Label, d.Root)
	}
	return validateNode(t.Root, d)
}

func validateNode(n *Node, d *dtd.DTD) error {
	if n.IsText() {
		return fmt.Errorf("xmltree: unexpected bare text node %q", n.Text)
	}
	p, ok := d.Prods[n.Label]
	if !ok {
		return fmt.Errorf("xmltree: element %q is not defined by the DTD", n.Label)
	}
	switch p.Kind {
	case dtd.KindStr:
		if len(n.Children) != 1 || !n.Children[0].IsText() {
			return fmt.Errorf("xmltree: %q must contain exactly one text node", n.Label)
		}
		return nil
	case dtd.KindEmpty:
		if len(n.Children) != 0 {
			return fmt.Errorf("xmltree: %q must be empty, has %d children", n.Label, len(n.Children))
		}
		return nil
	case dtd.KindConcat:
		if len(n.Children) != len(p.Children) {
			return fmt.Errorf("xmltree: %q has %d children, production requires %d", n.Label, len(n.Children), len(p.Children))
		}
		for i, c := range n.Children {
			if c.IsText() || c.Label != p.Children[i] {
				return fmt.Errorf("xmltree: child %d of %q is %q, want %q", i+1, n.Label, c.Label, p.Children[i])
			}
		}
	case dtd.KindDisj:
		if len(n.Children) != 1 {
			return fmt.Errorf("xmltree: disjunction element %q must have exactly one child, has %d", n.Label, len(n.Children))
		}
		c := n.Children[0]
		ok := false
		for _, b := range p.Children {
			if c.Label == b {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("xmltree: child %q of %q is not a permitted disjunct", c.Label, n.Label)
		}
	case dtd.KindStar:
		for i, c := range n.Children {
			if c.IsText() || c.Label != p.Children[0] {
				return fmt.Errorf("xmltree: child %d of %q is %q, want %q", i+1, n.Label, c.Label, p.Children[0])
			}
		}
	}
	for _, c := range n.Children {
		if err := validateNode(c, d); err != nil {
			return err
		}
	}
	return nil
}
