package xmltree

import (
	"fmt"
	"math/rand"

	"repro/internal/dtd"
	"repro/internal/guard"
)

// GenOptions steers random instance generation.
type GenOptions struct {
	// StarMax bounds the number of children generated under a Kleene
	// star (children count is uniform in [0, StarMax]). Default 3.
	StarMax int
	// DepthBudget bounds recursion: once the remaining budget drops to
	// the minimum required depth, generation steers toward the shallowest
	// choices, guaranteeing termination on recursive DTDs. Default 12.
	DepthBudget int
	// TextValues, when non-empty, is the vocabulary for PCDATA; values
	// are drawn uniformly. Default: "v0".."v9".
	TextValues []string
	// Limits bounds the generated tree (MaxNodes); wide stars under a
	// deep budget can otherwise explode exponentially. Zero fields
	// select the guard defaults; guard.Unlimited() disables the check.
	Limits guard.Limits
}

func (o GenOptions) withDefaults() GenOptions {
	if o.StarMax == 0 {
		o.StarMax = 3
	}
	if o.DepthBudget == 0 {
		o.DepthBudget = 12
	}
	if len(o.TextValues) == 0 {
		for i := 0; i < 10; i++ {
			o.TextValues = append(o.TextValues, fmt.Sprintf("v%d", i))
		}
	}
	o.Limits = o.Limits.WithDefaults()
	return o
}

// Generate produces a random instance of the DTD. The DTD must be
// consistent (every type productive); Generate returns an error
// otherwise. Generation is bounded by opts.Limits.MaxNodes and fails
// with a *guard.LimitError when exceeded. The generated tree always
// validates against the DTD.
func Generate(d *dtd.DTD, r *rand.Rand, opts GenOptions) (*Tree, error) {
	opts = opts.withDefaults()
	depth := d.MinDepth()
	if _, ok := depth[d.Root]; !ok {
		return nil, fmt.Errorf("xmltree: cannot generate: root %q is unproductive", d.Root)
	}
	for _, a := range d.Types {
		if _, ok := depth[a]; !ok {
			return nil, fmt.Errorf("xmltree: cannot generate: type %q is unproductive", a)
		}
	}
	g := &generator{d: d, r: r, opts: opts, minDepth: depth}
	t := &Tree{}
	t.Root = g.gen(t, d.Root, opts.DepthBudget)
	if g.err != nil {
		return nil, g.err
	}
	return t, nil
}

// MustGenerate is Generate panicking on error, for tests over schemas
// known to be consistent.
func MustGenerate(d *dtd.DTD, r *rand.Rand, opts GenOptions) *Tree {
	t, err := Generate(d, r, opts)
	if err != nil {
		panic(err)
	}
	return t
}

type generator struct {
	d        *dtd.DTD
	r        *rand.Rand
	opts     GenOptions
	minDepth map[string]int
	nodes    int
	err      error
}

func (g *generator) text() string {
	return g.opts.TextValues[g.r.Intn(len(g.opts.TextValues))]
}

// addNode charges one node against the budget; once the budget is
// blown, generation unwinds without descending further (Generate
// discards the partial tree and returns the error).
func (g *generator) addNode() bool {
	g.nodes++
	if g.err == nil {
		g.err = g.opts.Limits.CheckNodes(g.nodes, "xmltree: generate")
	}
	return g.err == nil
}

func (g *generator) gen(t *Tree, label string, budget int) *Node {
	n := t.NewElement(label)
	if !g.addNode() {
		return n
	}
	p := g.d.Prods[label]
	switch p.Kind {
	case dtd.KindStr:
		Append(n, t.NewText(g.text()))
	case dtd.KindEmpty:
	case dtd.KindConcat:
		for _, c := range p.Children {
			Append(n, g.gen(t, c, budget-1))
		}
	case dtd.KindDisj:
		c := g.pickDisjunct(p.Children, budget-1)
		Append(n, g.gen(t, c, budget-1))
	case dtd.KindStar:
		k := 0
		if budget > g.minDepth[p.Children[0]] {
			k = g.r.Intn(g.opts.StarMax + 1)
		}
		for i := 0; i < k; i++ {
			Append(n, g.gen(t, p.Children[0], budget-1))
		}
	}
	return n
}

// pickDisjunct chooses a disjunct uniformly among those whose minimal
// depth fits the remaining budget; if none fit, it takes the shallowest.
func (g *generator) pickDisjunct(children []string, budget int) string {
	var fit []string
	best := children[0]
	for _, c := range children {
		if g.minDepth[c] <= budget {
			fit = append(fit, c)
		}
		if g.minDepth[c] < g.minDepth[best] {
			best = c
		}
	}
	if len(fit) == 0 {
		return best
	}
	return fit[g.r.Intn(len(fit))]
}
