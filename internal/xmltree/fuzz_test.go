package xmltree

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/guard"
)

// FuzzXMLDecode asserts that decoding never panics on arbitrary input
// and that accepted documents round-trip: parse → String → parse
// yields an equal tree (value isomorphism, ids ignored).
func FuzzXMLDecode(f *testing.F) {
	seeds := []string{
		"<a/>",
		"<a>text</a>",
		"<a><b/><c>x</c></a>",
		"<a>x<b/>y</a>",
		"<a>&lt;&amp;&gt;</a>",
		"<a><![CDATA[raw <stuff>]]></a>",
		"<a>  \n  </a>",
		"<a attr=\"ignored\"><b/></a>",
		"<a><a><a><a><a/></a></a></a></a>",
		"<ns:a xmlns:ns=\"u\"><ns:b/></ns:a>",
		"<a><b></a>",
		"<a/><b/>",
		"plain text",
		"<a>x&#xD;y</a>",
		"<a><![CDATA[x]]&gt;y]]></a>",
		"<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	tight := guard.Limits{MaxDepth: 8, MaxInputBytes: 1 << 12, MaxNodes: 64}
	f.Fuzz(func(t *testing.T, src string) {
		// Hostile nesting or volume must fail with a structured
		// LimitError under tight bounds, never exhaust the stack.
		if _, err := ParseLimits(strings.NewReader(src), tight); err != nil {
			var le *guard.LimitError
			_ = errors.As(err, &le)
		}
		tr, err := ParseString(src)
		if err != nil {
			return
		}
		s := tr.String()
		tr2, err := ParseString(s)
		if err != nil {
			t.Fatalf("reparse of serialization failed: %v\ninput: %q\nserialized:\n%s", err, src, s)
		}
		if !Equal(tr, tr2) {
			t.Errorf("round trip changed the tree: %s\ninput: %q\nserialized:\n%s", Diff(tr, tr2), src, s)
		}
	})
}
