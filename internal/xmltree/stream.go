package xmltree

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/guard"
)

// Streaming front- and back-end for the tree codec: a pull Tokenizer
// that yields the exact node stream Parse would build (same entity and
// escaping rules, same whitespace policy, same guard.Limits
// enforcement) without materializing a Tree, and an Emitter whose
// output is byte-identical to Tree.Write for the same event sequence.
// Together they let the embedding engine apply the instance mapping σd
// with O(depth) state (see internal/embedding/stream.go).

// TokKind discriminates Tok values.
type TokKind uint8

const (
	// TokStart opens an element.
	TokStart TokKind = iota
	// TokText is one PCDATA node (already whitespace-trimmed, exactly
	// as Parse would have stored it).
	TokText
	// TokEnd closes the innermost open element.
	TokEnd
	// TokEOF marks the end of a well-formed document.
	TokEOF
)

func (k TokKind) String() string {
	switch k {
	case TokStart:
		return "start"
	case TokText:
		return "text"
	case TokEnd:
		return "end"
	case TokEOF:
		return "eof"
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

// Tok is one node-stream event. Name is set for TokStart/TokEnd, Text
// for TokText.
type Tok struct {
	Kind TokKind
	Name string
	Text string
}

// TokenizerStats reports resource usage after (or during) a scan.
type TokenizerStats struct {
	Tokens     int64 // events returned (start+text+end)
	Nodes      int   // nodes counted against guard.Limits.MaxNodes
	MaxDepth   int   // deepest open-element nesting observed
	InputBytes int64 // raw bytes consumed from the reader
}

// Tokenizer is a pull scanner over an XML document. It reuses
// encoding/xml exactly as Parse does, so entity expansion ("&#xD;",
// "&amp;"), CDATA ("]]>" handling), comment/PI skipping and the
// whitespace-only-text drop behave identically; a document accepted by
// Parse yields the same node sequence here, and a document rejected by
// Parse fails here with the same class of error.
//
// Limits are enforced during the scan: element nesting depth, total
// node count (elements plus emitted text nodes) and raw input bytes
// are all bounded even though no tree is ever built.
type Tokenizer struct {
	dec   *xml.Decoder
	cr    *countingReader
	lim   guard.Limits
	names map[string]bool

	stack    []string // open element labels (the O(depth) state)
	unread   []Tok    // pushed-back / queued tokens, LIFO
	pending  strings.Builder
	stats    TokenizerStats
	rootSeen bool
	err      error // sticky
}

// NewTokenizer starts a scan of r under the default guard.Limits.
func NewTokenizer(r io.Reader) *Tokenizer {
	return NewTokenizerLimits(r, guard.Limits{})
}

// NewTokenizerLimits is NewTokenizer under explicit resource limits
// (zero fields select the defaults; guard.Unlimited() disables the
// checks).
func NewTokenizerLimits(r io.Reader, lim guard.Limits) *Tokenizer {
	lim = lim.WithDefaults()
	cr := &countingReader{r: r, lim: lim, ctx: "xmltree: stream"}
	return &Tokenizer{
		dec:   xml.NewDecoder(cr),
		cr:    cr,
		lim:   lim,
		names: make(map[string]bool, 16),
	}
}

// Depth returns the current open-element nesting depth.
func (z *Tokenizer) Depth() int { return len(z.stack) }

// Stats returns resource usage so far.
func (z *Tokenizer) Stats() TokenizerStats {
	s := z.stats
	s.InputBytes = int64(z.cr.n)
	return s
}

// Unread pushes tok back; the next call to Next returns it. Multiple
// pushed tokens return in LIFO order. Unread does not undo stats or
// limit accounting — the token was already charged when first read.
func (z *Tokenizer) Unread(tok Tok) {
	z.unread = append(z.unread, tok)
}

func (z *Tokenizer) fail(err error) (Tok, error) {
	z.err = err
	return Tok{}, err
}

func (z *Tokenizer) addNode() error {
	z.stats.Nodes++
	return z.lim.CheckNodes(z.stats.Nodes, "xmltree: stream")
}

// flushText converts accumulated character data into a TokText, or
// reports ok=false when it is empty, whitespace-only, or outside the
// root element (all dropped, exactly as in Parse).
func (z *Tokenizer) flushText() (Tok, bool, error) {
	if z.pending.Len() == 0 {
		return Tok{}, false, nil
	}
	text := z.pending.String()
	z.pending.Reset()
	if strings.TrimSpace(text) == "" {
		return Tok{}, false, nil
	}
	if len(z.stack) == 0 {
		return Tok{}, false, nil
	}
	if err := z.addNode(); err != nil {
		return Tok{}, false, err
	}
	z.stats.Tokens++
	return Tok{Kind: TokText, Text: strings.TrimSpace(text)}, true, nil
}

// Next returns the next node-stream event. After TokEOF (or an error)
// every subsequent call returns the same result.
func (z *Tokenizer) Next() (Tok, error) {
	if z.err != nil {
		return Tok{}, z.err
	}
	if n := len(z.unread); n > 0 {
		tok := z.unread[n-1]
		z.unread = z.unread[:n-1]
		return tok, nil
	}
	for {
		tok, err := z.dec.Token()
		if err == io.EOF {
			if !z.rootSeen {
				return z.fail(fmt.Errorf("xmltree: no root element"))
			}
			if len(z.stack) != 0 {
				return z.fail(fmt.Errorf("xmltree: unclosed element %q", z.stack[len(z.stack)-1]))
			}
			return Tok{Kind: TokEOF}, nil
		}
		if err != nil {
			if le := z.cr.limitErr; le != nil {
				return z.fail(le)
			}
			return z.fail(fmt.Errorf("xmltree: parse: %w", err))
		}
		switch tok := tok.(type) {
		case xml.StartElement:
			text, ok, err := z.flushText()
			if err != nil {
				return z.fail(err)
			}
			if err := z.lim.CheckDepth(len(z.stack)+1, "xmltree: stream"); err != nil {
				return z.fail(err)
			}
			if err := z.addNode(); err != nil {
				return z.fail(err)
			}
			if !validName(tok.Name.Local, z.names) {
				return z.fail(fmt.Errorf("xmltree: parse: element name %q is not a valid XML name on its own (namespaced local names like \"ns:%s\" cannot round-trip)", tok.Name.Local, tok.Name.Local))
			}
			if len(z.stack) == 0 {
				if z.rootSeen {
					return z.fail(fmt.Errorf("xmltree: multiple root elements"))
				}
				z.rootSeen = true
			}
			z.stack = append(z.stack, tok.Name.Local)
			if d := len(z.stack); d > z.stats.MaxDepth {
				z.stats.MaxDepth = d
			}
			z.stats.Tokens++
			start := Tok{Kind: TokStart, Name: tok.Name.Local}
			if ok {
				z.Unread(start)
				return text, nil
			}
			return start, nil
		case xml.EndElement:
			text, ok, err := z.flushText()
			if err != nil {
				return z.fail(err)
			}
			if len(z.stack) == 0 {
				return z.fail(fmt.Errorf("xmltree: unbalanced end element %q", tok.Name.Local))
			}
			name := z.stack[len(z.stack)-1]
			z.stack = z.stack[:len(z.stack)-1]
			z.stats.Tokens++
			end := Tok{Kind: TokEnd, Name: name}
			if ok {
				z.Unread(end)
				return text, nil
			}
			return end, nil
		case xml.CharData:
			z.pending.Write(tok)
		}
	}
}

// Emitter serializes a start/text/end event stream as indented XML,
// byte-identical to Tree.Write / Tree.String for the corresponding
// tree. It buffers at most one pending start tag plus one pending text
// node (the lookahead needed to pick the "<a/>", inline "<a>t</a>" or
// block rendering), so its memory is O(depth) regardless of document
// size. Call Flush after the final End.
type Emitter struct {
	w     *bufio.Writer
	depth int
	stack []string

	pendingName string // element started but not yet rendered
	pendingSet  bool
	firstText   string // first text child of the pending element
	textSet     bool

	bytes int64
	err   error // sticky
}

// NewEmitter returns an Emitter writing to w.
func NewEmitter(w io.Writer) *Emitter {
	return &Emitter{w: bufio.NewWriterSize(w, 16<<10)}
}

// Bytes returns the number of bytes written so far (including bytes
// still sitting in the internal buffer).
func (e *Emitter) Bytes() int64 { return e.bytes }

// countingEmitWriter adapts bufio.Writer to xmlWriter while tracking
// written bytes for Bytes().
func (e *Emitter) ws(s string) {
	if e.err != nil {
		return
	}
	n, err := e.w.WriteString(s)
	e.bytes += int64(n)
	e.err = err
}

func (e *Emitter) wb(c byte) {
	if e.err != nil {
		return
	}
	if err := e.w.WriteByte(c); err != nil {
		e.err = err
		return
	}
	e.bytes++
}

// escape writes s with the codec's escaping rules (same table as
// xmlEscape, including the CR → "&#xD;" round-trip rule).
func (e *Emitter) escape(s string) {
	if e.err != nil {
		return
	}
	cw := countWriter{w: e.w, n: &e.bytes, err: &e.err}
	xmlEscape(cw, s)
}

// countWriter satisfies xmlWriter over a bufio.Writer, accumulating
// byte counts and the first error.
type countWriter struct {
	w   *bufio.Writer
	n   *int64
	err *error
}

func (c countWriter) WriteString(s string) (int, error) {
	if *c.err != nil {
		return 0, *c.err
	}
	n, err := c.w.WriteString(s)
	*c.n += int64(n)
	if err != nil {
		*c.err = err
	}
	return n, err
}

func (c countWriter) WriteByte(b byte) error {
	if *c.err != nil {
		return *c.err
	}
	if err := c.w.WriteByte(b); err != nil {
		*c.err = err
		return err
	}
	*c.n++
	return nil
}

func (c countWriter) WriteRune(r rune) (int, error) {
	if *c.err != nil {
		return 0, *c.err
	}
	n, err := c.w.WriteRune(r)
	*c.n += int64(n)
	if err != nil {
		*c.err = err
	}
	return n, err
}

// open renders the pending start tag as a block opener (children
// follow on their own lines) and flushes any buffered first text child
// as the first line.
func (e *Emitter) open() {
	e.ws(indentOf(e.depth))
	e.wb('<')
	e.ws(e.pendingName)
	e.ws(">\n")
	e.stack = append(e.stack, e.pendingName)
	e.depth++
	e.pendingSet = false
	if e.textSet {
		e.ws(indentOf(e.depth))
		e.escape(e.firstText)
		e.wb('\n')
		e.textSet = false
		e.firstText = ""
	}
	e.pendingName = ""
}

// Start opens an element.
func (e *Emitter) Start(label string) error {
	if e.pendingSet {
		e.open()
	}
	e.pendingName = label
	e.pendingSet = true
	return e.err
}

// Text emits one PCDATA node.
func (e *Emitter) Text(s string) error {
	if e.pendingSet {
		if !e.textSet {
			e.firstText = s
			e.textSet = true
			return e.err
		}
		e.open()
	}
	e.ws(indentOf(e.depth))
	e.escape(s)
	e.wb('\n')
	return e.err
}

// End closes the innermost open element, choosing the empty, inline or
// block rendering exactly as writeNode does.
func (e *Emitter) End() error {
	if e.pendingSet {
		e.ws(indentOf(e.depth))
		e.wb('<')
		e.ws(e.pendingName)
		if e.textSet {
			e.wb('>')
			e.escape(e.firstText)
			e.ws("</")
			e.ws(e.pendingName)
			e.ws(">\n")
			e.textSet = false
			e.firstText = ""
		} else {
			e.ws("/>\n")
		}
		e.pendingSet = false
		e.pendingName = ""
		return e.err
	}
	if len(e.stack) == 0 {
		if e.err == nil {
			e.err = fmt.Errorf("xmltree: emitter: End with no open element")
		}
		return e.err
	}
	name := e.stack[len(e.stack)-1]
	e.stack = e.stack[:len(e.stack)-1]
	e.depth--
	e.ws(indentOf(e.depth))
	e.ws("</")
	e.ws(name)
	e.ws(">\n")
	return e.err
}

// Node emits a fully built subtree (used for default fills and
// buffered-reorder fallbacks, where the fragment already exists as
// nodes).
func (e *Emitter) Node(n *Node) error {
	if n.IsText() {
		return e.Text(n.Text)
	}
	if err := e.Start(n.Label); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := e.Node(c); err != nil {
			return err
		}
	}
	return e.End()
}

// Flush drains the internal buffer. It must be called after the final
// End; it is an error to flush with elements still open or pending.
func (e *Emitter) Flush() error {
	if e.err != nil {
		return e.err
	}
	if e.pendingSet || len(e.stack) != 0 {
		e.err = fmt.Errorf("xmltree: emitter: Flush with unclosed element")
		return e.err
	}
	if err := e.w.Flush(); err != nil {
		e.err = err
	}
	return e.err
}
