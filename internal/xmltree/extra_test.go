package xmltree

import (
	"strings"
	"testing"
)

func TestWalkDocumentOrder(t *testing.T) {
	tr, _ := ParseString(`<r><a><b/></a><c/></r>`)
	var order []string
	tr.Walk(func(n *Node) { order = append(order, n.Label) })
	if got := strings.Join(order, ","); got != "r,a,b,c" {
		t.Errorf("Walk order = %s", got)
	}
}

func TestValueAndIsText(t *testing.T) {
	tr, _ := ParseString(`<r><a>x</a><b/></r>`)
	a, b := tr.Root.Children[0], tr.Root.Children[1]
	if v, ok := a.Value(); !ok || v != "x" {
		t.Errorf("Value(a) = %q, %v", v, ok)
	}
	if _, ok := b.Value(); ok {
		t.Error("Value(b) should be absent")
	}
	if a.IsText() || !a.Children[0].IsText() {
		t.Error("IsText misclassifies")
	}
}

func TestWriteAndString(t *testing.T) {
	tr, _ := ParseString(`<r><a>x &amp; y</a></r>`)
	var sb strings.Builder
	if err := tr.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "x &amp; y") {
		t.Errorf("Write output = %q", sb.String())
	}
}

func TestEmptyElementRendering(t *testing.T) {
	tr, _ := ParseString(`<r><empty/></r>`)
	if !strings.Contains(tr.String(), "<empty/>") {
		t.Errorf("self-closing form lost: %s", tr)
	}
}

func TestGenOptionsDefaults(t *testing.T) {
	o := GenOptions{}.withDefaults()
	if o.StarMax != 3 || o.DepthBudget != 12 || len(o.TextValues) != 10 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestDiffReportsPosition(t *testing.T) {
	a, _ := ParseString(`<r><x/><y><z/></y></r>`)
	b, _ := ParseString(`<r><x/><y><w/></y></r>`)
	d := Diff(a, b)
	if !strings.Contains(d, "y[2]") || !strings.Contains(d, "label") {
		t.Errorf("Diff = %q", d)
	}
}
