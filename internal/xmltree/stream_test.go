package xmltree

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/guard"
)

// tokensToTree rebuilds a Tree from the tokenizer's event stream, so
// the differential tests can compare against Parse.
func tokensToTree(z *Tokenizer) (*Tree, error) {
	tr := &Tree{}
	var stack []*Node
	for {
		tok, err := z.Next()
		if err != nil {
			return nil, err
		}
		switch tok.Kind {
		case TokStart:
			n := tr.NewElement(tok.Name)
			if len(stack) == 0 {
				tr.Root = n
			} else {
				Append(stack[len(stack)-1], n)
			}
			stack = append(stack, n)
		case TokText:
			Append(stack[len(stack)-1], tr.NewText(tok.Text))
		case TokEnd:
			stack = stack[:len(stack)-1]
		case TokEOF:
			return tr, nil
		}
	}
}

// streamDocs are the differential inputs: every entity/escaping/
// whitespace corner the codec handles must behave identically in the
// tokenizer.
var streamDocs = []struct {
	name string
	doc  string
}{
	{"class", classDoc},
	{"cr-entity", "<a>x&#xD;y</a>"},
	{"cdata", "<a><![CDATA[1 < 2 & 3]]></a>"},
	{"cdata-close", "<a><![CDATA[x]]]]><![CDATA[>y]]></a>"},
	{"entities", "<a>&amp;&lt;&gt;&quot;&apos;</a>"},
	{"comment-split-text", "<a>foo<!-- c -->bar</a>"},
	{"pi-split-text", "<a>foo<?pi data?>bar</a>"},
	{"empty-elems", "<a><b/><c></c></a>"},
	{"ws-only", "<a>\n  <b/>\n\t \n</a>"},
	{"text-outside-root", "junk before <a><b>x</b></a> junk after"},
	{"single-text", "<a>hello world</a>"},
	{"deep", "<a><a><a><a><a>leaf</a></a></a></a></a>"},
	{"mixed", "<a><b/>tail<c>v</c>more</a>"},
	{"utf8", "<a>héllo — 世界</a>"},
	{"trim", "<a>   padded   </a>"},
}

// TestTokenizerMatchesParse checks that the token stream rebuilds the
// exact tree Parse produces, for every corner-case document.
func TestTokenizerMatchesParse(t *testing.T) {
	for _, tc := range streamDocs {
		t.Run(tc.name, func(t *testing.T) {
			want, err := ParseString(tc.doc)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			got, err := tokensToTree(NewTokenizer(strings.NewReader(tc.doc)))
			if err != nil {
				t.Fatalf("tokenize: %v", err)
			}
			if !Equal(want, got) {
				t.Fatalf("tree mismatch:\n%s", Diff(want, got))
			}
		})
	}
}

// TestTokenizerMatchesParseGenerated runs the same differential over
// randomly generated conforming documents.
func TestTokenizerMatchesParseGenerated(t *testing.T) {
	d := classDTD(t)
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		tr := MustGenerate(d, r, GenOptions{StarMax: 4})
		doc := tr.String()
		want, err := ParseString(doc)
		if err != nil {
			t.Fatalf("seed %d: Parse: %v", seed, err)
		}
		got, err := tokensToTree(NewTokenizer(strings.NewReader(doc)))
		if err != nil {
			t.Fatalf("seed %d: tokenize: %v", seed, err)
		}
		if !Equal(want, got) {
			t.Fatalf("seed %d: tree mismatch:\n%s", seed, Diff(want, got))
		}
	}
}

// TestTokenizerErrorsMatchParse checks that every document Parse
// rejects is also rejected by the tokenizer (and vice versa).
func TestTokenizerErrorsMatchParse(t *testing.T) {
	bad := []struct {
		name string
		doc  string
	}{
		{"empty", ""},
		{"no-root", "   just text   "},
		{"multiple-roots", "<a/><b/>"},
		{"unclosed", "<a><b></b>"},
		{"unbalanced-end", "<a></a></b>"},
		{"mismatched", "<a></b>"},
		{"namespaced-name", "<A:0/>"},
		{"bad-syntax", "<a><</a>"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, perr := ParseString(tc.doc)
			_, zerr := tokensToTree(NewTokenizer(strings.NewReader(tc.doc)))
			if perr == nil {
				t.Fatalf("Parse unexpectedly accepted %q", tc.doc)
			}
			if zerr == nil {
				t.Fatalf("tokenizer accepted %q but Parse rejects it: %v", tc.doc, perr)
			}
		})
	}
	// And errors are sticky.
	z := NewTokenizer(strings.NewReader("<a/><b/>"))
	var first error
	for {
		_, err := z.Next()
		if err != nil {
			first = err
			break
		}
	}
	if _, err := z.Next(); err != first {
		t.Fatalf("error not sticky: %v vs %v", err, first)
	}
}

// TestEmitterMatchesWrite feeds each document's tree through the
// Emitter and requires byte-identical output to Tree.String.
func TestEmitterMatchesWrite(t *testing.T) {
	for _, tc := range streamDocs {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := ParseString(tc.doc)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			var b strings.Builder
			e := NewEmitter(&b)
			if err := e.Node(tr.Root); err != nil {
				t.Fatalf("emit: %v", err)
			}
			if err := e.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			if got, want := b.String(), tr.String(); got != want {
				t.Fatalf("emitter output differs:\n got: %q\nwant: %q", got, want)
			}
			if e.Bytes() != int64(b.Len()) {
				t.Errorf("Bytes() = %d, wrote %d", e.Bytes(), b.Len())
			}
		})
	}
}

// TestStreamRoundTrip pipes tokenizer straight into emitter and
// compares with the Parse+String normal form.
func TestStreamRoundTrip(t *testing.T) {
	d := classDTD(t)
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		doc := MustGenerate(d, r, GenOptions{StarMax: 4}).String()
		want, err := ParseString(doc)
		if err != nil {
			t.Fatalf("seed %d: Parse: %v", seed, err)
		}
		var b strings.Builder
		e := NewEmitter(&b)
		z := NewTokenizer(strings.NewReader(doc))
		for {
			tok, err := z.Next()
			if err != nil {
				t.Fatalf("seed %d: Next: %v", seed, err)
			}
			done := false
			switch tok.Kind {
			case TokStart:
				err = e.Start(tok.Name)
			case TokText:
				err = e.Text(tok.Text)
			case TokEnd:
				err = e.End()
			case TokEOF:
				err = e.Flush()
				done = true
			}
			if err != nil {
				t.Fatalf("seed %d: emit: %v", seed, err)
			}
			if done {
				break
			}
		}
		if got := b.String(); got != want.String() {
			t.Fatalf("seed %d: round trip differs:\n got: %q\nwant: %q", seed, got, want.String())
		}
	}
}

// TestTokenizerLimits is the table-driven guard enforcement suite: the
// tokenizer must bound depth, node count and input bytes even though
// it never builds a tree.
func TestTokenizerLimits(t *testing.T) {
	deep := strings.Repeat("<a>", 50) + strings.Repeat("</a>", 50)
	wide := "<r>" + strings.Repeat("<x/>", 100) + "</r>"
	texty := "<r>" + strings.Repeat("<s>t</s>", 50) + "</r>"
	cases := []struct {
		name      string
		doc       string
		lim       guard.Limits
		wantLimit string // LimitError.Limit, "" for success
	}{
		{"depth-ok", deep, guard.Limits{MaxDepth: 50}, ""},
		{"depth-exceeded", deep, guard.Limits{MaxDepth: 49}, "depth"},
		{"nodes-ok", wide, guard.Limits{MaxNodes: 101}, ""},
		{"nodes-exceeded", wide, guard.Limits{MaxNodes: 100}, "nodes"},
		{"text-counts-as-node", texty, guard.Limits{MaxNodes: 100}, "nodes"},
		{"bytes-exceeded", wide, guard.Limits{MaxInputBytes: 64}, "input-bytes"},
		{"unlimited", deep, guard.Unlimited(), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tokensToTree(NewTokenizerLimits(strings.NewReader(tc.doc), tc.lim))
			if tc.wantLimit == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			var le *guard.LimitError
			if !errors.As(err, &le) {
				t.Fatalf("error = %v, want *guard.LimitError", err)
			}
			if le.Limit != tc.wantLimit {
				t.Fatalf("limit = %q, want %q", le.Limit, tc.wantLimit)
			}
			// Same document, same limits: Parse must agree.
			_, perr := ParseLimits(strings.NewReader(tc.doc), tc.lim)
			var ple *guard.LimitError
			if !errors.As(perr, &ple) || ple.Limit != tc.wantLimit {
				t.Fatalf("ParseLimits error = %v, want %q limit", perr, tc.wantLimit)
			}
		})
	}
}

// TestTokenizerUnread checks LIFO pushback and that stats are not
// double-charged.
func TestTokenizerUnread(t *testing.T) {
	z := NewTokenizer(strings.NewReader("<a><b/></a>"))
	tok, err := z.Next()
	if err != nil || tok.Kind != TokStart || tok.Name != "a" {
		t.Fatalf("first = %+v, %v", tok, err)
	}
	z.Unread(tok)
	again, err := z.Next()
	if err != nil || again != tok {
		t.Fatalf("unread = %+v, %v, want %+v", again, err, tok)
	}
	// Drain and count: a, b, /b, /a → 4 tokens despite the re-read.
	n := int64(1)
	for {
		tok, err := z.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if tok.Kind == TokEOF {
			break
		}
		n++
	}
	if n != 4 {
		t.Fatalf("drained %d tokens, want 4", n)
	}
	if s := z.Stats(); s.Tokens != 4 || s.Nodes != 2 || s.MaxDepth != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestEmitterErrors covers the misuse guards.
func TestEmitterErrors(t *testing.T) {
	var b strings.Builder
	e := NewEmitter(&b)
	if err := e.End(); err == nil {
		t.Fatal("End with nothing open succeeded")
	}
	e = NewEmitter(&b)
	if err := e.Start("a"); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err == nil {
		t.Fatal("Flush with open element succeeded")
	}
}
