package xmltree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dtd"
)

func classDTD(t *testing.T) *dtd.DTD {
	t.Helper()
	return dtd.MustNew("db",
		dtd.D("db", dtd.Star("class")),
		dtd.D("class", dtd.Concat("cno", "title", "type")),
		dtd.D("cno", dtd.Str()),
		dtd.D("title", dtd.Str()),
		dtd.D("type", dtd.Disj("regular", "project")),
		dtd.D("regular", dtd.Concat("prereq")),
		dtd.D("project", dtd.Str()),
		dtd.D("prereq", dtd.Star("class")),
	)
}

const classDoc = `
<db>
  <class>
    <cno>CS331</cno>
    <title>Databases</title>
    <type>
      <regular>
        <prereq>
          <class>
            <cno>CS210</cno>
            <title>Algorithms</title>
            <type><project>solo</project></type>
          </class>
        </prereq>
      </regular>
    </type>
  </class>
</db>`

func TestParseAndValidate(t *testing.T) {
	tr, err := ParseString(classDoc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if err := tr.Validate(classDTD(t)); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tr.Root.Label != "db" {
		t.Errorf("root label = %q", tr.Root.Label)
	}
	cls := tr.Root.Children[0]
	if v, ok := cls.Children[0].Value(); !ok || v != "CS331" {
		t.Errorf("cno value = %q, %v", v, ok)
	}
}

func TestNodeIDsDistinct(t *testing.T) {
	tr, err := ParseString(classDoc)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[NodeID]bool{}
	tr.Walk(func(n *Node) {
		if seen[n.ID] {
			t.Fatalf("duplicate node id %d", n.ID)
		}
		seen[n.ID] = true
	})
	if got := tr.Size(); got != len(seen) {
		t.Errorf("Size() = %d, ids = %d", got, len(seen))
	}
}

func TestChildPosition(t *testing.T) {
	tr, _ := ParseString(`<r><a/><b/><a/><a/></r>`)
	kids := tr.Root.Children
	wants := []int{1, 1, 2, 3}
	for i, w := range wants {
		if got := kids[i].ChildPosition(); got != w {
			t.Errorf("child %d position = %d, want %d", i, got, w)
		}
	}
	if tr.Root.ChildPosition() != 1 {
		t.Error("root position should be 1")
	}
}

func TestEqualAndDiff(t *testing.T) {
	a, _ := ParseString(`<r><a>x</a><b/></r>`)
	b, _ := ParseString(`<r><a>x</a><b/></r>`)
	if !Equal(a, b) {
		t.Error("identical documents not Equal")
	}
	c, _ := ParseString(`<r><a>y</a><b/></r>`)
	if Equal(a, c) {
		t.Error("documents with different PCDATA reported Equal")
	}
	if d := Diff(a, c); !strings.Contains(d, `"x"`) {
		t.Errorf("Diff = %q, want the differing text values", d)
	}
	e, _ := ParseString(`<r><b/><a>x</a></r>`)
	if Equal(a, e) {
		t.Error("ordered equality must distinguish sibling order")
	}
	if d := Diff(a, a.Clone()); d != "" {
		t.Errorf("Diff(t, t.Clone()) = %q, want empty", d)
	}
}

func TestCloneIndependence(t *testing.T) {
	a, _ := ParseString(`<r><a>x</a></r>`)
	c := a.Clone()
	c.Root.Children[0].Children[0].Text = "changed"
	if v, _ := a.Root.Children[0].Value(); v != "x" {
		t.Error("Clone shares text storage with original")
	}
	if !Equal(a, a) {
		t.Error("self equality")
	}
}

func TestValidateErrors(t *testing.T) {
	d := classDTD(t)
	cases := []struct {
		name, doc, want string
	}{
		{"wrong root", `<x/>`, "root is"},
		{"missing child", `<db><class><cno>1</cno><title>t</title></class></db>`, "children"},
		{"wrong order", `<db><class><title>t</title><cno>1</cno><type><project>p</project></type></class></db>`, "child 1"},
		{"two disjuncts", `<db><class><cno>1</cno><title>t</title><type><project>p</project><project>q</project></type></class></db>`, "exactly one child"},
		{"bad disjunct", `<db><class><cno>1</cno><title>t</title><type><cno>1</cno></type></class></db>`, "not a permitted disjunct"},
		{"undefined element", `<db><zebra/></db>`, "want"},
		{"text under star", `<db>hello</db>`, ""},
		{"missing text", `<db><class><cno/><title>t</title><type><project>p</project></type></class></db>`, "exactly one text node"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := ParseString(tc.doc)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			err = tr.Validate(d)
			if err == nil {
				t.Fatal("Validate succeeded, want error")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	for _, doc := range []string{``, `<a><b></a></b>`, `<a/><b/>`, `no markup at all`} {
		if _, err := ParseString(doc); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", doc)
		}
	}
}

// TestParseRejectsUnroundtrippableNames is the minimized fuzz finding
// (corpus entry testdata/fuzz/FuzzXMLDecode/4b1974856ae82edd): the
// decoder splits "A:0" into prefix "A" and local name "0", and "0"
// alone is not a valid XML name — serializing a tree labeled "0" could
// never be parsed back. Such documents must fail at parse time.
// Prefixed names whose local part stands alone still parse, with the
// prefix stripped as documented.
func TestParseRejectsUnroundtrippableNames(t *testing.T) {
	for _, doc := range []string{
		`<ns:a A:0=""><A:0/></ns:a>`,
		`<A:0/>`,
		`<x:-bad/>`,
	} {
		if _, err := ParseString(doc); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", doc)
		}
	}
	tr, err := ParseString(`<ns:a><ns:b>x</ns:b></ns:a>`)
	if err != nil {
		t.Fatalf("prefixed element with valid local name rejected: %v", err)
	}
	if tr.Root.Label != "a" || tr.Root.Children[0].Label != "b" {
		t.Errorf("prefix not stripped: root %q, child %q", tr.Root.Label, tr.Root.Children[0].Label)
	}
	if _, err := ParseString(tr.String()); err != nil {
		t.Errorf("round trip failed: %v", err)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	tr, err := ParseString(classDoc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(tr.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !Equal(tr, back) {
		t.Errorf("round trip mismatch: %s", Diff(tr, back))
	}
}

func TestSerializeEscaping(t *testing.T) {
	tr := New("r")
	Append(tr.Root, tr.NewText("a < b & c > d"))
	back, err := ParseString(tr.String())
	if err != nil {
		t.Fatalf("reparse escaped text: %v", err)
	}
	if v, _ := back.Root.Value(); v != "a < b & c > d" {
		t.Errorf("escaped text round trip = %q", v)
	}
}

func TestGenerateValidates(t *testing.T) {
	d := classDTD(t)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		tr := MustGenerate(d, r, GenOptions{})
		if err := tr.Validate(d); err != nil {
			t.Fatalf("generated instance %d invalid: %v\n%s", i, err, tr)
		}
	}
}

func TestGenerateUnproductive(t *testing.T) {
	d := dtd.MustNew("r", dtd.D("r", dtd.Disj("a", "x")), dtd.D("a", dtd.Str()), dtd.D("x", dtd.Concat("x")))
	if _, err := Generate(d, rand.New(rand.NewSource(1)), GenOptions{}); err == nil {
		t.Error("Generate over inconsistent DTD should fail")
	}
}

// TestGeneratePropertyRecursive: random instances of a recursive DTD
// always validate and respect the star bound.
func TestGeneratePropertyRecursive(t *testing.T) {
	d := classDTD(t)
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := MustGenerate(d, r, GenOptions{StarMax: 2, DepthBudget: 9})
		if err := tr.Validate(d); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		valid := true
		tr.Walk(func(n *Node) {
			if n.Label == "db" || n.Label == "prereq" {
				if len(n.Children) > 2 {
					valid = false
				}
			}
		})
		return valid
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestGenerateParseValidateProperty: generate -> serialize -> parse
// round-trips to an equal tree.
func TestGenerateParseValidateProperty(t *testing.T) {
	d := classDTD(t)
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := MustGenerate(d, r, GenOptions{})
		back, err := ParseString(tr.String())
		if err != nil {
			return false
		}
		return Equal(tr, back)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestNodeByID(t *testing.T) {
	tr, _ := ParseString(`<r><a>x</a></r>`)
	n := tr.Root.Children[0]
	if got := tr.NodeByID(n.ID); got != n {
		t.Error("NodeByID did not find the child")
	}
	if got := tr.NodeByID(9999); got != nil {
		t.Error("NodeByID(9999) should be nil")
	}
}
