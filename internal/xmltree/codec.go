package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document into a Tree using encoding/xml's
// tokenizer. Whitespace-only character data between elements is dropped
// (the paper's model is element content plus PCDATA leaves); attributes,
// comments, processing instructions and directives are ignored. Node ids
// are assigned in document order.
func Parse(r io.Reader) (*Tree, error) {
	dec := xml.NewDecoder(r)
	t := &Tree{}
	var stack []*Node
	var pending strings.Builder
	flushText := func() {
		if pending.Len() == 0 {
			return
		}
		text := pending.String()
		pending.Reset()
		if strings.TrimSpace(text) == "" {
			return
		}
		if len(stack) == 0 {
			return
		}
		Append(stack[len(stack)-1], t.NewText(strings.TrimSpace(text)))
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch tok := tok.(type) {
		case xml.StartElement:
			flushText()
			n := t.NewElement(tok.Name.Local)
			if len(stack) == 0 {
				if t.Root != nil {
					return nil, fmt.Errorf("xmltree: multiple root elements")
				}
				t.Root = n
			} else {
				Append(stack[len(stack)-1], n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			flushText()
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end element %q", tok.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			pending.WriteString(string(tok))
		}
	}
	if t.Root == nil {
		return nil, fmt.Errorf("xmltree: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: unclosed element %q", stack[len(stack)-1].Label)
	}
	return t, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Tree, error) {
	return Parse(strings.NewReader(s))
}

// Write serializes the tree as indented XML to w.
func (t *Tree) Write(w io.Writer) error {
	_, err := io.WriteString(w, t.String())
	return err
}
