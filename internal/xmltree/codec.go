package xmltree

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/guard"
)

// codecPools recycle per-call scratch across documents: batch
// migration decodes and encodes thousands of trees back to back, and
// the parse stack / name-verdict map / serialization buffer are the
// dominant steady-state allocations.
var (
	parsePool sync.Pool // *parseScratch
	encPool   sync.Pool // *bytes.Buffer
)

// parseScratch is one Parse call's reusable state. The stack is
// cleared before pooling so it does not pin a finished document.
type parseScratch struct {
	stack []*Node
	names map[string]bool
}

func getParseScratch() *parseScratch {
	if s, _ := parsePool.Get().(*parseScratch); s != nil {
		return s
	}
	return &parseScratch{names: make(map[string]bool, 16)}
}

func putParseScratch(s *parseScratch) {
	clear(s.stack)
	s.stack = s.stack[:0]
	clear(s.names)
	parsePool.Put(s)
}

const maxPooledBuf = 1 << 20 // drop oversized buffers instead of pooling them

func getEncBuf() *bytes.Buffer {
	if b, _ := encPool.Get().(*bytes.Buffer); b != nil {
		b.Reset()
		return b
	}
	return bytes.NewBuffer(make([]byte, 0, 4096))
}

func putEncBuf(b *bytes.Buffer) {
	if b.Cap() > maxPooledBuf {
		return
	}
	encPool.Put(b)
}

// Parse reads an XML document into a Tree using encoding/xml's
// tokenizer. Whitespace-only character data between elements is dropped
// (the paper's model is element content plus PCDATA leaves); attributes,
// comments, processing instructions and directives are ignored. Node ids
// are assigned in document order.
//
// Parse enforces the default guard.Limits: input size, element nesting
// depth and total node count are bounded, and hostile input fails with
// a *guard.LimitError instead of exhausting the stack or the heap. Use
// ParseLimits to tighten or lift the bounds.
func Parse(r io.Reader) (*Tree, error) {
	return ParseLimits(r, guard.Limits{})
}

// ParseLimits is Parse under explicit resource limits (zero fields
// select the defaults; guard.Unlimited() disables the checks).
func ParseLimits(r io.Reader, lim guard.Limits) (*Tree, error) {
	lim = lim.WithDefaults()
	cr := &countingReader{r: r, lim: lim, ctx: "xmltree: parse"}
	dec := xml.NewDecoder(cr)
	t := &Tree{}
	scratch := getParseScratch()
	defer putParseScratch(scratch)
	names := scratch.names
	nodes := 0
	addNode := func() error {
		nodes++
		return lim.CheckNodes(nodes, "xmltree: parse")
	}
	stack := scratch.stack
	defer func() { scratch.stack = stack }()
	var pending strings.Builder
	flushText := func() error {
		if pending.Len() == 0 {
			return nil
		}
		text := pending.String()
		pending.Reset()
		if strings.TrimSpace(text) == "" {
			return nil
		}
		if len(stack) == 0 {
			return nil
		}
		if err := addNode(); err != nil {
			return err
		}
		Append(stack[len(stack)-1], t.NewText(strings.TrimSpace(text)))
		return nil
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			if le := cr.limitErr; le != nil {
				return nil, le
			}
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch tok := tok.(type) {
		case xml.StartElement:
			if err := flushText(); err != nil {
				return nil, err
			}
			if err := lim.CheckDepth(len(stack)+1, "xmltree: parse"); err != nil {
				return nil, err
			}
			if err := addNode(); err != nil {
				return nil, err
			}
			if !validName(tok.Name.Local, names) {
				return nil, fmt.Errorf("xmltree: parse: element name %q is not a valid XML name on its own (namespaced local names like \"ns:%s\" cannot round-trip)", tok.Name.Local, tok.Name.Local)
			}
			n := t.NewElement(tok.Name.Local)
			if len(stack) == 0 {
				if t.Root != nil {
					return nil, fmt.Errorf("xmltree: multiple root elements")
				}
				t.Root = n
			} else {
				Append(stack[len(stack)-1], n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if err := flushText(); err != nil {
				return nil, err
			}
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end element %q", tok.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			pending.WriteString(string(tok))
		}
	}
	if t.Root == nil {
		return nil, fmt.Errorf("xmltree: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: unclosed element %q", stack[len(stack)-1].Label)
	}
	return t, nil
}

// validName reports whether encoding/xml accepts label as a complete
// element name, so that serializing the tree reparses. The decoder
// splits qualified names at the first colon, and a local part like "0"
// (from "<A:0/>") is not a name by itself — labels are what this
// package serializes, so such documents are rejected up front rather
// than producing trees whose serialization cannot be parsed back.
// cache memoizes verdicts per document (labels repeat heavily).
func validName(label string, cache map[string]bool) bool {
	ok, hit := cache[label]
	if hit {
		return ok
	}
	tok, err := xml.NewDecoder(strings.NewReader("<" + label + "/>")).Token()
	if err == nil {
		se, isStart := tok.(xml.StartElement)
		ok = isStart && se.Name.Space == "" && se.Name.Local == label && len(se.Attr) == 0
	}
	cache[label] = ok
	return ok
}

// countingReader bounds the bytes read from the underlying reader,
// surfacing a LimitError through the decoder. ctx names the consumer
// in limit errors ("xmltree: parse" here, "xmltree: stream" for the
// Tokenizer).
type countingReader struct {
	r        io.Reader
	n        int
	lim      guard.Limits
	ctx      string
	limitErr error
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	if lerr := c.lim.CheckInputBytes(c.n, c.ctx); lerr != nil {
		c.limitErr = lerr
		return n, lerr
	}
	return n, err
}

// ParseString is Parse over a string.
func ParseString(s string) (*Tree, error) {
	return Parse(strings.NewReader(s))
}

// Write serializes the tree as indented XML to w. The serialization
// buffer comes from a pool, so batch encoding does not reallocate the
// full document image per tree; output is byte-identical to String.
func (t *Tree) Write(w io.Writer) error {
	b := getEncBuf()
	writeNode(b, t.Root, 0)
	_, err := w.Write(b.Bytes())
	putEncBuf(b)
	return err
}

// WriteCompact is StringCompact to a writer, sharing the pooled
// serialization buffer with Write.
func (t *Tree) WriteCompact(w io.Writer) error {
	b := getEncBuf()
	writeNodeCompact(b, t.Root)
	_, err := w.Write(b.Bytes())
	putEncBuf(b)
	return err
}
