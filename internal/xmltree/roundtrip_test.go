package xmltree

import (
	"strings"
	"testing"
)

// TestRoundTripCarriageReturn pins the XML 1.0 §2.11 trap the xmllint
// differential exposed: a literal CR in serialized character data is
// normalized to LF by conforming parsers, so CR must leave as &#xD;
// or the value silently changes on reparse.
func TestRoundTripCarriageReturn(t *testing.T) {
	in := "<a>x&#xD;y</a>"
	tr, err := ParseString(in)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := tr.Root.Children[0].Text; got != "x\ry" {
		t.Fatalf("char ref &#xD; should decode to CR, got %q", got)
	}
	for name, s := range map[string]string{"String": tr.String(), "StringCompact": tr.StringCompact()} {
		if !strings.Contains(s, "&#xD;") {
			t.Errorf("%s does not escape CR: %q", name, s)
		}
		back, err := ParseString(s)
		if err != nil {
			t.Fatalf("%s reparse: %v", name, err)
		}
		if !Equal(tr, back) {
			t.Errorf("%s round trip changed the tree: %s", name, Diff(tr, back))
		}
	}
}

// TestRoundTripCDATAClose pins that the CDATA close delimiter ]]> in
// text content survives serialization (the '>' must be escaped — a
// raw "]]>" in character data is ill-formed XML).
func TestRoundTripCDATAClose(t *testing.T) {
	in := "<a><![CDATA[x]]&gt;y]]></a>"
	tr, err := ParseString(in)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	// Build the hostile value directly too, in case the reader mangles it.
	tr2 := &Tree{}
	tr2.Root = tr2.NewElement("a")
	Append(tr2.Root, tr2.NewText("x]]>y"))
	for _, tree := range []*Tree{tr, tr2} {
		for name, s := range map[string]string{"String": tree.String(), "StringCompact": tree.StringCompact()} {
			if strings.Contains(s, "]]>") {
				t.Errorf("%s leaves raw CDATA close delimiter: %q", name, s)
			}
			back, err := ParseString(s)
			if err != nil {
				t.Fatalf("%s reparse: %v", name, err)
			}
			if !Equal(tree, back) {
				t.Errorf("%s round trip changed the tree: %s", name, Diff(tree, back))
			}
		}
	}
}

// TestParseDoctype pins that a DOCTYPE declaration (with or without an
// internal subset) is ignored, matching the package contract that
// directives do not contribute nodes — xmllint-validated corpus
// documents carry one.
func TestParseDoctype(t *testing.T) {
	in := `<?xml version="1.0"?>
<!DOCTYPE a [
  <!ELEMENT a (b)*>
  <!ELEMENT b (#PCDATA)>
]>
<a><b>x</b></a>`
	tr, err := ParseString(in)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want, err := ParseString("<a><b>x</b></a>")
	if err != nil {
		t.Fatalf("parse plain: %v", err)
	}
	if !Equal(tr, want) {
		t.Errorf("DOCTYPE changed the tree: %s", Diff(tr, want))
	}
}

// TestStringCompact pins the compact form: no indentation, no
// inter-element whitespace, reparses equal.
func TestStringCompact(t *testing.T) {
	tr, err := ParseString("<a>\n  <b/>\n  <c>x</c>\n  <d>x<e/>y</d>\n</a>")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	got := tr.StringCompact()
	want := "<a><b/><c>x</c><d>x<e/>y</d></a>"
	if got != want {
		t.Errorf("StringCompact = %q, want %q", got, want)
	}
	back, err := ParseString(got)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !Equal(tr, back) {
		t.Errorf("compact round trip changed the tree: %s", Diff(tr, back))
	}
}
