// Package match produces similarity matrices (the att of §4.1). The
// paper assumes an external schema matcher (LSD, Cupid, ...); this
// substrate provides (a) a lexical matcher combining normalized edit
// distance and trigram overlap on tag names, good enough to score
// renamed copies of a schema, and (b) a synthetic generator with
// controllable accuracy and ambiguity, because the experimental study
// sweeps att accuracy as an independent variable.
package match

import (
	"math/rand"
	"strings"

	"repro/internal/dtd"
	"repro/internal/embedding"
)

// NameSimilarity scores two tag names in [0, 1] as the maximum of
// normalized edit similarity and trigram (Jaccard) overlap of the
// lower-cased names. Identical names score 1.
func NameSimilarity(a, b string) float64 {
	a, b = normalize(a), normalize(b)
	if a == b {
		return 1
	}
	ed := editSimilarity(a, b)
	tg := trigramSimilarity(a, b)
	if tg > ed {
		return tg
	}
	return ed
}

func normalize(s string) string {
	s = strings.ToLower(s)
	s = strings.Map(func(r rune) rune {
		switch r {
		case '-', '_', '.', ':':
			return -1
		}
		return r
	}, s)
	return s
}

// editSimilarity is 1 - levenshtein/maxlen.
func editSimilarity(a, b string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	d := levenshtein(a, b)
	max := len(a)
	if len(b) > max {
		max = len(b)
	}
	return 1 - float64(d)/float64(max)
}

func levenshtein(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func trigramSimilarity(a, b string) float64 {
	ta, tb := trigrams(a), trigrams(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	inter := 0
	for g := range ta {
		if tb[g] {
			inter++
		}
	}
	union := len(ta) + len(tb) - inter
	return float64(inter) / float64(union)
}

func trigrams(s string) map[string]bool {
	s = "  " + s + " "
	out := map[string]bool{}
	for i := 0; i+3 <= len(s); i++ {
		out[s[i:i+3]] = true
	}
	return out
}

// Lexical builds att by scoring every (source, target) tag pair with
// NameSimilarity, zeroing scores below threshold.
func Lexical(src, tgt *dtd.DTD, threshold float64) *embedding.SimMatrix {
	m := embedding.NewSimMatrix()
	for _, a := range src.Types {
		for _, b := range tgt.Types {
			if s := NameSimilarity(a, b); s >= threshold {
				m.Set(a, b, s)
			}
		}
	}
	return m
}

// SyntheticOptions controls synthetic att generation around a known
// ground-truth type mapping.
type SyntheticOptions struct {
	// Accuracy is the probability that the ground-truth pair receives
	// the highest score for its source type. At 1.0 the truth always
	// wins; lower values let a decoy outrank it.
	Accuracy float64
	// Ambiguity is the number of candidate target types per source type
	// (including the truth). 1 reproduces the unambiguous case in which
	// embedding is PTIME (§5.2).
	Ambiguity int
}

// Synthetic builds att for a known ground truth λ: each source type
// gets the true pair plus Ambiguity-1 random decoys; with probability
// 1-Accuracy a decoy receives a higher score than the truth. It models
// the output of an imperfect matcher with a tunable accuracy knob.
func Synthetic(src, tgt *dtd.DTD, truth map[string]string, opts SyntheticOptions, r *rand.Rand) *embedding.SimMatrix {
	if opts.Ambiguity < 1 {
		opts.Ambiguity = 1
	}
	m := embedding.NewSimMatrix()
	for _, a := range src.Types {
		t, ok := truth[a]
		if !ok {
			continue
		}
		truthScore := 0.7 + 0.3*r.Float64()
		m.Set(a, t, truthScore)
		decoys := opts.Ambiguity - 1
		pool := append([]string(nil), tgt.Types...)
		r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		for _, b := range pool {
			if decoys == 0 {
				break
			}
			if b == t {
				continue
			}
			score := truthScore * (0.3 + 0.6*r.Float64())
			if r.Float64() >= opts.Accuracy {
				// An inaccurate matcher ranks this decoy above the truth.
				score = truthScore + (1-truthScore)*r.Float64()
			}
			m.Set(a, b, score)
			decoys--
		}
	}
	return m
}
