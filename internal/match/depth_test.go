package match_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/dtd"
	"repro/internal/guard"
	"repro/internal/match"
	"repro/internal/workload"
)

// TestNameSimilarityTable sweeps the scoring edge cases: separator and
// case normalization, empty names, and the trigram-vs-edit maximum.
func TestNameSimilarityTable(t *testing.T) {
	tests := []struct {
		name string
		a, b string
		want func(s float64) bool
	}{
		{"identical", "order", "order", func(s float64) bool { return s == 1 }},
		{"case and separators normalize away", "Order-ID", "order_id", func(s float64) bool { return s == 1 }},
		{"dots and colons normalize away", "ns:item.id", "nsitemid", func(s float64) bool { return s == 1 }},
		{"both empty", "", "", func(s float64) bool { return s == 1 }},
		{"empty vs nonempty", "", "order", func(s float64) bool { return s == 0 }},
		{"only separators vs nonempty", "-_.", "x", func(s float64) bool { return s == 0 }},
		{"disjoint short names score low", "ab", "xy", func(s float64) bool { return s == 0 }},
		{"shared prefix scores between", "orderline", "orderitem", func(s float64) bool { return s > 0.3 && s < 1 }},
		{"rename keeps signal", "customer", "customers", func(s float64) bool { return s > 0.7 && s < 1 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s := match.NameSimilarity(tc.a, tc.b)
			if s < 0 || s > 1 {
				t.Fatalf("NameSimilarity(%q, %q) = %v out of [0, 1]", tc.a, tc.b, s)
			}
			if !tc.want(s) {
				t.Errorf("NameSimilarity(%q, %q) = %v", tc.a, tc.b, s)
			}
			if back := match.NameSimilarity(tc.b, tc.a); back != s {
				t.Errorf("asymmetric: %v vs %v", s, back)
			}
		})
	}
}

// TestLexicalThresholds: the threshold is a hard floor — 0 admits every
// pair, 1 only exact (normalized) matches, and above 1 nothing.
func TestLexicalThresholds(t *testing.T) {
	src, tgt := workload.ClassDTD(), workload.SchoolDTD()
	all := match.Lexical(src, tgt, 0)
	want := 0
	for _, a := range src.Types {
		for _, b := range tgt.Types {
			if match.NameSimilarity(a, b) > 0 {
				want++
			}
		}
	}
	// The matrix stores only positive scores, so threshold 0 keeps
	// exactly the pairs with any lexical signal.
	if all.Pairs() != want {
		t.Errorf("threshold 0 kept %d pairs, want %d", all.Pairs(), want)
	}
	exact := match.Lexical(src, tgt, 1)
	for _, a := range src.Types {
		for _, b := range tgt.Types {
			if s := exact.Get(a, b); s > 0 && match.NameSimilarity(a, b) != 1 {
				t.Errorf("threshold 1 kept non-exact pair (%s, %s) = %v", a, b, s)
			}
		}
	}
	if none := match.Lexical(src, tgt, 1.01); none.Pairs() != 0 {
		t.Errorf("threshold 1.01 kept %d pairs, want 0", none.Pairs())
	}
}

// TestSyntheticTable covers the generator's knobs and degenerate
// inputs.
func TestSyntheticTable(t *testing.T) {
	src, tgt := workload.ClassDTD(), workload.SchoolDTD()
	truth := map[string]string{}
	for i, a := range src.Types {
		truth[a] = tgt.Types[i%tgt.Size()]
	}

	t.Run("ambiguity below one normalizes to truth only", func(t *testing.T) {
		m := match.Synthetic(src, tgt, truth, match.SyntheticOptions{Accuracy: 1, Ambiguity: 0}, rand.New(rand.NewSource(1)))
		for _, a := range src.Types {
			if got := len(m.Candidates(a)); got != 1 {
				t.Errorf("%s has %d candidates, want 1", a, got)
			}
		}
	})

	t.Run("missing truth entries are skipped", func(t *testing.T) {
		partialTruth := map[string]string{src.Root: tgt.Root}
		m := match.Synthetic(src, tgt, partialTruth, match.SyntheticOptions{Accuracy: 1, Ambiguity: 3}, rand.New(rand.NewSource(1)))
		for _, a := range src.Types {
			if a == src.Root {
				continue
			}
			if got := len(m.Candidates(a)); got != 0 {
				t.Errorf("unmapped type %s has %d candidates, want 0", a, got)
			}
		}
	})

	t.Run("ambiguity beyond the target pool is clamped", func(t *testing.T) {
		m := match.Synthetic(src, tgt, truth, match.SyntheticOptions{Accuracy: 1, Ambiguity: tgt.Size() + 50}, rand.New(rand.NewSource(1)))
		for _, a := range src.Types {
			if got := len(m.Candidates(a)); got > tgt.Size() {
				t.Errorf("%s has %d candidates, more than the %d target types", a, got, tgt.Size())
			}
		}
	})

	t.Run("perfect accuracy ranks truth first", func(t *testing.T) {
		m := match.Synthetic(src, tgt, truth, match.SyntheticOptions{Accuracy: 1, Ambiguity: 4}, rand.New(rand.NewSource(2)))
		for _, a := range src.Types {
			want := truth[a]
			for _, b := range m.Candidates(a) {
				if b != want && m.Get(a, b) >= m.Get(a, want) {
					t.Errorf("%s: decoy %s (%.3f) outranks truth %s (%.3f) at accuracy 1",
						a, b, m.Get(a, b), want, m.Get(a, want))
				}
			}
		}
	})

	t.Run("zero accuracy lets decoys win", func(t *testing.T) {
		m := match.Synthetic(src, tgt, truth, match.SyntheticOptions{Accuracy: 0, Ambiguity: 3}, rand.New(rand.NewSource(3)))
		outranked := 0
		for _, a := range src.Types {
			want := truth[a]
			for _, b := range m.Candidates(a) {
				if b != want && m.Get(a, b) > m.Get(a, want) {
					outranked++
					break
				}
			}
		}
		if outranked == 0 {
			t.Error("accuracy 0 never let a decoy outrank the truth")
		}
	})

	t.Run("same seed reproduces the matrix", func(t *testing.T) {
		opts := match.SyntheticOptions{Accuracy: 0.5, Ambiguity: 3}
		m1 := match.Synthetic(src, tgt, truth, opts, rand.New(rand.NewSource(7)))
		m2 := match.Synthetic(src, tgt, truth, opts, rand.New(rand.NewSource(7)))
		if m1.String() != m2.String() {
			t.Error("same seed produced different matrices")
		}
	})
}

// TestLexicalOnLimitedParse: the matcher sits downstream of schema
// parsing, so hostile schema text is stopped by PR 1's guard limits
// before any similarity scoring happens.
func TestLexicalOnLimitedParse(t *testing.T) {
	_, err := dtd.ParseLimits(workload.ClassDTD().String(), "db", guard.Limits{MaxTypes: 3})
	var le *guard.LimitError
	if !errors.As(err, &le) || le.Limit != "types" {
		t.Fatalf("ParseLimits = %v, want types LimitError", err)
	}
}
