package match_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/match"
	"repro/internal/workload"
)

func TestNameSimilarityBasics(t *testing.T) {
	cases := []struct {
		a, b string
		min  float64
		max  float64
	}{
		{"class", "class", 1, 1},
		{"class", "Class", 1, 1},
		{"order_id", "orderid", 1, 1},
		{"class", "klass", 0.5, 0.99},
		{"cno", "course-number", 0.0, 0.5},
		{"instructor", "instructors", 0.8, 0.999},
		{"a", "zzzz", 0, 0.26},
	}
	for _, tc := range cases {
		got := match.NameSimilarity(tc.a, tc.b)
		if got < tc.min || got > tc.max {
			t.Errorf("NameSimilarity(%q, %q) = %v, want in [%v, %v]", tc.a, tc.b, got, tc.min, tc.max)
		}
	}
}

func TestNameSimilaritySymmetricProperty(t *testing.T) {
	words := []string{"class", "course", "cno", "student", "ssn", "name", "taking", "x", ""}
	prop := func(i, j uint8) bool {
		a := words[int(i)%len(words)]
		b := words[int(j)%len(words)]
		x, y := match.NameSimilarity(a, b), match.NameSimilarity(b, a)
		return x == y && x >= 0 && x <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestLexicalMatrix(t *testing.T) {
	src := workload.ClassDTD()
	tgt := workload.SchoolDTD()
	att := match.Lexical(src, tgt, 0.6)
	// Identical tag names must survive the threshold with score 1.
	for _, shared := range []string{"cno", "title", "regular", "project", "prereq"} {
		if att.Get(shared, shared) != 1 {
			t.Errorf("att(%s, %s) = %v, want 1", shared, shared, att.Get(shared, shared))
		}
	}
	if att.Get("db", "school") != 0 {
		t.Errorf("att(db, school) = %v, want 0 (no lexical overlap at 0.6)", att.Get("db", "school"))
	}
	if att.Pairs() == 0 {
		t.Error("empty lexical matrix")
	}
}

func TestSyntheticUnambiguous(t *testing.T) {
	d := workload.StudentDTD()
	truth := map[string]string{}
	for _, a := range d.Types {
		truth[a] = a
	}
	att := match.Synthetic(d, d, truth, match.SyntheticOptions{Accuracy: 1, Ambiguity: 1}, rand.New(rand.NewSource(2)))
	for _, a := range d.Types {
		cands := att.Candidates(a)
		if len(cands) != 1 || cands[0] != a {
			t.Errorf("candidates(%s) = %v, want exactly the truth", a, cands)
		}
	}
}

func TestSyntheticAmbiguityAndAccuracy(t *testing.T) {
	d := workload.SchoolDTD()
	truth := map[string]string{}
	for _, a := range d.Types {
		truth[a] = a
	}
	r := rand.New(rand.NewSource(3))
	att := match.Synthetic(d, d, truth, match.SyntheticOptions{Accuracy: 1, Ambiguity: 3}, r)
	topWins := 0
	for _, a := range d.Types {
		cands := att.Candidates(a)
		if len(cands) < 2 || len(cands) > 3 {
			t.Errorf("candidates(%s) = %d entries, want 2-3 at ambiguity 3", a, len(cands))
		}
		if len(cands) > 0 && cands[0] == a {
			topWins++
		}
	}
	if topWins != len(d.Types) {
		t.Errorf("at accuracy 1 the truth must rank first for all types; got %d/%d", topWins, len(d.Types))
	}
	// At accuracy 0 the truth should frequently lose the top rank.
	att0 := match.Synthetic(d, d, truth, match.SyntheticOptions{Accuracy: 0, Ambiguity: 3}, r)
	losses := 0
	for _, a := range d.Types {
		if cands := att0.Candidates(a); len(cands) > 0 && cands[0] != a {
			losses++
		}
	}
	if losses < len(d.Types)/2 {
		t.Errorf("at accuracy 0 only %d/%d truths were outranked", losses, len(d.Types))
	}
}

func TestSimMatrixCloneIndependent(t *testing.T) {
	d := workload.StudentDTD()
	att := match.Lexical(d, d, 0.5)
	c := att.Clone()
	c.Set("ssn", "ssn", 0)
	if att.Get("ssn", "ssn") == 0 {
		t.Error("Clone shares storage")
	}
}
