package anfa

import "repro/internal/obs"

// Process-registry instruments. Evaluation is the data-plane hot path:
// both counters are bumped once per call (EvalCtx / RemoveUseless),
// never inside the BFS loops.
var (
	mEvals = obs.Default().Counter("xse_anfa_evals_total",
		"Automaton evaluations (EvalCtx calls, including qualifier-free fast paths).")
	mPruned = obs.Default().Counter("xse_anfa_pruned_states_total",
		"States discarded by useless-state removal across all constructions.")
)
