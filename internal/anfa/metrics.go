package anfa

import "repro/internal/obs"

// Process-registry instruments. Evaluation is the data-plane hot path:
// both counters are bumped once per call (EvalCtx / RemoveUseless),
// never inside the BFS loops.
var (
	mEvals = obs.Default().Counter("xse_anfa_evals_total",
		"Automaton evaluations (EvalCtx calls, including qualifier-free fast paths).")
	mPruned = obs.Default().Counter("xse_anfa_pruned_states_total",
		"States discarded by useless-state removal across all constructions.")
)

// Optimizer and compiled-backend instruments: bumped once per
// Optimize / Compile / RunCtx call, never inside the hot loops.
var (
	mOptStatesRemoved = obs.Default().Counter("xse_anfa_opt_states_removed_total",
		"States dropped by the optimizer as schema-dead or useless.")
	mOptMerged = obs.Default().Counter("xse_anfa_opt_merged_total",
		"States eliminated by the optimizer's subset construction, bisimulation merging and sub-ANFA sharing.")
	mOptPrograms = obs.Default().Counter("xse_anfa_opt_programs_total",
		"Compiled ANFA programs built (anfa.Compile calls).")
	mCompiledEvals = obs.Default().Counter("xse_anfa_compiled_evals_total",
		"Compiled-program evaluations (Program.RunCtx calls).")
)
