package anfa_test

import (
	"strings"
	"testing"

	"repro/internal/anfa"
	"repro/internal/xpath"
)

func TestAutomatonString(t *testing.T) {
	auto, err := anfa.FromExpr(xpath.MustParse(`a[b/text() = "v"]/c*`))
	if err != nil {
		t.Fatal(err)
	}
	s := auto.String()
	for _, want := range []string{"M: start=", "-a->", "-c->", "ε", "text() = \"v\""} {
		if !strings.Contains(s, want) {
			t.Errorf("String() lacks %q:\n%s", want, s)
		}
	}
}

func TestQualifierRendering(t *testing.T) {
	auto, err := anfa.FromExpr(xpath.MustParse(`a[not(b) and (c or position() = 2)]`))
	if err != nil {
		t.Fatal(err)
	}
	s := auto.String()
	for _, want := range []string{"not(", "and", "or", "position() = 2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() lacks %q:\n%s", want, s)
		}
	}
}

func TestEmbedTransfersAnnotations(t *testing.T) {
	src, err := anfa.FromExpr(xpath.MustParse("a[position() = 3]"))
	if err != nil {
		t.Fatal(err)
	}
	dst := anfa.NewMachine()
	remap := anfa.Embed(dst, src.M)
	found := false
	for old, q := range src.M.Ann {
		nq, ok := dst.Ann[remap[old]]
		if !ok || nq != q {
			t.Errorf("annotation not transferred for state %d", old)
		}
		found = true
	}
	if !found {
		t.Fatal("expected at least one annotation")
	}
	// Finals are deliberately NOT transferred.
	for s := range dst.Finals {
		t.Errorf("final %d transferred", s)
	}
}

func TestFinalStatesSorted(t *testing.T) {
	m := anfa.NewMachine()
	a, b := m.AddState(), m.AddState()
	m.Finals[b] = true
	m.Finals[a] = true
	fs := m.FinalStates()
	if len(fs) != 2 || fs[0] > fs[1] {
		t.Errorf("FinalStates = %v", fs)
	}
}
