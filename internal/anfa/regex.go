package anfa

import (
	"fmt"
	"sort"

	"repro/internal/xpath"
)

// ToRegex converts the automaton back to an X_R expression by GNFA
// state elimination. This subsumes NFA-to-regular-expression
// conversion, which is EXPTIME-complete in general (Ehrenfeucht &
// Zeiger); use it only on small automata — the automaton form is the
// intended runtime representation (§4.4). Annotations are folded onto
// the incoming step as qualifiers, which is exact when annotated states
// are entered by label or ε steps (the only shapes the builders in this
// module produce).
func (a *Automaton) ToRegex() (xpath.Expr, error) {
	return a.machineRegex(a.M, map[string]bool{})
}

func (a *Automaton) machineRegex(m *Machine, inProgress map[string]bool) (xpath.Expr, error) {
	if !anyFinalReachable(m) {
		return nil, fmt.Errorf("anfa: automaton accepts nothing; no X_R expression exists")
	}
	// GNFA edges: (i, j) -> Expr. Super-start = -1, super-final = -2.
	type edgeKey struct{ from, to int }
	edges := map[edgeKey]xpath.Expr{}
	addEdge := func(i, j int, e xpath.Expr) {
		k := edgeKey{i, j}
		if old, ok := edges[k]; ok {
			edges[k] = xpath.Union{L: old, R: e}
			return
		}
		edges[k] = e
	}

	stepExpr := func(label string, to StateID) (xpath.Expr, error) {
		var e xpath.Expr
		switch label {
		case Epsilon:
			e = xpath.Empty{}
		case TextLabel:
			e = xpath.Text{}
		default:
			e = xpath.Label{Name: label}
		}
		if q, ok := m.Ann[to]; ok {
			xq, err := a.qualExpr(q, inProgress)
			if err != nil {
				return nil, err
			}
			e = xpath.Filter{P: e, Q: xq}
		}
		return e, nil
	}

	for s := 0; s < m.States; s++ {
		for _, t := range m.Trans[s] {
			e, err := stepExpr(t.Label, t.To)
			if err != nil {
				return nil, err
			}
			addEdge(s, int(t.To), e)
		}
	}
	const superStart, superFinal = -1, -2
	// The ε edge from the super-start carries the start state's own
	// annotation (checked at the context node), like any other edge
	// entering an annotated state.
	startEdge, err := stepExpr(Epsilon, m.Start)
	if err != nil {
		return nil, err
	}
	addEdge(superStart, int(m.Start), startEdge)
	for f := range m.Finals {
		addEdge(int(f), superFinal, xpath.Empty{})
	}

	order := make([]int, 0, m.States)
	for s := 0; s < m.States; s++ {
		order = append(order, s)
	}
	sort.Ints(order)
	states := map[int]bool{superStart: true, superFinal: true}
	for _, s := range order {
		states[s] = true
	}
	for _, k := range order {
		// Eliminate state k.
		var ins, outs []edgeKey
		var loop xpath.Expr
		for key := range edges {
			switch {
			case key.from == k && key.to == k:
				loop = edges[key]
			case key.to == k:
				ins = append(ins, key)
			case key.from == k:
				outs = append(outs, key)
			}
		}
		sort.Slice(ins, func(i, j int) bool { return ins[i].from < ins[j].from })
		sort.Slice(outs, func(i, j int) bool { return outs[i].to < outs[j].to })
		for _, in := range ins {
			for _, out := range outs {
				e := edges[in]
				if loop != nil {
					e = seqSimplify(e, xpath.Star{P: loop})
				}
				e = seqSimplify(e, edges[out])
				addEdge(in.from, out.to, e)
			}
		}
		for key := range edges {
			if key.from == k || key.to == k {
				delete(edges, key)
			}
		}
		delete(states, k)
	}
	final, ok := edges[edgeKey{superStart, superFinal}]
	if !ok {
		return nil, fmt.Errorf("anfa: elimination produced no start-to-final expression")
	}
	return xpath.Simplify(final), nil
}

// seqSimplify builds l/r, dropping ε identities and re-attaching
// qualifiers that elimination left on a bare ε step (X/.[q] becomes
// X[q], which also restores the exact position() placement the
// original expression had before automaton construction).
func seqSimplify(l, r xpath.Expr) xpath.Expr {
	if isEmptyExpr(l) {
		return r
	}
	if f, ok := r.(xpath.Filter); ok && isEmptyExpr(f.P) {
		return attachQual(l, f.Q)
	}
	if isEmptyExpr(r) {
		return l
	}
	return xpath.Seq{L: l, R: r}
}

// attachQual attaches a qualifier to the final step of l, so that
// position() lands on the step it originally qualified rather than on
// the whole sequence.
func attachQual(l xpath.Expr, q xpath.Qual) xpath.Expr {
	if seq, ok := l.(xpath.Seq); ok {
		return xpath.Seq{L: seq.L, R: attachQual(seq.R, q)}
	}
	return xpath.Filter{P: l, Q: q}
}

func isEmptyExpr(e xpath.Expr) bool {
	_, ok := e.(xpath.Empty)
	return ok
}

func (a *Automaton) qualExpr(q Qual, inProgress map[string]bool) (xpath.Qual, error) {
	switch q := q.(type) {
	case QName:
		sub, err := a.nameRegex(q.X, inProgress)
		if err != nil {
			return nil, err
		}
		return xpath.QPath{P: sub}, nil
	case QTextEq:
		sub, err := a.nameRegex(q.X, inProgress)
		if err != nil {
			return nil, err
		}
		return xpath.QTextEq{P: sub, Val: q.Val}, nil
	case QPos:
		return xpath.QPos{K: q.K}, nil
	case QNot:
		inner, err := a.qualExpr(q.Q, inProgress)
		if err != nil {
			return nil, err
		}
		return xpath.QNot{Q: inner}, nil
	case QAnd:
		l, err := a.qualExpr(q.L, inProgress)
		if err != nil {
			return nil, err
		}
		r, err := a.qualExpr(q.R, inProgress)
		if err != nil {
			return nil, err
		}
		return xpath.QAnd{L: l, R: r}, nil
	case QOr:
		l, err := a.qualExpr(q.L, inProgress)
		if err != nil {
			return nil, err
		}
		r, err := a.qualExpr(q.R, inProgress)
		if err != nil {
			return nil, err
		}
		return xpath.QOr{L: l, R: r}, nil
	}
	return nil, fmt.Errorf("anfa: unsupported annotation %T", q)
}

func (a *Automaton) nameRegex(x string, inProgress map[string]bool) (xpath.Expr, error) {
	if inProgress[x] {
		return nil, fmt.Errorf("anfa: cyclic name reference %q", x)
	}
	sub, ok := a.Names[x]
	if !ok {
		return nil, fmt.Errorf("anfa: undefined name %q", x)
	}
	inProgress[x] = true
	defer delete(inProgress, x)
	if !anyFinalReachable(sub) {
		// An unsatisfiable qualifier: encode as a step no document
		// matches is impossible in pure X_R without schema knowledge;
		// use not(.) which never holds.
		return nil, fmt.Errorf("anfa: qualifier %q accepts nothing and has no X_R form", x)
	}
	return a.machineRegex(sub, inProgress)
}
