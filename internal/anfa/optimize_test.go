package anfa_test

import (
	"testing"

	"repro/internal/anfa"
	"repro/internal/dtd"
	"repro/internal/xpath"
)

// TestOptimizeDifferential checks the optimizer and the compiled
// backend against the interpreted, unoptimized baseline: on every
// query the three selections must be identical as ID sets, and the
// optimizer must never grow the automaton.
func TestOptimizeDifferential(t *testing.T) {
	tr := doc(t, `<r><a>x</a><a>y</a><b><a>z</a><c/></b><b><c><a>w</a></c></b></r>`)
	queries := []string{
		".",
		"a",
		"b/a",
		"a | b",
		"a/text()",
		"(a | b)*",
		"(a | b/c)*/a",
		"b[a]",
		"b[not(zz)]",
		"b[c[a]]",
		"a[text() = \"y\"]",
		"a[position() = 2]",
		"b/a[position() = 1]",
		"(a/text()) | (b/c)",
		"(b | b/c)*[a]/a",
	}
	for _, src := range queries {
		q := xpath.MustParse(src)
		base, err := anfa.FromExpr(q)
		if err != nil {
			t.Fatalf("FromExpr(%q): %v", src, err)
		}
		want := base.Eval(tr.Root)

		opt := base.Clone()
		st := anfa.Optimize(opt, anfa.OptOptions{})
		if st.SizeAfter > st.SizeBefore {
			t.Errorf("%q: optimizer grew the automaton: %d -> %d", src, st.SizeBefore, st.SizeAfter)
		}
		if got := opt.Eval(tr.Root); !sameNodes(want, got) {
			t.Errorf("%q: optimized Eval selected %v, want %v\nbefore:\n%s\nafter:\n%s",
				src, idSet(got), idSet(want), base, opt)
		}
		if got := opt.Program().Run(tr.Root); !sameNodes(want, got) {
			t.Errorf("%q: compiled Run selected %v, want %v\nautomaton:\n%s",
				src, idSet(got), idSet(want), opt)
		}
		// The unoptimized automaton must compile correctly too.
		if got := base.Program().Run(tr.Root); !sameNodes(want, got) {
			t.Errorf("%q: compiled (unoptimized) Run selected %v, want %v", src, idSet(got), idSet(want))
		}
	}
}

// TestOptimizeSchemaPrune checks that transitions on labels the
// target schema cannot produce below the reachable types are removed,
// without changing the selection on conforming documents.
func TestOptimizeSchemaPrune(t *testing.T) {
	d := dtd.MustNew("r",
		dtd.D("r", dtd.Star("a")),
		dtd.D("a", dtd.Str()))
	tr := doc(t, `<r><a>x</a><a>y</a></r>`)
	auto, err := anfa.FromExpr(xpath.MustParse("(a | zz)*/a[text() = \"y\"] | zz"))
	if err != nil {
		t.Fatal(err)
	}
	want := auto.Eval(tr.Root)

	opt := auto.Clone()
	st := anfa.Optimize(opt, anfa.OptOptions{Schema: d})
	if st.SizeAfter >= st.SizeBefore {
		t.Fatalf("schema pruning removed nothing: size %d -> %d\n%s", st.SizeBefore, st.SizeAfter, opt)
	}
	if got := opt.Eval(tr.Root); !sameNodes(want, got) {
		t.Fatalf("schema-pruned Eval selected %v, want %v\n%s", idSet(got), idSet(want), opt)
	}
	if got := opt.Program().Run(tr.Root); !sameNodes(want, got) {
		t.Fatalf("schema-pruned compiled Run selected %v, want %v\n%s", idSet(got), idSet(want), opt)
	}
	// No transition on a label the schema cannot produce may survive.
	eachTransition(opt, func(label string) {
		if label == "zz" {
			t.Fatalf("schema-dead transition on %q survived:\n%s", label, opt)
		}
	})
}

func eachTransition(a *anfa.Automaton, f func(label string)) {
	walk := func(m *anfa.Machine) {
		for s := 0; s < m.States; s++ {
			for _, tr := range m.Trans[s] {
				f(tr.Label)
			}
		}
	}
	walk(a.M)
	for _, m := range a.Names {
		walk(m)
	}
}

// TestOptimizeSharesSubANFAs checks common sub-ANFA sharing: two
// structurally identical qualifier machines registered under distinct
// names collapse onto one.
func TestOptimizeSharesSubANFAs(t *testing.T) {
	m := anfa.NewMachine()
	f1 := m.AddState()
	f2 := m.AddState()
	m.AddTransition(0, "a", f1)
	m.AddTransition(0, "b", f2)
	m.Finals[f1] = true
	m.Finals[f2] = true
	auto := anfa.NewAutomaton(m)
	mkSub := func() *anfa.Machine {
		sub := anfa.NewMachine()
		sf := sub.AddState()
		sub.AddTransition(0, "c", sf)
		sub.Finals[sf] = true
		return sub
	}
	auto.Names["T1"] = mkSub()
	auto.Names["T2"] = mkSub()
	m.Annotate(f1, anfa.QName{X: "T1"})
	m.Annotate(f2, anfa.QName{X: "T2"})

	st := anfa.Optimize(auto, anfa.OptOptions{})
	if len(auto.Names) != 1 {
		t.Fatalf("identical sub-ANFAs not shared: %d names survive\n%s", len(auto.Names), auto)
	}
	if st.Merged == 0 {
		t.Fatalf("sharing reported no merged states: %+v", st)
	}
	tr := doc(t, `<r><a><c/></a><b/></r>`)
	got := auto.Eval(tr.Root)
	if len(got) != 1 || got[0].Label != "a" {
		t.Fatalf("shared automaton selected %v, want the single a element", idSet(got))
	}
}

// TestRemoveUselessPrunesSubMachines is the regression test for
// useless-state removal inside named machines: an annotation sitting
// on a useless state of a sub-machine must be dropped with its state,
// and a name referenced only by such an annotation must be dropped
// with it (previously both survived: only the top machine was
// pruned).
func TestRemoveUselessPrunesSubMachines(t *testing.T) {
	m := anfa.NewMachine()
	f := m.AddState()
	m.AddTransition(0, "a", f)
	m.Finals[f] = true
	auto := anfa.NewAutomaton(m)

	sub := anfa.NewMachine()
	sf := sub.AddState()
	sub.AddTransition(0, "b", sf)
	sub.Finals[sf] = true
	dead := sub.AddState() // unreachable and cannot reach a final
	sub.Annotate(dead, anfa.QName{X: "Y"})
	auto.Names["X"] = sub
	auto.Names["Y"] = anfa.NewMachine() // referenced only from the dead state
	m.Annotate(f, anfa.QName{X: "X"})

	auto.RemoveUseless()

	if got := auto.Names["X"]; got == nil || got.States != 2 {
		t.Fatalf("sub-machine not pruned: %v\n%s", got, auto)
	}
	if _, ok := auto.Names["X"].Ann[2]; ok {
		t.Fatalf("orphaned annotation survived pruning:\n%s", auto)
	}
	if _, ok := auto.Names["Y"]; ok {
		t.Fatalf("name referenced only from a useless state survived:\n%s", auto)
	}
	tr := doc(t, `<r><a><b/></a></r>`)
	if got := auto.Eval(tr.Root); len(got) != 1 || got[0].Label != "a" {
		t.Fatalf("pruned automaton selected %v, want the a element", idSet(got))
	}
}
