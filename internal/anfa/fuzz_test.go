package anfa_test

import (
	"strings"
	"testing"

	"repro/internal/anfa"
	"repro/internal/guard"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// FuzzAnfaOptimize is the optimizer/compiler fuzz differential: for an
// arbitrary (query, document) pair — first input line the X_R query,
// the rest the XML — the interpreted unoptimized automaton, the
// optimized automaton and both compiled programs must select the same
// node set, and the optimizer must never grow the automaton.
func FuzzAnfaOptimize(f *testing.F) {
	lim := guard.Limits{MaxDepth: 40, MaxInputBytes: 1 << 14, MaxNodes: 2048}
	f.Add("a\n<r><a>x</a><a>y</a></r>")
	f.Add("(a | b/c)*/a\n<r><a>x</a><b><c><a>y</a></c></b></r>")
	f.Add("b[a][position() = 1]/text()\n<r><b><a/>t</b><b><a/>u</b></r>")
	f.Add("a[text() = \"y\"] | b[not(c)]\n<r><a>y</a><b><c/></b><b/></r>")
	f.Add(".//a\n<r><b><a><a/></a></b></r>")
	f.Fuzz(func(t *testing.T, input string) {
		qsrc, xml, ok := strings.Cut(input, "\n")
		if !ok {
			t.Skip()
		}
		q, err := xpath.ParseLimits(qsrc, lim)
		if err != nil {
			t.Skip()
		}
		tree, err := xmltree.ParseLimits(strings.NewReader(xml), lim)
		if err != nil {
			t.Skip()
		}
		dq := xpath.DesugarDesc(q, docLabels(tree.Root))
		base, err := anfa.FromExpr(dq)
		if err != nil {
			t.Skip()
		}
		want := base.Eval(tree.Root)

		opt := base.Clone()
		st := anfa.Optimize(opt, anfa.OptOptions{})
		if st.SizeAfter > st.SizeBefore {
			t.Fatalf("optimizer grew the automaton on %q: %d -> %d", qsrc, st.SizeBefore, st.SizeAfter)
		}
		if got := opt.Eval(tree.Root); !sameNodes(want, got) {
			t.Fatalf("optimized Eval diverges on %q over %q: got %v, want %v\nbefore:\n%s\nafter:\n%s",
				qsrc, xml, idSet(got), idSet(want), base, opt)
		}
		if got := opt.Program().Run(tree.Root); !sameNodes(want, got) {
			t.Fatalf("optimized compiled Run diverges on %q over %q: got %v, want %v\nautomaton:\n%s",
				qsrc, xml, idSet(got), idSet(want), opt)
		}
		if got := base.Program().Run(tree.Root); !sameNodes(want, got) {
			t.Fatalf("unoptimized compiled Run diverges on %q over %q: got %v, want %v",
				qsrc, xml, idSet(got), idSet(want))
		}
	})
}

// docLabels collects the distinct element labels of the document, the
// alphabet DesugarDesc expands `.//` steps over.
func docLabels(root *xmltree.Node) []string {
	seen := map[string]bool{}
	var labels []string
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		if !n.IsText() && !seen[n.Label] {
			seen[n.Label] = true
			labels = append(labels, n.Label)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return labels
}
