package anfa_test

import (
	"sort"
	"testing"

	"repro/internal/anfa"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// TestToRegexBooleanQualifiers: and/or/not annotations survive the
// regex reconstruction semantically.
func TestToRegexBooleanQualifiers(t *testing.T) {
	tr, err := xmltree.ParseString(`<r><a><b/></a><a><c/></a><a><b/><c/></a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{
		"a[b and c]",
		"a[b or c]",
		"a[not(b)]",
		"a[not(b and c)]",
		"a[b and not(c)]",
		`a[b/text() = "x" or c]`,
	} {
		q := xpath.MustParse(src)
		auto, err := anfa.FromExpr(q)
		if err != nil {
			t.Fatal(err)
		}
		back, err := auto.ToRegex()
		if err != nil {
			t.Fatalf("ToRegex(%s): %v", src, err)
		}
		a := nodeIDs(xpath.Eval(back, tr.Root))
		b := nodeIDs(xpath.Eval(q, tr.Root))
		if len(a) != len(b) {
			t.Errorf("%s: regex %q selects %d, original %d", src, xpath.String(back), len(a), len(b))
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: answers differ", src)
				break
			}
		}
	}
}

func nodeIDs(nodes []*xmltree.Node) []int64 {
	out := make([]int64, len(nodes))
	for i, n := range nodes {
		out[i] = int64(n.ID)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
