// Package anfa implements the annotated nondeterministic finite state
// automata of §4.4: NFAs over element labels whose states may be
// annotated with qualifiers referring, by name, to further ANFAs. An
// ANFA represents a regular XPath (X_R) query; the automaton form keeps
// translated queries polynomial-sized, while converting an automaton
// back to an X_R expression subsumes the EXPTIME-complete NFA-to-regex
// problem (Ehrenfeucht & Zeiger) and is provided only for small
// automata.
package anfa

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/xmltree"
)

// StateID indexes states within one Machine.
type StateID int

// Epsilon and TextLabel are the reserved transition labels for
// ε-transitions and str (text node) transitions.
const (
	Epsilon   = ""
	TextLabel = xmltree.TextLabel
)

// Transition is a labeled edge of a machine.
type Transition struct {
	Label string
	To    StateID
}

// Qual is a state annotation θ(s): a Boolean test on the node at which
// the state is entered. Sub-queries are referenced by name through the
// automaton's ν mapping.
type Qual interface{ isQual() }

type (
	// QName holds when the named sub-ANFA selects at least one node
	// from the annotated node.
	QName struct{ X string }
	// QTextEq holds when the named sub-ANFA selects a text node with
	// value Val.
	QTextEq struct {
		X   string
		Val string
	}
	// QPos holds when the annotated node is the K-th among its parent's
	// children with the same label (the position() of X_R paths).
	QPos struct{ K int }
	// QNot negates.
	QNot struct{ Q Qual }
	// QAnd conjoins.
	QAnd struct{ L, R Qual }
	// QOr disjoins.
	QOr struct{ L, R Qual }
)

func (QName) isQual()   {}
func (QTextEq) isQual() {}
func (QPos) isQual()    {}
func (QNot) isQual()    {}
func (QAnd) isQual()    {}
func (QOr) isQual()     {}

// Machine is one NFA with state annotations.
type Machine struct {
	States int
	Start  StateID
	Finals map[StateID]bool
	Trans  [][]Transition
	Ann    map[StateID]Qual
	// Labels optionally associates each final state with the source
	// element type it represents (the lab() of schema-directed query
	// translation).
	Labels map[StateID]string
}

// NewMachine returns an empty machine with one (start) state.
func NewMachine() *Machine {
	return &Machine{
		States: 1,
		Finals: map[StateID]bool{},
		Trans:  [][]Transition{nil},
		Ann:    map[StateID]Qual{},
		Labels: map[StateID]string{},
	}
}

// AddState appends a fresh state.
func (m *Machine) AddState() StateID {
	id := StateID(m.States)
	m.States++
	m.Trans = append(m.Trans, nil)
	return id
}

// AddTransition adds an edge.
func (m *Machine) AddTransition(from StateID, label string, to StateID) {
	m.Trans[from] = append(m.Trans[from], Transition{Label: label, To: to})
}

// Annotate conjoins q onto the state's annotation.
func (m *Machine) Annotate(s StateID, q Qual) {
	if old, ok := m.Ann[s]; ok {
		m.Ann[s] = QAnd{L: old, R: q}
		return
	}
	m.Ann[s] = q
}

// Embed copies src's states, transitions and annotations into dst and
// returns the state remapping. Finals, labels and the start designation
// are not transferred; callers wire them through the remapping. Name
// references inside annotations are copied verbatim, so src's names
// must live in the same automaton-level name table as dst's.
func Embed(dst, src *Machine) map[StateID]StateID {
	remap := make(map[StateID]StateID, src.States)
	for s := 0; s < src.States; s++ {
		remap[StateID(s)] = dst.AddState()
	}
	for s := 0; s < src.States; s++ {
		ns := remap[StateID(s)]
		for _, t := range src.Trans[s] {
			dst.Trans[ns] = append(dst.Trans[ns], Transition{Label: t.Label, To: remap[t.To]})
		}
		if q, ok := src.Ann[StateID(s)]; ok {
			dst.Ann[ns] = q
		}
	}
	return remap
}

// FinalStates returns the final states in ascending order.
func (m *Machine) FinalStates() []StateID {
	out := make([]StateID, 0, len(m.Finals))
	for s := range m.Finals {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Automaton is an ANFA M_Q = (M, ν): a top-level machine plus the named
// sub-machines its annotations refer to. Names are global to the
// automaton; sub-machine annotations may refer to further names.
type Automaton struct {
	M     *Machine
	Names map[string]*Machine

	// prog memoizes the compiled form (see Program); mutating passes
	// invalidate it. Guarded so a shared cached Automaton can be
	// compiled lazily from any number of goroutines.
	progMu sync.Mutex
	prog   *Program
}

// NewAutomaton wraps a machine with an empty name table.
func NewAutomaton(m *Machine) *Automaton {
	return &Automaton{M: m, Names: map[string]*Machine{}}
}

// Size returns the total number of states plus transitions across the
// top machine and all named sub-machines — the |ANFA| of the paper's
// complexity bounds.
func (a *Automaton) Size() int {
	n := machineSize(a.M)
	for _, m := range a.Names {
		n += machineSize(m)
	}
	return n
}

func machineSize(m *Machine) int {
	n := m.States
	for _, ts := range m.Trans {
		n += len(ts)
	}
	return n
}

// NumStates returns the state count across the top machine and all
// named sub-machines (Size minus the transitions).
func (a *Automaton) NumStates() int {
	n := a.M.States
	for _, m := range a.Names {
		n += m.States
	}
	return n
}

// Clone returns a deep copy sharing no mutable structure with a
// (qualifier trees are immutable values and are shared).
func (a *Automaton) Clone() *Automaton {
	c := &Automaton{M: cloneMachine(a.M), Names: make(map[string]*Machine, len(a.Names))}
	for n, m := range a.Names {
		c.Names[n] = cloneMachine(m)
	}
	return c
}

func cloneMachine(m *Machine) *Machine {
	c := &Machine{
		States: m.States,
		Start:  m.Start,
		Finals: make(map[StateID]bool, len(m.Finals)),
		Trans:  make([][]Transition, len(m.Trans)),
		Ann:    make(map[StateID]Qual, len(m.Ann)),
		Labels: make(map[StateID]string, len(m.Labels)),
	}
	for s, ts := range m.Trans {
		c.Trans[s] = append([]Transition(nil), ts...)
	}
	for s := range m.Finals {
		c.Finals[s] = true
	}
	for s, q := range m.Ann {
		c.Ann[s] = q
	}
	for s, l := range m.Labels {
		c.Labels[s] = l
	}
	return c
}

// Fail returns the automaton accepting nothing: a single start state
// with no transitions and no final states.
func Fail() *Automaton { return NewAutomaton(NewMachine()) }

// IsFail reports whether the top machine has no reachable final state.
func (a *Automaton) IsFail() bool {
	return len(reachable(a.M)) == 0 || !anyFinalReachable(a.M)
}

func anyFinalReachable(m *Machine) bool {
	for s := range reachable(m) {
		if m.Finals[s] {
			return true
		}
	}
	return false
}

func reachable(m *Machine) map[StateID]bool {
	seen := map[StateID]bool{m.Start: true}
	stack := []StateID{m.Start}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range m.Trans[s] {
			if !seen[t.To] {
				seen[t.To] = true
				stack = append(stack, t.To)
			}
		}
	}
	return seen
}

// RemoveUseless prunes states that are unreachable from the start or
// cannot reach a final state (the useless-state removal assumed after
// each construction step in §4.4) — in the top machine and in every
// named sub-machine, so annotations sitting on useless states are
// dropped with their states rather than lingering to keep dead
// sub-machines alive. Each machine's start state is always kept.
// Named machines no live annotation references are then dropped.
func (a *Automaton) RemoveUseless() {
	dropped := 0
	a.M, dropped = removeUselessMachine(a.M)
	for name, m := range a.Names {
		nm, d := removeUselessMachine(m)
		a.Names[name] = nm
		dropped += d
	}
	if dropped > 0 {
		mPruned.Add(uint64(dropped))
	}
	a.pruneNames()
	a.invalidateProgram()
}

// removeUselessMachine returns m with useless states pruned and
// renumbered, plus the number of states dropped. Annotations and
// labels of dropped states are dropped with them.
func removeUselessMachine(m *Machine) (*Machine, int) {
	fwd := reachable(m)
	// Backward reachability from finals.
	rev := make([][]StateID, m.States)
	for s := 0; s < m.States; s++ {
		for _, t := range m.Trans[s] {
			rev[t.To] = append(rev[t.To], StateID(s))
		}
	}
	useful := map[StateID]bool{}
	var stack []StateID
	for f := range m.Finals {
		if fwd[f] {
			useful[f] = true
			stack = append(stack, f)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[s] {
			if fwd[p] && !useful[p] {
				useful[p] = true
				stack = append(stack, p)
			}
		}
	}
	keep := func(s StateID) bool { return s == m.Start || useful[s] }
	// Renumber.
	remap := make(map[StateID]StateID, m.States)
	next := 0
	for s := 0; s < m.States; s++ {
		if keep(StateID(s)) {
			remap[StateID(s)] = StateID(next)
			next++
		}
	}
	nm := &Machine{
		States: next,
		Finals: map[StateID]bool{},
		Trans:  make([][]Transition, next),
		Ann:    map[StateID]Qual{},
		Labels: map[StateID]string{},
	}
	nm.Start = remap[m.Start]
	for s := 0; s < m.States; s++ {
		ns, ok := remap[StateID(s)]
		if !ok {
			continue
		}
		for _, t := range m.Trans[s] {
			if nt, ok := remap[t.To]; ok {
				nm.Trans[ns] = append(nm.Trans[ns], Transition{Label: t.Label, To: nt})
			}
		}
		if m.Finals[StateID(s)] {
			nm.Finals[ns] = true
		}
		if q, ok := m.Ann[StateID(s)]; ok {
			nm.Ann[ns] = q
		}
		if l, ok := m.Labels[StateID(s)]; ok {
			nm.Labels[ns] = l
		}
	}
	return nm, m.States - next
}

// pruneNames drops named machines no annotation refers to.
func (a *Automaton) pruneNames() {
	used := map[string]bool{}
	var collect func(m *Machine)
	var visitQ func(q Qual)
	visitQ = func(q Qual) {
		switch q := q.(type) {
		case QName:
			if !used[q.X] {
				used[q.X] = true
				if sub := a.Names[q.X]; sub != nil {
					collect(sub)
				}
			}
		case QTextEq:
			if !used[q.X] {
				used[q.X] = true
				if sub := a.Names[q.X]; sub != nil {
					collect(sub)
				}
			}
		case QNot:
			visitQ(q.Q)
		case QAnd:
			visitQ(q.L)
			visitQ(q.R)
		case QOr:
			visitQ(q.L)
			visitQ(q.R)
		}
	}
	collect = func(m *Machine) {
		for _, q := range m.Ann {
			visitQ(q)
		}
	}
	collect(a.M)
	for name := range a.Names {
		if !used[name] {
			delete(a.Names, name)
		}
	}
}

// String renders the automaton for diagnostics.
func (a *Automaton) String() string {
	var b strings.Builder
	writeMachine(&b, "M", a.M)
	names := make([]string, 0, len(a.Names))
	for n := range a.Names {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		writeMachine(&b, n, a.Names[n])
	}
	return b.String()
}

func writeMachine(b *strings.Builder, name string, m *Machine) {
	fmt.Fprintf(b, "%s: start=%d finals=%v\n", name, m.Start, m.FinalStates())
	for s := 0; s < m.States; s++ {
		for _, t := range m.Trans[s] {
			l := t.Label
			if l == Epsilon {
				l = "ε"
			}
			fmt.Fprintf(b, "  %d -%s-> %d\n", s, l, t.To)
		}
		if q, ok := m.Ann[StateID(s)]; ok {
			fmt.Fprintf(b, "  %d: [%s]\n", s, qualString(q))
		}
	}
}

func qualString(q Qual) string {
	switch q := q.(type) {
	case QName:
		return q.X
	case QTextEq:
		return fmt.Sprintf("%s/text() = %q", q.X, q.Val)
	case QPos:
		return fmt.Sprintf("position() = %d", q.K)
	case QNot:
		return "not(" + qualString(q.Q) + ")"
	case QAnd:
		return qualString(q.L) + " and " + qualString(q.R)
	case QOr:
		return qualString(q.L) + " or " + qualString(q.R)
	}
	return "?"
}
