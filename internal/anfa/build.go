package anfa

import (
	"fmt"

	"repro/internal/xpath"
)

// FromExpr constructs the ANFA M_Q representing an X_R query
// (§4.4 cases (a)–(i)). Sub-qualifiers become named sub-machines; names
// are unique within the returned automaton. Descendant-or-self (the X
// fragment's //) is not representable directly; desugar it first with
// xpath.DesugarDesc.
func FromExpr(e xpath.Expr) (*Automaton, error) {
	b := &builder{a: NewAutomaton(NewMachine())}
	// Replace the initial 1-state machine with the compiled fragment.
	m := b.a.M
	f, err := b.compile(m, e)
	if err != nil {
		return nil, err
	}
	m.Start = f.start
	for _, s := range f.finals {
		m.Finals[s] = true
	}
	return b.a, nil
}

type builder struct {
	a    *Automaton
	next int
}

func (b *builder) freshName() string {
	b.next++
	return fmt.Sprintf("X%d", b.next)
}

// frag is a sub-automaton within one machine: a start state and the
// final states of the fragment.
type frag struct {
	start  StateID
	finals []StateID
}

func (b *builder) compile(m *Machine, e xpath.Expr) (frag, error) {
	switch e := e.(type) {
	case xpath.Empty:
		s := m.AddState()
		return frag{start: s, finals: []StateID{s}}, nil
	case xpath.Label:
		s, f := m.AddState(), m.AddState()
		m.AddTransition(s, e.Name, f)
		return frag{start: s, finals: []StateID{f}}, nil
	case xpath.Text:
		s, f := m.AddState(), m.AddState()
		m.AddTransition(s, TextLabel, f)
		return frag{start: s, finals: []StateID{f}}, nil
	case xpath.Seq:
		f1, err := b.compile(m, e.L)
		if err != nil {
			return frag{}, err
		}
		f2, err := b.compile(m, e.R)
		if err != nil {
			return frag{}, err
		}
		for _, s := range f1.finals {
			m.AddTransition(s, Epsilon, f2.start)
		}
		return frag{start: f1.start, finals: f2.finals}, nil
	case xpath.Union:
		f1, err := b.compile(m, e.L)
		if err != nil {
			return frag{}, err
		}
		f2, err := b.compile(m, e.R)
		if err != nil {
			return frag{}, err
		}
		s := m.AddState()
		m.AddTransition(s, Epsilon, f1.start)
		m.AddTransition(s, Epsilon, f2.start)
		return frag{start: s, finals: append(f1.finals, f2.finals...)}, nil
	case xpath.Star:
		f1, err := b.compile(m, e.P)
		if err != nil {
			return frag{}, err
		}
		s := m.AddState()
		m.AddTransition(s, Epsilon, f1.start)
		for _, f := range f1.finals {
			m.AddTransition(f, Epsilon, s)
		}
		return frag{start: s, finals: []StateID{s}}, nil
	case xpath.Filter:
		f1, err := b.compile(m, e.P)
		if err != nil {
			return frag{}, err
		}
		q, has, err := b.compileQual(e.Q)
		if err != nil {
			return frag{}, err
		}
		if !has {
			return f1, nil
		}
		// A fresh annotated acceptance state: the qualifier gates
		// acceptance (and continuation in a sequence) without
		// interfering with loop passage through the old finals.
		nf := m.AddState()
		for _, f := range f1.finals {
			m.AddTransition(f, Epsilon, nf)
		}
		m.Annotate(nf, q)
		return frag{start: f1.start, finals: []StateID{nf}}, nil
	case xpath.Desc:
		return frag{}, fmt.Errorf("anfa: descendant-or-self is not an X_R construct; desugar with xpath.DesugarDesc first")
	}
	return frag{}, fmt.Errorf("anfa: unsupported expression %T", e)
}

// compileQual translates a qualifier to an annotation, registering
// named sub-machines. has is false for true(), which needs no
// annotation.
func (b *builder) compileQual(q xpath.Qual) (Qual, bool, error) {
	switch q := q.(type) {
	case xpath.QTrue:
		return nil, false, nil
	case xpath.QPath:
		x, err := b.subMachine(q.P)
		if err != nil {
			return nil, false, err
		}
		return QName{X: x}, true, nil
	case xpath.QTextEq:
		x, err := b.subMachine(q.P)
		if err != nil {
			return nil, false, err
		}
		return QTextEq{X: x, Val: q.Val}, true, nil
	case xpath.QPos:
		return QPos{K: q.K}, true, nil
	case xpath.QNot:
		inner, has, err := b.compileQual(q.Q)
		if err != nil {
			return nil, false, err
		}
		if !has {
			// not(true()) never holds: annotate with an unsatisfiable
			// test via an empty named machine.
			x := b.freshName()
			b.a.Names[x] = NewMachine() // no finals: selects nothing
			return QName{X: x}, true, nil
		}
		return QNot{Q: inner}, true, nil
	case xpath.QAnd:
		l, hasL, err := b.compileQual(q.L)
		if err != nil {
			return nil, false, err
		}
		r, hasR, err := b.compileQual(q.R)
		if err != nil {
			return nil, false, err
		}
		switch {
		case !hasL:
			return r, hasR, nil
		case !hasR:
			return l, true, nil
		default:
			return QAnd{L: l, R: r}, true, nil
		}
	case xpath.QOr:
		l, hasL, err := b.compileQual(q.L)
		if err != nil {
			return nil, false, err
		}
		r, hasR, err := b.compileQual(q.R)
		if err != nil {
			return nil, false, err
		}
		if !hasL || !hasR {
			// One side is true(): the disjunction always holds.
			return nil, false, nil
		}
		return QOr{L: l, R: r}, true, nil
	}
	return nil, false, fmt.Errorf("anfa: unsupported qualifier %T", q)
}

func (b *builder) subMachine(p xpath.Expr) (string, error) {
	sub := NewMachine()
	f, err := b.compile(sub, p)
	if err != nil {
		return "", err
	}
	sub.Start = f.start
	for _, s := range f.finals {
		sub.Finals[s] = true
	}
	x := b.freshName()
	b.a.Names[x] = sub
	return x, nil
}
