package anfa

import (
	"repro/internal/xmltree"
)

// Eval runs the automaton from the context node and returns the nodes
// reached at final states, deduplicated in first-acceptance order. The
// evaluation explores (state, node) pairs — linear in |M|·|T| per
// machine — checking state annotations at the node where the state is
// entered. Position annotations hold when the node is the K-th among
// its parent's same-label children.
func (a *Automaton) Eval(ctx *xmltree.Node) []*xmltree.Node {
	ev := &anfaEval{a: a, memo: map[memoKey]bool{}}
	return ev.run(a.M, ctx)
}

type memoKey struct {
	name string
	node *xmltree.Node
}

type anfaEval struct {
	a    *Automaton
	memo map[memoKey]bool
}

type pair struct {
	state StateID
	node  *xmltree.Node
}

func (ev *anfaEval) run(m *Machine, ctx *xmltree.Node) []*xmltree.Node {
	if m.States == 0 {
		return nil
	}
	var result []*xmltree.Node
	resultSeen := map[*xmltree.Node]bool{}
	active := map[pair]bool{}
	var queue []pair

	push := func(s StateID, n *xmltree.Node) {
		p := pair{state: s, node: n}
		if active[p] {
			return
		}
		if q, ok := m.Ann[s]; ok && !ev.holds(q, n) {
			return
		}
		active[p] = true
		queue = append(queue, p)
		if m.Finals[s] && !resultSeen[n] {
			resultSeen[n] = true
			result = append(result, n)
		}
	}

	push(m.Start, ctx)
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, t := range m.Trans[p.state] {
			switch t.Label {
			case Epsilon:
				push(t.To, p.node)
			case TextLabel:
				for _, c := range p.node.Children {
					if c.IsText() {
						push(t.To, c)
					}
				}
			default:
				for _, c := range p.node.Children {
					if c.Label == t.Label {
						push(t.To, c)
					}
				}
			}
		}
	}
	return result
}

func (ev *anfaEval) holds(q Qual, n *xmltree.Node) bool {
	switch q := q.(type) {
	case QName:
		return len(ev.evalName(q.X, n)) > 0
	case QTextEq:
		for _, m := range ev.evalName(q.X, n) {
			if m.IsText() && m.Text == q.Val {
				return true
			}
		}
		return false
	case QPos:
		return n.ChildPosition() == q.K
	case QNot:
		return !ev.holds(q.Q, n)
	case QAnd:
		return ev.holds(q.L, n) && ev.holds(q.R, n)
	case QOr:
		return ev.holds(q.L, n) || ev.holds(q.R, n)
	}
	return false
}

// evalName runs a named sub-machine at n. Emptiness results are
// memoized per (name, node); the node list itself is recomputed only
// when a QTextEq needs values, which reuses the same path.
func (ev *anfaEval) evalName(x string, n *xmltree.Node) []*xmltree.Node {
	sub, ok := ev.a.Names[x]
	if !ok {
		return nil
	}
	key := memoKey{name: x, node: n}
	if empty, ok := ev.memo[key]; ok && empty {
		return nil
	}
	res := ev.run(sub, n)
	ev.memo[key] = len(res) == 0
	return res
}
