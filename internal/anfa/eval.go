package anfa

import (
	"context"
	"sync"

	"repro/internal/guard"
	"repro/internal/xmltree"
)

// Eval runs the automaton from the context node and returns the nodes
// reached at final states, deduplicated in first-acceptance order. The
// evaluation explores (state, node) pairs — linear in |M|·|T| per
// machine — checking state annotations at the node where the state is
// entered. Position annotations hold when the node is the K-th among
// its parent's same-label children.
//
// Eval is safe for concurrent use on a shared Automaton (the machines
// are read-only during evaluation); per-call scratch comes from a
// pool, so repeated evaluation of one translated query over many
// documents — the data-plane steady state — does not reallocate its
// visited sets.
func (a *Automaton) Eval(ctx *xmltree.Node) []*xmltree.Node {
	res, _ := a.EvalCtx(context.Background(), ctx)
	return res
}

// EvalCtx is Eval under a context: the BFS checks for cancellation
// every few thousand explored pairs and returns a *guard.CancelError
// (matching the context's error under errors.Is) when cut short.
func (a *Automaton) EvalCtx(cctx context.Context, ctx *xmltree.Node) ([]*xmltree.Node, error) {
	mEvals.Inc()
	ev, _ := evalPool.Get().(*anfaEval)
	if ev == nil {
		ev = &anfaEval{memo: map[memoKey]bool{}}
	}
	ev.a, ev.ctx = a, cctx
	res := ev.run(a.M, ctx)
	err := ev.err
	ev.a, ev.ctx, ev.err, ev.steps = nil, nil, nil, 0
	clear(ev.memo) // memo keys hold node pointers; do not pin documents
	evalPool.Put(ev)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// evalPool recycles evaluator scratch (visited maps, BFS queues)
// across Eval calls and across automata; everything keyed by machine
// or node is cleared before an evaluator returns to the pool.
var evalPool sync.Pool

type memoKey struct {
	name string
	node *xmltree.Node
}

type anfaEval struct {
	a    *Automaton
	ctx  context.Context
	memo map[memoKey]bool
	// frames is a free list of per-run scratch; nested runs (qualifier
	// sub-machines evaluated mid-BFS) each borrow their own frame.
	frames []*runFrame
	steps  int
	err    error
}

// runFrame is one machine run's scratch: the active (state, node) set
// and the result dedupe set, reused via the evaluator's free list.
type runFrame struct {
	active     map[pair]bool
	resultSeen map[*xmltree.Node]bool
	queue      []pair
}

func (ev *anfaEval) getFrame() *runFrame {
	if n := len(ev.frames); n > 0 {
		f := ev.frames[n-1]
		ev.frames = ev.frames[:n-1]
		return f
	}
	return &runFrame{
		active:     map[pair]bool{},
		resultSeen: map[*xmltree.Node]bool{},
	}
}

func (ev *anfaEval) putFrame(f *runFrame) {
	clear(f.active)
	clear(f.resultSeen)
	f.queue = f.queue[:0]
	ev.frames = append(ev.frames, f)
}

type pair struct {
	state StateID
	node  *xmltree.Node
}

// checkCancel observes the context every 4096 explored pairs; once an
// error is recorded every in-flight run unwinds promptly.
func (ev *anfaEval) checkCancel() bool {
	ev.steps++
	if ev.steps&4095 == 0 {
		if err := guard.CheckCtx(ev.ctx, "anfa: eval"); err != nil {
			ev.err = err
		}
	}
	return ev.err != nil
}

func (ev *anfaEval) run(m *Machine, ctx *xmltree.Node) []*xmltree.Node {
	if m.States == 0 || ev.err != nil {
		return nil
	}
	f := ev.getFrame()
	var result []*xmltree.Node

	push := func(s StateID, n *xmltree.Node) {
		p := pair{state: s, node: n}
		if f.active[p] {
			return
		}
		if q, ok := m.Ann[s]; ok && !ev.holds(q, n) {
			return
		}
		f.active[p] = true
		f.queue = append(f.queue, p)
		if m.Finals[s] && !f.resultSeen[n] {
			f.resultSeen[n] = true
			result = append(result, n)
		}
	}

	push(m.Start, ctx)
	for head := 0; head < len(f.queue); head++ {
		if ev.checkCancel() {
			break
		}
		p := f.queue[head]
		for _, t := range m.Trans[p.state] {
			switch t.Label {
			case Epsilon:
				push(t.To, p.node)
			case TextLabel:
				for _, c := range p.node.Children {
					if c.IsText() {
						push(t.To, c)
					}
				}
			default:
				for _, c := range p.node.Children {
					if c.Label == t.Label {
						push(t.To, c)
					}
				}
			}
		}
	}
	ev.putFrame(f)
	return result
}

func (ev *anfaEval) holds(q Qual, n *xmltree.Node) bool {
	switch q := q.(type) {
	case QName:
		return len(ev.evalName(q.X, n)) > 0
	case QTextEq:
		for _, m := range ev.evalName(q.X, n) {
			if m.IsText() && m.Text == q.Val {
				return true
			}
		}
		return false
	case QPos:
		return n.ChildPosition() == q.K
	case QNot:
		return !ev.holds(q.Q, n)
	case QAnd:
		return ev.holds(q.L, n) && ev.holds(q.R, n)
	case QOr:
		return ev.holds(q.L, n) || ev.holds(q.R, n)
	}
	return false
}

// evalName runs a named sub-machine at n. Emptiness results are
// memoized per (name, node); the node list itself is recomputed only
// when a QTextEq needs values, which reuses the same path.
func (ev *anfaEval) evalName(x string, n *xmltree.Node) []*xmltree.Node {
	sub, ok := ev.a.Names[x]
	if !ok {
		return nil
	}
	key := memoKey{name: x, node: n}
	if empty, ok := ev.memo[key]; ok && empty {
		return nil
	}
	res := ev.run(sub, n)
	if ev.err != nil {
		// A canceled run is not evidence of emptiness; don't memoize.
		return res
	}
	ev.memo[key] = len(res) == 0
	return res
}
