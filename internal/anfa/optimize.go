package anfa

// Schema-aware ANFA optimization (ROADMAP item 3): a simplification
// pass run between query translation and evaluation. Translated
// automata are unions of per-occurrence path machines and inherit a
// lot of redundancy — ε-chains from machine composition, duplicated
// prefixes from per-label grouping, structurally identical qualifier
// sub-machines registered under distinct names. Evaluation cost is
// linear in |ANFA|·|T| per machine, so every state removed here is
// paid back on every document evaluated.
//
// The pass is sound for the node-set semantics of Eval: the selected
// set is preserved exactly (first-acceptance *order* may change, and
// every caller in this repository compares selections as ID sets or
// multisets). Schema pruning additionally assumes the evaluated
// document conforms to the supplied target DTD — true by construction
// for migrated instances σd(T), which is the data-plane steady state;
// pass a nil Schema (or translate with NoOptimize) when evaluating
// over arbitrary documents.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dtd"
)

// OptOptions configures Optimize.
type OptOptions struct {
	// Schema is the DTD the evaluated documents conform to — for a
	// translated query, the embedding's target schema. nil disables
	// the schema-aware pruning pass; the structural passes (subset
	// construction, bisimulation merging, sub-ANFA sharing) still run.
	Schema *dtd.DTD
}

// OptStats reports what one Optimize call did.
type OptStats struct {
	// StatesBefore/After count states across the top machine and all
	// named sub-machines; SizeBefore/After are Automaton.Size (states
	// plus transitions), the |ANFA| of the paper's bounds.
	StatesBefore int `json:"states_before"`
	StatesAfter  int `json:"states_after"`
	SizeBefore   int `json:"size_before"`
	SizeAfter    int `json:"size_after"`
	// Removed counts states dropped as schema-dead or useless;
	// Merged counts states eliminated by subset construction,
	// bisimulation merging and duplicate sub-ANFA sharing.
	Removed int `json:"removed"`
	Merged  int `json:"merged"`
}

// Optimize simplifies the automaton in place, preserving the selected
// node set on every document conforming to opt.Schema (on every
// document at all when Schema is nil). The passes, in order:
//
//  1. Schema pruning: a type-set dataflow over every machine — the
//     top machine starts at the schema root, each named sub-machine
//     at the union of the type sets of the states whose qualifiers
//     reference it — drops transitions whose label cannot occur below
//     any type reaching their source state.
//  2. Useless-state removal (also inside named machines).
//  3. Label-deterministic subset construction per machine, bounded by
//     the input's state count: annotation-free states merge into
//     subsets, annotated states survive as opaque singletons reached
//     by ε-edges (their qualifiers gate occupancy per node and cannot
//     be merged away). Accepted only when it does not grow the
//     machine; the schema's content models keep the subset space
//     narrow in practice.
//  4. Bisimulation merging: states with equal finality, equal
//     qualifier and equal label-to-block transition structure
//     collapse — this is where a qualifier shared by merged states is
//     hoisted onto the single surviving state and checked once.
//  5. Useless-state removal again, then common sub-ANFA sharing:
//     structurally identical named machines collapse onto one name,
//     so qualifier emptiness memoization hits once per node across
//     the whole union of translated paths.
func Optimize(a *Automaton, opt OptOptions) OptStats {
	st := OptStats{StatesBefore: a.NumStates(), SizeBefore: a.Size()}
	if opt.Schema != nil {
		schemaPrune(a, opt.Schema)
	}
	before := a.NumStates()
	a.RemoveUseless()
	st.Removed += before - a.NumStates()

	apply := func(m *Machine) *Machine {
		dedupeTransitions(m)
		if det := determinize(m); det != nil && det.States <= m.States {
			st.Merged += m.States - det.States
			m = det
		}
		nm := bisimMerge(m)
		st.Merged += m.States - nm.States
		return nm
	}
	a.M = apply(a.M)
	for name, m := range a.Names {
		a.Names[name] = apply(m)
	}

	before = a.NumStates()
	a.RemoveUseless()
	st.Removed += before - a.NumStates()

	st.Merged += shareNames(a)

	st.StatesAfter = a.NumStates()
	st.SizeAfter = a.Size()
	a.invalidateProgram()
	if st.Removed > 0 {
		mOptStatesRemoved.Add(uint64(st.Removed))
	}
	if st.Merged > 0 {
		mOptMerged.Add(uint64(st.Merged))
	}
	return st
}

// textType is the pseudo-type of text nodes in the dataflow: it has
// no children, so nothing flows out of a text step.
const textType = "#text"

// schemaPrune drops transitions that cannot fire on any document
// conforming to the schema. For each machine it computes, per state,
// the set of target types whose nodes can occupy that state (labels
// are type names in a local schema, so a child labeled l has type l),
// then removes label transitions whose label is not a child of any
// type in the source state's set and text transitions whose source
// set contains no str-producing type. Context sets — which types a
// machine can be *started* at — are closed over qualifier references
// by chaotic iteration.
func schemaPrune(a *Automaton, schema *dtd.DTD) {
	child := make(map[string]map[string]bool, len(schema.Prods))
	hasText := make(map[string]bool, len(schema.Prods))
	for t, p := range schema.Prods {
		switch p.Kind {
		case dtd.KindStr:
			hasText[t] = true
		case dtd.KindConcat, dtd.KindDisj, dtd.KindStar:
			set := make(map[string]bool, len(p.Children))
			for _, c := range p.Children {
				set[c] = true
			}
			child[t] = set
		}
	}

	names := []string{""}
	for n := range a.Names {
		names = append(names, n)
	}
	sort.Strings(names)
	get := func(n string) *Machine {
		if n == "" {
			return a.M
		}
		return a.Names[n]
	}

	ctx := map[string]map[string]bool{"": {schema.Root: true}}
	sets := map[string][]map[string]bool{}
	for {
		changed := false
		for _, n := range names {
			m := get(n)
			ts := flowTypes(m, ctx[n], child, hasText)
			sets[n] = ts
			for s, q := range m.Ann {
				for _, x := range qualNames(q) {
					if ctx[x] == nil {
						ctx[x] = map[string]bool{}
					}
					for t := range ts[s] {
						if !ctx[x][t] {
							ctx[x][t] = true
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	for _, n := range names {
		m, ts := get(n), sets[n]
		for s := 0; s < m.States; s++ {
			kept := m.Trans[s][:0]
			for _, tr := range m.Trans[s] {
				if feasible(ts[s], tr.Label, child, hasText) {
					kept = append(kept, tr)
				}
			}
			m.Trans[s] = kept
		}
	}
}

// flowTypes propagates the context type set forward through one
// machine: ε keeps the type, a label step moves to the child's type,
// a text step moves to the childless pseudo-type.
func flowTypes(m *Machine, ctxTypes map[string]bool, child map[string]map[string]bool, hasText map[string]bool) []map[string]bool {
	sets := make([]map[string]bool, m.States)
	for i := range sets {
		sets[i] = map[string]bool{}
	}
	if m.States == 0 {
		return sets
	}
	type item struct {
		s StateID
		t string
	}
	var queue []item
	add := func(s StateID, t string) {
		if !sets[s][t] {
			sets[s][t] = true
			queue = append(queue, item{s, t})
		}
	}
	for t := range ctxTypes {
		add(m.Start, t)
	}
	for len(queue) > 0 {
		it := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, tr := range m.Trans[it.s] {
			switch tr.Label {
			case Epsilon:
				add(tr.To, it.t)
			case TextLabel:
				if hasText[it.t] {
					add(tr.To, textType)
				}
			default:
				if c := child[it.t]; c != nil && c[tr.Label] {
					add(tr.To, tr.Label)
				}
			}
		}
	}
	return sets
}

func feasible(src map[string]bool, label string, child map[string]map[string]bool, hasText map[string]bool) bool {
	switch label {
	case Epsilon:
		return len(src) > 0
	case TextLabel:
		for t := range src {
			if hasText[t] {
				return true
			}
		}
		return false
	default:
		for t := range src {
			if c := child[t]; c != nil && c[label] {
				return true
			}
		}
		return false
	}
}

// qualNames returns the sub-machine names a qualifier references.
func qualNames(q Qual) []string {
	var out []string
	var walk func(Qual)
	walk = func(q Qual) {
		switch q := q.(type) {
		case QName:
			out = append(out, q.X)
		case QTextEq:
			out = append(out, q.X)
		case QNot:
			walk(q.Q)
		case QAnd:
			walk(q.L)
			walk(q.R)
		case QOr:
			walk(q.L)
			walk(q.R)
		}
	}
	walk(q)
	return out
}

// dedupeTransitions removes duplicate (label, to) edges in place,
// keeping first occurrences.
func dedupeTransitions(m *Machine) {
	for s := 0; s < m.States; s++ {
		if len(m.Trans[s]) < 2 {
			continue
		}
		seen := make(map[Transition]bool, len(m.Trans[s]))
		kept := m.Trans[s][:0]
		for _, tr := range m.Trans[s] {
			if !seen[tr] {
				seen[tr] = true
				kept = append(kept, tr)
			}
		}
		m.Trans[s] = kept
	}
}

// maxDetInput caps the machines subset construction attempts; beyond
// it the pass is skipped rather than risk quadratic key-building work
// on automata that are already pathological.
const maxDetInput = 2048

// determinize rebuilds m by label-deterministic subset construction
// over its annotation-free states. Annotated states cannot join a
// subset — their occupancy is gated per node by the qualifier — so
// each survives as an opaque singleton ("rep") carrying its
// annotation, entered by an ε-edge from every subset whose ε-closure
// crossed it. The result is returned only when construction stays
// within the input's state count (nil otherwise): schema-pruned
// translated machines are narrow, so the subset space collapses the
// shared prefixes of the translated path union instead of exploding.
func determinize(m *Machine) *Machine {
	if m.States == 0 || m.States > maxDetInput {
		return nil
	}
	nm := &Machine{
		Finals: map[StateID]bool{},
		Ann:    map[StateID]Qual{},
		Labels: map[StateID]string{},
	}
	overflow := false
	alloc := func() StateID {
		id := StateID(nm.States)
		nm.States++
		nm.Trans = append(nm.Trans, nil)
		if nm.States > m.States {
			overflow = true
		}
		return id
	}

	type task struct {
		id     StateID
		frees  []StateID
		bounds []StateID
		rep    StateID // >= 0: singleton for this annotated state
	}
	var tasks []task
	subsets := map[string]StateID{}
	reps := map[StateID]StateID{}

	var getSubset func(frees, bounds []StateID) StateID
	getRep := func(s StateID) StateID {
		if id, ok := reps[s]; ok {
			return id
		}
		id := alloc()
		reps[s] = id
		nm.Ann[id] = m.Ann[s]
		if m.Finals[s] {
			nm.Finals[id] = true
		}
		if l, ok := m.Labels[s]; ok {
			nm.Labels[id] = l
		}
		tasks = append(tasks, task{id: id, rep: s})
		return id
	}
	getSubset = func(frees, bounds []StateID) StateID {
		k := subsetKey(frees, bounds)
		if id, ok := subsets[k]; ok {
			return id
		}
		id := alloc()
		subsets[k] = id
		for _, f := range frees {
			if m.Finals[f] {
				nm.Finals[id] = true
				if l, ok := m.Labels[f]; ok {
					if _, have := nm.Labels[id]; !have {
						nm.Labels[id] = l
					}
				}
			}
		}
		for _, b := range bounds {
			nm.Trans[id] = append(nm.Trans[id], Transition{Label: Epsilon, To: getRep(b)})
		}
		tasks = append(tasks, task{id: id, frees: frees, bounds: bounds, rep: -1})
		return id
	}
	// link adds an edge to the det state for (frees, bounds); a lone
	// annotated target skips the forwarding subset.
	link := func(from StateID, label string, frees, bounds []StateID) {
		if len(frees) == 0 && len(bounds) == 1 {
			nm.Trans[from] = append(nm.Trans[from], Transition{Label: label, To: getRep(bounds[0])})
			return
		}
		if len(frees)+len(bounds) == 0 {
			return
		}
		nm.Trans[from] = append(nm.Trans[from], Transition{Label: label, To: getSubset(frees, bounds)})
	}

	f0, b0 := closureFree(m, []StateID{m.Start})
	if len(f0) == 0 && len(b0) == 1 {
		nm.Start = getRep(b0[0])
	} else {
		nm.Start = getSubset(f0, b0)
	}

	for i := 0; i < len(tasks) && !overflow; i++ {
		t := tasks[i]
		moves := map[string][]StateID{}
		var order []string
		var epsSucc []StateID
		record := func(tr Transition) {
			if tr.Label == Epsilon {
				epsSucc = append(epsSucc, tr.To)
				return
			}
			if _, ok := moves[tr.Label]; !ok {
				order = append(order, tr.Label)
			}
			moves[tr.Label] = append(moves[tr.Label], tr.To)
		}
		if t.rep >= 0 {
			for _, tr := range m.Trans[t.rep] {
				record(tr)
			}
			if len(epsSucc) > 0 {
				f, b := closureFree(m, epsSucc)
				link(t.id, Epsilon, f, b)
			}
		} else {
			// ε-moves inside the subset are already in its closure.
			for _, s := range t.frees {
				for _, tr := range m.Trans[s] {
					if tr.Label != Epsilon {
						record(tr)
					}
				}
			}
		}
		sort.Strings(order)
		for _, l := range order {
			f, b := closureFree(m, moves[l])
			link(t.id, l, f, b)
		}
	}
	if overflow {
		return nil
	}
	return nm
}

// closureFree follows ε-edges from the seed through annotation-free
// states, returning the annotation-free states reached (frees) and
// the annotated states the closure stopped at (bounds), both sorted.
func closureFree(m *Machine, seed []StateID) (frees, bounds []StateID) {
	seenF := map[StateID]bool{}
	seenB := map[StateID]bool{}
	stack := append([]StateID(nil), seed...)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, annotated := m.Ann[s]; annotated {
			seenB[s] = true
			continue
		}
		if seenF[s] {
			continue
		}
		seenF[s] = true
		for _, tr := range m.Trans[s] {
			if tr.Label == Epsilon {
				stack = append(stack, tr.To)
			}
		}
	}
	for s := range seenF {
		frees = append(frees, s)
	}
	for s := range seenB {
		bounds = append(bounds, s)
	}
	sort.Slice(frees, func(i, j int) bool { return frees[i] < frees[j] })
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	return frees, bounds
}

func subsetKey(frees, bounds []StateID) string {
	var b strings.Builder
	for _, s := range frees {
		fmt.Fprintf(&b, "f%d,", s)
	}
	for _, s := range bounds {
		fmt.Fprintf(&b, "b%d,", s)
	}
	return b.String()
}

// bisimMerge collapses bisimilar states: equal finality (and final
// label), equal qualifier (by canonical form — this is the qualifier
// hoist: one merged state checks the shared qualifier once), and
// equal label-to-block transition structure, refined to fixpoint.
func bisimMerge(m *Machine) *Machine {
	if m.States == 0 {
		return m
	}
	block := make([]int, m.States)
	sig := map[string]int{}
	for s := 0; s < m.States; s++ {
		var b strings.Builder
		if m.Finals[StateID(s)] {
			b.WriteString("F:")
			b.WriteString(m.Labels[StateID(s)])
			b.WriteString(";")
		}
		if q, ok := m.Ann[StateID(s)]; ok {
			b.WriteString("A:")
			b.WriteString(canonQual(q))
		}
		k := b.String()
		id, ok := sig[k]
		if !ok {
			id = len(sig)
			sig[k] = id
		}
		block[s] = id
	}
	count := len(sig)
	for {
		next := map[string]int{}
		nb := make([]int, m.States)
		for s := 0; s < m.States; s++ {
			edges := make([]string, 0, len(m.Trans[s]))
			for _, tr := range m.Trans[s] {
				edges = append(edges, fmt.Sprintf("%s\x00%d", tr.Label, block[tr.To]))
			}
			sort.Strings(edges)
			edges = compactStrings(edges)
			key := fmt.Sprintf("%d|%s", block[s], strings.Join(edges, "\x01"))
			id, ok := next[key]
			if !ok {
				id = len(next)
				next[key] = id
			}
			nb[s] = id
		}
		if len(next) == count {
			break
		}
		block, count = nb, len(next)
	}
	if count == m.States {
		return m
	}
	// Rebuild one state per block; blocks numbered by first member.
	remap := make([]StateID, count)
	repOf := make([]StateID, count)
	for i := range remap {
		remap[i] = -1
	}
	nextID := 0
	for s := 0; s < m.States; s++ {
		if remap[block[s]] < 0 {
			remap[block[s]] = StateID(nextID)
			repOf[block[s]] = StateID(s)
			nextID++
		}
	}
	nm := &Machine{
		States: count,
		Start:  remap[block[m.Start]],
		Finals: map[StateID]bool{},
		Trans:  make([][]Transition, count),
		Ann:    map[StateID]Qual{},
		Labels: map[StateID]string{},
	}
	for b := 0; b < count; b++ {
		rep := repOf[b]
		ns := remap[b]
		seen := map[Transition]bool{}
		for _, tr := range m.Trans[rep] {
			nt := Transition{Label: tr.Label, To: remap[block[tr.To]]}
			if !seen[nt] {
				seen[nt] = true
				nm.Trans[ns] = append(nm.Trans[ns], nt)
			}
		}
		if m.Finals[rep] {
			nm.Finals[ns] = true
		}
		if q, ok := m.Ann[rep]; ok {
			nm.Ann[ns] = q
		}
		if l, ok := m.Labels[rep]; ok {
			nm.Labels[ns] = l
		}
	}
	return nm
}

func compactStrings(ss []string) []string {
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || s != ss[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// canonQual is an unambiguous (fully parenthesized) rendering used as
// a structural equality key.
func canonQual(q Qual) string {
	switch q := q.(type) {
	case QName:
		return "n(" + q.X + ")"
	case QTextEq:
		return fmt.Sprintf("t(%s,%q)", q.X, q.Val)
	case QPos:
		return fmt.Sprintf("p(%d)", q.K)
	case QNot:
		return "!(" + canonQual(q.Q) + ")"
	case QAnd:
		return "&(" + canonQual(q.L) + "," + canonQual(q.R) + ")"
	case QOr:
		return "|(" + canonQual(q.L) + "," + canonQual(q.R) + ")"
	}
	return "?"
}

// shareNames collapses structurally identical named machines onto one
// name (common sub-ANFA sharing): references are rewritten and the
// duplicates dropped, iterated because sharing one pair can make the
// machines referencing them identical in turn. Returns the number of
// states eliminated.
func shareNames(a *Automaton) int {
	merged := 0
	for {
		names := make([]string, 0, len(a.Names))
		for n := range a.Names {
			names = append(names, n)
		}
		sort.Strings(names)
		byKey := map[string]string{}
		rename := map[string]string{}
		for _, n := range names {
			k := machineKey(a.Names[n])
			if first, ok := byKey[k]; ok {
				rename[n] = first
			} else {
				byKey[k] = n
			}
		}
		if len(rename) == 0 {
			return merged
		}
		for n := range rename {
			merged += a.Names[n].States
			delete(a.Names, n)
		}
		rewriteAnn := func(m *Machine) {
			for s, q := range m.Ann {
				m.Ann[s] = renameQual(q, rename)
			}
		}
		rewriteAnn(a.M)
		for _, m := range a.Names {
			rewriteAnn(m)
		}
	}
}

// machineKey renders a machine in a start-BFS canonical numbering so
// that structurally identical machines compare equal regardless of
// their internal state numbering. Best effort: isomorphic machines
// whose edge orders differ may still key apart, which only costs a
// missed sharing opportunity.
func machineKey(m *Machine) string {
	pos := map[StateID]int{m.Start: 0}
	order := []StateID{m.Start}
	sortedTrans := func(s StateID) []Transition {
		ts := append([]Transition(nil), m.Trans[s]...)
		sort.Slice(ts, func(i, j int) bool {
			if ts[i].Label != ts[j].Label {
				return ts[i].Label < ts[j].Label
			}
			return ts[i].To < ts[j].To
		})
		return ts
	}
	for i := 0; i < len(order); i++ {
		for _, tr := range sortedTrans(order[i]) {
			if _, ok := pos[tr.To]; !ok {
				pos[tr.To] = len(order)
				order = append(order, tr.To)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n%d;", len(order))
	for _, s := range order {
		if m.Finals[s] {
			fmt.Fprintf(&b, "F(%s)", m.Labels[s])
		}
		if q, ok := m.Ann[s]; ok {
			fmt.Fprintf(&b, "A(%s)", canonQual(q))
		}
		for _, tr := range sortedTrans(s) {
			fmt.Fprintf(&b, "%q>%d,", tr.Label, pos[tr.To])
		}
		b.WriteString(";")
	}
	return b.String()
}

// renameQual rewrites name references per the rename map.
func renameQual(q Qual, ren map[string]string) Qual {
	switch q := q.(type) {
	case QName:
		if n, ok := ren[q.X]; ok {
			return QName{X: n}
		}
		return q
	case QTextEq:
		if n, ok := ren[q.X]; ok {
			return QTextEq{X: n, Val: q.Val}
		}
		return q
	case QNot:
		return QNot{Q: renameQual(q.Q, ren)}
	case QAnd:
		return QAnd{L: renameQual(q.L, ren), R: renameQual(q.R, ren)}
	case QOr:
		return QOr{L: renameQual(q.L, ren), R: renameQual(q.R, ren)}
	}
	return q
}
