package anfa

import (
	"context"
	"sync"

	"repro/internal/guard"
	"repro/internal/xmltree"
)

// Program is a compiled, reusable evaluation plan for one Automaton —
// the ANFA counterpart of xpath.Compile. Compiling flattens every
// machine (the top machine plus the named sub-machines reachable from
// its qualifiers) into dense state/transition/qualifier instruction
// arrays once; every Run then explores (state, node) pairs without
// map lookups or per-call allocation. Visited sets are epoch-stamped
// arrays indexed by the dense xmltree.NodeID space of the document,
// qualifier results are memoized per (qualifier, node), and qualifier
// sub-machine runs stop at the first witness instead of collecting
// their full selection.
//
// A Program is safe for concurrent use: each Run borrows an
// independent scratch runner from an internal sync.Pool. All context
// nodes of one Run must belong to one document (NodeIDs are unique
// within a tree, reused across trees), matching xpath.Program.
//
// The tree-walking Eval remains the differential oracle for this
// backend (see the anfa-opt-differential oracle property and
// FuzzAnfaOptimize).
type Program struct {
	mach  []progMachine
	quals []cqual
	pool  sync.Pool // *progRunner
}

type progMachine struct {
	start  int32
	states int32
	final  []bool
	ann    []int32 // qual index per state, -1 when unannotated
	lo     []int32 // transitions of state s are trans[lo[s]:lo[s+1]]
	trans  []ctrans
}

type ctrans struct {
	kind  uint8
	to    int32
	label string
}

const (
	tEps uint8 = iota
	tText
	tLabel
)

type cqop uint8

const (
	cqFalse cqop = iota // reference to a name the automaton lacks
	cqName              // l = machine index
	cqTextEq            // l = machine index, val = constant
	cqPos               // k = position
	cqNot               // l = qual
	cqAnd               // l, r = quals
	cqOr                // l, r = quals
)

type cqual struct {
	op   cqop
	l, r int32
	k    int32
	val  string
}

// Compile builds the evaluation plan for the automaton as it stands;
// run the optimizer first (translate does). Only sub-machines
// actually referenced by qualifiers are compiled.
func Compile(a *Automaton) *Program {
	p := &Program{}
	c := &compiler{p: p, a: a, midx: map[string]int32{}}
	c.machine(a.M)
	p.pool.New = func() any { return &progRunner{} }
	mOptPrograms.Inc()
	return p
}

// Program returns the compiled form of the automaton, building it on
// first use and reusing it afterwards — an Automaton held in the
// translation or server artifact caches carries its program with it.
// Mutating passes (RemoveUseless, Optimize) invalidate the memo; do
// not mutate an automaton concurrently with evaluation.
func (a *Automaton) Program() *Program {
	a.progMu.Lock()
	defer a.progMu.Unlock()
	if a.prog == nil {
		a.prog = Compile(a)
	}
	return a.prog
}

func (a *Automaton) invalidateProgram() {
	a.progMu.Lock()
	a.prog = nil
	a.progMu.Unlock()
}

type compiler struct {
	p    *Program
	a    *Automaton
	midx map[string]int32
}

func (c *compiler) machine(m *Machine) int32 {
	idx := int32(len(c.p.mach))
	c.p.mach = append(c.p.mach, progMachine{})
	pm := progMachine{
		start:  int32(m.Start),
		states: int32(m.States),
		final:  make([]bool, m.States),
		ann:    make([]int32, m.States),
		lo:     make([]int32, m.States+1),
	}
	for s := 0; s < m.States; s++ {
		pm.final[s] = m.Finals[StateID(s)]
		pm.ann[s] = -1
	}
	for s := 0; s < m.States; s++ {
		pm.lo[s] = int32(len(pm.trans))
		for _, t := range m.Trans[s] {
			k := tLabel
			switch t.Label {
			case Epsilon:
				k = tEps
			case TextLabel:
				k = tText
			}
			pm.trans = append(pm.trans, ctrans{kind: k, to: int32(t.To), label: t.Label})
		}
	}
	pm.lo[m.States] = int32(len(pm.trans))
	for s := 0; s < m.States; s++ {
		if q, ok := m.Ann[StateID(s)]; ok {
			pm.ann[s] = c.qual(q)
		}
	}
	c.p.mach[idx] = pm
	return idx
}

// name resolves a referenced sub-machine to its compiled index,
// compiling it on first reference. The index is reserved before the
// body compiles, so (defensively) cyclic references terminate.
func (c *compiler) name(x string) int32 {
	if i, ok := c.midx[x]; ok {
		return i
	}
	m, ok := c.a.Names[x]
	if !ok {
		c.midx[x] = -1
		return -1
	}
	c.midx[x] = int32(len(c.p.mach))
	return c.machine(m)
}

func (c *compiler) qual(q Qual) int32 {
	switch q := q.(type) {
	case QName:
		mi := c.name(q.X)
		if mi < 0 {
			return c.emit(cqual{op: cqFalse})
		}
		return c.emit(cqual{op: cqName, l: mi})
	case QTextEq:
		mi := c.name(q.X)
		if mi < 0 {
			return c.emit(cqual{op: cqFalse})
		}
		return c.emit(cqual{op: cqTextEq, l: mi, val: q.Val})
	case QPos:
		return c.emit(cqual{op: cqPos, k: int32(q.K)})
	case QNot:
		l := c.qual(q.Q)
		return c.emit(cqual{op: cqNot, l: l})
	case QAnd:
		l := c.qual(q.L)
		r := c.qual(q.R)
		return c.emit(cqual{op: cqAnd, l: l, r: r})
	case QOr:
		l := c.qual(q.L)
		r := c.qual(q.R)
		return c.emit(cqual{op: cqOr, l: l, r: r})
	}
	return c.emit(cqual{op: cqFalse})
}

func (c *compiler) emit(q cqual) int32 {
	c.p.quals = append(c.p.quals, q)
	return int32(len(c.p.quals) - 1)
}

// Run evaluates the program at the context node, returning the
// selected nodes deduplicated in first-acceptance order; the slice is
// freshly allocated and caller-owned, nil when empty (matching Eval).
func (p *Program) Run(ctx *xmltree.Node) []*xmltree.Node {
	res, _ := p.RunCtx(context.Background(), ctx)
	return res
}

// RunCtx is Run under a context: the exploration checks for
// cancellation every few thousand pairs and returns a
// *guard.CancelError (matching the context's error under errors.Is)
// when cut short.
func (p *Program) RunCtx(cctx context.Context, ctx *xmltree.Node) ([]*xmltree.Node, error) {
	mCompiledEvals.Inc()
	r := p.pool.Get().(*progRunner)
	r.p, r.cctx = p, cctx
	if len(r.qmark) < len(p.quals) {
		r.qmark = make([][]uint32, len(p.quals))
		r.qval = make([][]bool, len(p.quals))
	}
	r.qepoch++
	if r.qepoch == 0 {
		for i := range r.qmark {
			clear(r.qmark[i])
		}
		r.qepoch = 1
	}
	res, _ := r.run(0, ctx, modeCollect, "")
	err := r.err
	r.p, r.cctx, r.err, r.steps = nil, nil, nil, 0
	p.pool.Put(r)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Evaluation modes: collect the selection, or stop at the first
// witness (qualifier emptiness / text-equality tests).
const (
	modeCollect = iota
	modeAny
	modeAnyText
)

type cpair struct {
	state int32
	node  *xmltree.Node
}

// progRunner is one goroutine's evaluation scratch: a free list of
// per-machine-run frames plus the (qualifier, node) result memo,
// epoch-stamped so reuse across runs is O(1).
type progRunner struct {
	p      *Program
	cctx   context.Context
	frames []*progFrame
	qmark  [][]uint32 // per qual: epoch stamp by NodeID
	qval   [][]bool   // per qual: memoized result by NodeID
	qepoch uint32
	steps  int
	err    error
}

// progFrame is one machine run's scratch: per-state active marks and
// the result dedupe set, all epoch-stamped over NodeIDs.
type progFrame struct {
	active [][]uint32
	seen   []uint32
	epoch  uint32
	queue  []cpair
}

func (r *progRunner) getFrame(states int) *progFrame {
	var f *progFrame
	if n := len(r.frames); n > 0 {
		f = r.frames[n-1]
		r.frames = r.frames[:n-1]
	} else {
		f = &progFrame{}
	}
	if len(f.active) < states {
		grown := make([][]uint32, states)
		copy(grown, f.active)
		f.active = grown
	}
	f.epoch++
	if f.epoch == 0 {
		for i := range f.active {
			clear(f.active[i])
		}
		clear(f.seen)
		f.epoch = 1
	}
	f.queue = f.queue[:0]
	return f
}

func (r *progRunner) putFrame(f *progFrame) {
	clear(f.queue) // drop node pointers; the pool must not pin documents
	f.queue = f.queue[:0]
	r.frames = append(r.frames, f)
}

func (f *progFrame) has(s int32, id int) bool {
	row := f.active[s]
	return id < len(row) && row[id] == f.epoch
}

func (f *progFrame) mark(s int32, id int) {
	row := f.active[s]
	if id >= len(row) {
		grown := make([]uint32, id+id/2+64)
		copy(grown, row)
		f.active[s] = grown
		row = grown
	}
	row[id] = f.epoch
}

// see inserts the node into the result dedupe set, reporting whether
// it was absent.
func (f *progFrame) see(id int) bool {
	if id >= len(f.seen) {
		grown := make([]uint32, id+id/2+64)
		copy(grown, f.seen)
		f.seen = grown
	}
	if f.seen[id] == f.epoch {
		return false
	}
	f.seen[id] = f.epoch
	return true
}

// checkCancel observes the context every 4096 explored pairs, exactly
// like the interpreter.
func (r *progRunner) checkCancel() bool {
	r.steps++
	if r.steps&4095 == 0 {
		if err := guard.CheckCtx(r.cctx, "anfa: run"); err != nil {
			r.err = err
		}
	}
	return r.err != nil
}

// run explores machine mi from ctx. In modeCollect it returns the
// selection; in modeAny / modeAnyText it returns ok=true as soon as a
// final node (with matching text) is reached and abandons the rest of
// the frontier.
func (r *progRunner) run(mi int32, ctx *xmltree.Node, mode int, val string) ([]*xmltree.Node, bool) {
	m := &r.p.mach[mi]
	if m.states == 0 || r.err != nil {
		return nil, false
	}
	f := r.getFrame(int(m.states))
	var result []*xmltree.Node
	found := false

	// push enters (s, n); true means the predicate mode is satisfied
	// and the caller should stop exploring.
	push := func(s int32, n *xmltree.Node) bool {
		id := int(n.ID)
		if f.has(s, id) {
			return false
		}
		if qi := m.ann[s]; qi >= 0 && !r.holds(qi, n) {
			return false
		}
		f.mark(s, id)
		f.queue = append(f.queue, cpair{state: s, node: n})
		if m.final[s] {
			switch mode {
			case modeCollect:
				if f.see(id) {
					result = append(result, n)
				}
			case modeAny:
				found = true
				return true
			case modeAnyText:
				if n.IsText() && n.Text == val {
					found = true
					return true
				}
			}
		}
		return false
	}

	if !push(m.start, ctx) {
	explore:
		for head := 0; head < len(f.queue); head++ {
			if r.checkCancel() {
				break
			}
			pr := f.queue[head]
			for ti := m.lo[pr.state]; ti < m.lo[pr.state+1]; ti++ {
				t := &m.trans[ti]
				switch t.kind {
				case tEps:
					if push(t.to, pr.node) {
						break explore
					}
				case tText:
					for _, ch := range pr.node.Children {
						if ch.IsText() && push(t.to, ch) {
							break explore
						}
					}
				case tLabel:
					for _, ch := range pr.node.Children {
						if ch.Label == t.label && push(t.to, ch) {
							break explore
						}
					}
				}
			}
		}
	}
	r.putFrame(f)
	return result, found
}

// holds evaluates compiled qualifier qi at n, memoizing the sub-
// machine tests per (qualifier, node).
func (r *progRunner) holds(qi int32, n *xmltree.Node) bool {
	q := &r.p.quals[qi]
	switch q.op {
	case cqFalse:
		return false
	case cqPos:
		return n.ChildPosition() == int(q.k)
	case cqNot:
		return !r.holds(q.l, n)
	case cqAnd:
		return r.holds(q.l, n) && r.holds(q.r, n)
	case cqOr:
		return r.holds(q.l, n) || r.holds(q.r, n)
	case cqName, cqTextEq:
		id := int(n.ID)
		if row := r.qmark[qi]; id < len(row) && row[id] == r.qepoch {
			return r.qval[qi][id]
		}
		var ok bool
		if q.op == cqName {
			_, ok = r.run(q.l, n, modeAny, "")
		} else {
			_, ok = r.run(q.l, n, modeAnyText, q.val)
		}
		if r.err != nil {
			// A canceled run is not evidence; don't memoize.
			return ok
		}
		row := r.qmark[qi]
		if id >= len(row) {
			grown := make([]uint32, id+id/2+64)
			copy(grown, row)
			r.qmark[qi] = grown
			row = grown
			vgrown := make([]bool, len(grown))
			copy(vgrown, r.qval[qi])
			r.qval[qi] = vgrown
		}
		row[id] = r.qepoch
		r.qval[qi][id] = ok
		return ok
	}
	return false
}
