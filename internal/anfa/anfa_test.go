package anfa_test

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/anfa"
	"repro/internal/dtd"
	"repro/internal/workload"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func idSet(nodes []*xmltree.Node) []xmltree.NodeID {
	ids := xpath.IDs(nodes)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sameNodes(a, b []*xmltree.Node) bool {
	x, y := idSet(a), idSet(b)
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

func doc(t *testing.T, src string) *xmltree.Tree {
	t.Helper()
	tr, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestEvalMatchesXPath compares ANFA evaluation with direct X_R
// evaluation on hand-picked queries.
func TestEvalMatchesXPath(t *testing.T) {
	tr := doc(t, `<r><a>x</a><a>y</a><b><a>z</a><c/></b></r>`)
	queries := []string{
		".",
		"a",
		"b/a",
		"a | b",
		"a/text()",
		"(a | b)*",
		"b[a]",
		"b[not(zz)]",
		"a[text() = \"y\"]",
		"a[position() = 2]",
		"b/a[position() = 1]",
		"(a/text()) | (b/c)",
		"b[a and c]/a",
		"b[a or zz]",
		"a[true()]",
		".[a]",
		"a[not(true())]",
	}
	for _, src := range queries {
		t.Run(src, func(t *testing.T) {
			q := xpath.MustParse(src)
			auto, err := anfa.FromExpr(q)
			if err != nil {
				t.Fatalf("FromExpr: %v", err)
			}
			got := auto.Eval(tr.Root)
			want := xpath.Eval(q, tr.Root)
			if !sameNodes(got, want) {
				t.Errorf("ANFA eval = %v, xpath eval = %v\n%s", idSet(got), idSet(want), auto)
			}
		})
	}
}

// TestExample47ANFA builds the ANFA of Example 4.7 — the translated
// prerequisite query over the school schema — and runs it on a mapped
// document.
func TestExample47ANFA(t *testing.T) {
	q := xpath.MustParse(`courses/current/course[basic/cno/text() = "CS331"]/(category/mandatory/regular/required/prereq/course)*`)
	auto, err := anfa.FromExpr(q)
	if err != nil {
		t.Fatal(err)
	}
	// Build a school document via σ1 from a class document with a
	// prerequisite chain: CS331 requires CS210.
	emb := workload.ClassEmbedding()
	src := doc(t, `
<db>
  <class>
    <cno>CS331</cno><title>DB</title>
    <type><regular><prereq>
      <class><cno>CS210</cno><title>Algo</title><type><project>p</project></type></class>
    </prereq></regular></type>
  </class>
</db>`)
	res, err := emb.Apply(src)
	if err != nil {
		t.Fatal(err)
	}
	got := auto.Eval(res.Tree.Root)
	// Expect both course nodes: CS331 (zero iterations) and CS210.
	if len(got) != 2 {
		t.Fatalf("query selected %d nodes, want 2 (CS331 and its prerequisite)\n%s", len(got), res.Tree)
	}
	for _, n := range got {
		if n.Label != "course" {
			t.Errorf("selected %q, want course", n.Label)
		}
	}
	// Also matches the direct evaluator.
	want := xpath.Eval(q, res.Tree.Root)
	if !sameNodes(got, want) {
		t.Errorf("ANFA and xpath evaluation disagree")
	}
}

// TestEvalPositionSemantics: QPos is the k-th same-label child, which
// agrees with X_R's step-position semantics on label steps.
func TestEvalPositionSemantics(t *testing.T) {
	tr := doc(t, `<r><a/><b/><a/></r>`)
	auto, err := anfa.FromExpr(xpath.MustParse("a[position() = 2]"))
	if err != nil {
		t.Fatal(err)
	}
	got := auto.Eval(tr.Root)
	if len(got) != 1 || got[0] != tr.Root.Children[2] {
		t.Errorf("a[position()=2] selected %v, want the third child (second a)", idSet(got))
	}
}

func TestFailAutomaton(t *testing.T) {
	f := anfa.Fail()
	if !f.IsFail() {
		t.Error("Fail() not recognized as failing")
	}
	tr := doc(t, `<r><a/></r>`)
	if got := f.Eval(tr.Root); len(got) != 0 {
		t.Errorf("Fail eval = %v", got)
	}
	if _, err := f.ToRegex(); err == nil {
		t.Error("ToRegex of Fail should error")
	}
}

func TestRemoveUseless(t *testing.T) {
	auto, err := anfa.FromExpr(xpath.MustParse("a/b | c/d"))
	if err != nil {
		t.Fatal(err)
	}
	m := auto.M
	// Add an unreachable state and a dead-end state.
	dead := m.AddState()
	m.AddTransition(m.Start, "x", dead)
	before := auto.Size()
	auto.RemoveUseless()
	if auto.Size() >= before {
		t.Errorf("Size after RemoveUseless = %d, want < %d", auto.Size(), before)
	}
	tr := doc(t, `<r><a><b/></a><c><d/></c></r>`)
	got := auto.Eval(tr.Root)
	if len(got) != 2 {
		t.Errorf("pruned automaton selects %d nodes, want 2", len(got))
	}
}

func TestDescRejected(t *testing.T) {
	if _, err := anfa.FromExpr(xpath.MustParse("a//b")); err == nil {
		t.Error("FromExpr should reject // before desugaring")
	}
	d := dtd.MustNew("r", dtd.D("r", dtd.Star("a")), dtd.D("a", dtd.Star("b")), dtd.D("b", dtd.Empty()))
	desugared := xpath.DesugarDesc(xpath.MustParse(".//b"), d.Types)
	auto, err := anfa.FromExpr(desugared)
	if err != nil {
		t.Fatalf("FromExpr after desugar: %v", err)
	}
	tr := doc(t, `<r><a><b/><b/></a><a/></r>`)
	got := auto.Eval(tr.Root)
	if len(got) != 2 {
		t.Errorf(".//b selected %d nodes, want 2", len(got))
	}
}

// TestToRegexRoundTrip: expr -> ANFA -> expr preserves semantics.
func TestToRegexRoundTrip(t *testing.T) {
	tr := doc(t, `<r><a>x</a><a>y</a><b><a>z</a><c/></b></r>`)
	for _, src := range []string{
		"a", "a | b", "b/a", "(a | b)*", "a[position() = 2]",
		"b[a]/a", "a/text()", "b[c and a]",
	} {
		t.Run(src, func(t *testing.T) {
			q := xpath.MustParse(src)
			auto, err := anfa.FromExpr(q)
			if err != nil {
				t.Fatal(err)
			}
			back, err := auto.ToRegex()
			if err != nil {
				t.Fatalf("ToRegex: %v", err)
			}
			got := xpath.Eval(back, tr.Root)
			want := xpath.Eval(q, tr.Root)
			if !sameNodes(got, want) {
				t.Errorf("regex %q (from %q): got %v want %v", xpath.String(back), src, idSet(got), idSet(want))
			}
		})
	}
}

// TestEvalEquivalenceProperty: on random schema-aware queries and
// random documents, ANFA evaluation equals direct X_R evaluation
// (invariant 10 of DESIGN.md).
func TestEvalEquivalenceProperty(t *testing.T) {
	d := workload.ClassDTD()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := xpath.RandomQuery(r, d, xpath.GenOptions{TranslatableOnly: true})
		tr := xmltree.MustGenerate(d, r, xmltree.GenOptions{})
		auto, err := anfa.FromExpr(q)
		if err != nil {
			t.Logf("seed %d: FromExpr(%s): %v", seed, xpath.String(q), err)
			return false
		}
		got := auto.Eval(tr.Root)
		want := xpath.Eval(q, tr.Root)
		if !sameNodes(got, want) {
			t.Logf("seed %d: query %s: anfa=%v xpath=%v", seed, xpath.String(q), idSet(got), idSet(want))
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestToRegexEquivalenceProperty: regex reconstruction preserves
// semantics on random star-free queries (kept small; the conversion is
// exponential in general).
func TestToRegexEquivalenceProperty(t *testing.T) {
	d := workload.StudentDTD()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := xpath.RandomQuery(r, d, xpath.GenOptions{MaxDepth: 3, TranslatableOnly: true, NoStar: true})
		auto, err := anfa.FromExpr(q)
		if err != nil {
			return false
		}
		back, err := auto.ToRegex()
		if err != nil {
			// Fail-only sub-qualifiers have no X_R form; skip.
			return true
		}
		tr := xmltree.MustGenerate(d, r, xmltree.GenOptions{})
		return sameNodes(xpath.Eval(back, tr.Root), xpath.Eval(q, tr.Root))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestAutomatonSize(t *testing.T) {
	small, _ := anfa.FromExpr(xpath.MustParse("a"))
	big, _ := anfa.FromExpr(xpath.MustParse("a/b/c[d]/(e | f)*"))
	if small.Size() >= big.Size() {
		t.Errorf("Size(a) = %d should be < Size(complex) = %d", small.Size(), big.Size())
	}
}

func TestAnnotateConjoins(t *testing.T) {
	m := anfa.NewMachine()
	s := m.AddState()
	m.Annotate(s, anfa.QPos{K: 1})
	m.Annotate(s, anfa.QPos{K: 2})
	if _, ok := m.Ann[s].(anfa.QAnd); !ok {
		t.Errorf("double annotation = %T, want QAnd", m.Ann[s])
	}
}
