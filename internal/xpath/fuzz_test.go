package xpath

import (
	"errors"
	"testing"

	"repro/internal/guard"
)

// FuzzXPathParse asserts that Parse never panics on arbitrary input
// and that accepted queries round-trip: String renders a query that
// reparses to the same canonical rendering.
func FuzzXPathParse(f *testing.F) {
	seeds := []string{
		"a",
		"a/b/c",
		"a/text()",
		"_",
		"(a | b)*/c",
		"a[b/c]",
		`a[b/text() = "x"]`,
		"a[!b]",
		"a[b & (c | !d)]",
		"a//b",
		"(a/(b | c)*)*[d]",
		"((((a))))",
		"a[",
		"a |",
		"//",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	tight := guard.Limits{MaxDepth: 8, MaxInputBytes: 1 << 10}
	f.Fuzz(func(t *testing.T, src string) {
		// Deeply nested input must fail with a structured LimitError
		// under tight bounds, never a stack overflow.
		if _, err := ParseLimits(src, tight); err != nil {
			var le *guard.LimitError
			_ = errors.As(err, &le)
		}
		e, err := Parse(src)
		if err != nil {
			return
		}
		s := String(e)
		e2, err := Parse(s)
		if err != nil {
			t.Fatalf("reparse of rendering failed: %v\ninput: %q\nrendering: %q", err, src, s)
		}
		if s2 := String(e2); s2 != s {
			t.Errorf("rendering not a parse fixpoint\ninput: %q\nfirst: %q\nsecond: %q", src, s, s2)
		}
	})
}
