package xpath

import (
	"math/rand"

	"repro/internal/dtd"
)

// GenOptions steers schema-aware random query generation, used by
// property tests and benchmarks.
type GenOptions struct {
	// MaxDepth bounds the nesting of the generated expression. Default 4.
	MaxDepth int
	// AllowDesc permits '//' (the X fragment). Off by default; X_R's
	// Kleene star is always available unless AllowStar is false.
	AllowDesc bool
	// NoStar disables p* (generates within the star-free core).
	NoStar bool
	// NoFilter disables qualifiers.
	NoFilter bool
	// TranslatableOnly restricts generation to the forms supported by
	// schema-directed query translation: position() qualifiers appear
	// only directly on label steps.
	TranslatableOnly bool
	// TextValues is the PCDATA vocabulary for generated text()='c'
	// comparisons. Default "v0".."v9".
	TextValues []string
}

func (o GenOptions) withDefaults() GenOptions {
	if o.MaxDepth == 0 {
		o.MaxDepth = 4
	}
	if len(o.TextValues) == 0 {
		for _, v := range []string{"v0", "v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8", "v9"} {
			o.TextValues = append(o.TextValues, v)
		}
	}
	return o
}

// RandomQuery generates a random X_R (or X) query that is meaningful
// when evaluated at the root of instances of d: every label step follows
// a schema edge from some type reachable at that point, so queries have
// non-trivial answers with reasonable probability.
func RandomQuery(r *rand.Rand, d *dtd.DTD, opt GenOptions) Expr {
	opt = opt.withDefaults()
	g := &qgen{r: r, d: d, opt: opt}
	e, _ := g.expr(typeSet{d.Root: true}, opt.MaxDepth)
	return e
}

type typeSet map[string]bool

type qgen struct {
	r   *rand.Rand
	d   *dtd.DTD
	opt GenOptions
}

// childLabels returns the labels reachable in one step from the types.
func (g *qgen) childLabels(ts typeSet) []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range g.d.Types {
		if !ts[a] {
			continue
		}
		for _, c := range g.d.Prods[a].Children {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

func (g *qgen) hasStrType(ts typeSet) bool {
	for a := range ts {
		if p, ok := g.d.Prods[a]; ok && p.Kind == dtd.KindStr {
			return true
		}
	}
	return false
}

// expr generates an expression starting from the context types ts and
// returns it with the set of types its results may have.
func (g *qgen) expr(ts typeSet, depth int) (Expr, typeSet) {
	if depth <= 0 {
		return g.labelStep(ts)
	}
	switch g.r.Intn(8) {
	case 0, 1:
		return g.labelStep(ts)
	case 2: // sequence
		l, mid := g.expr(ts, depth-1)
		r, out := g.expr(mid, depth-1)
		return Seq{L: l, R: r}, out
	case 3: // union
		l, o1 := g.expr(ts, depth-1)
		r, o2 := g.expr(ts, depth-1)
		return Union{L: l, R: r}, unionSet(o1, o2)
	case 4: // star or desc
		if g.opt.AllowDesc && g.r.Intn(2) == 0 {
			l, mid := g.expr(ts, depth-1)
			all := g.reachableFrom(mid)
			r, out := g.expr(all, depth-1)
			return Desc{L: l, R: r}, out
		}
		if g.opt.NoStar {
			return g.labelStep(ts)
		}
		p, out := g.expr(ts, depth-1)
		return Star{P: p}, g.closure(ts, out, p)
	case 5: // filter
		if g.opt.NoFilter {
			return g.labelStep(ts)
		}
		return g.filter(ts, depth)
	case 6: // text step when available
		if g.hasStrType(ts) {
			return Text{}, typeSet{}
		}
		return g.labelStep(ts)
	default: // empty/self
		return Empty{}, ts
	}
}

func (g *qgen) labelStep(ts typeSet) (Expr, typeSet) {
	labels := g.childLabels(ts)
	if len(labels) == 0 {
		return Empty{}, ts
	}
	l := labels[g.r.Intn(len(labels))]
	return Label{Name: l}, typeSet{l: true}
}

func (g *qgen) filter(ts typeSet, depth int) (Expr, typeSet) {
	if g.opt.TranslatableOnly {
		// position() only directly on a label step; other qualifiers on
		// arbitrary sub-paths.
		e, out := g.labelStep(ts)
		lbl, isLabel := e.(Label)
		if isLabel && g.r.Intn(3) == 0 {
			maxPos := g.maxOccurrences(ts, lbl.Name)
			k := 1 + g.r.Intn(maxPos)
			return Filter{P: e, Q: QPos{K: k}}, out
		}
		q := g.qual(out, depth-1, false)
		return Filter{P: e, Q: q}, out
	}
	p, out := g.expr(ts, depth-1)
	q := g.qual(out, depth-1, true)
	return Filter{P: p, Q: q}, out
}

// maxOccurrences returns a small bound for position() qualifiers on
// label under the context types: the max occurrence count in concat
// productions, or 3 for star parents.
func (g *qgen) maxOccurrences(ts typeSet, label string) int {
	max := 1
	for a := range ts {
		p, ok := g.d.Prods[a]
		if !ok {
			continue
		}
		switch p.Kind {
		case dtd.KindConcat:
			if n := p.Occurrences(label); n > max {
				max = n
			}
		case dtd.KindStar:
			if p.Children[0] == label && max < 3 {
				max = 3
			}
		}
	}
	return max
}

func (g *qgen) qual(ts typeSet, depth int, allowPos bool) Qual {
	if depth <= 0 {
		return QTrue{}
	}
	switch g.r.Intn(7) {
	case 0:
		p, _ := g.expr(ts, depth-1)
		return QPath{P: p}
	case 1:
		// p/text() = 'c' when a str type is in one-step reach.
		if p, ok := g.textPath(ts, depth-1); ok {
			return QTextEq{P: p, Val: g.opt.TextValues[g.r.Intn(len(g.opt.TextValues))]}
		}
		return QTrue{}
	case 2:
		if allowPos {
			return QPos{K: 1 + g.r.Intn(3)}
		}
		return QTrue{}
	case 3:
		return QNot{Q: g.qual(ts, depth-1, allowPos)}
	case 4:
		return QAnd{L: g.qual(ts, depth-1, allowPos), R: g.qual(ts, depth-1, allowPos)}
	case 5:
		return QOr{L: g.qual(ts, depth-1, allowPos), R: g.qual(ts, depth-1, allowPos)}
	default:
		return QTrue{}
	}
}

// textPath builds a short label path from ts to a str type, ending in
// text().
func (g *qgen) textPath(ts typeSet, depth int) (Expr, bool) {
	if g.hasStrType(ts) {
		return Text{}, true
	}
	cur := ts
	var steps []Expr
	for i := 0; i <= depth+2; i++ {
		labels := g.childLabels(cur)
		if len(labels) == 0 {
			return nil, false
		}
		// Prefer a str-typed child when present.
		var pick string
		for _, l := range labels {
			if g.d.Prods[l].Kind == dtd.KindStr {
				pick = l
				break
			}
		}
		if pick == "" {
			pick = labels[g.r.Intn(len(labels))]
		}
		steps = append(steps, Label{Name: pick})
		cur = typeSet{pick: true}
		if g.d.Prods[pick].Kind == dtd.KindStr {
			steps = append(steps, Text{})
			return SeqOf(steps...), true
		}
	}
	return nil, false
}

// closure approximates the result types of p* starting from ts.
func (g *qgen) closure(ts, out typeSet, p Expr) typeSet {
	res := unionSet(ts, out)
	for i := 0; i < len(g.d.Types); i++ {
		before := len(res)
		res = unionSet(res, g.resultTypes(p, res))
		if len(res) == before {
			break
		}
	}
	return res
}

// resultTypes over-approximates the types selected by p from ts using
// the schema graph.
func (g *qgen) resultTypes(p Expr, ts typeSet) typeSet {
	switch p := p.(type) {
	case Empty:
		return ts
	case Label:
		out := typeSet{}
		for a := range ts {
			for _, c := range g.d.Prods[a].Children {
				if c == p.Name {
					out[c] = true
				}
			}
		}
		return out
	case Text:
		return typeSet{}
	case Seq:
		return g.resultTypes(p.R, g.resultTypes(p.L, ts))
	case Desc:
		return g.resultTypes(p.R, g.reachableFrom(g.resultTypes(p.L, ts)))
	case Union:
		return unionSet(g.resultTypes(p.L, ts), g.resultTypes(p.R, ts))
	case Star:
		return g.closure(ts, g.resultTypes(p.P, ts), p.P)
	case Filter:
		return g.resultTypes(p.P, ts)
	}
	return typeSet{}
}

func (g *qgen) reachableFrom(ts typeSet) typeSet {
	out := typeSet{}
	var stack []string
	for a := range ts {
		out[a] = true
		stack = append(stack, a)
	}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.d.Prods[a].Children {
			if !out[c] {
				out[c] = true
				stack = append(stack, c)
			}
		}
	}
	return out
}

func unionSet(a, b typeSet) typeSet {
	out := typeSet{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}
