// Package xpath implements the regular XPath fragment X_R of Marx
// (2004) as used by Fan & Bohannon:
//
//	p ::= ε | A | p/text() | p/p | p ∪ p | p* | p[q]
//	q ::= p | p/text() = 'c' | position() = k | ¬q | q ∧ q | q ∨ q
//
// together with the ordinary XPath fragment X, obtained by replacing p*
// with the descendant-or-self axis p//p. The package provides the AST,
// a parser for a textual syntax, an evaluator over xmltree documents,
// and the X_R paths (η1/.../ηk with ηi = A[q], q ∈ {true, position()=k})
// that schema embeddings map edges to.
//
// Textual syntax notes: '.' is ε (self); '*' is the postfix Kleene star
// of the paper, not the wildcard node test; '|' (or '∪') is union; '//'
// is descendant-or-self (X only); qualifiers use not/and/or (or !, &&,
// ||), position()=k, and p/text()='c'.
package xpath

import (
	"errors"
	"fmt"
	"strings"
)

// Expr is an X_R (or X) path expression.
type Expr interface {
	isExpr()
	// write renders the expression; prec is the surrounding precedence
	// (0 union, 1 sequence, 2 postfix).
	write(b *strings.Builder, prec int)
}

// Qual is a qualifier (Boolean test) appearing in p[q].
type Qual interface {
	isQual()
	writeQ(b *strings.Builder, prec int)
}

type (
	// Empty is ε, the empty path (self). Written '.'.
	Empty struct{}
	// Label is a child-axis step to elements with the given tag.
	Label struct{ Name string }
	// Text is the text() step selecting text-node children.
	Text struct{}
	// Seq is the composition p1/p2.
	Seq struct{ L, R Expr }
	// Union is p1 ∪ p2.
	Union struct{ L, R Expr }
	// Star is the Kleene closure p* (X_R only).
	Star struct{ P Expr }
	// Desc is the descendant-or-self composition p1//p2 (X only).
	Desc struct{ L, R Expr }
	// Filter is p[q].
	Filter struct {
		P Expr
		Q Qual
	}
)

func (Empty) isExpr()  {}
func (Label) isExpr()  {}
func (Text) isExpr()   {}
func (Seq) isExpr()    {}
func (Union) isExpr()  {}
func (Star) isExpr()   {}
func (Desc) isExpr()   {}
func (Filter) isExpr() {}

type (
	// QTrue always holds; it is definable in X_R as [.] and exists as an
	// explicit form for X_R paths.
	QTrue struct{}
	// QPath holds when p selects at least one node.
	QPath struct{ P Expr }
	// QTextEq holds when p/text() selects a text node with value Val. P
	// must end in a Text step (the parser guarantees this).
	QTextEq struct {
		P   Expr
		Val string
	}
	// QPos is position() = K: the context node is the K-th node of the
	// filtered selection.
	QPos struct{ K int }
	// QNot is ¬q.
	QNot struct{ Q Qual }
	// QAnd is q1 ∧ q2.
	QAnd struct{ L, R Qual }
	// QOr is q1 ∨ q2.
	QOr struct{ L, R Qual }
)

func (QTrue) isQual()   {}
func (QPath) isQual()   {}
func (QTextEq) isQual() {}
func (QPos) isQual()    {}
func (QNot) isQual()    {}
func (QAnd) isQual()    {}
func (QOr) isQual()     {}

// String renders the expression in the package's textual syntax; the
// result reparses to an equal AST.
func String(e Expr) string {
	var b strings.Builder
	e.write(&b, 0)
	return b.String()
}

// QualString renders a qualifier.
func QualString(q Qual) string {
	var b strings.Builder
	q.writeQ(&b, 0)
	return b.String()
}

func paren(b *strings.Builder, need bool, f func()) {
	if need {
		b.WriteByte('(')
	}
	f()
	if need {
		b.WriteByte(')')
	}
}

func (Empty) write(b *strings.Builder, prec int)   { b.WriteByte('.') }
func (e Label) write(b *strings.Builder, prec int) { b.WriteString(e.Name) }
func (Text) write(b *strings.Builder, prec int)    { b.WriteString("text()") }

func (e Seq) write(b *strings.Builder, prec int) {
	paren(b, prec > 1, func() {
		e.L.write(b, 1)
		b.WriteByte('/')
		e.R.write(b, 2)
	})
}

func (e Union) write(b *strings.Builder, prec int) {
	paren(b, prec > 0, func() {
		e.L.write(b, 0)
		b.WriteString(" | ")
		e.R.write(b, 1)
	})
}

func (e Star) write(b *strings.Builder, prec int) {
	needInner := !isAtom(e.P)
	paren(b, needInner, func() { e.P.write(b, 2) })
	b.WriteByte('*')
}

func (e Desc) write(b *strings.Builder, prec int) {
	paren(b, prec > 1, func() {
		e.L.write(b, 1)
		b.WriteString("//")
		e.R.write(b, 2)
	})
}

func (e Filter) write(b *strings.Builder, prec int) {
	needInner := !isAtom(e.P)
	paren(b, needInner, func() { e.P.write(b, 2) })
	b.WriteByte('[')
	e.Q.writeQ(b, 0)
	b.WriteByte(']')
}

func isAtom(e Expr) bool {
	switch e.(type) {
	case Empty, Label, Text, Filter, Star:
		return true
	}
	return false
}

func (QTrue) writeQ(b *strings.Builder, prec int) { b.WriteString("true()") }

func (q QPath) writeQ(b *strings.Builder, prec int) { q.P.write(b, 0) }

func (q QTextEq) writeQ(b *strings.Builder, prec int) {
	q.P.write(b, 1)
	b.WriteString(" = ")
	writeLit(b, q.Val)
}

// writeLit renders an X_R string literal. The grammar, like XPath 1.0,
// has no escape sequences: a literal is delimited by whichever quote
// kind the value does not contain. A value parsed from source can
// never hold both kinds (the literal ends at its own delimiter), so
// renderings of parsed queries always reparse; for programmatically
// built values holding both kinds there is no expressible literal, and
// the rendering falls back to an XPath-style concat() for display.
func writeLit(b *strings.Builder, s string) {
	const dq, sq = `"`, `'`
	switch {
	case !strings.Contains(s, dq):
		b.WriteString(dq + s + dq)
	case !strings.Contains(s, sq):
		b.WriteString(sq + s + sq)
	default:
		parts := strings.Split(s, dq)
		pieces := make([]string, 0, 2*len(parts))
		for i, p := range parts {
			if i > 0 {
				pieces = append(pieces, sq+dq+sq)
			}
			if p != "" {
				pieces = append(pieces, dq+p+dq)
			}
		}
		b.WriteString("concat(" + strings.Join(pieces, ", ") + ")")
	}
}

func (q QPos) writeQ(b *strings.Builder, prec int) {
	fmt.Fprintf(b, "position() = %d", q.K)
}

func (q QNot) writeQ(b *strings.Builder, prec int) {
	b.WriteString("not(")
	q.Q.writeQ(b, 0)
	b.WriteByte(')')
}

func (q QAnd) writeQ(b *strings.Builder, prec int) {
	paren(b, prec > 1, func() {
		q.L.writeQ(b, 1)
		b.WriteString(" and ")
		q.R.writeQ(b, 2)
	})
}

func (q QOr) writeQ(b *strings.Builder, prec int) {
	paren(b, prec > 0, func() {
		q.L.writeQ(b, 0)
		b.WriteString(" or ")
		q.R.writeQ(b, 1)
	})
}

// SeqOf folds a list of expressions into nested Seq nodes; SeqOf() is ε.
func SeqOf(es ...Expr) Expr {
	if len(es) == 0 {
		return Empty{}
	}
	e := es[0]
	for _, r := range es[1:] {
		e = Seq{L: e, R: r}
	}
	return e
}

// UnionOf folds a non-empty list of expressions into nested Unions.
// Unlike SeqOf — where the empty fold has the natural unit ε — an
// empty union has no X_R expression denoting it, so zero expressions
// is an error.
func UnionOf(es ...Expr) (Expr, error) {
	if len(es) == 0 {
		return nil, errors.New("xpath: UnionOf of zero expressions")
	}
	e := es[0]
	for _, r := range es[1:] {
		e = Union{L: e, R: r}
	}
	return e, nil
}

// MustUnionOf is UnionOf panicking on error, for static expression
// literals over lists known to be non-empty.
func MustUnionOf(es ...Expr) Expr {
	e, err := UnionOf(es...)
	if err != nil {
		panic(err)
	}
	return e
}

// Size returns the number of AST nodes of the expression, the |Q| of the
// paper's complexity bounds.
func Size(e Expr) int {
	switch e := e.(type) {
	case Empty, Label, Text:
		return 1
	case Seq:
		return 1 + Size(e.L) + Size(e.R)
	case Union:
		return 1 + Size(e.L) + Size(e.R)
	case Desc:
		return 1 + Size(e.L) + Size(e.R)
	case Star:
		return 1 + Size(e.P)
	case Filter:
		return 1 + Size(e.P) + qualSize(e.Q)
	}
	return 1
}

func qualSize(q Qual) int {
	switch q := q.(type) {
	case QTrue, QPos:
		return 1
	case QPath:
		return 1 + Size(q.P)
	case QTextEq:
		return 1 + Size(q.P)
	case QNot:
		return 1 + qualSize(q.Q)
	case QAnd:
		return 1 + qualSize(q.L) + qualSize(q.R)
	case QOr:
		return 1 + qualSize(q.L) + qualSize(q.R)
	}
	return 1
}

// HasDesc reports whether the expression uses the descendant-or-self
// axis, i.e. lies in X but not in X_R's pure child fragment.
func HasDesc(e Expr) bool {
	switch e := e.(type) {
	case Desc:
		return true
	case Seq:
		return HasDesc(e.L) || HasDesc(e.R)
	case Union:
		return HasDesc(e.L) || HasDesc(e.R)
	case Star:
		return HasDesc(e.P)
	case Filter:
		return HasDesc(e.P) || qualHasDesc(e.Q)
	}
	return false
}

func qualHasDesc(q Qual) bool {
	switch q := q.(type) {
	case QPath:
		return HasDesc(q.P)
	case QTextEq:
		return HasDesc(q.P)
	case QNot:
		return qualHasDesc(q.Q)
	case QAnd:
		return qualHasDesc(q.L) || qualHasDesc(q.R)
	case QOr:
		return qualHasDesc(q.L) || qualHasDesc(q.R)
	}
	return false
}
