package xpath

import (
	"sync"

	"repro/internal/xmltree"
)

// Program is a compiled, reusable evaluation plan for one X_R (or X)
// expression. Compiling flattens the AST into a dense instruction
// array once; every Run then evaluates without walking interface
// values and — crucially for the per-request hot path — without
// allocating the per-step dedupe maps of the tree-walking
// interpreter. Visited sets are epoch-stamped arrays indexed by the
// dense xmltree.NodeID space of the document, and node-list scratch
// is recycled through a per-Program free list.
//
// A Program is safe for concurrent use: each Run borrows an
// independent evaluation scratch from an internal sync.Pool, so one
// compiled query can serve any number of goroutines (the
// amortization the paper's §5 value proposition rests on: one
// embedding and one translated query, unboundedly many documents).
//
// All context nodes of a single Run/RunAll call must belong to one
// document: the visited sets key nodes by NodeID, which is unique
// within a tree but reused across trees. This matches the paper's
// semantics (queries are evaluated over one instance) and every
// caller in this repository.
type Program struct {
	ins   []inst
	quals []qinst
	root  int32
	src   Expr
	pool  sync.Pool // *runner
}

type opcode uint8

const (
	opSelf opcode = iota // ε
	opLabel
	opText
	opSeq
	opUnion
	opStar
	opDesc
	opFilter
)

type qopcode uint8

const (
	qTrue qopcode = iota
	qPath
	qTextEq
	qPos
	qNot
	qAnd
	qOr
)

// inst is one compiled expression node. l and r index ins, except for
// opFilter where r indexes quals and for opLabel/opText/opSelf where
// both are unused.
type inst struct {
	op   opcode
	l, r int32
	name string // opLabel tag
}

// qinst is one compiled qualifier node. For qPath/qTextEq l indexes
// ins (the qualifier's path); for qNot/qAnd/qOr l and r index quals.
type qinst struct {
	op  qopcode
	l   int32
	r   int32
	val string // qTextEq constant
	k   int32  // qPos position
}

// Compile builds the evaluation plan for e. The expression is
// compiled as-is: descendant-or-self steps (the X fragment) are
// supported directly, mirroring the interpreter.
func Compile(e Expr) *Program {
	n := Size(e)
	p := &Program{
		ins:   make([]inst, 0, n),
		quals: make([]qinst, 0, 4),
		src:   e,
	}
	p.root = p.compileExpr(e)
	p.pool.New = func() any { return &runner{} }
	mCompiles.Inc()
	mProgramLen.Observe(float64(len(p.ins) + len(p.quals)))
	return p
}

// Source returns the compiled expression.
func (p *Program) Source() Expr { return p.src }

// String renders the compiled expression in the package's textual
// syntax.
func (p *Program) String() string { return String(p.src) }

func (p *Program) compileExpr(e Expr) int32 {
	switch e := e.(type) {
	case Empty:
		return p.emit(inst{op: opSelf})
	case Label:
		return p.emit(inst{op: opLabel, name: e.Name})
	case Text:
		return p.emit(inst{op: opText})
	case Seq:
		l := p.compileExpr(e.L)
		r := p.compileExpr(e.R)
		return p.emit(inst{op: opSeq, l: l, r: r})
	case Union:
		l := p.compileExpr(e.L)
		r := p.compileExpr(e.R)
		return p.emit(inst{op: opUnion, l: l, r: r})
	case Star:
		l := p.compileExpr(e.P)
		return p.emit(inst{op: opStar, l: l})
	case Desc:
		l := p.compileExpr(e.L)
		r := p.compileExpr(e.R)
		return p.emit(inst{op: opDesc, l: l, r: r})
	case Filter:
		l := p.compileExpr(e.P)
		q := p.compileQual(e.Q)
		return p.emit(inst{op: opFilter, l: l, r: q})
	}
	// Unknown Expr implementations cannot arise from this package's
	// constructors; compile them as the empty path.
	return p.emit(inst{op: opSelf})
}

func (p *Program) compileQual(q Qual) int32 {
	switch q := q.(type) {
	case QTrue:
		return p.emitQ(qinst{op: qTrue})
	case QPath:
		l := p.compileExpr(q.P)
		return p.emitQ(qinst{op: qPath, l: l})
	case QTextEq:
		l := p.compileExpr(q.P)
		return p.emitQ(qinst{op: qTextEq, l: l, val: q.Val})
	case QPos:
		return p.emitQ(qinst{op: qPos, k: int32(q.K)})
	case QNot:
		l := p.compileQual(q.Q)
		return p.emitQ(qinst{op: qNot, l: l})
	case QAnd:
		l := p.compileQual(q.L)
		r := p.compileQual(q.R)
		return p.emitQ(qinst{op: qAnd, l: l, r: r})
	case QOr:
		l := p.compileQual(q.L)
		r := p.compileQual(q.R)
		return p.emitQ(qinst{op: qOr, l: l, r: r})
	}
	return p.emitQ(qinst{op: qTrue})
}

func (p *Program) emit(in inst) int32 {
	p.ins = append(p.ins, in)
	return int32(len(p.ins) - 1)
}

func (p *Program) emitQ(q qinst) int32 {
	p.quals = append(p.quals, q)
	return int32(len(p.quals) - 1)
}

// Run evaluates the program at the context node, returning the
// selected nodes in the interpreter's first-reached order without
// duplicates. The returned slice is freshly allocated and owned by
// the caller; empty results are nil, matching Eval.
func (p *Program) Run(ctx *xmltree.Node) []*xmltree.Node {
	r := p.pool.Get().(*runner)
	r.p = p
	r.countUse()
	var one [1]*xmltree.Node
	one[0] = ctx
	res := r.eval(p.root, one[:])
	out := finish(res)
	r.putBuf(res)
	r.p = nil
	p.pool.Put(r)
	return out
}

// RunAll evaluates the program at each of the context nodes (which
// must belong to one document; see the type comment).
func (p *Program) RunAll(ctxs []*xmltree.Node) []*xmltree.Node {
	r := p.pool.Get().(*runner)
	r.p = p
	r.countUse()
	res := r.eval(p.root, ctxs)
	out := finish(res)
	r.putBuf(res)
	r.p = nil
	p.pool.Put(r)
	return out
}

// finish copies a borrowed scratch result into a caller-owned slice.
func finish(res []*xmltree.Node) []*xmltree.Node {
	if len(res) == 0 {
		return nil
	}
	out := make([]*xmltree.Node, len(res))
	copy(out, res)
	return out
}

// nodeSet is a visited set over one document's NodeID space:
// epoch-stamped so that reuse across evaluations is O(1) instead of a
// map allocation per dedupe.
type nodeSet struct {
	mark  []uint32
	epoch uint32
}

// add inserts the node and reports whether it was absent.
func (s *nodeSet) add(n *xmltree.Node) bool {
	id := int(n.ID)
	if id >= len(s.mark) {
		grown := make([]uint32, id+id/2+64)
		copy(grown, s.mark)
		s.mark = grown
	}
	if s.mark[id] == s.epoch {
		return false
	}
	s.mark[id] = s.epoch
	return true
}

// runner is the per-goroutine evaluation scratch of a Program: a free
// list of node slices and a stack of visited sets (several can be
// live at once — a Star's seen set across inner evaluations that
// dedupe on their own).
type runner struct {
	p    *Program
	free [][]*xmltree.Node
	sets []*nodeSet
	used bool // set on first use; later uses are pool recycles
}

// countUse records one evaluation, distinguishing a pooled runner
// (scratch recycled) from a fresh allocation.
func (r *runner) countUse() {
	mEvals.Inc()
	if r.used {
		mScratchRecycles.Inc()
	} else {
		r.used = true
	}
}

func (r *runner) getBuf() []*xmltree.Node {
	if n := len(r.free); n > 0 {
		b := r.free[n-1]
		r.free = r.free[:n-1]
		return b[:0]
	}
	return make([]*xmltree.Node, 0, 16)
}

func (r *runner) putBuf(b []*xmltree.Node) {
	if cap(b) == 0 {
		return
	}
	r.free = append(r.free, b[:0])
}

func (r *runner) acquireSet() *nodeSet {
	var s *nodeSet
	if n := len(r.sets); n > 0 {
		s = r.sets[n-1]
		r.sets = r.sets[:n-1]
	} else {
		s = &nodeSet{}
	}
	s.epoch++
	if s.epoch == 0 { // stamp wrap: reset lazily, once per 2^32 uses
		clear(s.mark)
		s.epoch = 1
	}
	return s
}

func (r *runner) releaseSet(s *nodeSet) { r.sets = append(r.sets, s) }

// dedupeInPlace removes duplicates from a borrowed buffer, keeping
// first occurrences in order. Small results use a quadratic scan
// (cheaper than set bookkeeping under ~8 nodes); larger ones a
// visited set.
func (r *runner) dedupeInPlace(nodes []*xmltree.Node) []*xmltree.Node {
	if len(nodes) <= 1 {
		return nodes
	}
	if len(nodes) <= smallDedupe {
		out := nodes[:0]
		for _, n := range nodes {
			dup := false
			for _, m := range out {
				if m == n {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, n)
			}
		}
		return out
	}
	s := r.acquireSet()
	out := nodes[:0]
	for _, n := range nodes {
		if s.add(n) {
			out = append(out, n)
		}
	}
	r.releaseSet(s)
	return out
}

// eval computes the set image of instruction idx over the context
// nodes into a borrowed buffer, deduplicated in first-reached order —
// the exact semantics of the interpreter's evaluator.eval, case by
// case.
func (r *runner) eval(idx int32, ctxs []*xmltree.Node) []*xmltree.Node {
	in := &r.p.ins[idx]
	switch in.op {
	case opSelf:
		out := r.getBuf()
		out = append(out, ctxs...)
		return r.dedupeInPlace(out)

	case opLabel:
		out := r.getBuf()
		for _, c := range ctxs {
			for _, ch := range c.Children {
				if ch.Label == in.name {
					out = append(out, ch)
				}
			}
		}
		if len(ctxs) > 1 { // children of distinct parents are distinct
			out = r.dedupeInPlace(out)
		}
		return out

	case opText:
		out := r.getBuf()
		for _, c := range ctxs {
			for _, ch := range c.Children {
				if ch.IsText() {
					out = append(out, ch)
				}
			}
		}
		if len(ctxs) > 1 {
			out = r.dedupeInPlace(out)
		}
		return out

	case opSeq:
		mid := r.eval(in.l, ctxs)
		out := r.eval(in.r, mid)
		r.putBuf(mid)
		return out

	case opDesc:
		mid := r.eval(in.l, ctxs)
		all := r.getBuf()
		for _, n := range mid {
			all = appendDescOrSelf(all, n)
		}
		r.putBuf(mid)
		all = r.dedupeInPlace(all)
		out := r.eval(in.r, all)
		r.putBuf(all)
		return out

	case opUnion:
		l := r.eval(in.l, ctxs)
		rr := r.eval(in.r, ctxs)
		l = append(l, rr...)
		r.putBuf(rr)
		return r.dedupeInPlace(l)

	case opStar:
		out := r.getBuf()
		s := r.acquireSet()
		for _, n := range ctxs {
			if s.add(n) {
				out = append(out, n)
			}
		}
		frontier := r.getBuf()
		frontier = append(frontier, out...)
		for len(frontier) > 0 {
			next := r.eval(in.l, frontier)
			frontier = frontier[:0]
			for _, n := range next {
				if s.add(n) {
					out = append(out, n)
					frontier = append(frontier, n)
				}
			}
			r.putBuf(next)
		}
		r.putBuf(frontier)
		r.releaseSet(s)
		return out

	case opFilter:
		out := r.getBuf()
		cbuf := r.getBuf()
		for _, c := range ctxs {
			cbuf = append(cbuf[:0], c)
			sel := r.eval(in.l, cbuf)
			for i, n := range sel {
				if r.holds(in.r, n, i+1) {
					out = append(out, n)
				}
			}
			r.putBuf(sel)
		}
		r.putBuf(cbuf)
		return r.dedupeInPlace(out)
	}
	return r.getBuf()
}

// holds evaluates compiled qualifier qidx at node n with position pos,
// mirroring evaluator.holds.
func (r *runner) holds(qidx int32, n *xmltree.Node, pos int) bool {
	q := &r.p.quals[qidx]
	switch q.op {
	case qTrue:
		return true
	case qPath:
		cbuf := r.getBuf()
		cbuf = append(cbuf, n)
		res := r.eval(q.l, cbuf)
		ok := len(res) > 0
		r.putBuf(res)
		r.putBuf(cbuf)
		return ok
	case qTextEq:
		cbuf := r.getBuf()
		cbuf = append(cbuf, n)
		res := r.eval(q.l, cbuf)
		ok := false
		for _, m := range res {
			if m.IsText() && m.Text == q.val {
				ok = true
				break
			}
		}
		r.putBuf(res)
		r.putBuf(cbuf)
		return ok
	case qPos:
		return pos == int(q.k)
	case qNot:
		return !r.holds(q.l, n, pos)
	case qAnd:
		return r.holds(q.l, n, pos) && r.holds(q.r, n, pos)
	case qOr:
		return r.holds(q.l, n, pos) || r.holds(q.r, n, pos)
	}
	return false
}

func appendDescOrSelf(out []*xmltree.Node, n *xmltree.Node) []*xmltree.Node {
	out = append(out, n)
	for _, c := range n.Children {
		out = appendDescOrSelf(out, c)
	}
	return out
}
