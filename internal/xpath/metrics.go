package xpath

import "repro/internal/obs"

// Process-registry instruments for the compiled evaluator. Compile is
// control-plane (once per query); Run/RunAll are the data-plane hot
// path, so each bumps exactly one counter per call, outside the
// instruction loop.
var (
	mCompiles = obs.Default().Counter("xse_xpath_compile_total",
		"Expressions compiled to evaluation programs.")
	mProgramLen = obs.Default().Histogram("xse_xpath_program_len",
		"Compiled program length (instructions plus qualifier instructions).",
		obs.SizeBuckets)
	mEvals = obs.Default().Counter("xse_xpath_eval_total",
		"Compiled program evaluations (Run and RunAll calls).")
	mScratchRecycles = obs.Default().Counter("xse_xpath_scratch_recycles_total",
		"Evaluations served by a pooled runner instead of a fresh allocation.")
)
