package xpath

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/xmltree"
)

// identical reports exact result equality: same nodes (by identity) in
// the same order. Compiled evaluation must reproduce the interpreter's
// first-reached order, not just its answer set.
func identical(a, b []*xmltree.Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCompiledMatchesInterpretedTable: the compiled program agrees
// with the interpreter on the hand-written evaluation table.
func TestCompiledMatchesInterpretedTable(t *testing.T) {
	tr := evalDoc(t)
	queries := []string{
		".", "a", "b/a", "a/text()", "b/a/text()", "a | b", "b | a",
		"a | a", "(a | b)/text()", "a[position() = 2]/text()",
		"a[text() = \"x\"]/text()", "a[text() = \"nope\"]", "b[a]",
		"b[not(a)]", "b[a and c]", "b[a and not(c)]", "b[zz or c]",
		"b[true()]", "zz", ".//a", "b//c", ".//text()", "(. | .)/a",
		"(a | b)*", "a*", "(a/b)*/a",
	}
	for _, src := range queries {
		t.Run(src, func(t *testing.T) {
			q := MustParse(src)
			want := EvalInterpreted(q, tr.Root)
			p := Compile(q)
			for i := 0; i < 3; i++ { // repeated runs reuse pooled scratch
				got := p.Run(tr.Root)
				if !identical(got, want) {
					t.Fatalf("run %d: Compile(%q).Run = [%s], want [%s]",
						i, src, labels(got), labels(want))
				}
			}
		})
	}
}

// TestCompiledMatchesInterpretedRandom: differential over random
// schema-aware queries and random instances, including RunAll over
// multi-node (and duplicate-bearing) context sets.
func TestCompiledMatchesInterpretedRandom(t *testing.T) {
	d := queryTestDTD()
	for seed := int64(0); seed < 300; seed++ {
		r := rand.New(rand.NewSource(seed))
		q := RandomQuery(r, d, GenOptions{})
		tr := xmltree.MustGenerate(d, r, xmltree.GenOptions{})
		want := EvalInterpreted(q, tr.Root)
		got := Compile(q).Run(tr.Root)
		if !identical(got, want) {
			t.Fatalf("seed %d: query %q: compiled [%s] != interpreted [%s]",
				seed, String(q), labels(got), labels(want))
		}
		// Multi-context differential: every class node, root twice.
		ctxs := EvalInterpreted(MustParse(".//class"), tr.Root)
		ctxs = append(ctxs, tr.Root, tr.Root)
		wantAll := EvalAllInterpreted(q, ctxs)
		gotAll := Compile(q).RunAll(ctxs)
		if !identical(gotAll, wantAll) {
			t.Fatalf("seed %d: query %q over %d contexts: compiled [%s] != interpreted [%s]",
				seed, String(q), len(ctxs), labels(gotAll), labels(wantAll))
		}
	}
}

// TestProgramConcurrent: one Program served from many goroutines
// returns the same answer everywhere (run with -race).
func TestProgramConcurrent(t *testing.T) {
	d := queryTestDTD()
	r := rand.New(rand.NewSource(11))
	tr := xmltree.MustGenerate(d, r, xmltree.GenOptions{StarMax: 5, DepthBudget: 10})
	p := Compile(MustParse(`class[cno]/(type/regular/prereq/class)*/title/text()`))
	want := p.Run(tr.Root)

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := p.Run(tr.Root); !identical(got, want) {
					errs <- fmt.Sprintf("concurrent run diverged: [%s] != [%s]", labels(got), labels(want))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestProgramRunAllocs: steady-state compiled evaluation allocates
// only the caller-owned result slice (scratch is pooled). The bound
// is deliberately loose (≤4) to stay robust across Go versions; the
// interpreter's map-per-dedupe profile is an order of magnitude above
// it.
func TestProgramRunAllocs(t *testing.T) {
	tr := evalDoc(t)
	p := Compile(MustParse(`(a | b)/text()`))
	p.Run(tr.Root) // warm the pool
	avg := testing.AllocsPerRun(200, func() {
		p.Run(tr.Root)
	})
	if avg > 4 {
		t.Errorf("compiled Run allocates %.1f allocs/op, want <= 4", avg)
	}
}

// TestDedupeSmallNoAlloc: duplicate-free small results pass through
// dedupe without allocating (the interpreter hot-spot fix).
func TestDedupeSmallNoAlloc(t *testing.T) {
	tr := evalDoc(t)
	nodes := EvalInterpreted(MustParse(".//a"), tr.Root)
	if len(nodes) < 2 || len(nodes) > smallDedupe {
		t.Fatalf("fixture wrong size: %d nodes", len(nodes))
	}
	avg := testing.AllocsPerRun(100, func() {
		dedupe(nodes)
	})
	if avg != 0 {
		t.Errorf("dedupe of a small duplicate-free set allocates %.1f allocs/op, want 0", avg)
	}
	// And it still actually deduplicates.
	dup := []*xmltree.Node{nodes[0], nodes[1], nodes[0], nodes[1], nodes[0]}
	got := dedupe(dup)
	if len(got) != 2 || got[0] != nodes[0] || got[1] != nodes[1] {
		t.Errorf("dedupe([n0 n1 n0 n1 n0]) = %d nodes", len(got))
	}
}

// TestUnionSingleCopyAllocs: the interpreter's Union no longer makes
// the double append-copy; one evaluation of a two-branch union on the
// small doc stays under a tight allocation budget.
func TestUnionSingleCopyAllocs(t *testing.T) {
	tr := evalDoc(t)
	q := MustParse("a | b")
	avg := testing.AllocsPerRun(200, func() {
		EvalInterpreted(q, tr.Root)
	})
	// Two child-collection slices + one union buffer; anything near
	// the old double-copy profile (5+) fails.
	if avg > 4 {
		t.Errorf("interpreted union allocates %.1f allocs/op, want <= 4", avg)
	}
}

// TestCompiledSetGrowth: evaluation across documents of very
// different sizes through one Program grows and reuses the NodeID
// visited sets correctly.
func TestCompiledSetGrowth(t *testing.T) {
	d := queryTestDTD()
	p := Compile(MustParse(`(class | class/type/regular/prereq/class)*`))
	for _, star := range []int{1, 40, 3} {
		r := rand.New(rand.NewSource(int64(star)))
		tr := xmltree.MustGenerate(d, r, xmltree.GenOptions{StarMax: star, DepthBudget: 14})
		want := EvalInterpreted(p.Source(), tr.Root)
		if got := p.Run(tr.Root); !identical(got, want) {
			t.Fatalf("StarMax=%d: compiled [%d nodes] != interpreted [%d nodes]",
				star, len(got), len(want))
		}
	}
}
