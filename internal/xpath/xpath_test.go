package xpath

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dtd"
	"repro/internal/xmltree"
)

func TestParseStringRoundTrip(t *testing.T) {
	cases := []string{
		".",
		"a",
		"a/b/c",
		"a | b",
		"(a | b)/c",
		"a*",
		"(a/b)*",
		"a/text()",
		"a[b/c]",
		"a[position() = 2]",
		"a[text() = \"CS331\"]",
		"a[b/text() = \"x\"]/c",
		"a[not(b) and (c or position() = 1)]",
		"courses/current/course[basic/cno/text() = \"CS331\"]/(category/mandatory/regular/required/prereq/course)*",
		"class[cno/text() = \"CS331\"]/(type/regular/prereq/class)*",
		"a[true()]",
		"a//b",
		"a//b/c | d",
		"(a/(b | c))*",
		// Literals containing the other quote kind: the grammar has no
		// escapes, so the printer must switch delimiters (fuzz
		// regression 73d91dd5e50593ac — strconv.Quote emitted a
		// backslash escape the parser rejects).
		`a[text() = '"']`,
		`a[text() = "it's"]`,
	}
	for _, src := range cases {
		t.Run(src, func(t *testing.T) {
			e, err := Parse(src)
			if err != nil {
				t.Fatalf("Parse(%q): %v", src, err)
			}
			printed := String(e)
			back, err := Parse(printed)
			if err != nil {
				t.Fatalf("Parse(String(e)) = Parse(%q): %v", printed, err)
			}
			if !reflect.DeepEqual(e, back) {
				t.Errorf("round trip mismatch:\n src %q\n out %q\n reparse %#v vs %#v", src, printed, e, back)
			}
		})
	}
}

func TestParseUnicodeSyntax(t *testing.T) {
	e, err := Parse("a ∪ b")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, ok := e.(Union); !ok {
		t.Errorf("∪ did not parse to Union: %#v", e)
	}
	if e2, err := Parse("ε/a"); err != nil {
		t.Errorf("ε parse: %v", err)
	} else if _, ok := e2.(Seq).L.(Empty); !ok {
		t.Errorf("ε did not parse to Empty: %#v", e2)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "a/", "a[", "a[b", "a[position()]", "a[position() = x]",
		"(a", "a]", "a[b = ]", "a[. = \"x\"]", "a[b = \"x\"]", "a b",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestTextEqRequiresTextTail(t *testing.T) {
	if _, err := Parse(`a[b/text() = "x"]`); err != nil {
		t.Errorf("valid comparison rejected: %v", err)
	}
	if _, err := Parse(`a[b = "x"]`); err == nil || !strings.Contains(err.Error(), "text()") {
		t.Errorf("comparison without text() tail: err = %v", err)
	}
}

// evalDoc builds the recurring test document.
//
//	<r> <a>x</a> <a>y</a> <b> <a>z</a> <c/> </b> </r>
func evalDoc(t *testing.T) *xmltree.Tree {
	t.Helper()
	tr, err := xmltree.ParseString(`<r><a>x</a><a>y</a><b><a>z</a><c/></b></r>`)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func labels(nodes []*xmltree.Node) string {
	var out []string
	for _, n := range nodes {
		if n.IsText() {
			out = append(out, "'"+n.Text+"'")
		} else {
			out = append(out, n.Label)
		}
	}
	return strings.Join(out, ",")
}

func TestEvalBasics(t *testing.T) {
	tr := evalDoc(t)
	cases := []struct {
		query string
		want  string
	}{
		{".", "r"},
		{"a", "a,a"},
		{"b/a", "a"},
		{"a/text()", "'x','y'"},
		{"b/a/text()", "'z'"},
		{"a | b", "a,a,b"},
		{"b | a", "b,a,a"},
		{"a | a", "a,a"},
		{"(a | b)/text()", "'x','y'"},
		{"a[position() = 2]/text()", "'y'"},
		{"a[text() = \"x\"]/text()", "'x'"},
		{"a[text() = \"nope\"]", ""},
		{"b[a]", "b"},
		{"b[not(a)]", ""},
		{"b[a and c]", "b"},
		{"b[a and not(c)]", ""},
		{"b[zz or c]", "b"},
		{"b[true()]", "b"},
		{"zz", ""},
		{".//a", "a,a,a"},
		{"b//c", "c"},
		{".//text()", "'x','y','z'"},
	}
	for _, tc := range cases {
		t.Run(tc.query, func(t *testing.T) {
			got := Eval(MustParse(tc.query), tr.Root)
			if labels(got) != tc.want {
				t.Errorf("Eval(%q) = [%s], want [%s]", tc.query, labels(got), tc.want)
			}
		})
	}
}

func TestEvalStarRecursive(t *testing.T) {
	// Chain: r/a/b/a/b/a, from the proof of Theorem 3.1.
	tr, err := xmltree.ParseString(`<r><a><b><a><b><a><c/></a></b></a></b></a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	got := Eval(MustParse("(a/b)*/a"), tr.Root)
	if len(got) != 3 {
		t.Errorf("(a/b)*/a selected %d nodes, want 3 a's", len(got))
	}
	// Star includes zero iterations: self.
	got = Eval(MustParse("a*"), tr.Root)
	if labels(got) != "r,a" {
		t.Errorf("a* = [%s], want [r,a]", labels(got))
	}
	got = Eval(MustParse("(a | b)*"), tr.Root)
	if len(got) != 6 { // r + 3 a's + 2 b's
		t.Errorf("(a|b)* selected %d nodes, want 6", len(got))
	}
}

func TestEvalDedupeOrder(t *testing.T) {
	tr := evalDoc(t)
	// (.|.)/a must not duplicate results.
	got := Eval(MustParse("(. | .)/a"), tr.Root)
	if labels(got) != "a,a" {
		t.Errorf("dedupe failed: [%s]", labels(got))
	}
}

func TestEvalAllAndHelpers(t *testing.T) {
	tr := evalDoc(t)
	as := Eval(MustParse("a"), tr.Root)
	texts := EvalAll(MustParse("text()"), as)
	if got := Strings(texts); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("Strings = %v", got)
	}
	if ids := IDs(as); len(ids) != 2 || ids[0] == ids[1] {
		t.Errorf("IDs = %v", ids)
	}
}

func TestSizeAndHasDesc(t *testing.T) {
	e := MustParse("a[b/text() = \"x\"]/c*")
	if Size(e) < 5 {
		t.Errorf("Size = %d, want >= 5", Size(e))
	}
	if HasDesc(e) {
		t.Error("HasDesc on pure X_R query")
	}
	if !HasDesc(MustParse("a//b")) {
		t.Error("HasDesc missed //")
	}
	if !HasDesc(MustParse("a[x//y]")) {
		t.Error("HasDesc missed // inside qualifier")
	}
}

func TestPathParseStringRoundTrip(t *testing.T) {
	cases := []string{
		"a",
		"a/b/c",
		"basic/class/semester[position() = 1]/title",
		"a[position() = 2]/b",
		"text()",
		"a/text()",
		"mandatory/regular",
	}
	for _, src := range cases {
		p, err := ParsePath(src)
		if err != nil {
			t.Fatalf("ParsePath(%q): %v", src, err)
		}
		back, err := ParsePath(p.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", p.String(), err)
		}
		if !p.Equal(back) {
			t.Errorf("path round trip: %q -> %q", src, back.String())
		}
	}
	// Shorthand [2] == [position() = 2].
	p := MustParsePath("a[2]/b")
	if p.Steps[0].Pos != 2 {
		t.Errorf("shorthand position = %d, want 2", p.Steps[0].Pos)
	}
}

func TestPathParseErrors(t *testing.T) {
	for _, src := range []string{"", "/", "a//b", "a[0]", "a[-1]", "a[b]", "text()/a", "1a", "a[1"} {
		if _, err := ParsePath(src); err == nil {
			t.Errorf("ParsePath(%q) succeeded, want error", src)
		}
	}
}

func TestPathPrefix(t *testing.T) {
	ab := MustParsePath("a/b")
	abc := MustParsePath("a/b/c")
	ab2 := MustParsePath("a/b[position() = 2]")
	if !ab.IsPrefixOf(abc) {
		t.Error("a/b should be a prefix of a/b/c")
	}
	if abc.IsPrefixOf(ab) {
		t.Error("a/b/c should not be a prefix of a/b")
	}
	if ab.IsPrefixOf(ab2) || ab2.IsPrefixOf(ab) {
		t.Error("different positions should not be prefixes (Fig. 3(c) disambiguation)")
	}
	if !ab.IsPrefixOf(ab) {
		t.Error("a path is a prefix of itself")
	}
	if !ProperPrefixConflict(ab, abc) {
		t.Error("conflict not detected")
	}
	if ProperPrefixConflict(ab2, abc) {
		t.Error("spurious conflict between a/b[2] and a/b/c")
	}
	abText := ab.WithText()
	if abText.IsPrefixOf(abc) {
		t.Error("path ending in text() is a prefix only of itself")
	}
	if !abText.IsPrefixOf(abText) {
		t.Error("text path self-prefix")
	}
}

func TestPathConcat(t *testing.T) {
	p, err := MustParsePath("a/b").Concat(MustParsePath("c/text()"))
	if err != nil {
		t.Fatalf("Concat: %v", err)
	}
	if p.String() != "a/b/c/text()" {
		t.Errorf("Concat = %q", p.String())
	}
	if _, err := p.Concat(MustParsePath("d")); err == nil {
		t.Error("Concat after text() should error")
	}
	if q := MustParsePath("a").MustConcat(MustParsePath("b")); q.String() != "a/b" {
		t.Errorf("MustConcat = %q", q.String())
	}
	defer func() {
		if recover() == nil {
			t.Error("MustConcat after text() should panic")
		}
	}()
	_ = p.MustConcat(MustParsePath("d"))
}

func TestEvalPathMatchesExpr(t *testing.T) {
	tr := evalDoc(t)
	for _, src := range []string{"a", "b/a", "a[position() = 2]", "a/text()", "b/c"} {
		p := MustParsePath(src)
		viaPath := p.EvalPath(tr.Root)
		viaExpr := Eval(p.Expr(), tr.Root)
		if labels(viaPath) != labels(viaExpr) {
			t.Errorf("path %q: EvalPath=[%s] Expr eval=[%s]", src, labels(viaPath), labels(viaExpr))
		}
	}
}

func queryTestDTD() *dtd.DTD {
	return dtd.MustNew("db",
		dtd.D("db", dtd.Star("class")),
		dtd.D("class", dtd.Concat("cno", "title", "type")),
		dtd.D("cno", dtd.Str()),
		dtd.D("title", dtd.Str()),
		dtd.D("type", dtd.Disj("regular", "project")),
		dtd.D("regular", dtd.Concat("prereq")),
		dtd.D("project", dtd.Str()),
		dtd.D("prereq", dtd.Star("class")),
	)
}

// TestRandomQueryProperty: generated queries print, reparse to the same
// AST, and evaluate without error on random instances.
func TestRandomQueryProperty(t *testing.T) {
	d := queryTestDTD()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := RandomQuery(r, d, GenOptions{})
		printed := String(q)
		back, err := Parse(printed)
		if err != nil {
			t.Logf("seed %d: reparse of %q failed: %v", seed, printed, err)
			return false
		}
		if !reflect.DeepEqual(q, back) {
			t.Logf("seed %d: AST round trip failed for %q", seed, printed)
			return false
		}
		tr := xmltree.MustGenerate(d, r, xmltree.GenOptions{})
		_ = Eval(q, tr.Root)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestRandomQueryTranslatable: under TranslatableOnly, position()
// qualifiers appear only directly on label steps.
func TestRandomQueryTranslatable(t *testing.T) {
	d := queryTestDTD()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		q := RandomQuery(r, d, GenOptions{TranslatableOnly: true})
		if bad := findBadPosition(q); bad != "" {
			t.Fatalf("query %q has position() on non-label %s", String(q), bad)
		}
	}
}

func findBadPosition(e Expr) string {
	switch e := e.(type) {
	case Seq:
		if s := findBadPosition(e.L); s != "" {
			return s
		}
		return findBadPosition(e.R)
	case Union:
		if s := findBadPosition(e.L); s != "" {
			return s
		}
		return findBadPosition(e.R)
	case Desc:
		if s := findBadPosition(e.L); s != "" {
			return s
		}
		return findBadPosition(e.R)
	case Star:
		return findBadPosition(e.P)
	case Filter:
		if _, isPos := e.Q.(QPos); isPos {
			if _, isLabel := e.P.(Label); !isLabel {
				return String(e)
			}
		}
		if s := findBadPosQual(e.Q); s != "" {
			return s
		}
		return findBadPosition(e.P)
	}
	return ""
}

func findBadPosQual(q Qual) string {
	switch q := q.(type) {
	case QPath:
		return findBadPosition(q.P)
	case QTextEq:
		return findBadPosition(q.P)
	case QPos:
		return "" // checked at the Filter level
	case QNot:
		return findBadPosQual(q.Q)
	case QAnd:
		if s := findBadPosQual(q.L); s != "" {
			return s
		}
		return findBadPosQual(q.R)
	case QOr:
		if s := findBadPosQual(q.L); s != "" {
			return s
		}
		return findBadPosQual(q.R)
	}
	return ""
}
