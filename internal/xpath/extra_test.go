package xpath

import (
	"testing"

	"repro/internal/xmltree"
)

// TestDescInQualifier: // inside a qualifier evaluates over all
// descendants.
func TestDescInQualifier(t *testing.T) {
	tr, _ := xmltree.ParseString(`<r><a><b><c/></b></a><a/></r>`)
	got := Eval(MustParse("a[.//c]"), tr.Root)
	if len(got) != 1 {
		t.Errorf("a[.//c] selected %d, want 1", len(got))
	}
}

// TestFilterOnStarResult: positions over a star's result list follow
// first-reached order.
func TestFilterOnStarResult(t *testing.T) {
	tr, _ := xmltree.ParseString(`<r><a><a/></a></r>`)
	got := Eval(MustParse("(a*)[position() = 2]"), tr.Root)
	// a* from r = {r, a, a/a}; position 2 is the outer a.
	if len(got) != 1 || got[0] != tr.Root.Children[0] {
		t.Errorf("(a*)[2] = %v", got)
	}
}

// TestSeqOfUnionOf covers the constructors.
func TestSeqOfUnionOf(t *testing.T) {
	if _, ok := SeqOf().(Empty); !ok {
		t.Error("SeqOf() should be ε")
	}
	e := SeqOf(Label{Name: "a"}, Label{Name: "b"}, Text{})
	if String(e) != "a/b/text()" {
		t.Errorf("SeqOf = %s", String(e))
	}
	u, err := UnionOf(Label{Name: "a"}, Label{Name: "b"})
	if err != nil {
		t.Fatalf("UnionOf: %v", err)
	}
	if String(u) != "a | b" {
		t.Errorf("UnionOf = %s", String(u))
	}
	if _, err := UnionOf(); err == nil {
		t.Error("UnionOf() should error")
	}
	if m := MustUnionOf(Label{Name: "a"}); String(m) != "a" {
		t.Errorf("MustUnionOf = %s", String(m))
	}
	defer func() {
		if recover() == nil {
			t.Error("MustUnionOf() should panic")
		}
	}()
	MustUnionOf()
}

// TestPathWithTextClone: WithText does not mutate the receiver.
func TestPathWithTextClone(t *testing.T) {
	p := NewPath("a", "b")
	q := p.WithText()
	if p.Text {
		t.Error("WithText mutated the receiver")
	}
	if !q.Text || q.Len() != 2 {
		t.Errorf("WithText result = %v", q)
	}
}

// TestDesugarNoop: expressions without // are returned unchanged.
func TestDesugarNoop(t *testing.T) {
	e := MustParse("a/b[c]")
	if got := DesugarDesc(e, []string{"a", "b", "c"}); String(got) != String(e) {
		t.Errorf("DesugarDesc changed a //-free query: %s", String(got))
	}
	if got := DesugarDesc(MustParse("a//b"), nil); String(got) != "a//b" {
		t.Error("empty alphabet should leave // untouched")
	}
}
