package xpath

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dtd"
	"repro/internal/xmltree"
)

func TestSimplifyRules(t *testing.T) {
	cases := []struct{ in, want string }{
		{"./a", "a"},
		{"a/.", "a"},
		{"a | a", "a"},
		{"a | b | a", "a | b"},
		{"(a*)*", "a*"},
		{". | a*", "a*"},
		{"a* | .", "a*"},
		{"a[true()]", "a"},
		{".*", "."},
		{"a[not(not(b))]", "a[b]"},
		{"a[b and true()]", "a[b]"},
		{"a[b or true()]", "a"},
		{". | a", ". | a"}, // not a star: must stay
		{"a | b", "a | b"},
	}
	for _, tc := range cases {
		got := String(Simplify(MustParse(tc.in)))
		if got != tc.want {
			t.Errorf("Simplify(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestSimplifyPreservesSemantics: random schema-aware queries evaluate
// identically before and after simplification.
func TestSimplifyPreservesSemantics(t *testing.T) {
	d := dtd.MustNew("db",
		dtd.D("db", dtd.Star("class")),
		dtd.D("class", dtd.Concat("cno", "title", "type")),
		dtd.D("cno", dtd.Str()),
		dtd.D("title", dtd.Str()),
		dtd.D("type", dtd.Disj("regular", "project")),
		dtd.D("regular", dtd.Concat("prereq")),
		dtd.D("project", dtd.Str()),
		dtd.D("prereq", dtd.Star("class")),
	)
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := RandomQuery(r, d, GenOptions{})
		s := Simplify(q)
		if Size(s) > Size(q) {
			t.Logf("seed %d: simplification grew %d -> %d", seed, Size(q), Size(s))
			return false
		}
		tr := xmltree.MustGenerate(d, r, xmltree.GenOptions{})
		a := ids(Eval(q, tr.Root))
		b := ids(Eval(s, tr.Root))
		if len(a) != len(b) {
			t.Logf("seed %d: %s vs %s: %d vs %d answers", seed, String(q), String(s), len(a), len(b))
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				t.Logf("seed %d: answers differ", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

func ids(nodes []*xmltree.Node) []int64 {
	out := make([]int64, len(nodes))
	for i, n := range nodes {
		out[i] = int64(n.ID)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
