package xpath

import (
	"repro/internal/xmltree"
)

// Eval evaluates the expression at the context node and returns the
// selected nodes in first-reached order without duplicates. Text nodes
// appear in the result when the expression contains text() steps; their
// string values are the observable values of the paper's semantics (use
// Strings to extract them).
func Eval(e Expr, ctx *xmltree.Node) []*xmltree.Node {
	ev := &evaluator{}
	return ev.eval(e, []*xmltree.Node{ctx})
}

// EvalAll evaluates the expression at each of the context nodes.
func EvalAll(e Expr, ctxs []*xmltree.Node) []*xmltree.Node {
	ev := &evaluator{}
	return ev.eval(e, ctxs)
}

// Strings returns the values of the text nodes in a result set, in
// order.
func Strings(nodes []*xmltree.Node) []string {
	var out []string
	for _, n := range nodes {
		if n.IsText() {
			out = append(out, n.Text)
		}
	}
	return out
}

// IDs returns the node ids of a result set, in order.
func IDs(nodes []*xmltree.Node) []xmltree.NodeID {
	out := make([]xmltree.NodeID, len(nodes))
	for i, n := range nodes {
		out[i] = n.ID
	}
	return out
}

type evaluator struct{}

// eval computes the set image of the expression over the node set,
// deduplicated in first-reached order.
func (ev *evaluator) eval(e Expr, ctxs []*xmltree.Node) []*xmltree.Node {
	switch e := e.(type) {
	case Empty:
		return dedupe(ctxs)
	case Label:
		var out []*xmltree.Node
		for _, c := range ctxs {
			for _, ch := range c.Children {
				if ch.Label == e.Name {
					out = append(out, ch)
				}
			}
		}
		return dedupe(out)
	case Text:
		var out []*xmltree.Node
		for _, c := range ctxs {
			for _, ch := range c.Children {
				if ch.IsText() {
					out = append(out, ch)
				}
			}
		}
		return dedupe(out)
	case Seq:
		return ev.eval(e.R, ev.eval(e.L, ctxs))
	case Desc:
		mid := ev.eval(e.L, ctxs)
		var all []*xmltree.Node
		for _, n := range mid {
			collectDescOrSelf(n, &all)
		}
		return ev.eval(e.R, dedupe(all))
	case Union:
		l := ev.eval(e.L, ctxs)
		r := ev.eval(e.R, ctxs)
		return dedupe(append(append([]*xmltree.Node{}, l...), r...))
	case Star:
		result := dedupe(ctxs)
		seen := make(map[*xmltree.Node]bool, len(result))
		for _, n := range result {
			seen[n] = true
		}
		frontier := append([]*xmltree.Node(nil), result...)
		for len(frontier) > 0 {
			next := ev.eval(e.P, frontier)
			frontier = nil
			for _, n := range next {
				if !seen[n] {
					seen[n] = true
					result = append(result, n)
					frontier = append(frontier, n)
				}
			}
		}
		return result
	case Filter:
		var out []*xmltree.Node
		for _, c := range ctxs {
			sel := ev.eval(e.P, []*xmltree.Node{c})
			for i, n := range sel {
				if ev.holds(e.Q, n, i+1) {
					out = append(out, n)
				}
			}
		}
		return dedupe(out)
	}
	return nil
}

// holds evaluates a qualifier at node n, where pos is n's 1-based
// position in the filtered selection (the position() value).
func (ev *evaluator) holds(q Qual, n *xmltree.Node, pos int) bool {
	switch q := q.(type) {
	case QTrue:
		return true
	case QPath:
		return len(ev.eval(q.P, []*xmltree.Node{n})) > 0
	case QTextEq:
		for _, m := range ev.eval(q.P, []*xmltree.Node{n}) {
			if m.IsText() && m.Text == q.Val {
				return true
			}
		}
		return false
	case QPos:
		return pos == q.K
	case QNot:
		return !ev.holds(q.Q, n, pos)
	case QAnd:
		return ev.holds(q.L, n, pos) && ev.holds(q.R, n, pos)
	case QOr:
		return ev.holds(q.L, n, pos) || ev.holds(q.R, n, pos)
	}
	return false
}

func collectDescOrSelf(n *xmltree.Node, out *[]*xmltree.Node) {
	*out = append(*out, n)
	for _, c := range n.Children {
		collectDescOrSelf(c, out)
	}
}

func dedupe(nodes []*xmltree.Node) []*xmltree.Node {
	if len(nodes) <= 1 {
		return nodes
	}
	seen := make(map[*xmltree.Node]bool, len(nodes))
	out := nodes[:0:0]
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
