package xpath

import (
	"repro/internal/xmltree"
)

// Eval evaluates the expression at the context node and returns the
// selected nodes in first-reached order without duplicates. Text nodes
// appear in the result when the expression contains text() steps; their
// string values are the observable values of the paper's semantics (use
// Strings to extract them).
//
// Eval compiles the expression and runs the compiled program, so
// one-shot callers share the pooled-scratch fast path; repeated
// evaluation of the same query should Compile once and Run many
// times to amortize the (small) compilation cost too.
func Eval(e Expr, ctx *xmltree.Node) []*xmltree.Node {
	return Compile(e).Run(ctx)
}

// EvalAll evaluates the expression at each of the context nodes. The
// nodes must belong to one document (see Program).
func EvalAll(e Expr, ctxs []*xmltree.Node) []*xmltree.Node {
	return Compile(e).RunAll(ctxs)
}

// EvalInterpreted evaluates the expression with the reference
// tree-walking interpreter, bypassing compilation. It exists as the
// independent oracle the compiled evaluator is differentially tested
// against (the conformance harness's compiled-differential property);
// production callers should use Eval or Compile.
func EvalInterpreted(e Expr, ctx *xmltree.Node) []*xmltree.Node {
	ev := &evaluator{}
	return ev.eval(e, []*xmltree.Node{ctx})
}

// EvalAllInterpreted is EvalInterpreted over several context nodes.
func EvalAllInterpreted(e Expr, ctxs []*xmltree.Node) []*xmltree.Node {
	ev := &evaluator{}
	return ev.eval(e, ctxs)
}

// Strings returns the values of the text nodes in a result set, in
// order.
func Strings(nodes []*xmltree.Node) []string {
	var out []string
	for _, n := range nodes {
		if n.IsText() {
			out = append(out, n.Text)
		}
	}
	return out
}

// IDs returns the node ids of a result set, in order.
func IDs(nodes []*xmltree.Node) []xmltree.NodeID {
	out := make([]xmltree.NodeID, len(nodes))
	for i, n := range nodes {
		out[i] = n.ID
	}
	return out
}

type evaluator struct{}

// eval computes the set image of the expression over the node set,
// deduplicated in first-reached order.
func (ev *evaluator) eval(e Expr, ctxs []*xmltree.Node) []*xmltree.Node {
	switch e := e.(type) {
	case Empty:
		return dedupe(ctxs)
	case Label:
		var out []*xmltree.Node
		for _, c := range ctxs {
			for _, ch := range c.Children {
				if ch.Label == e.Name {
					out = append(out, ch)
				}
			}
		}
		return dedupe(out)
	case Text:
		var out []*xmltree.Node
		for _, c := range ctxs {
			for _, ch := range c.Children {
				if ch.IsText() {
					out = append(out, ch)
				}
			}
		}
		return dedupe(out)
	case Seq:
		return ev.eval(e.R, ev.eval(e.L, ctxs))
	case Desc:
		mid := ev.eval(e.L, ctxs)
		var all []*xmltree.Node
		for _, n := range mid {
			collectDescOrSelf(n, &all)
		}
		return ev.eval(e.R, dedupe(all))
	case Union:
		l := ev.eval(e.L, ctxs)
		r := ev.eval(e.R, ctxs)
		out := make([]*xmltree.Node, 0, len(l)+len(r))
		out = append(out, l...)
		out = append(out, r...)
		return dedupe(out)
	case Star:
		result := dedupe(ctxs)
		seen := make(map[*xmltree.Node]bool, len(result))
		for _, n := range result {
			seen[n] = true
		}
		frontier := append([]*xmltree.Node(nil), result...)
		for len(frontier) > 0 {
			next := ev.eval(e.P, frontier)
			frontier = nil
			for _, n := range next {
				if !seen[n] {
					seen[n] = true
					result = append(result, n)
					frontier = append(frontier, n)
				}
			}
		}
		return result
	case Filter:
		var out []*xmltree.Node
		for _, c := range ctxs {
			sel := ev.eval(e.P, []*xmltree.Node{c})
			for i, n := range sel {
				if ev.holds(e.Q, n, i+1) {
					out = append(out, n)
				}
			}
		}
		return dedupe(out)
	}
	return nil
}

// holds evaluates a qualifier at node n, where pos is n's 1-based
// position in the filtered selection (the position() value).
func (ev *evaluator) holds(q Qual, n *xmltree.Node, pos int) bool {
	switch q := q.(type) {
	case QTrue:
		return true
	case QPath:
		return len(ev.eval(q.P, []*xmltree.Node{n})) > 0
	case QTextEq:
		for _, m := range ev.eval(q.P, []*xmltree.Node{n}) {
			if m.IsText() && m.Text == q.Val {
				return true
			}
		}
		return false
	case QPos:
		return pos == q.K
	case QNot:
		return !ev.holds(q.Q, n, pos)
	case QAnd:
		return ev.holds(q.L, n, pos) && ev.holds(q.R, n, pos)
	case QOr:
		return ev.holds(q.L, n, pos) || ev.holds(q.R, n, pos)
	}
	return false
}

func collectDescOrSelf(n *xmltree.Node, out *[]*xmltree.Node) {
	*out = append(*out, n)
	for _, c := range n.Children {
		collectDescOrSelf(c, out)
	}
}

// smallDedupe is the result-set size up to which deduplication scans
// linearly instead of building a set: below it the quadratic scan is
// both allocation-free and faster than map/bitset bookkeeping.
const smallDedupe = 8

func dedupe(nodes []*xmltree.Node) []*xmltree.Node {
	if len(nodes) <= 1 {
		return nodes
	}
	if len(nodes) <= smallDedupe {
		// Small sets: detect duplicates by scanning; the common
		// duplicate-free case returns the input without allocating.
		dup := -1
	scan:
		for i := 1; i < len(nodes); i++ {
			for j := 0; j < i; j++ {
				if nodes[i] == nodes[j] {
					dup = i
					break scan
				}
			}
		}
		if dup < 0 {
			return nodes
		}
		out := make([]*xmltree.Node, 0, len(nodes)-1)
		out = append(out, nodes[:dup]...)
		for _, n := range nodes[dup+1:] {
			seen := false
			for _, m := range out {
				if m == n {
					seen = true
					break
				}
			}
			if !seen {
				out = append(out, n)
			}
		}
		return out
	}
	seen := make(map[*xmltree.Node]bool, len(nodes))
	out := nodes[:0:0]
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
