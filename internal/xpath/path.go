package xpath

import (
	"fmt"
	"strings"

	"repro/internal/guard"
	"repro/internal/xmltree"
)

// Step is one step η = A[q] of an X_R path, where q is either true
// (Pos == 0) or position() = Pos.
type Step struct {
	// Label is the element tag of the step.
	Label string
	// Pos is the position() qualifier; 0 means no qualifier. Pos = k
	// selects the k-th child with this label among the context node's
	// children.
	Pos int
}

// Path is an X_R path ρ = η1/.../ηk (k >= 1), optionally ending with a
// text() step. X_R paths are the form schema embeddings map DTD edges
// to, and the form used by the generic inverse-construction algorithm.
type Path struct {
	Steps []Step
	// Text records a trailing /text() step (paths mapped from str edges
	// end with text()).
	Text bool
}

// NewPath builds a path from labels with no position qualifiers.
func NewPath(labels ...string) Path {
	steps := make([]Step, len(labels))
	for i, l := range labels {
		steps[i] = Step{Label: l}
	}
	return Path{Steps: steps}
}

// WithText returns a copy of the path with a trailing text() step.
func (p Path) WithText() Path {
	q := p.Clone()
	q.Text = true
	return q
}

// Clone returns a deep copy.
func (p Path) Clone() Path {
	return Path{Steps: append([]Step(nil), p.Steps...), Text: p.Text}
}

// Len returns the number of element steps (text() not counted).
func (p Path) Len() int { return len(p.Steps) }

// IsZero reports whether the path has no steps at all.
func (p Path) IsZero() bool { return len(p.Steps) == 0 && !p.Text }

// String renders the path, e.g. "basic/class/semester[position() = 1]/title".
func (p Path) String() string {
	var b strings.Builder
	for i, s := range p.Steps {
		if i > 0 {
			b.WriteByte('/')
		}
		b.WriteString(s.Label)
		if s.Pos > 0 {
			fmt.Fprintf(&b, "[position() = %d]", s.Pos)
		}
	}
	if p.Text {
		if len(p.Steps) > 0 {
			b.WriteByte('/')
		}
		b.WriteString("text()")
	}
	return b.String()
}

// Equal reports step-wise equality (labels, positions, text suffix).
func (p Path) Equal(o Path) bool {
	if p.Text != o.Text || len(p.Steps) != len(o.Steps) {
		return false
	}
	for i := range p.Steps {
		if p.Steps[i] != o.Steps[i] {
			return false
		}
	}
	return true
}

// IsPrefixOf reports whether p is a prefix of o in the paper's sense:
// o = p/η.../η. Steps compare by label and position; a path is a prefix
// of itself. A path ending in text() is a prefix only of itself.
func (p Path) IsPrefixOf(o Path) bool {
	if len(p.Steps) > len(o.Steps) {
		return false
	}
	for i := range p.Steps {
		if p.Steps[i] != o.Steps[i] {
			return false
		}
	}
	if p.Text {
		return o.Text && len(p.Steps) == len(o.Steps)
	}
	return true
}

// ProperPrefixConflict reports whether one of the two paths is a prefix
// of the other; the prefix-free condition of valid schema embeddings
// forbids this for sibling edges. Equal paths conflict as well.
func ProperPrefixConflict(a, b Path) bool {
	return a.IsPrefixOf(b) || b.IsPrefixOf(a)
}

// Expr converts the path to an X_R expression.
func (p Path) Expr() Expr {
	var e Expr = Empty{}
	first := true
	add := func(step Expr) {
		if first {
			e = step
			first = false
			return
		}
		e = Seq{L: e, R: step}
	}
	for _, s := range p.Steps {
		var step Expr = Label{Name: s.Label}
		if s.Pos > 0 {
			step = Filter{P: step, Q: QPos{K: s.Pos}}
		}
		add(step)
	}
	if p.Text {
		add(Text{})
	}
	return e
}

// Concat returns p/o. A path ending in text() selects text nodes and
// cannot be extended, so concatenating onto one is an error.
func (p Path) Concat(o Path) (Path, error) {
	if p.Text {
		return Path{}, fmt.Errorf("xpath: cannot extend %q: path ends in text()", p.String())
	}
	return Path{Steps: append(append([]Step(nil), p.Steps...), o.Steps...), Text: o.Text}, nil
}

// MustConcat is Concat panicking on error, for static path literals
// known not to end in text().
func (p Path) MustConcat(o Path) Path {
	q, err := p.Concat(o)
	if err != nil {
		panic(err)
	}
	return q
}

// EvalPath follows the path from ctx, returning the reached nodes in
// document order. Steps with Pos = k select the k-th same-label child;
// steps without a qualifier select all same-label children.
func (p Path) EvalPath(ctx *xmltree.Node) []*xmltree.Node {
	cur := []*xmltree.Node{ctx}
	for _, s := range p.Steps {
		var next []*xmltree.Node
		for _, n := range cur {
			seen := 0
			for _, c := range n.Children {
				if c.Label != s.Label {
					continue
				}
				seen++
				if s.Pos == 0 || s.Pos == seen {
					next = append(next, c)
				}
			}
		}
		cur = next
		if len(cur) == 0 {
			return nil
		}
	}
	if p.Text {
		var next []*xmltree.Node
		for _, n := range cur {
			for _, c := range n.Children {
				if c.IsText() {
					next = append(next, c)
				}
			}
		}
		cur = next
	}
	return cur
}

// ParsePath parses an X_R path from its textual form: steps separated
// by '/', each a label optionally followed by [position() = k] (or the
// shorthand [k]), optionally ending in text(). Input size is bounded
// by the default guard.Limits (parsing itself is iterative).
func ParsePath(src string) (Path, error) {
	if err := (guard.Limits{}).WithDefaults().CheckInputBytes(len(src), "xpath: parse path"); err != nil {
		return Path{}, err
	}
	var p Path
	parts := splitPathSteps(src)
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return Path{}, fmt.Errorf("xpath: empty step in path %q", src)
		}
		if part == "text()" {
			if i != len(parts)-1 {
				return Path{}, fmt.Errorf("xpath: text() must be the final step in %q", src)
			}
			p.Text = true
			break
		}
		step, err := parseStep(part)
		if err != nil {
			return Path{}, fmt.Errorf("xpath: path %q: %w", src, err)
		}
		p.Steps = append(p.Steps, step)
	}
	if p.IsZero() {
		return Path{}, fmt.Errorf("xpath: empty path %q", src)
	}
	return p, nil
}

// MustParsePath is ParsePath panicking on error.
func MustParsePath(src string) Path {
	p, err := ParsePath(src)
	if err != nil {
		panic(err)
	}
	return p
}

// splitPathSteps splits on '/' outside brackets.
func splitPathSteps(src string) []string {
	var parts []string
	depth := 0
	start := 0
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '[', '(':
			depth++
		case ']', ')':
			depth--
		case '/':
			if depth == 0 {
				parts = append(parts, src[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, src[start:])
	return parts
}

func parseStep(part string) (Step, error) {
	open := strings.IndexByte(part, '[')
	if open < 0 {
		if !validName(part) {
			return Step{}, fmt.Errorf("invalid step label %q", part)
		}
		return Step{Label: part}, nil
	}
	if !strings.HasSuffix(part, "]") {
		return Step{}, fmt.Errorf("unterminated qualifier in step %q", part)
	}
	label := strings.TrimSpace(part[:open])
	if !validName(label) {
		return Step{}, fmt.Errorf("invalid step label %q", label)
	}
	inner := strings.TrimSpace(part[open+1 : len(part)-1])
	inner = strings.TrimPrefix(inner, "position()")
	inner = strings.TrimSpace(inner)
	inner = strings.TrimPrefix(inner, "=")
	inner = strings.TrimSpace(inner)
	var k int
	if _, err := fmt.Sscanf(inner, "%d", &k); err != nil || k < 1 {
		return Step{}, fmt.Errorf("invalid position qualifier in step %q", part)
	}
	return Step{Label: label, Pos: k}, nil
}

func validName(s string) bool {
	if s == "" || !isNameStartByte(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isNameByte(s[i]) {
			return false
		}
	}
	return true
}
