package xpath

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/guard"
)

// Parse parses an X_R / X expression from the package's textual
// syntax, under the default guard.Limits: oversized input and deeply
// nested subexpressions ("(((((…", "!!!!!…") fail with a
// *guard.LimitError instead of exhausting the stack. Use ParseLimits
// to tighten or lift the bounds.
func Parse(src string) (Expr, error) {
	return ParseLimits(src, guard.Limits{})
}

// ParseLimits is Parse under explicit resource limits (zero fields
// select the defaults; guard.Unlimited() disables the checks).
func ParseLimits(src string, lim guard.Limits) (Expr, error) {
	lim = lim.WithDefaults()
	if err := lim.CheckInputBytes(len(src), "xpath: parse"); err != nil {
		return nil, err
	}
	p := &parser{src: src, lim: lim}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, p.errf("trailing input %q", p.rest())
	}
	return e, nil
}

// MustParse is Parse panicking on error, for static query literals.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src   string
	pos   int
	lim   guard.Limits
	depth int // recursion depth across expr/qual nesting
}

// enter bounds the recursion depth of the mutually recursive grammar
// functions; leave undoes it. Every nesting construct (parenthesized
// subexpression, qualifier, not/!) passes through one of the guarded
// entry points.
func (p *parser) enter() error {
	p.depth++
	return p.lim.CheckDepth(p.depth, "xpath: parse")
}

func (p *parser) leave() { p.depth-- }

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) rest() string {
	end := p.pos + 20
	if end > len(p.src) {
		end = len(p.src)
	}
	return p.src[p.pos:end]
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("xpath: at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) consume(tok string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

// consumeWord consumes tok only when not followed by a name character,
// so that "and" does not eat the prefix of a tag named "android".
func (p *parser) consumeWord(tok string) bool {
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], tok) {
		return false
	}
	next := p.pos + len(tok)
	if next < len(p.src) && isNameByte(p.src[next]) {
		return false
	}
	p.pos = next
	return true
}

func isNameByte(c byte) bool {
	return c == '_' || c == '.' || c == '-' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func (p *parser) peekByte() byte {
	p.skipSpace()
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

// expr := seq (('|' | '∪') seq)*
func (p *parser) expr() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	e, err := p.seq()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.consume("∪") || (p.peekByte() == '|' && !strings.HasPrefix(p.src[p.pos:], "||") && p.consume("|")) {
			r, err := p.seq()
			if err != nil {
				return nil, err
			}
			e = Union{L: e, R: r}
			continue
		}
		return e, nil
	}
}

// seq := step (('/' | '//') step)*
func (p *parser) seq() (Expr, error) {
	e, err := p.step()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		switch {
		case p.consume("//"):
			r, err := p.step()
			if err != nil {
				return nil, err
			}
			e = Desc{L: e, R: r}
		case p.peekByte() == '/' && p.consume("/"):
			r, err := p.step()
			if err != nil {
				return nil, err
			}
			e = Seq{L: e, R: r}
		default:
			return e, nil
		}
	}
}

// step := primary ('*' | '[' qual ']')*
func (p *parser) step() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		switch {
		case p.consume("*"):
			e = Star{P: e}
		case p.peekByte() == '[' && p.consume("["):
			q, err := p.qual()
			if err != nil {
				return nil, err
			}
			if !p.consume("]") {
				return nil, p.errf("expected ']' closing qualifier, found %q", p.rest())
			}
			e = Filter{P: e, Q: q}
		default:
			return e, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	p.skipSpace()
	switch {
	case p.consume("("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if !p.consume(")") {
			return nil, p.errf("expected ')', found %q", p.rest())
		}
		return e, nil
	case p.peekByte() == '.':
		p.consume(".")
		return Empty{}, nil
	case p.consume("ε"):
		return Empty{}, nil
	default:
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		if name == "text" && p.consume("()") {
			return Text{}, nil
		}
		return Label{Name: name}, nil
	}
}

func (p *parser) name() (string, error) {
	p.skipSpace()
	start := p.pos
	if p.eof() || !isNameStartByte(p.src[p.pos]) {
		return "", p.errf("expected a step, found %q", p.rest())
	}
	p.pos++
	for p.pos < len(p.src) && isNameByte(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos], nil
}

func isNameStartByte(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// qual := andq (('or' | '||') andq)*
func (p *parser) qual() (Qual, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	q, err := p.andQual()
	if err != nil {
		return nil, err
	}
	for p.consumeWord("or") || p.consume("||") {
		r, err := p.andQual()
		if err != nil {
			return nil, err
		}
		q = QOr{L: q, R: r}
	}
	return q, nil
}

func (p *parser) andQual() (Qual, error) {
	q, err := p.notQual()
	if err != nil {
		return nil, err
	}
	for p.consumeWord("and") || p.consume("&&") {
		r, err := p.notQual()
		if err != nil {
			return nil, err
		}
		q = QAnd{L: q, R: r}
	}
	return q, nil
}

func (p *parser) notQual() (Qual, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch {
	case p.consumeWord("not"):
		if !p.consume("(") {
			return nil, p.errf("expected '(' after not")
		}
		q, err := p.qual()
		if err != nil {
			return nil, err
		}
		if !p.consume(")") {
			return nil, p.errf("expected ')' closing not(...)")
		}
		return QNot{Q: q}, nil
	case p.consume("!"):
		q, err := p.notQual()
		if err != nil {
			return nil, err
		}
		return QNot{Q: q}, nil
	case p.consumeWord("true()"):
		return QTrue{}, nil
	case p.consumeWord("position()"):
		if !p.consume("=") {
			return nil, p.errf("expected '=' after position()")
		}
		k, err := p.integer()
		if err != nil {
			return nil, err
		}
		return QPos{K: k}, nil
	}
	// A parenthesized Boolean or a path atom. '(' is ambiguous between
	// "(q)" and a parenthesized path expression; try the qualifier
	// reading first and fall back.
	if p.peekByte() == '(' {
		save := p.pos
		p.consume("(")
		if q, err := p.qual(); err == nil && p.consume(")") {
			// Reject the Boolean reading when it is immediately used as
			// a path (e.g. "(a|b)/c" or "(a)*"): fall back to path atom.
			if c := p.peekByte(); c != '/' && c != '*' && c != '[' && c != '=' {
				return q, nil
			}
		}
		p.pos = save
	}
	return p.pathAtom()
}

// pathAtom := expr ('=' STRING)?
func (p *parser) pathAtom() (Qual, error) {
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.consume("=") {
		val, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		if !endsInText(e) {
			return nil, p.errf("comparison requires a path ending in text()")
		}
		return QTextEq{P: e, Val: val}, nil
	}
	return QPath{P: e}, nil
}

// endsInText reports whether every branch of the expression ends with a
// text() step, the well-formedness condition for p/text() = 'c'.
func endsInText(e Expr) bool {
	switch e := e.(type) {
	case Text:
		return true
	case Seq:
		return endsInText(e.R)
	case Desc:
		return endsInText(e.R)
	case Union:
		return endsInText(e.L) && endsInText(e.R)
	case Filter:
		return endsInText(e.P)
	}
	return false
}

func (p *parser) integer() (int, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if start == p.pos {
		return 0, p.errf("expected an integer, found %q", p.rest())
	}
	return strconv.Atoi(p.src[start:p.pos])
}

func (p *parser) stringLit() (string, error) {
	p.skipSpace()
	if p.eof() || (p.src[p.pos] != '\'' && p.src[p.pos] != '"') {
		return "", p.errf("expected a string literal, found %q", p.rest())
	}
	quote := p.src[p.pos]
	p.pos++
	start := p.pos
	i := strings.IndexByte(p.src[p.pos:], quote)
	if i < 0 {
		return "", p.errf("unterminated string literal")
	}
	p.pos += i + 1
	return p.src[start : p.pos-1], nil
}
