package xpath

// DesugarDesc rewrites the X fragment's descendant-or-self axis into
// pure X_R over a known label alphabet: p1//p2 becomes
// p1/(A1 ∪ ... ∪ An)*/p2 where the Ai are the element labels of the
// schema. The rewriting is exact on documents using only those labels,
// which conformance to the schema guarantees. Expressions without //
// are returned unchanged.
func DesugarDesc(e Expr, alphabet []string) Expr {
	if len(alphabet) == 0 || !HasDesc(e) {
		return e
	}
	steps := make([]Expr, len(alphabet))
	for i, a := range alphabet {
		steps[i] = Label{Name: a}
	}
	any, err := UnionOf(steps...)
	if err != nil {
		// Unreachable: alphabet is non-empty (checked above).
		return e
	}
	anyStar := Star{P: any}
	return desugar(e, anyStar)
}

func desugar(e Expr, anyStar Expr) Expr {
	switch e := e.(type) {
	case Desc:
		return Seq{L: desugar(e.L, anyStar), R: Seq{L: anyStar, R: desugar(e.R, anyStar)}}
	case Seq:
		return Seq{L: desugar(e.L, anyStar), R: desugar(e.R, anyStar)}
	case Union:
		return Union{L: desugar(e.L, anyStar), R: desugar(e.R, anyStar)}
	case Star:
		return Star{P: desugar(e.P, anyStar)}
	case Filter:
		return Filter{P: desugar(e.P, anyStar), Q: desugarQual(e.Q, anyStar)}
	default:
		return e
	}
}

func desugarQual(q Qual, anyStar Expr) Qual {
	switch q := q.(type) {
	case QPath:
		return QPath{P: desugar(q.P, anyStar)}
	case QTextEq:
		return QTextEq{P: desugar(q.P, anyStar), Val: q.Val}
	case QNot:
		return QNot{Q: desugarQual(q.Q, anyStar)}
	case QAnd:
		return QAnd{L: desugarQual(q.L, anyStar), R: desugarQual(q.R, anyStar)}
	case QOr:
		return QOr{L: desugarQual(q.L, anyStar), R: desugarQual(q.R, anyStar)}
	default:
		return q
	}
}
