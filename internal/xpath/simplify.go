package xpath

// Simplify rewrites an expression into a smaller equivalent one using
// semantics-preserving local rules. It exists mainly to tame the output
// of automaton-to-expression conversion (state elimination produces
// redundant ε steps, duplicate union branches and nested stars):
//
//	ε/p = p/ε = p            p ∪ p = p
//	(p*)* = p*               ε ∪ p* = p*  (star already accepts self)
//	p[true()] = p            (ε)* = ε
//
// Rules apply bottom-up to a fixpoint per node; the rewriting never
// changes Eval results (property-tested).
func Simplify(e Expr) Expr {
	switch e := e.(type) {
	case Seq:
		l, r := Simplify(e.L), Simplify(e.R)
		if isEmpty(l) {
			return r
		}
		if isEmpty(r) {
			return l
		}
		return Seq{L: l, R: r}
	case Desc:
		return Desc{L: Simplify(e.L), R: Simplify(e.R)}
	case Union:
		l, r := Simplify(e.L), Simplify(e.R)
		if exprEqual(l, r) {
			return l
		}
		// ε ∪ p* and p* ∪ ε collapse: a star result always contains the
		// context node.
		if isEmpty(l) {
			if _, ok := r.(Star); ok {
				return r
			}
		}
		if isEmpty(r) {
			if _, ok := l.(Star); ok {
				return l
			}
		}
		// Dedupe across nested unions: flatten, unique, rebuild.
		branches := dedupeBranches(append(flattenUnion(l), flattenUnion(r)...))
		if len(branches) == 1 {
			return branches[0]
		}
		u, err := UnionOf(branches...)
		if err != nil {
			// Unreachable: flattenUnion returns at least one branch.
			return Union{L: l, R: r}
		}
		return u
	case Star:
		p := Simplify(e.P)
		if isEmpty(p) {
			return Empty{}
		}
		if inner, ok := p.(Star); ok {
			return inner
		}
		return Star{P: p}
	case Filter:
		p := Simplify(e.P)
		q := simplifyQual(e.Q)
		if _, ok := q.(QTrue); ok {
			return p
		}
		return Filter{P: p, Q: q}
	default:
		return e
	}
}

func simplifyQual(q Qual) Qual {
	switch q := q.(type) {
	case QPath:
		return QPath{P: Simplify(q.P)}
	case QTextEq:
		return QTextEq{P: Simplify(q.P), Val: q.Val}
	case QNot:
		inner := simplifyQual(q.Q)
		if n, ok := inner.(QNot); ok {
			return n.Q
		}
		return QNot{Q: inner}
	case QAnd:
		l, r := simplifyQual(q.L), simplifyQual(q.R)
		if _, ok := l.(QTrue); ok {
			return r
		}
		if _, ok := r.(QTrue); ok {
			return l
		}
		return QAnd{L: l, R: r}
	case QOr:
		l, r := simplifyQual(q.L), simplifyQual(q.R)
		if _, ok := l.(QTrue); ok {
			return QTrue{}
		}
		if _, ok := r.(QTrue); ok {
			return QTrue{}
		}
		return QOr{L: l, R: r}
	default:
		return q
	}
}

func isEmpty(e Expr) bool {
	_, ok := e.(Empty)
	return ok
}

// exprEqual compares ASTs structurally (the node types are comparable
// value types, so rendering is a convenient canonical form).
func exprEqual(a, b Expr) bool {
	return String(a) == String(b)
}

func flattenUnion(e Expr) []Expr {
	if u, ok := e.(Union); ok {
		return append(flattenUnion(u.L), flattenUnion(u.R)...)
	}
	return []Expr{e}
}

func dedupeBranches(branches []Expr) []Expr {
	seen := map[string]bool{}
	out := branches[:0:0]
	for _, b := range branches {
		key := String(b)
		if !seen[key] {
			seen[key] = true
			out = append(out, b)
		}
	}
	return out
}
