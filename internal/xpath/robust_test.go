package xpath

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics feeds random byte soup and random mutations of
// valid queries to the parser: it must return an expression or an
// error, never panic, and successful parses must re-render and re-parse
// stably.
func TestParseNeverPanics(t *testing.T) {
	alphabet := []byte("abc/|()[]*. ='\"posItion text not and or 0123ε∪//")
	prop := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("seed %d: panic: %v", seed, r)
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[r.Intn(len(alphabet))]
		}
		e, err := Parse(string(buf))
		if err != nil {
			return true
		}
		// A successful parse must round-trip.
		printed := String(e)
		back, err := Parse(printed)
		if err != nil {
			t.Logf("seed %d: %q parsed but its rendering %q did not: %v", seed, string(buf), printed, err)
			return false
		}
		if String(back) != printed {
			t.Logf("seed %d: unstable rendering %q vs %q", seed, printed, String(back))
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestParsePathNeverPanics does the same for the X_R path parser.
func TestParsePathNeverPanics(t *testing.T) {
	alphabet := []byte("abz/[]()=position 0123 text#")
	prop := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("seed %d: panic: %v", seed, r)
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[r.Intn(len(alphabet))]
		}
		p, err := ParsePath(string(buf))
		if err != nil {
			return true
		}
		back, err := ParsePath(p.String())
		return err == nil && back.Equal(p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}
