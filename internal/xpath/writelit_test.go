package xpath

import "testing"

// TestWriteLitBothQuotes pins the display-only fallback for values no
// X_R literal can express (both quote kinds): an XPath-style concat().
func TestWriteLitBothQuotes(t *testing.T) {
	got := QualString(QTextEq{P: Text{}, Val: `a'b"c`})
	want := `text() = concat("a'b", '"', "c")`
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}
