package translate_test

import (
	"testing"

	"repro/internal/translate"
	"repro/internal/workload"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// TestTranslatorReuse: one Translator instance translates many queries
// (memo tables reset per call; results stay independent).
func TestTranslatorReuse(t *testing.T) {
	emb := workload.ClassEmbedding()
	tr, err := translate.New(emb)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString(`
<db><class><cno>CS1</cno><title>T</title><type><project>p</project></type></class></db>`)
	res, err := emb.Apply(doc)
	if err != nil {
		t.Fatal(err)
	}
	for i, qs := range []string{"class/cno/text()", "class/title/text()", "class/cno/text()"} {
		auto, err := tr.Translate(xpath.MustParse(qs))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		got := auto.Eval(res.Tree.Root)
		if len(got) != 1 {
			t.Errorf("call %d (%s): %d answers, want 1", i, qs, len(got))
		}
	}
}

// TestNestedStarTranslation: stars inside stars (prerequisites of
// prerequisites grouped oddly) still preserve answers.
func TestNestedStarTranslation(t *testing.T) {
	emb := workload.ClassEmbedding()
	tr, err := translate.New(emb)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString(`
<db>
  <class><cno>A</cno><title>t</title>
    <type><regular><prereq>
      <class><cno>B</cno><title>t</title>
        <type><regular><prereq>
          <class><cno>C</cno><title>t</title><type><project>p</project></type></class>
        </prereq></regular></type>
      </class>
    </prereq></regular></type>
  </class>
</db>`)
	for _, qs := range []string{
		"((class)*)*/cno/text()",
		"(class/(type/regular/prereq/class)*)*",
		"class/((type/regular/prereq/class)*/cno)",
		"(class | class/type/regular/prereq/class)/cno/text()",
	} {
		q := xpath.MustParse(qs)
		if msg := checkPreserved(tr, emb, q, doc); msg != "" {
			t.Errorf("%s: %s", qs, msg)
		}
	}
}

// TestQualifierWithStarTranslation: Kleene stars inside qualifiers.
func TestQualifierWithStarTranslation(t *testing.T) {
	emb := workload.ClassEmbedding()
	tr, err := translate.New(emb)
	if err != nil {
		t.Fatal(err)
	}
	doc := classDoc(t)
	for _, qs := range []string{
		`class[(type/regular/prereq/class)*/cno/text() = "CS120"]/cno/text()`,
		`class[not((type/regular/prereq/class)*/type/project)]`,
		`.[class]/class[type/project or type/regular]`,
	} {
		q := xpath.MustParse(qs)
		if msg := checkPreserved(tr, emb, q, doc); msg != "" {
			t.Errorf("%s: %s", qs, msg)
		}
	}
}

// TestUnionWithFailBranch: a union whose one branch is unsatisfiable
// behaves like the other branch.
func TestUnionWithFailBranch(t *testing.T) {
	emb := workload.StudentEmbedding()
	tr, err := translate.New(emb)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString(`<db><student><ssn>1</ssn><name>A</name><taking/></student></db>`)
	q := xpath.MustParse("student/name | student/nosuch")
	if msg := checkPreserved(tr, emb, q, doc); msg != "" {
		t.Error(msg)
	}
}

// TestEmptyQueryAtRoot: the self query maps the root to the root.
func TestEmptyQueryAtRoot(t *testing.T) {
	emb := workload.StudentEmbedding()
	tr, err := translate.New(emb)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString(`<db/>`)
	res, err := emb.Apply(doc)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := tr.Translate(xpath.Empty{})
	if err != nil {
		t.Fatal(err)
	}
	got := auto.Eval(res.Tree.Root)
	if len(got) != 1 || res.IDM[got[0].ID] != doc.Root.ID {
		t.Errorf("self query = %v", got)
	}
}

// TestTextBeyondLeaf: text() composed past a str leaf selects nothing,
// matching the source semantics.
func TestTextBeyondLeaf(t *testing.T) {
	emb := workload.StudentEmbedding()
	tr, err := translate.New(emb)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString(`<db><student><ssn>1</ssn><name>A</name><taking/></student></db>`)
	for _, qs := range []string{"student/ssn/text()/ssn", "student/text()"} {
		q := xpath.MustParse(qs)
		if msg := checkPreserved(tr, emb, q, doc); msg != "" {
			t.Errorf("%s: %s", qs, msg)
		}
	}
}

// TestAuctionTranslationProperty: query preservation on the second
// large worked embedding.
func TestAuctionTranslationProperty(t *testing.T) {
	emb := workload.AuctionEmbedding()
	tr, err := translate.New(emb)
	if err != nil {
		t.Fatal(err)
	}
	doc := generateAuctionDoc(t)
	for _, qs := range []string{
		".//itemname/text()",
		"people/person[profile/education]/personname/text()",
		"open_auctions/open_auction/bidder/bid[position() = 1]/increase/text()",
		"(regions/africa/item | regions/asia/item)/description/parlist/listitem/text()",
	} {
		q := xpath.MustParse(qs)
		if msg := checkPreserved(tr, emb, q, doc); msg != "" {
			t.Errorf("%s: %s", qs, msg)
		}
	}
}

func generateAuctionDoc(t *testing.T) *xmltree.Tree {
	t.Helper()
	doc, err := xmltree.ParseString(`
<site>
  <regions>
    <africa><item><itemname>mask</itemname><location>Accra</location><quantity>1</quantity>
      <description><parlist><listitem>carved</listitem></parlist></description></item></africa>
    <asia><item><itemname>vase</itemname><location>Kyoto</location><quantity>2</quantity>
      <description><text>ceramic</text></description></item></asia>
    <europe/>
  </regions>
  <categories/>
  <people><person><personname>Ada</personname><emailaddress>a@x</emailaddress>
    <profile><interest/><education>PhD</education><income>9</income></profile></person></people>
  <open_auctions><open_auction><initial>1</initial>
    <bidder><bid><date>d1</date><increase>2</increase></bid><bid><date>d2</date><increase>3</increase></bid></bidder>
    <current>6</current><itemref>mask</itemref></open_auction></open_auctions>
  <closed_auctions/>
</site>`)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}
