// Package translate implements the schema-directed translation Tr of
// §4.4: given a valid schema embedding σ : S1 → S2, it translates any
// X_R query Q over S1 into an ANFA over S2 such that for every source
// document T, Q(T) = idM(Tr(Q)(σd(T))) (Theorem 4.2). The translation
// is computed per (subquery, source element type) pair with
// memoization, giving the O(|Q|²·|σ|·|S1|²) bound of Theorem 4.3(b);
// the resulting automaton has size O(|Q|·|σ|·|S1|) and is evaluated
// directly, since expanding it to an X_R expression is
// EXPTIME-complete in general.
//
// Deviation from the paper's case (h): position() qualifiers are
// translated structurally and are supported only directly on label
// steps (B[position() = k]), the form used by X_R paths and by the
// generic inverse construction. The paper's statement of case (h)
// annotates the target state with position() = k verbatim, which is
// not sound when σ relocates siblings; the structural translation
// selects the k-th occurrence's path instead.
package translate

import (
	"context"
	"fmt"
	"time"

	"repro/internal/anfa"
	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/guard"
	"repro/internal/xpath"
)

// strType is the pseudo source type of text nodes, used as a final
// label when a subquery ends in text().
const strType = "#str"

// Options configures translation post-processing.
type Options struct {
	// NoOptimize disables the schema-aware ANFA optimizer
	// (anfa.Optimize under the embedding's target schema) that
	// otherwise runs on every translated automaton. The unoptimized
	// automaton is the differential baseline for the optimizer (oracle
	// property anfa-opt-differential, FuzzAnfaOptimize); it is also
	// the right choice when evaluating over documents that do not
	// conform to the target schema, which schema pruning assumes.
	NoOptimize bool
}

// Translator translates X_R queries across a fixed, validated
// embedding. It is not safe for concurrent use.
type Translator struct {
	emb     *embedding.Embedding
	opts    Options
	memo    map[memoKey]*anfa.Machine
	auto    *anfa.Automaton
	next    int
	lastOpt anfa.OptStats
	// ctx is the context of the translation in flight, observed at
	// every memoized subproblem; context.Background() outside
	// TranslateCtx.
	ctx context.Context
}

type memoKey struct {
	e xpath.Expr
	a string
}

// New validates the embedding and returns a Translator for it with
// default options (optimizer on).
func New(emb *embedding.Embedding) (*Translator, error) {
	return NewWithOptions(emb, Options{})
}

// NewWithOptions is New with explicit options.
func NewWithOptions(emb *embedding.Embedding, opts Options) (*Translator, error) {
	if err := emb.Validate(nil); err != nil {
		return nil, err
	}
	return &Translator{emb: emb, opts: opts}, nil
}

// Translate computes Tr(Q) = Trl(Q, r1) as an ANFA over the target
// schema. Descendant-or-self steps (the X fragment) are desugared over
// the source alphabet first. Queries whose translation can select
// nothing yield an automaton with no reachable final states.
func (t *Translator) Translate(q xpath.Expr) (*anfa.Automaton, error) {
	return t.TranslateCtx(context.Background(), q)
}

// TranslateCtx is Translate under a context: cancellation is observed
// at every (subquery, source type) subproblem and surfaces as a
// *guard.CancelError matching the context's error under errors.Is.
func (t *Translator) TranslateCtx(ctx context.Context, q xpath.Expr) (*anfa.Automaton, error) {
	start := time.Now()
	t.ctx = ctx
	defer func() { t.ctx = nil }()
	q = xpath.DesugarDesc(q, t.emb.Source.Types)
	// Fresh per-call tables: memoized machines reference qualifier
	// sub-machines registered in the automaton under construction.
	t.auto = anfa.NewAutomaton(anfa.NewMachine())
	t.memo = make(map[memoKey]*anfa.Machine)
	m, err := t.local(q, t.emb.Source.Root)
	if err != nil {
		return nil, err
	}
	top := copyMachine(m)
	t.auto.M = top
	t.auto.RemoveUseless()
	if t.opts.NoOptimize {
		states, size := t.auto.NumStates(), t.auto.Size()
		t.lastOpt = anfa.OptStats{
			StatesBefore: states, StatesAfter: states,
			SizeBefore: size, SizeAfter: size,
		}
	} else {
		// The optimizer runs once per translation; every evaluation of
		// the cached automaton (and its compiled program) profits.
		t.lastOpt = anfa.Optimize(t.auto, anfa.OptOptions{Schema: t.emb.Target})
	}
	mTranslates.Inc()
	mTranslateSeconds.ObserveSince(start)
	mANFASize.Observe(float64(t.auto.Size()))
	return t.auto, nil
}

// LastOptStats reports the optimizer statistics of the most recent
// (successful) translation: zero until one completes, before==after
// when the optimizer is disabled.
func (t *Translator) LastOptStats() anfa.OptStats { return t.lastOpt }

// TranslatePath is a convenience wrapper parsing and translating a
// textual query.
func (t *Translator) TranslatePath(src string) (*anfa.Automaton, error) {
	q, err := xpath.Parse(src)
	if err != nil {
		return nil, err
	}
	return t.Translate(q)
}

func copyMachine(src *anfa.Machine) *anfa.Machine {
	dst := anfa.NewMachine()
	remap := anfa.Embed(dst, src)
	dst.Start = remap[src.Start]
	for f := range src.Finals {
		dst.Finals[remap[f]] = true
	}
	for s, l := range src.Labels {
		dst.Labels[remap[s]] = l
	}
	return dst
}

func (t *Translator) freshName() string {
	t.next++
	return fmt.Sprintf("T%d", t.next)
}

// failMachine accepts nothing.
func failMachine() *anfa.Machine { return anfa.NewMachine() }

func hasFinals(m *anfa.Machine) bool { return len(m.Finals) > 0 }

// local computes Trl(e, a): a standalone machine whose finals carry
// source-type labels, memoized per (subquery, context type).
func (t *Translator) local(e xpath.Expr, a string) (*anfa.Machine, error) {
	if t.ctx != nil {
		if err := guard.CheckCtx(t.ctx, "translate"); err != nil {
			return nil, err
		}
	}
	key := memoKey{e: e, a: a}
	if m, ok := t.memo[key]; ok {
		return m, nil
	}
	m, err := t.compute(e, a)
	if err != nil {
		return nil, err
	}
	t.memo[key] = m
	return m, nil
}

func (t *Translator) compute(e xpath.Expr, a string) (*anfa.Machine, error) {
	switch e := e.(type) {
	case xpath.Empty:
		// Case (2a): the context node itself.
		m := anfa.NewMachine()
		m.Finals[m.Start] = true
		m.Labels[m.Start] = a
		return m, nil

	case xpath.Label:
		// Case (2b): the union of the paths mapped from the (A, B)
		// edges; Fail when B is not a child of A.
		return t.labelMachine(a, e.Name, 0)

	case xpath.Text:
		return t.textMachine(a)

	case xpath.Seq:
		if txt, ok := e.R.(xpath.Text); ok {
			_ = txt
			// p/text(): translate p, then append the str paths of the
			// final labels (case (2d), text variant).
			left, err := t.local(e.L, a)
			if err != nil {
				return nil, err
			}
			return t.appendPerLabel(left, func(b string) (*anfa.Machine, error) {
				return t.textMachine(b)
			})
		}
		left, err := t.local(e.L, a)
		if err != nil {
			return nil, err
		}
		return t.appendPerLabel(left, func(b string) (*anfa.Machine, error) {
			return t.local(e.R, b)
		})

	case xpath.Union:
		// Case (2c).
		l, err := t.local(e.L, a)
		if err != nil {
			return nil, err
		}
		r, err := t.local(e.R, a)
		if err != nil {
			return nil, err
		}
		m := anfa.NewMachine()
		rl := anfa.Embed(m, l)
		rr := anfa.Embed(m, r)
		m.AddTransition(m.Start, anfa.Epsilon, rl[l.Start])
		m.AddTransition(m.Start, anfa.Epsilon, rr[r.Start])
		for f := range l.Finals {
			m.Finals[rl[f]] = true
			m.Labels[rl[f]] = l.Labels[f]
		}
		for f := range r.Finals {
			m.Finals[rr[f]] = true
			m.Labels[rr[f]] = r.Labels[f]
		}
		return m, nil

	case xpath.Star:
		return t.starMachine(e, a)

	case xpath.Filter:
		return t.filterMachine(e, a)

	case xpath.Desc:
		return nil, fmt.Errorf("translate: internal: // must be desugared before translation")
	}
	return nil, fmt.Errorf("translate: unsupported expression %T", e)
}

// labelMachine codes the target paths of the source edges (a, b). If
// occ > 0 only that occurrence's path is coded (B[position() = occ]);
// occ == 0 takes the union over all occurrences.
func (t *Translator) labelMachine(a, b string, occ int) (*anfa.Machine, error) {
	if a == strType {
		return failMachine(), nil
	}
	prod, ok := t.emb.Source.Prods[a]
	if !ok {
		return failMachine(), nil
	}
	n := prod.Occurrences(b)
	if n == 0 {
		return failMachine(), nil
	}
	if prod.Kind == dtd.KindStar && occ > 0 {
		// B[position() = k] under a star parent: the iterator step is
		// pinned to the k-th child.
		return t.pathMachine(embedding.EdgeRef{Parent: a, Child: b, Occ: 1}, b, occ)
	}
	if occ > n {
		return failMachine(), nil
	}
	var occs []int
	if occ > 0 {
		occs = []int{occ}
	} else {
		for i := 1; i <= n; i++ {
			occs = append(occs, i)
		}
	}
	var machines []*anfa.Machine
	for _, o := range occs {
		pm, err := t.pathMachine(embedding.EdgeRef{Parent: a, Child: b, Occ: o}, b, 0)
		if err != nil {
			return nil, err
		}
		machines = append(machines, pm)
	}
	if len(machines) == 1 {
		return machines[0], nil
	}
	m := anfa.NewMachine()
	for _, sub := range machines {
		remap := anfa.Embed(m, sub)
		m.AddTransition(m.Start, anfa.Epsilon, remap[sub.Start])
		for f := range sub.Finals {
			m.Finals[remap[f]] = true
			m.Labels[remap[f]] = sub.Labels[f]
		}
	}
	return m, nil
}

// pathMachine codes one embedded path as a chain with position
// annotations where navigation is ambiguous. pinIterator > 0 pins the
// iterator step of a star path to that child position.
func (t *Translator) pathMachine(ref embedding.EdgeRef, label string, pinIterator int) (*anfa.Machine, error) {
	steps, err := t.emb.ResolvedSteps(ref)
	if err != nil {
		return nil, err
	}
	m := anfa.NewMachine()
	cur := m.Start
	for _, s := range steps {
		next := m.AddState()
		lbl := s.Label
		m.AddTransition(cur, lbl, next)
		switch {
		case s.Occ == 0 && pinIterator > 0:
			m.Annotate(next, anfa.QPos{K: pinIterator})
		case s.NeedsPos:
			m.Annotate(next, anfa.QPos{K: s.Occ})
		}
		cur = next
	}
	if ref.Child == embedding.StrChild {
		next := m.AddState()
		m.AddTransition(cur, anfa.TextLabel, next)
		cur = next
		label = strType
	}
	m.Finals[cur] = true
	m.Labels[cur] = label
	return m, nil
}

// textMachine codes the str edge of type b; Fail when b is not
// str-typed.
func (t *Translator) textMachine(b string) (*anfa.Machine, error) {
	if b == strType {
		return failMachine(), nil
	}
	prod, ok := t.emb.Source.Prods[b]
	if !ok || prod.Kind != dtd.KindStr {
		return failMachine(), nil
	}
	return t.pathMachine(embedding.EdgeRef{Parent: b, Child: embedding.StrChild, Occ: 1}, strType, 0)
}

// appendPerLabel concatenates a per-label continuation machine onto
// each final of left (case (2d)): finals labeled B connect by ε to the
// start of cont(B); finals whose continuation fails lose finality.
func (t *Translator) appendPerLabel(left *anfa.Machine, cont func(b string) (*anfa.Machine, error)) (*anfa.Machine, error) {
	m := anfa.NewMachine()
	rl := anfa.Embed(m, left)
	m.Start = rl[left.Start]
	// Group left finals by label.
	byLabel := map[string][]anfa.StateID{}
	for f := range left.Finals {
		b := left.Labels[f]
		byLabel[b] = append(byLabel[b], rl[f])
	}
	for b, finals := range byLabel {
		sub, err := cont(b)
		if err != nil {
			return nil, err
		}
		if !hasFinals(sub) {
			continue
		}
		rs := anfa.Embed(m, sub)
		for _, f := range finals {
			m.AddTransition(f, anfa.Epsilon, rs[sub.Start])
		}
		for f := range sub.Finals {
			m.Finals[rs[f]] = true
			m.Labels[rs[f]] = sub.Labels[f]
		}
	}
	return m, nil
}

// starMachine implements case (2k): iterate the translation of p over
// the source types reachable through it, connecting finals labeled B to
// the (single) embedded copy of Trl(p, B). Every state reached after
// zero or more iterations is final.
func (t *Translator) starMachine(e xpath.Star, a string) (*anfa.Machine, error) {
	m := anfa.NewMachine()
	m.Finals[m.Start] = true
	m.Labels[m.Start] = a

	entry := map[string]anfa.StateID{}
	type finalInfo struct {
		state anfa.StateID
		label string
	}
	var queue []finalInfo
	queue = append(queue, finalInfo{state: m.Start, label: a})
	connected := map[anfa.StateID]bool{}

	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		if connected[fi.state] {
			continue
		}
		connected[fi.state] = true
		b := fi.label
		start, ok := entry[b]
		if !ok {
			if b == strType {
				entry[b] = -1
				start = -1
			} else {
				sub, err := t.local(e.P, b)
				if err != nil {
					return nil, err
				}
				if !hasFinals(sub) {
					entry[b] = -1
					start = -1
				} else {
					rs := anfa.Embed(m, sub)
					start = rs[sub.Start]
					entry[b] = start
					for f := range sub.Finals {
						nf := rs[f]
						m.Finals[nf] = true
						m.Labels[nf] = sub.Labels[f]
						queue = append(queue, finalInfo{state: nf, label: sub.Labels[f]})
					}
				}
			}
		}
		if start >= 0 {
			m.AddTransition(fi.state, anfa.Epsilon, start)
		}
	}
	return m, nil
}

// filterMachine implements cases (2e)-(2j): translate p, then annotate
// a fresh acceptance state per final label with the locally translated
// qualifier. Position qualifiers are handled structurally on label
// steps (see the package comment).
func (t *Translator) filterMachine(e xpath.Filter, a string) (*anfa.Machine, error) {
	if pos, ok := e.Q.(xpath.QPos); ok {
		lbl, isLabel := e.P.(xpath.Label)
		if !isLabel {
			return nil, fmt.Errorf("translate: position() qualifier on non-label step %q is not supported", xpath.String(e.P))
		}
		return t.labelMachine(a, lbl.Name, pos.K)
	}
	left, err := t.local(e.P, a)
	if err != nil {
		return nil, err
	}
	m := anfa.NewMachine()
	rl := anfa.Embed(m, left)
	m.Start = rl[left.Start]
	byLabel := map[string][]anfa.StateID{}
	for f := range left.Finals {
		byLabel[left.Labels[f]] = append(byLabel[left.Labels[f]], rl[f])
	}
	for b, finals := range byLabel {
		q, has, err := t.localQual(e.Q, b)
		if err != nil {
			return nil, err
		}
		nf := m.AddState()
		for _, f := range finals {
			m.AddTransition(f, anfa.Epsilon, nf)
		}
		if has {
			m.Annotate(nf, q)
		}
		m.Finals[nf] = true
		m.Labels[nf] = b
	}
	return m, nil
}

// localQual translates a qualifier at context type b into an
// annotation (cases (2f)-(2j)); has is false for true().
func (t *Translator) localQual(q xpath.Qual, b string) (anfa.Qual, bool, error) {
	switch q := q.(type) {
	case xpath.QTrue:
		return nil, false, nil
	case xpath.QPath:
		x, err := t.registerSub(q.P, b)
		if err != nil {
			return nil, false, err
		}
		return anfa.QName{X: x}, true, nil
	case xpath.QTextEq:
		x, err := t.registerSub(q.P, b)
		if err != nil {
			return nil, false, err
		}
		return anfa.QTextEq{X: x, Val: q.Val}, true, nil
	case xpath.QPos:
		return nil, false, fmt.Errorf("translate: bare position() inside a Boolean qualifier is not supported")
	case xpath.QNot:
		inner, has, err := t.localQual(q.Q, b)
		if err != nil {
			return nil, false, err
		}
		if !has {
			// not(true()): annotate with an always-false test.
			x := t.freshName()
			t.auto.Names[x] = failMachine()
			return anfa.QName{X: x}, true, nil
		}
		return anfa.QNot{Q: inner}, true, nil
	case xpath.QAnd:
		l, hasL, err := t.localQual(q.L, b)
		if err != nil {
			return nil, false, err
		}
		r, hasR, err := t.localQual(q.R, b)
		if err != nil {
			return nil, false, err
		}
		switch {
		case !hasL:
			return r, hasR, nil
		case !hasR:
			return l, true, nil
		default:
			return anfa.QAnd{L: l, R: r}, true, nil
		}
	case xpath.QOr:
		l, hasL, err := t.localQual(q.L, b)
		if err != nil {
			return nil, false, err
		}
		r, hasR, err := t.localQual(q.R, b)
		if err != nil {
			return nil, false, err
		}
		if !hasL || !hasR {
			return nil, false, nil
		}
		return anfa.QOr{L: l, R: r}, true, nil
	}
	return nil, false, fmt.Errorf("translate: unsupported qualifier %T", q)
}

// registerSub translates p at type b into a named sub-machine of the
// automaton under construction.
func (t *Translator) registerSub(p xpath.Expr, b string) (string, error) {
	sub, err := t.local(p, b)
	if err != nil {
		return "", err
	}
	x := t.freshName()
	t.auto.Names[x] = copyMachine(sub)
	return x, nil
}
