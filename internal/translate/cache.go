package translate

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/anfa"
	"repro/internal/embedding"
	"repro/internal/guard"
	"repro/internal/xpath"
)

// DefaultCacheSize is the capacity used by callers that do not have a
// better estimate of their working set. Query workloads are heavily
// skewed (a handful of application queries over one embedding), so a
// small cache captures nearly all repeats.
const DefaultCacheSize = 128

// cacheKey identifies one translation: the embedding by the content
// fingerprint of its (source DTD, target DTD, σ) triple and the query
// by its canonical X_R syntax. Content keying (rather than the pointer
// identity used before the daemon existed) means structurally
// identical embeddings share entries across requests in a long-lived
// process, and a cached entry never pins an Embedding alive.
type cacheKey struct {
	fp   string
	q    string
	opts Options
}

// cacheEntry is a single-flight slot. The leader that created the
// entry closes ready after publishing auto/err; waiters block on ready
// (or their own context) instead of duplicating the translation.
// Entries whose computation failed are withdrawn from the cache before
// ready closes, so a linked entry always carries a usable automaton.
type cacheEntry struct {
	key   cacheKey
	ready chan struct{}
	auto  *anfa.Automaton
	err   error
}

// CacheStats is a snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits    uint64 // Get calls answered from a completed or in-flight entry
	Misses  uint64 // Get calls that ran the translation
	Waits   uint64 // hits that blocked on an in-flight translation
	Entries int    // resident translations (completed or in-flight)
}

// Cache is a concurrent LRU memo for query translation: it maps
// (embedding, source query) to the translated ANFA, with per-key
// single-flight so concurrent batch workers asking for the same
// translation run it once. Cached automata are shared — anfa
// evaluation is safe for concurrent use on a shared Automaton.
//
// The zero value is not usable; construct with NewCache.
type Cache struct {
	capacity int

	mu  sync.Mutex
	lru *list.List // front = most recently used; values are *cacheEntry
	idx map[cacheKey]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
	waits  atomic.Uint64
}

// NewCache returns a cache holding at most capacity translations
// (DefaultCacheSize when capacity <= 0), evicting least-recently-used
// entries beyond that.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		idx:      make(map[cacheKey]*list.Element, capacity),
	}
}

// Get returns Tr(q) for the embedding, translating on a miss and
// memoizing the result. Concurrent callers with the same key share one
// translation (single-flight). Cancellation of ctx surfaces as a
// *guard.CancelError; canceled or failed translations are never
// cached, so transient errors do not poison the key.
func (c *Cache) Get(ctx context.Context, emb *embedding.Embedding, q xpath.Expr) (*anfa.Automaton, error) {
	return c.GetOpt(ctx, emb, q, Options{})
}

// GetOpt is Get under explicit translation options, which are part of
// the cache key: the optimized and unoptimized (differential
// baseline) translations of one query are distinct artifacts.
func (c *Cache) GetOpt(ctx context.Context, emb *embedding.Embedding, q xpath.Expr, opts Options) (*anfa.Automaton, error) {
	key := cacheKey{fp: emb.Fingerprint(), q: xpath.String(q), opts: opts}
	for {
		c.mu.Lock()
		if el, ok := c.idx[key]; ok {
			c.lru.MoveToFront(el)
			ent := el.Value.(*cacheEntry)
			c.mu.Unlock()
			select {
			case <-ent.ready:
			default:
				// The entry is still in flight: this is a single-flight
				// join, not a plain hit.
				c.waits.Add(1)
				mCacheWaits.Inc()
				select {
				case <-ent.ready:
				case <-ctx.Done():
					return nil, guard.CheckCtx(ctx, "translate: cache")
				}
			}
			if ent.err != nil {
				// The leader failed and withdrew the entry; retry —
				// either this caller becomes the leader and observes
				// the error itself, or a later leader succeeded.
				continue
			}
			c.hits.Add(1)
			mCacheHits.Inc()
			return ent.auto, nil
		}
		ent := &cacheEntry{key: key, ready: make(chan struct{})}
		el := c.lru.PushFront(ent)
		c.idx[key] = el
		if c.lru.Len() > c.capacity {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.idx, oldest.Value.(*cacheEntry).key)
		}
		c.mu.Unlock()
		c.misses.Add(1)
		mCacheMisses.Inc()

		auto, err := c.translate(ctx, emb, q, opts)
		ent.auto, ent.err = auto, err
		if err != nil {
			c.mu.Lock()
			// Withdraw before waking waiters; guard against the entry
			// having been evicted (and possibly replaced) meanwhile.
			if cur, ok := c.idx[key]; ok && cur == el {
				c.lru.Remove(el)
				delete(c.idx, key)
			}
			c.mu.Unlock()
		}
		close(ent.ready)
		return auto, err
	}
}

// translate runs one uncached translation. Each run builds a fresh
// Translator: a Translator is single-use-at-a-time, and two distinct
// keys of the same embedding may translate concurrently.
func (c *Cache) translate(ctx context.Context, emb *embedding.Embedding, q xpath.Expr, opts Options) (*anfa.Automaton, error) {
	t, err := NewWithOptions(emb, opts)
	if err != nil {
		return nil, err
	}
	return t.TranslateCtx(ctx, q)
}

// Stats returns a point-in-time snapshot of the counters. Hits count
// calls served from the cache (including joins on an in-flight
// translation); misses count calls that ran the translation.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	n := c.lru.Len()
	c.mu.Unlock()
	return CacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Waits:   c.waits.Load(),
		Entries: n,
	}
}
