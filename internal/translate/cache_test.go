package translate_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/guard"
	"repro/internal/translate"
	"repro/internal/workload"
	"repro/internal/xpath"
)

// TestCacheHitMiss: a repeated query is translated once; the second
// call is a hit and returns the same automaton pointer.
func TestCacheHitMiss(t *testing.T) {
	emb := workload.ClassEmbedding()
	c := translate.NewCache(8)
	q := xpath.MustParse(`class/cno/text()`)

	a1, err := c.Get(context.Background(), emb, q)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.Get(context.Background(), emb, q)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("cache returned distinct automata for the same key")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}

	// A syntactically identical but distinct Expr value keys the same.
	a3, err := c.Get(context.Background(), emb, xpath.MustParse(`class/cno/text()`))
	if err != nil {
		t.Fatal(err)
	}
	if a3 != a1 {
		t.Error("re-parsed identical query missed the cache")
	}
}

// TestCacheDistinctEmbeddings: the same query under two structurally
// different embeddings occupies two entries.
func TestCacheDistinctEmbeddings(t *testing.T) {
	c := translate.NewCache(8)
	e1 := workload.ClassEmbedding()
	e2 := workload.StudentEmbedding()

	a1, err := c.Get(context.Background(), e1, xpath.MustParse(`class/cno/text()`))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.Get(context.Background(), e2, xpath.MustParse(`student/sno/text()`))
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Error("distinct embeddings shared one cache entry")
	}
	if st := c.Stats(); st.Misses != 2 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 2 misses, 2 entries", st)
	}
}

// TestCacheSharedAcrossIdenticalEmbeddings is the regression test for
// the cache key: entries are keyed by the content fingerprint of the
// (source DTD, target DTD, σ) triple, not by *Embedding pointer
// identity. Two independently constructed (or independently
// unmarshaled) embeddings of the same triple must share entries — the
// daemon serves every request from a fresh unmarshal, and pointer
// keying would make its cache hit rate exactly zero while pinning dead
// embeddings in memory.
func TestCacheSharedAcrossIdenticalEmbeddings(t *testing.T) {
	c := translate.NewCache(8)
	q := xpath.MustParse(`class/cno/text()`)
	e1 := workload.ClassEmbedding()
	e2 := workload.ClassEmbedding()
	if e1 == e2 {
		t.Fatal("want two distinct pointers")
	}
	if e1.Fingerprint() != e2.Fingerprint() {
		t.Fatal("identical embeddings disagree on Fingerprint")
	}

	a1, err := c.Get(context.Background(), e1, q)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.Get(context.Background(), e2, q)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("identical embeddings under distinct pointers missed the cache")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}

	// A structural mutation changes the fingerprint, so a re-derived
	// embedding with a different λ must not collide.
	e3 := workload.ClassEmbedding()
	e3.MapType("title", "semester")
	if e3.Fingerprint() == e1.Fingerprint() {
		t.Error("mutated embedding kept the old fingerprint")
	}
}

// TestCacheEviction: capacity bounds residency LRU-wise.
func TestCacheEviction(t *testing.T) {
	emb := workload.ClassEmbedding()
	c := translate.NewCache(2)
	ctx := context.Background()
	queries := []string{`class`, `class/cno`, `class/title`}
	for _, s := range queries {
		if _, err := c.Get(ctx, emb, xpath.MustParse(s)); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 after eviction", st.Entries)
	}
	// `class` was evicted (least recently used) — refetching is a miss.
	before := c.Stats().Misses
	if _, err := c.Get(ctx, emb, xpath.MustParse(`class`)); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Misses; got != before+1 {
		t.Errorf("misses = %d, want %d (evicted key must re-translate)", got, before+1)
	}
	// `class/title` stayed resident — refetching is a hit.
	beforeHits := c.Stats().Hits
	if _, err := c.Get(ctx, emb, xpath.MustParse(`class/title`)); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Hits; got != beforeHits+1 {
		t.Errorf("hits = %d, want %d (resident key must hit)", got, beforeHits+1)
	}
}

// TestCacheConcurrent: many goroutines over a small query set; run
// under -race this exercises the single-flight paths. Every returned
// automaton must evaluate correctly.
func TestCacheConcurrent(t *testing.T) {
	emb := workload.ClassEmbedding()
	c := translate.NewCache(16)
	src := classDoc(t)
	res, err := emb.Apply(src)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`class/cno/text()`,
		`class/title/text()`,
		`class[cno/text() = "CS331"]`,
		`(class/type/regular/prereq/class)*/cno`,
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				qs := queries[(g+i)%len(queries)]
				auto, err := c.Get(context.Background(), emb, xpath.MustParse(qs))
				if err != nil {
					errs <- fmt.Errorf("%s: %w", qs, err)
					return
				}
				if auto.Eval(res.Tree.Root) == nil && qs == `class/cno/text()` {
					errs <- fmt.Errorf("%s: cached automaton selected nothing", qs)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := c.Stats()
	if st.Misses > uint64(len(queries)) {
		t.Errorf("misses = %d, want <= %d (single-flight must collapse duplicates)", st.Misses, len(queries))
	}
	if st.Hits+st.Misses != 16*20 {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, 16*20)
	}
}

// TestCacheErrorNotCached: a failing translation is not memoized and
// does not occupy an entry.
func TestCacheErrorNotCached(t *testing.T) {
	emb := workload.ClassEmbedding()
	c := translate.NewCache(8)
	// position() on a non-label step is rejected by the translator.
	q := xpath.MustParse(`(class | class/type)[position() = 1]`)
	for i := 0; i < 2; i++ {
		if _, err := c.Get(context.Background(), emb, q); err == nil {
			t.Fatal("expected a translation error")
		}
	}
	st := c.Stats()
	if st.Entries != 0 {
		t.Errorf("entries = %d, want 0 (errors must not be cached)", st.Entries)
	}
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (each failing call re-translates)", st.Misses)
	}
}

// TestCacheCanceled: a canceled context surfaces as *guard.CancelError
// and leaves no poisoned entry behind.
func TestCacheCanceled(t *testing.T) {
	emb := workload.ClassEmbedding()
	c := translate.NewCache(8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Get(ctx, emb, xpath.MustParse(`class/cno`))
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	var ce *guard.CancelError
	if !errors.As(err, &ce) || !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want *guard.CancelError wrapping context.Canceled", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("entries = %d, want 0 after canceled translation", st.Entries)
	}
	// The key is usable afterwards.
	if _, err := c.Get(context.Background(), emb, xpath.MustParse(`class/cno`)); err != nil {
		t.Fatal(err)
	}
}
