package translate

import "repro/internal/obs"

// Package-level instruments on the process registry: translation is a
// library service used by every CLI, so its counters live in
// obs.Default() and show up in any -v summary, /metrics scrape or
// -trace-out dump without per-call wiring.
var (
	mTranslates = obs.Default().Counter("xse_translate_total",
		"Completed query translations (cache misses that ran Tr).")
	mTranslateSeconds = obs.Default().Histogram("xse_translate_seconds",
		"Latency of one uncached query translation.", obs.LatencyBuckets)
	mANFASize = obs.Default().Histogram("xse_translate_anfa_size",
		"Size (states+transitions) of translated automata after useless-state removal.",
		obs.SizeBuckets)
	mCacheHits = obs.Default().Counter("xse_translate_cache_hits_total",
		"Translation cache lookups served from a completed or in-flight entry.")
	mCacheMisses = obs.Default().Counter("xse_translate_cache_misses_total",
		"Translation cache lookups that ran the translation.")
	mCacheWaits = obs.Default().Counter("xse_translate_cache_waits_total",
		"Cache hits that blocked on another caller's in-flight translation (single-flight joins).")
)
