package translate_test

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/anfa"
	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/translate"
	"repro/internal/workload"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// checkPreserved verifies the query-preservation equation
// Q(T) = idM(Tr(Q)(σd(T))) for one query and document; it returns a
// description of the discrepancy, or "".
func checkPreserved(tr *translate.Translator, emb *embedding.Embedding, q xpath.Expr, src *xmltree.Tree) string {
	res, err := emb.Apply(src)
	if err != nil {
		return "apply: " + err.Error()
	}
	auto, err := tr.Translate(q)
	if err != nil {
		return "translate: " + err.Error()
	}
	want := xpath.Eval(q, src.Root)
	got := auto.Eval(res.Tree.Root)

	wantIDs := make([]int64, 0, len(want))
	for _, n := range want {
		wantIDs = append(wantIDs, int64(n.ID))
	}
	gotIDs := make([]int64, 0, len(got))
	for _, n := range got {
		srcID, ok := res.IDM[n.ID]
		if !ok {
			return "translated query selected a node outside idM's domain: " + n.Label
		}
		gotIDs = append(gotIDs, int64(srcID))
	}
	sort.Slice(wantIDs, func(i, j int) bool { return wantIDs[i] < wantIDs[j] })
	sort.Slice(gotIDs, func(i, j int) bool { return gotIDs[i] < gotIDs[j] })
	if len(wantIDs) != len(gotIDs) {
		return describeMismatch(q, want, got)
	}
	for i := range wantIDs {
		if wantIDs[i] != gotIDs[i] {
			return describeMismatch(q, want, got)
		}
	}
	// Observable string values must coincide as multisets.
	ws := append([]string(nil), xpath.Strings(want)...)
	gs := append([]string(nil), xpath.Strings(got)...)
	sort.Strings(ws)
	sort.Strings(gs)
	if strings.Join(ws, "\x00") != strings.Join(gs, "\x00") {
		return "string values differ: " + strings.Join(ws, ",") + " vs " + strings.Join(gs, ",")
	}
	return ""
}

func describeMismatch(q xpath.Expr, want, got []*xmltree.Node) string {
	var w, g []string
	for _, n := range want {
		w = append(w, n.Label)
	}
	for _, n := range got {
		g = append(g, n.Label)
	}
	return "query " + xpath.String(q) + ": source selects [" + strings.Join(w, ",") +
		"], translated selects [" + strings.Join(g, ",") + "]"
}

func classDoc(t *testing.T) *xmltree.Tree {
	t.Helper()
	tr, err := xmltree.ParseString(`
<db>
  <class>
    <cno>CS331</cno><title>DB</title>
    <type><regular><prereq>
      <class><cno>CS210</cno><title>Algo</title><type><project>p1</project></type></class>
      <class><cno>CS120</cno><title>Logic</title><type><project>p2</project></type></class>
    </prereq></regular></type>
  </class>
  <class>
    <cno>CS100</cno><title>Intro</title>
    <type><project>maze</project></type>
  </class>
</db>`)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestExample48Translation: the prerequisite query of Example 4.8
// translates and preserves its answer across σ1.
func TestExample48Translation(t *testing.T) {
	emb := workload.ClassEmbedding()
	tr, err := translate.New(emb)
	if err != nil {
		t.Fatal(err)
	}
	q := xpath.MustParse(`class[cno/text() = "CS331"]/(type/regular/prereq/class)*`)
	src := classDoc(t)
	if msg := checkPreserved(tr, emb, q, src); msg != "" {
		t.Fatal(msg)
	}
	// Sanity: on the source the query selects CS331 and its two
	// prerequisites.
	if got := len(xpath.Eval(q, src.Root)); got != 3 {
		t.Fatalf("source query selects %d classes, want 3", got)
	}
	// The translated automaton matches the hand-written Q' of
	// Example 4.7.
	auto, _ := tr.Translate(q)
	res, _ := emb.Apply(src)
	manual := xpath.MustParse(`courses/current/course[basic/cno/text() = "CS331"]/(category/mandatory/regular/required/prereq/course)*`)
	a := auto.Eval(res.Tree.Root)
	b := xpath.Eval(manual, res.Tree.Root)
	if len(a) != len(b) {
		t.Errorf("translated automaton selects %d nodes, hand-written Q' selects %d", len(a), len(b))
	}
}

// TestFigure7SchemaDirected: translation must not select required nodes
// added by the instance mapping (the Figure 7 pitfall of naive
// edge-for-edge substitution).
func TestFigure7SchemaDirected(t *testing.T) {
	src := dtd.MustNew("r",
		dtd.D("r", dtd.Concat("A", "B")),
		dtd.D("A", dtd.Empty()),
		dtd.D("B", dtd.Empty()))
	tgt := dtd.MustNew("r",
		dtd.D("r", dtd.Concat("A", "B")),
		dtd.D("A", dtd.Empty()),
		dtd.D("B", dtd.Concat("C")),
		dtd.D("C", dtd.Empty()))
	emb := embedding.New(src, tgt)
	emb.MapType("r", "r").MapType("A", "A").MapType("B", "B")
	emb.SetPath(embedding.Ref("r", "A"), "A").SetPath(embedding.Ref("r", "B"), "B")
	tr, err := translate.New(emb)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString(`<r><A/><B/></r>`)
	res, err := emb.Apply(doc)
	if err != nil {
		t.Fatal(err)
	}
	// Naive substitution would run (A|B|C)* verbatim on the target,
	// where it selects the default-filled C child of B.
	naive := xpath.MustParse("(A | B | C)*")
	naiveGot := xpath.Eval(naive, res.Tree.Root)
	foundC := false
	for _, n := range naiveGot {
		if n.Label == "C" {
			foundC = true
		}
	}
	if !foundC {
		t.Fatal("test setup broken: naive evaluation should reach the filled C node")
	}
	// The schema-directed translation of the same source query must
	// not: C is not a source type reachable in S1.
	if msg := checkPreserved(tr, emb, naive, doc); msg != "" {
		t.Errorf("schema-directed translation leaked filled nodes: %s", msg)
	}
}

// TestStarPositionTranslation: position() under a star parent pins the
// iterator child.
func TestStarPositionTranslation(t *testing.T) {
	emb := workload.StudentEmbedding()
	tr, err := translate.New(emb)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString(`
<db>
  <student><ssn>1</ssn><name>Ann</name>
    <taking><cno>CS1</cno><cno>CS2</cno><cno>CS3</cno></taking>
  </student>
</db>`)
	for _, qs := range []string{
		"student/taking/cno[position() = 2]/text()",
		"student[position() = 1]/name/text()",
		"student/taking/cno[position() = 9]",
	} {
		q := xpath.MustParse(qs)
		if msg := checkPreserved(tr, emb, q, doc); msg != "" {
			t.Errorf("%s: %s", qs, msg)
		}
	}
}

// TestConcatOccurrenceTranslation: a repeated concatenation child
// translates to the union of the occurrence paths, and position()
// selects a single occurrence.
func TestConcatOccurrenceTranslation(t *testing.T) {
	src := dtd.MustNew("r",
		dtd.D("r", dtd.Concat("a", "a")),
		dtd.D("a", dtd.Str()))
	tgt := dtd.MustNew("r",
		dtd.D("r", dtd.Concat("x", "y")),
		dtd.D("x", dtd.Concat("a")),
		dtd.D("y", dtd.Concat("a")),
		dtd.D("a", dtd.Str()))
	emb := embedding.New(src, tgt)
	emb.MapType("r", "r").MapType("a", "a")
	emb.SetPath(embedding.EdgeRef{Parent: "r", Child: "a", Occ: 1}, "x/a").
		SetPath(embedding.EdgeRef{Parent: "r", Child: "a", Occ: 2}, "y/a").
		SetPath(embedding.Ref("a", embedding.StrChild), "text()")
	tr, err := translate.New(emb)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString(`<r><a>first</a><a>second</a></r>`)
	for _, qs := range []string{"a", "a/text()", "a[position() = 1]/text()", "a[position() = 2]/text()", "a[position() = 3]"} {
		q := xpath.MustParse(qs)
		if msg := checkPreserved(tr, emb, q, doc); msg != "" {
			t.Errorf("%s: %s", qs, msg)
		}
	}
}

// TestUnsupportedPosition: position() on a non-label step is rejected
// (the documented deviation from the paper's case (h)).
func TestUnsupportedPosition(t *testing.T) {
	tr, err := translate.New(workload.ClassEmbedding())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Translate(xpath.MustParse("(class | class/type)[position() = 1]")); err == nil {
		t.Error("position() on a union should be rejected")
	}
	if _, err := tr.Translate(xpath.MustParse("class[cno or position() = 1]")); err == nil {
		t.Error("position() inside a Boolean should be rejected")
	}
}

// TestDescTranslation: X-fragment queries desugar over the source
// alphabet and translate.
func TestDescTranslation(t *testing.T) {
	emb := workload.ClassEmbedding()
	tr, err := translate.New(emb)
	if err != nil {
		t.Fatal(err)
	}
	src := classDoc(t)
	for _, qs := range []string{".//cno/text()", ".//class[cno/text() = \"CS210\"]", "class//title"} {
		q := xpath.MustParse(qs)
		if msg := checkPreserved(tr, emb, q, src); msg != "" {
			t.Errorf("%s: %s", qs, msg)
		}
	}
}

// TestTranslationSizeBound: |Tr(Q)| stays within the O(|Q|·|σ|·|S1|)
// bound of Theorem 4.3(b) (with a small constant).
func TestTranslationSizeBound(t *testing.T) {
	emb := workload.ClassEmbedding()
	tr, err := translate.New(emb)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	bound := 0
	for i := 0; i < 60; i++ {
		q := xpath.RandomQuery(r, emb.Source, xpath.GenOptions{TranslatableOnly: true})
		auto, err := tr.Translate(q)
		if err != nil {
			t.Fatalf("translate %s: %v", xpath.String(q), err)
		}
		limit := 4 * xpath.Size(q) * emb.PathSize() * emb.Source.Size()
		if auto.Size() > limit {
			t.Errorf("|Tr(%s)| = %d exceeds 4·|Q|·|σ|·|S1| = %d", xpath.String(q), auto.Size(), limit)
		}
		if auto.Size() > bound {
			bound = auto.Size()
		}
	}
	t.Logf("largest automaton: %d states+transitions", bound)
}

// TestQueryPreservationProperty is the central Theorem 4.2 check:
// random translatable queries over random documents preserve their
// answers across σ1 and σ2.
func TestQueryPreservationProperty(t *testing.T) {
	for _, tc := range []struct {
		name string
		emb  *embedding.Embedding
	}{
		{"sigma1-class", workload.ClassEmbedding()},
		{"sigma2-student", workload.StudentEmbedding()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := translate.New(tc.emb)
			if err != nil {
				t.Fatal(err)
			}
			prop := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				q := xpath.RandomQuery(r, tc.emb.Source, xpath.GenOptions{TranslatableOnly: true})
				src := xmltree.MustGenerate(tc.emb.Source, r, xmltree.GenOptions{})
				if msg := checkPreserved(tr, tc.emb, q, src); msg != "" {
					t.Logf("seed %d: %s", seed, msg)
					return false
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(1))}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestTheorem33InverseViaQueries reconstructs a source document purely
// through translated queries, following the constructive proof of
// Theorem 3.3 (query preservation implies invertibility).
func TestTheorem33InverseViaQueries(t *testing.T) {
	emb := workload.StudentEmbedding()
	tr, err := translate.New(emb)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString(`
<db>
  <student><ssn>1</ssn><name>Ann</name><taking><cno>CS1</cno><cno>CS2</cno></taking></student>
  <student><ssn>2</ssn><name>Bob</name><taking/></student>
</db>`)
	res, err := emb.Apply(doc)
	if err != nil {
		t.Fatal(err)
	}
	// Count students via translated queries with increasing position.
	count := 0
	for k := 1; ; k++ {
		q := xpath.Filter{P: xpath.Label{Name: "student"}, Q: xpath.QPos{K: k}}
		auto, err := tr.Translate(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(auto.Eval(res.Tree.Root)) == 0 {
			break
		}
		count++
		if count > 10 {
			t.Fatal("runaway student count")
		}
	}
	if count != 2 {
		t.Errorf("reconstructed %d students, want 2", count)
	}
	// Recover Bob's name through a composed translated query.
	q := xpath.MustParse(`student[position() = 2]/name/text()`)
	auto, _ := tr.Translate(q)
	got := auto.Eval(res.Tree.Root)
	if len(got) != 1 || got[0].Text != "Bob" {
		t.Errorf("recovered name = %v", got)
	}
}

// TestTranslateToRegex: small translated automata expand back to X_R
// expressions equivalent on the target document.
func TestTranslateToRegex(t *testing.T) {
	emb := workload.StudentEmbedding()
	tr, err := translate.New(emb)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString(`
<db><student><ssn>1</ssn><name>Ann</name><taking><cno>CS1</cno></taking></student></db>`)
	res, _ := emb.Apply(doc)
	for _, qs := range []string{"student/ssn", "student/name/text()", "student/taking/cno"} {
		auto, err := tr.Translate(xpath.MustParse(qs))
		if err != nil {
			t.Fatal(err)
		}
		back, err := auto.ToRegex()
		if err != nil {
			t.Fatalf("ToRegex(%s): %v", qs, err)
		}
		a := auto.Eval(res.Tree.Root)
		b := xpath.Eval(back, res.Tree.Root)
		if len(a) != len(b) {
			t.Errorf("%s: automaton selects %d, its regex %q selects %d", qs, len(a), xpath.String(back), len(b))
		}
	}
}

// TestTranslateFailQuery: a query over labels absent from the source
// schema yields a failing automaton.
func TestTranslateFailQuery(t *testing.T) {
	tr, err := translate.New(workload.StudentEmbedding())
	if err != nil {
		t.Fatal(err)
	}
	auto, err := tr.Translate(xpath.MustParse("nosuchtag/child"))
	if err != nil {
		t.Fatal(err)
	}
	if !auto.IsFail() {
		t.Error("translation of an unsatisfiable query should be Fail")
	}
	_ = anfa.Fail() // keep the import honest about the comparison target
}
