package translate_test

import (
	"testing"

	"repro/internal/translate"
	"repro/internal/workload"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// TestStarOverTextTranslation: a Kleene star whose body can end at text
// nodes — iterations from a text node contribute nothing further, in
// both source and target semantics.
func TestStarOverTextTranslation(t *testing.T) {
	emb := workload.StudentEmbedding()
	tr, err := translate.New(emb)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString(`
<db><student><ssn>1</ssn><name>Ann</name><taking><cno>CS1</cno></taking></student></db>`)
	for _, qs := range []string{
		"(student/ssn/text())*",
		"student/(taking | taking/cno/text())*",
		"(student)*/(name/text() | ssn/text())",
	} {
		q := xpath.MustParse(qs)
		if msg := checkPreserved(tr, emb, q, doc); msg != "" {
			t.Errorf("%s: %s", qs, msg)
		}
	}
}
