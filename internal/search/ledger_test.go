package search

import (
	"context"
	"strings"
	"testing"

	"repro/internal/dtd"
	"repro/internal/obs"
)

// failingPair builds a pair with no embedding: the target root is
// empty, so every source edge's path enumeration comes up dry.
func failingPair() (*dtd.DTD, *dtd.DTD) {
	src := dtd.MustNew("A",
		dtd.D("A", dtd.Concat("B", "C")),
		dtd.D("B", dtd.Empty()),
		dtd.D("C", dtd.Empty()))
	tgt := dtd.MustNew("R", dtd.D("R", dtd.Empty()))
	return src, tgt
}

// identityPair embeds trivially into itself.
func identityPair() (*dtd.DTD, *dtd.DTD) {
	d := dtd.MustNew("A",
		dtd.D("A", dtd.Concat("B", "C")),
		dtd.D("B", dtd.Str()),
		dtd.D("C", dtd.Empty()))
	return d, d
}

func TestLedgerDisabledByDefault(t *testing.T) {
	src, tgt := failingPair()
	res, err := Find(src, tgt, nil, Options{Seed: 1, MaxRestarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ledger != nil {
		t.Fatalf("Ledger recorded without Explain: %+v", res.Ledger)
	}
	if res.Rejections.Total() != 0 {
		t.Fatalf("Rejections counted without Explain: %+v", res.Rejections)
	}
}

func TestLedgerRecordsFailure(t *testing.T) {
	src, tgt := failingPair()
	res, err := Find(src, tgt, nil, Options{Seed: 1, MaxRestarts: 3, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding != nil {
		t.Fatal("unexpected embedding into an empty target")
	}
	if len(res.Ledger) == 0 {
		t.Fatal("Explain produced no ledger records")
	}
	for _, r := range res.Ledger {
		if r.Heuristic != "Random" {
			t.Errorf("record heuristic = %q", r.Heuristic)
		}
		if r.Outcome != OutcomeExhausted {
			t.Errorf("restart %d outcome = %q, want %q", r.Restart, r.Outcome, OutcomeExhausted)
		}
		if r.PlacementDepth < 1 {
			t.Errorf("restart %d placement depth = %d", r.Restart, r.PlacementDepth)
		}
	}
	if res.Rejections.PathEmpty == 0 {
		t.Errorf("expected path_empty rejections against an empty target, got %+v", res.Rejections)
	}
}

func TestLedgerRecordsSuccess(t *testing.T) {
	src, tgt := identityPair()
	res, err := Find(src, tgt, nil, Options{Seed: 1, MaxRestarts: 3, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding == nil {
		t.Fatal("identity pair not embedded")
	}
	if n := len(res.Ledger); n == 0 {
		t.Fatal("no ledger records")
	}
	last := res.Ledger[len(res.Ledger)-1]
	if last.Outcome != OutcomeFound {
		t.Errorf("final outcome = %q, want %q", last.Outcome, OutcomeFound)
	}
}

func TestLedgerBound(t *testing.T) {
	src, tgt := failingPair()
	res, err := Find(src, tgt, nil, Options{Seed: 1, MaxRestarts: 40, Explain: true, MaxLedger: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ledger) > 5 {
		t.Fatalf("ledger exceeded MaxLedger: %d records", len(res.Ledger))
	}
}

func TestLedgerParallel(t *testing.T) {
	src, tgt := failingPair()
	res, err := Find(src, tgt, nil, Options{
		Seed: 1, MaxRestarts: 12, Explain: true, Parallel: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ledger) == 0 {
		t.Fatal("parallel search produced no ledger records")
	}
	for i := 1; i < len(res.Ledger); i++ {
		if res.Ledger[i].Restart < res.Ledger[i-1].Restart {
			t.Fatalf("ledger out of restart order: %d after %d",
				res.Ledger[i].Restart, res.Ledger[i-1].Restart)
		}
	}
	if res.Rejections.Total() == 0 {
		t.Error("parallel aggregate rejections all zero")
	}
}

func TestLedgerIndepSetOutcomes(t *testing.T) {
	src, tgt := failingPair()
	res, err := Find(src, tgt, nil, Options{
		Seed: 1, MaxRestarts: 2, Explain: true, Heuristic: IndepSet,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ledger) == 0 {
		t.Fatal("IndepSet produced no ledger records")
	}
	for _, r := range res.Ledger {
		switch r.Outcome {
		case OutcomeNoOptions, OutcomeConflict, OutcomeInvalid, OutcomeFound, OutcomeCanceled, OutcomeStepBudget:
		default:
			t.Errorf("unexpected IndepSet outcome %q", r.Outcome)
		}
	}
}

func TestLedgerEmitsRestartEvents(t *testing.T) {
	rec := obs.NewRecorder(64)
	ctx := obs.WithEmitter(context.Background(), obs.NewEmitter(nil, rec))
	ctx = obs.WithRequestID(ctx, "feedfacecafebeef")

	src, tgt := identityPair()
	if _, err := FindCtx(ctx, src, tgt, nil, Options{Seed: 1, Explain: true}); err != nil {
		t.Fatal(err)
	}
	evs := rec.Snapshot()
	if len(evs) == 0 {
		t.Fatal("no search.restart events recorded")
	}
	for _, e := range evs {
		if e.Name != "search.restart" {
			t.Errorf("event name = %q", e.Name)
		}
		if !e.MatchAttr("request_id", "feedfacecafebeef") {
			t.Errorf("event missing request_id: %+v", e.Attrs)
		}
	}
}

func TestLedgerNoEventsWithoutEmitter(t *testing.T) {
	// Explain without a context emitter must not panic or emit.
	src, tgt := identityPair()
	if _, err := Find(src, tgt, nil, Options{Seed: 1, Explain: true}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteLedger(t *testing.T) {
	src, tgt := failingPair()
	res, err := Find(src, tgt, nil, Options{Seed: 1, MaxRestarts: 2, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	WriteLedger(&b, res)
	out := b.String()
	for _, want := range []string{"RESTART", "OUTCOME", "exhausted", "totals:", "path_empty="} {
		if !strings.Contains(out, want) {
			t.Errorf("ledger table missing %q:\n%s", want, out)
		}
	}
	var empty strings.Builder
	WriteLedger(&empty, &Result{})
	if !strings.Contains(empty.String(), "empty") {
		t.Errorf("empty ledger rendering = %q", empty.String())
	}
}
