package search_test

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/match"
	"repro/internal/search"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/determinism.golden from the current search output")

// goldenRuns renders the fixed corpus of deterministic searches whose
// output is pinned in testdata/determinism.golden. The golden file was
// generated before the hot-path overhaul (shared candidate cache,
// parent-pointer BFS, localPaths memo), so a byte-for-byte match proves
// the sequential search still consumes its rng identically and returns
// the exact same embeddings it did before the refactor.
func goldenRuns(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	for _, seed := range []int64{1, 3, 7} {
		res, err := search.Find(workload.ClassDTD(), workload.SchoolDTD(), nil,
			search.Options{Heuristic: search.Random, Seed: seed, MaxRestarts: 60, Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "=== class->school seed %d restarts=%d ===\n", seed, res.Restarts)
		b.WriteString(res.Embedding.Marshal())
	}
	r := rand.New(rand.NewSource(11))
	base := workload.MustSyntheticDTD(r, 20)
	nc := workload.Noise(base, workload.NoiseLevel(0.2), r)
	att := match.Synthetic(base, nc.DTD, nc.Truth,
		match.SyntheticOptions{Accuracy: 1, Ambiguity: 2}, r)
	res, err := search.Find(base, nc.DTD, att,
		search.Options{Heuristic: search.Random, Seed: 5, MaxRestarts: 40, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "=== synthetic tseed 11 seed 5 restarts=%d ===\n", res.Restarts)
	b.WriteString(res.Embedding.Marshal())
	return b.String()
}

// TestSequentialDeterminismGolden: with Parallel ≤ 1 the search is
// byte-for-byte deterministic per seed, and matches the embeddings the
// pre-refactor implementation produced (golden-checked).
func TestSequentialDeterminismGolden(t *testing.T) {
	got := goldenRuns(t)
	path := filepath.Join("testdata", "determinism.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("sequential search output diverged from %s (run with -update to accept):\ngot:\n%s", path, got)
	}
	// And the runs are reproducible within one process: the caches and
	// memos are search-scoped, so a second identical call must not see
	// state from the first.
	if again := goldenRuns(t); again != got {
		t.Error("identical back-to-back runs diverged: search state leaked across calls")
	}
}
