package search

import (
	"sync/atomic"
	"testing"

	"repro/internal/dtd"
	"repro/internal/embedding"
)

func enumFor(t *testing.T, d *dtd.DTD) *enumerator {
	t.Helper()
	return newEnumerator(d, d.Size()+2, 64, 1<<14, 2, newSearchCache(false))
}

func TestEnumeratorANDFlavor(t *testing.T) {
	tgt := dtd.MustNew("r",
		dtd.D("r", dtd.Concat("a", "b")),
		dtd.D("a", dtd.Concat("c")),
		dtd.D("b", dtd.Disj("c", "d")),
		dtd.D("c", dtd.Empty()),
		dtd.D("d", dtd.Empty()))
	e := enumFor(t, tgt)
	// AND paths to c: only r/a/c (the b route crosses an OR edge).
	cands := e.paths("r", "c", flavorAND)
	if len(cands) != 1 || cands[0].path.String() != "a/c" {
		t.Fatalf("AND candidates to c = %v", cands)
	}
	// OR paths to c: only through b.
	cands = e.paths("r", "c", flavorOR)
	if len(cands) != 1 || cands[0].path.String() != "b/c" {
		t.Fatalf("OR candidates to c = %v", cands)
	}
	// No STAR path exists anywhere in this target.
	if cands := e.paths("r", "c", flavorSTAR); len(cands) != 0 {
		t.Fatalf("unexpected STAR candidates: %v", cands)
	}
}

func TestEnumeratorSTARFlavor(t *testing.T) {
	tgt := dtd.MustNew("r",
		dtd.D("r", dtd.Concat("list")),
		dtd.D("list", dtd.Star("item")),
		dtd.D("item", dtd.Concat("v")),
		dtd.D("v", dtd.Str()))
	e := enumFor(t, tgt)
	cands := e.paths("r", "item", flavorSTAR)
	if len(cands) == 0 {
		t.Fatal("no STAR candidates")
	}
	found := false
	for _, c := range cands {
		if c.path.String() == "list/item" {
			found = true
			// The iterator slot is unpinned.
			if c.slots[1].occ != 0 {
				t.Errorf("iterator slot = %+v, want occ 0", c.slots[1])
			}
		}
	}
	if !found {
		t.Fatalf("list/item not enumerated: %v", candsStrings(cands))
	}
	// AND flavor through the star requires pinning: list/item[1] or [2].
	and := e.paths("r", "item", flavorAND)
	pins := map[int]bool{}
	for _, c := range and {
		if len(c.slots) == 2 {
			pins[c.slots[1].occ] = true
		}
	}
	if !pins[1] || !pins[2] {
		t.Errorf("pinned AND star candidates missing: %v", candsStrings(and))
	}
}

func TestEnumeratorSTRFlavor(t *testing.T) {
	tgt := dtd.MustNew("r",
		dtd.D("r", dtd.Concat("a", "b")),
		dtd.D("a", dtd.Str()),
		dtd.D("b", dtd.Empty()))
	e := enumFor(t, tgt)
	cands := e.strCandidates("r")
	if len(cands) != 1 || cands[0].path.String() != "a/text()" {
		t.Fatalf("str candidates from r = %v", candsStrings(cands))
	}
	// From a str-typed start, the zero-step text() path comes first.
	cands = e.strCandidates("a")
	if len(cands) == 0 || cands[0].path.String() != "text()" {
		t.Fatalf("str candidates from a = %v", candsStrings(cands))
	}
}

func TestEnumeratorOccurrenceBranching(t *testing.T) {
	tgt := dtd.MustNew("r",
		dtd.D("r", dtd.Concat("x", "x")),
		dtd.D("x", dtd.Empty()))
	e := enumFor(t, tgt)
	cands := e.paths("r", "x", flavorAND)
	if len(cands) != 2 {
		t.Fatalf("got %d candidates for duplicated child, want 2: %v", len(cands), candsStrings(cands))
	}
	seen := map[string]bool{}
	for _, c := range cands {
		seen[c.path.String()] = true
	}
	if !seen["x[position() = 1]"] || !seen["x[position() = 2]"] {
		t.Errorf("occurrence candidates = %v", candsStrings(cands))
	}
}

func TestEnumeratorCaps(t *testing.T) {
	// A wide fan-out target; tiny caps must bound the result.
	defs := []dtd.Def{dtd.D("r", dtd.Concat("a", "b", "c", "d"))}
	for _, n := range []string{"a", "b", "c", "d"} {
		defs = append(defs, dtd.D(n, dtd.Concat("leaf")))
	}
	defs = append(defs, dtd.D("leaf", dtd.Empty()))
	tgt := dtd.MustNew("r", defs...)
	e := newEnumerator(tgt, 8, 2, 1<<14, 2, newSearchCache(false))
	if cands := e.paths("r", "leaf", flavorAND); len(cands) > 2 {
		t.Errorf("candidate cap ignored: %d", len(cands))
	}
}

func TestLocalPathsPrefixFreeSelection(t *testing.T) {
	// Source: A -> (B, C); target offers exactly two prefix-free routes
	// but the shortest ones conflict, forcing backtracking.
	src := dtd.MustNew("A",
		dtd.D("A", dtd.Concat("B", "C")),
		dtd.D("B", dtd.Empty()),
		dtd.D("C", dtd.Empty()))
	tgt := dtd.MustNew("A1",
		dtd.D("A1", dtd.Concat("B1", "D")),
		dtd.D("B1", dtd.Concat("C1")),
		dtd.D("C1", dtd.Empty()),
		dtd.D("D", dtd.Concat("B2")),
		dtd.D("B2", dtd.Empty()))
	e := enumFor(t, tgt)
	// λ(B)=B1 (reachable directly), λ(C)=C1 (only below B1): B1 and
	// B1/C1 conflict, so B must take nothing else — no selection exists.
	lam := map[string]string{"A": "A1", "B": "B1", "C": "C1"}
	if got := localPaths(e, src, "A", lam, nil); got != nil {
		t.Fatalf("conflicting selection accepted: %v", got)
	}
	// λ(B)=B2 resolves it: D/B2 and B1/C1 are prefix-free.
	lam["B"] = "B2"
	got := localPaths(e, src, "A", lam, nil)
	if got == nil {
		t.Fatal("no selection found")
	}
	if got[embedding.Ref("A", "B")].String() != "D/B2" {
		t.Errorf("path(A,B) = %v", got[embedding.Ref("A", "B")])
	}
}

func TestLocalPathsDisjunctionDivergence(t *testing.T) {
	src := dtd.MustNew("A",
		dtd.D("A", dtd.Disj("B", "C")),
		dtd.D("B", dtd.Empty()),
		dtd.D("C", dtd.Empty()))
	// Divergence at AND edges only: U/B1 vs W/C1 — must be rejected.
	tgt := dtd.MustNew("A1",
		dtd.D("A1", dtd.Concat("U", "W")),
		dtd.D("U", dtd.Disj("B1", "Z1")),
		dtd.D("W", dtd.Disj("C1", "Z2")),
		dtd.D("B1", dtd.Empty()), dtd.D("C1", dtd.Empty()),
		dtd.D("Z1", dtd.Empty()), dtd.D("Z2", dtd.Empty()))
	e := enumFor(t, tgt)
	lam := map[string]string{"A": "A1", "B": "B1", "C": "C1"}
	if got := localPaths(e, src, "A", lam, nil); got != nil {
		t.Fatalf("non-OR divergence accepted: %v", got)
	}
	// A target where both disjuncts hang off one OR node works.
	tgt2 := dtd.MustNew("A1",
		dtd.D("A1", dtd.Concat("U")),
		dtd.D("U", dtd.Disj("B1", "C1")),
		dtd.D("B1", dtd.Empty()), dtd.D("C1", dtd.Empty()))
	e2 := enumFor(t, tgt2)
	if got := localPaths(e2, src, "A", lam, nil); got == nil {
		t.Fatal("valid disjunct selection rejected")
	}
}

func TestHeuristicString(t *testing.T) {
	for h, want := range map[Heuristic]string{
		Random: "Random", QualityOrdered: "QualityOrdered",
		IndepSet: "IndepSet", Exact: "Exact", Heuristic(9): "Heuristic(9)",
	} {
		if h.String() != want {
			t.Errorf("String(%d) = %q", int(h), h.String())
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxRestarts != 20 || o.MaxCandidates != 24 || o.MaxPin != 2 {
		t.Errorf("heuristic defaults wrong: %+v", o)
	}
	e := Options{Heuristic: Exact}.withDefaults()
	if e.MaxCandidates != 512 || e.MaxSteps != int(^uint(0)>>1) {
		t.Errorf("exact defaults wrong: %+v", e)
	}
}

// TestLatchSettledWinSticks: regression test for the parallel win
// latch. It used to be written done.Store(emb != nil), so a losing
// restart finishing after a win reset the latch and resurrected idle
// workers; latchSettled must only ever store true.
func TestLatchSettledWinSticks(t *testing.T) {
	var done atomic.Bool
	latchSettled(&done, true, false, false) // a win settles the search
	if !done.Load() {
		t.Fatal("win did not settle")
	}
	latchSettled(&done, false, false, false) // a late loser must not unlatch
	if !done.Load() {
		t.Fatal("losing restart unlatched a prior win")
	}
	latchSettled(&done, false, true, true) // nor a canceled 'exhausted' one
	if !done.Load() {
		t.Fatal("canceled restart unlatched a prior win")
	}

	var proof atomic.Bool
	latchSettled(&proof, false, true, false) // impossibility settles too
	if !proof.Load() {
		t.Fatal("uncanceled exhaustion did not settle")
	}

	var canceled atomic.Bool
	latchSettled(&canceled, false, true, true) // truncated exhaustion proves nothing
	if canceled.Load() {
		t.Fatal("canceled restart settled the search")
	}
}

func candsStrings(cs []candidate) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.path.String()
	}
	return out
}
