// Package search computes schema embeddings (§5): given two DTDs and a
// similarity matrix, it finds a valid embedding σ : S1 → S2 when one
// exists within its search bounds. The Schema-Embedding problem is
// NP-complete (Theorem 5.1), so the package provides heuristics —
// Random, Quality-Ordered and Independent-Set assembly of local
// embeddings, per the VLDB'05 companion — together with an exhaustive
// solver used as a test oracle on small schemas.
//
// Local embeddings are found by solving the prefix-free path problem:
// candidate target paths per source edge are enumerated shortest-first
// (respecting the path type condition and the Theorem 4.10 length
// bounds), and a backtracking selection picks mutually prefix-free
// candidates.
package search

import (
	"repro/internal/dtd"
	"repro/internal/xpath"
)

// flavor is the required path type per the source production kind.
type flavor uint8

const (
	flavorAND flavor = iota
	flavorOR
	flavorSTAR
	flavorSTR
)

// slot identifies a step for prefix-freedom comparisons, mirroring the
// canonical slots of package embedding (occ 0 = star iterator).
type slot struct {
	label string
	occ   int
}

// candidate is one enumerated target path with its canonical slots and
// the kinds of edges it crosses.
type candidate struct {
	path  xpath.Path
	slots []slot
	kinds []dtd.EdgeKind
}

// enumerator enumerates and memoizes candidate paths in the target
// schema.
type enumerator struct {
	tgt *dtd.DTD
	// maxLen bounds path length; maxCands bounds candidates per query;
	// maxExpand bounds total BFS expansions per query; maxPin bounds
	// the positions tried when pinning a star step on an AND path.
	maxLen    int
	maxCands  int
	maxExpand int
	maxPin    int

	// stop, when set, is polled during BFS so a canceled search
	// abandons enumeration promptly; enumerated counts the candidate
	// paths produced, for partial-progress reporting.
	stop       func() bool
	enumerated int

	memo map[enumKey][]candidate
}

type enumKey struct {
	from, to string
	fl       flavor
}

func newEnumerator(tgt *dtd.DTD, maxLen, maxCands, maxExpand, maxPin int) *enumerator {
	return &enumerator{
		tgt:       tgt,
		maxLen:    maxLen,
		maxCands:  maxCands,
		maxExpand: maxExpand,
		maxPin:    maxPin,
		memo:      map[enumKey][]candidate{},
	}
}

// paths returns candidate paths from target type `from` to target type
// `to` of the given flavor, shortest first. For flavorSTR, `to` is
// ignored: paths end at any str-typed element and carry a trailing
// text() step.
func (e *enumerator) paths(from, to string, fl flavor) []candidate {
	key := enumKey{from: from, to: to, fl: fl}
	if c, ok := e.memo[key]; ok {
		return c
	}
	c := e.enumerate(from, to, fl)
	e.memo[key] = c
	return c
}

// state is a partial path during BFS.
type state struct {
	at     string
	path   xpath.Path
	slots  []slot
	kinds  []dtd.EdgeKind
	sawOR  bool
	sawIt  bool // unpinned (iterator) star step present
	sawSt  bool // any star step present
	length int
}

func (e *enumerator) enumerate(from, to string, fl flavor) []candidate {
	var out []candidate
	queue := []state{{at: from}}
	expansions := 0
	for len(queue) > 0 && len(out) < e.maxCands && expansions < e.maxExpand {
		if e.stop != nil && e.stop() {
			break
		}
		st := queue[0]
		queue = queue[1:]
		if st.length >= e.maxLen {
			continue
		}
		prod, ok := e.tgt.Prods[st.at]
		if !ok {
			continue
		}
		expansions++
		switch prod.Kind {
		case dtd.KindStr:
			// Only flavorSTR may end here, handled on arrival below.
			continue
		case dtd.KindEmpty:
			continue
		case dtd.KindConcat:
			occ := map[string]int{}
			for _, c := range prod.Children {
				occ[c]++
				pos := 0
				if prod.Occurrences(c) > 1 {
					pos = occ[c]
				}
				next := extend(st, xpath.Step{Label: c, Pos: pos}, slot{label: c, occ: occ[c]}, dtd.EdgeAND)
				queue = e.arrive(queue, &out, next, to, fl)
			}
		case dtd.KindDisj:
			if fl != flavorOR {
				continue // OR edges are only legal on OR paths
			}
			for _, c := range prod.Children {
				next := extend(st, xpath.Step{Label: c}, slot{label: c, occ: 1}, dtd.EdgeOR)
				next.sawOR = true
				queue = e.arrive(queue, &out, next, to, fl)
			}
		case dtd.KindStar:
			if fl == flavorOR {
				continue // STAR edges are illegal on OR paths
			}
			c := prod.Children[0]
			// Pinned positions (legal on any non-OR path).
			for p := 1; p <= e.maxPin; p++ {
				next := extend(st, xpath.Step{Label: c, Pos: p}, slot{label: c, occ: p}, dtd.EdgeSTAR)
				next.sawSt = true
				queue = e.arrive(queue, &out, next, to, fl)
			}
			// The unpinned iterator, once, for STAR paths.
			if fl == flavorSTAR && !st.sawIt {
				next := extend(st, xpath.Step{Label: c}, slot{label: c, occ: 0}, dtd.EdgeSTAR)
				next.sawSt = true
				next.sawIt = true
				queue = e.arrive(queue, &out, next, to, fl)
			}
		}
	}
	return out
}

func extend(st state, step xpath.Step, sl slot, kind dtd.EdgeKind) state {
	next := state{
		at:     step.Label,
		sawOR:  st.sawOR,
		sawIt:  st.sawIt,
		sawSt:  st.sawSt,
		length: st.length + 1,
	}
	next.path.Steps = append(append([]xpath.Step(nil), st.path.Steps...), step)
	next.slots = append(append([]slot(nil), st.slots...), sl)
	next.kinds = append(append([]dtd.EdgeKind(nil), st.kinds...), kind)
	return next
}

// arrive records the state as a candidate when it satisfies the flavor
// at its endpoint, and enqueues it for further extension.
func (e *enumerator) arrive(queue []state, out *[]candidate, st state, to string, fl flavor) []state {
	accept := false
	switch fl {
	case flavorAND:
		accept = st.at == to && !st.sawOR
	case flavorOR:
		accept = st.at == to && st.sawOR && !st.sawSt
	case flavorSTAR:
		accept = st.at == to && st.sawIt && !st.sawOR
	case flavorSTR:
		if prod, ok := e.tgt.Prods[st.at]; ok && prod.Kind == dtd.KindStr && !st.sawOR {
			accept = true
		}
	}
	if accept && len(*out) < e.maxCands {
		p := st.path.Clone()
		if fl == flavorSTR {
			p.Text = true
		}
		*out = append(*out, candidate{path: p, slots: st.slots, kinds: st.kinds})
		e.enumerated++
	}
	return append(queue, st)
}

// textOnlyCandidate returns the zero-step text() path for a str edge
// whose parent maps to a str-typed target.
func (e *enumerator) textOnlyCandidate(from string) (candidate, bool) {
	prod, ok := e.tgt.Prods[from]
	if !ok || prod.Kind != dtd.KindStr {
		return candidate{}, false
	}
	return candidate{path: xpath.Path{Text: true}}, true
}

// strCandidates enumerates str-edge paths from a target type: the
// text-only path when the type itself is str-typed, plus AND paths to
// str-typed elements.
func (e *enumerator) strCandidates(from string) []candidate {
	var out []candidate
	if c, ok := e.textOnlyCandidate(from); ok {
		out = append(out, c)
	}
	out = append(out, e.paths(from, "", flavorSTR)...)
	return out
}
