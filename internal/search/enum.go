// Package search computes schema embeddings (§5): given two DTDs and a
// similarity matrix, it finds a valid embedding σ : S1 → S2 when one
// exists within its search bounds. The Schema-Embedding problem is
// NP-complete (Theorem 5.1), so the package provides heuristics —
// Random, Quality-Ordered and Independent-Set assembly of local
// embeddings, per the VLDB'05 companion — together with an exhaustive
// solver used as a test oracle on small schemas.
//
// Local embeddings are found by solving the prefix-free path problem:
// candidate target paths per source edge are enumerated shortest-first
// (respecting the path type condition and the Theorem 4.10 length
// bounds), and a backtracking selection picks mutually prefix-free
// candidates.
package search

import (
	"repro/internal/dtd"
	"repro/internal/xpath"
)

// flavor is the required path type per the source production kind.
type flavor uint8

const (
	flavorAND flavor = iota
	flavorOR
	flavorSTAR
	flavorSTR
)

// slot identifies a step for prefix-freedom comparisons, mirroring the
// canonical slots of package embedding (occ 0 = star iterator).
type slot struct {
	label string
	occ   int
}

// candidate is one enumerated target path with its canonical slots and
// the kinds of edges it crosses.
type candidate struct {
	path  xpath.Path
	slots []slot
	kinds []dtd.EdgeKind
}

// enumerator answers candidate-path queries against the target schema.
// All memoization lives in the shared searchCache, so enumerators are
// cheap per-worker shells: the same (from, to, flavor) BFS runs at most
// once per search, across all restarts and workers.
type enumerator struct {
	tgt *dtd.DTD
	// maxLen bounds path length; maxCands bounds candidates per query;
	// maxExpand bounds total BFS expansions per query; maxPin bounds
	// the positions tried when pinning a star step on an AND path.
	maxLen    int
	maxCands  int
	maxExpand int
	maxPin    int

	// stop, when set, is polled during BFS so a canceled search
	// abandons enumeration promptly. Aborted enumerations are never
	// cached (see sfCache).
	stop func() bool

	cache *searchCache

	// Per-enumerator (per-goroutine) statistics, flushed to the
	// registry at search boundaries: hits/misses count cache lookups,
	// enumerated counts candidate paths produced by real BFS runs
	// (cache hits do not re-count), expansions counts arena-BFS states
	// expanded, and rejects counts candidate pairs failing the
	// prefix-freeness check (incremented by pairCompat via localPaths).
	// Plain ints by design: the hot loops never touch an atomic.
	hits, misses, enumerated, expansions, rejects int

	// frontier tracks the peak BFS arena size across this enumerator's
	// real enumerations (one comparison per enumerate call, so it is
	// maintained unconditionally). The explainability ledger reads it
	// as the restart's FrontierPeak.
	frontier int
}

type enumKey struct {
	from, to string
	fl       flavor
}

func newEnumerator(tgt *dtd.DTD, maxLen, maxCands, maxExpand, maxPin int, cache *searchCache) *enumerator {
	return &enumerator{
		tgt:       tgt,
		maxLen:    maxLen,
		maxCands:  maxCands,
		maxExpand: maxExpand,
		maxPin:    maxPin,
		cache:     cache,
	}
}

// paths returns candidate paths from target type `from` to target type
// `to` of the given flavor, shortest first. For flavorSTR, `to` is
// ignored: paths end at any str-typed element and carry a trailing
// text() step.
func (e *enumerator) paths(from, to string, fl flavor) []candidate {
	key := enumKey{from: from, to: to, fl: fl}
	out, hit := e.cache.paths.get(key, func() ([]candidate, bool) {
		out, aborted := e.enumerate(from, to, fl)
		// Count real enumeration work even when aborted: the partial
		// candidates were genuinely produced.
		e.enumerated += len(out)
		return out, !aborted
	})
	if hit {
		e.hits++
	} else {
		e.misses++
	}
	return out
}

// bfsState is one node of the BFS tree. States form a parent-pointer
// arena: each holds the single step that extends its parent, and the
// full path/slots/kinds slices are materialized only for accepted
// candidates (see materialize) — extending a state allocates nothing.
type bfsState struct {
	at     string
	step   xpath.Step
	sl     slot
	kind   dtd.EdgeKind
	parent int32 // arena index; -1 for the root state
	sawOR  bool
	sawIt  bool // unpinned (iterator) star step present
	sawSt  bool // any star step present
	length int32
}

// enumerate runs the bounded BFS for one query. It reports whether the
// search was aborted by stop (aborted results must not be cached).
func (e *enumerator) enumerate(from, to string, fl flavor) ([]candidate, bool) {
	var out []candidate
	arena := make([]bfsState, 1, 64)
	arena[0] = bfsState{at: from, parent: -1}
	expansions := 0
	defer func() {
		e.expansions += expansions
		if n := len(arena); n > e.frontier {
			e.frontier = n
		}
	}()
	for head := 0; head < len(arena) && len(out) < e.maxCands && expansions < e.maxExpand; head++ {
		if e.stop != nil && e.stop() {
			return out, true
		}
		st := arena[head] // copy: appends below may grow the arena
		if int(st.length) >= e.maxLen {
			continue
		}
		prod, ok := e.tgt.Prods[st.at]
		if !ok {
			continue
		}
		expansions++
		// extend appends the child state reached by one step and, when
		// it satisfies the flavor at its endpoint, materializes it as a
		// candidate.
		extend := func(step xpath.Step, sl slot, kind dtd.EdgeKind, sawOR, sawIt bool) {
			next := bfsState{
				at:     step.Label,
				step:   step,
				sl:     sl,
				kind:   kind,
				parent: int32(head),
				sawOR:  st.sawOR || sawOR,
				sawIt:  st.sawIt || sawIt,
				sawSt:  st.sawSt || kind == dtd.EdgeSTAR,
				length: st.length + 1,
			}
			arena = append(arena, next)
			if len(out) < e.maxCands && e.accepts(next, to, fl) {
				out = append(out, e.materialize(arena, int32(len(arena)-1), fl))
			}
		}
		switch prod.Kind {
		case dtd.KindStr:
			// Only flavorSTR may end here, handled on arrival.
			continue
		case dtd.KindEmpty:
			continue
		case dtd.KindConcat:
			occ := map[string]int{}
			for _, c := range prod.Children {
				occ[c]++
				pos := 0
				if prod.Occurrences(c) > 1 {
					pos = occ[c]
				}
				extend(xpath.Step{Label: c, Pos: pos}, slot{label: c, occ: occ[c]}, dtd.EdgeAND, false, false)
			}
		case dtd.KindDisj:
			if fl != flavorOR {
				continue // OR edges are only legal on OR paths
			}
			for _, c := range prod.Children {
				extend(xpath.Step{Label: c}, slot{label: c, occ: 1}, dtd.EdgeOR, true, false)
			}
		case dtd.KindStar:
			if fl == flavorOR {
				continue // STAR edges are illegal on OR paths
			}
			c := prod.Children[0]
			// Pinned positions (legal on any non-OR path).
			for p := 1; p <= e.maxPin; p++ {
				extend(xpath.Step{Label: c, Pos: p}, slot{label: c, occ: p}, dtd.EdgeSTAR, false, false)
			}
			// The unpinned iterator, once, for STAR paths.
			if fl == flavorSTAR && !st.sawIt {
				extend(xpath.Step{Label: c}, slot{label: c, occ: 0}, dtd.EdgeSTAR, false, true)
			}
		}
	}
	return out, false
}

// accepts reports whether the state satisfies the flavor at its
// endpoint.
func (e *enumerator) accepts(st bfsState, to string, fl flavor) bool {
	switch fl {
	case flavorAND:
		return st.at == to && !st.sawOR
	case flavorOR:
		return st.at == to && st.sawOR && !st.sawSt
	case flavorSTAR:
		return st.at == to && st.sawIt && !st.sawOR
	case flavorSTR:
		prod, ok := e.tgt.Prods[st.at]
		return ok && prod.Kind == dtd.KindStr && !st.sawOR
	}
	return false
}

// materialize walks the parent chain of the accepted state and builds
// the candidate's path, slots and kinds slices — the only per-candidate
// allocations of the enumeration.
func (e *enumerator) materialize(arena []bfsState, idx int32, fl flavor) candidate {
	n := int(arena[idx].length)
	c := candidate{
		path:  xpath.Path{Steps: make([]xpath.Step, n)},
		slots: make([]slot, n),
		kinds: make([]dtd.EdgeKind, n),
	}
	for i := idx; i >= 0 && arena[i].parent >= 0; i = arena[i].parent {
		n--
		c.path.Steps[n] = arena[i].step
		c.slots[n] = arena[i].sl
		c.kinds[n] = arena[i].kind
	}
	if fl == flavorSTR {
		c.path.Text = true
	}
	return c
}

// textOnlyCandidate returns the zero-step text() path for a str edge
// whose parent maps to a str-typed target.
func (e *enumerator) textOnlyCandidate(from string) (candidate, bool) {
	prod, ok := e.tgt.Prods[from]
	if !ok || prod.Kind != dtd.KindStr {
		return candidate{}, false
	}
	return candidate{path: xpath.Path{Text: true}}, true
}

// strCandidates enumerates str-edge paths from a target type: the
// text-only path when the type itself is str-typed, plus AND paths to
// str-typed elements.
func (e *enumerator) strCandidates(from string) []candidate {
	var out []candidate
	if c, ok := e.textOnlyCandidate(from); ok {
		out = append(out, c)
	}
	out = append(out, e.paths(from, "", flavorSTR)...)
	return out
}
