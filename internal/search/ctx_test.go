package search_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dtd"
	"repro/internal/search"
	"repro/internal/workload"
)

// bigPair returns a search problem far too large to solve in a few
// milliseconds: two independent synthetic schemas under the
// unrestricted matrix with the exhaustive heuristic.
func bigPair(t *testing.T) (src, tgt *dtd.DTD) {
	t.Helper()
	src = workload.MustSyntheticDTD(rand.New(rand.NewSource(41)), 120)
	tgt = workload.MustSyntheticDTD(rand.New(rand.NewSource(97)), 150)
	return src, tgt
}

// TestFindCtxAlreadyCanceled: a context canceled before the call
// returns immediately with ErrCanceled and an empty (but non-nil)
// result, without touching the search problem.
func TestFindCtxAlreadyCanceled(t *testing.T) {
	src, tgt := bigPair(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := search.FindCtx(ctx, src, tgt, nil, search.Options{Heuristic: search.Exact})
	elapsed := time.Since(start)
	if !errors.Is(err, search.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v should also match context.Canceled", err)
	}
	if res == nil {
		t.Fatal("result is nil; want empty partial stats")
	}
	if res.Embedding != nil || res.Exhausted {
		t.Errorf("canceled-before-start result claims progress: %+v", res)
	}
	// The acceptance bound is 10ms; allow slack for loaded CI machines.
	if elapsed > 100*time.Millisecond {
		t.Errorf("already-canceled FindCtx took %s", elapsed)
	}
}

// TestFindCtxExpiredDeadline: an already-expired deadline behaves like
// a pre-canceled context but yields the deadline error.
func TestFindCtxExpiredDeadline(t *testing.T) {
	src, tgt := bigPair(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := search.FindCtx(ctx, src, tgt, nil, search.Options{Heuristic: search.Exact})
	if !errors.Is(err, search.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v should also match context.DeadlineExceeded", err)
	}
	if res == nil {
		t.Fatal("result is nil; want empty partial stats")
	}
}

// TestFindCtxShortDeadline: a few-millisecond deadline on a large
// workload stops the search mid-flight with ErrDeadline and partial
// progress statistics instead of running to completion.
func TestFindCtxShortDeadline(t *testing.T) {
	src, tgt := bigPair(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := search.FindCtx(ctx, src, tgt, nil, search.Options{Heuristic: search.Exact})
	elapsed := time.Since(start)
	if err == nil {
		// The pair is sized so that exhaustive search cannot finish in
		// 5ms; a nil error means cancellation never propagated.
		t.Fatalf("search completed under a 5ms deadline (elapsed %s, result %+v)", elapsed, res)
	}
	if !errors.Is(err, search.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if res == nil {
		t.Fatal("result is nil; want partial stats")
	}
	if res.Exhausted {
		t.Error("interrupted search must not report Exhausted")
	}
	// Cancellation is polled at loop boundaries; the search must wind
	// down promptly once the deadline fires.
	if elapsed > 5*time.Second {
		t.Errorf("search took %s to honor a 5ms deadline", elapsed)
	}
}

// TestFindCtxParallelCancel: cancellation mid-run reaches all restart
// workers on the parallel path. Run with -race to check the
// cancellation plumbing for data races.
func TestFindCtxParallelCancel(t *testing.T) {
	src, tgt := bigPair(t)
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(5*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()
	res, err := search.FindCtx(ctx, src, tgt, nil, search.Options{
		Heuristic:   search.Random,
		Seed:        3,
		MaxRestarts: 1 << 20,
		Parallel:    4,
	})
	if err == nil {
		t.Fatalf("parallel search outran cancellation (result %+v)", res)
	}
	if !errors.Is(err, search.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil {
		t.Fatal("result is nil; want partial stats")
	}
	if res.Exhausted {
		t.Error("canceled parallel search must not report Exhausted")
	}
}

// TestFindCtxBackgroundMatchesFind: with a background context, FindCtx
// is Find — the Figure 1 embedding is still found.
func TestFindCtxBackgroundMatchesFind(t *testing.T) {
	res, err := search.FindCtx(context.Background(),
		workload.ClassDTD(), workload.SchoolDTD(), nil,
		search.Options{Heuristic: search.Random, Seed: 1, MaxRestarts: 60})
	if err != nil {
		t.Fatalf("FindCtx: %v", err)
	}
	if res.Embedding == nil {
		t.Fatal("no embedding found with background context")
	}
	if err := res.Embedding.Validate(nil); err != nil {
		t.Errorf("embedding invalid: %v", err)
	}
}
