package search

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
)

// Rejections counts candidate rejections by constraint class. The
// classes partition why the search discards work (ROADMAP item 4's
// diagnostic instrument):
//
//   - LambdaEmpty: a source type had no admissible λ candidates at all
//     (the similarity matrix offers nothing for it);
//   - PathEmpty: a production edge had no candidate target paths under
//     a chosen λ (the path type condition ruled every path out);
//   - PrefixFree: candidate path pairs rejected by the prefix-freeness
//     (or OR-divergence) check;
//   - LocalSelect: productions whose candidates admitted no mutually
//     prefix-free selection (the backtracking over pairCompat failed);
//   - Conflict: IndepSet local options discarded because their λ
//     disagreed with the partial assignment.
type Rejections struct {
	LambdaEmpty int `json:"lambda_empty"`
	PathEmpty   int `json:"path_empty"`
	PrefixFree  int `json:"prefix_free"`
	LocalSelect int `json:"local_select"`
	Conflict    int `json:"conflict"`
}

// Total sums all rejection classes.
func (r Rejections) Total() int {
	return r.LambdaEmpty + r.PathEmpty + r.PrefixFree + r.LocalSelect + r.Conflict
}

// add accumulates o into r.
func (r *Rejections) add(o Rejections) {
	r.LambdaEmpty += o.LambdaEmpty
	r.PathEmpty += o.PathEmpty
	r.PrefixFree += o.PrefixFree
	r.LocalSelect += o.LocalSelect
	r.Conflict += o.Conflict
}

// String renders the counts as key=value pairs, omitting zeros ("none"
// when all are zero).
func (r Rejections) String() string {
	s := ""
	app := func(k string, v int) {
		if v == 0 {
			return
		}
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, v)
	}
	app("lambda_empty", r.LambdaEmpty)
	app("path_empty", r.PathEmpty)
	app("prefix_free", r.PrefixFree)
	app("local_select", r.LocalSelect)
	app("conflict", r.Conflict)
	if s == "" {
		return "none"
	}
	return s
}

// Restart outcomes recorded in RestartRecord.Outcome.
const (
	// OutcomeFound: the restart produced a valid embedding.
	OutcomeFound = "found"
	// OutcomeExhausted: the restart's candidate space was fully
	// explored without success.
	OutcomeExhausted = "exhausted"
	// OutcomeStepBudget: the restart hit MaxSteps.
	OutcomeStepBudget = "step_budget"
	// OutcomeCanceled: the context ended mid-restart.
	OutcomeCanceled = "canceled"
	// OutcomeNoOptions: IndepSet found a production with no local
	// options at all.
	OutcomeNoOptions = "no_options"
	// OutcomeConflict: IndepSet's greedy assembly dead-ended on λ
	// conflicts.
	OutcomeConflict = "conflict"
	// OutcomeInvalid: IndepSet assembled a full selection that failed
	// the independent validity checker.
	OutcomeInvalid = "invalid"
)

// RestartRecord is one restart's entry in the explainability ledger
// (Options.Explain): what the attempt tried, how far it got, and why
// its candidates died.
type RestartRecord struct {
	// Restart is the restart index; Worker the parallel worker that ran
	// it (0 in sequential modes).
	Restart int `json:"restart"`
	Worker  int `json:"worker"`
	// Heuristic and Seed reproduce the attempt.
	Heuristic string `json:"heuristic"`
	Seed      int64  `json:"seed"`
	// Steps is the backtracking steps this restart consumed.
	Steps int `json:"steps"`
	// PlacementDepth is the peak number of λ assignments held at once —
	// how deep into the source schema the partial embedding got.
	PlacementDepth int `json:"placement_depth"`
	// FrontierPeak is the largest BFS arena observed by this restart's
	// worker so far (path enumeration breadth; monotone per worker).
	FrontierPeak int `json:"frontier_peak"`
	// Rejections breaks down why candidates died during this restart.
	// PrefixFree counts accrue to the restart that first computed a
	// local selection; memoized replays do not re-count them.
	Rejections Rejections `json:"rejections"`
	// Outcome is one of the Outcome* constants.
	Outcome string `json:"outcome"`
	// ElapsedMS is the restart's wall-clock cost in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// Failure classes cached alongside nil localPaths memo entries so
// replayed failures still count toward the right rejection class.
const (
	failNone uint8 = iota
	failPathEmpty
	failLocalSelect
)

// attemptRec accumulates one restart's explainability counters. It is
// nil when Options.Explain is off, so every hot-path hook is a single
// nil check.
type attemptRec struct {
	rej      Rejections
	depth    int
	lastFail uint8
	outcome  string // set by assembleIndepSet; attempt outcomes are derived
}

// countFail maps a cached localPaths failure class onto its rejection
// counter.
func (r *attemptRec) countFail(class uint8) {
	switch class {
	case failPathEmpty:
		r.rej.PathEmpty++
	case failLocalSelect:
		r.rej.LocalSelect++
	}
}

// fail records a localPaths failure: the class counter and lastFail
// (which localPathsFor caches alongside the nil memo entry). Nil-safe
// so localPaths calls it unconditionally.
func (r *attemptRec) fail(class uint8) {
	if r == nil {
		return
	}
	r.lastFail = class
	r.countFail(class)
}

// noteDepth tracks the peak λ-assignment count.
func (r *attemptRec) noteDepth(n int) {
	if n > r.depth {
		r.depth = n
	}
}

// finishRestart turns the searcher's current attemptRec into a
// RestartRecord, folds it into the result (bounded ledger + unbounded
// aggregate rejections) and emits it on the search.restart event
// stream. No-op when recording is off.
func (s *searcher) finishRestart(res *Result, restart, worker int, emb bool, exhausted bool, elapsed time.Duration, stepsBefore int) {
	if s.rec == nil {
		return
	}
	rec := s.makeRecord(restart, worker, emb, exhausted, elapsed, stepsBefore)
	res.Rejections.add(rec.Rejections)
	if len(res.Ledger) < s.opts.MaxLedger {
		res.Ledger = append(res.Ledger, rec)
	}
	s.emitRestart(rec)
}

// makeRecord snapshots and resets the searcher's attemptRec as one
// ledger record. Callers guarantee s.rec != nil.
func (s *searcher) makeRecord(restart, worker int, emb bool, exhausted bool, elapsed time.Duration, stepsBefore int) RestartRecord {
	rec := RestartRecord{
		Restart:        restart,
		Worker:         worker,
		Heuristic:      s.opts.Heuristic.String(),
		Seed:           s.seed,
		Steps:          s.steps - stepsBefore,
		PlacementDepth: s.rec.depth,
		FrontierPeak:   s.enum.frontier,
		Rejections:     s.rec.rej,
		ElapsedMS:      float64(elapsed) / float64(time.Millisecond),
	}
	rec.Rejections.PrefixFree = s.enum.rejects - s.rejectsMark
	s.rejectsMark = s.enum.rejects
	switch {
	case emb:
		rec.Outcome = OutcomeFound
	case s.rec.outcome != "":
		rec.Outcome = s.rec.outcome
	case s.stopped:
		rec.Outcome = OutcomeCanceled
	case exhausted:
		rec.Outcome = OutcomeExhausted
	default:
		rec.Outcome = OutcomeStepBudget
	}
	// Reset for the next restart on this searcher.
	s.rec.rej = Rejections{}
	s.rec.depth = 0
	s.rec.outcome = ""
	return rec
}

// emitRestart publishes one ledger record on the context's emitter as
// a search.restart event.
func (s *searcher) emitRestart(rec RestartRecord) {
	if s.em == nil {
		return
	}
	ev := obs.NewEvent("search.restart")
	if s.reqID != "" {
		ev.Str("request_id", s.reqID)
	}
	ev.Int("restart", int64(rec.Restart)).
		Int("worker", int64(rec.Worker)).
		Str("heuristic", rec.Heuristic).
		Int("seed", rec.Seed).
		Int("steps", int64(rec.Steps)).
		Int("placement_depth", int64(rec.PlacementDepth)).
		Int("frontier_peak", int64(rec.FrontierPeak)).
		Int("rej_lambda_empty", int64(rec.Rejections.LambdaEmpty)).
		Int("rej_path_empty", int64(rec.Rejections.PathEmpty)).
		Int("rej_prefix_free", int64(rec.Rejections.PrefixFree)).
		Int("rej_local_select", int64(rec.Rejections.LocalSelect)).
		Int("rej_conflict", int64(rec.Rejections.Conflict)).
		Str("outcome", rec.Outcome).
		Float("elapsed_ms", rec.ElapsedMS)
	s.em.Emit(ev)
}

// WriteLedger renders the explainability ledger as an aligned table:
// one row per recorded restart, followed by the aggregate rejection
// breakdown (which covers every restart, including ones past the
// ledger bound).
func WriteLedger(w io.Writer, res *Result) {
	if res == nil || (len(res.Ledger) == 0 && res.Rejections.Total() == 0) {
		fmt.Fprintln(w, "ledger: empty (run with Explain / -explain)")
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "RESTART\tWORKER\tOUTCOME\tSTEPS\tDEPTH\tFRONTIER\tREJECTIONS\tMS")
	for _, r := range res.Ledger {
		fmt.Fprintf(tw, "%d\t%d\t%s\t%d\t%d\t%d\t%s\t%.1f\n",
			r.Restart, r.Worker, r.Outcome, r.Steps, r.PlacementDepth,
			r.FrontierPeak, r.Rejections, r.ElapsedMS)
	}
	tw.Flush()
	fmt.Fprintf(w, "totals: %d restart(s) recorded, rejections: %s\n",
		len(res.Ledger), res.Rejections)
}
