package search

import (
	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/xpath"
)

// localEdge pairs a source edge with its candidate target paths.
type localEdge struct {
	ref   embedding.EdgeRef
	cands []candidate
}

// localResult is a localPaths answer as cached by searchCache.local:
// one target path per source edge, nil when no selection exists (a
// cacheable answer in its own right).
type localResult = map[embedding.EdgeRef]xpath.Path

// localPaths solves the prefix-free path problem for one source
// production (§5.1/5.2): given λ(a) and λ for a's children, pick one
// candidate path per edge such that sibling paths are mutually prefix
// free (and, for disjunctions, diverge at OR edges). It returns nil
// when no selection exists within the enumerated candidates.
//
// The result is a pure function of (a, λ(a), λ(a's children)) given
// fixed enumeration bounds; callers memoize it through
// searcher.localPathsFor and must treat the returned map as read-only.
// A non-nil rec (Options.Explain) receives the failure's rejection
// class when no selection exists.
func localPaths(e *enumerator, src *dtd.DTD, a string, lam map[string]string, rec *attemptRec) localResult {
	prod := src.Prods[a]
	from := lam[a]
	switch prod.Kind {
	case dtd.KindEmpty:
		return localResult{}

	case dtd.KindStr:
		cands := e.strCandidates(from)
		if len(cands) == 0 {
			rec.fail(failPathEmpty)
			return nil
		}
		return localResult{
			embedding.Ref(a, embedding.StrChild): cands[0].path,
		}

	case dtd.KindStar:
		b := prod.Children[0]
		cands := e.paths(from, lam[b], flavorSTAR)
		if len(cands) == 0 {
			rec.fail(failPathEmpty)
			return nil
		}
		return localResult{
			embedding.Ref(a, b): cands[0].path,
		}

	case dtd.KindConcat, dtd.KindDisj:
		fl := flavorAND
		if prod.Kind == dtd.KindDisj {
			fl = flavorOR
		}
		var edges []localEdge
		occ := map[string]int{}
		for _, b := range prod.Children {
			occ[b]++
			cands := e.paths(from, lam[b], fl)
			if len(cands) == 0 {
				rec.fail(failPathEmpty)
				return nil // an edge with no candidates dooms the selection
			}
			edges = append(edges, localEdge{
				ref:   embedding.EdgeRef{Parent: a, Child: b, Occ: occ[b]},
				cands: cands,
			})
		}
		// Fewest candidates first: fail fast, branch late.
		for i := 1; i < len(edges); i++ {
			for j := i; j > 0 && len(edges[j].cands) < len(edges[j-1].cands); j-- {
				edges[j], edges[j-1] = edges[j-1], edges[j]
			}
		}
		compat := pairCompat(edges, prod.Kind == dtd.KindDisj, &e.rejects)
		chosen := make([]int, len(edges))
		if !pickCompatible(edges, compat, chosen, 0, e.stop) {
			rec.fail(failLocalSelect)
			return nil
		}
		out := make(localResult, len(edges))
		for i, ed := range edges {
			out[ed.ref] = ed.cands[chosen[i]].path
		}
		return out
	}
	return nil
}

// bitset is a fixed-size bit vector used for the pairwise candidate
// compatibility tables.
type bitset []uint64

func (b bitset) set(i int)       { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) test(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// pairCompat precomputes, for every edge pair j < i, a bitset whose bit
// cj*len(cands_i)+ci records whether candidate cj of edge j and
// candidate ci of edge i satisfy the prefix-free (and OR-divergence)
// condition. The backtracking then tests compatibility in O(1) per pair
// instead of re-walking the candidate slots at every node. rejects
// tallies the incompatible pairs (the xse_search_prefix_rejections_total
// metric) in a plain int the caller flushes at search end.
func pairCompat(edges []localEdge, disj bool, rejects *int) []bitset {
	n := len(edges)
	if n < 2 {
		return nil
	}
	compat := make([]bitset, n*n)
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			ci := edges[i].cands
			bs := make(bitset, (len(edges[j].cands)*len(ci)+63)/64)
			for x, a := range edges[j].cands {
				for y, b := range ci {
					if compatible(a, b, disj) {
						bs.set(x*len(ci) + y)
					} else {
						*rejects++
					}
				}
			}
			compat[j*n+i] = bs
		}
	}
	return compat
}

// pickCompatible backtracks over candidate indices enforcing pairwise
// compatibility via the precomputed bitsets. A non-nil stop aborts the
// backtracking (reported as "no selection"; the caller distinguishes
// cancellation separately).
func pickCompatible(edges []localEdge, compat []bitset, chosen []int, i int, stop func() bool) bool {
	n := len(edges)
	if i == n {
		return true
	}
	if stop != nil && stop() {
		return false
	}
	ci := len(edges[i].cands)
	for c := 0; c < ci; c++ {
		ok := true
		for j := 0; j < i; j++ {
			if !compat[j*n+i].test(chosen[j]*ci + c) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		chosen[i] = c
		if pickCompatible(edges, compat, chosen, i+1, stop) {
			return true
		}
	}
	return false
}

// compatible checks the prefix-free condition between two sibling
// candidates, and OR-edge divergence for disjunction siblings.
func compatible(a, b candidate, disj bool) bool {
	n := len(a.slots)
	if len(b.slots) < n {
		n = len(b.slots)
	}
	for i := 0; i < n; i++ {
		if a.slots[i] != b.slots[i] {
			if disj {
				return a.kinds[i] == dtd.EdgeOR
			}
			return true
		}
	}
	return false // one is a prefix of the other (or equal)
}
