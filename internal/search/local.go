package search

import (
	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/xpath"
)

// localEdge pairs a source edge with its candidate target paths.
type localEdge struct {
	ref   embedding.EdgeRef
	cands []candidate
}

// localPaths solves the prefix-free path problem for one source
// production (§5.1/5.2): given λ(a) and λ for a's children, pick one
// candidate path per edge such that sibling paths are mutually prefix
// free (and, for disjunctions, diverge at OR edges). It returns nil
// when no selection exists within the enumerated candidates.
func localPaths(e *enumerator, src *dtd.DTD, a string, lam map[string]string) map[embedding.EdgeRef]xpath.Path {
	prod := src.Prods[a]
	from := lam[a]
	switch prod.Kind {
	case dtd.KindEmpty:
		return map[embedding.EdgeRef]xpath.Path{}

	case dtd.KindStr:
		cands := e.strCandidates(from)
		if len(cands) == 0 {
			return nil
		}
		return map[embedding.EdgeRef]xpath.Path{
			embedding.Ref(a, embedding.StrChild): cands[0].path,
		}

	case dtd.KindStar:
		b := prod.Children[0]
		cands := e.paths(from, lam[b], flavorSTAR)
		if len(cands) == 0 {
			return nil
		}
		return map[embedding.EdgeRef]xpath.Path{
			embedding.Ref(a, b): cands[0].path,
		}

	case dtd.KindConcat, dtd.KindDisj:
		fl := flavorAND
		if prod.Kind == dtd.KindDisj {
			fl = flavorOR
		}
		var edges []localEdge
		occ := map[string]int{}
		for _, b := range prod.Children {
			occ[b]++
			edges = append(edges, localEdge{
				ref:   embedding.EdgeRef{Parent: a, Child: b, Occ: occ[b]},
				cands: e.paths(from, lam[b], fl),
			})
		}
		// Fewest candidates first: fail fast, branch late.
		for i := 1; i < len(edges); i++ {
			for j := i; j > 0 && len(edges[j].cands) < len(edges[j-1].cands); j-- {
				edges[j], edges[j-1] = edges[j-1], edges[j]
			}
		}
		chosen := make([]candidate, len(edges))
		if !pickCompatible(edges, chosen, 0, prod.Kind == dtd.KindDisj, e.stop) {
			return nil
		}
		out := make(map[embedding.EdgeRef]xpath.Path, len(edges))
		for i, ed := range edges {
			out[ed.ref] = chosen[i].path
		}
		return out
	}
	return nil
}

// pickCompatible backtracks over candidate choices enforcing pairwise
// compatibility. A non-nil stop aborts the backtracking (reported as
// "no selection"; the caller distinguishes cancellation separately).
func pickCompatible(edges []localEdge, chosen []candidate, i int, disj bool, stop func() bool) bool {
	if i == len(edges) {
		return true
	}
	if stop != nil && stop() {
		return false
	}
	for _, c := range edges[i].cands {
		ok := true
		for j := 0; j < i; j++ {
			if !compatible(chosen[j], c, disj) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		chosen[i] = c
		if pickCompatible(edges, chosen, i+1, disj, stop) {
			return true
		}
	}
	return false
}

// compatible checks the prefix-free condition between two sibling
// candidates, and OR-edge divergence for disjunction siblings.
func compatible(a, b candidate, disj bool) bool {
	n := len(a.slots)
	if len(b.slots) < n {
		n = len(b.slots)
	}
	for i := 0; i < n; i++ {
		if a.slots[i] != b.slots[i] {
			if disj {
				return a.kinds[i] == dtd.EdgeOR
			}
			return true
		}
	}
	return false // one is a prefix of the other (or equal)
}
