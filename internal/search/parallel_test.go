package search_test

import (
	"testing"

	"repro/internal/dtd"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/workload"
)

// TestParallelSearch: parallel restarts find valid embeddings and agree
// with the sequential mode on impossibility.
func TestParallelSearch(t *testing.T) {
	src, tgt := workload.ClassDTD(), workload.SchoolDTD()
	res, err := search.Find(src, tgt, nil, search.Options{
		Heuristic: search.Random, Seed: 3, MaxRestarts: 60, Parallel: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding == nil {
		t.Fatalf("parallel search found nothing (restarts=%d)", res.Restarts)
	}
	if err := res.Embedding.Validate(nil); err != nil {
		t.Fatalf("parallel result invalid: %v", err)
	}
}

// TestParallelFigure1Shared: 8 workers on the Figure 1 class→school
// pair, across several seeds. Meaningful mostly under -race — the
// workers share the candidate cache with per-key single-flight — and
// every winning embedding must pass the independent validity checker.
func TestParallelFigure1Shared(t *testing.T) {
	src, tgt := workload.ClassDTD(), workload.SchoolDTD()
	for seed := int64(0); seed < 4; seed++ {
		reg := obs.NewRegistry()
		res, err := search.Find(src, tgt, nil, search.Options{
			Heuristic: search.Random, Seed: seed, MaxRestarts: 60, Parallel: 8,
			Obs: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Embedding == nil {
			t.Fatalf("seed %d: no embedding (restarts=%d)", seed, res.Restarts)
		}
		if err := res.Embedding.Validate(nil); err != nil {
			t.Fatalf("seed %d: invalid embedding: %v", seed, err)
		}
		hits := reg.Counter("xse_search_path_cache_hits_total", "").Value()
		misses := reg.Counter("xse_search_path_cache_misses_total", "").Value()
		if hits+misses == 0 {
			t.Errorf("seed %d: no path queries counted", seed)
		}
	}
}

// TestParallelRecursiveTarget: a recursive target that requires
// unfolding a cycle (the Figure 3(e) shape), hammered with 8 workers —
// the shared cache must serve the cyclic BFS queries correctly and the
// result must validate.
func TestParallelRecursiveTarget(t *testing.T) {
	src := dtd.MustNew("A",
		dtd.D("A", dtd.Concat("B", "C")),
		dtd.D("B", dtd.Empty()),
		dtd.D("C", dtd.Empty()))
	tgt := dtd.MustNew("A1",
		dtd.D("A1", dtd.Concat("B1")),
		dtd.D("B1", dtd.Concat("C1", "As")),
		dtd.D("C1", dtd.Empty()),
		dtd.D("As", dtd.Star("A1")))
	res, err := search.Find(src, tgt, nil, search.Options{
		Heuristic: search.Random, Seed: 2, MaxRestarts: 40, Parallel: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding == nil {
		t.Fatalf("no embedding on the recursive target (restarts=%d)", res.Restarts)
	}
	if err := res.Embedding.Validate(nil); err != nil {
		t.Fatalf("invalid embedding: %v", err)
	}
}

// TestParallelSearchRace is meaningful mostly under -race: hammer the
// worker pool with an unsatisfiable pair.
func TestParallelSearchRace(t *testing.T) {
	scs := workload.Figure3()
	impossible := scs[0].Build() // concat into disjunction: no embedding
	res, err := search.Find(impossible.Source, impossible.Target, nil, search.Options{
		Heuristic: search.Random, Seed: 1, MaxRestarts: 30, Parallel: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding != nil {
		t.Fatal("found an embedding where none exists")
	}
	if !res.Exhausted {
		t.Error("impossibility not reported")
	}
}
