package search_test

import (
	"testing"

	"repro/internal/search"
	"repro/internal/workload"
)

// TestParallelSearch: parallel restarts find valid embeddings and agree
// with the sequential mode on impossibility.
func TestParallelSearch(t *testing.T) {
	src, tgt := workload.ClassDTD(), workload.SchoolDTD()
	res, err := search.Find(src, tgt, nil, search.Options{
		Heuristic: search.Random, Seed: 3, MaxRestarts: 60, Parallel: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding == nil {
		t.Fatalf("parallel search found nothing (restarts=%d)", res.Restarts)
	}
	if err := res.Embedding.Validate(nil); err != nil {
		t.Fatalf("parallel result invalid: %v", err)
	}
}

// TestParallelSearchRace is meaningful mostly under -race: hammer the
// worker pool with an unsatisfiable pair.
func TestParallelSearchRace(t *testing.T) {
	scs := workload.Figure3()
	impossible := scs[0].Build() // concat into disjunction: no embedding
	res, err := search.Find(impossible.Source, impossible.Target, nil, search.Options{
		Heuristic: search.Random, Seed: 1, MaxRestarts: 30, Parallel: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding != nil {
		t.Fatal("found an embedding where none exists")
	}
	if !res.Exhausted {
		t.Error("impossibility not reported")
	}
}
