package search

import (
	"sync"
)

// sfCache is a search-scoped memo table with per-key single-flight.
// It has two modes, fixed at construction:
//
//   - sequential (parallel=false): a plain map, no locks — the cache is
//     owned by one goroutine (the sequential search loop, which already
//     shares it across restarts).
//   - parallel (parallel=true): a sync.Map of single-flight entries, so
//     two workers never duplicate the computation for the same key; the
//     second worker blocks until the first publishes its result.
//
// A computation reports whether it ran to completion; aborted results
// (a canceled search giving up mid-BFS) are returned to the caller but
// never cached, so a cache entry is always a complete, deterministic
// answer. The cache keeps no counters of its own: get reports hit/miss
// to the caller, which accumulates per-goroutine statistics without
// atomic traffic on the hot path.
type sfCache[K comparable, V any] struct {
	seq map[K]V  // sequential mode; nil in parallel mode
	par sync.Map // parallel mode: K -> *sfEntry[V]
}

type sfEntry[V any] struct {
	ready chan struct{} // closed when v/ok are published
	v     V
	ok    bool // false: computation aborted, entry withdrawn
}

func newSFCache[K comparable, V any](parallel bool) *sfCache[K, V] {
	c := &sfCache[K, V]{}
	if !parallel {
		c.seq = make(map[K]V)
	}
	return c
}

// get returns the cached value for key and whether it was a hit,
// computing and caching the value on a miss. compute returns the value
// and whether it ran to completion; incomplete values are passed
// through uncached.
func (c *sfCache[K, V]) get(key K, compute func() (V, bool)) (V, bool) {
	if c.seq != nil {
		if v, ok := c.seq[key]; ok {
			return v, true
		}
		v, complete := compute()
		if complete {
			c.seq[key] = v
		}
		return v, false
	}
	for {
		if e, ok := c.par.Load(key); ok {
			ent := e.(*sfEntry[V])
			<-ent.ready
			if ent.ok {
				return ent.v, true
			}
			// The leader aborted (search canceled); compute uncached —
			// this caller is about to observe the same cancellation.
			v, _ := compute()
			return v, false
		}
		ent := &sfEntry[V]{ready: make(chan struct{})}
		if _, loaded := c.par.LoadOrStore(key, ent); loaded {
			continue // lost the publish race; wait on the winner
		}
		v, complete := compute()
		ent.v, ent.ok = v, complete
		if !complete {
			c.par.Delete(key)
		}
		close(ent.ready)
		return v, false
	}
}

// searchCache holds the path-candidate memo shared by every enumerator
// and every restart (and, in parallel mode, every worker) of one
// FindCtx call, keyed by (from, to, flavor) BFS query. The localPaths
// memo is deliberately NOT here: it is per-searcher (see
// searcher.localPathsFor) — a pure function recomputes identically on
// every goroutine, and a shared concurrent map costs more in key
// boxing and hashing than the duplicated backtracking it saves.
type searchCache struct {
	paths *sfCache[enumKey, []candidate]
}

func newSearchCache(parallel bool) *searchCache {
	return &searchCache{
		paths: newSFCache[enumKey, []candidate](parallel),
	}
}
