package search

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/obs"
	"repro/internal/xpath"
)

// Typed cancellation errors returned by FindCtx. They wrap the
// corresponding context errors, so errors.Is(err, context.Canceled)
// and errors.Is(err, search.ErrCanceled) both hold.
var (
	// ErrDeadline reports that the context deadline expired before the
	// search concluded. The accompanying Result carries the partial
	// progress made (restarts completed, steps taken, paths enumerated,
	// and any embedding already found).
	ErrDeadline = fmt.Errorf("search: deadline exceeded: %w", context.DeadlineExceeded)
	// ErrCanceled reports that the context was canceled mid-search.
	ErrCanceled = fmt.Errorf("search: canceled: %w", context.Canceled)
)

// ctxError maps a context error to the package's typed errors.
func ctxError(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrDeadline
	}
	return ErrCanceled
}

// Heuristic selects the embedding-search strategy.
type Heuristic int

const (
	// Random assembles local embeddings visiting candidate target types
	// in random order, with random restarts (the VLDB'05 Random
	// approach).
	Random Heuristic = iota
	// QualityOrdered visits candidates in decreasing att order, so
	// higher-quality mappings are tried first.
	QualityOrdered
	// IndepSet enumerates local mappings per production and assembles a
	// consistent set greedily by weight, a stand-in for the
	// maximum-independent-set reduction of the paper (the quadratic-
	// over-a-sphere heuristic of Busygin et al. is closed source).
	IndepSet
	// Exact searches the full candidate space with backtracking. It is
	// complete relative to the path-enumeration bounds: on nonrecursive
	// targets with the default bounds, failure proves no embedding
	// exists; on recursive targets it is complete up to MaxPathLen.
	Exact
)

// String names the heuristic.
func (h Heuristic) String() string {
	switch h {
	case Random:
		return "Random"
	case QualityOrdered:
		return "QualityOrdered"
	case IndepSet:
		return "IndepSet"
	case Exact:
		return "Exact"
	}
	return fmt.Sprintf("Heuristic(%d)", int(h))
}

// Options configures Find.
type Options struct {
	// Heuristic selects the strategy (default Random).
	Heuristic Heuristic
	// Seed drives the pseudo-random choices; runs are deterministic per
	// seed.
	Seed int64
	// MaxRestarts bounds random restarts (default 20; Exact ignores it).
	MaxRestarts int
	// MaxPathLen bounds enumerated path lengths (default: target size,
	// which is complete for nonrecursive targets and covers one cycle
	// unfolding otherwise).
	MaxPathLen int
	// MaxCandidates bounds candidate paths per (source edge, λ choice)
	// (default 24; Exact default 512).
	MaxCandidates int
	// MaxExpansions bounds BFS work per path query (default 4096; Exact
	// default 1<<17).
	MaxExpansions int
	// MaxPin bounds pinned star positions on AND paths (default 2).
	MaxPin int
	// MaxSteps bounds backtracking steps per attempt (default 100000;
	// Exact unlimited).
	MaxSteps int
	// LocalOptions bounds the per-production local mappings enumerated
	// by IndepSet (default 16).
	LocalOptions int
	// Parallel runs Random/QualityOrdered restarts on this many worker
	// goroutines (default 1, fully deterministic). With workers > 1 the
	// first successful restart wins, so which valid embedding is
	// returned may vary between runs; validity never does.
	Parallel int
	// Obs selects the metrics registry search counters and latency
	// histograms are recorded into: nil means obs.Default() (the
	// process registry exported by the CLIs), obs.Nop() disables
	// instrumentation. Counters are accumulated in plain per-goroutine
	// ints and flushed once per search, so the choice does not affect
	// the hot paths.
	Obs *obs.Registry
	// Explain enables the per-restart explainability ledger: every
	// restart records its heuristic, seed, steps, placement depth,
	// enumeration frontier peak and a rejection breakdown by constraint
	// class into Result.Ledger (bounded by MaxLedger), and — when the
	// context carries an obs.Emitter — emits a search.restart event.
	// Off by default: the disabled path costs one nil check per hook.
	Explain bool
	// MaxLedger bounds Result.Ledger entries (default 64; the earliest
	// restarts are kept — the aggregate Result.Rejections always covers
	// every restart).
	MaxLedger int
}

func (o Options) withDefaults() Options {
	if o.MaxRestarts == 0 {
		o.MaxRestarts = 20
	}
	if o.MaxCandidates == 0 {
		if o.Heuristic == Exact {
			o.MaxCandidates = 512
		} else {
			o.MaxCandidates = 24
		}
	}
	if o.MaxExpansions == 0 {
		if o.Heuristic == Exact {
			o.MaxExpansions = 1 << 17
		} else {
			o.MaxExpansions = 4096
		}
	}
	if o.MaxPin == 0 {
		o.MaxPin = 2
	}
	if o.MaxSteps == 0 {
		if o.Heuristic == Exact {
			o.MaxSteps = int(^uint(0) >> 1)
		} else {
			o.MaxSteps = 100000
		}
	}
	if o.LocalOptions == 0 {
		o.LocalOptions = 16
	}
	if o.MaxLedger == 0 {
		o.MaxLedger = 64
	}
	return o
}

// Result reports the outcome of a search.
type Result struct {
	// Embedding is the found embedding, nil when none was found.
	Embedding *embedding.Embedding
	// Quality is qual(σ, att) of the found embedding.
	Quality float64
	// Restarts counts restarts consumed.
	Restarts int
	// Steps counts backtracking steps across all restarts.
	Steps int
	// Exhausted is true when the search space (within bounds) was fully
	// explored without success — for Exact on nonrecursive targets this
	// proves no embedding exists within the bounds.
	Exhausted bool
	// PathsEnumerated counts candidate target paths produced by real
	// BFS enumerations across the search (all workers); queries served
	// from the shared candidate cache do not re-count.
	//
	// The cache-effectiveness counters that used to live here
	// (path-query and localPaths hits/misses) are now registry metrics
	// — xse_search_path_cache_*, xse_search_localpaths_* in the
	// Options.Obs registry — so the -v summaries and /metrics scrapes
	// read one source of truth.
	PathsEnumerated int
	// Elapsed is the wall-clock search time.
	Elapsed time.Duration
	// Ledger holds per-restart explainability records when
	// Options.Explain is set (bounded by Options.MaxLedger, earliest
	// restarts first); nil otherwise.
	Ledger []RestartRecord `json:"ledger,omitempty"`
	// Rejections aggregates rejection counts by constraint class across
	// every restart (never truncated with the ledger); all zero unless
	// Options.Explain is set.
	Rejections Rejections `json:"rejections"`
}

// metrics is the search package's registry slice, resolved once per
// FindCtx. All fields are nil under obs.Nop(), making every flush a
// no-op.
type metrics struct {
	found, notFound, canceled *obs.Counter
	restarts, steps           *obs.Counter
	enumerated, expansions    *obs.Counter
	prefixRejects             *obs.Counter
	pathHits, pathMisses      *obs.Counter
	localHits, localMisses    *obs.Counter
	latency                   *obs.Histogram
}

func newMetrics(r *obs.Registry) metrics {
	r = obs.OrDefault(r)
	return metrics{
		found:    r.CounterL("xse_search_total", "Embedding searches by outcome.", "outcome", "found"),
		notFound: r.CounterL("xse_search_total", "Embedding searches by outcome.", "outcome", "notfound"),
		canceled: r.CounterL("xse_search_total", "Embedding searches by outcome.", "outcome", "canceled"),
		restarts: r.Counter("xse_search_restarts_total", "Search restarts consumed."),
		steps:    r.Counter("xse_search_steps_total", "Backtracking steps across all restarts and workers."),
		enumerated: r.Counter("xse_search_paths_enumerated_total",
			"Candidate target paths produced by real BFS enumerations."),
		expansions: r.Counter("xse_search_bfs_expansions_total",
			"Arena-BFS states expanded during candidate-path enumeration."),
		prefixRejects: r.Counter("xse_search_prefix_rejections_total",
			"Candidate pairs rejected by the prefix-freeness (or OR-divergence) check."),
		pathHits:   r.Counter("xse_search_path_cache_hits_total", "Path-candidate queries answered from the search-scoped cache."),
		pathMisses: r.Counter("xse_search_path_cache_misses_total", "Path-candidate queries computed by a BFS enumeration."),
		localHits:  r.Counter("xse_search_localpaths_hits_total", "localPaths selections answered from the per-worker memo."),
		localMisses: r.Counter("xse_search_localpaths_misses_total",
			"localPaths selections computed by backtracking over candidates."),
		latency: r.Histogram("xse_search_seconds", "Wall-clock embedding-search latency.", obs.LatencyBuckets),
	}
}

// Find searches for a valid schema embedding σ : src → tgt w.r.t. att.
// A nil att behaves as the unrestricted matrix (all pairs similar).
// Every returned embedding has passed the independent validity checker.
// Find never gives up on its own beyond the Options bounds; use
// FindCtx to impose a deadline or cancellation.
func Find(src, tgt *dtd.DTD, att *embedding.SimMatrix, opts Options) (*Result, error) {
	return FindCtx(context.Background(), src, tgt, att, opts)
}

// FindCtx is Find under a context: the search checks ctx at loop
// boundaries (restarts, backtracking steps, path-enumeration
// expansions) and stops early when it is done, returning a typed
// ErrDeadline or ErrCanceled together with a non-nil Result holding
// the partial progress made so far (restarts completed, steps taken,
// paths enumerated, best embedding found). An already-expired context
// returns immediately without touching the schemas.
func FindCtx(ctx context.Context, src, tgt *dtd.DTD, att *embedding.SimMatrix, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return &Result{}, ctxError(err)
	}
	opts = opts.withDefaults()
	if err := src.Check(); err != nil {
		return nil, err
	}
	if err := tgt.Check(); err != nil {
		return nil, err
	}
	if att == nil {
		att = embedding.UniformSim(src, tgt)
	}
	maxLen := opts.MaxPathLen
	if maxLen == 0 {
		maxLen = tgt.Size()
		if maxLen < 4 {
			maxLen = 4
		}
	}
	// The candidate cache is shared by every restart and, in parallel
	// mode, every worker of this search; the localPaths memo is
	// per-searcher (per-goroutine), shared across restarts.
	parallel := opts.Parallel > 1 &&
		(opts.Heuristic == Random || opts.Heuristic == QualityOrdered)
	s := &searcher{
		ctx:   ctx,
		src:   src,
		tgt:   tgt,
		att:   att,
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
		cache: newSearchCache(parallel),
		cands: candidateTable(src, tgt, att),
		local: make(map[string]localResult),
	}
	s.enum = newEnumerator(tgt, maxLen, opts.MaxCandidates, opts.MaxExpansions, opts.MaxPin, s.cache)
	s.enum.stop = s.canceled
	s.seed = opts.Seed
	if opts.Explain {
		s.rec = &attemptRec{}
		s.localFail = make(map[string]uint8)
		s.em = obs.EmitterFrom(ctx)
		s.reqID = obs.RequestIDFrom(ctx)
	}
	s.tr = obs.TracerFrom(ctx)
	if s.tr != nil {
		_, s.span = obs.StartSpan(ctx, "search.find")
		s.span.Attr("heuristic", opts.Heuristic.String())
		s.span.AttrInt("seed", opts.Seed)
	}
	m := newMetrics(opts.Obs)
	start := time.Now()
	res := s.run()
	res.Elapsed = time.Since(start)
	// Parallel workers aggregated their counters into the root
	// searcher already; the root's own counters cover the sequential
	// modes. Everything is flushed to the registry in one pass here so
	// the hot loops only ever touch plain per-goroutine ints.
	res.PathsEnumerated += s.enum.enumerated
	m.restarts.Add(uint64(res.Restarts))
	m.steps.Add(uint64(res.Steps))
	m.enumerated.Add(uint64(res.PathsEnumerated))
	m.expansions.Add(uint64(s.enum.expansions))
	m.prefixRejects.Add(uint64(s.enum.rejects))
	m.pathHits.Add(uint64(s.enum.hits))
	m.pathMisses.Add(uint64(s.enum.misses))
	m.localHits.Add(uint64(s.localHits))
	m.localMisses.Add(uint64(s.localMisses))
	m.latency.Observe(res.Elapsed.Seconds())
	if s.span != nil {
		s.span.AttrInt("restarts", int64(res.Restarts))
		s.span.AttrInt("steps", int64(res.Steps))
		s.span.End()
	}
	if res.Embedding != nil {
		// A win that raced a late cancellation is still a win.
		if err := res.Embedding.Validate(att); err != nil {
			return nil, fmt.Errorf("search: internal error: found embedding fails validation: %w", err)
		}
		res.Quality = res.Embedding.Quality(att)
		m.found.Inc()
		return res, nil
	}
	if s.stopped || ctx.Err() != nil {
		res.Exhausted = false // an aborted search proves nothing
		m.canceled.Inc()
		return res, ctxError(ctx.Err())
	}
	m.notFound.Inc()
	return res, nil
}

type searcher struct {
	ctx      context.Context
	src, tgt *dtd.DTD
	att      *embedding.SimMatrix
	opts     Options
	rng      *rand.Rand
	enum     *enumerator
	steps    int

	// cache is the search-scoped memo shared across restarts and
	// workers; cands is the per-source-type λ-candidate table,
	// precomputed once per FindCtx and treated as read-only.
	cache *searchCache
	cands map[string][]string
	// local memoizes localPaths across this searcher's restarts, keyed
	// by (a, λ(a), λ(children)). It is per-goroutine by design: keyBuf
	// is reused so lookups are allocation-free, and a plain map avoids
	// the key-boxing and hashing overhead a shared concurrent map would
	// pay on every probe. localHits/localMisses count its lookups
	// (plain ints: parallel workers aggregate via outcomes).
	local                  map[string]localResult
	keyBuf                 []byte
	localHits, localMisses int

	// stopped latches the first observed cancellation; checkN
	// amortizes the ctx polls in hot loops.
	stopped bool
	checkN  uint

	// tr and span carry the optional tracer, resolved from the context
	// once per FindCtx so restart loops pay a nil check, not a context
	// walk. Both are nil when tracing is off.
	tr   *obs.Tracer
	span *obs.Span

	// Explainability state (Options.Explain; see ledger.go). rec
	// accumulates the current restart's counters and is nil when
	// explain is off, so every hot-path hook is one nil check.
	// localFail caches the failure class of nil localPaths memo entries
	// so replayed failures count toward the right rejection class;
	// rejectsMark snapshots enum.rejects at restart boundaries; seed is
	// the value that reproduces this searcher's rng; em and reqID feed
	// the search.restart event stream (both resolved once per FindCtx).
	rec         *attemptRec
	localFail   map[string]uint8
	rejectsMark int
	seed        int64
	em          *obs.Emitter
	reqID       string
}

// ctxDone polls the context directly; used at coarse boundaries
// (restarts).
func (s *searcher) ctxDone() bool {
	if s.stopped {
		return true
	}
	select {
	case <-s.ctx.Done():
		s.stopped = true
		return true
	default:
		return false
	}
}

// canceled is the amortized check for hot loops: it polls the context
// once every 256 calls.
func (s *searcher) canceled() bool {
	if s.stopped {
		return true
	}
	s.checkN++
	if s.checkN&255 != 0 {
		return false
	}
	return s.ctxDone()
}

func (s *searcher) run() *Result {
	res := &Result{}
	switch s.opts.Heuristic {
	case IndepSet:
		for r := 0; r <= s.opts.MaxRestarts; r++ {
			if s.ctxDone() {
				break
			}
			res.Restarts = r
			sp := s.tr.StartSpan("search.restart", s.span)
			sp.AttrInt("restart", int64(r))
			stepsBefore := s.steps
			var t0 time.Time
			if s.rec != nil {
				t0 = time.Now()
			}
			emb := s.assembleIndepSet()
			sp.End()
			if s.rec != nil {
				s.finishRestart(res, r, 0, emb != nil, false, time.Since(t0), stepsBefore)
			}
			if emb != nil {
				res.Embedding = emb
				res.Steps = s.steps
				return res
			}
		}
		res.Steps = s.steps
		return res
	case Exact:
		s.steps = 0
		sp := s.tr.StartSpan("search.attempt", s.span)
		var t0 time.Time
		if s.rec != nil {
			t0 = time.Now()
		}
		emb, exhausted := s.attempt(false)
		sp.AttrInt("steps", int64(s.steps))
		sp.End()
		if s.rec != nil {
			s.finishRestart(res, 0, 0, emb != nil, exhausted, time.Since(t0), 0)
		}
		res.Embedding = emb
		res.Steps = s.steps
		res.Exhausted = exhausted && emb == nil && !s.stopped
		return res
	default:
		if s.opts.Parallel > 1 {
			return s.runParallel()
		}
		for r := 0; r <= s.opts.MaxRestarts; r++ {
			if s.ctxDone() {
				break
			}
			res.Restarts = r
			s.steps = 0
			sp := s.tr.StartSpan("search.restart", s.span)
			sp.AttrInt("restart", int64(r))
			var t0 time.Time
			if s.rec != nil {
				t0 = time.Now()
			}
			emb, exhausted := s.attempt(s.opts.Heuristic == Random)
			sp.AttrInt("steps", int64(s.steps))
			sp.End()
			if s.rec != nil {
				s.finishRestart(res, r, 0, emb != nil, exhausted, time.Since(t0), 0)
			}
			res.Steps += s.steps
			if emb != nil {
				res.Embedding = emb
				return res
			}
			if exhausted && !s.stopped {
				// The candidate space was fully explored; restarts
				// cannot help.
				res.Exhausted = true
				return res
			}
		}
		return res
	}
}

// latchSettled records a settling restart outcome — a win (embedding
// found) or a proof of impossibility (exhausted without cancellation) —
// on the shared early-exit flag. It only ever stores true: a losing
// outcome racing a prior win must never unlatch the flag (the latch
// used to be written `done.Store(emb != nil)`, which let a later merely
// exhausted restart reset it and resurrect idle workers).
func latchSettled(done *atomic.Bool, win, exhausted, stopped bool) {
	if win || (exhausted && !stopped) {
		done.Store(true)
	}
}

// runParallel distributes restarts over worker goroutines. Each worker
// gets its own searcher and enumerator shell — including a private
// localPaths memo spanning its restarts — but all of them share the
// search-scoped candidate cache (with per-key single-flight), so
// identical (from, to, flavor) BFS queries run once per search instead
// of once per restart per worker. The first success wins; a proof of
// impossibility also settles the search.
func (s *searcher) runParallel() *Result {
	workers := s.opts.Parallel
	// All restart indices are queued upfront so no feeder goroutine can
	// block after an early win.
	restarts := make(chan int, s.opts.MaxRestarts+1)
	for r := 0; r <= s.opts.MaxRestarts; r++ {
		restarts <- r
	}
	close(restarts)
	type outcome struct {
		emb        *embedding.Embedding
		steps      int
		restart    int
		exhausted  bool
		canceled   bool
		enumerated int
		expansions int
		rejects    int
		pathHits   int
		pathMisses int
		localHits  int
		localMiss  int
		// rec is the restart's ledger record (Options.Explain only);
		// the collector folds records into the result and emits them in
		// restart order.
		rec *RestartRecord
	}
	results := make(chan outcome, s.opts.MaxRestarts+1)
	var wg sync.WaitGroup
	var done atomic.Bool

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker renders on its own tracer lane, restarts
			// nesting under the worker span.
			lane := s.tr.NewLane("search.worker")
			lane.AttrInt("worker", int64(w))
			defer lane.End()
			// The localPaths memo and its key buffer span this worker's
			// restarts; the searcher shell is rebuilt per restart for its
			// per-restart rng and counters. Under Explain the failure-
			// class cache spans the restarts with the memo, while the
			// attemptRec is reset per record by makeRecord.
			memo := make(map[string]localResult)
			var keyBuf []byte
			var rec *attemptRec
			var localFail map[string]uint8
			if s.opts.Explain {
				rec = &attemptRec{}
				localFail = make(map[string]uint8)
			}
			for r := range restarts {
				if done.Load() {
					return
				}
				seed := s.opts.Seed + int64(r)*2654435761
				local := &searcher{
					ctx:       s.ctx,
					src:       s.src,
					tgt:       s.tgt,
					att:       s.att,
					opts:      s.opts,
					rng:       rand.New(rand.NewSource(seed)),
					cache:     s.cache,
					cands:     s.cands,
					local:     memo,
					keyBuf:    keyBuf,
					tr:        s.tr,
					span:      lane,
					rec:       rec,
					localFail: localFail,
					seed:      seed,
				}
				local.enum = newEnumerator(s.tgt, s.enum.maxLen, s.enum.maxCands, s.enum.maxExpand, s.enum.maxPin, s.cache)
				local.enum.stop = local.canceled
				if local.ctxDone() {
					results <- outcome{restart: r, canceled: true}
					return
				}
				sp := s.tr.StartSpan("search.restart", lane)
				sp.AttrInt("restart", int64(r))
				var t0 time.Time
				if rec != nil {
					t0 = time.Now()
				}
				emb, exhausted := local.attempt(s.opts.Heuristic == Random)
				sp.AttrInt("steps", int64(local.steps))
				sp.End()
				keyBuf = local.keyBuf
				o := outcome{
					steps:      local.steps,
					restart:    r,
					canceled:   local.stopped,
					enumerated: local.enum.enumerated,
					expansions: local.enum.expansions,
					rejects:    local.enum.rejects,
					pathHits:   local.enum.hits,
					pathMisses: local.enum.misses,
					localHits:  local.localHits,
					localMiss:  local.localMisses,
				}
				if rec != nil {
					lr := local.makeRecord(r, w, emb != nil, exhausted, time.Since(t0), 0)
					o.rec = &lr
				}
				latchSettled(&done, emb != nil, exhausted, local.stopped)
				if emb != nil || (exhausted && !local.stopped) {
					o.emb = emb
					o.exhausted = exhausted
					results <- o
					return
				}
				results <- o
				if local.stopped {
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	res := &Result{}
	var recs []RestartRecord
	for o := range results {
		res.Steps += o.steps
		// Worker counters fold into the root searcher's plain ints;
		// FindCtx flushes the totals to the registry once.
		s.enum.enumerated += o.enumerated
		s.enum.expansions += o.expansions
		s.enum.rejects += o.rejects
		s.enum.hits += o.pathHits
		s.enum.misses += o.pathMisses
		s.localHits += o.localHits
		s.localMisses += o.localMiss
		if o.restart > res.Restarts {
			res.Restarts = o.restart
		}
		if o.emb != nil && res.Embedding == nil {
			res.Embedding = o.emb
		}
		if o.exhausted && o.emb == nil {
			res.Exhausted = true
		}
		if o.canceled {
			s.stopped = true
		}
		if o.rec != nil {
			res.Rejections.add(o.rec.Rejections)
			recs = append(recs, *o.rec)
		}
	}
	if len(recs) > 0 {
		// Workers finish out of order; the ledger reads in restart order
		// and keeps the earliest MaxLedger records (the aggregate
		// Rejections above already covers them all).
		sort.Slice(recs, func(i, j int) bool { return recs[i].Restart < recs[j].Restart })
		if len(recs) > s.opts.MaxLedger {
			recs = recs[:s.opts.MaxLedger]
		}
		res.Ledger = recs
		for _, rec := range recs {
			s.emitRestart(rec)
		}
	}
	return res
}

// order returns the source types in BFS order from the root, so a
// type's λ is fixed before its production is processed.
func (s *searcher) order() []string {
	seen := map[string]bool{s.src.Root: true}
	queue := []string{s.src.Root}
	var out []string
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		out = append(out, a)
		for _, c := range s.src.Prods[a].Children {
			if !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	return out
}

// candidateTable precomputes the filtered, att-ordered λ-candidate list
// per source type in one pass over the similarity matrix, so the
// backtracking never rescans and re-sorts the matrix at search time.
// The lists are shared read-only by all restarts and workers.
func candidateTable(src, tgt *dtd.DTD, att *embedding.SimMatrix) map[string][]string {
	table := att.AllCandidates()
	for a, cands := range table {
		// Keep only actual target types.
		kept := cands[:0]
		for _, c := range cands {
			if _, ok := tgt.Prods[c]; ok {
				kept = append(kept, c)
			}
		}
		table[a] = kept
	}
	return table
}

// candidatesFor lists admissible λ targets for a source type, ordered
// per the heuristic. Without shuffling the shared precomputed slice is
// returned directly and must not be mutated; shuffling copies it first.
func (s *searcher) candidatesFor(a string, shuffle bool) []string {
	if a == s.src.Root {
		if s.att.Get(a, s.tgt.Root) <= 0 {
			return nil
		}
		return []string{s.tgt.Root}
	}
	cands := s.cands[a]
	if shuffle && len(cands) > 1 {
		cands = append([]string(nil), cands...)
		s.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	}
	return cands
}

// localPathsFor memoizes localPaths across this searcher's restarts:
// the selection is a pure function of (a, λ(a), λ(a's children)) given
// fixed enumeration bounds (see the comment on attempt). Selections
// aborted by cancellation are not cached. Only multi-edge
// concatenations and disjunctions go through the memo — the other
// production kinds reduce to a single already-cached path query, and
// building their memo key would cost more than the recompute. The key
// is built in a reused buffer so a memo hit allocates nothing (the
// map lookup through string(buf) does not copy).
func (s *searcher) localPathsFor(a string, lam map[string]string) localResult {
	prod := s.src.Prods[a]
	if (prod.Kind != dtd.KindConcat && prod.Kind != dtd.KindDisj) || len(prod.Children) < 2 {
		return localPaths(s.enum, s.src, a, lam, s.rec)
	}
	buf := s.keyBuf[:0]
	buf = append(buf, a...)
	buf = append(buf, 0)
	buf = append(buf, lam[a]...)
	for _, c := range prod.Children {
		buf = append(buf, 0)
		buf = append(buf, lam[c]...)
	}
	s.keyBuf = buf
	if local, ok := s.local[string(buf)]; ok {
		s.localHits++
		// A replayed failure still counts toward its rejection class;
		// the class was cached beside the nil entry on the first miss.
		if s.rec != nil && local == nil {
			s.rec.countFail(s.localFail[string(buf)])
		}
		return local
	}
	local := localPaths(s.enum, s.src, a, lam, s.rec)
	s.localMisses++
	// s.stopped latches when the amortized cancellation poll fired
	// inside the enumeration or selection; such results may be
	// truncated and must not be cached.
	if !s.stopped {
		s.local[string(buf)] = local
		if s.rec != nil && local == nil {
			s.localFail[string(buf)] = s.rec.lastFail
		}
	}
	return local
}

// attempt runs one constructive backtracking pass. Only λ choices are
// backtracked globally: for a fixed λ of a production's participants,
// local prefix-free paths either exist or not, and which particular
// selection is taken cannot affect any other production (the
// prefix-free condition is per production, §5.1) — so local paths are
// computed once per λ combination. Productions of newly assigned
// children are solved depth first, surfacing contradictions close to
// the λ choices that caused them. It returns the found embedding, and
// whether the space was exhausted (as opposed to hitting the step
// budget).
func (s *searcher) attempt(shuffle bool) (*embedding.Embedding, bool) {
	if s.att.Get(s.src.Root, s.tgt.Root) <= 0 {
		if s.rec != nil {
			s.rec.rej.LambdaEmpty++
		}
		return nil, true
	}
	if s.rec != nil {
		s.rec.noteDepth(1) // the root's λ is fixed
	}
	lam := map[string]string{s.src.Root: s.tgt.Root}
	paths := map[embedding.EdgeRef]xpath.Path{}
	solved := map[string]bool{}
	budget := s.opts.MaxSteps

	type cont func() (bool, bool) // (success, exhausted)

	var solveProd func(a string, k cont) (bool, bool)
	solveProd = func(a string, k cont) (bool, bool) {
		prod := s.src.Prods[a]
		// Distinct children lacking a λ, in production order.
		var free []string
		seen := map[string]bool{}
		for _, c := range prod.Children {
			if _, fixed := lam[c]; !fixed && !seen[c] {
				seen[c] = true
				free = append(free, c)
			}
		}

		// withPaths: λ is complete for this production; find one local
		// path selection, then solve the children's productions.
		withPaths := func() (bool, bool) {
			local := s.localPathsFor(a, lam)
			if local == nil {
				return false, true
			}
			for ref, p := range local {
				paths[ref] = p
			}
			var kids []string
			seenK := map[string]bool{}
			for _, c := range prod.Children {
				if !seenK[c] {
					seenK[c] = true
					kids = append(kids, c)
				}
			}
			var next func(idx int) (bool, bool)
			next = func(idx int) (bool, bool) {
				if idx == len(kids) {
					return k()
				}
				c := kids[idx]
				if solved[c] {
					return next(idx + 1)
				}
				solved[c] = true
				done, e := solveProd(c, func() (bool, bool) { return next(idx + 1) })
				if !done {
					delete(solved, c)
				}
				return done, e
			}
			done, e := next(0)
			if !done {
				for ref := range local {
					delete(paths, ref)
				}
			}
			return done, e
		}

		var assign func(j int) (bool, bool)
		assign = func(j int) (bool, bool) {
			if s.steps >= budget || s.canceled() {
				return false, false
			}
			s.steps++
			if j == len(free) {
				return withPaths()
			}
			c := free[j]
			exh := true
			cands := s.candidatesFor(c, shuffle)
			if s.rec != nil && len(cands) == 0 {
				s.rec.rej.LambdaEmpty++
			}
			for _, b := range cands {
				lam[c] = b
				if s.rec != nil {
					s.rec.noteDepth(len(lam))
				}
				done, e := assign(j + 1)
				if done {
					return true, e
				}
				if !e {
					exh = false
				}
				delete(lam, c)
			}
			return false, exh
		}
		return assign(0)
	}

	// Solve the root; types unreachable from the root (possible only in
	// inconsistent sources) are solved afterwards in declaration order.
	var leftovers func() (bool, bool)
	leftovers = func() (bool, bool) {
		for _, a := range s.src.Types {
			if solved[a] || a == s.src.Root {
				continue
			}
			if _, fixed := lam[a]; !fixed {
				exh := true
				cands := s.candidatesFor(a, shuffle)
				if s.rec != nil && len(cands) == 0 {
					s.rec.rej.LambdaEmpty++
				}
				for _, b := range cands {
					lam[a] = b
					solved[a] = true
					done, e := solveProd(a, leftovers)
					if done {
						return true, e
					}
					if !e {
						exh = false
					}
					delete(solved, a)
					delete(lam, a)
				}
				return false, exh
			}
			solved[a] = true
			done, e := solveProd(a, leftovers)
			if !done {
				delete(solved, a)
			}
			return done, e
		}
		return true, true
	}

	solved[s.src.Root] = true
	ok, exhausted := solveProd(s.src.Root, leftovers)
	if !ok {
		return nil, exhausted
	}
	emb := embedding.New(s.src, s.tgt)
	for a, b := range lam {
		emb.MapType(a, b)
	}
	for ref, p := range paths {
		emb.Paths[ref] = p
	}
	return emb, true
}

// edgeRefs lists the edges of a's production in production order,
// including the str pseudo-edge.
func edgeRefs(src *dtd.DTD, a string) []embedding.EdgeRef {
	prod := src.Prods[a]
	if prod.Kind == dtd.KindStr {
		return []embedding.EdgeRef{embedding.Ref(a, embedding.StrChild)}
	}
	var refs []embedding.EdgeRef
	occ := map[string]int{}
	for _, c := range prod.Children {
		occ[c]++
		refs = append(refs, embedding.EdgeRef{Parent: a, Child: c, Occ: occ[c]})
	}
	return refs
}
