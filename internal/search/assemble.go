package search

import (
	"sort"

	"repro/internal/embedding"
	"repro/internal/xpath"
)

// localOption is one local mapping (§5.1): a λ assignment for one
// source type and its children, with valid local paths, weighted by the
// summed att scores.
type localOption struct {
	owner  string
	lambda map[string]string
	paths  map[embedding.EdgeRef]xpath.Path
	weight float64
}

// conflicts reports whether two local mappings disagree on a shared
// type.
func (o *localOption) conflicts(assign map[string]string) bool {
	for a, b := range o.lambda {
		if cur, ok := assign[a]; ok && cur != b {
			return true
		}
	}
	return false
}

// assembleIndepSet implements the independent-set style assembly: it
// enumerates up to LocalOptions local mappings per source production
// (randomly sampling λ choices), then greedily selects one option per
// production — fewest-options first, highest weight first — rejecting
// options that conflict with the partial assignment. A maximal
// consistent selection covering every production is a valid embedding.
func (s *searcher) assembleIndepSet() *embedding.Embedding {
	order := s.order()
	options := make([][]*localOption, len(order))
	for i, a := range order {
		options[i] = s.localOptions(a)
		if len(options[i]) == 0 {
			if s.rec != nil {
				s.rec.outcome = OutcomeNoOptions
			}
			return nil
		}
	}
	// Productions with the fewest options are the most constrained;
	// assign them first.
	idx := make([]int, len(order))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return len(options[idx[x]]) < len(options[idx[y]]) })

	assign := map[string]string{s.src.Root: s.tgt.Root}
	chosen := make([]*localOption, len(order))
	for _, i := range idx {
		if s.canceled() {
			return nil
		}
		s.steps++
		var best *localOption
		for _, o := range options[i] {
			if o.conflicts(assign) {
				if s.rec != nil {
					s.rec.rej.Conflict++
				}
				continue
			}
			if best == nil || o.weight > best.weight {
				best = o
			}
		}
		if best == nil {
			if s.rec != nil {
				s.rec.outcome = OutcomeConflict
			}
			return nil
		}
		chosen[i] = best
		for a, b := range best.lambda {
			assign[a] = b
		}
		if s.rec != nil {
			s.rec.noteDepth(len(assign))
		}
	}
	emb := embedding.New(s.src, s.tgt)
	for a, b := range assign {
		emb.MapType(a, b)
	}
	for _, o := range chosen {
		for ref, p := range o.paths {
			emb.Paths[ref] = p
		}
	}
	if emb.Validate(s.att) != nil {
		if s.rec != nil {
			s.rec.outcome = OutcomeInvalid
		}
		return nil
	}
	return emb
}

// localOptions samples local mappings for the production of a.
func (s *searcher) localOptions(a string) []*localOption {
	prod := s.src.Prods[a]
	var ownCands []string
	if a == s.src.Root {
		ownCands = []string{s.tgt.Root}
	} else {
		ownCands = s.candidatesFor(a, true)
		if s.rec != nil && len(ownCands) == 0 {
			s.rec.rej.LambdaEmpty++
		}
	}
	var out []*localOption
	for _, la := range ownCands {
		if len(out) >= s.opts.LocalOptions {
			break
		}
		// Distinct child types needing λ.
		var kids []string
		seen := map[string]bool{}
		for _, c := range prod.Children {
			if !seen[c] && c != a {
				seen[c] = true
				kids = append(kids, c)
			}
		}
		lam := map[string]string{a: la}
		budget := s.opts.LocalOptions
		var rec func(j int)
		rec = func(j int) {
			if len(out) >= s.opts.LocalOptions || budget <= 0 || s.canceled() {
				return
			}
			if j == len(kids) {
				budget--
				local := s.localPathsFor(a, lam)
				if local == nil {
					return
				}
				opt := &localOption{
					owner:  a,
					lambda: map[string]string{},
					paths:  local,
				}
				for k, v := range lam {
					opt.lambda[k] = v
					opt.weight += s.att.Get(k, v)
				}
				out = append(out, opt)
				return
			}
			cands := s.candidatesFor(kids[j], true)
			if s.rec != nil && len(cands) == 0 {
				s.rec.rej.LambdaEmpty++
			}
			for _, b := range cands {
				lam[kids[j]] = b
				rec(j + 1)
				delete(lam, kids[j])
				if len(out) >= s.opts.LocalOptions || budget <= 0 {
					return
				}
			}
		}
		// Recursive types may list themselves as children; the owner's
		// own λ is fixed above.
		if prodHasSelf(prod.Children, a) {
			// lam already contains a's λ.
			_ = la
		}
		rec(0)
	}
	return out
}

func prodHasSelf(children []string, a string) bool {
	for _, c := range children {
		if c == a {
			return true
		}
	}
	return false
}
