package search_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/match"
	"repro/internal/reduction"
	"repro/internal/search"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// TestIdentityEmbedding: with an unambiguous att (truth = identity),
// every heuristic recovers the identity embedding of each corpus schema
// into itself — the PTIME case of §5.2.
func TestIdentityEmbedding(t *testing.T) {
	for _, named := range workload.Corpus() {
		for _, h := range []search.Heuristic{search.Random, search.QualityOrdered, search.IndepSet, search.Exact} {
			t.Run(named.Name+"/"+h.String(), func(t *testing.T) {
				truth := map[string]string{}
				for _, a := range named.DTD.Types {
					truth[a] = a
				}
				att := match.Synthetic(named.DTD, named.DTD, truth,
					match.SyntheticOptions{Accuracy: 1, Ambiguity: 1}, rand.New(rand.NewSource(1)))
				res, err := search.Find(named.DTD, named.DTD, att, search.Options{Heuristic: h, Seed: 7})
				if err != nil {
					t.Fatalf("Find: %v", err)
				}
				if res.Embedding == nil {
					t.Fatalf("no embedding found (restarts=%d steps=%d)", res.Restarts, res.Steps)
				}
				for a, b := range res.Embedding.Lambda {
					if a != b {
						t.Errorf("λ(%s) = %s, want identity", a, b)
					}
				}
			})
		}
	}
}

// TestFigure1Search: the class and student DTDs embed into the school
// DTD under the unrestricted att (Example 4.2 / 4.9 discovered
// automatically).
func TestFigure1Search(t *testing.T) {
	school := workload.SchoolDTD()
	for _, tc := range []struct {
		name string
		src  *dtd.DTD
	}{
		{"class", workload.ClassDTD()},
		{"student", workload.StudentDTD()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := search.Find(tc.src, school, nil, search.Options{Heuristic: search.Random, Seed: 3, MaxRestarts: 60})
			if err != nil {
				t.Fatalf("Find: %v", err)
			}
			if res.Embedding == nil {
				t.Fatalf("no embedding found after %d restarts, %d steps", res.Restarts, res.Steps)
			}
			// Found embeddings must be usable end to end.
			r := rand.New(rand.NewSource(5))
			src := xmltree.MustGenerate(tc.src, r, xmltree.GenOptions{})
			out, err := res.Embedding.Apply(src)
			if err != nil {
				t.Fatalf("Apply: %v\n%s", err, res.Embedding)
			}
			if err := out.Tree.Validate(school); err != nil {
				t.Fatalf("type safety: %v", err)
			}
			back, err := res.Embedding.Invert(out.Tree)
			if err != nil {
				t.Fatalf("Invert: %v", err)
			}
			if !xmltree.Equal(src, back) {
				t.Errorf("round trip through found embedding: %s", xmltree.Diff(src, back))
			}
		})
	}
}

// TestNoEmbeddingExhaustive: on the impossible Figure 3 scenarios the
// exact solver proves there is no embedding for any λ.
func TestNoEmbeddingExhaustive(t *testing.T) {
	cases := []struct {
		name     string
		src, tgt *dtd.DTD
	}{
		{
			"concat-into-disjunction",
			dtd.MustNew("A", dtd.D("A", dtd.Concat("B", "C")), dtd.D("B", dtd.Empty()), dtd.D("C", dtd.Empty())),
			dtd.MustNew("A1", dtd.D("A1", dtd.Disj("B1", "C1")), dtd.D("B1", dtd.Empty()), dtd.D("C1", dtd.Empty())),
		},
		{
			"star-into-concat",
			dtd.MustNew("A", dtd.D("A", dtd.Star("B")), dtd.D("B", dtd.Empty())),
			dtd.MustNew("A1", dtd.D("A1", dtd.Concat("B1")), dtd.D("B1", dtd.Empty())),
		},
		{
			"prefix-trap",
			dtd.MustNew("A", dtd.D("A", dtd.Concat("B", "C")), dtd.D("B", dtd.Empty()), dtd.D("C", dtd.Empty())),
			dtd.MustNew("A1", dtd.D("A1", dtd.Concat("B1")), dtd.D("B1", dtd.Concat("C1")), dtd.D("C1", dtd.Empty())),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := search.Find(tc.src, tc.tgt, nil, search.Options{Heuristic: search.Exact})
			if err != nil {
				t.Fatal(err)
			}
			if res.Embedding != nil {
				t.Fatalf("found an embedding where none should exist:\n%s", res.Embedding)
			}
			if !res.Exhausted {
				t.Error("exact search did not report exhaustion")
			}
		})
	}
}

// TestCycleUnfoldingFound: the Figure 3(e) target requires unfolding a
// cycle; the search finds it.
func TestCycleUnfoldingFound(t *testing.T) {
	src := dtd.MustNew("A", dtd.D("A", dtd.Concat("B", "C")), dtd.D("B", dtd.Empty()), dtd.D("C", dtd.Empty()))
	tgt := dtd.MustNew("A1",
		dtd.D("A1", dtd.Concat("B1")),
		dtd.D("B1", dtd.Concat("C1", "As")),
		dtd.D("C1", dtd.Empty()),
		dtd.D("As", dtd.Star("A1")))
	res, err := search.Find(src, tgt, nil, search.Options{Heuristic: search.Exact})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding == nil {
		t.Fatal("no embedding found; cycle unfolding required")
	}
}

// TestReductionSchemas: the 3SAT construction builds well-formed,
// nonrecursive, concatenation-only schemas.
func TestReductionSchemas(t *testing.T) {
	f := reduction.Formula{Vars: 3, Clauses: []reduction.Clause{{1, -2, 3}, {-1, 2, -3}}}
	s1, s2, _, err := reduction.Schemas(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*dtd.DTD{s1, s2} {
		if d.IsRecursive() {
			t.Error("reduction schema is recursive")
		}
		for _, a := range d.Types {
			if k := d.Prods[a].Kind; k != dtd.KindConcat && k != dtd.KindEmpty {
				t.Errorf("type %q has %v production; reduction uses concatenations only", a, k)
			}
		}
	}
}

// TestReductionProperty is invariant 9: φ is satisfiable iff the exact
// solver finds an embedding between the reduction schemas.
func TestReductionProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomFormula(r, 2+r.Intn(2), 2+r.Intn(2))
		s1, s2, att, err := reduction.Schemas(f)
		if err != nil {
			t.Logf("seed %d: schemas: %v", seed, err)
			return false
		}
		res, err := search.Find(s1, s2, att, search.Options{Heuristic: search.Exact})
		if err != nil {
			t.Logf("seed %d: find: %v", seed, err)
			return false
		}
		want := f.Satisfiable()
		got := res.Embedding != nil
		if want != got {
			t.Logf("seed %d: formula %v satisfiable=%v, embedding found=%v", seed, f, want, got)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func randomFormula(r *rand.Rand, vars, clauses int) reduction.Formula {
	f := reduction.Formula{Vars: vars}
	for i := 0; i < clauses; i++ {
		var c reduction.Clause
		// Short clauses make unsatisfiable instances likely, exercising
		// the exhaustion direction of the equivalence.
		width := 1 + r.Intn(3)
		for j := 0; j < width; j++ {
			v := 1 + r.Intn(vars)
			if r.Intn(2) == 0 {
				v = -v
			}
			c = append(c, reduction.Literal(v))
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// TestReductionUnsatisfiable pins the known-unsatisfiable instance used
// by experiment E7: no embedding may exist for it.
func TestReductionUnsatisfiable(t *testing.T) {
	unsat := reduction.Formula{Vars: 2, Clauses: []reduction.Clause{{1, 2}, {1, -2}, {-1, 2}, {-1, -2}}}
	if unsat.Satisfiable() {
		t.Fatal("formula should be unsatisfiable")
	}
	s1, s2, att, err := reduction.Schemas(unsat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := search.Find(s1, s2, att, search.Options{Heuristic: search.Exact})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding != nil {
		t.Fatalf("found an embedding for an unsatisfiable formula:\n%s", res.Embedding)
	}
	if !res.Exhausted {
		t.Error("exact search should report exhaustion")
	}
}

// TestNoisySearch: embeddings of a schema into its noisy copies are
// found across noise levels, and at zero noise with an accurate att the
// ground truth is recovered.
func TestNoisySearch(t *testing.T) {
	base := workload.OrdersDTD()
	r := rand.New(rand.NewSource(9))
	for _, level := range []float64{0, 0.2, 0.4} {
		nc := workload.Noise(base, workload.NoiseLevel(level), r)
		if err := nc.DTD.Check(); err != nil {
			t.Fatalf("noisy copy invalid at level %v: %v", level, err)
		}
		att := match.Synthetic(base, nc.DTD, nc.Truth,
			match.SyntheticOptions{Accuracy: 1, Ambiguity: 2}, r)
		res, err := search.Find(base, nc.DTD, att, search.Options{Heuristic: search.Random, Seed: 4, MaxRestarts: 40})
		if err != nil {
			t.Fatal(err)
		}
		if res.Embedding == nil {
			t.Fatalf("level %v: no embedding found (steps=%d)", level, res.Steps)
		}
		if level == 0 {
			correct := 0
			for a, b := range res.Embedding.Lambda {
				if nc.Truth[a] == b {
					correct++
				}
			}
			if correct < len(nc.Truth) {
				t.Logf("level 0: %d/%d ground-truth matches (a different valid embedding is acceptable)", correct, len(nc.Truth))
			}
		}
	}
}

// TestFoundEmbeddingsAlwaysValid is invariant 7: every embedding any
// heuristic returns passes the independent checker and round-trips
// instances. Exercised over random synthetic schema pairs.
func TestFoundEmbeddingsAlwaysValid(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := workload.MustSyntheticDTD(r, 8+r.Intn(8))
		nc := workload.Noise(base, workload.NoiseLevel(0.3), r)
		att := match.Synthetic(base, nc.DTD, nc.Truth,
			match.SyntheticOptions{Accuracy: 0.8, Ambiguity: 2}, r)
		res, err := search.Find(base, nc.DTD, att, search.Options{Heuristic: search.Random, Seed: seed, MaxRestarts: 15})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if res.Embedding == nil {
			return true // not finding one is allowed; returning junk is not
		}
		if err := res.Embedding.Validate(att); err != nil {
			t.Logf("seed %d: invalid embedding returned: %v", seed, err)
			return false
		}
		src := xmltree.MustGenerate(base, r, xmltree.GenOptions{})
		out, err := res.Embedding.Apply(src)
		if err != nil {
			t.Logf("seed %d: apply: %v", seed, err)
			return false
		}
		if err := out.Tree.Validate(nc.DTD); err != nil {
			t.Logf("seed %d: type safety: %v", seed, err)
			return false
		}
		back, err := res.Embedding.Invert(out.Tree)
		if err != nil {
			t.Logf("seed %d: invert: %v", seed, err)
			return false
		}
		if !xmltree.Equal(src, back) {
			t.Logf("seed %d: round trip: %s", seed, xmltree.Diff(src, back))
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestSmallModelBounds is invariant 8: paths of found embeddings
// respect the Theorem 4.10 length bounds.
func TestSmallModelBounds(t *testing.T) {
	school := workload.SchoolDTD()
	src := workload.ClassDTD()
	res, err := search.Find(src, school, nil, search.Options{Heuristic: search.Random, Seed: 3, MaxRestarts: 60})
	if err != nil || res.Embedding == nil {
		t.Fatalf("setup: %v", err)
	}
	e2 := school.Size()
	for ref, p := range res.Embedding.Paths {
		prod := src.Prods[ref.Parent]
		k := len(prod.Children)
		var bound int
		switch prod.Kind {
		case dtd.KindConcat:
			bound = k * e2
		case dtd.KindDisj:
			bound = (k + 1) * e2
		case dtd.KindStar:
			bound = 2 * e2
		default:
			bound = e2
		}
		if p.Len() > bound {
			t.Errorf("path%s length %d exceeds Theorem 4.10 bound %d", ref, p.Len(), bound)
		}
	}
}

// TestAttRestrictsSearch: zeroing a required pair makes the search fail.
func TestAttRestrictsSearch(t *testing.T) {
	d := workload.StudentDTD()
	att := embedding.UniformSim(d, d)
	for _, b := range d.Types {
		att.Set("ssn", b, 0)
	}
	res, err := search.Find(d, d, att, search.Options{Heuristic: search.Exact})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding != nil {
		t.Error("found an embedding although ssn has no admissible target")
	}
}
