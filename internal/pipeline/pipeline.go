// Package pipeline drives batch document migration: it applies an
// embedding's instance mapping σd (or its inverse σd⁻¹) to a stream of
// documents with a bounded worker pool, per-document error isolation,
// and aggregate throughput accounting.
//
// The pipeline is the data-plane counterpart of the single-document
// CLI path: each worker parses under resource limits, transforms under
// the run's context (cancellation surfaces as *guard.CancelError and
// abandons in-flight documents promptly), validates the output against
// the appropriate schema, and serializes through the pooled xmltree
// encoder. One malformed document fails alone; the batch completes.
//
// Results are reported in input order regardless of worker count, so a
// run with -j 8 is observationally identical to -j 1 (same outputs,
// same per-document errors) apart from wall-clock time.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/embedding"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/xmltree"
)

// Op selects the transformation direction.
type Op int

const (
	// Forward applies σd: source documents become target documents.
	Forward Op = iota
	// Inverse applies σd⁻¹: target documents are mapped back to the
	// source documents they came from.
	Inverse
)

// Stage identifies where in the per-document pipeline an error arose;
// callers use it to classify failures (malformed input vs internal).
type Stage int

const (
	StageRead Stage = iota
	StageParse
	StageMap
	StageValidate
	StageWrite
)

func (s Stage) String() string {
	switch s {
	case StageRead:
		return "read"
	case StageParse:
		return "parse"
	case StageMap:
		return "map"
	case StageValidate:
		return "validate"
	case StageWrite:
		return "write"
	}
	return "unknown"
}

// DocError wraps a per-document failure with its pipeline stage.
type DocError struct {
	Name  string
	Stage Stage
	Err   error
}

func (e *DocError) Error() string {
	return fmt.Sprintf("%s: %s: %v", e.Name, e.Stage, e.Err)
}

func (e *DocError) Unwrap() error { return e.Err }

// Doc is one unit of batch work: a named input and an optional output
// destination. A nil Sink discards the serialized result (the
// transformation and validation still run). Abort, when set, is called
// after a failure that already opened the Sink, so a partially written
// output can be removed: the streaming path writes as it transforms,
// and a mid-document fault must not leave a torn file behind.
type Doc struct {
	Name  string
	Open  func() (io.ReadCloser, error)
	Sink  func() (io.WriteCloser, error)
	Abort func()
}

// FileDoc builds a Doc reading from path and writing to outPath
// (discarding output when outPath is ""); on failure the partial
// output file is removed.
func FileDoc(path, outPath string) Doc {
	d := Doc{
		Name: path,
		Open: func() (io.ReadCloser, error) { return os.Open(path) },
	}
	if outPath != "" {
		d.Sink = func() (io.WriteCloser, error) { return os.Create(outPath) }
		d.Abort = func() { os.Remove(outPath) }
	}
	return d
}

// DirDocs enumerates *.xml files of dir in name order, mapping each to
// an output file of the same base name under outDir (or discarding
// output when outDir is ""). It is the work-list builder behind
// xse-map -batch.
func DirDocs(dir, outDir string) ([]Doc, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".xml" {
			continue
		}
		paths = append(paths, e.Name())
	}
	sort.Strings(paths)
	docs := make([]Doc, 0, len(paths))
	for _, name := range paths {
		out := ""
		if outDir != "" {
			out = filepath.Join(outDir, name)
		}
		docs = append(docs, FileDoc(filepath.Join(dir, name), out))
	}
	return docs, nil
}

// Options configure a batch run.
type Options struct {
	// Op selects σd (Forward) or σd⁻¹ (Inverse). Ignored when Transform
	// is set.
	Op Op
	// Workers bounds pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// Limits apply to each document parse (zero fields take the guard
	// defaults).
	Limits guard.Limits
	// Tree forces the tree-building migration path. By default forward
	// runs with no custom Transform use the streaming engine
	// (embedding.StreamProgram): documents flow token-by-token from
	// reader to sink in O(depth) memory instead of materializing both
	// trees. The tree path remains as the differential baseline and is
	// always used for Inverse and custom-Transform runs.
	Tree bool
	// SkipValidate disables output conformance checking (the mapping
	// theorems guarantee conformance; validation catches internal bugs
	// and costs one extra pass per document). The streaming path never
	// builds an output tree, so it implies SkipValidate; source
	// conformance is still enforced token-by-token, and target
	// conformance holds by construction of the compiled program (pinned
	// by the stream-vs-tree differentials).
	SkipValidate bool
	// Transform overrides the built-in mapping with a custom
	// tree-to-tree function (e.g. an XSLT engine run). It must be safe
	// for concurrent use.
	Transform func(ctx context.Context, doc *xmltree.Tree) (*xmltree.Tree, error)
	// Obs selects the metrics registry for the run's counters and
	// stage-latency histograms: nil uses the process registry
	// (obs.Default()); obs.Nop() disables instrumentation.
	Obs *obs.Registry
	// SlowThreshold, when positive, logs every document whose
	// end-to-end pipeline time exceeds it to SlowLog.
	SlowThreshold time.Duration
	// SlowLog receives slow-document lines; os.Stderr when nil.
	SlowLog io.Writer
}

// DocResult is the outcome for one document, in input order.
type DocResult struct {
	Name     string
	Err      error // nil on success; *DocError otherwise
	InBytes  int64
	OutBytes int64
	Elapsed  time.Duration
}

// Canceled reports whether this document failed because the run's
// context was canceled (as opposed to a fault of the document itself).
func (r *DocResult) Canceled() bool {
	var ce *guard.CancelError
	return errors.As(r.Err, &ce)
}

// Stats aggregates one Run.
type Stats struct {
	Docs     int // documents attempted
	Failed   int // documents with a non-nil Err
	InBytes  int64
	OutBytes int64
	Elapsed  time.Duration
}

// DocsPerSec is successful-document throughput over the run's wall
// clock.
func (s Stats) DocsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Docs-s.Failed) / s.Elapsed.Seconds()
}

// MBPerSec is input-byte throughput over the run's wall clock
// (1 MB = 1e6 bytes).
func (s Stats) MBPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.InBytes) / 1e6 / s.Elapsed.Seconds()
}

// Run migrates the documents through the embedding with a bounded
// worker pool. The returned slice has one entry per input document in
// input order. Run itself returns an error only for setup failures
// (an invalid embedding); per-document failures — including
// cancellation — are reported in the results. Once ctx is canceled,
// in-flight documents unwind with a *guard.CancelError and queued
// documents are not started.
func Run(ctx context.Context, emb *embedding.Embedding, docs []Doc, opts Options) ([]DocResult, Stats, error) {
	transform := opts.Transform
	if transform == nil {
		switch opts.Op {
		case Inverse:
			transform = func(ctx context.Context, t *xmltree.Tree) (*xmltree.Tree, error) {
				return emb.InvertCtx(ctx, t)
			}
		default:
			transform = func(ctx context.Context, t *xmltree.Tree) (*xmltree.Tree, error) {
				res, err := emb.ApplyCtx(ctx, t)
				if err != nil {
					return nil, err
				}
				return res.Tree, nil
			}
		}
	}
	var check *checkSchema
	if !opts.SkipValidate {
		check = &checkSchema{emb: emb, inverse: opts.Op == Inverse && opts.Transform == nil}
	}
	if emb == nil {
		return nil, Stats{}, fmt.Errorf("pipeline: nil embedding")
	}
	// Validate once up front: workers then share the resolved embedding
	// read-only, and a broken mapping fails the run, not every document.
	if err := emb.Validate(nil); err != nil {
		return nil, Stats{}, fmt.Errorf("pipeline: invalid embedding: %w", err)
	}

	// Default data plane: compile the instance mapping into a streaming
	// program once and run every document through it. Inverse and
	// custom-Transform runs have no streaming form and keep the tree
	// path, as does -tree (the differential baseline).
	var prog *embedding.StreamProgram
	if !opts.Tree && opts.Transform == nil && opts.Op == Forward {
		p, err := emb.CompileStream()
		if err != nil {
			return nil, Stats{}, fmt.Errorf("pipeline: compile streaming program: %w", err)
		}
		prog = p
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(docs) && len(docs) > 0 {
		workers = len(docs)
	}

	env := &runEnv{
		transform: transform,
		check:     check,
		prog:      prog,
		lim:       opts.Limits,
		obs:       opts.Obs,
		m:         newMetrics(obs.OrDefault(opts.Obs)),
		tr:        obs.TracerFrom(ctx),
		slow:      newSlowLogger(opts.SlowThreshold, opts.SlowLog),
	}

	start := time.Now()
	results := make([]DocResult, len(docs))
	jobs := make(chan int)
	// Add/Add(-1) rather than Set, so concurrent Runs sharing a
	// registry compose: each run only accounts for its own documents.
	env.m.queueDepth.Add(int64(len(docs)))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lane := env.tr.NewLane("pipeline.worker")
			lane.AttrInt("worker", int64(w))
			defer lane.End()
			for i := range jobs {
				results[i] = runOne(ctx, docs[i], env, lane)
				env.m.queueDepth.Add(-1)
			}
		}()
	}
	var undispatched int64
dispatch:
	for i := range docs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			// Mark everything not yet handed out as canceled without
			// starting it.
			for j := i; j < len(docs); j++ {
				select {
				case jobs <- j:
				default:
					results[j] = DocResult{
						Name: docs[j].Name,
						Err:  &DocError{Name: docs[j].Name, Stage: StageMap, Err: guard.CheckCtx(ctx, "pipeline: batch")},
					}
					undispatched++
				}
			}
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	// Workers decrement per processed doc; docs canceled before
	// dispatch are drained here so the gauge returns to its pre-run
	// level even on early abort.
	env.m.queueDepth.Add(-undispatched)

	stats := Stats{Docs: len(docs), Elapsed: time.Since(start)}
	for i := range results {
		if results[i].Err != nil {
			stats.Failed++
		}
		stats.InBytes += results[i].InBytes
		stats.OutBytes += results[i].OutBytes
	}
	return results, stats, nil
}

// checkSchema validates transformed output against the schema the
// mapping theorems promise conformance to.
type checkSchema struct {
	emb     *embedding.Embedding
	inverse bool
}

func (c *checkSchema) validate(t *xmltree.Tree) error {
	if c.inverse {
		return t.Validate(c.emb.Source)
	}
	return t.Validate(c.emb.Target)
}

// countingWriter tallies bytes flowing to a sink.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// runEnv bundles one Run's per-document machinery: the transform and
// validator, parse limits, resolved instruments, the optional tracer
// and the slow-document logger.
type runEnv struct {
	transform func(context.Context, *xmltree.Tree) (*xmltree.Tree, error)
	check     *checkSchema
	prog      *embedding.StreamProgram // non-nil selects the streaming path
	lim       guard.Limits
	obs       *obs.Registry // as passed by the caller (nil = process default)
	m         *metrics
	tr        *obs.Tracer
	slow      *slowLogger
}

// runOne executes the full per-document pipeline:
// read+parse → transform → validate → serialize.
// Each document gets one pipeline.doc span on its worker's lane with
// parse/map/validate/encode children, and its stage latencies feed the
// xse_pipeline_*_seconds histograms.
func runOne(ctx context.Context, doc Doc, env *runEnv, lane *obs.Span) DocResult {
	res := DocResult{Name: doc.Name}
	t0 := time.Now()
	m := env.m
	sp := env.tr.StartSpan("pipeline.doc", lane)
	sp.Attr("doc", doc.Name)
	defer func() {
		res.Elapsed = time.Since(t0)
		m.docs.Inc()
		if res.Err != nil {
			m.docsFailed.Inc()
			var de *DocError
			if errors.As(res.Err, &de) {
				m.errByStage[de.Stage].Inc()
				sp.Attr("error", de.Stage.String())
			}
		} else {
			m.docsOK.Inc()
		}
		m.readBytes.Add(uint64(res.InBytes))
		m.written.Add(uint64(res.OutBytes))
		m.docSec.Observe(res.Elapsed.Seconds())
		env.slow.observe(&res)
		sp.End()
	}()
	fail := func(stage Stage, err error) DocResult {
		res.Err = &DocError{Name: doc.Name, Stage: stage, Err: err}
		return res
	}

	if err := guard.CheckCtx(ctx, "pipeline: batch"); err != nil {
		return fail(StageMap, err)
	}
	if env.prog != nil {
		return streamOne(ctx, doc, env, sp, &res, fail)
	}
	tParse := time.Now()
	spParse := env.tr.StartSpan("pipeline.parse", sp)
	rc, err := doc.Open()
	if err != nil {
		spParse.End()
		return fail(StageRead, err)
	}
	in := &countingReader{r: rc}
	tree, perr := xmltree.ParseLimits(in, env.lim)
	rc.Close()
	res.InBytes = in.n
	spParse.End()
	m.parseSec.ObserveSince(tParse)
	if perr != nil {
		return fail(StageParse, perr)
	}

	tMap := time.Now()
	spMap := env.tr.StartSpan("pipeline.map", sp)
	out, err := env.transform(ctx, tree)
	spMap.End()
	m.mapSec.ObserveSince(tMap)
	if err != nil {
		return fail(StageMap, err)
	}
	if env.check != nil {
		tVal := time.Now()
		spVal := env.tr.StartSpan("pipeline.validate", sp)
		err := env.check.validate(out)
		spVal.End()
		m.validateSec.ObserveSince(tVal)
		if err != nil {
			return fail(StageValidate, err)
		}
	}

	if doc.Sink == nil {
		return res
	}
	tEnc := time.Now()
	spEnc := env.tr.StartSpan("pipeline.encode", sp)
	wc, err := doc.Sink()
	if err != nil {
		spEnc.End()
		return fail(StageWrite, err)
	}
	cw := &countingWriter{w: wc}
	werr := out.Write(cw)
	if cerr := wc.Close(); werr == nil {
		werr = cerr
	}
	res.OutBytes = cw.n
	spEnc.End()
	m.encodeSec.ObserveSince(tEnc)
	if werr != nil {
		if doc.Abort != nil {
			doc.Abort()
			res.OutBytes = 0
		}
		return fail(StageWrite, werr)
	}
	return res
}

// streamOne is runOne's data plane when the run compiled a streaming
// program: the document flows token-by-token from reader to sink with
// no intermediate trees. The tree path's error taxonomy is preserved by
// translating StreamError's stage tag; a document that fails mid-stream
// may leave a partial output file behind, exactly as a tree-path write
// failure would.
func streamOne(ctx context.Context, doc Doc, env *runEnv, sp *obs.Span, res *DocResult, fail func(Stage, error) DocResult) DocResult {
	spStream := env.tr.StartSpan("pipeline.stream", sp)
	defer spStream.End()
	rc, err := doc.Open()
	if err != nil {
		return fail(StageRead, err)
	}
	defer rc.Close()
	var w io.Writer = io.Discard
	var wc io.WriteCloser
	if doc.Sink != nil {
		wc, err = doc.Sink()
		if err != nil {
			return fail(StageWrite, err)
		}
		w = wc
	}
	st, serr := env.prog.Run(ctx, rc, w, embedding.StreamOptions{Limits: env.lim, Obs: env.obs})
	res.InBytes = st.InBytes
	if wc != nil {
		res.OutBytes = st.OutBytes
		if cerr := wc.Close(); serr == nil && cerr != nil {
			serr = &embedding.StreamError{Stage: "write", Err: cerr}
		}
		if serr != nil && doc.Abort != nil {
			doc.Abort()
			res.OutBytes = 0
		}
	}
	if serr != nil {
		var se *embedding.StreamError
		if errors.As(serr, &se) {
			return fail(streamStage(se.Stage), se.Err)
		}
		return fail(StageMap, serr)
	}
	return *res
}

// streamStage maps a StreamError stage tag onto the pipeline taxonomy.
func streamStage(s string) Stage {
	switch s {
	case "parse":
		return StageParse
	case "write":
		return StageWrite
	}
	return StageMap
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
