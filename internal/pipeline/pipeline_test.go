package pipeline_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/guard"
	"repro/internal/pipeline"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// writeBatchDir fills dir with n valid source documents for the class
// embedding, deterministic per seed, and returns their file names.
func writeBatchDir(t *testing.T, dir string, n int) []string {
	t.Helper()
	d := workload.ClassDTD()
	r := rand.New(rand.NewSource(7))
	var names []string
	for i := 0; i < n; i++ {
		tree := xmltree.MustGenerate(d, r, xmltree.GenOptions{StarMax: 4})
		name := fmt.Sprintf("doc%03d.xml", i)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(tree.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	return names
}

func TestRunForwardBatch(t *testing.T) {
	dir := t.TempDir()
	outDir := t.TempDir()
	names := writeBatchDir(t, dir, 12)
	docs, err := pipeline.DirDocs(dir, outDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != len(names) {
		t.Fatalf("DirDocs found %d docs, want %d", len(docs), len(names))
	}

	emb := workload.ClassEmbedding()
	results, stats, err := pipeline.Run(context.Background(), emb, docs, pipeline.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 0 {
		for _, r := range results {
			if r.Err != nil {
				t.Errorf("%s: %v", r.Name, r.Err)
			}
		}
		t.Fatalf("failed = %d, want 0", stats.Failed)
	}
	if stats.Docs != len(names) || stats.InBytes == 0 || stats.OutBytes == 0 {
		t.Errorf("stats = %+v, want %d docs with nonzero byte counts", stats, len(names))
	}
	// Every output parses and conforms to the target schema.
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(outDir, name))
		if err != nil {
			t.Fatal(err)
		}
		tree, err := xmltree.ParseString(string(data))
		if err != nil {
			t.Fatalf("%s: output does not reparse: %v", name, err)
		}
		if err := tree.Validate(emb.Target); err != nil {
			t.Errorf("%s: output does not conform: %v", name, err)
		}
	}
}

// TestRunRoundTrip: forward then inverse through the pipeline recovers
// the original documents.
func TestRunRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fwdDir := t.TempDir()
	backDir := t.TempDir()
	names := writeBatchDir(t, dir, 6)
	emb := workload.ClassEmbedding()

	docs, err := pipeline.DirDocs(dir, fwdDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, stats, err := pipeline.Run(context.Background(), emb, docs, pipeline.Options{Workers: 3}); err != nil || stats.Failed != 0 {
		t.Fatalf("forward: err=%v failed=%d", err, stats.Failed)
	}
	back, err := pipeline.DirDocs(fwdDir, backDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, stats, err := pipeline.Run(context.Background(), emb, back, pipeline.Options{Workers: 3, Op: pipeline.Inverse}); err != nil || stats.Failed != 0 {
		t.Fatalf("inverse: err=%v failed=%d", err, stats.Failed)
	}
	for _, name := range names {
		orig, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(backDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(orig) != string(got) {
			t.Errorf("%s: σd⁻¹(σd(T)) differs from T", name)
		}
	}
}

// TestRunMixedValidity: one malformed and one non-conforming document
// fail individually without poisoning the rest of the batch.
func TestRunMixedValidity(t *testing.T) {
	dir := t.TempDir()
	outDir := t.TempDir()
	writeBatchDir(t, dir, 4)
	if err := os.WriteFile(filepath.Join(dir, "bad-syntax.xml"), []byte("<db><class>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad-schema.xml"), []byte("<wrong/>"), 0o644); err != nil {
		t.Fatal(err)
	}
	docs, err := pipeline.DirDocs(dir, outDir)
	if err != nil {
		t.Fatal(err)
	}
	results, stats, err := pipeline.Run(context.Background(), workload.ClassEmbedding(), docs, pipeline.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 2 {
		t.Fatalf("failed = %d, want 2", stats.Failed)
	}
	for _, r := range results {
		base := filepath.Base(r.Name)
		switch base {
		case "bad-syntax.xml":
			var de *pipeline.DocError
			if !errors.As(r.Err, &de) || de.Stage != pipeline.StageParse {
				t.Errorf("bad-syntax: err = %v, want a StageParse DocError", r.Err)
			}
		case "bad-schema.xml":
			var de *pipeline.DocError
			if !errors.As(r.Err, &de) || de.Stage != pipeline.StageMap {
				t.Errorf("bad-schema: err = %v, want a StageMap DocError", r.Err)
			}
		default:
			if r.Err != nil {
				t.Errorf("%s: unexpected error %v", r.Name, r.Err)
			}
			if _, err := os.Stat(filepath.Join(outDir, base)); err != nil {
				t.Errorf("%s: missing output: %v", base, err)
			}
		}
	}
}

// TestRunWorkerEquivalence: the same batch under 1 and 8 workers
// produces byte-identical outputs and identical per-document error
// classification.
func TestRunWorkerEquivalence(t *testing.T) {
	dir := t.TempDir()
	writeBatchDir(t, dir, 10)
	if err := os.WriteFile(filepath.Join(dir, "zz-bad.xml"), []byte("<db><nope/></db>"), 0o644); err != nil {
		t.Fatal(err)
	}
	emb := workload.ClassEmbedding()

	run := func(workers int) (map[string]string, []string) {
		outDir := t.TempDir()
		docs, err := pipeline.DirDocs(dir, outDir)
		if err != nil {
			t.Fatal(err)
		}
		results, _, err := pipeline.Run(context.Background(), emb, docs, pipeline.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		outs := map[string]string{}
		var errs []string
		for _, r := range results {
			base := filepath.Base(r.Name)
			if r.Err != nil {
				var de *pipeline.DocError
				errors.As(r.Err, &de)
				errs = append(errs, fmt.Sprintf("%s@%s", base, de.Stage))
				continue
			}
			data, err := os.ReadFile(filepath.Join(outDir, base))
			if err != nil {
				t.Fatal(err)
			}
			outs[base] = string(data)
		}
		return outs, errs
	}

	out1, errs1 := run(1)
	out8, errs8 := run(8)
	if len(out1) != len(out8) {
		t.Fatalf("output counts differ: %d vs %d", len(out1), len(out8))
	}
	for name, want := range out1 {
		if out8[name] != want {
			t.Errorf("%s: -j 1 and -j 8 outputs differ", name)
		}
	}
	if fmt.Sprint(errs1) != fmt.Sprint(errs8) {
		t.Errorf("error sets differ: %v vs %v", errs1, errs8)
	}
}

// TestRunCancellation: a canceled context stops the batch; every
// unprocessed document reports a cancellation DocError, and Canceled()
// distinguishes them from genuine per-document faults.
func TestRunCancellation(t *testing.T) {
	dir := t.TempDir()
	writeBatchDir(t, dir, 16)
	docs, err := pipeline.DirDocs(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, stats, err := pipeline.Run(ctx, workload.ClassEmbedding(), docs, pipeline.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != len(docs) {
		t.Fatalf("failed = %d, want all %d", stats.Failed, len(docs))
	}
	for _, r := range results {
		if !r.Canceled() {
			t.Errorf("%s: err = %v, want cancellation", r.Name, r.Err)
		}
		var ce *guard.CancelError
		if !errors.As(r.Err, &ce) || !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%s: err = %v, want *guard.CancelError wrapping context.Canceled", r.Name, r.Err)
		}
	}
}

// TestRunNoSink: a nil Sink still transforms and validates.
func TestRunNoSink(t *testing.T) {
	dir := t.TempDir()
	writeBatchDir(t, dir, 3)
	docs, err := pipeline.DirDocs(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	results, stats, err := pipeline.Run(context.Background(), workload.ClassEmbedding(), docs, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 0 {
		t.Fatalf("failed = %d, want 0: %+v", stats.Failed, results)
	}
	if stats.OutBytes != 0 {
		t.Errorf("OutBytes = %d, want 0 with discarded output", stats.OutBytes)
	}
	if stats.InBytes == 0 {
		t.Error("InBytes = 0, want input accounting even without a sink")
	}
}

// TestStreamTreeBatchEquivalence pins the default (streaming) batch
// path to the tree baseline: same mixed batch, byte-identical output
// files, identical per-document error stages, and -j1 ≡ -j4 in both
// modes.
func TestStreamTreeBatchEquivalence(t *testing.T) {
	dir := t.TempDir()
	writeBatchDir(t, dir, 8)
	// A document the decoder rejects and one that parses but does not
	// conform: both paths must attribute them to the same stages.
	if err := os.WriteFile(filepath.Join(dir, "broken.xml"), []byte("<db><cl<"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "nonconforming.xml"), []byte("<db><wrong/></db>"), 0o644); err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		files  map[string]string
		stages map[string]pipeline.Stage
	}
	run := func(tree bool, workers int) outcome {
		t.Helper()
		outDir := t.TempDir()
		docs, err := pipeline.DirDocs(dir, outDir)
		if err != nil {
			t.Fatal(err)
		}
		results, _, err := pipeline.Run(context.Background(), workload.ClassEmbedding(), docs,
			pipeline.Options{Workers: workers, Tree: tree})
		if err != nil {
			t.Fatal(err)
		}
		o := outcome{files: map[string]string{}, stages: map[string]pipeline.Stage{}}
		for _, r := range results {
			base := filepath.Base(r.Name)
			if r.Err != nil {
				var de *pipeline.DocError
				if !errors.As(r.Err, &de) {
					t.Fatalf("%s: err %v is not a *DocError", r.Name, r.Err)
				}
				o.stages[base] = de.Stage
				continue
			}
			b, err := os.ReadFile(filepath.Join(outDir, base))
			if err != nil {
				t.Fatal(err)
			}
			o.files[base] = string(b)
		}
		return o
	}

	want := run(true, 1)
	if len(want.files) != 8 || len(want.stages) != 2 {
		t.Fatalf("tree baseline: %d ok, %d failed, want 8/2", len(want.files), len(want.stages))
	}
	if want.stages["broken.xml"] != pipeline.StageParse {
		t.Errorf("tree: broken.xml stage = %v, want parse", want.stages["broken.xml"])
	}
	if want.stages["nonconforming.xml"] != pipeline.StageMap {
		t.Errorf("tree: nonconforming.xml stage = %v, want map", want.stages["nonconforming.xml"])
	}
	for _, mode := range []struct {
		name    string
		tree    bool
		workers int
	}{
		{"tree-j4", true, 4},
		{"stream-j1", false, 1},
		{"stream-j4", false, 4},
	} {
		got := run(mode.tree, mode.workers)
		if len(got.files) != len(want.files) {
			t.Fatalf("%s: %d ok docs, want %d", mode.name, len(got.files), len(want.files))
		}
		for name, body := range want.files {
			if got.files[name] != body {
				t.Errorf("%s: %s output differs from tree baseline", mode.name, name)
			}
		}
		for name, stage := range want.stages {
			if got.stages[name] != stage {
				t.Errorf("%s: %s stage = %v, want %v", mode.name, name, got.stages[name], stage)
			}
		}
	}
}
