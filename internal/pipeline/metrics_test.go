package pipeline_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// counterValue reads a (possibly labeled) counter back out of a
// registry snapshot by its full key.
func counterValue(t *testing.T, r *obs.Registry, key string) uint64 {
	t.Helper()
	for _, m := range r.Snapshot() {
		if m.Key() == key {
			return m.Counter
		}
	}
	t.Fatalf("metric %q not in registry", key)
	return 0
}

// TestMetricsAccounting runs a mixed batch (valid docs plus one
// unparseable) against a fresh registry and checks the ledger:
// docs_total == ok + failed, the failure is attributed to its stage,
// byte counters match the returned stats, every stage histogram saw
// every successful document, and the queue gauge drained to zero.
func TestMetricsAccounting(t *testing.T) {
	dir := t.TempDir()
	outDir := t.TempDir()
	writeBatchDir(t, dir, 6)
	if err := os.WriteFile(filepath.Join(dir, "broken.xml"), []byte("<db><class>"), 0o644); err != nil {
		t.Fatal(err)
	}
	docs, err := pipeline.DirDocs(dir, outDir)
	if err != nil {
		t.Fatal(err)
	}

	// Tree mode: the per-stage histograms below are the tree path's
	// ledger (the streaming path has its own xse_stream_* instruments,
	// covered by TestMetricsStreamAccounting).
	reg := obs.NewRegistry()
	_, stats, err := pipeline.Run(context.Background(), workload.ClassEmbedding(), docs,
		pipeline.Options{Workers: 3, Obs: reg, Tree: true})
	if err != nil {
		t.Fatal(err)
	}

	total := counterValue(t, reg, "xse_pipeline_docs_total")
	ok := counterValue(t, reg, "xse_pipeline_docs_ok_total")
	failed := counterValue(t, reg, "xse_pipeline_docs_failed_total")
	if total != 7 || ok != 6 || failed != 1 {
		t.Errorf("docs_total=%d ok=%d failed=%d, want 7/6/1", total, ok, failed)
	}
	if total != ok+failed {
		t.Errorf("ledger broken: docs_total %d != ok %d + failed %d", total, ok, failed)
	}
	if got := counterValue(t, reg, "xse_pipeline_errors_total{stage=parse}"); got != 1 {
		t.Errorf("errors_total{stage=parse} = %d, want 1", got)
	}
	if got := counterValue(t, reg, "xse_pipeline_read_bytes_total"); got != uint64(stats.InBytes) {
		t.Errorf("read_bytes_total = %d, stats.InBytes = %d", got, stats.InBytes)
	}
	if got := counterValue(t, reg, "xse_pipeline_written_bytes_total"); got != uint64(stats.OutBytes) {
		t.Errorf("written_bytes_total = %d, stats.OutBytes = %d", got, stats.OutBytes)
	}

	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "xse_pipeline_queue_depth":
			if m.Gauge != 0 {
				t.Errorf("queue_depth = %d after run, want 0", m.Gauge)
			}
		case "xse_pipeline_doc_seconds":
			if m.Hist.Count != total {
				t.Errorf("doc_seconds count = %d, want %d", m.Hist.Count, total)
			}
		case "xse_pipeline_map_seconds", "xse_pipeline_validate_seconds", "xse_pipeline_encode_seconds":
			// Only the documents that survived parsing reach these stages.
			if m.Hist.Count != ok {
				t.Errorf("%s count = %d, want %d", m.Name, m.Hist.Count, ok)
			}
		}
	}
}

// TestMetricsStreamAccounting: the default (streaming) path keeps the
// pipeline-level ledger — docs/ok/failed, stage-tagged errors, byte
// counters — and additionally feeds the engine's xse_stream_*
// instruments.
func TestMetricsStreamAccounting(t *testing.T) {
	dir := t.TempDir()
	outDir := t.TempDir()
	writeBatchDir(t, dir, 6)
	if err := os.WriteFile(filepath.Join(dir, "broken.xml"), []byte("<db><cl<"), 0o644); err != nil {
		t.Fatal(err)
	}
	docs, err := pipeline.DirDocs(dir, outDir)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	_, stats, err := pipeline.Run(context.Background(), workload.ClassEmbedding(), docs,
		pipeline.Options{Workers: 3, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}

	total := counterValue(t, reg, "xse_pipeline_docs_total")
	ok := counterValue(t, reg, "xse_pipeline_docs_ok_total")
	failed := counterValue(t, reg, "xse_pipeline_docs_failed_total")
	if total != 7 || ok != 6 || failed != 1 {
		t.Errorf("docs_total=%d ok=%d failed=%d, want 7/6/1", total, ok, failed)
	}
	if got := counterValue(t, reg, "xse_pipeline_errors_total{stage=parse}"); got != 1 {
		t.Errorf("errors_total{stage=parse} = %d, want 1", got)
	}
	if got := counterValue(t, reg, "xse_pipeline_read_bytes_total"); got != uint64(stats.InBytes) {
		t.Errorf("read_bytes_total = %d, stats.InBytes = %d", got, stats.InBytes)
	}
	if got := counterValue(t, reg, "xse_pipeline_written_bytes_total"); got != uint64(stats.OutBytes) {
		t.Errorf("written_bytes_total = %d, stats.OutBytes = %d", got, stats.OutBytes)
	}
	// Every document — including the one that failed mid-parse — went
	// through the engine, so the stream ledger saw all 7.
	if got := counterValue(t, reg, "xse_stream_docs_total"); got != 7 {
		t.Errorf("xse_stream_docs_total = %d, want 7", got)
	}
}

// TestMetricsWorkerEquivalence: the registry totals are a function of
// the workload, not the schedule — one worker and eight workers must
// produce identical counter values and histogram counts.
func TestMetricsWorkerEquivalence(t *testing.T) {
	dir := t.TempDir()
	writeBatchDir(t, dir, 10)

	run := func(workers int) map[string]uint64 {
		t.Helper()
		docs, err := pipeline.DirDocs(dir, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		if _, _, err := pipeline.Run(context.Background(), workload.ClassEmbedding(), docs,
			pipeline.Options{Workers: workers, Obs: reg}); err != nil {
			t.Fatal(err)
		}
		totals := map[string]uint64{}
		for _, m := range reg.Snapshot() {
			switch m.Kind {
			case obs.KindCounter:
				totals[m.Key()] = m.Counter
			case obs.KindHistogram:
				totals[m.Key()+"/count"] = m.Hist.Count
			}
		}
		return totals
	}

	j1, j8 := run(1), run(8)
	if len(j1) != len(j8) {
		t.Fatalf("metric sets differ: j1 has %d, j8 has %d", len(j1), len(j8))
	}
	for key, want := range j1 {
		if got, ok := j8[key]; !ok || got != want {
			t.Errorf("%s: j1=%d j8=%d", key, want, got)
		}
	}
}

// TestNopRegistryRun: a run against the no-op registry completes and
// records nothing — the configuration benchmarks use to measure
// instrumentation overhead.
func TestNopRegistryRun(t *testing.T) {
	dir := t.TempDir()
	writeBatchDir(t, dir, 3)
	docs, err := pipeline.DirDocs(dir, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	nop := obs.Nop()
	if _, stats, err := pipeline.Run(context.Background(), workload.ClassEmbedding(), docs,
		pipeline.Options{Workers: 2, Obs: nop}); err != nil || stats.Docs != 3 {
		t.Fatalf("nop run: stats=%+v err=%v", stats, err)
	}
	if snap := nop.Snapshot(); len(snap) != 0 {
		t.Errorf("nop registry recorded %d metrics", len(snap))
	}
}
