package pipeline

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

// metrics is one run's view of the pipeline instruments, resolved once
// per Run so the per-document path does no registry lookups. Stage
// error counters are pre-created per stage (index = Stage), so a
// failure is one atomic add.
type metrics struct {
	docs       *obs.Counter
	docsOK     *obs.Counter
	docsFailed *obs.Counter
	readBytes  *obs.Counter
	written    *obs.Counter
	queueDepth *obs.Gauge

	parseSec    *obs.Histogram
	mapSec      *obs.Histogram
	validateSec *obs.Histogram
	encodeSec   *obs.Histogram
	docSec      *obs.Histogram

	errByStage [StageWrite + 1]*obs.Counter
}

func newMetrics(r *obs.Registry) *metrics {
	const errHelp = "Per-document pipeline failures, by stage."
	m := &metrics{
		docs: r.Counter("xse_pipeline_docs_total",
			"Documents attempted by batch runs."),
		docsOK: r.Counter("xse_pipeline_docs_ok_total",
			"Documents migrated successfully."),
		docsFailed: r.Counter("xse_pipeline_docs_failed_total",
			"Documents that failed in any stage (docs_total = ok + failed)."),
		readBytes: r.Counter("xse_pipeline_read_bytes_total",
			"Input bytes consumed across all documents."),
		written: r.Counter("xse_pipeline_written_bytes_total",
			"Output bytes serialized across all documents."),
		queueDepth: r.Gauge("xse_pipeline_queue_depth",
			"Documents queued or in flight in the current batch run."),
		parseSec: r.Histogram("xse_pipeline_parse_seconds",
			"Per-document read+parse latency.", obs.LatencyBuckets),
		mapSec: r.Histogram("xse_pipeline_map_seconds",
			"Per-document transform latency.", obs.LatencyBuckets),
		validateSec: r.Histogram("xse_pipeline_validate_seconds",
			"Per-document output validation latency.", obs.LatencyBuckets),
		encodeSec: r.Histogram("xse_pipeline_encode_seconds",
			"Per-document serialization latency.", obs.LatencyBuckets),
		docSec: r.Histogram("xse_pipeline_doc_seconds",
			"Per-document end-to-end pipeline latency.", obs.LatencyBuckets),
	}
	for s := StageRead; s <= StageWrite; s++ {
		m.errByStage[s] = r.CounterL("xse_pipeline_errors_total", errHelp,
			"stage", s.String())
	}
	return m
}

// slowLogger writes one line per document exceeding the configured
// threshold, serialized so concurrent workers do not interleave.
type slowLogger struct {
	threshold time.Duration
	mu        sync.Mutex
	w         io.Writer
}

func newSlowLogger(threshold time.Duration, w io.Writer) *slowLogger {
	if threshold <= 0 {
		return nil
	}
	if w == nil {
		w = os.Stderr
	}
	return &slowLogger{threshold: threshold, w: w}
}

func (l *slowLogger) observe(res *DocResult) {
	if l == nil || res.Elapsed < l.threshold {
		return
	}
	status := "ok"
	if res.Err != nil {
		status = "failed"
	}
	l.mu.Lock()
	fmt.Fprintf(l.w, "pipeline: slow doc %s: %v (in=%dB out=%dB %s)\n",
		res.Name, res.Elapsed.Round(time.Microsecond), res.InBytes, res.OutBytes, status)
	l.mu.Unlock()
}
