package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE header per metric
// family, histogram families expanded into cumulative _bucket series
// with an le label plus _sum and _count. Output order is
// deterministic (sorted by name, then label set).
func WritePrometheus(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	var lastFamily string
	for _, m := range r.Snapshot() {
		m := m
		if m.Name != lastFamily {
			fmt.Fprintf(bw, "# HELP %s %s\n", m.Name, m.Help)
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.Name, m.Kind)
			lastFamily = m.Name
		}
		switch m.Kind {
		case KindCounter:
			fmt.Fprintf(bw, "%s %d\n", promSeries(m.Name, m.Labels, "", ""), m.Counter)
		case KindGauge:
			fmt.Fprintf(bw, "%s %d\n", promSeries(m.Name, m.Labels, "", ""), m.Gauge)
		case KindHistogram:
			cum := uint64(0)
			for i, c := range m.Hist.Counts {
				cum += c
				le := "+Inf"
				if i < len(m.Hist.Bounds) {
					le = formatFloat(m.Hist.Bounds[i])
				}
				fmt.Fprintf(bw, "%s %d\n", promSeries(m.Name+"_bucket", m.Labels, "le", le), cum)
			}
			fmt.Fprintf(bw, "%s %s\n", promSeries(m.Name+"_sum", m.Labels, "", ""), formatFloat(m.Hist.Sum))
			fmt.Fprintf(bw, "%s %d\n", promSeries(m.Name+"_count", m.Labels, "", ""), m.Hist.Count)
		}
	}
	return bw.Flush()
}

// promSeries renders name{labels} with an optional extra label (the
// histogram le) appended last.
func promSeries(name string, labels [][2]string, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return name
	}
	s := name + "{"
	for i, l := range labels {
		if i > 0 {
			s += ","
		}
		s += l[0] + `="` + l[1] + `"`
	}
	if extraK != "" {
		if len(labels) > 0 {
			s += ","
		}
		s += extraK + `="` + extraV + `"`
	}
	return s + "}"
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation, +Inf spelled out.
func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// jsonMetric is the WriteJSON schema for one instrument.
type jsonMetric struct {
	Name    string            `json:"name"`
	Kind    string            `json:"kind"`
	Help    string            `json:"help,omitempty"`
	Labels  map[string]string `json:"labels,omitempty"`
	Counter *uint64           `json:"counter,omitempty"`
	Gauge   *int64            `json:"gauge,omitempty"`
	Hist    *jsonHist         `json:"histogram,omitempty"`
}

type jsonHist struct {
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
}

// WriteJSON dumps the registry as a JSON array (deterministic order),
// the machine-readable twin of the Prometheus exposition.
func WriteJSON(w io.Writer, r *Registry) error {
	snap := r.Snapshot()
	out := make([]jsonMetric, 0, len(snap))
	for i := range snap {
		m := &snap[i]
		j := jsonMetric{Name: m.Name, Kind: m.Kind.String(), Help: m.Help}
		if len(m.Labels) > 0 {
			j.Labels = make(map[string]string, len(m.Labels))
			for _, l := range m.Labels {
				j.Labels[l[0]] = l[1]
			}
		}
		switch m.Kind {
		case KindCounter:
			v := m.Counter
			j.Counter = &v
		case KindGauge:
			v := m.Gauge
			j.Gauge = &v
		case KindHistogram:
			j.Hist = &jsonHist{
				Count:   m.Hist.Count,
				Sum:     m.Hist.Sum,
				Bounds:  m.Hist.Bounds,
				Buckets: m.Hist.Counts,
			}
		}
		out = append(out, j)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteSummary renders the registry for humans: the single formatter
// behind every CLI's -v output, so xse-embed, xse-query and xse-map
// can no longer each format the same counters differently.
// Zero-valued instruments are suppressed — a -v run shows what
// happened, not the whole catalogue. Output order is deterministic.
func WriteSummary(w io.Writer, r *Registry) error {
	for _, m := range r.Snapshot() {
		switch m.Kind {
		case KindCounter:
			if m.Counter == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%-44s %d\n", m.Key(), m.Counter); err != nil {
				return err
			}
		case KindGauge:
			if m.Gauge == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%-44s %d\n", m.Key(), m.Gauge); err != nil {
				return err
			}
		case KindHistogram:
			if m.Hist.Count == 0 {
				continue
			}
			mean := m.Hist.Sum / float64(m.Hist.Count)
			if _, err := fmt.Fprintf(w, "%-44s count=%d sum=%s mean=%s\n",
				m.Key(), m.Hist.Count, formatFloat(m.Hist.Sum), formatFloat(mean)); err != nil {
				return err
			}
		}
	}
	return nil
}
