package obs

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"
)

// CLI bundles the telemetry flags every command shares: the
// -cpuprofile/-memprofile pair, -debug-addr, -trace-out, -debug-linger
// and -log-format. Register with NewCLI before flag.Parse, call Start
// right after it, and route every exit path (normal returns and fatal
// exits alike) through Close so profiles, traces and the run's wide
// event are flushed.
type CLI struct {
	name string
	prof *Profiles

	debugAddr string
	traceOut  string
	linger    time.Duration
	logFormat string

	tracer *Tracer
	srv    *DebugServer
	closed bool

	// The run's wide event: one structured "cli" line per invocation
	// when -log-format is set, correlated by a run-scoped request ID
	// that Start threads into the context.
	runID string
	ev    *Event
	em    *Emitter
	start time.Time
	exit  int
}

// NewCLI registers the shared telemetry flags on fs for the named
// command.
func NewCLI(name string, fs *flag.FlagSet) *CLI {
	c := &CLI{name: name, prof: AddProfileFlags(fs)}
	fs.StringVar(&c.debugAddr, "debug-addr", "",
		"serve /metrics, /debug/vars, /debug/events and /debug/pprof on this address (\":0\" picks a free port)")
	fs.StringVar(&c.traceOut, "trace-out", "",
		"write the run's spans to this file as Chrome trace_event JSON")
	fs.DurationVar(&c.linger, "debug-linger", 0,
		"keep the -debug-addr server up this long after the run completes (for scrapes)")
	fs.StringVar(&c.logFormat, "log-format", "",
		"emit one wide event per run on stderr as structured logs: \"json\" or \"text\" (default off)")
	return c
}

// Start begins CPU profiling, binds the debug endpoint (announcing the
// resolved address on stderr — the flag may say ":0") and, when
// -trace-out was given, attaches a fresh tracer to ctx. With
// -log-format set it also mints the run's request ID, attaches it and
// an emitter to ctx, and opens the run's wide event (closed and
// emitted by Close). The returned context is the one to run the
// command under.
func (c *CLI) Start(ctx context.Context) (context.Context, error) {
	if err := c.prof.Start(); err != nil {
		return ctx, err
	}
	if c.debugAddr != "" {
		srv, err := ServeDebug(c.debugAddr, Default())
		if err != nil {
			return ctx, fmt.Errorf("debug-addr: %w", err)
		}
		c.srv = srv
		fmt.Fprintf(os.Stderr, "%s: debug server listening on http://%s/metrics\n", c.name, srv.Addr)
	}
	if c.traceOut != "" {
		c.tracer = NewTracer()
		ctx = WithTracer(ctx, c.tracer)
	}
	logger, err := NewLogger(os.Stderr, c.logFormat)
	if err != nil {
		return ctx, fmt.Errorf("log-format: %w", err)
	}
	if logger != nil {
		c.runID = NewRequestID()
		c.em = NewEmitter(logger, Events())
		c.ev = NewEvent("cli").Str("command", c.name).Str("request_id", c.runID)
		c.start = time.Now()
		ctx = WithRequestID(ctx, c.runID)
		ctx = WithEmitter(ctx, c.em)
		ctx = WithEvent(ctx, c.ev)
	}
	return ctx, nil
}

// Tracer returns the run's tracer; nil when -trace-out is unset.
func (c *CLI) Tracer() *Tracer {
	if c == nil {
		return nil
	}
	return c.tracer
}

// Event returns the run's wide event for the command to annotate;
// nil (a safe no-op target) when -log-format is off.
func (c *CLI) Event() *Event {
	if c == nil {
		return nil
	}
	return c.ev
}

// RequestID returns the run's correlation ID ("" when -log-format is
// off).
func (c *CLI) RequestID() string {
	if c == nil {
		return ""
	}
	return c.runID
}

// LogFormat returns the -log-format value ("", "json" or "text"), for
// commands that thread it into their own subsystems (xse-serve's
// per-request wide events).
func (c *CLI) LogFormat() string {
	if c == nil {
		return ""
	}
	return c.logFormat
}

// SetExit records the exit code the process is about to leave with, so
// the run's wide event reports the true outcome on fatal paths too.
func (c *CLI) SetExit(code int) {
	if c == nil {
		return
	}
	c.exit = code
}

// Close flushes everything Start opened: emits the run's wide event,
// stops the profiles, writes the trace file, lingers if asked and
// shuts the debug server down. It is idempotent so commands can both
// defer it and call it from their fatal-exit hook; failures are
// reported to stderr, never returned, because the exit code belongs
// to the command's own outcome. The wide event is emitted before the
// linger window so a scrape of /debug/events during the linger sees
// the completed run.
func (c *CLI) Close() {
	if c == nil || c.closed {
		return
	}
	c.closed = true
	if c.ev != nil {
		c.ev.Int("exit_code", int64(c.exit))
		c.ev.Dur("elapsed_ms", time.Since(c.start))
		c.em.Emit(c.ev)
	}
	c.prof.StopLogged(c.name)
	if c.tracer != nil && c.traceOut != "" {
		f, err := os.Create(c.traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: trace-out: %v\n", c.name, err)
		} else {
			if err := c.tracer.WriteChromeTrace(f); err != nil {
				fmt.Fprintf(os.Stderr, "%s: trace-out: %v\n", c.name, err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: trace-out: %v\n", c.name, err)
			} else {
				fmt.Fprintf(os.Stderr, "%s: wrote %d spans to %s\n", c.name, c.tracer.Len(), c.traceOut)
			}
		}
	}
	if c.srv != nil {
		if c.linger > 0 {
			time.Sleep(c.linger)
		}
		// Drain rather than abandon: a scrape that raced the end of the
		// linger window still completes (bounded, so a wedged client
		// cannot hold the process open).
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = c.srv.Shutdown(ctx)
		cancel()
	}
}
