package obs

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"
)

// CLI bundles the telemetry flags every command shares: the
// -cpuprofile/-memprofile pair, -debug-addr, -trace-out and
// -debug-linger. Register with NewCLI before flag.Parse, call Start
// right after it, and route every exit path (normal returns and fatal
// exits alike) through Close so profiles and traces are flushed.
type CLI struct {
	name string
	prof *Profiles

	debugAddr string
	traceOut  string
	linger    time.Duration

	tracer *Tracer
	srv    *DebugServer
	closed bool
}

// NewCLI registers the shared telemetry flags on fs for the named
// command.
func NewCLI(name string, fs *flag.FlagSet) *CLI {
	c := &CLI{name: name, prof: AddProfileFlags(fs)}
	fs.StringVar(&c.debugAddr, "debug-addr", "",
		"serve /metrics, /debug/vars and /debug/pprof on this address (\":0\" picks a free port)")
	fs.StringVar(&c.traceOut, "trace-out", "",
		"write the run's spans to this file as Chrome trace_event JSON")
	fs.DurationVar(&c.linger, "debug-linger", 0,
		"keep the -debug-addr server up this long after the run completes (for scrapes)")
	return c
}

// Start begins CPU profiling, binds the debug endpoint (announcing the
// resolved address on stderr — the flag may say ":0") and, when
// -trace-out was given, attaches a fresh tracer to ctx. The returned
// context is the one to run the command under.
func (c *CLI) Start(ctx context.Context) (context.Context, error) {
	if err := c.prof.Start(); err != nil {
		return ctx, err
	}
	if c.debugAddr != "" {
		srv, err := ServeDebug(c.debugAddr, Default())
		if err != nil {
			return ctx, fmt.Errorf("debug-addr: %w", err)
		}
		c.srv = srv
		fmt.Fprintf(os.Stderr, "%s: debug server listening on http://%s/metrics\n", c.name, srv.Addr)
	}
	if c.traceOut != "" {
		c.tracer = NewTracer()
		ctx = WithTracer(ctx, c.tracer)
	}
	return ctx, nil
}

// Tracer returns the run's tracer; nil when -trace-out is unset.
func (c *CLI) Tracer() *Tracer {
	if c == nil {
		return nil
	}
	return c.tracer
}

// Close flushes everything Start opened: stops the profiles, writes
// the trace file, lingers if asked and shuts the debug server down.
// It is idempotent so commands can both defer it and call it from
// their fatal-exit hook; failures are reported to stderr, never
// returned, because the exit code belongs to the command's own
// outcome.
func (c *CLI) Close() {
	if c == nil || c.closed {
		return
	}
	c.closed = true
	c.prof.StopLogged(c.name)
	if c.tracer != nil && c.traceOut != "" {
		f, err := os.Create(c.traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: trace-out: %v\n", c.name, err)
		} else {
			if err := c.tracer.WriteChromeTrace(f); err != nil {
				fmt.Fprintf(os.Stderr, "%s: trace-out: %v\n", c.name, err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: trace-out: %v\n", c.name, err)
			} else {
				fmt.Fprintf(os.Stderr, "%s: wrote %d spans to %s\n", c.name, c.tracer.Len(), c.traceOut)
			}
		}
	}
	if c.srv != nil {
		if c.linger > 0 {
			time.Sleep(c.linger)
		}
		// Drain rather than abandon: a scrape that raced the end of the
		// linger window still completes (bounded, so a wedged client
		// cannot hold the process open).
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = c.srv.Shutdown(ctx)
		cancel()
	}
}
