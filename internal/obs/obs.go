// Package obs is the unified telemetry layer: a zero-dependency,
// stdlib-only metrics registry (atomic counters, gauges and bounded
// histograms with fixed bucket layouts), a lightweight span tracer
// emitting Chrome trace_event JSON, and exporters (Prometheus text
// exposition, JSON dump, human-readable summary, and a -debug-addr
// HTTP endpoint serving /metrics, /debug/vars and net/http/pprof).
//
// Design constraints, in order:
//
//   - Hot paths never allocate and never lock: instruments are
//     pre-registered structs of atomics; labeled families pre-create
//     their children at registration time so an Inc in a worker loop
//     is one uncontended atomic add. All mutation is atomic, so
//     `go test -race` stays clean without mutexes on the fast path.
//   - Instrumentation must be cheap to disable: every instrument
//     method is a no-op on a nil receiver, and the Nop registry hands
//     out nil instruments. Benchmarks compare the instrumented and
//     compiled-out flavors by swapping the registry (see
//     BENCH_PR5.json).
//   - One source of truth: CLI -v summaries, /metrics scrapes and
//     JSON dumps all render the same registry, so the human and
//     machine views cannot disagree.
//
// Metric names follow the Prometheus convention enforced by
// ValidName (and by scripts/metriclint at CI time):
// xse_<subsystem>_<what>[_total|_seconds|_bytes].
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates the instrument types of a registry.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind in the Prometheus TYPE vocabulary.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// nameRe is the ValidName pattern, compiled by hand to keep the
// package dependency-free of regexp on the registration path (the
// same pattern is enforced textually by scripts/metriclint:
// ^xse_[a-z0-9_]+(_total|_seconds|_bytes)?$).
func validName(name string) bool {
	const prefix = "xse_"
	if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
		return false
	}
	for i := len(prefix); i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_' {
			continue
		}
		return false
	}
	return true
}

// ValidName reports whether name matches the registry's naming rule
// ^xse_[a-z0-9_]+(_total|_seconds|_bytes)?$ (the suffixes are already
// covered by the body pattern; they are called out because the lint
// rejects other unit suffixes by convention).
func ValidName(name string) bool { return validName(name) }

// Counter is a monotonically increasing uint64. All methods are
// no-ops on a nil receiver, so instruments handed out by the Nop
// registry compile down to a predicted branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current total (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 (queue depths, in-flight work).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a bounded histogram with a fixed bucket layout chosen
// at registration: observations index a precomputed upper-bound table,
// so Observe is a scan over a small array plus two atomic adds and
// never allocates. The sum is kept as float64 bits updated by CAS,
// keeping -race clean without a lock.
type Histogram struct {
	bounds []float64 // sorted upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start; the canonical
// way to time a stage: defer h.ObserveSince(time.Now()) or explicit
// start/stop around the region.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// HistSnapshot is a point-in-time copy of a histogram for exporters.
type HistSnapshot struct {
	Bounds []float64 // upper bounds; the +Inf bucket is Counts[len(Bounds)]
	Counts []uint64  // per-bucket (non-cumulative) counts
	Count  uint64
	Sum    float64
}

// snapshot copies the histogram state (nil on a nil receiver, like
// the mutation methods).
func (h *Histogram) snapshot() *HistSnapshot {
	if h == nil {
		return nil
	}
	s := &HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Fixed bucket layouts. Registering the same histogram name twice
// must use the same layout; the presets keep instrumentation sites
// from inventing ad-hoc shapes.
var (
	// LatencyBuckets spans 10µs to 10s exponentially — the range of
	// everything this system times, from one compiled query evaluation
	// to an Exact search on a large schema.
	LatencyBuckets = []float64{
		10e-6, 25e-6, 100e-6, 250e-6,
		1e-3, 2.5e-3, 10e-3, 25e-3,
		0.1, 0.25, 1, 2.5, 10,
	}
	// SizeBuckets is a powers-of-two layout for counts (automaton
	// states, compiled program lengths, candidate-set sizes).
	SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}
)

// metric is one registered instrument with its identity and help.
type metric struct {
	name   string
	help   string
	kind   Kind
	labels [][2]string // sorted key/value const labels; nil when unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// key is the full identity: base name plus rendered labels.
func (m *metric) key() string { return metricKey(m.name, m.labels) }

func metricKey(name string, labels [][2]string) string {
	if len(labels) == 0 {
		return name
	}
	k := name + "{"
	for i, l := range labels {
		if i > 0 {
			k += ","
		}
		k += l[0] + "=" + l[1]
	}
	return k + "}"
}

// Registry holds registered instruments. Registration takes a lock
// and is expected at setup time (package init, per-run construction);
// the instruments it returns are lock-free. The zero value is not
// usable; construct with NewRegistry, or use Default / Nop.
type Registry struct {
	nop bool

	mu      sync.Mutex
	byKey   map[string]*metric
	ordered []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry: package-level
// instruments (xpath evaluation, translation, guard limits) register
// here, and CLIs export it via -v, -debug-addr and -trace-out.
func Default() *Registry { return defaultRegistry }

var nopRegistry = &Registry{nop: true}

// Nop returns the no-op registry: its constructors return nil
// instruments whose methods do nothing, and exporters render it
// empty. Passing it through an Options.Obs field is the
// "instrumentation compiled out" configuration benchmarked in
// BENCH_PR5.json.
func Nop() *Registry { return nopRegistry }

// OrDefault resolves the conventional nil-means-default Options
// field.
func OrDefault(r *Registry) *Registry {
	if r == nil {
		return defaultRegistry
	}
	return r
}

// register installs (or re-fetches) a metric. Re-registering the
// same key with the same kind returns the existing instrument —
// independent call sites may share a counter by name — while a kind
// mismatch, bucket-layout mismatch or invalid name panics: metric
// identity is static program structure, and a clash is a bug to fix,
// not an error to handle. The instrument itself is created here,
// under r.mu, so register always returns a fully-initialized metric:
// two goroutines racing to register the same name get the same
// instrument, never two (buckets is nil except for histograms).
func (r *Registry) register(name, help string, kind Kind, labels [][2]string, buckets []float64) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q (want ^xse_[a-z0-9_]+$)", name))
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", key, kind, m.kind))
		}
		if kind == KindHistogram && !sameBuckets(m.h.bounds, buckets) {
			panic("obs: histogram " + name + " re-registered with different buckets")
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind, labels: labels}
	switch kind {
	case KindCounter:
		m.c = &Counter{}
	case KindGauge:
		m.g = &Gauge{}
	case KindHistogram:
		m.h = &Histogram{
			bounds: buckets,
			counts: make([]atomic.Uint64, len(buckets)+1),
		}
	}
	r.byKey[key] = m
	r.ordered = append(r.ordered, m)
	return m
}

// parseLabels validates and sorts variadic key/value pairs.
func parseLabels(kv []string) [][2]string {
	if len(kv) == 0 {
		return nil
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	labels := make([][2]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		labels = append(labels, [2]string{kv[i], kv[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i][0] < labels[j][0] })
	return labels
}

// Counter registers (or fetches) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterL(name, help)
}

// CounterL is Counter with constant labels given as key/value pairs,
// e.g. CounterL("xse_pipeline_errors_total", "…", "stage", "parse").
// Each label combination is its own pre-created child, so hot-path
// increments never format label strings.
func (r *Registry) CounterL(name, help string, kv ...string) *Counter {
	if r.nop {
		return nil
	}
	return r.register(name, help, KindCounter, parseLabels(kv), nil).c
}

// Gauge registers (or fetches) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeL(name, help)
}

// GaugeL is Gauge with constant labels.
func (r *Registry) GaugeL(name, help string, kv ...string) *Gauge {
	if r.nop {
		return nil
	}
	return r.register(name, help, KindGauge, parseLabels(kv), nil).g
}

// Histogram registers (or fetches) the named histogram with the given
// fixed bucket layout (use the package presets). Re-registration must
// pass an identical layout.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramL(name, help, buckets)
}

// HistogramL is Histogram with constant labels.
func (r *Registry) HistogramL(name, help string, buckets []float64, kv ...string) *Histogram {
	if r.nop {
		return nil
	}
	if len(buckets) == 0 {
		panic("obs: histogram with no buckets: " + name)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram buckets not strictly increasing: " + name)
		}
	}
	return r.register(name, help, KindHistogram, parseLabels(kv), buckets).h
}

func sameBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MetricSnapshot is one instrument's identity and current value, as
// consumed by the exporters.
type MetricSnapshot struct {
	Name   string
	Help   string
	Kind   Kind
	Labels [][2]string
	// Counter holds the counter value for KindCounter; Gauge the
	// gauge value for KindGauge; Hist the histogram state for
	// KindHistogram.
	Counter uint64
	Gauge   int64
	Hist    *HistSnapshot
}

// Key renders the full identity (name plus labels).
func (m *MetricSnapshot) Key() string { return metricKey(m.Name, m.Labels) }

// Snapshot copies every registered metric, sorted by name then label
// set, so exporter output is deterministic.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil || r.nop {
		return nil
	}
	r.mu.Lock()
	metrics := make([]*metric, len(r.ordered))
	copy(metrics, r.ordered)
	r.mu.Unlock()

	out := make([]MetricSnapshot, 0, len(metrics))
	for _, m := range metrics {
		s := MetricSnapshot{Name: m.name, Help: m.help, Kind: m.kind, Labels: m.labels}
		switch m.kind {
		case KindCounter:
			s.Counter = m.c.Value()
		case KindGauge:
			s.Gauge = m.g.Value()
		case KindHistogram:
			s.Hist = m.h.snapshot()
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}
