package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestEventNilSafety(t *testing.T) {
	var ev *Event
	// Every builder method must be a chainable no-op on nil.
	out := ev.Str("k", "v").Int("n", 1).Float("f", 0.5).Bool("b", true).Dur("d_ms", time.Second)
	if out != nil {
		t.Fatalf("nil event builder returned %v", out)
	}
	if ev.Name() != "" {
		t.Fatalf("nil event name = %q", ev.Name())
	}
	var em *Emitter
	em.Emit(NewEvent("x")) // must not panic
	em.Emit(nil)
}

// TestWideEventGolden pins the JSON shape of one wide event line: the
// field order, names and value types operators and the smoke scripts
// depend on. The slog time is replaced with a fixed instant so the
// line is deterministic.
func TestWideEventGolden(t *testing.T) {
	var buf bytes.Buffer
	h := slog.NewJSONHandler(&buf, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.String(slog.TimeKey, "2026-01-02T03:04:05Z")
			}
			return a
		},
	})
	em := NewEmitter(slog.New(h), nil)

	ev := NewEvent("request").
		Str("request_id", "ab12cd34ef56ab78").
		Str("route", "embed").
		Int("status", 200).
		Str("outcome", "ok").
		Bool("cache_hit", true).
		Int("attempts", 1).
		Dur("queue_wait_ms", 1500*time.Microsecond).
		Dur("latency_ms", 42*time.Millisecond)
	em.Emit(ev)

	golden := filepath.Join("testdata", "wide_event.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("wide-event JSON drifted from golden.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestEmitterRecorderAndTextFormat(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "text")
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(8)
	em := NewEmitter(logger, rec)
	em.Emit(NewEvent("cli").Str("command", "xse-test").Int("exit_code", 0))

	if !strings.Contains(buf.String(), "msg=cli") || !strings.Contains(buf.String(), "command=xse-test") {
		t.Errorf("text line = %q", buf.String())
	}
	evs := rec.Snapshot()
	if len(evs) != 1 || evs[0].Name != "cli" || !evs[0].MatchAttr("command", "xse-test") {
		t.Errorf("recorded = %+v", evs)
	}
}

func TestNewLoggerFormats(t *testing.T) {
	if l, err := NewLogger(os.Stderr, ""); err != nil || l != nil {
		t.Errorf("empty format: logger=%v err=%v", l, err)
	}
	for _, f := range []string{"json", "text"} {
		if l, err := NewLogger(os.Stderr, f); err != nil || l == nil {
			t.Errorf("format %q: logger=%v err=%v", f, l, err)
		}
	}
	if _, err := NewLogger(os.Stderr, "yaml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestNewRequestID(t *testing.T) {
	re := regexp.MustCompile(`^[0-9a-f]{16}$`)
	a, b := NewRequestID(), NewRequestID()
	if !re.MatchString(a) || !re.MatchString(b) {
		t.Fatalf("malformed IDs %q %q", a, b)
	}
	if a == b {
		t.Fatalf("IDs collide: %q", a)
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if RequestIDFrom(ctx) != "" || EventFrom(ctx) != nil || EmitterFrom(ctx) != nil {
		t.Fatal("empty context not empty")
	}
	ev := NewEvent("request")
	em := NewEmitter(nil, NewRecorder(1))
	ctx = WithRequestID(ctx, "deadbeefdeadbeef")
	ctx = WithEvent(ctx, ev)
	ctx = WithEmitter(ctx, em)
	if RequestIDFrom(ctx) != "deadbeefdeadbeef" {
		t.Errorf("request id = %q", RequestIDFrom(ctx))
	}
	if EventFrom(ctx) != ev || EmitterFrom(ctx) != em {
		t.Error("event/emitter not round-tripped")
	}
	// Inner stages annotate through the context without knowing the
	// event exists.
	EventFrom(ctx).Bool("cache_hit", true)
	var got bytes.Buffer
	b, err := json.Marshal(RecordedEvent{Name: ev.Name(), Attrs: ev.attrs})
	if err != nil {
		t.Fatal(err)
	}
	got.Write(b)
	if !strings.Contains(got.String(), `"cache_hit":true`) {
		t.Errorf("annotation lost: %s", got.String())
	}
}
