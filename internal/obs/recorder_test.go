package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func recEvent(name string, attrs ...string) RecordedEvent {
	ev := NewEvent(name)
	for i := 0; i+1 < len(attrs); i += 2 {
		ev.Str(attrs[i], attrs[i+1])
	}
	return RecordedEvent{Time: time.Unix(0, 0), Name: name, Attrs: ev.attrs}
}

func TestRecorderWraparound(t *testing.T) {
	r := NewRecorder(4)
	if r.Len() != 0 {
		t.Fatalf("fresh Len = %d", r.Len())
	}
	for i := 0; i < 6; i++ {
		r.Add(recEvent(fmt.Sprintf("e%d", i)))
	}
	if r.Len() != 4 {
		t.Fatalf("Len after wrap = %d, want 4", r.Len())
	}
	got := r.Snapshot()
	// Most recent first; the two oldest (e0, e1) were overwritten.
	want := []string{"e5", "e4", "e3", "e2"}
	if len(got) != len(want) {
		t.Fatalf("snapshot size = %d", len(got))
	}
	for i, w := range want {
		if got[i].Name != w {
			t.Errorf("snapshot[%d] = %q, want %q", i, got[i].Name, w)
		}
	}
}

func TestRecorderNil(t *testing.T) {
	var r *Recorder
	r.Add(recEvent("x")) // no-op, no panic
	if r.Len() != 0 || r.Snapshot() != nil {
		t.Fatal("nil recorder not empty")
	}
}

func TestRecorderServeHTTPFilters(t *testing.T) {
	r := NewRecorder(16)
	r.Add(recEvent("request", "route", "embed", "outcome", "ok"))
	r.Add(recEvent("request", "route", "migrate", "outcome", "ok"))
	r.Add(recEvent("request", "route", "embed", "outcome", "error"))
	r.Add(recEvent("cli", "command", "xse-map"))

	get := func(query string) []map[string]any {
		t.Helper()
		req := httptest.NewRequest("GET", "/debug/events"+query, nil)
		w := httptest.NewRecorder()
		r.ServeHTTP(w, req)
		if w.Code != 200 {
			t.Fatalf("GET %s: status %d", query, w.Code)
		}
		var out []map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatalf("GET %s: %v\n%s", query, err, w.Body.String())
		}
		return out
	}

	if got := get(""); len(got) != 4 {
		t.Errorf("unfiltered: %d events", len(got))
	}
	if got := get("?event=request"); len(got) != 3 {
		t.Errorf("event filter: %d events", len(got))
	}
	if got := get("?event=request&route=embed"); len(got) != 2 {
		t.Errorf("two filters: %d events", len(got))
	}
	got := get("?event=request&route=embed&outcome=error")
	if len(got) != 1 || got[0]["route"] != "embed" || got[0]["outcome"] != "error" {
		t.Errorf("three filters: %+v", got)
	}
	if got := get("?n=2"); len(got) != 2 || got[0]["event"] != "cli" {
		t.Errorf("n limit: %+v", got)
	}
	if got := get("?route=nosuch"); len(got) != 0 {
		t.Errorf("no-match filter: %+v", got)
	}

	req := httptest.NewRequest("GET", "/debug/events?n=bogus", nil)
	w := httptest.NewRecorder()
	r.ServeHTTP(w, req)
	if w.Code != 400 {
		t.Errorf("invalid n: status %d", w.Code)
	}
}

func TestRecordedEventJSONTypes(t *testing.T) {
	ev := NewEvent("request").
		Str("route", "embed").
		Int("status", 200).
		Float("quality", 0.5).
		Bool("cache_hit", false)
	b, err := json.Marshal(RecordedEvent{
		Time:  time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC),
		Name:  ev.Name(),
		Attrs: ev.attrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"time":"2026-01-02T03:04:05Z","event":"request","route":"embed","status":200,"quality":0.5,"cache_hit":false}`
	if string(b) != want {
		t.Errorf("marshal = %s\nwant      %s", b, want)
	}
}

// TestRecorderConcurrent hammers Add, Snapshot and ServeHTTP from many
// goroutines; run under -race this pins the recorder's thread safety.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(32)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add(recEvent("request", "route", "embed"))
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = r.Snapshot()
				req := httptest.NewRequest("GET", "/debug/events?event=request", nil)
				r.ServeHTTP(httptest.NewRecorder(), req)
			}
		}()
	}
	wg.Wait()
	if r.Len() != 32 {
		t.Fatalf("Len = %d, want 32", r.Len())
	}
}
