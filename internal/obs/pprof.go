package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles is the shared -cpuprofile/-memprofile flag pair used by
// every CLI: register the flags with AddProfileFlags, Start after
// flag.Parse, and Stop (error-checked) on every exit path — the CLIs
// route their os.Exit calls through a cleanup hook so profiles are
// flushed even on fatal errors.
type Profiles struct {
	cpu, mem string
	cpuFile  *os.File
	stopped  bool
}

// AddProfileFlags registers -cpuprofile and -memprofile on fs.
func AddProfileFlags(fs *flag.FlagSet) *Profiles {
	p := &Profiles{}
	fs.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.mem, "memprofile", "", "write a heap profile to this file on exit")
	return p
}

// Start begins CPU profiling when -cpuprofile was given. It is a
// no-op when neither flag is set.
func (p *Profiles) Start() error {
	if p == nil || p.cpu == "" {
		return nil
	}
	f, err := os.Create(p.cpu)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	p.cpuFile = f
	return nil
}

// Stop flushes and closes the CPU profile and writes the heap
// profile. It is idempotent, so deferring it and calling it from a
// fatal-exit hook cannot double-write.
func (p *Profiles) Stop() error {
	if p == nil || p.stopped {
		return nil
	}
	p.stopped = true
	var first error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil && first == nil {
			first = fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpuFile = nil
	}
	if p.mem != "" {
		f, err := os.Create(p.mem)
		if err != nil {
			if first == nil {
				first = fmt.Errorf("memprofile: %w", err)
			}
			return first
		}
		runtime.GC() // materialize up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
			first = fmt.Errorf("memprofile: %w", err)
		}
		if err := f.Close(); err != nil && first == nil {
			first = fmt.Errorf("memprofile: %w", err)
		}
	}
	return first
}

// StopLogged is Stop for exit paths that cannot propagate an error:
// failures are reported to stderr with the CLI's name prefix.
func (p *Profiles) StopLogged(cli string) {
	if err := p.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", cli, err)
	}
}
