package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"time"
)

// Event is a wide structured event under construction: one request,
// one CLI run, one search restart — a single record carrying every
// fact about the unit of work, emitted once when the unit completes
// (the "wide event" style, as opposed to many narrow log lines).
// Methods are nil-safe no-ops so call sites never guard, and return
// the event for chaining. An Event is built by one goroutine; it is
// not safe for concurrent mutation.
//
// Field keys are snake_case by convention (enforced by
// scripts/metriclint); duration fields use Dur and end in _ms.
type Event struct {
	name  string
	attrs []slog.Attr
}

// NewEvent starts a wide event with the given name (e.g. "request",
// "cli", "search.restart").
func NewEvent(name string) *Event {
	return &Event{name: name, attrs: make([]slog.Attr, 0, 16)}
}

// Name returns the event's name ("" on nil).
func (e *Event) Name() string {
	if e == nil {
		return ""
	}
	return e.name
}

// Str adds a string field.
func (e *Event) Str(key, v string) *Event {
	if e == nil {
		return nil
	}
	e.attrs = append(e.attrs, slog.String(key, v))
	return e
}

// Int adds an integer field.
func (e *Event) Int(key string, v int64) *Event {
	if e == nil {
		return nil
	}
	e.attrs = append(e.attrs, slog.Int64(key, v))
	return e
}

// Float adds a float field.
func (e *Event) Float(key string, v float64) *Event {
	if e == nil {
		return nil
	}
	e.attrs = append(e.attrs, slog.Float64(key, v))
	return e
}

// Bool adds a boolean field.
func (e *Event) Bool(key string, v bool) *Event {
	if e == nil {
		return nil
	}
	e.attrs = append(e.attrs, slog.Bool(key, v))
	return e
}

// Dur adds a duration field as fractional milliseconds; by convention
// the key ends in _ms.
func (e *Event) Dur(key string, d time.Duration) *Event {
	if e == nil {
		return nil
	}
	e.attrs = append(e.attrs, slog.Float64(key, float64(d)/float64(time.Millisecond)))
	return e
}

// Emitter delivers completed wide events to a structured log (JSON or
// text lines via log/slog) and/or the in-process flight recorder. A
// nil Emitter drops everything; either sink may be nil independently.
// Emit is safe for concurrent use.
type Emitter struct {
	log *slog.Logger
	rec *Recorder
}

// NewEmitter builds an emitter writing to logger (nil: no log lines)
// and recorder (nil: no flight recording).
func NewEmitter(logger *slog.Logger, rec *Recorder) *Emitter {
	if logger == nil && rec == nil {
		return nil
	}
	return &Emitter{log: logger, rec: rec}
}

// Emit timestamps the event and delivers it to the emitter's sinks.
// The event must not be mutated afterwards.
func (em *Emitter) Emit(ev *Event) {
	if em == nil || ev == nil {
		return
	}
	now := time.Now()
	if em.log != nil {
		em.log.LogAttrs(context.Background(), slog.LevelInfo, ev.name, ev.attrs...)
	}
	if em.rec != nil {
		em.rec.Add(RecordedEvent{Time: now, Name: ev.name, Attrs: ev.attrs})
	}
}

// NewLogger builds the slog logger behind -log-format: "json" emits
// one JSON object per line, "text" the logfmt-ish slog text format,
// "" disables logging (nil logger). Any other value is an error.
func NewLogger(w io.Writer, format string) (*slog.Logger, error) {
	switch format {
	case "":
		return nil, nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	case "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want json or text)", format)
}

// NewRequestID mints a 16-hex-char random correlation ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant ID keeps
		// the request serviceable (correlation degrades, nothing else).
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

type requestIDKey struct{}
type eventKey struct{}
type emitterKey struct{}

// WithRequestID attaches a correlation ID to ctx; subsystems (search,
// pipeline, spans) echo it into their own events and spans.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the context's correlation ID ("" when unset).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// WithEvent attaches the unit of work's wide event to ctx so inner
// stages can annotate it (EventFrom(ctx).Bool("cache_hit", true))
// without threading it through every signature.
func WithEvent(ctx context.Context, ev *Event) context.Context {
	return context.WithValue(ctx, eventKey{}, ev)
}

// EventFrom returns the context's wide event; nil (a safe no-op
// target) when none is attached.
func EventFrom(ctx context.Context) *Event {
	ev, _ := ctx.Value(eventKey{}).(*Event)
	return ev
}

// WithEmitter attaches an emitter to ctx so subsystems can emit their
// own event streams (e.g. search.restart) alongside the unit's wide
// event.
func WithEmitter(ctx context.Context, em *Emitter) context.Context {
	return context.WithValue(ctx, emitterKey{}, em)
}

// EmitterFrom returns the context's emitter; nil (drops events) when
// none is attached.
func EmitterFrom(ctx context.Context) *Emitter {
	em, _ := ctx.Value(emitterKey{}).(*Emitter)
	return em
}
