package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// DebugServer is the -debug-addr HTTP endpoint: it serves the
// registry at /metrics (Prometheus text format) and /metrics.json,
// the process expvars at /debug/vars, and the net/http/pprof suite
// under /debug/pprof/. It binds eagerly (so ":0" reports the chosen
// port in Addr) and serves in a background goroutine until Close or
// Shutdown.
type DebugServer struct {
	// Addr is the bound listen address, e.g. "127.0.0.1:43521".
	Addr string

	ln  net.Listener
	srv *http.Server
}

// expvarOnce guards the one-time expvar publication: expvar.Publish
// panics on duplicate names, and the expvar map is process-global, so
// only the first exported registry lands there (later servers still
// serve their own /metrics).
var expvarOnce sync.Once

// publishExpvar exports r's snapshot under the "xse" expvar once per
// process.
func publishExpvar(r *Registry) {
	expvarOnce.Do(func() {
		expvar.Publish("xse", expvar.Func(func() any {
			out := map[string]any{}
			for _, m := range r.Snapshot() {
				switch m.Kind {
				case KindCounter:
					out[m.Key()] = m.Counter
				case KindGauge:
					out[m.Key()] = m.Gauge
				case KindHistogram:
					out[m.Key()] = map[string]any{"count": m.Hist.Count, "sum": m.Hist.Sum}
				}
			}
			return out
		}))
	})
}

// RegisterDebugHandlers mounts the debug endpoints — /metrics,
// /metrics.json, /debug/vars and the /debug/pprof suite — for registry
// r (Default() when nil) on mux. ServeDebug uses it for the standalone
// -debug-addr listener; long-running daemons (xse-serve) use it to
// serve the same surface from their own mux alongside their API.
func RegisterDebugHandlers(mux *http.ServeMux, r *Registry) {
	r = OrDefault(r)
	publishExpvar(r)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, r)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	// The flight recorder: recent wide events, filterable by any field
	// (?event=request&route=embed, ?request_id=..., &n=20).
	mux.Handle("/debug/events", Events())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServeDebug starts the debug endpoint on addr for registry r
// (Default() when nil). Callers own the returned server and should
// Shutdown (graceful) or Close (abrupt) it on exit; the listener's
// real address is in Addr.
func ServeDebug(addr string, r *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	RegisterDebugHandlers(mux, r)
	d := &DebugServer{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}

// Shutdown stops accepting new connections and waits for in-flight
// requests (a scrape racing the process exit, a pprof profile mid
// capture) to complete, up to ctx's deadline. When the deadline
// expires first the remaining connections are closed abruptly and the
// context's error is returned.
func (d *DebugServer) Shutdown(ctx context.Context) error {
	if d == nil {
		return nil
	}
	err := d.srv.Shutdown(ctx)
	if err != nil {
		_ = d.srv.Close()
	}
	return err
}

// Close stops serving immediately, dropping in-flight requests; prefer
// Shutdown on orderly exits.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}
