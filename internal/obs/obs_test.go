package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent hammers one counter/gauge/histogram from 8
// goroutines; meaningful mostly under -race, and the totals must be
// exact (no lost updates).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("xse_test_ops_total", "ops")
	g := r.Gauge("xse_test_depth", "depth")
	h := r.Histogram("xse_test_seconds", "latency", LatencyBuckets)

	const goroutines = 8
	const perG = 10_000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	want := float64(goroutines*perG) * 0.001
	if got := h.Sum(); math.Abs(got-want) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g", got, want)
	}
}

// TestRegistryConcurrentRegistration races first-time registration of
// the same names from 8 goroutines: every goroutine must receive the
// same instrument (created under the registry lock), so no increment
// is lost to a discarded duplicate and Snapshot never sees a
// half-built metric. Meaningful mostly under -race.
func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 1_000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("xse_test_race_total", "")
			g := r.Gauge("xse_test_race_depth", "")
			h := r.Histogram("xse_test_race_seconds", "", LatencyBuckets)
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
				// Snapshot concurrently with registration: must never
				// observe a metric without its instrument.
				if j%100 == 0 {
					for _, s := range r.Snapshot() {
						if s.Kind == KindHistogram && s.Hist == nil {
							t.Error("Snapshot returned histogram metric with nil Hist")
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	if got := r.Counter("xse_test_race_total", "").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d (lost updates to a duplicate instrument)", got, goroutines*perG)
	}
	if got := r.Gauge("xse_test_race_depth", "").Value(); got != goroutines*perG {
		t.Errorf("gauge = %d, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("xse_test_race_seconds", "", LatencyBuckets).Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

// TestRegistryReregister: same name and kind share the instrument;
// kind mismatch panics.
func TestRegistryReregister(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("xse_test_total", "")
	b := r.Counter("xse_test_total", "")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("xse_test_total", "")
}

func TestValidName(t *testing.T) {
	for _, tc := range []struct {
		name string
		ok   bool
	}{
		{"xse_search_total", true},
		{"xse_pipeline_parse_seconds", true},
		{"xse_pipeline_read_bytes_total", true},
		{"xse_x", true},
		{"xse_", false},
		{"search_total", false},
		{"xse_Search_total", false},
		{"xse_search-total", false},
		{"", false},
	} {
		if got := ValidName(tc.name); got != tc.ok {
			t.Errorf("ValidName(%q) = %v, want %v", tc.name, got, tc.ok)
		}
	}
}

// TestHistogramBuckets pins the bucket-boundary convention: a value
// equal to an upper bound lands in that bucket (Prometheus le
// semantics), one past it in the next.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("xse_test_size", "", []float64{1, 2, 4})
	for _, tc := range []struct {
		v      float64
		bucket int
	}{
		{0, 0},
		{1, 0},   // v == bound: inclusive
		{1.5, 1},
		{2, 1},
		{3, 2},
		{4, 2},
		{5, 3},   // +Inf bucket
		{100, 3},
	} {
		before := h.snapshot()
		h.Observe(tc.v)
		after := h.snapshot()
		for i := range after.Counts {
			want := before.Counts[i]
			if i == tc.bucket {
				want++
			}
			if after.Counts[i] != want {
				t.Errorf("Observe(%g): bucket %d count = %d, want %d",
					tc.v, i, after.Counts[i], want)
			}
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
}

// TestNopAndNilInstruments: the Nop registry hands out nil instruments
// whose methods are safe no-ops, and exporters render it empty.
func TestNopAndNilInstruments(t *testing.T) {
	r := Nop()
	c := r.Counter("xse_whatever_total", "")
	g := r.Gauge("xse_whatever", "")
	h := r.Histogram("xse_whatever_seconds", "", LatencyBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nop registry returned non-nil instruments")
	}
	c.Inc()
	c.Add(7)
	g.Set(3)
	g.Add(-1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments reported nonzero values")
	}
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Errorf("nop snapshot has %d metrics, want 0", len(snap))
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nop prometheus output: %q", buf.String())
	}
}

// TestLabeledChildren: label sets are distinct series of one family,
// sharing a single HELP/TYPE header in the exposition.
func TestLabeledChildren(t *testing.T) {
	r := NewRegistry()
	a := r.CounterL("xse_test_errors_total", "errs", "stage", "parse")
	b := r.CounterL("xse_test_errors_total", "errs", "stage", "map")
	if a == b {
		t.Fatal("distinct label sets shared one counter")
	}
	a.Inc()
	a.Inc()
	b.Inc()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# HELP xse_test_errors_total") != 1 {
		t.Errorf("want exactly one HELP line:\n%s", out)
	}
	if !strings.Contains(out, `xse_test_errors_total{stage="parse"} 2`) ||
		!strings.Contains(out, `xse_test_errors_total{stage="map"} 1`) {
		t.Errorf("missing labeled series:\n%s", out)
	}
}

// TestWriteJSON round-trips the JSON exposition.
func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("xse_test_total", "t").Add(3)
	r.Histogram("xse_test_seconds", "s", []float64{1, 2}).Observe(1.5)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 2 {
		t.Fatalf("got %d metrics, want 2", len(out))
	}
	if out[0]["name"] != "xse_test_seconds" || out[1]["name"] != "xse_test_total" {
		t.Errorf("unexpected order/names: %v", out)
	}
}

// TestWriteSummary: zero-valued instruments are suppressed; nonzero
// ones render one aligned line each.
func TestWriteSummary(t *testing.T) {
	r := NewRegistry()
	r.Counter("xse_test_hits_total", "").Add(5)
	r.Counter("xse_test_misses_total", "") // zero: suppressed
	r.Histogram("xse_test_seconds", "", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := WriteSummary(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "xse_test_hits_total") || !strings.Contains(out, "count=1") {
		t.Errorf("summary missing lines:\n%s", out)
	}
	if strings.Contains(out, "xse_test_misses_total") {
		t.Errorf("zero-valued metric not suppressed:\n%s", out)
	}
}
