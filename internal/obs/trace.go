package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects spans and renders them in the Chrome trace_event
// JSON format, loadable in about:tracing and Perfetto. It is
// optional: when no tracer is attached to a context, StartSpan
// returns a nil *Span whose methods are no-ops, so instrumented code
// pays one context lookup (or, on cached-tracer paths, one nil check)
// when tracing is off.
//
// Spans are grouped into lanes (the trace viewer's tid rows): a span
// started from a context that already carries a span inherits its
// parent's lane, so nesting renders as stacked bars; a span started
// from a lane-less context (or via NewLane) opens a fresh lane.
// Concurrent workers therefore each get their own row instead of
// interleaving on one.
type Tracer struct {
	t0       time.Time
	nextLane atomic.Int64

	mu     sync.Mutex
	events []traceEvent
}

// traceEvent is one completed span, in trace_event "X" (complete
// event) form.
type traceEvent struct {
	name  string
	lane  int64
	start time.Duration // since t0
	dur   time.Duration
	args  map[string]string
}

// NewTracer returns a tracer whose clock starts now.
func NewTracer() *Tracer {
	return &Tracer{t0: time.Now()}
}

// Span is one in-flight timed region. A nil Span is the disabled
// tracer's no-op.
type Span struct {
	tr    *Tracer
	name  string
	lane  int64
	start time.Time
	args  map[string]string
}

// tracerKey and spanKey attach the tracer and the current span to a
// context.
type tracerKey struct{}
type spanKey struct{}

// WithTracer returns a context carrying tr; all StartSpan calls under
// it record into tr.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, tr)
}

// TracerFrom extracts the context's tracer (nil when tracing is off).
// Hot paths that start many spans should call this once and use
// Tracer.StartSpan directly rather than re-walking the context.
func TracerFrom(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(tracerKey{}).(*Tracer)
	return tr
}

// StartSpan opens a span named name under ctx's tracer and current
// span (lane inheritance), returning the child context to pass down
// and the span to End. With no tracer attached it returns ctx
// unchanged and a nil span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	tr := TracerFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	s := tr.startSpan(name, parent)
	// Correlate the span with the request that caused it: the same
	// request_id appears in the wide event, the error body and here.
	if id := RequestIDFrom(ctx); id != "" {
		s.Attr("request_id", id)
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// StartSpan opens a span on an explicit tracer, inheriting the lane
// of parent (which may be nil for a fresh lane). It is the
// cached-tracer fast path for loops that must not touch the context;
// a nil receiver returns a nil span.
func (t *Tracer) StartSpan(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	return t.startSpan(name, parent)
}

func (t *Tracer) startSpan(name string, parent *Span) *Span {
	lane := int64(0)
	if parent != nil {
		lane = parent.lane
	} else {
		lane = t.nextLane.Add(1)
	}
	return &Span{tr: t, name: name, lane: lane, start: time.Now()}
}

// NewLane opens a top-level span on its own lane regardless of any
// current span — one per concurrent worker, so each worker's spans
// render as a separate row.
func (t *Tracer) NewLane(name string) *Span {
	if t == nil {
		return nil
	}
	return t.startSpan(name, nil)
}

// WithSpan returns a context whose current span is s, so StartSpan
// children nest under it. A nil span returns ctx unchanged.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// Attr attaches a string attribute, rendered in the trace viewer's
// args pane. No-op on a nil span.
func (s *Span) Attr(k, v string) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = make(map[string]string, 4)
	}
	s.args[k] = v
}

// AttrInt attaches an integer attribute.
func (s *Span) AttrInt(k string, v int64) {
	if s == nil {
		return
	}
	s.Attr(k, itoa(v))
}

// itoa avoids strconv on the span path for the common small values.
func itoa(v int64) string {
	if v >= 0 && v < 10 {
		return string([]byte{byte('0' + v)})
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// End closes the span and records it. No-op on a nil span; Ending a
// span twice records it twice (don't).
func (s *Span) End() {
	if s == nil {
		return
	}
	ev := traceEvent{
		name:  s.name,
		lane:  s.lane,
		start: s.start.Sub(s.tr.t0),
		dur:   time.Since(s.start),
		args:  s.args,
	}
	s.tr.mu.Lock()
	s.tr.events = append(s.tr.events, ev)
	s.tr.mu.Unlock()
}

// chromeEvent is the trace_event JSON shape.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int64             `json:"tid"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders every recorded span as Chrome trace_event
// JSON ({"traceEvents":[...]}); load the file in about:tracing or
// ui.perfetto.dev.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	events := make([]traceEvent, len(t.events))
	copy(events, t.events)
	t.mu.Unlock()

	out := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		out = append(out, chromeEvent{
			Name: e.name,
			Cat:  "xse",
			Ph:   "X",
			Pid:  1,
			Tid:  e.lane,
			Ts:   float64(e.start) / 1e3,
			Dur:  float64(e.dur) / 1e3,
			Args: e.args,
		})
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	payload := struct {
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		TraceEvents     []chromeEvent `json:"traceEvents"`
	}{"ms", out}
	if err := enc.Encode(payload); err != nil {
		return err
	}
	return bw.Flush()
}

// Len reports the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}
