package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// RecordedEvent is one wide event as held by the flight recorder:
// the emission time, the event name and its attributes in insertion
// order. Attrs must be treated as read-only once recorded.
type RecordedEvent struct {
	Time  time.Time
	Name  string
	Attrs []slog.Attr
}

// MarshalJSON renders the event as one flat object — {"time":...,
// "event":..., <attrs in insertion order>} — matching the shape of
// the -log-format json lines so operators read one format.
func (e RecordedEvent) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	writeField := func(key string, val any) error {
		if buf.Len() > 1 {
			buf.WriteByte(',')
		}
		k, err := json.Marshal(key)
		if err != nil {
			return err
		}
		v, err := json.Marshal(val)
		if err != nil {
			return err
		}
		buf.Write(k)
		buf.WriteByte(':')
		buf.Write(v)
		return nil
	}
	if err := writeField("time", e.Time.Format(time.RFC3339Nano)); err != nil {
		return nil, err
	}
	if err := writeField("event", e.Name); err != nil {
		return nil, err
	}
	for _, a := range e.Attrs {
		if err := writeField(a.Key, attrValue(a.Value)); err != nil {
			return nil, err
		}
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// attrValue maps a slog value onto its natural JSON type.
func attrValue(v slog.Value) any {
	switch v.Kind() {
	case slog.KindInt64:
		return v.Int64()
	case slog.KindUint64:
		return v.Uint64()
	case slog.KindFloat64:
		return v.Float64()
	case slog.KindBool:
		return v.Bool()
	default:
		return v.String()
	}
}

// MatchAttr reports whether the rendered attribute (or the event
// name, under the reserved key "event") equals want.
func (e RecordedEvent) MatchAttr(key, want string) bool {
	if key == "event" {
		return e.Name == want
	}
	for _, a := range e.Attrs {
		if a.Key == key {
			return a.Value.String() == want
		}
	}
	return false
}

// Recorder is the flight recorder: a bounded ring of the most recent
// wide events, cheap enough to leave on in production (one short
// critical section per event, no allocation beyond the recorded
// attrs the emitter already built). When full, new events overwrite
// the oldest. The zero capacity of NewRecorder is clamped to 1.
type Recorder struct {
	mu   sync.Mutex
	buf  []RecordedEvent
	next int  // index the next event lands in
	full bool // buf has wrapped at least once
}

// NewRecorder builds a recorder holding the last n events.
func NewRecorder(n int) *Recorder {
	if n < 1 {
		n = 1
	}
	return &Recorder{buf: make([]RecordedEvent, n)}
}

// defaultRecorder backs Events(): the process-wide flight recorder
// that RegisterDebugHandlers serves at /debug/events.
var defaultRecorder = NewRecorder(512)

// Events returns the process-default flight recorder.
func Events() *Recorder { return defaultRecorder }

// Add records one event, evicting the oldest when full.
func (r *Recorder) Add(e RecordedEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Len reports how many events are currently held.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Snapshot returns the held events, most recent first.
func (r *Recorder) Snapshot() []RecordedEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]RecordedEvent, 0, n)
	for i := 1; i <= n; i++ {
		idx := r.next - i
		if idx < 0 {
			idx += len(r.buf)
		}
		out = append(out, r.buf[idx])
	}
	return out
}

// ServeHTTP renders the recorder as a JSON array, most recent first.
// Query parameters filter: n bounds the count; event matches the
// event name; any other parameter matches the attribute of that name
// by its rendered value (e.g. ?event=request&route=embed&outcome=ok,
// or ?request_id=ab12cd34ef56ab78).
func (r *Recorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	limit := -1
	if s := q.Get("n"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "invalid n", http.StatusBadRequest)
			return
		}
		limit = n
	}
	type filter struct{ key, want string }
	var filters []filter
	for key, vals := range q {
		if key == "n" || len(vals) == 0 {
			continue
		}
		filters = append(filters, filter{key: key, want: vals[0]})
	}
	var out []RecordedEvent
	for _, e := range r.Snapshot() {
		if limit >= 0 && len(out) >= limit {
			break
		}
		ok := true
		for _, f := range filters {
			if !e.MatchAttr(f.key, f.want) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, e)
		}
	}
	if out == nil {
		out = []RecordedEvent{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(out)
}
