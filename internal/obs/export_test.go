package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestPrometheusGolden pins the exact exposition format — HELP/TYPE
// headers, cumulative buckets with le labels, _sum/_count — against a
// golden file, so accidental format drift (which would break real
// Prometheus scrapers) fails loudly.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("xse_demo_ops_total", "Operations performed.").Add(42)
	r.Gauge("xse_demo_queue_depth", "Items queued.").Set(-3)
	h := r.Histogram("xse_demo_seconds", "Operation latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(5)
	r.CounterL("xse_demo_errors_total", "Errors by stage.", "stage", "parse").Inc()
	r.CounterL("xse_demo_errors_total", "Errors by stage.", "stage", "write").Add(2)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestTracerChromeJSON: spans render as valid trace_event JSON with
// lane inheritance (child shares the parent's tid) and worker lanes
// distinct.
func TestTracerChromeJSON(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("run", nil)
	child := tr.StartSpan("stage", root)
	child.AttrInt("items", 12)
	child.End()
	root.End()
	w1 := tr.NewLane("worker")
	w2 := tr.NewLane("worker")
	w1.End()
	w2.End()

	if tr.Len() != 4 {
		t.Fatalf("recorded %d spans, want 4", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var payload struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Tid  int64             `json:"tid"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &payload); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	if len(payload.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(payload.TraceEvents))
	}
	byName := map[string][]int64{}
	for _, e := range payload.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %s: ph = %q, want X", e.Name, e.Ph)
		}
		byName[e.Name] = append(byName[e.Name], e.Tid)
	}
	if byName["stage"][0] != byName["run"][0] {
		t.Error("child span did not inherit the parent's lane")
	}
	if lanes := byName["worker"]; lanes[0] == lanes[1] {
		t.Error("NewLane gave two workers the same lane")
	}
	if args := payload.TraceEvents[0].Args; args["items"] != "12" {
		t.Errorf("stage args = %v, want items=12", args)
	}
}

// TestNilSpans: all span operations are no-ops without a tracer.
func TestNilSpans(t *testing.T) {
	var tr *Tracer
	s := tr.StartSpan("x", nil)
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	s.Attr("k", "v")
	s.AttrInt("n", 7)
	s.End()
	lane := tr.NewLane("w")
	lane.End()
	if tr.Len() != 0 {
		t.Error("nil tracer recorded spans")
	}
}
