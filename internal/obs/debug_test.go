package obs

import (
	"bufio"
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestDebugServerShutdownDrainsInFlight: a scrape that is mid-request
// when Shutdown begins completes with a full 200 response before
// Shutdown returns; afterwards the listener is closed.
func TestDebugServerShutdownDrainsInFlight(t *testing.T) {
	r := NewRegistry()
	r.Counter("xse_test_shutdown_total", "test counter").Add(7)
	d, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}

	// Open a connection and send an incomplete request: the connection
	// is in flight from the server's point of view, so Shutdown must
	// wait for it.
	conn, err := net.Dial("tcp", d.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "GET /metrics HTTP/1.1\r\nHost: "+d.Addr+"\r\n"); err != nil {
		t.Fatal(err)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- d.Shutdown(ctx)
	}()

	// Give Shutdown a moment to start, then complete the request; the
	// draining server must still answer it in full.
	time.Sleep(50 * time.Millisecond)
	if _, err := io.WriteString(conn, "Connection: close\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("in-flight scrape failed during shutdown: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("in-flight scrape body truncated: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight scrape status = %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(string(body), "xse_test_shutdown_total 7") {
		t.Fatalf("scrape body missing counter:\n%s", body)
	}

	select {
	case err := <-shutdownErr:
		if err != nil {
			t.Fatalf("Shutdown = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after the in-flight request completed")
	}

	// The listener is gone: new connections are refused.
	if c, err := net.DialTimeout("tcp", d.Addr, time.Second); err == nil {
		c.Close()
		t.Fatal("listener still accepting after Shutdown")
	}
}

// TestDebugServerShutdownDeadline: a connection that never completes
// its request cannot hold Shutdown past its deadline.
func TestDebugServerShutdownDeadline(t *testing.T) {
	d, err := ServeDebug("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", d.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A partial request parks the connection in flight forever.
	if _, err := io.WriteString(conn, "GET /metrics HTTP/1.1\r\n"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := d.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown = nil, want deadline error for a wedged connection")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Shutdown took %s, want ~deadline", elapsed)
	}
}
