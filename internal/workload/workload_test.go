package workload_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/search"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

func TestCorpusWellFormed(t *testing.T) {
	for _, named := range workload.Corpus() {
		t.Run(named.Name, func(t *testing.T) {
			if err := named.DTD.Check(); err != nil {
				t.Fatalf("Check: %v", err)
			}
			if !named.DTD.IsConsistent() {
				t.Error("corpus schema has useless types")
			}
			// Every corpus schema generates valid instances.
			r := rand.New(rand.NewSource(1))
			doc := xmltree.MustGenerate(named.DTD, r, xmltree.GenOptions{})
			if err := doc.Validate(named.DTD); err != nil {
				t.Errorf("generated instance invalid: %v", err)
			}
		})
	}
}

func TestCorpusRecursion(t *testing.T) {
	if !workload.ClassDTD().IsRecursive() {
		t.Error("class DTD should be recursive (Fig. 1a)")
	}
	if !workload.SchoolDTD().IsRecursive() {
		t.Error("school DTD should be recursive (Fig. 1c)")
	}
	if workload.StudentDTD().IsRecursive() {
		t.Error("student DTD should not be recursive (Fig. 1b)")
	}
	if !workload.GeoDTD().IsRecursive() {
		t.Error("geo DTD should be recursive")
	}
}

// TestSyntheticDTDProperty: generated schemas are well formed,
// consistent and nonrecursive across sizes and seeds.
func TestSyntheticDTDProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := 4 + r.Intn(40)
		d, err := workload.SyntheticDTD(r, size)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := d.Check(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if d.IsRecursive() {
			t.Logf("seed %d: synthetic DTD recursive", seed)
			return false
		}
		if !d.IsConsistent() {
			t.Logf("seed %d: synthetic DTD inconsistent", seed)
			return false
		}
		if d.Size() < size/2 {
			t.Logf("seed %d: size %d far below requested %d", seed, d.Size(), size)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestNoiseGroundTruthEmbeds is the cornerstone of the accuracy
// experiments: after any amount of noise, an embedding of the original
// into the noisy copy exists, and the exact solver (or the ground-truth
// construction) can realize it. Verified here by running the search
// with the ground truth as an unambiguous att.
func TestNoiseGroundTruthEmbeds(t *testing.T) {
	bases := []workload.NamedDTD{
		{Name: "student", DTD: workload.StudentDTD()},
		{Name: "orders", DTD: workload.OrdersDTD()},
		{Name: "biblio", DTD: workload.BiblioDTD()},
	}
	r := rand.New(rand.NewSource(11))
	for _, base := range bases {
		for _, level := range []float64{0, 0.3, 0.7, 1.0} {
			nc := workload.Noise(base.DTD, workload.NoiseLevel(level), r)
			if err := nc.DTD.Check(); err != nil {
				t.Fatalf("%s level %v: noisy copy invalid: %v", base.Name, level, err)
			}
			att := embedding.NewSimMatrix()
			for a, b := range nc.Truth {
				att.Set(a, b, 1)
			}
			res, err := search.Find(base.DTD, nc.DTD, att, search.Options{Heuristic: search.QualityOrdered, Seed: 1})
			if err != nil {
				t.Fatalf("%s level %v: %v", base.Name, level, err)
			}
			if res.Embedding == nil {
				t.Errorf("%s level %v: ground-truth embedding not found (renames=%d inserts=%d enriches=%d)",
					base.Name, level, nc.Renames, nc.Inserts, nc.Enriches)
			}
		}
	}
}

func TestNoiseCounts(t *testing.T) {
	base := workload.SchoolDTD()
	r := rand.New(rand.NewSource(5))
	nc := workload.Noise(base, workload.NoiseOptions{RenameFrac: 1}, r)
	if nc.Renames != base.Size() {
		t.Errorf("full rename touched %d/%d types", nc.Renames, base.Size())
	}
	// Every original type still has a counterpart.
	for a, b := range nc.Truth {
		if _, ok := nc.DTD.Prods[b]; !ok {
			t.Errorf("truth image of %s (%s) missing from noisy copy", a, b)
		}
	}
	zero := workload.Noise(base, workload.NoiseOptions{}, r)
	if !zero.DTD.Equal(base) {
		t.Error("zero noise should leave the schema unchanged")
	}
}

func TestNoiseInsertKinds(t *testing.T) {
	// A schema with all three edge kinds: noise with InsertFrac 1 must
	// keep it valid.
	base := workload.ClassDTD()
	r := rand.New(rand.NewSource(6))
	nc := workload.Noise(base, workload.NoiseOptions{InsertFrac: 1}, r)
	if err := nc.DTD.Check(); err != nil {
		t.Fatalf("insert-everywhere copy invalid: %v", err)
	}
	if nc.Inserts == 0 {
		t.Error("no inserts performed at InsertFrac 1")
	}
	if !nc.DTD.IsConsistent() {
		t.Error("noisy copy inconsistent")
	}
}

func TestFigure3ScenarioCount(t *testing.T) {
	scs := workload.Figure3()
	if len(scs) != 5 {
		t.Fatalf("Figure3 has %d scenarios, want 5", len(scs))
	}
	valid := 0
	for _, sc := range scs {
		if sc.Valid {
			valid++
		}
	}
	if valid != 2 {
		t.Errorf("%d scenarios marked valid, want 2 (c and e)", valid)
	}
}

func TestMergeSources(t *testing.T) {
	merged, err := embedding.MergeSources("root", workload.ClassDTD(), workload.OrdersDTD())
	if err != nil {
		t.Fatalf("MergeSources: %v", err)
	}
	if err := merged.Check(); err != nil {
		t.Fatalf("merged schema: %v", err)
	}
	if p := merged.Prods["root"]; p.Kind != dtd.KindConcat || len(p.Children) != 2 {
		t.Errorf("merged root production = %v", p)
	}
	// Overlapping type sets are rejected (class and school share types).
	if _, err := embedding.MergeSources("root", workload.ClassDTD(), workload.SchoolDTD()); err == nil {
		t.Error("MergeSources accepted overlapping type sets")
	}
}
