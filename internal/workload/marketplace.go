package workload

import (
	"repro/internal/dtd"
	"repro/internal/embedding"
)

// MarketplaceDTD is a second large integration target: it hosts the
// auction data of AuctionDTD under a structurally different vocabulary
// (renamed tags, extra wrapper levels, required bookkeeping the source
// lacks). Together with AuctionEmbedding it forms a second fully worked
// σ1-style artifact beyond the paper's Figure 1, at roughly 4× the
// size.
func MarketplaceDTD() *dtd.DTD {
	return dtd.MustNew("market",
		dtd.D("market", dtd.Concat("meta", "catalog", "community", "trading")),
		dtd.D("meta", dtd.Concat("siteid", "exported")),
		dtd.D("siteid", dtd.Str()),
		dtd.D("exported", dtd.Str()),

		dtd.D("catalog", dtd.Concat("sections", "taxonomy")),
		dtd.D("sections", dtd.Concat("zoneAfrica", "zoneAsia", "zoneEurope")),
		dtd.D("zoneAfrica", dtd.Star("listing")),
		dtd.D("zoneAsia", dtd.Star("listing")),
		dtd.D("zoneEurope", dtd.Star("listing")),
		dtd.D("listing", dtd.Concat("product", "shipping")),
		dtd.D("product", dtd.Concat("pname", "origin", "blurb")),
		dtd.D("pname", dtd.Str()),
		dtd.D("origin", dtd.Str()),
		dtd.D("blurb", dtd.Disj("plain", "structured")),
		dtd.D("plain", dtd.Str()),
		dtd.D("structured", dtd.Star("point")),
		dtd.D("point", dtd.Str()),
		dtd.D("shipping", dtd.Concat("qty", "insured")),
		dtd.D("qty", dtd.Str()),
		dtd.D("insured", dtd.Str()),
		dtd.D("taxonomy", dtd.Star("topic")),
		dtd.D("topic", dtd.Concat("tlabel", "blurb")),
		dtd.D("tlabel", dtd.Str()),

		dtd.D("community", dtd.Star("member")),
		dtd.D("member", dtd.Concat("alias", "mail", "bio")),
		dtd.D("alias", dtd.Str()),
		dtd.D("mail", dtd.Str()),
		dtd.D("bio", dtd.Concat("likes", "schooling", "wealth")),
		dtd.D("likes", dtd.Star("ref")),
		dtd.D("ref", dtd.Str()),
		dtd.D("schooling", dtd.Str()),
		dtd.D("wealth", dtd.Str()),

		dtd.D("trading", dtd.Concat("live", "done")),
		dtd.D("live", dtd.Star("sale")),
		dtd.D("sale", dtd.Concat("opening", "bids", "now", "itemlink")),
		dtd.D("opening", dtd.Str()),
		dtd.D("bids", dtd.Star("offer")),
		dtd.D("offer", dtd.Concat("when", "delta")),
		dtd.D("when", dtd.Str()),
		dtd.D("delta", dtd.Str()),
		dtd.D("now", dtd.Str()),
		dtd.D("itemlink", dtd.Str()),
		dtd.D("done", dtd.Star("deal")),
		dtd.D("deal", dtd.Concat("vendor", "purchaser", "amount", "when")),
		dtd.D("vendor", dtd.Str()),
		dtd.D("purchaser", dtd.Str()),
		dtd.D("amount", dtd.Str()),
	)
}

// AuctionEmbedding is a hand-written embedding of AuctionDTD into
// MarketplaceDTD. It exercises most embedding features at once: a
// shared disjunction type (description) reachable from two source
// contexts, a shared str leaf (date) used under two parents, multi-step
// AND paths into wrappers, and star paths at several depths.
func AuctionEmbedding() *embedding.Embedding {
	src := AuctionDTD()
	e := embedding.New(src, MarketplaceDTD())

	types := map[string]string{
		"site": "market",
		// Regions.
		"regions": "sections", "africa": "zoneAfrica", "asia": "zoneAsia", "europe": "zoneEurope",
		"item": "listing", "itemname": "pname", "location": "origin", "quantity": "qty",
		"description": "blurb", "text": "plain", "parlist": "structured", "listitem": "point",
		// Categories.
		"categories": "taxonomy", "category": "topic", "catname": "tlabel",
		// People.
		"people": "community", "person": "member", "personname": "alias",
		"emailaddress": "mail", "profile": "bio", "interest": "likes",
		"category_ref": "ref", "education": "schooling", "income": "wealth",
		// Auctions.
		"open_auctions": "live", "open_auction": "sale", "initial": "opening",
		"bidder": "bids", "bid": "offer", "date": "when", "increase": "delta",
		"current": "now", "itemref": "itemlink",
		"closed_auctions": "done", "closed_auction": "deal", "seller": "vendor",
		"buyer": "purchaser", "price": "amount",
	}
	for a, b := range types {
		e.MapType(a, b)
	}

	paths := map[[2]string]string{
		{"site", "regions"}:         "catalog/sections",
		{"site", "categories"}:      "catalog/taxonomy",
		{"site", "people"}:          "community",
		{"site", "open_auctions"}:   "trading/live",
		{"site", "closed_auctions"}: "trading/done",

		{"regions", "africa"}: "zoneAfrica",
		{"regions", "asia"}:   "zoneAsia",
		{"regions", "europe"}: "zoneEurope",
		{"africa", "item"}:    "listing",
		{"asia", "item"}:      "listing",
		{"europe", "item"}:    "listing",

		{"item", "itemname"}:    "product/pname",
		{"item", "location"}:    "product/origin",
		{"item", "quantity"}:    "shipping/qty",
		{"item", "description"}: "product/blurb",

		{"description", "text"}:    "plain",
		{"description", "parlist"}: "structured",
		{"parlist", "listitem"}:    "point",

		{"categories", "category"}:  "topic",
		{"category", "catname"}:     "tlabel",
		{"category", "description"}: "blurb",

		{"people", "person"}:         "member",
		{"person", "personname"}:     "alias",
		{"person", "emailaddress"}:   "mail",
		{"person", "profile"}:        "bio",
		{"profile", "interest"}:      "likes",
		{"profile", "education"}:     "schooling",
		{"profile", "income"}:        "wealth",
		{"interest", "category_ref"}: "ref",

		{"open_auctions", "open_auction"}: "sale",
		{"open_auction", "initial"}:       "opening",
		{"open_auction", "bidder"}:        "bids",
		{"open_auction", "current"}:       "now",
		{"open_auction", "itemref"}:       "itemlink",
		{"bidder", "bid"}:                 "offer",
		{"bid", "date"}:                   "when",
		{"bid", "increase"}:               "delta",

		{"closed_auctions", "closed_auction"}: "deal",
		{"closed_auction", "seller"}:          "vendor",
		{"closed_auction", "buyer"}:           "purchaser",
		{"closed_auction", "price"}:           "amount",
		{"closed_auction", "date"}:            "when",
	}
	for edge, p := range paths {
		e.SetPath(embedding.Ref(edge[0], edge[1]), p)
	}
	// Every str leaf carries its text directly.
	for _, a := range src.Types {
		if src.Prods[a].Kind == dtd.KindStr {
			e.SetPath(embedding.Ref(a, embedding.StrChild), "text()")
		}
	}
	return e
}
