package workload

import "repro/internal/dtd"

// AuctionDTD returns an XMark-style auction site schema (~30 types),
// standing in for the benchmark schemas of the experimental study.
func AuctionDTD() *dtd.DTD {
	return dtd.MustNew("site",
		dtd.D("site", dtd.Concat("regions", "categories", "people", "open_auctions", "closed_auctions")),
		dtd.D("regions", dtd.Concat("africa", "asia", "europe")),
		dtd.D("africa", dtd.Star("item")),
		dtd.D("asia", dtd.Star("item")),
		dtd.D("europe", dtd.Star("item")),
		dtd.D("item", dtd.Concat("itemname", "location", "quantity", "description")),
		dtd.D("itemname", dtd.Str()),
		dtd.D("location", dtd.Str()),
		dtd.D("quantity", dtd.Str()),
		dtd.D("description", dtd.Disj("text", "parlist")),
		dtd.D("text", dtd.Str()),
		dtd.D("parlist", dtd.Star("listitem")),
		dtd.D("listitem", dtd.Str()),
		dtd.D("categories", dtd.Star("category")),
		dtd.D("category", dtd.Concat("catname", "description")),
		dtd.D("catname", dtd.Str()),
		dtd.D("people", dtd.Star("person")),
		dtd.D("person", dtd.Concat("personname", "emailaddress", "profile")),
		dtd.D("personname", dtd.Str()),
		dtd.D("emailaddress", dtd.Str()),
		dtd.D("profile", dtd.Concat("interest", "education", "income")),
		dtd.D("interest", dtd.Star("category_ref")),
		dtd.D("category_ref", dtd.Str()),
		dtd.D("education", dtd.Str()),
		dtd.D("income", dtd.Str()),
		dtd.D("open_auctions", dtd.Star("open_auction")),
		dtd.D("open_auction", dtd.Concat("initial", "bidder", "current", "itemref")),
		dtd.D("initial", dtd.Str()),
		dtd.D("bidder", dtd.Star("bid")),
		dtd.D("bid", dtd.Concat("date", "increase")),
		dtd.D("date", dtd.Str()),
		dtd.D("increase", dtd.Str()),
		dtd.D("current", dtd.Str()),
		dtd.D("itemref", dtd.Str()),
		dtd.D("closed_auctions", dtd.Star("closed_auction")),
		dtd.D("closed_auction", dtd.Concat("seller", "buyer", "price", "date")),
		dtd.D("seller", dtd.Str()),
		dtd.D("buyer", dtd.Str()),
		dtd.D("price", dtd.Str()),
	)
}

// BiblioDTD returns a DBLP-style bibliography schema with a disjunctive
// publication type.
func BiblioDTD() *dtd.DTD {
	return dtd.MustNew("dblp",
		dtd.D("dblp", dtd.Star("pub")),
		dtd.D("pub", dtd.Disj("article", "inproceedings", "book")),
		dtd.D("article", dtd.Concat("authors", "title", "journal", "year")),
		dtd.D("inproceedings", dtd.Concat("authors", "title", "booktitle", "year")),
		dtd.D("book", dtd.Concat("authors", "title", "publisher", "year")),
		dtd.D("authors", dtd.Star("author")),
		dtd.D("author", dtd.Str()),
		dtd.D("title", dtd.Str()),
		dtd.D("journal", dtd.Str()),
		dtd.D("booktitle", dtd.Str()),
		dtd.D("publisher", dtd.Str()),
		dtd.D("year", dtd.Str()),
	)
}

// OrdersDTD returns an order-management schema with optional content
// normalized into disjunctions.
func OrdersDTD() *dtd.DTD {
	return dtd.MustNew("orders",
		dtd.D("orders", dtd.Star("order")),
		dtd.D("order", dtd.Concat("orderid", "customer", "items", "status")),
		dtd.D("orderid", dtd.Str()),
		dtd.D("customer", dtd.Concat("custname", "address")),
		dtd.D("custname", dtd.Str()),
		dtd.D("address", dtd.Concat("street", "city", "country")),
		dtd.D("street", dtd.Str()),
		dtd.D("city", dtd.Str()),
		dtd.D("country", dtd.Str()),
		dtd.D("items", dtd.Star("line")),
		dtd.D("line", dtd.Concat("sku", "qty", "lineprice")),
		dtd.D("sku", dtd.Str()),
		dtd.D("qty", dtd.Str()),
		dtd.D("lineprice", dtd.Str()),
		dtd.D("status", dtd.Disj("pending", "shipped", "cancelled")),
		dtd.D("pending", dtd.Empty()),
		dtd.D("shipped", dtd.Concat("shipdate", "carrier")),
		dtd.D("shipdate", dtd.Str()),
		dtd.D("carrier", dtd.Str()),
		dtd.D("cancelled", dtd.Concat("reason")),
		dtd.D("reason", dtd.Str()),
	)
}

// GeoDTD returns a Mondial-style geography schema (recursive through
// administrative subdivisions).
func GeoDTD() *dtd.DTD {
	return dtd.MustNew("world",
		dtd.D("world", dtd.Star("country")),
		dtd.D("country", dtd.Concat("cname", "capital", "population", "provinces")),
		dtd.D("cname", dtd.Str()),
		dtd.D("capital", dtd.Str()),
		dtd.D("population", dtd.Str()),
		dtd.D("provinces", dtd.Star("province")),
		dtd.D("province", dtd.Concat("pname", "pcapital", "subdivisions")),
		dtd.D("pname", dtd.Str()),
		dtd.D("pcapital", dtd.Str()),
		dtd.D("subdivisions", dtd.Star("province")),
	)
}

// Corpus returns the named benchmark schemas used by the experiment
// drivers, in a stable order.
func Corpus() []NamedDTD {
	return []NamedDTD{
		{Name: "class", DTD: ClassDTD()},
		{Name: "student", DTD: StudentDTD()},
		{Name: "school", DTD: SchoolDTD()},
		{Name: "auction", DTD: AuctionDTD()},
		{Name: "biblio", DTD: BiblioDTD()},
		{Name: "orders", DTD: OrdersDTD()},
		{Name: "geo", DTD: GeoDTD()},
	}
}

// NamedDTD pairs a corpus schema with its display name.
type NamedDTD struct {
	Name string
	DTD  *dtd.DTD
}
