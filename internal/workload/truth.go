package workload

import (
	"fmt"

	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/xpath"
)

// TruthEmbedding reconstructs the ground-truth schema embedding of a
// source schema into its noisy copy: λ is the NoisyCopy's Truth map and
// every source edge is mapped to the 1- or 2-step path the perturbation
// left behind (direct edge, or wrapper/child when an intermediate type
// was inserted on the edge). The result is validated before it is
// returned, so callers can rely on it being a schema embedding in the
// sense of §4.1 — which makes it a reference answer for the embedding
// search and the backbone of the property-based conformance oracle.
func TruthEmbedding(src *dtd.DTD, nc *NoisyCopy) (*embedding.Embedding, error) {
	e := embedding.New(src, nc.DTD)
	original := make(map[string]bool, len(nc.Truth))
	for _, tgt := range nc.Truth {
		original[tgt] = true
	}
	for _, a := range src.Types {
		b, ok := nc.Truth[a]
		if !ok {
			return nil, fmt.Errorf("workload: truth embedding: no counterpart for source type %q", a)
		}
		e.MapType(a, b)
	}
	for _, ref := range embedding.SourceEdges(src) {
		if ref.Child == embedding.StrChild {
			e.Paths[ref] = xpath.Path{Text: true}
			continue
		}
		p, err := truthPath(nc, original, nc.Truth[ref.Parent], nc.Truth[ref.Child], ref.Occ)
		if err != nil {
			return nil, fmt.Errorf("workload: truth embedding: edge %s: %w", ref, err)
		}
		e.Paths[ref] = p
	}
	if err := e.Validate(nil); err != nil {
		return nil, fmt.Errorf("workload: truth embedding is not a valid schema embedding: %w", err)
	}
	return e, nil
}

// truthPath finds the occ-th occurrence of tB (directly or behind an
// inserted wrapper) among the children of tA in the noisy copy and
// renders it as an X_R path. Wrapper types are recognizable as
// concatenations outside the Truth image whose first child is tB (Noise
// creates them as single-child concatenations; enrichment may append
// extra children but never prepends).
func truthPath(nc *NoisyCopy, original map[string]bool, tA, tB string, occ int) (xpath.Path, error) {
	prod, ok := nc.DTD.Prods[tA]
	if !ok {
		return xpath.Path{}, fmt.Errorf("no production for %q in the copy", tA)
	}
	seen, direct := 0, 0
	for _, c := range prod.Children {
		switch {
		case c == tB:
			seen++
			direct++
			if seen == occ {
				step := xpath.Step{Label: tB}
				if prod.Kind == dtd.KindConcat && prod.Occurrences(tB) > 1 {
					// Position among same-label children of the copy; only
					// direct occurrences keep the label (wrapping removes it).
					step.Pos = direct
				}
				return xpath.Path{Steps: []xpath.Step{step}}, nil
			}
		case !original[c] && isWrapperFor(nc.DTD, c, tB):
			seen++
			if seen == occ {
				return xpath.Path{Steps: []xpath.Step{{Label: c}, {Label: tB}}}, nil
			}
		}
	}
	return xpath.Path{}, fmt.Errorf("occurrence %d of %q not found under %q", occ, tB, tA)
}

func isWrapperFor(d *dtd.DTD, wrapper, tB string) bool {
	p, ok := d.Prods[wrapper]
	return ok && p.Kind == dtd.KindConcat && len(p.Children) > 0 && p.Children[0] == tB
}
