package workload_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/search"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// TestTestdataDTDs parses the real-world-style DTD files, normalizes
// them, generates instances, and embeds each schema into a noisy copy
// of itself — the file-level path end to end.
func TestTestdataDTDs(t *testing.T) {
	files, err := filepath.Glob("testdata/*.dtd")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata DTDs: %v", err)
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			d, err := dtd.Parse(string(data), "")
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if err := d.Check(); err != nil {
				t.Fatalf("Check: %v", err)
			}
			if !d.IsConsistent() {
				t.Fatal("inconsistent schema")
			}
			r := rand.New(rand.NewSource(1))
			doc := xmltree.MustGenerate(d, r, xmltree.GenOptions{})
			if err := doc.Validate(d); err != nil {
				t.Fatalf("generated instance: %v", err)
			}
			// Round-trip through text form.
			back, err := dtd.Parse(d.String(), d.Root)
			if err != nil || !back.Equal(d) {
				t.Fatalf("schema text round trip failed: %v", err)
			}
			// Embed into a noisy copy with the ground-truth att.
			nc := workload.Noise(d, workload.NoiseLevel(0.3), r)
			att := embedding.NewSimMatrix()
			for a, b := range nc.Truth {
				att.Set(a, b, 1)
			}
			res, err := search.Find(d, nc.DTD, att, search.Options{Heuristic: search.QualityOrdered, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			if res.Embedding == nil {
				t.Fatal("no embedding into the noisy copy")
			}
			out, err := res.Embedding.Apply(doc)
			if err != nil {
				t.Fatalf("Apply: %v", err)
			}
			got, err := res.Embedding.Invert(out.Tree)
			if err != nil {
				t.Fatalf("Invert: %v", err)
			}
			if !xmltree.Equal(doc, got) {
				t.Fatalf("round trip: %s", xmltree.Diff(doc, got))
			}
		})
	}
}
