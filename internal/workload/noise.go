package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/dtd"
)

// NoisyCopy is a structurally perturbed copy of a schema, used as the
// embedding target in the accuracy experiments. An embedding of the
// original into the copy exists by construction: every perturbation
// (rename, intermediate-node insertion, required-content enrichment)
// preserves embeddability, since schema embeddings map edges to paths
// and tolerate extra required content via minimum defaults.
type NoisyCopy struct {
	// DTD is the perturbed copy.
	DTD *dtd.DTD
	// Truth maps each original type to its counterpart in the copy —
	// the ground-truth λ against which found embeddings are scored.
	Truth map[string]string
	// Renames counts renamed types, Inserts inserted intermediate
	// types, Enriches added required children.
	Renames, Inserts, Enriches int
}

// NoiseOptions controls perturbation intensity.
type NoiseOptions struct {
	// RenameFrac is the fraction of types renamed beyond recognition.
	RenameFrac float64
	// InsertFrac is the fraction of edges that get an intermediate
	// wrapper type (turning an edge into a 2-step path).
	InsertFrac float64
	// EnrichFrac is the fraction of concatenation productions that gain
	// an extra required (str) child absent from the source.
	EnrichFrac float64
}

// NoiseLevel returns balanced options for a single intensity knob in
// [0, 1], matching the "varying amounts of introduced noise" setup.
func NoiseLevel(level float64) NoiseOptions {
	return NoiseOptions{
		RenameFrac: level,
		InsertFrac: level / 2,
		EnrichFrac: level / 2,
	}
}

// Noise builds a perturbed copy of d.
func Noise(d *dtd.DTD, opts NoiseOptions, r *rand.Rand) *NoisyCopy {
	copyDTD := d.Clone()
	truth := make(map[string]string, len(d.Types))
	for _, a := range d.Types {
		truth[a] = a
	}
	nc := &NoisyCopy{DTD: copyDTD, Truth: truth}

	// 1. Insert intermediate wrapper types on a fraction of edges.
	edges := copyDTD.Edges()
	r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	inserts := int(opts.InsertFrac * float64(len(edges)))
	for i := 0; i < inserts && i < len(edges); i++ {
		insertIntermediate(copyDTD, edges[i], fmt.Sprintf("wrap%d", i), r)
		nc.Inserts++
	}

	// 2. Enrich a fraction of concatenation productions with a fresh
	// required child.
	var concats []string
	for _, a := range copyDTD.Types {
		if copyDTD.Prods[a].Kind == dtd.KindConcat {
			concats = append(concats, a)
		}
	}
	r.Shuffle(len(concats), func(i, j int) { concats[i], concats[j] = concats[j], concats[i] })
	enriches := int(opts.EnrichFrac * float64(len(concats)))
	for i := 0; i < enriches && i < len(concats); i++ {
		extra := fmt.Sprintf("extra%d", i)
		copyDTD.Types = append(copyDTD.Types, extra)
		copyDTD.Prods[extra] = dtd.Str()
		p := copyDTD.Prods[concats[i]]
		p.Children = append(append([]string(nil), p.Children...), extra)
		copyDTD.Prods[concats[i]] = p
		nc.Enriches++
	}

	// 3. Rename a fraction of the original types (after structural
	// edits so Truth tracking stays simple).
	names := append([]string(nil), d.Types...)
	r.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	renames := int(opts.RenameFrac * float64(len(names)))
	for i := 0; i < renames && i < len(names); i++ {
		old := truth[names[i]]
		fresh := fmt.Sprintf("n%dx%04d", i, r.Intn(10000))
		renameType(copyDTD, old, fresh)
		truth[names[i]] = fresh
		nc.Renames++
	}
	return nc
}

// insertIntermediate replaces one occurrence of edge.To in edge.From's
// production with a fresh wrapper type whose production is the single
// child (concatenation), so the original edge becomes a 2-step path.
func insertIntermediate(d *dtd.DTD, e dtd.Edge, wrapper string, r *rand.Rand) {
	if _, exists := d.Prods[wrapper]; exists {
		return
	}
	p := d.Prods[e.From]
	switch p.Kind {
	case dtd.KindConcat, dtd.KindStar:
		kids := append([]string(nil), p.Children...)
		kids[e.Index] = wrapper
		d.Prods[e.From] = dtd.Production{Kind: p.Kind, Children: kids}
	case dtd.KindDisj:
		kids := append([]string(nil), p.Children...)
		// Avoid duplicating an existing disjunct.
		for _, k := range kids {
			if k == wrapper {
				return
			}
		}
		kids[e.Index] = wrapper
		d.Prods[e.From] = dtd.Production{Kind: p.Kind, Children: kids}
	default:
		return
	}
	d.Types = append(d.Types, wrapper)
	d.Prods[wrapper] = dtd.Concat(e.To)
}

// renameType renames an element type everywhere in the schema.
func renameType(d *dtd.DTD, old, fresh string) {
	if old == fresh {
		return
	}
	if _, clash := d.Prods[fresh]; clash {
		return
	}
	p := d.Prods[old]
	delete(d.Prods, old)
	d.Prods[fresh] = p
	for i, t := range d.Types {
		if t == old {
			d.Types[i] = fresh
		}
	}
	if d.Root == old {
		d.Root = fresh
	}
	for a, prod := range d.Prods {
		changed := false
		for i, c := range prod.Children {
			if c == old {
				if !changed {
					prod.Children = append([]string(nil), prod.Children...)
					changed = true
				}
				prod.Children[i] = fresh
			}
		}
		if changed {
			d.Prods[a] = prod
		}
	}
}
