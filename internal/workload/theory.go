package workload

import (
	"fmt"
	"sort"

	"repro/internal/dtd"
	"repro/internal/xmltree"
)

// This file implements, as executable mappings, the two hand-built
// counterexamples of Theorem 3.1 that separate invertibility from query
// preservation. Neither is a schema embedding — that is the point: they
// witness behaviours the embedding framework is designed to rule out.

// Figure2Result carries the chain document produced by Figure2Apply and
// its node id mapping.
type Figure2Result struct {
	Tree *xmltree.Tree
	// IDM maps target node ids to source node ids.
	IDM map[xmltree.NodeID]xmltree.NodeID
}

// Figure2Apply implements the σd of Example 2.1 / Theorem 3.1(1): a
// document of S1 = {r → A; A → B, C; B → A + ε; C → ε} maps to the
// A-chain target S2 = {r → A; A → A + ε}. Each source A expands to
// three chain links (itself, its B, its C), so the images of B nodes
// sit at chain depths 3k+2 — which is why //B has no equivalent in the
// XPath fragment X over the target, although the mapping is invertible.
func Figure2Apply(t *xmltree.Tree) (*Figure2Result, error) {
	if err := t.Validate(Figure2SourceDTD()); err != nil {
		return nil, fmt.Errorf("workload: Figure2Apply: %w", err)
	}
	// Linearize: A, its B, its C, then B's A child (if any), ...
	var chain []*xmltree.Node
	a := t.Root.Children[0]
	for a != nil {
		b, c := a.Children[0], a.Children[1]
		chain = append(chain, a, b, c)
		a = nil
		if len(b.Children) == 1 && b.Children[0].Label == "A" {
			a = b.Children[0]
		}
	}
	out := &xmltree.Tree{}
	res := &Figure2Result{Tree: out, IDM: map[xmltree.NodeID]xmltree.NodeID{}}
	root := out.NewElement("r")
	out.Root = root
	res.IDM[root.ID] = t.Root.ID
	cur := root
	for _, src := range chain {
		n := out.NewElement("A")
		res.IDM[n.ID] = src.ID
		xmltree.Append(cur, n)
		cur = n
	}
	xmltree.Append(cur, out.NewElement("Aeps"))
	return res, nil
}

// Figure2Invert recovers the source document from an A-chain produced
// by Figure2Apply, witnessing invertibility.
func Figure2Invert(t *xmltree.Tree) (*xmltree.Tree, error) {
	if err := t.Validate(Figure2TargetDTD()); err != nil {
		return nil, fmt.Errorf("workload: Figure2Invert: %w", err)
	}
	// Collect the chain length (number of A nodes).
	depth := 0
	cur := t.Root
	for len(cur.Children) == 1 && cur.Children[0].Label == "A" {
		cur = cur.Children[0]
		depth++
	}
	if depth%3 != 0 {
		return nil, fmt.Errorf("workload: chain length %d is not a multiple of 3; not in the image of σd", depth)
	}
	out := &xmltree.Tree{}
	root := out.NewElement("r")
	out.Root = root
	parent := root
	for i := 0; i < depth/3; i++ {
		a := out.NewElement("A")
		b := out.NewElement("B")
		c := out.NewElement("C")
		xmltree.Append(a, b)
		xmltree.Append(a, c)
		xmltree.Append(parent, a)
		if i+1 < depth/3 {
			parent = b
			continue
		}
		xmltree.Append(b, out.NewElement("Beps"))
	}
	return out, nil
}

// SortingApply implements the σd of Theorem 3.1(2): documents of
// S1 = {r → A*; A → str} map to the same schema, but the A children are
// reordered by their string values. The mapping preserves every X query
// without position() qualifiers (those queries cannot observe sibling
// order), yet it is not invertible: the original order is lost.
func SortingApply(t *xmltree.Tree) *xmltree.Tree {
	out := &xmltree.Tree{}
	root := out.NewElement(t.Root.Label)
	out.Root = root
	type av struct {
		val string
	}
	var vals []av
	for _, c := range t.Root.Children {
		v, _ := c.Value()
		vals = append(vals, av{val: v})
	}
	sort.SliceStable(vals, func(i, j int) bool { return vals[i].val < vals[j].val })
	for _, v := range vals {
		a := out.NewElement("A")
		xmltree.Append(a, out.NewText(v.val))
		xmltree.Append(root, a)
	}
	return out
}

// SortingDTD returns the S1 = S2 schema of Theorem 3.1(2):
// {r → A*; A → str}.
func SortingDTD() *dtd.DTD {
	return dtd.MustNew("r",
		dtd.D("r", dtd.Star("A")),
		dtd.D("A", dtd.Str()),
	)
}
