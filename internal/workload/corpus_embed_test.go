package workload

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/embedding"
	"repro/internal/guard"
	"repro/internal/xmltree"
)

// TestNamedEmbeddingsValidate pins the hand-written corpus embeddings:
// each must be a valid schema embedding (§4.1), and each target schema
// must be well-formed. These literals are the reference answers other
// tests compare search results against, so a silent invalidity here
// would poison everything downstream.
func TestNamedEmbeddingsValidate(t *testing.T) {
	cases := []struct {
		name  string
		build func() *embedding.Embedding
	}{
		{"ClassEmbedding", ClassEmbedding},
		{"StudentEmbedding", StudentEmbedding},
		{"AuctionEmbedding", AuctionEmbedding},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e := c.build()
			if err := e.Source.Check(); err != nil {
				t.Fatalf("source schema: %v", err)
			}
			if err := e.Target.Check(); err != nil {
				t.Fatalf("target schema: %v", err)
			}
			if err := e.Validate(nil); err != nil {
				t.Fatalf("embedding invalid: %v", err)
			}
		})
	}
}

// TestNamedEmbeddingsMigrate drives each corpus embedding through the
// data plane: generate a conforming source instance, migrate it, and
// check the result conforms to the target schema.
func TestNamedEmbeddingsMigrate(t *testing.T) {
	for _, c := range []struct {
		name  string
		build func() *embedding.Embedding
	}{
		{"ClassEmbedding", ClassEmbedding},
		{"StudentEmbedding", StudentEmbedding},
		{"AuctionEmbedding", AuctionEmbedding},
	} {
		t.Run(c.name, func(t *testing.T) {
			e := c.build()
			r := rand.New(rand.NewSource(7))
			doc, err := xmltree.Generate(e.Source, r, xmltree.GenOptions{StarMax: 3, Limits: guard.Unlimited()})
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			res, err := e.Apply(doc)
			if err != nil {
				t.Fatalf("apply: %v", err)
			}
			if err := res.Tree.Validate(e.Target); err != nil {
				t.Fatalf("migrated document invalid: %v", err)
			}
		})
	}
}

// TestFigure2MappingRejected pins Example 2.1: the Figure 2 path
// mapping is information preserving but NOT a schema embedding — its
// concatenation edges map to OR paths, and Validate must say so.
func TestFigure2MappingRejected(t *testing.T) {
	err := Figure2Mapping().Validate(nil)
	if err == nil {
		t.Fatal("Figure 2 mapping validated as a schema embedding; the paper rejects it")
	}
	if !strings.Contains(err.Error(), "OR") {
		t.Errorf("rejection reason should mention the OR edge, got: %v", err)
	}
}

// TestFigure3Scenarios pins Figure 3 of the paper: each sub-figure's
// embedding must validate (or fail to) exactly as the paper says.
func TestFigure3Scenarios(t *testing.T) {
	scenarios := Figure3()
	if len(scenarios) < 5 {
		t.Fatalf("Figure3 lost scenarios: %d", len(scenarios))
	}
	for _, s := range scenarios {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			err := s.Build().Validate(nil)
			if s.Valid && err != nil {
				t.Errorf("expected valid, got %v", err)
			}
			if !s.Valid && err == nil {
				t.Errorf("expected invalid, validated cleanly")
			}
		})
	}
}

// TestMarketplaceDTD pins the marketplace target schema itself.
func TestMarketplaceDTD(t *testing.T) {
	if err := MarketplaceDTD().Check(); err != nil {
		t.Fatalf("marketplace schema: %v", err)
	}
}

// TestTruthEmbedding reconstructs ground-truth embeddings across noise
// levels and seeds: the result must validate, agree with the Truth λ,
// and exercise both the direct-edge and inserted-wrapper path shapes.
func TestTruthEmbedding(t *testing.T) {
	sawInsert := false
	for seed := int64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		src := MustSyntheticDTD(r, 10)
		nc := Noise(src, NoiseLevel(0.7), r)
		if err := nc.DTD.Check(); err != nil {
			t.Fatalf("seed %d: noisy copy invalid: %v", seed, err)
		}
		e, err := TruthEmbedding(src, nc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := e.Validate(nil); err != nil {
			t.Fatalf("seed %d: truth embedding invalid: %v", seed, err)
		}
		for a, b := range nc.Truth {
			if got := e.Lambda[a]; got != b {
				t.Fatalf("seed %d: λ(%s) = %q, want truth %q", seed, a, got, b)
			}
		}
		if nc.Inserts > 0 {
			sawInsert = true
		}
	}
	if !sawInsert {
		t.Errorf("no seed produced an inserted wrapper — the 2-step truthPath branch went unexercised")
	}
}

// TestTruthEmbeddingMissingType pins the error path for a source type
// the Truth map does not cover.
func TestTruthEmbeddingMissingType(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	src := MustSyntheticDTD(r, 6)
	nc := Noise(src, NoiseLevel(0), r)
	delete(nc.Truth, src.Root)
	if _, err := TruthEmbedding(src, nc); err == nil {
		t.Fatal("expected error for missing counterpart, got nil")
	}
}
