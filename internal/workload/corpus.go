// Package workload provides the schema corpus and workload generators
// for the experimental study: the paper's running examples (Figure 1's
// class, student and school DTDs with the embeddings of Examples 4.2
// and 4.9), a set of real-life-style benchmark DTDs, noise injection
// producing "copies with varying amounts of introduced noise" (the
// VLDB'05 experimental setup), and similarity-matrix degradation.
package workload

import (
	"repro/internal/dtd"
	"repro/internal/embedding"
)

// ClassDTD returns S0 of Figure 1(a): the class documents of a school.
// It is recursive (class → type → regular → prereq → class).
func ClassDTD() *dtd.DTD {
	return dtd.MustNew("db",
		dtd.D("db", dtd.Star("class")),
		dtd.D("class", dtd.Concat("cno", "title", "type")),
		dtd.D("cno", dtd.Str()),
		dtd.D("title", dtd.Str()),
		dtd.D("type", dtd.Disj("regular", "project")),
		dtd.D("regular", dtd.Concat("prereq")),
		dtd.D("project", dtd.Str()),
		dtd.D("prereq", dtd.Star("class")),
	)
}

// StudentDTD returns S1 of Figure 1(b): the student documents.
func StudentDTD() *dtd.DTD {
	return dtd.MustNew("db",
		dtd.D("db", dtd.Star("student")),
		dtd.D("student", dtd.Concat("ssn", "name", "taking")),
		dtd.D("ssn", dtd.Str()),
		dtd.D("name", dtd.Str()),
		dtd.D("taking", dtd.Star("cno")),
		dtd.D("cno", dtd.Str()),
	)
}

// SchoolDTD returns the target S of Figure 1(c): the integrated school
// schema, structurally different from both sources and recursive
// (course → ... → prereq → course).
func SchoolDTD() *dtd.DTD {
	return dtd.MustNew("school",
		dtd.D("school", dtd.Concat("courses", "students")),
		dtd.D("courses", dtd.Concat("current", "history")),
		dtd.D("current", dtd.Star("course")),
		dtd.D("history", dtd.Star("course")),
		dtd.D("course", dtd.Concat("basic", "category")),
		dtd.D("basic", dtd.Concat("cno", "credit", "class")),
		dtd.D("cno", dtd.Str()),
		dtd.D("credit", dtd.Str()),
		dtd.D("class", dtd.Star("semester")),
		dtd.D("semester", dtd.Concat("title", "year", "term", "instructor")),
		dtd.D("title", dtd.Str()),
		dtd.D("year", dtd.Str()),
		dtd.D("term", dtd.Str()),
		dtd.D("instructor", dtd.Str()),
		dtd.D("category", dtd.Disj("mandatory", "advanced")),
		dtd.D("mandatory", dtd.Disj("regular", "lab")),
		dtd.D("lab", dtd.Str()),
		dtd.D("advanced", dtd.Disj("project", "thesis")),
		dtd.D("thesis", dtd.Str()),
		dtd.D("project", dtd.Str()),
		dtd.D("regular", dtd.Concat("required")),
		dtd.D("required", dtd.Concat("prereq")),
		dtd.D("prereq", dtd.Star("course")),
		dtd.D("students", dtd.Star("student")),
		dtd.D("student", dtd.Concat("ssn", "name", "gpa", "taking")),
		dtd.D("ssn", dtd.Str()),
		dtd.D("name", dtd.Str()),
		dtd.D("gpa", dtd.Str()),
		dtd.D("taking", dtd.Star("cno")),
	)
}

// ClassEmbedding returns σ1 of Example 4.2, embedding the class DTD S0
// into the school DTD S.
func ClassEmbedding() *embedding.Embedding {
	e := embedding.New(ClassDTD(), SchoolDTD())
	e.MapType("db", "school").
		MapType("class", "course").
		MapType("type", "category").
		MapType("cno", "cno").
		MapType("title", "title").
		MapType("regular", "regular").
		MapType("project", "project").
		MapType("prereq", "prereq")
	e.SetPath(embedding.Ref("db", "class"), "courses/current/course").
		SetPath(embedding.Ref("class", "cno"), "basic/cno").
		SetPath(embedding.Ref("class", "title"), "basic/class/semester[position() = 1]/title").
		SetPath(embedding.Ref("class", "type"), "category").
		SetPath(embedding.Ref("type", "regular"), "mandatory/regular").
		SetPath(embedding.Ref("type", "project"), "advanced/project").
		SetPath(embedding.Ref("regular", "prereq"), "required/prereq").
		SetPath(embedding.Ref("prereq", "class"), "course").
		SetPath(embedding.Ref("cno", embedding.StrChild), "text()").
		SetPath(embedding.Ref("title", embedding.StrChild), "text()").
		SetPath(embedding.Ref("project", embedding.StrChild), "text()")
	return e
}

// StudentEmbedding returns σ2 of Example 4.9, embedding the student DTD
// S1 into the school DTD S. Together with ClassEmbedding it integrates
// a course document and a student document into one school instance.
func StudentEmbedding() *embedding.Embedding {
	e := embedding.New(StudentDTD(), SchoolDTD())
	e.MapType("db", "school").
		MapType("student", "student").
		MapType("ssn", "ssn").
		MapType("name", "name").
		MapType("taking", "taking").
		MapType("cno", "cno")
	e.SetPath(embedding.Ref("db", "student"), "students/student").
		SetPath(embedding.Ref("student", "ssn"), "ssn").
		SetPath(embedding.Ref("student", "name"), "name").
		SetPath(embedding.Ref("student", "taking"), "taking").
		SetPath(embedding.Ref("taking", "cno"), "cno").
		SetPath(embedding.Ref("ssn", embedding.StrChild), "text()").
		SetPath(embedding.Ref("name", embedding.StrChild), "text()").
		SetPath(embedding.Ref("cno", embedding.StrChild), "text()")
	return e
}

// Figure3 returns the five validity scenarios of Figure 3. Each
// scenario pairs a source and target DTD with the candidate embedding
// of the figure; Valid records the paper's verdict.
func Figure3() []Fig3Scenario {
	return []Fig3Scenario{
		{
			Name:  "a-concat-to-disjunction",
			Valid: false,
			Build: func() *embedding.Embedding {
				src := dtd.MustNew("A", dtd.D("A", dtd.Concat("B", "C")), dtd.D("B", dtd.Empty()), dtd.D("C", dtd.Empty()))
				tgt := dtd.MustNew("A1", dtd.D("A1", dtd.Disj("B1", "C1")), dtd.D("B1", dtd.Empty()), dtd.D("C1", dtd.Empty()))
				e := embedding.New(src, tgt)
				e.MapType("A", "A1").MapType("B", "B1").MapType("C", "C1")
				e.SetPath(embedding.Ref("A", "B"), "B1").SetPath(embedding.Ref("A", "C"), "C1")
				return e
			},
		},
		{
			Name:  "b-star-to-concat",
			Valid: false,
			Build: func() *embedding.Embedding {
				src := dtd.MustNew("A", dtd.D("A", dtd.Star("B")), dtd.D("B", dtd.Empty()))
				tgt := dtd.MustNew("A1", dtd.D("A1", dtd.Concat("B1")), dtd.D("B1", dtd.Empty()))
				e := embedding.New(src, tgt)
				e.MapType("A", "A1").MapType("B", "B1")
				e.SetPath(embedding.Ref("A", "B"), "B1")
				return e
			},
		},
		{
			Name:  "c-two-types-one-target",
			Valid: true,
			Build: func() *embedding.Embedding {
				src := dtd.MustNew("A", dtd.D("A", dtd.Concat("B", "C")), dtd.D("B", dtd.Empty()), dtd.D("C", dtd.Empty()))
				tgt := dtd.MustNew("A1", dtd.D("A1", dtd.Concat("B1", "B1")), dtd.D("B1", dtd.Empty()))
				e := embedding.New(src, tgt)
				e.MapType("A", "A1").MapType("B", "B1").MapType("C", "B1")
				e.SetPath(embedding.Ref("A", "B"), "B1[position() = 1]").
					SetPath(embedding.Ref("A", "C"), "B1[position() = 2]")
				return e
			},
		},
		{
			Name:  "d-prefix-violation",
			Valid: false,
			Build: func() *embedding.Embedding {
				src := dtd.MustNew("A", dtd.D("A", dtd.Concat("B", "C")), dtd.D("B", dtd.Empty()), dtd.D("C", dtd.Empty()))
				tgt := dtd.MustNew("A1",
					dtd.D("A1", dtd.Concat("B1")),
					dtd.D("B1", dtd.Concat("C1")),
					dtd.D("C1", dtd.Empty()))
				e := embedding.New(src, tgt)
				e.MapType("A", "A1").MapType("B", "B1").MapType("C", "C1")
				e.SetPath(embedding.Ref("A", "B"), "B1").SetPath(embedding.Ref("A", "C"), "B1/C1")
				return e
			},
		},
		{
			Name:  "e-cycle-unfolding",
			Valid: true,
			Build: func() *embedding.Embedding {
				src := dtd.MustNew("A",
					dtd.D("A", dtd.Concat("B", "C")),
					dtd.D("B", dtd.Empty()),
					dtd.D("C", dtd.Empty()))
				// Cyclic target: reaching B1 without prefixing B1/C1
				// requires unfolding the A1-cycle once.
				tgt := dtd.MustNew("A1",
					dtd.D("A1", dtd.Concat("B1")),
					dtd.D("B1", dtd.Concat("C1", "As")),
					dtd.D("C1", dtd.Empty()),
					dtd.D("As", dtd.Star("A1")))
				e := embedding.New(src, tgt)
				e.MapType("A", "A1").MapType("B", "B1").MapType("C", "C1")
				e.SetPath(embedding.Ref("A", "B"), "B1/As/A1[position() = 1]/B1").
					SetPath(embedding.Ref("A", "C"), "B1/C1")
				return e
			},
		},
	}
}

// Fig3Scenario is one sub-figure of Figure 3.
type Fig3Scenario struct {
	Name  string
	Valid bool
	Build func() *embedding.Embedding
}

// Figure2SourceDTD and Figure2TargetDTD return the DTDs of Figure 2 /
// Theorem 3.1(1): S1 = {r → A; A → B, C; B → A + ε; C → ε} and the
// A-chain target S2 = {r → A; A → A + ε}. The arrow mapping of the
// figure is invertible but is not a valid schema embedding (its
// concatenation edges map to OR paths), which is why it fails query
// preservation w.r.t. the XPath fragment X.
func Figure2SourceDTD() *dtd.DTD {
	return dtd.MustNew("r",
		dtd.D("r", dtd.Concat("A")),
		dtd.D("A", dtd.Concat("B", "C")),
		dtd.D("B", dtd.Disj("A", "Beps")),
		dtd.D("Beps", dtd.Empty()),
		dtd.D("C", dtd.Empty()),
	)
}

// Figure2TargetDTD returns S2 of Figure 2.
func Figure2TargetDTD() *dtd.DTD {
	return dtd.MustNew("r",
		dtd.D("r", dtd.Concat("A")),
		dtd.D("A", dtd.Disj("A", "Aeps")),
		dtd.D("Aeps", dtd.Empty()),
	)
}

// Figure2Mapping returns the path mapping of Figure 2 (Example 2.1):
// path(r,A)=A, path(A,B)=A, path(A,C)=A/A, path(B,A)=A/A. Validate
// rejects it: the concatenation edges of A map to OR paths.
func Figure2Mapping() *embedding.Embedding {
	e := embedding.New(Figure2SourceDTD(), Figure2TargetDTD())
	e.MapType("r", "r").MapType("A", "A").MapType("B", "A").MapType("C", "A").MapType("Beps", "Aeps")
	e.SetPath(embedding.Ref("r", "A"), "A").
		SetPath(embedding.Ref("A", "B"), "A").
		SetPath(embedding.Ref("A", "C"), "A/A").
		SetPath(embedding.Ref("B", "A"), "A/A").
		SetPath(embedding.Ref("B", "Beps"), "Aeps")
	return e
}
