package workload_test

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/workload"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// TestTheorem31Part1: the Figure 2 mapping is invertible — round trips
// hold on random instances — and its B images sit at chain depths 3k+2,
// the structural reason //B is untranslatable into the XPath fragment X
// over the target.
func TestTheorem31Part1(t *testing.T) {
	src := workload.Figure2SourceDTD()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := xmltree.MustGenerate(src, r, xmltree.GenOptions{DepthBudget: 14})
		res, err := workload.Figure2Apply(doc)
		if err != nil {
			t.Logf("seed %d: apply: %v", seed, err)
			return false
		}
		if err := res.Tree.Validate(workload.Figure2TargetDTD()); err != nil {
			t.Logf("seed %d: conformance: %v", seed, err)
			return false
		}
		back, err := workload.Figure2Invert(res.Tree)
		if err != nil {
			t.Logf("seed %d: invert: %v", seed, err)
			return false
		}
		if !xmltree.Equal(doc, back) {
			t.Logf("seed %d: %s", seed, xmltree.Diff(doc, back))
			return false
		}
		// Depth-position check for B images.
		depths := map[xmltree.NodeID]int{res.Tree.Root.ID: 0}
		res.Tree.Walk(func(n *xmltree.Node) {
			if n.Parent != nil {
				depths[n.ID] = depths[n.Parent.ID] + 1
			}
		})
		bNodes := xpath.Eval(xpath.MustParse(".//B"), doc.Root)
		fwd := map[xmltree.NodeID]xmltree.NodeID{}
		for tgt, srcID := range res.IDM {
			fwd[srcID] = tgt
		}
		for _, b := range bNodes {
			d := depths[fwd[b.ID]]
			if d%3 != 2 {
				t.Logf("seed %d: B image at depth %d, want ≡2 (mod 3)", seed, d)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestFigure2InvertRejectsBadChain(t *testing.T) {
	// A chain of length 4 is not a multiple of 3.
	doc, _ := xmltree.ParseString(`<r><A><A><A><A><Aeps/></A></A></A></A></r>`)
	if _, err := workload.Figure2Invert(doc); err == nil || !strings.Contains(err.Error(), "multiple of 3") {
		t.Errorf("bad chain: %v", err)
	}
}

// TestTheorem31Part2: the sorting mapping preserves order-insensitive X
// queries but is not invertible.
func TestTheorem31Part2(t *testing.T) {
	d := workload.SortingDTD()
	doc1, _ := xmltree.ParseString(`<r><A>b</A><A>a</A><A>c</A></r>`)
	doc2, _ := xmltree.ParseString(`<r><A>c</A><A>b</A><A>a</A></r>`)
	if err := doc1.Validate(d); err != nil {
		t.Fatal(err)
	}
	out1 := workload.SortingApply(doc1)
	out2 := workload.SortingApply(doc2)
	// Non-injective: two distinct documents share one image, so no
	// inverse function exists.
	if !xmltree.Equal(out1, out2) {
		t.Fatal("sorting images should coincide")
	}
	if xmltree.Equal(doc1, doc2) {
		t.Fatal("test setup: sources must differ")
	}
	// Query preservation for X without position(): the identity
	// translation answers text-based queries.
	for _, qs := range []string{".", "A", `A[text() = "b"]`, "A/text()"} {
		q := xpath.MustParse(qs)
		want := answersAsValues(xpath.Eval(q, doc1.Root))
		got := answersAsValues(xpath.Eval(q, out1.Root))
		if want != got {
			t.Errorf("query %s: source %q vs image %q", qs, want, got)
		}
	}
	// position() queries are exactly what breaks.
	q := xpath.MustParse("A[position() = 1]/text()")
	want := xpath.Strings(xpath.Eval(q, doc1.Root))
	got := xpath.Strings(xpath.Eval(q, out1.Root))
	if want[0] == got[0] {
		t.Error("test should witness the position()-sensitivity of sorting")
	}
}

// answersAsValues renders an answer set as an order-insensitive value
// multiset (labels for elements, values for text).
func answersAsValues(nodes []*xmltree.Node) string {
	var out []string
	for _, n := range nodes {
		if n.IsText() {
			out = append(out, "'"+n.Text+"'")
			continue
		}
		if v, ok := n.Value(); ok {
			out = append(out, n.Label+"("+v+")")
			continue
		}
		out = append(out, n.Label)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}
