package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/dtd"
)

// SyntheticDTD generates a random consistent, nonrecursive DTD with
// approximately the requested number of element types, mixing the five
// production shapes with realistic proportions (concatenation-heavy,
// as real document schemas are). The result is deterministic per
// random source and always passes dtd.Check and consistency; a
// violation of that invariant is reported as an error rather than a
// panic, so callers embedding the generator in long-running services
// degrade gracefully.
func SyntheticDTD(r *rand.Rand, size int) (*dtd.DTD, error) {
	return SyntheticDTDOpts(r, size, SynthOptions{})
}

// SynthOptions steers optional structural features of synthetic
// schemas beyond the classic shape mix.
type SynthOptions struct {
	// ConcatRepeatFrac is the probability that a concatenation
	// production repeats one of its children (A → (B, C, B)), the shape
	// that forces occurrence-qualified paths and position annotations
	// through the whole embedding pipeline. Zero keeps children
	// distinct, matching the historical generator.
	ConcatRepeatFrac float64
}

// SyntheticDTDOpts is SyntheticDTD with explicit structural options.
func SyntheticDTDOpts(r *rand.Rand, size int, opts SynthOptions) (*dtd.DTD, error) {
	if size < 2 {
		size = 2
	}
	names := make([]string, size)
	for i := range names {
		names[i] = fmt.Sprintf("e%02d", i)
	}
	prods := make(map[string]dtd.Production, size)

	// Children are always later types, giving a DAG; a spanning-tree
	// pass afterwards guarantees reachability.
	laterPick := func(i, n int) []string {
		out := map[string]bool{}
		for len(out) < n {
			out[names[i+1+r.Intn(size-i-1)]] = true
			if len(out) >= size-i-1 {
				break
			}
		}
		var kids []string
		for k := range out {
			kids = append(kids, k)
		}
		// Deterministic order per run: sort by index.
		for x := 1; x < len(kids); x++ {
			for y := x; y > 0 && kids[y] < kids[y-1]; y-- {
				kids[y], kids[y-1] = kids[y-1], kids[y]
			}
		}
		return kids
	}

	for i := 0; i < size; i++ {
		remaining := size - i - 1
		if remaining == 0 {
			prods[names[i]] = leafProduction(r)
			continue
		}
		switch roll := r.Intn(10); {
		case roll < 4: // concatenation
			n := 1 + r.Intn(3)
			if n > remaining {
				n = remaining
			}
			kids := laterPick(i, n)
			if opts.ConcatRepeatFrac > 0 && r.Float64() < opts.ConcatRepeatFrac {
				kids = append(kids, kids[r.Intn(len(kids))])
			}
			prods[names[i]] = dtd.Concat(kids...)
		case roll < 6 && remaining >= 2: // disjunction
			n := 2 + r.Intn(2)
			if n > remaining {
				n = remaining
			}
			kids := laterPick(i, n)
			if len(kids) < 2 {
				prods[names[i]] = dtd.Concat(kids...)
				continue
			}
			prods[names[i]] = dtd.Disj(kids...)
		case roll < 8: // star
			prods[names[i]] = dtd.Star(laterPick(i, 1)[0])
		default:
			prods[names[i]] = leafProduction(r)
		}
	}

	// Reachability repair: attach unreachable types under reachable
	// concatenation or star parents (creating one if needed).
	d := &dtd.DTD{Root: names[0], Types: names, Prods: prods}
	for {
		reach := d.Reachable()
		var missing []string
		for _, a := range names {
			if !reach[a] {
				missing = append(missing, a)
			}
		}
		if len(missing) == 0 {
			break
		}
		// Attach each missing type to a reachable earlier concat; the
		// root is made a concat if necessary.
		attached := false
		for _, m := range missing {
			mi := indexOf(names, m)
			for j := mi - 1; j >= 0; j-- {
				if !reach[names[j]] {
					continue
				}
				p := prods[names[j]]
				if p.Kind == dtd.KindConcat {
					p.Children = append(append([]string(nil), p.Children...), m)
					prods[names[j]] = p
					attached = true
					break
				}
			}
			if !attached {
				// Force the root into a concatenation including m.
				p := prods[names[0]]
				switch p.Kind {
				case dtd.KindConcat:
					p.Children = append(append([]string(nil), p.Children...), m)
				default:
					p = dtd.Concat(append(childrenOrNothing(p), m)...)
				}
				prods[names[0]] = p
				attached = true
			}
			break // recompute reachability after each attachment
		}
		if !attached {
			break
		}
	}
	if err := d.Check(); err != nil {
		return nil, fmt.Errorf("workload: synthetic DTD invalid: %w", err)
	}
	return d, nil
}

// MustSyntheticDTD is SyntheticDTD panicking on error, for tests and
// benchmarks where an invalid result is a bug in the generator itself.
func MustSyntheticDTD(r *rand.Rand, size int) *dtd.DTD {
	d, err := SyntheticDTD(r, size)
	if err != nil {
		panic(err)
	}
	return d
}

func leafProduction(r *rand.Rand) dtd.Production {
	if r.Intn(4) == 0 {
		return dtd.Empty()
	}
	return dtd.Str()
}

func indexOf(names []string, n string) int {
	for i, x := range names {
		if x == n {
			return i
		}
	}
	return -1
}

func childrenOrNothing(p dtd.Production) []string {
	switch p.Kind {
	case dtd.KindConcat:
		return p.Children
	default:
		return nil
	}
}
