package guard

import (
	"errors"
	"testing"
)

func TestWithDefaults(t *testing.T) {
	l := Limits{}.WithDefaults()
	if l.MaxDepth != DefaultMaxDepth || l.MaxInputBytes != DefaultMaxInputBytes ||
		l.MaxTypes != DefaultMaxTypes || l.MaxNodes != DefaultMaxNodes {
		t.Errorf("zero Limits did not resolve to defaults: %+v", l)
	}
	// Explicit values survive.
	l = Limits{MaxDepth: 7}.WithDefaults()
	if l.MaxDepth != 7 {
		t.Errorf("explicit MaxDepth overwritten: %+v", l)
	}
	// Negative disables.
	u := Unlimited()
	if err := u.CheckDepth(1<<30, "test"); err != nil {
		t.Errorf("Unlimited CheckDepth = %v", err)
	}
}

func TestChecks(t *testing.T) {
	l := Limits{MaxDepth: 2, MaxInputBytes: 10, MaxTypes: 3, MaxNodes: 4}
	cases := []struct {
		name string
		ok   error
		bad  error
	}{
		{"depth", l.CheckDepth(2, "t"), l.CheckDepth(3, "t")},
		{"input-bytes", l.CheckInputBytes(10, "t"), l.CheckInputBytes(11, "t")},
		{"types", l.CheckTypes(3, "t"), l.CheckTypes(4, "t")},
		{"nodes", l.CheckNodes(4, "t"), l.CheckNodes(5, "t")},
	}
	for _, c := range cases {
		if c.ok != nil {
			t.Errorf("%s: at-bound check failed: %v", c.name, c.ok)
		}
		if c.bad == nil {
			t.Errorf("%s: over-bound check passed", c.name)
			continue
		}
		var le *LimitError
		if !errors.As(c.bad, &le) {
			t.Errorf("%s: error is %T, want *LimitError", c.name, c.bad)
			continue
		}
		if le.Limit != c.name {
			t.Errorf("limit name = %q, want %q", le.Limit, c.name)
		}
	}
}
