package guard

import "repro/internal/obs"

// Process-registry instruments. The limit counters are pre-created
// per limit kind at init, so a Check* failure is one map-free atomic
// add; the success path touches no instrument at all.
var (
	mLimitDepth = obs.Default().CounterL("xse_guard_limit_errors_total",
		"Parses or generations rejected by a resource limit, by limit kind.",
		"limit", "depth")
	mLimitInputBytes = obs.Default().CounterL("xse_guard_limit_errors_total",
		"Parses or generations rejected by a resource limit, by limit kind.",
		"limit", "input-bytes")
	mLimitTypes = obs.Default().CounterL("xse_guard_limit_errors_total",
		"Parses or generations rejected by a resource limit, by limit kind.",
		"limit", "types")
	mLimitNodes = obs.Default().CounterL("xse_guard_limit_errors_total",
		"Parses or generations rejected by a resource limit, by limit kind.",
		"limit", "nodes")
	mCancels = obs.Default().Counter("xse_guard_cancellations_total",
		"Operations cut short by context cancellation (CheckCtx failures).")
)
