package guard

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFaultNoPlan(t *testing.T) {
	restore := SetFaultPlan(nil)
	defer restore()
	if err := Fault(context.Background(), "any.stage"); err != nil {
		t.Fatalf("Fault with no plan = %v, want nil", err)
	}
}

func TestFaultErrorCounted(t *testing.T) {
	plan := NewFaultPlan(FaultSpec{Stage: "s", Mode: FaultModeError, Count: 2})
	restore := SetFaultPlan(plan)
	defer restore()

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		err := Fault(ctx, "s")
		var fe *FaultError
		if !errors.As(err, &fe) || fe.Stage != "s" {
			t.Fatalf("hit %d: Fault = %v, want *FaultError{s}", i+1, err)
		}
	}
	if err := Fault(ctx, "s"); err != nil {
		t.Fatalf("hit 3: Fault = %v, want nil (count exhausted)", err)
	}
	if got := plan.Hits("s"); got != 3 {
		t.Fatalf("Hits = %d, want 3", got)
	}
	if got := plan.Hits("other"); got != 0 {
		t.Fatalf("Hits(other) = %d, want 0", got)
	}
	if err := Fault(ctx, "other"); err != nil {
		t.Fatalf("unplanned stage: Fault = %v, want nil", err)
	}
}

func TestFaultLatencyHonorsContext(t *testing.T) {
	plan := NewFaultPlan(FaultSpec{Stage: "slow", Mode: FaultModeLatency, Latency: 10 * time.Second})
	restore := SetFaultPlan(plan)
	defer restore()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Fault(ctx, "slow")
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("Fault = %v, want *CancelError", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("latency fault ignored context (took %s)", elapsed)
	}
}

func TestFaultLatencySleeps(t *testing.T) {
	plan := NewFaultPlan(FaultSpec{Stage: "slow", Mode: FaultModeLatency, Latency: 30 * time.Millisecond, Count: 1})
	restore := SetFaultPlan(plan)
	defer restore()

	start := time.Now()
	if err := Fault(context.Background(), "slow"); err != nil {
		t.Fatalf("Fault = %v, want nil after sleep", err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("latency fault slept only %s, want >= 30ms", elapsed)
	}
	// Count exhausted: second hit is instant.
	start = time.Now()
	if err := Fault(context.Background(), "slow"); err != nil {
		t.Fatalf("Fault = %v, want nil", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Fatalf("exhausted latency fault still slept %s", elapsed)
	}
}

func TestFaultPanic(t *testing.T) {
	plan := NewFaultPlan(FaultSpec{Stage: "boom", Mode: FaultModePanic, Count: 1})
	restore := SetFaultPlan(plan)
	defer restore()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("Fault did not panic")
			}
		}()
		_ = Fault(context.Background(), "boom")
	}()
	// Count exhausted: no panic.
	if err := Fault(context.Background(), "boom"); err != nil {
		t.Fatalf("Fault = %v, want nil", err)
	}
}

func TestParseFaultSpec(t *testing.T) {
	cases := []struct {
		in   string
		want FaultSpec
		bad  bool
	}{
		{in: "error:server.migrate", want: FaultSpec{Stage: "server.migrate", Mode: "error"}},
		{in: "error:server.migrate:2", want: FaultSpec{Stage: "server.migrate", Mode: "error", Count: 2}},
		{in: "panic:server.embed:1", want: FaultSpec{Stage: "server.embed", Mode: "panic", Count: 1}},
		{in: "latency:s:250ms", want: FaultSpec{Stage: "s", Mode: "latency", Latency: 250 * time.Millisecond}},
		{in: "latency:s:1s:3", want: FaultSpec{Stage: "s", Mode: "latency", Latency: time.Second, Count: 3}},
		{in: "bogus:s", bad: true},
		{in: "error", bad: true},
		{in: "error::2", bad: true},
		{in: "latency:s", bad: true},
		{in: "latency:s:nope", bad: true},
		{in: "error:s:x", bad: true},
	}
	for _, tc := range cases {
		got, err := ParseFaultSpec(tc.in)
		if tc.bad {
			if err == nil {
				t.Errorf("ParseFaultSpec(%q) = %+v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseFaultSpec(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseFaultSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}
