// Package guard centralizes resource limits for the parsing and
// generation front ends. Finding a schema embedding is NP-complete
// (§4), and the DTD/XPath/XML parsers accept arbitrary external input,
// so every boundary of the pipeline enforces explicit bounds rather
// than trusting callers: deeply nested or oversized input yields a
// structured *LimitError instead of stack exhaustion or OOM.
//
// The zero Limits value means "use the defaults"; Unlimited disables
// all checks (for trusted, internally generated input).
package guard

import (
	"context"
	"fmt"
)

// Default bounds. They are generous for real schemas and documents —
// the paper's corpora are a few hundred types and the XMark-style
// documents a few hundred thousand nodes — while keeping hostile
// input ("(((((…", a gigabyte of text, a million element types) from
// exhausting the stack or the heap.
const (
	// DefaultMaxDepth bounds recursion: nesting of parenthesized
	// content groups in DTDs, parenthesized subexpressions in XPath,
	// and element nesting in XML documents.
	DefaultMaxDepth = 1000
	// DefaultMaxInputBytes bounds the size of a parsed input text.
	DefaultMaxInputBytes = 64 << 20 // 64 MiB
	// DefaultMaxTypes bounds the number of element type declarations
	// accepted from one DTD.
	DefaultMaxTypes = 100_000
	// DefaultMaxNodes bounds the number of nodes decoded from (or
	// generated into) one XML document.
	DefaultMaxNodes = 5_000_000
)

// Limits bounds the resources a parser or generator may consume. The
// zero value selects the package defaults field by field; a negative
// field disables that single check.
type Limits struct {
	// MaxDepth bounds nesting/recursion depth.
	MaxDepth int
	// MaxInputBytes bounds input text size in bytes.
	MaxInputBytes int
	// MaxTypes bounds DTD element type declarations.
	MaxTypes int
	// MaxNodes bounds XML document nodes.
	MaxNodes int
}

// Default returns the default limits, spelled out.
func Default() Limits {
	return Limits{
		MaxDepth:      DefaultMaxDepth,
		MaxInputBytes: DefaultMaxInputBytes,
		MaxTypes:      DefaultMaxTypes,
		MaxNodes:      DefaultMaxNodes,
	}
}

// Unlimited returns limits with every check disabled.
func Unlimited() Limits {
	return Limits{MaxDepth: -1, MaxInputBytes: -1, MaxTypes: -1, MaxNodes: -1}
}

// WithDefaults resolves zero fields to the package defaults.
func (l Limits) WithDefaults() Limits {
	if l.MaxDepth == 0 {
		l.MaxDepth = DefaultMaxDepth
	}
	if l.MaxInputBytes == 0 {
		l.MaxInputBytes = DefaultMaxInputBytes
	}
	if l.MaxTypes == 0 {
		l.MaxTypes = DefaultMaxTypes
	}
	if l.MaxNodes == 0 {
		l.MaxNodes = DefaultMaxNodes
	}
	return l
}

// LimitError reports which limit a parse or generation exceeded.
type LimitError struct {
	// Limit names the exceeded bound: "depth", "input-bytes", "types"
	// or "nodes".
	Limit string
	// Max is the enforced bound.
	Max int
	// Context says where the limit was hit (package/operation).
	Context string
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("%s: %s limit exceeded (max %d)", e.Context, e.Limit, e.Max)
}

// exceeded reports whether n crosses the bound max; max <= 0 disables
// the check (0 should not reach here — WithDefaults resolves it — but
// is treated as disabled for safety).
func exceeded(n, max int) bool { return max > 0 && n > max }

// CheckDepth returns a LimitError when depth exceeds l.MaxDepth.
func (l Limits) CheckDepth(depth int, context string) error {
	if exceeded(depth, l.MaxDepth) {
		mLimitDepth.Inc()
		return &LimitError{Limit: "depth", Max: l.MaxDepth, Context: context}
	}
	return nil
}

// CheckInputBytes returns a LimitError when size exceeds l.MaxInputBytes.
func (l Limits) CheckInputBytes(size int, context string) error {
	if exceeded(size, l.MaxInputBytes) {
		mLimitInputBytes.Inc()
		return &LimitError{Limit: "input-bytes", Max: l.MaxInputBytes, Context: context}
	}
	return nil
}

// CheckTypes returns a LimitError when n exceeds l.MaxTypes.
func (l Limits) CheckTypes(n int, context string) error {
	if exceeded(n, l.MaxTypes) {
		mLimitTypes.Inc()
		return &LimitError{Limit: "types", Max: l.MaxTypes, Context: context}
	}
	return nil
}

// CheckNodes returns a LimitError when n exceeds l.MaxNodes.
func (l Limits) CheckNodes(n int, context string) error {
	if exceeded(n, l.MaxNodes) {
		mLimitNodes.Inc()
		return &LimitError{Limit: "nodes", Max: l.MaxNodes, Context: context}
	}
	return nil
}

// CancelError reports an operation cut short by context cancellation
// or deadline expiry. It wraps the context's error, so errors.Is
// matches context.Canceled / context.DeadlineExceeded, while callers
// that need the typed form (CLI exit-code mapping, pipeline
// accounting) can errors.As for *CancelError.
type CancelError struct {
	// Context says where the cancellation was observed
	// (package/operation), mirroring LimitError.Context.
	Context string
	// Err is the underlying context error.
	Err error
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("%s: canceled: %v", e.Context, e.Err)
}

// Unwrap exposes the context error to errors.Is/As.
func (e *CancelError) Unwrap() error { return e.Err }

// CheckCtx returns a *CancelError when ctx has ended, nil otherwise.
// It is the single cancellation checkpoint used by the data-plane
// stages (instance mapping, inversion, query translation, XSLT
// execution); callers place it at loop boundaries so cancellation is
// observed within one unit of work.
func CheckCtx(ctx context.Context, context_ string) error {
	if err := ctx.Err(); err != nil {
		mCancels.Inc()
		return &CancelError{Context: context_, Err: err}
	}
	return nil
}
