package guard

// Deterministic fault injection. A FaultPlan names pipeline stages
// ("server.migrate", "server.embed.search", …) and, per stage, what the
// first N hits of that stage should suffer: a typed transient error, an
// added latency, or a panic. Production code calls Fault(ctx, stage) at
// its injection points; with no plan installed that is a single atomic
// load returning nil, so the hooks are free outside chaos tests.
//
// Plans are counted, not probabilistic: "fail the first 2 migrate
// calls" always fails exactly the first 2, which is what lets the chaos
// suite assert retry counts and drain outcomes exactly.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FaultError is the typed error injected by an "error"-mode fault. It
// models a transient infrastructure failure, so retry layers treat it
// as retryable.
type FaultError struct {
	// Stage is the injection point that produced the error.
	Stage string
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("%s: injected fault", e.Stage)
}

// Fault modes.
const (
	// FaultModeError makes the injection point return a *FaultError.
	FaultModeError = "error"
	// FaultModeLatency makes the injection point sleep (honoring the
	// context: expiry during the sleep returns a *CancelError).
	FaultModeLatency = "latency"
	// FaultModePanic makes the injection point panic, for exercising
	// recovery paths.
	FaultModePanic = "panic"
)

// FaultSpec describes the faults for one stage.
type FaultSpec struct {
	// Stage names the injection point, e.g. "server.migrate".
	Stage string
	// Mode is one of the FaultMode constants.
	Mode string
	// Count applies the fault to the first Count hits of the stage;
	// 0 means every hit.
	Count int
	// Latency is the injected delay for FaultModeLatency.
	Latency time.Duration
}

// ParseFaultSpec parses the textual spec form used by test-only CLI
// flags: "mode:stage[:arg]" where arg is a hit count for mode error or
// panic ("error:server.migrate:2") and a duration[:count] pair for mode
// latency ("latency:server.migrate:200ms" or
// "latency:server.migrate:200ms:1").
func ParseFaultSpec(s string) (FaultSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 {
		return FaultSpec{}, fmt.Errorf("fault spec %q: want mode:stage[:arg]", s)
	}
	spec := FaultSpec{Mode: parts[0], Stage: parts[1]}
	switch spec.Mode {
	case FaultModeError, FaultModePanic:
		if len(parts) > 3 {
			return FaultSpec{}, fmt.Errorf("fault spec %q: too many fields", s)
		}
		if len(parts) == 3 {
			if _, err := fmt.Sscanf(parts[2], "%d", &spec.Count); err != nil {
				return FaultSpec{}, fmt.Errorf("fault spec %q: bad count %q", s, parts[2])
			}
		}
	case FaultModeLatency:
		if len(parts) < 3 || len(parts) > 4 {
			return FaultSpec{}, fmt.Errorf("fault spec %q: want latency:stage:duration[:count]", s)
		}
		d, err := time.ParseDuration(parts[2])
		if err != nil {
			return FaultSpec{}, fmt.Errorf("fault spec %q: bad duration %q", s, parts[2])
		}
		spec.Latency = d
		if len(parts) == 4 {
			if _, err := fmt.Sscanf(parts[3], "%d", &spec.Count); err != nil {
				return FaultSpec{}, fmt.Errorf("fault spec %q: bad count %q", s, parts[3])
			}
		}
	default:
		return FaultSpec{}, fmt.Errorf("fault spec %q: unknown mode %q", s, spec.Mode)
	}
	if spec.Stage == "" {
		return FaultSpec{}, fmt.Errorf("fault spec %q: empty stage", s)
	}
	return spec, nil
}

// faultState is one stage's spec plus its hit counter.
type faultState struct {
	spec FaultSpec
	hits atomic.Int64
}

// FaultPlan is an installed set of per-stage faults. Construct with
// NewFaultPlan and install with SetFaultPlan; Hits reports how many
// times a stage's injection point fired, which chaos tests use to
// assert exact retry counts.
type FaultPlan struct {
	mu     sync.Mutex
	stages map[string]*faultState
}

// NewFaultPlan builds a plan from specs. Later specs for the same
// stage replace earlier ones.
func NewFaultPlan(specs ...FaultSpec) *FaultPlan {
	p := &FaultPlan{stages: make(map[string]*faultState, len(specs))}
	for _, s := range specs {
		p.stages[s.Stage] = &faultState{spec: s}
	}
	return p
}

// Hits reports how many times stage's injection point was reached
// (whether or not the fault still applied).
func (p *FaultPlan) Hits(stage string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.stages[stage]
	if !ok {
		return 0
	}
	return int(st.hits.Load())
}

// activePlan is the installed plan; nil (the common case) makes every
// Fault call a single atomic load.
var activePlan atomic.Pointer[FaultPlan]

// SetFaultPlan installs p process-wide and returns a function restoring
// the previous plan. Intended for tests and the test-only -fault CLI
// flag; passing nil uninstalls.
func SetFaultPlan(p *FaultPlan) (restore func()) {
	prev := activePlan.Swap(p)
	return func() { activePlan.Store(prev) }
}

// Fault is the injection point: production code calls it where a chaos
// test may want to induce a failure. With no plan installed (or no
// spec for stage) it returns nil. Mode error returns a *FaultError;
// mode latency sleeps (a context expiry during the sleep returns a
// *CancelError); mode panic panics.
func Fault(ctx context.Context, stage string) error {
	p := activePlan.Load()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	st, ok := p.stages[stage]
	p.mu.Unlock()
	if !ok {
		return nil
	}
	hit := st.hits.Add(1)
	if st.spec.Count > 0 && hit > int64(st.spec.Count) {
		return nil
	}
	switch st.spec.Mode {
	case FaultModeError:
		return &FaultError{Stage: stage}
	case FaultModePanic:
		panic(fmt.Sprintf("%s: injected panic", stage))
	case FaultModeLatency:
		t := time.NewTimer(st.spec.Latency)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return &CancelError{Context: stage, Err: ctx.Err()}
		}
	}
	return nil
}
