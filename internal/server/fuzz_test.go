package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/internal/workload"
)

// fuzzServer is one daemon shared by every fuzz iteration, configured
// with tight guard.Limits so pathological inputs fail fast instead of
// consuming the fuzzing budget.
var fuzzServer = sync.OnceValue(func() *Server {
	return New(Config{
		DefaultTimeout: 2 * time.Second,
		Retries:        -1,
		Limits: guard.Limits{
			MaxInputBytes: 1 << 16,
			MaxDepth:      64,
			MaxNodes:      1 << 12,
			MaxTypes:      256,
		},
	})
})

// FuzzServeRequest fuzzes the JSON decode + validate + execute path of
// /v1/translate and /v1/migrate under guard.Limits. It drives the
// handler bodies directly — not through the api() wrapper — so a panic
// anywhere in decoding, DTD/embedding/query parsing or mapping reaches
// the fuzzer instead of being swallowed by the recovery layer. Every
// error must classify to a known status; anything else is a bug in the
// error taxonomy.
func FuzzServeRequest(f *testing.F) {
	pair := schemaPair{
		SourceDTD: workload.ClassDTD().String(),
		TargetDTD: workload.SchoolDTD().String(),
	}
	emb := workload.ClassEmbedding().Marshal()
	valid := func(v any) []byte {
		data, err := json.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	// Well-formed requests keep the fuzzer exploring the deep path.
	f.Add(valid(TranslateRequest{schemaPair: pair, Embedding: emb, Query: "class/cno/text()"}))
	f.Add(valid(MigrateRequest{schemaPair: pair, Embedding: emb, Document: "<db><class><cno>c</cno><title>t</title><type><project>p</project></type></class></db>"}))
	f.Add(valid(MigrateRequest{schemaPair: pair, Embedding: emb, Document: "<db/>", Invert: true,
		Budget: Budget{TimeoutMS: 50, MaxNodes: 16}}))
	// Malformed shapes seed the failure paths.
	f.Add([]byte(`{`))
	f.Add([]byte(`{"query":1}`))
	f.Add([]byte(`{"source_dtd":"<!ELEMENT a (#PCDATA)>","target_dtd":"<!ELEMENT"}`))
	f.Add([]byte(`{"unknown_field":true}`))
	f.Add([]byte(`{"document":"` + strings.Repeat("<a>", 100) + `"}`))
	f.Add([]byte(`{"budget":{"timeout_ms":-5,"max_nodes":1}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{} trailing`))

	okStatus := map[int]bool{400: true, 404: true, 413: true, 422: true, 429: true, 500: true, 503: true, 504: true}
	s := fuzzServer()
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, h := range []struct {
			path string
			fn   func(r *httptest.ResponseRecorder, body string) (any, error)
		}{
			{"/v1/translate", func(_ *httptest.ResponseRecorder, body string) (any, error) {
				r := httptest.NewRequest("POST", "/v1/translate", strings.NewReader(body))
				return s.handleTranslate(r.Context(), r)
			}},
			{"/v1/migrate", func(_ *httptest.ResponseRecorder, body string) (any, error) {
				r := httptest.NewRequest("POST", "/v1/migrate", strings.NewReader(body))
				return s.handleMigrate(r.Context(), r)
			}},
		} {
			out, err := h.fn(httptest.NewRecorder(), string(data))
			if err != nil {
				ae := toAPIError(err)
				if !okStatus[ae.status] {
					t.Fatalf("%s: error %v maps to unexpected status %d", h.path, err, ae.status)
				}
				if ae.code == "" || ae.msg == "" {
					t.Fatalf("%s: error %v lost its code or message", h.path, err)
				}
				continue
			}
			if out == nil {
				t.Fatalf("%s: nil response with nil error", h.path)
			}
			if _, err := json.Marshal(out); err != nil {
				t.Fatalf("%s: success response does not marshal: %v", h.path, err)
			}
		}
	})
}
