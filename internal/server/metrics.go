package server

import "repro/internal/obs"

// Package-level instruments on the process registry, following the
// translate/xpath convention: the daemon is one process, so its
// counters live in obs.Default() and are served by its own /metrics
// endpoint. Gauges use Add (never Set) so concurrently running servers
// in tests compose instead of clobbering each other.
var (
	mInflight = obs.Default().Gauge("xse_server_inflight",
		"Requests currently executing (admitted, not yet responded).")
	mQueueDepth = obs.Default().Gauge("xse_server_queue_depth",
		"Requests waiting in the admission queue for an execution slot.")
	mDraining = obs.Default().Gauge("xse_server_draining",
		"Servers in this process currently draining (readiness down).")
	mPanics = obs.Default().Counter("xse_server_panics_total",
		"Request handlers that panicked and were converted to 500s.")
	mRetries = obs.Default().Counter("xse_server_retries_total",
		"Retry attempts after a transiently failed request stage (excludes first attempts).")
	mCacheHits = obs.Default().Counter("xse_server_cache_hits_total",
		"Requests served from the schema-pair artifact cache (including single-flight joins).")
	mCacheMisses = obs.Default().Counter("xse_server_cache_misses_total",
		"Requests that built a schema-pair artifact cache entry.")
	mDrainDropped = obs.Default().Counter("xse_server_drain_canceled_total",
		"In-flight requests force-canceled because drain exceeded its deadline.")
)

// endpointMetrics is the per-endpoint slice of the request families.
type endpointMetrics struct {
	requests *obs.Counter
	latency  *obs.Histogram
}

// epMetrics pre-creates the labeled children for the API endpoints so
// hot-path increments never format labels.
var epMetrics = func() map[string]endpointMetrics {
	m := make(map[string]endpointMetrics)
	for _, ep := range []string{"embed", "translate", "migrate"} {
		m[ep] = endpointMetrics{
			requests: obs.Default().CounterL("xse_server_requests_total",
				"API requests received, by endpoint.", "endpoint", ep),
			latency: obs.Default().HistogramL("xse_server_request_seconds",
				"End-to-end request latency (admission wait included), by endpoint.",
				obs.LatencyBuckets, "endpoint", ep),
		}
	}
	return m
}()

// mShed pre-creates the shed-reason children.
var mShed = func() map[string]*obs.Counter {
	m := make(map[string]*obs.Counter)
	for _, reason := range []string{shedQueueFull, shedQueueTimeout, shedDraining} {
		m[reason] = obs.Default().CounterL("xse_server_shed_total",
			"Requests shed by admission control instead of queued, by reason.",
			"reason", reason)
	}
	return m
}()

// mResponses pre-creates the per-status response counters for every
// status the error mapping can produce.
var mResponses = func() map[int]*obs.Counter {
	m := make(map[int]*obs.Counter)
	for _, status := range []int{200, 400, 404, 405, 413, 422, 429, 500, 503, 504} {
		m[status] = obs.Default().CounterL("xse_server_responses_total",
			"API responses sent, by HTTP status.", "status", itoa(status))
	}
	return m
}()

// countResponse records one response by status (unknown statuses fall
// into the 500 family — the mapping table should make this impossible).
func countResponse(status int) {
	if c, ok := mResponses[status]; ok {
		c.Inc()
		return
	}
	mResponses[500].Inc()
}

// itoa avoids strconv for the handful of init-time conversions.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
