package server

import (
	"context"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/internal/search"
)

// handledErrors is the error→status contract: every error shape the
// server can see, with the classification toAPIError must give it.
// TestErrorTableComplete scans the guard, search and server sources
// and fails when an error type or sentinel exists that this table
// does not mention — adding a new error kind without deciding its
// HTTP rendering is a compile-adjacent error here, not a silent 500
// in production.
var handledErrors = map[string]struct {
	status int
	code   string
}{
	"server.apiError":          {0, ""},                              // passthrough: carries its own rendering
	"server.shedError":         {http.StatusTooManyRequests, "shed"}, // draining variant: 503
	"guard.LimitError":         {http.StatusRequestEntityTooLarge, "limit"},
	"guard.CancelError":        {http.StatusGatewayTimeout, "timeout"},
	"guard.FaultError":         {http.StatusInternalServerError, "internal"},
	"search.ErrDeadline":       {http.StatusGatewayTimeout, "timeout"},
	"search.ErrCanceled":       {http.StatusGatewayTimeout, "timeout"},
	"http.MaxBytesError":       {http.StatusRequestEntityTooLarge, "limit"},
	"context.DeadlineExceeded": {http.StatusGatewayTimeout, "timeout"},
	"context.Canceled":         {http.StatusGatewayTimeout, "timeout"},
}

// TestToAPIErrorTable drives toAPIError through every error shape of
// the contract, wrapped and unwrapped, and checks status, code and
// Retry-After against the table.
func TestToAPIErrorTable(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		covers     string // handledErrors key this case exercises
		status     int
		code       string
		retryAfter time.Duration
	}{
		{"apiError passthrough", badRequest("bad %s", "input"), "server.apiError", http.StatusBadRequest, "invalid", 0},
		{"apiError not_found", notFound("no embedding"), "server.apiError", http.StatusUnprocessableEntity, "not_found", 0},
		{"shed queue_full", &shedError{reason: shedQueueFull, retryAfter: 2 * time.Second}, "server.shedError", http.StatusTooManyRequests, "shed", 2 * time.Second},
		{"shed queue_timeout", &shedError{reason: shedQueueTimeout, retryAfter: time.Second}, "server.shedError", http.StatusTooManyRequests, "shed", time.Second},
		{"shed draining", &shedError{reason: shedDraining, retryAfter: 3 * time.Second}, "server.shedError", http.StatusServiceUnavailable, "draining", 3 * time.Second},
		{"limit", &guard.LimitError{Limit: "nodes", Max: 10, Context: "parse"}, "guard.LimitError", http.StatusRequestEntityTooLarge, "limit", 0},
		{"limit wrapped", fmt.Errorf("migrate: %w", &guard.LimitError{Limit: "depth", Max: 3, Context: "x"}), "guard.LimitError", http.StatusRequestEntityTooLarge, "limit", 0},
		{"max bytes", &http.MaxBytesError{Limit: 1024}, "http.MaxBytesError", http.StatusRequestEntityTooLarge, "limit", 0},
		{"cancel", &guard.CancelError{Context: "search", Err: context.Canceled}, "guard.CancelError", http.StatusGatewayTimeout, "timeout", 0},
		{"cancel wrapped", fmt.Errorf("pipeline: %w", &guard.CancelError{Context: "s", Err: context.DeadlineExceeded}), "guard.CancelError", http.StatusGatewayTimeout, "timeout", 0},
		{"search deadline", search.ErrDeadline, "search.ErrDeadline", http.StatusGatewayTimeout, "timeout", 0},
		{"search deadline wrapped", fmt.Errorf("find: %w", search.ErrDeadline), "search.ErrDeadline", http.StatusGatewayTimeout, "timeout", 0},
		{"search canceled", search.ErrCanceled, "search.ErrCanceled", http.StatusGatewayTimeout, "timeout", 0},
		{"context deadline", context.DeadlineExceeded, "context.DeadlineExceeded", http.StatusGatewayTimeout, "timeout", 0},
		{"context canceled", fmt.Errorf("op: %w", context.Canceled), "context.Canceled", http.StatusGatewayTimeout, "timeout", 0},
		{"fault", &guard.FaultError{Stage: "migrate"}, "guard.FaultError", http.StatusInternalServerError, "internal", 0},
		{"fault wrapped", fmt.Errorf("retries: %w", &guard.FaultError{Stage: "m"}), "guard.FaultError", http.StatusInternalServerError, "internal", 0},
		{"unclassified", errors.New("boom"), "", http.StatusInternalServerError, "internal", 0},
		{"unclassified wrapped", fmt.Errorf("outer: %w", errors.New("boom")), "", http.StatusInternalServerError, "internal", 0},
	}
	covered := map[string]bool{}
	for _, c := range cases {
		ae := toAPIError(c.err)
		if ae.status != c.status || ae.code != c.code {
			t.Errorf("%s: toAPIError = (%d, %q), want (%d, %q)", c.name, ae.status, ae.code, c.status, c.code)
		}
		if ae.retryAfter != c.retryAfter {
			t.Errorf("%s: retryAfter = %v, want %v", c.name, ae.retryAfter, c.retryAfter)
		}
		if ae.msg == "" {
			t.Errorf("%s: empty message", c.name)
		}
		if c.covers != "" {
			covered[c.covers] = true
		}
	}
	for key := range handledErrors {
		if !covered[key] {
			t.Errorf("handledErrors entry %q has no test case exercising it", key)
		}
	}
}

// errorDecls scans a package directory for error-shaped declarations:
// type names ending in "Error" and exported sentinel vars named Err*.
func errorDecls(t *testing.T, dir, pkgPrefix string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	errType := regexp.MustCompile(`Error$`)
	errVar := regexp.MustCompile(`^Err[A-Z]`)
	var out []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if errType.MatchString(s.Name.Name) {
							out = append(out, pkgPrefix+"."+s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if errVar.MatchString(n.Name) {
								out = append(out, pkgPrefix+"."+n.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// TestErrorTableComplete is the lint half of the contract: every
// error type (*Error) and sentinel (Err*) declared in the packages
// whose errors reach toAPIError must appear in handledErrors. A new
// guard.FooError or search.ErrBar fails this test until both
// toAPIError and the table above classify it.
func TestErrorTableComplete(t *testing.T) {
	decls := append(errorDecls(t, "../guard", "guard"), errorDecls(t, "../search", "search")...)
	decls = append(decls, errorDecls(t, ".", "server")...)
	if len(decls) < 7 {
		t.Fatalf("error scan looks vacuous: found only %v", decls)
	}
	for _, d := range decls {
		if _, ok := handledErrors[d]; !ok {
			t.Errorf("%s is not in handledErrors: decide its HTTP rendering in toAPIError and add it to the table", d)
		}
	}
}
