// Package server is the fault-tolerant embedding + migration daemon
// behind cmd/xse-serve: an HTTP/JSON service exposing the paper's
// pipeline — find embedding σ (/v1/embed), translate X_R queries
// across it (/v1/translate), migrate instances (/v1/migrate) — as a
// long-running process that amortizes DTD parsing, NP-complete
// embedding search, ANFA construction and query compilation across
// requests via a shared, bounded, content-addressed artifact cache.
//
// Robustness is the design center, in four layers:
//
//   - Admission control: at most MaxInFlight requests execute; up to
//     MaxQueue more wait (deadline-aware, at most QueueWait); the rest
//     are shed with 429/503 + Retry-After instead of queue collapse.
//   - Per-request budgets: every request runs under a wall-clock
//     deadline and guard.Limits byte/node/depth caps clamped to the
//     server's own, threaded through search, translation and the
//     instance mapping as context cancellation — one pathological
//     schema pair cannot starve the process.
//   - Failure containment: per-request panic recovery (500 +
//     xse_server_panics_total), a typed error→status mapping mirroring
//     the CLI exit-code conventions, and bounded retry with
//     exponential backoff + jitter for transiently failed migrate
//     stages.
//   - Graceful lifecycle: Shutdown flips readiness, stops admitting,
//     finishes (or, past the deadline, cancels) in-flight requests and
//     reports how many were force-canceled; accepted requests are
//     never silently dropped.
//
// The /metrics, /metrics.json, /debug/vars and /debug/pprof surfaces
// of internal/obs are mounted on the same listener.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/translate"
)

// Config tunes the daemon. The zero value of every field selects a
// production-plausible default.
type Config struct {
	// Addr is the listen address (default ":8080"; ":0" picks a port,
	// reported by Addr()).
	Addr string
	// MaxInFlight bounds concurrently executing requests (default
	// 4×GOMAXPROCS).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot (default
	// 64; 0 queues nothing — beyond MaxInFlight sheds immediately).
	// Negative disables queueing too.
	MaxQueue int
	// QueueWait bounds how long one request may wait in the admission
	// queue (default 1s).
	QueueWait time.Duration
	// DefaultTimeout is the per-request wall-clock budget when the
	// request does not name one (default 10s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the budget a request may ask for (default 2m).
	MaxTimeout time.Duration
	// Retries is how many times a transiently failed migrate stage is
	// retried after its first attempt (default 2; negative disables).
	Retries int
	// RetryBase seeds the exponential backoff between retries (default
	// 25ms, doubling per round, full jitter).
	RetryBase time.Duration
	// DrainGrace is how long Shutdown keeps the listener up — readiness
	// already down, requests already shed — so load balancers observe
	// the readiness flip before connections start failing (default 0).
	DrainGrace time.Duration
	// CacheSize bounds the schema-pair artifact cache (default 64
	// entries across embed results and translation pairs).
	CacheSize int
	// TranslationsPerPair bounds each schema pair's translation LRU
	// (default translate.DefaultCacheSize).
	TranslationsPerPair int
	// Limits caps per-request resource budgets server-wide; a request
	// may only tighten them. Zero fields take the guard defaults.
	Limits guard.Limits
	// Log receives operational lines (panics, drain progress); default
	// os.Stderr via the CLI, io.Discard when nil here.
	Log io.Writer
	// LogFormat selects wide-event request logging on Log: "json"
	// emits one JSON object per request, "text" the slog text format,
	// "" disables the log lines. The in-process flight recorder behind
	// /debug/events records every request event regardless.
	LogFormat string
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.QueueWait <= 0 {
		c.QueueWait = time.Second
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 64
	}
	if c.TranslationsPerPair <= 0 {
		c.TranslationsPerPair = translate.DefaultCacheSize
	}
	c.Limits = c.Limits.WithDefaults()
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c
}

// Server is one daemon instance. Construct with New, bind with Start,
// stop with Shutdown.
type Server struct {
	cfg Config

	adm       *admission
	artifacts *artifactCache

	mux  *http.ServeMux
	http *http.Server
	ln   net.Listener

	baseCtx    context.Context
	cancelBase context.CancelFunc

	// em delivers one wide event per request to the structured log
	// (Config.LogFormat) and the process flight recorder
	// (/debug/events).
	em *obs.Emitter

	draining atomic.Bool
	inflight atomic.Int64 // this server's own accounting (metrics gauges are process-wide)
}

// New builds a server from cfg without binding the listener.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		adm:       newAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait),
		artifacts: newArtifactCache(cfg.CacheSize),
		mux:       http.NewServeMux(),
	}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	// An unknown LogFormat is caught by the xse-serve flag check; here
	// it degrades to recorder-only events rather than failing New.
	logger, _ := obs.NewLogger(cfg.Log, cfg.LogFormat)
	s.em = obs.NewEmitter(logger, obs.Events())
	s.routes()
	return s
}

// routes mounts the API, the health probes and the obs debug surface
// on one mux.
func (s *Server) routes() {
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Liveness: the process serves; draining is still alive.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		// The body reports drain progress — queue depth and in-flight
		// count — so operators and the smoke scripts can watch a
		// SIGTERM drain converge, not just see the status flip.
		draining := s.draining.Load()
		status, code := "ready", http.StatusOK
		if draining {
			status, code = "draining", http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		fmt.Fprintf(w, "{\"status\":%q,\"draining\":%v,\"queue_depth\":%d,\"inflight\":%d}\n",
			status, draining, s.adm.queued.Load(), s.inflight.Load())
	})
	s.mux.Handle("/v1/embed", s.api("embed", s.handleEmbed))
	s.mux.Handle("/v1/translate", s.api("translate", s.handleTranslate))
	s.mux.Handle("/v1/migrate", s.api("migrate", s.handleMigrate))
	obs.RegisterDebugHandlers(s.mux, nil)
}

// Handler exposes the daemon's full handler tree (tests drive it via
// httptest; Start serves it on a real listener).
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds the listener and serves in a background goroutine.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.http = &http.Server{
		Handler: s.mux,
		BaseContext: func(net.Listener) context.Context {
			// Request contexts derive from baseCtx, so drain
			// force-cancellation reaches every in-flight stage.
			return s.baseCtx
		},
	}
	go func() { _ = s.http.Serve(ln) }()
	return nil
}

// Addr is the bound listen address (useful with Addr ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Shutdown drains the daemon: readiness flips to 503 and new API
// requests are shed immediately (so load balancers and clients back
// off), then — after DrainGrace — the listener closes and Shutdown
// waits for in-flight requests. If ctx expires first, the remaining
// requests' work is canceled through their contexts (they answer 504;
// the count is in xse_server_drain_canceled_total) and the connections
// are closed. Accepted requests are never silently dropped: every
// admitted request writes a response before its connection dies.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		mDraining.Add(1)
		defer mDraining.Add(-1)
	}
	if s.cfg.DrainGrace > 0 {
		t := time.NewTimer(s.cfg.DrainGrace)
		select {
		case <-t.C:
		case <-ctx.Done():
		}
		t.Stop()
	}
	if s.http == nil {
		// Never started (handler-only use): nothing to drain.
		s.cancelBase()
		return nil
	}
	err := s.http.Shutdown(ctx)
	if err != nil {
		// Deadline passed with requests still running: cancel their
		// work and give them a moment to write their 504s before the
		// connections are torn down.
		forced := s.inflight.Load()
		if forced > 0 {
			mDrainDropped.Add(uint64(forced))
			fmt.Fprintf(s.cfg.Log, "xse-serve: drain deadline exceeded; canceling %d in-flight request(s)\n", forced)
		}
		s.cancelBase()
		grace, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		if err2 := s.http.Shutdown(grace); err2 != nil {
			_ = s.http.Close()
		}
	}
	s.cancelBase()
	return err
}

// requestID resolves the request's correlation ID: an X-Request-Id
// header the caller supplied (sanitized and bounded so arbitrary bytes
// cannot ride into logs and events), or a freshly minted one.
func requestID(r *http.Request) string {
	id := r.Header.Get("X-Request-Id")
	if id == "" || len(id) > 64 {
		return obs.NewRequestID()
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c == '-' || c == '_' || c == '.' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return obs.NewRequestID()
		}
	}
	return id
}

// api wraps an endpoint body with the containment layers, outermost
// first: metrics, wide-event accounting, panic recovery, method check,
// drain shed, admission. Every request gets a correlation ID (echoed
// in the X-Request-Id response header and in error bodies) and emits
// exactly one wide "request" event — route, request id, queue wait,
// status, outcome, latency, plus whatever the handler annotated via
// obs.EventFrom — to the structured log and the /debug/events flight
// recorder.
func (s *Server) api(endpoint string, fn func(ctx context.Context, r *http.Request) (any, error)) http.Handler {
	met := epMetrics[endpoint]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		met.requests.Inc()
		defer met.latency.ObserveSince(start)

		reqID := requestID(r)
		w.Header().Set("X-Request-Id", reqID)
		ev := obs.NewEvent("request").
			Str("request_id", reqID).
			Str("route", endpoint)
		emitted := false
		emit := func(status int, outcome string) {
			if emitted {
				return
			}
			emitted = true
			ev.Int("status", int64(status)).
				Str("outcome", outcome).
				Dur("latency_ms", time.Since(start))
			s.em.Emit(ev)
		}
		fail := func(ae *apiError) {
			s.writeError(w, reqID, ae)
			emit(ae.status, ae.code)
		}
		defer func() {
			if p := recover(); p != nil {
				mPanics.Inc()
				fmt.Fprintf(s.cfg.Log, "xse-serve: %s: panic recovered: %v\n", endpoint, p)
				ev.Str("panic", fmt.Sprint(p))
				fail(&apiError{
					status: http.StatusInternalServerError,
					code:   "internal",
					msg:    "internal error (panic recovered)",
				})
			}
		}()

		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			fail(&apiError{status: http.StatusMethodNotAllowed, code: "invalid",
				msg: "use POST with a JSON body"})
			return
		}
		if s.draining.Load() {
			mShed[shedDraining].Inc()
			ev.Str("shed_reason", shedDraining)
			fail(toAPIError(&shedError{reason: shedDraining, retryAfter: 5 * time.Second}))
			return
		}
		qStart := time.Now()
		release, err := s.adm.acquire(r.Context())
		ev.Dur("queue_wait_ms", time.Since(qStart))
		if err != nil {
			var se *shedError
			if errors.As(err, &se) {
				ev.Str("shed_reason", se.reason)
			}
			fail(toAPIError(err))
			return
		}
		s.inflight.Add(1)
		defer func() {
			s.inflight.Add(-1)
			release()
		}()

		// The request body is bounded before any decoding: a request
		// larger than the server's input cap is a limit violation, not
		// an OOM.
		if s.cfg.Limits.MaxInputBytes > 0 {
			r.Body = http.MaxBytesReader(w, r.Body, int64(s.cfg.Limits.MaxInputBytes))
		}
		// The handler's context carries the correlation ID (echoed by
		// search/translate/pipeline spans), the wide event (annotated
		// with cache hits, retries, budgets) and the emitter (the
		// search.restart stream under explain).
		ctx := obs.WithRequestID(r.Context(), reqID)
		ctx = obs.WithEvent(ctx, ev)
		ctx = obs.WithEmitter(ctx, s.em)
		out, err := fn(ctx, r)
		if err != nil {
			fail(toAPIError(err))
			return
		}
		if raw, ok := out.(*rawXML); ok {
			countResponse(http.StatusOK)
			w.Header().Set("Content-Type", "application/xml")
			w.WriteHeader(http.StatusOK)
			w.Write(raw.body)
			emit(http.StatusOK, "ok")
			return
		}
		s.writeJSON(w, http.StatusOK, out)
		emit(http.StatusOK, "ok")
	})
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RequestID echoes the correlation ID so a failing caller can quote
	// the exact /debug/events entry (and log line) for its request.
	RequestID string `json:"request_id,omitempty"`
}

func (s *Server) writeError(w http.ResponseWriter, reqID string, ae *apiError) {
	if ae.retryAfter > 0 {
		secs := int(ae.retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", itoa(secs))
	}
	s.writeJSON(w, ae.status, errorBody{Error: errorDetail{Code: ae.code, Message: ae.msg, RequestID: reqID}})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	data, err := json.Marshal(body)
	if err != nil {
		// Response types are plain structs; this is unreachable short
		// of a programming error.
		status = http.StatusInternalServerError
		data = []byte(`{"error":{"code":"internal","message":"response encoding failed"}}`)
	}
	countResponse(status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}
